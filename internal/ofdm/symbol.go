package ofdm

import (
	"fmt"
	"math"

	"repro/internal/dsp"
)

// fftPlan is the package-shared 64-point transform. A dsp.FFT plan is
// immutable after construction and safe for concurrent use, so every
// modulator and demodulator references this single twiddle/bit-reversal
// cache instead of rebuilding it per instance — the batched receive path
// creates one demodulator per worker and they all share these tables.
var fftPlan = dsp.MustFFT(FFTSize)

// Modulator assembles time-domain OFDM symbols from data and pilot
// subcarrier values. It owns an FFT plan and scratch buffers and is not safe
// for concurrent use; create one per transmit chain.
type Modulator struct {
	tones *ToneMap
	fft   *dsp.FFT
	freq  []complex128
	scale complex128
}

// NewModulator returns a modulator over the given tone map. The output is
// scaled by N_FFT/√N_used so one OFDM symbol of unit-power constellation
// points has unit average sample power, matching the normalization in the
// standard's transmit equations.
func NewModulator(tones *ToneMap) *Modulator {
	return &Modulator{
		tones: tones,
		fft:   fftPlan,
		freq:  make([]complex128, FFTSize),
		scale: complex(float64(FFTSize)/math.Sqrt(float64(tones.NumUsed()))/float64(FFTSize), 0),
	}
}

// Tones returns the modulator's tone map.
func (m *Modulator) Tones() *ToneMap { return m.tones }

// Symbol writes one 80-sample long-GI OFDM symbol (CP + 64 samples) into
// dst. data must have NumData elements and pilots NumPilots elements.
func (m *Modulator) Symbol(dst []complex128, data, pilots []complex128) error {
	return m.SymbolCP(dst, data, pilots, CPLen)
}

// SymbolCP is Symbol with an explicit guard-interval length (16 for the
// 800 ns long GI, 8 for the 400 ns short GI). dst must have 64+cpLen
// samples.
func (m *Modulator) SymbolCP(dst []complex128, data, pilots []complex128, cpLen int) error {
	if cpLen < 1 || cpLen > FFTSize {
		return fmt.Errorf("ofdm: guard length %d outside [1, %d]", cpLen, FFTSize)
	}
	if len(dst) != FFTSize+cpLen {
		return fmt.Errorf("ofdm: dst length %d, want %d", len(dst), FFTSize+cpLen)
	}
	if len(data) != m.tones.NumData() {
		return fmt.Errorf("ofdm: %d data symbols, want %d", len(data), m.tones.NumData())
	}
	if len(pilots) != NumPilots {
		return fmt.Errorf("ofdm: %d pilots, want %d", len(pilots), NumPilots)
	}
	for i := range m.freq {
		m.freq[i] = 0
	}
	for i, b := range m.tones.Data {
		m.freq[b] = data[i]
	}
	for i, b := range m.tones.Pilot {
		m.freq[b] = pilots[i]
	}
	return m.symbolFromFreq(dst, cpLen)
}

// SymbolFromBins writes one OFDM symbol built from a caller-provided
// complete 64-bin frequency-domain vector (used for preamble fields whose
// occupied set differs from the data tone map).
func (m *Modulator) SymbolFromBins(dst, bins []complex128) error {
	if len(dst) != SymbolLen {
		return fmt.Errorf("ofdm: dst length %d, want %d", len(dst), SymbolLen)
	}
	if len(bins) != FFTSize {
		return fmt.Errorf("ofdm: bins length %d, want %d", len(bins), FFTSize)
	}
	copy(m.freq, bins)
	return m.symbolFromFreq(dst, CPLen)
}

func (m *Modulator) symbolFromFreq(dst []complex128, cpLen int) error {
	body := dst[cpLen:]
	m.fft.Inverse(body, m.freq)
	// Undo the plan's 1/N and apply the unit-power normalization in one
	// factor (scale already folds both).
	for i := range body {
		body[i] *= m.scale * complex(float64(FFTSize), 0)
	}
	copy(dst[:cpLen], body[FFTSize-cpLen:])
	return nil
}

// Demodulator recovers subcarrier values from received OFDM symbols.
// Not safe for concurrent use.
type Demodulator struct {
	tones *ToneMap
	fft   *dsp.FFT
	freq  []complex128
	scale complex128
}

// NewDemodulator returns a demodulator matching NewModulator's scaling, so a
// loopback through Modulator→Demodulator is exactly the identity.
func NewDemodulator(tones *ToneMap) *Demodulator {
	return &Demodulator{
		tones: tones,
		fft:   fftPlan,
		freq:  make([]complex128, FFTSize),
		scale: complex(math.Sqrt(float64(tones.NumUsed()))/float64(FFTSize), 0),
	}
}

// Tones returns the demodulator's tone map.
func (d *Demodulator) Tones() *ToneMap { return d.tones }

// Symbol demodulates one symbol. sym must contain the 64 samples of the
// useful part (CP already removed — timing recovery owns that decision).
// It appends the data subcarrier values to data and the pilot values to
// pilots, returning the extended slices.
func (d *Demodulator) Symbol(sym []complex128, data, pilots []complex128) (dataOut, pilotsOut []complex128, err error) {
	if len(sym) != FFTSize {
		return data, pilots, fmt.Errorf("ofdm: symbol length %d, want %d", len(sym), FFTSize)
	}
	d.fft.Forward(d.freq, sym)
	for i := range d.freq {
		d.freq[i] *= d.scale
	}
	for _, b := range d.tones.Data {
		data = append(data, d.freq[b])
	}
	for _, b := range d.tones.Pilot {
		pilots = append(pilots, d.freq[b])
	}
	return data, pilots, nil
}

// SymbolTo demodulates one 64-sample symbol writing the data subcarrier
// values into data[:NumData] and the pilot values into pilots[:NumPilots],
// with arithmetic identical to Symbol. It is the fixed-layout form the
// batched receive path uses to land tones directly in a packet-wide block
// without append bookkeeping.
//
//mimonet:hot
func (d *Demodulator) SymbolTo(data, pilots, sym []complex128) error {
	if len(sym) != FFTSize {
		return fmt.Errorf("ofdm: symbol length %d, want %d", len(sym), FFTSize)
	}
	if len(data) < len(d.tones.Data) || len(pilots) < len(d.tones.Pilot) {
		return fmt.Errorf("ofdm: SymbolTo dst lengths %d/%d, want %d/%d",
			len(data), len(pilots), len(d.tones.Data), len(d.tones.Pilot))
	}
	d.fft.Forward(d.freq, sym)
	for i := range d.freq {
		d.freq[i] *= d.scale
	}
	for i, b := range d.tones.Data {
		data[i] = d.freq[b]
	}
	for i, b := range d.tones.Pilot {
		pilots[i] = d.freq[b]
	}
	return nil
}

// Bins demodulates one 64-sample symbol into the full bin vector (scaled
// like Symbol), for channel estimation over preamble fields.
func (d *Demodulator) Bins(dst, sym []complex128) error {
	if len(sym) != FFTSize || len(dst) != FFTSize {
		return fmt.Errorf("ofdm: Bins wants 64-sample slices")
	}
	d.fft.Forward(dst, sym)
	for i := range dst {
		dst[i] *= d.scale
	}
	return nil
}
