// Package ofdm implements the 20 MHz OFDM layer of the 802.11n PHY: the
// legacy (clause 18) and HT (clause 20) subcarrier maps, the pilot polarity
// and per-stream pilot patterns, and the OFDM symbol modulator/demodulator
// (64-point IFFT/FFT with a 16-sample cyclic prefix).
package ofdm

import (
	"fmt"

	"repro/internal/bitutil"
)

// PHY-level constants for the 20 MHz channelization.
const (
	FFTSize   = 64
	CPLen     = 16
	SymbolLen = FFTSize + CPLen // 80 samples per long-GI OFDM symbol

	// Short guard interval (400 ns) variants for the HT data portion.
	CPLenShort     = 8
	SymbolLenShort = FFTSize + CPLenShort

	// SampleRate is the nominal 20 MHz baseband rate; one sample is 50 ns.
	SampleRate = 20e6

	NumPilots = 4
)

// ToneMap describes which FFT bins carry data and which carry pilots, in
// standard subcarrier order (ascending logical subcarrier index, negative
// frequencies first).
type ToneMap struct {
	// Data[i] is the FFT bin of the i-th data subcarrier.
	Data []int
	// Pilot[i] is the FFT bin of the i-th pilot subcarrier
	// (subcarriers −21, −7, +7, +21).
	Pilot []int
}

// NumData returns the number of data subcarriers (48 legacy, 52 HT).
func (t *ToneMap) NumData() int { return len(t.Data) }

// NumUsed returns the number of occupied subcarriers.
func (t *ToneMap) NumUsed() int { return len(t.Data) + len(t.Pilot) }

// bin converts a logical subcarrier index (−32..31) to an FFT bin (0..63).
func bin(k int) int { return (k + FFTSize) % FFTSize }

var pilotCarriers = []int{-21, -7, 7, 21}

func buildToneMap(maxK int) *ToneMap {
	tm := &ToneMap{}
	for _, k := range pilotCarriers {
		tm.Pilot = append(tm.Pilot, bin(k))
	}
	for k := -maxK; k <= maxK; k++ {
		if k == 0 || isPilot(k) {
			continue
		}
		tm.Data = append(tm.Data, bin(k))
	}
	return tm
}

func isPilot(k int) bool {
	for _, p := range pilotCarriers {
		if k == p {
			return true
		}
	}
	return false
}

// LegacyToneMap is the clause-18 map: 48 data + 4 pilot tones on
// subcarriers −26..26.
var LegacyToneMap = buildToneMap(26)

// HTToneMap is the clause-20 20 MHz map: 52 data + 4 pilot tones on
// subcarriers −28..28.
var HTToneMap = buildToneMap(28)

// PilotPolarity is the 127-periodic pilot polarity sequence p_n
// (IEEE 802.11-2012 §18.3.5.10): the scrambler PN sequence with all-ones
// seed, mapped 0→+1, 1→−1.
var PilotPolarity = func() []float64 {
	seq := bitutil.NewScrambler(0x7F).Sequence(127)
	p := make([]float64, 127)
	for i, b := range seq {
		p[i] = 1 - 2*float64(b)
	}
	return p
}()

// Polarity returns p_{n mod 127} for OFDM symbol counter n (which includes
// the SIG/preamble symbol offsets the caller chooses).
func Polarity(n int) float64 { return PilotPolarity[((n%127)+127)%127] }

// legacyPilotBase is the clause-18 pilot pattern on carriers −21,−7,+7,+21
// before polarity.
var legacyPilotBase = []float64{1, 1, 1, -1}

// LegacyPilots returns the four pilot values for legacy OFDM symbol n
// (n = 0 is the SIGNAL symbol per the standard's indexing).
func LegacyPilots(n int) []complex128 {
	p := Polarity(n)
	out := make([]complex128, NumPilots)
	for i, b := range legacyPilotBase {
		out[i] = complex(b*p, 0)
	}
	return out
}

// htPsi is the 20 MHz HT pilot pattern Ψ (IEEE 802.11-2012 Table 20-20),
// indexed [N_SS−1][iss][k].
var htPsi = [4][][]float64{
	{{1, 1, 1, -1}},
	{{1, 1, -1, -1}, {1, -1, -1, 1}},
	{{1, 1, -1, -1}, {1, -1, 1, -1}, {-1, 1, 1, -1}},
	{{1, 1, 1, -1}, {1, 1, -1, 1}, {1, -1, 1, 1}, {-1, 1, 1, 1}},
}

// HTPilots returns the pilot values for spatial stream iss (0-based) of nss
// streams in HT data symbol n (0-based within the data portion). z is the
// polarity offset: the standard uses p_{z+n} with z = 3 for HT-mixed data
// symbols (symbols 0..2 of the polarity sequence are consumed by L-SIG and
// HT-SIG).
func HTPilots(nss, iss, n, z int) ([]complex128, error) {
	out := make([]complex128, NumPilots)
	if err := HTPilotsInto(out, nss, iss, n, z); err != nil {
		return nil, err
	}
	return out, nil
}

// HTPilotsInto is HTPilots writing into dst[:NumPilots], for the receiver's
// per-symbol pilot tracking loop where a fresh allocation per symbol would
// dominate the steady-state allocation profile.
func HTPilotsInto(dst []complex128, nss, iss, n, z int) error {
	if nss < 1 || nss > 4 {
		return fmt.Errorf("ofdm: N_SS %d out of range [1,4]", nss)
	}
	if iss < 0 || iss >= nss {
		return fmt.Errorf("ofdm: stream %d out of range [0,%d)", iss, nss)
	}
	if len(dst) < NumPilots {
		return fmt.Errorf("ofdm: pilot dst length %d, want %d", len(dst), NumPilots)
	}
	psi := htPsi[nss-1][iss]
	p := Polarity(z + n)
	for k := 0; k < NumPilots; k++ {
		// The pattern rotates by one pilot position per symbol (eq. 20-59).
		dst[k] = complex(psi[(k+n)%NumPilots]*p, 0)
	}
	return nil
}
