package ofdm

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

func randSyms(r *rand.Rand, n int) []complex128 {
	out := make([]complex128, n)
	for i := range out {
		// QPSK-like unit-power points.
		out[i] = complex(math.Sqrt2/2*float64(1-2*r.Intn(2)), math.Sqrt2/2*float64(1-2*r.Intn(2)))
	}
	return out
}

func TestToneMapSizes(t *testing.T) {
	if LegacyToneMap.NumData() != 48 || LegacyToneMap.NumUsed() != 52 {
		t.Errorf("legacy map: %d data, %d used", LegacyToneMap.NumData(), LegacyToneMap.NumUsed())
	}
	if HTToneMap.NumData() != 52 || HTToneMap.NumUsed() != 56 {
		t.Errorf("HT map: %d data, %d used", HTToneMap.NumData(), HTToneMap.NumUsed())
	}
}

func TestToneMapNoCollisions(t *testing.T) {
	for name, tm := range map[string]*ToneMap{"legacy": LegacyToneMap, "ht": HTToneMap} {
		seen := map[int]bool{}
		for _, b := range append(append([]int{}, tm.Data...), tm.Pilot...) {
			if b < 0 || b >= FFTSize {
				t.Errorf("%s: bin %d out of range", name, b)
			}
			if seen[b] {
				t.Errorf("%s: bin %d used twice", name, b)
			}
			seen[b] = true
		}
		if seen[0] {
			t.Errorf("%s: DC bin occupied", name)
		}
	}
}

func TestPilotBins(t *testing.T) {
	want := []int{bin(-21), bin(-7), bin(7), bin(21)}
	for i, b := range LegacyToneMap.Pilot {
		if b != want[i] {
			t.Errorf("pilot %d at bin %d, want %d", i, b, want[i])
		}
	}
	if bin(-21) != 43 || bin(7) != 7 {
		t.Errorf("bin mapping wrong: bin(-21)=%d bin(7)=%d", bin(-21), bin(7))
	}
}

func TestPilotPolarityKnownPrefix(t *testing.T) {
	// IEEE 802.11-2012 §18.3.5.10: p_0.. = 1,1,1,1, -1,-1,-1,1, -1,-1,-1,-1, 1,1,-1,1 ...
	want := []float64{1, 1, 1, 1, -1, -1, -1, 1, -1, -1, -1, -1, 1, 1, -1, 1}
	for i, w := range want {
		if Polarity(i) != w {
			t.Errorf("p_%d = %g, want %g", i, Polarity(i), w)
		}
	}
	if Polarity(127) != Polarity(0) || Polarity(-1) != Polarity(126) {
		t.Error("polarity periodicity broken")
	}
}

func TestLegacyPilots(t *testing.T) {
	p0 := LegacyPilots(0)
	want := []complex128{1, 1, 1, -1}
	for i := range want {
		if p0[i] != want[i] {
			t.Errorf("symbol 0 pilot %d = %v, want %v", i, p0[i], want[i])
		}
	}
	p4 := LegacyPilots(4) // polarity -1
	for i := range want {
		if p4[i] != -want[i] {
			t.Errorf("symbol 4 pilot %d = %v, want %v", i, p4[i], -want[i])
		}
	}
}

func TestHTPilotsValidation(t *testing.T) {
	if _, err := HTPilots(5, 0, 0, 3); err == nil {
		t.Error("nss=5 should fail")
	}
	if _, err := HTPilots(2, 2, 0, 3); err == nil {
		t.Error("iss out of range should fail")
	}
}

func TestHTPilotsRotationAndOrthogonality(t *testing.T) {
	// Pattern rotates one position per symbol.
	a, err := HTPilots(2, 0, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := HTPilots(2, 0, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	pol0, pol1 := Polarity(3), Polarity(4)
	for k := 0; k < NumPilots-1; k++ {
		if a[k+1]/complex(pol0, 0) != b[k]/complex(pol1, 0) {
			t.Errorf("pilot rotation broken at k=%d", k)
		}
	}
	// For N_SS=2 the per-stream patterns are orthogonal across pilot
	// positions within a symbol.
	s0, _ := HTPilots(2, 0, 0, 3)
	s1, _ := HTPilots(2, 1, 0, 3)
	var dot complex128
	for k := range s0 {
		dot += s0[k] * cmplx.Conj(s1[k])
	}
	if cmplx.Abs(dot) > 1e-12 {
		t.Errorf("stream pilot patterns not orthogonal: %v", dot)
	}
}

func TestModulatorDemodulatorRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for name, tm := range map[string]*ToneMap{"legacy": LegacyToneMap, "ht": HTToneMap} {
		mod := NewModulator(tm)
		dem := NewDemodulator(tm)
		data := randSyms(r, tm.NumData())
		pilots := []complex128{1, 1, 1, -1}
		sym := make([]complex128, SymbolLen)
		if err := mod.Symbol(sym, data, pilots); err != nil {
			t.Fatal(err)
		}
		gotData, gotPilots, err := dem.Symbol(sym[CPLen:], nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i := range data {
			if cmplx.Abs(gotData[i]-data[i]) > 1e-9 {
				t.Fatalf("%s: data tone %d: got %v want %v", name, i, gotData[i], data[i])
			}
		}
		for i := range pilots {
			if cmplx.Abs(gotPilots[i]-pilots[i]) > 1e-9 {
				t.Fatalf("%s: pilot %d: got %v want %v", name, i, gotPilots[i], pilots[i])
			}
		}
	}
}

func TestCyclicPrefixIsCyclic(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	mod := NewModulator(HTToneMap)
	sym := make([]complex128, SymbolLen)
	if err := mod.Symbol(sym, randSyms(r, 52), []complex128{1, 1, 1, -1}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < CPLen; i++ {
		if sym[i] != sym[FFTSize+i] {
			t.Fatalf("CP sample %d != tail sample", i)
		}
	}
}

func TestSymbolUnitPower(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	mod := NewModulator(HTToneMap)
	var p float64
	const trials = 200
	sym := make([]complex128, SymbolLen)
	for i := 0; i < trials; i++ {
		if err := mod.Symbol(sym, randSyms(r, 52), []complex128{1, 1, 1, -1}); err != nil {
			t.Fatal(err)
		}
		for _, v := range sym[CPLen:] {
			p += real(v)*real(v) + imag(v)*imag(v)
		}
	}
	p /= trials * FFTSize
	if math.Abs(p-1) > 0.05 {
		t.Errorf("average sample power %g, want ≈ 1", p)
	}
}

func TestModulatorValidation(t *testing.T) {
	mod := NewModulator(HTToneMap)
	sym := make([]complex128, SymbolLen)
	if err := mod.Symbol(sym[:10], make([]complex128, 52), make([]complex128, 4)); err == nil {
		t.Error("short dst should fail")
	}
	if err := mod.Symbol(sym, make([]complex128, 48), make([]complex128, 4)); err == nil {
		t.Error("wrong data count should fail")
	}
	if err := mod.Symbol(sym, make([]complex128, 52), make([]complex128, 3)); err == nil {
		t.Error("wrong pilot count should fail")
	}
	dem := NewDemodulator(HTToneMap)
	if _, _, err := dem.Symbol(make([]complex128, 80), nil, nil); err == nil {
		t.Error("demod should reject non-64-sample input")
	}
}

func TestSymbolFromBinsAndBins(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	mod := NewModulator(LegacyToneMap)
	dem := NewDemodulator(LegacyToneMap)
	bins := make([]complex128, FFTSize)
	for _, b := range LegacyToneMap.Data {
		bins[b] = complex(float64(1-2*r.Intn(2)), 0)
	}
	sym := make([]complex128, SymbolLen)
	if err := mod.SymbolFromBins(sym, bins); err != nil {
		t.Fatal(err)
	}
	got := make([]complex128, FFTSize)
	if err := dem.Bins(got, sym[CPLen:]); err != nil {
		t.Fatal(err)
	}
	for i := range bins {
		if cmplx.Abs(got[i]-bins[i]) > 1e-9 {
			t.Fatalf("bin %d: got %v want %v", i, got[i], bins[i])
		}
	}
}

func BenchmarkModulateSymbol(b *testing.B) {
	r := rand.New(rand.NewSource(5))
	mod := NewModulator(HTToneMap)
	data := randSyms(r, 52)
	pilots := []complex128{1, 1, 1, -1}
	sym := make([]complex128, SymbolLen)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := mod.Symbol(sym, data, pilots); err != nil {
			b.Fatal(err)
		}
	}
}
