package fec

import "fmt"

// Interleaver implements the 802.11 block interleavers as precomputed
// permutation tables. Two variants are supported:
//
//   - Legacy (clause 18): one OFDM symbol of N_CBPS = 48·N_BPSC bits, two
//     permutations with 16 columns.
//   - HT 20 MHz (clause 20, BCC): one symbol per spatial stream of
//     N_CBPSS = 52·N_BPSCS bits, two permutations with 13 columns plus the
//     third frequency-rotation permutation indexed by the spatial stream.
//
// Interleave and Deinterleave are exact inverses; the table is computed once
// at construction. For soft-decision reception, DeinterleaveLLR applies the
// same inverse permutation to float values.
type Interleaver struct {
	perm []int // perm[k] = output position of input bit k
	inv  []int
}

// NewLegacyInterleaver returns the clause-18 interleaver for a modulation of
// nbpsc coded bits per subcarrier (1, 2, 4 or 6).
func NewLegacyInterleaver(nbpsc int) (*Interleaver, error) {
	if err := checkNBPSC(nbpsc); err != nil {
		return nil, err
	}
	ncbps := 48 * nbpsc
	s := maxInt(1, nbpsc/2)
	perm := make([]int, ncbps)
	for k := 0; k < ncbps; k++ {
		i := (ncbps/16)*(k%16) + k/16
		j := s*(i/s) + (i+ncbps-16*i/ncbps)%s
		perm[k] = j
	}
	return newInterleaverFromPerm(perm)
}

// NewHTInterleaver returns the clause-20 20 MHz BCC interleaver for spatial
// stream iss (0-based) of nss total streams, with nbpscs coded bits per
// subcarrier per stream.
func NewHTInterleaver(nbpscs, nss, iss int) (*Interleaver, error) {
	if err := checkNBPSC(nbpscs); err != nil {
		return nil, err
	}
	if nss < 1 || nss > 4 {
		return nil, fmt.Errorf("fec: N_SS %d out of range [1,4]", nss)
	}
	if iss < 0 || iss >= nss {
		return nil, fmt.Errorf("fec: stream index %d out of range [0,%d)", iss, nss)
	}
	const (
		ncol = 13
		nrot = 11
	)
	ncbpss := 52 * nbpscs
	nrow := 4 * nbpscs
	s := maxInt(1, nbpscs/2)
	perm := make([]int, ncbpss)
	for k := 0; k < ncbpss; k++ {
		i := nrow*(k%ncol) + k/ncol
		j := s*(i/s) + (i+ncbpss-ncol*i/ncbpss)%s
		r := j
		if nss > 1 {
			// Third permutation (frequency rotation), IEEE 802.11-2012
			// eq. 20-21 with 1-based stream index.
			jss := iss + 1
			rot := ((jss-1)*2)%3 + 3*((jss-1)/3)
			r = (j - rot*nrot*nbpscs + 4*ncbpss) % ncbpss
		}
		perm[k] = r
	}
	return newInterleaverFromPerm(perm)
}

func newInterleaverFromPerm(perm []int) (*Interleaver, error) {
	inv := make([]int, len(perm))
	seen := make([]bool, len(perm))
	for k, p := range perm {
		if p < 0 || p >= len(perm) || seen[p] {
			return nil, fmt.Errorf("fec: internal error: permutation not bijective at %d→%d", k, p)
		}
		seen[p] = true
		inv[p] = k
	}
	return &Interleaver{perm: perm, inv: inv}, nil
}

func checkNBPSC(n int) error {
	switch n {
	case 1, 2, 4, 6:
		return nil
	}
	return fmt.Errorf("fec: N_BPSC %d not one of 1, 2, 4, 6", n)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// BlockSize returns the interleaver block length (one OFDM symbol of one
// spatial stream).
func (il *Interleaver) BlockSize() int { return len(il.perm) }

// Interleave permutes one block of bits into dst. dst and src must both have
// length BlockSize and must not alias.
func (il *Interleaver) Interleave(dst, src []byte) {
	il.checkLen(len(dst), len(src))
	for k, p := range il.perm {
		dst[p] = src[k]
	}
}

// Deinterleave applies the inverse permutation.
func (il *Interleaver) Deinterleave(dst, src []byte) {
	il.checkLen(len(dst), len(src))
	for k, p := range il.inv {
		dst[p] = src[k]
	}
}

// DeinterleaveLLR applies the inverse permutation to soft values.
func (il *Interleaver) DeinterleaveLLR(dst, src []float64) {
	il.checkLen(len(dst), len(src))
	for k, p := range il.inv {
		dst[p] = src[k]
	}
}

func (il *Interleaver) checkLen(d, s int) {
	if d != len(il.perm) || s != len(il.perm) {
		panic(fmt.Sprintf("fec: interleaver block is %d bits, got dst %d src %d", len(il.perm), d, s))
	}
}
