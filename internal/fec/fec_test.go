package fec

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randBits(r *rand.Rand, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(r.Intn(2))
	}
	return b
}

// addTail appends the 6 zero tail bits that terminate the trellis.
func addTail(bits []byte) []byte {
	return append(append([]byte(nil), bits...), make([]byte, ConstraintLength-1)...)
}

func TestEncodeKnownVector(t *testing.T) {
	// IEEE 802.11 mother code: input 1 0 1 1 from state 0.
	// window(in, s): out A = parity(window & 0o133), B = parity(window & 0o171).
	got := Encode([]byte{1, 0, 1, 1}, Rate1_2)
	// Hand-computed: in=1,s=0: window=0x40: A=parity(0x40&0x5B=0x40)=1, B=parity(0x40&0x79=0x40)=1
	// s=0x20,in=0: window=0x20: A=parity(0x20&0x5B)=0? 0x5B=1011011b bit5=0 →0; B=0x79=1111001b bit5=1 →1
	// s=0x10,in=1: window=0x50: A: bits {6,4}: 0x5B has bit6=1,bit4=1 →1^1=0; B: 0x79 bit6=1,bit4=1 →0
	// s=0x28,in=1: window=0x68: bits{6,5,3}: A:0x5B bit6=1,bit5=0,bit3=1→0; B:0x79 bit6=1,bit5=1,bit3=1→1
	want := []byte{1, 1, 0, 1, 0, 0, 0, 1}
	if !bytes.Equal(got, want) {
		t.Errorf("Encode = %v, want %v", got, want)
	}
}

func TestRateFractionAndString(t *testing.T) {
	for _, c := range []struct {
		r        Rate
		num, den int
		s        string
	}{
		{Rate1_2, 1, 2, "1/2"},
		{Rate2_3, 2, 3, "2/3"},
		{Rate3_4, 3, 4, "3/4"},
		{Rate5_6, 5, 6, "5/6"},
	} {
		n, d := c.r.Fraction()
		if n != c.num || d != c.den || c.r.String() != c.s {
			t.Errorf("rate %v: got %d/%d %q", c.r, n, d, c.r.String())
		}
	}
}

func TestCodedLenMatchesRate(t *testing.T) {
	for _, r := range []Rate{Rate1_2, Rate2_3, Rate3_4, Rate5_6} {
		num, den := r.Fraction()
		// Any multiple of the period (== num at these rates... period is
		// len(pattern)): use a block of 30 data bits, divisible by 1,2,3,5.
		n := 30
		if got := CodedLen(n, r); got != n*den/num {
			t.Errorf("rate %v: CodedLen(%d) = %d, want %d", r, n, got, n*den/num)
		}
		d, err := DataLen(CodedLen(n, r), r)
		if err != nil || d != n {
			t.Errorf("rate %v: DataLen round trip = %d, %v", r, d, err)
		}
	}
	if _, err := DataLen(7, Rate1_2); err == nil {
		t.Error("DataLen(7, 1/2) should error")
	}
}

func TestEncodeLenMatchesCodedLen(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, rate := range []Rate{Rate1_2, Rate2_3, Rate3_4, Rate5_6} {
		for _, n := range []int{30, 60, 120, 600} {
			got := Encode(randBits(r, n), rate)
			if len(got) != CodedLen(n, rate) {
				t.Errorf("rate %v n=%d: encoded %d bits, CodedLen says %d", rate, n, len(got), CodedLen(n, rate))
			}
		}
	}
}

func TestViterbiNoiselessAllRates(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	v := NewViterbi()
	for _, rate := range []Rate{Rate1_2, Rate2_3, Rate3_4, Rate5_6} {
		data := randBits(r, 300)
		padded := addTail(data)
		coded := Encode(padded, rate)
		llr := HardToLLR(nil, coded)
		depunct, err := Depuncture(llr, len(padded), rate)
		if err != nil {
			t.Fatalf("rate %v: %v", rate, err)
		}
		decoded, err := v.DecodeSoft(depunct, true)
		if err != nil {
			t.Fatalf("rate %v: %v", rate, err)
		}
		if !bytes.Equal(decoded[:len(data)], data) {
			t.Errorf("rate %v: noiseless decode failed", rate)
		}
	}
}

func TestViterbiHardDecode(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	v := NewViterbi()
	data := randBits(r, 200)
	padded := addTail(data)
	coded := Encode(padded, Rate1_2)
	decoded, err := v.DecodeHard(coded, true)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(decoded[:len(data)], data) {
		t.Error("hard decode failed on clean input")
	}
}

func TestViterbiCorrectsErrors(t *testing.T) {
	// The K=7 code has free distance 10 at rate 1/2: any pattern of up to 2
	// well-separated bit errors must be corrected.
	r := rand.New(rand.NewSource(4))
	v := NewViterbi()
	for trial := 0; trial < 25; trial++ {
		data := randBits(r, 150)
		padded := addTail(data)
		coded := Encode(padded, Rate1_2)
		// Flip 4 coded bits spaced far apart.
		for k := 0; k < 4; k++ {
			pos := k*(len(coded)/4) + r.Intn(len(coded)/8)
			coded[pos] ^= 1
		}
		decoded, err := v.DecodeHard(coded, true)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(decoded[:len(data)], data) {
			t.Fatalf("trial %d: failed to correct spaced errors", trial)
		}
	}
}

func TestViterbiSoftBeatsHardWithConfidence(t *testing.T) {
	// A flipped bit with low confidence should be forgiven by the soft
	// decoder even when adjacent to other damage.
	r := rand.New(rand.NewSource(5))
	v := NewViterbi()
	data := randBits(r, 100)
	padded := addTail(data)
	coded := Encode(padded, Rate1_2)
	llr := HardToLLR(nil, coded)
	// Inflict a burst of 6 flips but mark them as very low confidence.
	for i := 40; i < 46; i++ {
		llr[i] = -llr[i] * 0.01
	}
	decoded, err := v.DecodeSoft(llr, true)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(decoded[:len(data)], data) {
		t.Error("soft decoder failed on low-confidence burst")
	}
}

func TestViterbiUnterminated(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	v := NewViterbi()
	data := randBits(r, 120)
	coded := Encode(data, Rate1_2)
	decoded, err := v.DecodeHard(coded, false)
	if err != nil {
		t.Fatal(err)
	}
	// Without termination, only the bits older than the decision depth are
	// guaranteed; check all but the last 3·K.
	safe := len(data) - 3*ConstraintLength
	if !bytes.Equal(decoded[:safe], data[:safe]) {
		t.Error("unterminated decode failed in the safe region")
	}
}

func TestViterbiEdgeCases(t *testing.T) {
	v := NewViterbi()
	if got, err := v.DecodeSoft(nil, true); err != nil || got != nil {
		t.Errorf("empty decode = %v, %v", got, err)
	}
	if _, err := v.DecodeSoft(make([]float64, 3), true); err == nil {
		t.Error("odd-length soft input should error")
	}
	if _, err := Depuncture(make([]float64, 5), 4, Rate1_2); err == nil {
		t.Error("wrong-length depuncture should error")
	}
}

func TestEncodeDecodePropertyAllRates(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	v := NewViterbi()
	prop := func(seed int64, rateSel uint8) bool {
		rate := []Rate{Rate1_2, Rate2_3, Rate3_4, Rate5_6}[rateSel%4]
		n := 30 * (1 + int(seed&3))
		data := randBits(r, n)
		padded := addTail(data)
		coded := Encode(padded, rate)
		llr := HardToLLR(nil, coded)
		dep, err := Depuncture(llr, len(padded), rate)
		if err != nil {
			return false
		}
		dec, err := v.DecodeSoft(dep, true)
		if err != nil {
			return false
		}
		return bytes.Equal(dec[:n], data)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func BenchmarkViterbiRate12_1000bits(b *testing.B) {
	r := rand.New(rand.NewSource(8))
	v := NewViterbi()
	data := addTail(randBits(r, 1000))
	coded := Encode(data, Rate1_2)
	llr := HardToLLR(nil, coded)
	b.ReportAllocs()
	b.SetBytes(int64(len(data)) / 8)
	for i := 0; i < b.N; i++ {
		if _, err := v.DecodeSoft(llr, true); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncode1000bits(b *testing.B) {
	r := rand.New(rand.NewSource(9))
	data := randBits(r, 1000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Encode(data, Rate3_4)
	}
}

// referenceDecode is the straightforward 128-edge ACS sweep the butterfly
// kernel in DecodeSoftInto replaced. It is kept as a test oracle: the two
// schedules must produce bit-identical outputs for any soft input,
// including erasures (llr 0) and exact metric ties.
func referenceDecode(llr []float64, terminated bool) []byte {
	const unreachable = math.MaxFloat64 / 4
	steps := len(llr) / 2
	metric := make([]float64, numStates)
	next := make([]float64, numStates)
	survivors := make([][numStates]uint8, steps)
	for s := range metric {
		metric[s] = -unreachable
	}
	metric[0] = 0
	for t := 0; t < steps; t++ {
		la, lb := llr[2*t], llr[2*t+1]
		for s := range next {
			next[s] = -unreachable
		}
		for s := 0; s < numStates; s++ {
			m := metric[s]
			if m <= -unreachable {
				continue
			}
			for in := 0; in < 2; in++ {
				o := outputs[s][in]
				bm := m
				if o&1 == 0 {
					bm += la
				} else {
					bm -= la
				}
				if o&2 == 0 {
					bm += lb
				} else {
					bm -= lb
				}
				ns := nextState[s][in]
				if bm > next[ns] {
					next[ns] = bm
					survivors[t][ns] = uint8(s & 1)
				}
			}
		}
		metric, next = next, metric
	}
	state := 0
	if !terminated {
		best := -unreachable * 2
		for s, m := range metric {
			if m > best {
				best, state = m, s
			}
		}
	}
	bits := make([]byte, steps)
	for t := steps - 1; t >= 0; t-- {
		bits[t] = uint8(state >> (ConstraintLength - 2))
		state = ((state << 1) & (numStates - 1)) | int(survivors[t][state])
	}
	return bits
}

func TestViterbiButterflyMatchesReferenceSweep(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	v := NewViterbi()
	for trial := 0; trial < 200; trial++ {
		steps := 1 + r.Intn(400)
		llr := make([]float64, 2*steps)
		for i := range llr {
			switch r.Intn(5) {
			case 0:
				llr[i] = 0 // erasure
			case 1:
				// Small integer LLRs force exact metric ties, exercising
				// the prefer-earliest-predecessor rule.
				llr[i] = float64(r.Intn(5) - 2)
			default:
				llr[i] = r.NormFloat64()
			}
		}
		terminated := trial%2 == 0
		got, err := v.DecodeSoft(llr, terminated)
		if err != nil {
			t.Fatal(err)
		}
		want := referenceDecode(llr, terminated)
		if !bytes.Equal(got, want) {
			t.Fatalf("trial %d (steps=%d terminated=%v): butterfly decode differs from reference sweep", trial, steps, terminated)
		}
	}
}

func TestViterbiReserveAvoidsDecodeAllocs(t *testing.T) {
	r := rand.New(rand.NewSource(78))
	data := addTail(randBits(r, 4000))
	coded := Encode(data, Rate1_2)
	llr := HardToLLR(nil, coded)
	v := NewViterbi()
	v.Reserve(len(data))
	dst := make([]byte, len(data))
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := v.DecodeSoftInto(dst, llr, true); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("DecodeSoftInto after Reserve allocated %.0f times per run, want 0", allocs)
	}
}
