package fec

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestInterleaverRoundTripLegacy(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	for _, nbpsc := range []int{1, 2, 4, 6} {
		il, err := NewLegacyInterleaver(nbpsc)
		if err != nil {
			t.Fatal(err)
		}
		if il.BlockSize() != 48*nbpsc {
			t.Errorf("nbpsc=%d: block size %d", nbpsc, il.BlockSize())
		}
		src := randBits(r, il.BlockSize())
		mid := make([]byte, il.BlockSize())
		out := make([]byte, il.BlockSize())
		il.Interleave(mid, src)
		il.Deinterleave(out, mid)
		if !bytes.Equal(out, src) {
			t.Errorf("nbpsc=%d: round trip failed", nbpsc)
		}
	}
}

func TestInterleaverRoundTripHT(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for _, nbpscs := range []int{1, 2, 4, 6} {
		for nss := 1; nss <= 4; nss++ {
			for iss := 0; iss < nss; iss++ {
				il, err := NewHTInterleaver(nbpscs, nss, iss)
				if err != nil {
					t.Fatal(err)
				}
				if il.BlockSize() != 52*nbpscs {
					t.Errorf("block size %d", il.BlockSize())
				}
				src := randBits(r, il.BlockSize())
				mid := make([]byte, il.BlockSize())
				out := make([]byte, il.BlockSize())
				il.Interleave(mid, src)
				il.Deinterleave(out, mid)
				if !bytes.Equal(out, src) {
					t.Errorf("nbpscs=%d nss=%d iss=%d: round trip failed", nbpscs, nss, iss)
				}
			}
		}
	}
}

func TestInterleaverIsActuallyPermuting(t *testing.T) {
	il, err := NewLegacyInterleaver(2)
	if err != nil {
		t.Fatal(err)
	}
	src := make([]byte, il.BlockSize())
	for i := range src {
		src[i] = byte(i % 2)
	}
	dst := make([]byte, il.BlockSize())
	il.Interleave(dst, src)
	if bytes.Equal(dst, src) {
		t.Error("interleaver left a nontrivial block unchanged")
	}
}

func TestHTStreamRotationDiffers(t *testing.T) {
	// For N_SS = 2, the two streams must use different permutations — that
	// is the entire point of the third permutation.
	il0, _ := NewHTInterleaver(2, 2, 0)
	il1, _ := NewHTInterleaver(2, 2, 1)
	src := make([]byte, il0.BlockSize())
	src[0] = 1
	a := make([]byte, len(src))
	b := make([]byte, len(src))
	il0.Interleave(a, src)
	il1.Interleave(b, src)
	if bytes.Equal(a, b) {
		t.Error("streams 0 and 1 produced identical interleaving")
	}
}

func TestLegacyInterleaverAdjacentBitsSpread(t *testing.T) {
	// Adjacent coded bits must land on nonadjacent subcarriers — the
	// design property of the first permutation. For N_BPSC=1 the bit index
	// equals the subcarrier index.
	il, _ := NewLegacyInterleaver(1)
	src := make([]byte, 48)
	dst := make([]byte, 48)
	src[0], src[1] = 1, 1
	il.Interleave(dst, src)
	var positions []int
	for i, b := range dst {
		if b == 1 {
			positions = append(positions, i)
		}
	}
	if len(positions) != 2 {
		t.Fatalf("expected 2 set bits, got %v", positions)
	}
	gap := positions[1] - positions[0]
	if gap < 2 {
		t.Errorf("adjacent coded bits map to adjacent carriers (gap %d)", gap)
	}
}

func TestInterleaverKnownVectorLegacyBPSK(t *testing.T) {
	// For N_BPSC=1 (s=1), j == i and i = 3·(k mod 16) + k/16.
	il, _ := NewLegacyInterleaver(1)
	for _, c := range []struct{ k, want int }{
		{0, 0}, {1, 3}, {15, 45}, {16, 1}, {47, 47},
	} {
		src := make([]byte, 48)
		dst := make([]byte, 48)
		src[c.k] = 1
		il.Interleave(dst, src)
		if dst[c.want] != 1 {
			got := -1
			for i, b := range dst {
				if b == 1 {
					got = i
				}
			}
			t.Errorf("bit %d mapped to %d, want %d", c.k, got, c.want)
		}
	}
}

func TestInterleaverValidation(t *testing.T) {
	if _, err := NewLegacyInterleaver(3); err == nil {
		t.Error("N_BPSC=3 should be rejected")
	}
	if _, err := NewHTInterleaver(2, 5, 0); err == nil {
		t.Error("N_SS=5 should be rejected")
	}
	if _, err := NewHTInterleaver(2, 2, 2); err == nil {
		t.Error("iss ≥ nss should be rejected")
	}
}

func TestDeinterleaveLLRMatchesBits(t *testing.T) {
	il, _ := NewHTInterleaver(4, 2, 1)
	r := rand.New(rand.NewSource(12))
	prop := func(seed int64) bool {
		_ = seed
		bits := randBits(r, il.BlockSize())
		llr := make([]float64, len(bits))
		inter := make([]byte, len(bits))
		il.Interleave(inter, bits)
		for i, b := range inter {
			if b == 0 {
				llr[i] = 1
			} else {
				llr[i] = -1
			}
		}
		outBits := make([]byte, len(bits))
		outLLR := make([]float64, len(bits))
		il.Deinterleave(outBits, inter)
		il.DeinterleaveLLR(outLLR, llr)
		for i := range outBits {
			hard := byte(0)
			if outLLR[i] < 0 {
				hard = 1
			}
			if hard != outBits[i] {
				return false
			}
		}
		return bytes.Equal(outBits, bits)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestInterleaverLengthPanics(t *testing.T) {
	il, _ := NewLegacyInterleaver(1)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on wrong block length")
		}
	}()
	il.Interleave(make([]byte, 10), make([]byte, 48))
}
