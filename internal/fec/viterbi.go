package fec

import (
	"fmt"
	"math"
)

// Viterbi is a reusable maximum-likelihood decoder for the 802.11 BCC. It
// accepts soft inputs as log-likelihood ratios with the convention
// llr > 0 ⇒ the coded bit is more likely 0; the magnitude expresses
// confidence. Hard-decision decoding is the special case llr ∈ {+1, −1}.
//
// A Viterbi value is not safe for concurrent use; create one per goroutine.
// The decoder reuses its metric arrays across calls and grows its traceback
// matrix on demand, so steady-state decoding does not allocate.
type Viterbi struct {
	metric     []float64
	nextMetric []float64
	// survivors[t][ns] is the low bit of the best predecessor of state ns
	// at trellis step t. Together with ns it reconstructs the predecessor:
	// with nextState = in<<5 | s>>1, the predecessor is
	// s = (ns&31)<<1 | survivor, and the step-t input bit is ns>>5.
	survivors [][numStates]uint8
}

// NewViterbi returns a decoder.
func NewViterbi() *Viterbi {
	return &Viterbi{
		metric:     make([]float64, numStates),
		nextMetric: make([]float64, numStates),
	}
}

// Depuncture expands coded values received at the given rate back to the
// mother-code stream of 2·dataBits values, inserting zeros (erasures) at
// punctured positions. dataBits is the number of trellis steps the decoder
// will run.
func Depuncture(llr []float64, dataBits int, rate Rate) ([]float64, error) {
	pa, pb := rate.puncturePattern()
	period := len(pa)
	want := codedLen(dataBits, rate)
	if len(llr) != want {
		return nil, fmt.Errorf("fec: depuncture got %d values, want %d for %d data bits at rate %v",
			len(llr), want, dataBits, rate)
	}
	out := make([]float64, 2*dataBits)
	src := 0
	for i := 0; i < dataBits; i++ {
		p := i % period
		if pa[p] {
			out[2*i] = llr[src]
			src++
		}
		if pb[p] {
			out[2*i+1] = llr[src]
			src++
		}
	}
	return out, nil
}

// DecodeSoft runs Viterbi decoding over a depunctured mother-code LLR stream
// (length must be even; 2 values per trellis step) and returns the decoded
// data bits, one per trellis step. If terminated is true the trellis is
// assumed driven back to the all-zero state by tail bits and traceback
// starts from state 0; otherwise traceback starts from the best-metric end
// state.
func (v *Viterbi) DecodeSoft(llr []float64, terminated bool) ([]byte, error) {
	if len(llr)%2 != 0 {
		return nil, fmt.Errorf("fec: soft input length %d is odd", len(llr))
	}
	steps := len(llr) / 2
	if steps == 0 {
		return nil, nil
	}
	v.ensureTraceback(steps)

	const unreachable = math.MaxFloat64 / 4
	for s := range v.metric {
		v.metric[s] = -unreachable
	}
	v.metric[0] = 0 // encoder starts in state 0

	for t := 0; t < steps; t++ {
		la, lb := llr[2*t], llr[2*t+1]
		for s := range v.nextMetric {
			v.nextMetric[s] = -unreachable
		}
		surv := &v.survivors[t]
		for s := 0; s < numStates; s++ {
			m := v.metric[s]
			if m <= -unreachable {
				continue
			}
			for in := 0; in < 2; in++ {
				o := outputs[s][in]
				// Correlation metric: +llr if the expected coded bit is 0,
				// −llr if it is 1. Erasures (llr 0) contribute nothing.
				bm := m
				if o&1 == 0 {
					bm += la
				} else {
					bm -= la
				}
				if o&2 == 0 {
					bm += lb
				} else {
					bm -= lb
				}
				ns := nextState[s][in]
				if bm > v.nextMetric[ns] {
					v.nextMetric[ns] = bm
					surv[ns] = uint8(s & 1)
				}
			}
		}
		v.metric, v.nextMetric = v.nextMetric, v.metric
	}

	state := 0
	if !terminated {
		best := math.Inf(-1)
		for s, m := range v.metric {
			if m > best {
				best, state = m, s
			}
		}
	}
	bits := make([]byte, steps)
	for t := steps - 1; t >= 0; t-- {
		bits[t] = uint8(state >> (ConstraintLength - 2)) // input bit sits at the register top
		state = ((state << 1) & (numStates - 1)) | int(v.survivors[t][state])
	}
	return bits, nil
}

// DecodeHard decodes hard-decision coded bits (0/1, one per byte) by mapping
// them to unit-confidence LLRs. The scratch LLR buffer is reused across
// calls.
func (v *Viterbi) DecodeHard(coded []byte, terminated bool) ([]byte, error) {
	llr := make([]float64, len(coded))
	for i, b := range coded {
		if b&1 == 0 {
			llr[i] = 1
		} else {
			llr[i] = -1
		}
	}
	return v.DecodeSoft(llr, terminated)
}

func (v *Viterbi) ensureTraceback(steps int) {
	if cap(v.survivors) < steps {
		v.survivors = make([][numStates]uint8, steps)
	}
	v.survivors = v.survivors[:steps]
}

// HardToLLR converts hard bits to ±1 LLRs into dst (allocating if dst is
// short), exposed for the PHY's hard-decision receive path.
func HardToLLR(dst []float64, bits []byte) []float64 {
	if cap(dst) < len(bits) {
		dst = make([]float64, len(bits))
	}
	dst = dst[:len(bits)]
	for i, b := range bits {
		if b&1 == 0 {
			dst[i] = 1
		} else {
			dst[i] = -1
		}
	}
	return dst
}
