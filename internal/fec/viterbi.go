package fec

import (
	"fmt"
	"math"
)

// Viterbi is a reusable maximum-likelihood decoder for the 802.11 BCC. It
// accepts soft inputs as log-likelihood ratios with the convention
// llr > 0 ⇒ the coded bit is more likely 0; the magnitude expresses
// confidence. Hard-decision decoding is the special case llr ∈ {+1, −1}.
//
// A Viterbi value is not safe for concurrent use; create one per goroutine.
// The decoder reuses its metric arrays across calls and grows its traceback
// matrix on demand, so steady-state decoding does not allocate.
type Viterbi struct {
	metric     []float64
	nextMetric []float64
	// survivors[t] packs, one bit per state, the low bit of the best
	// predecessor of each state at trellis step t: bit ns is the survivor
	// decision for state ns. Together with ns it reconstructs the
	// predecessor: with nextState = in<<5 | s>>1, the predecessor is
	// s = (ns&31)<<1 | survivor, and the step-t input bit is ns>>5.
	// One uint64 per step keeps the traceback matrix at 8 bytes/step — a
	// 1500-byte packet's 12k-step traceback stays under 100 KiB and cache
	// resident, where a byte-per-state layout would stream ~770 KiB.
	survivors []uint64
	// hardLLR is the DecodeHard scratch mapping coded bits to ±1 LLRs.
	hardLLR []float64
}

// NewViterbi returns a decoder.
func NewViterbi() *Viterbi {
	return &Viterbi{
		metric:     make([]float64, numStates),
		nextMetric: make([]float64, numStates),
	}
}

// Depuncture expands coded values received at the given rate back to the
// mother-code stream of 2·dataBits values, inserting zeros (erasures) at
// punctured positions. dataBits is the number of trellis steps the decoder
// will run. It allocates the output; hot paths should hold a buffer and use
// DepunctureInto.
func Depuncture(llr []float64, dataBits int, rate Rate) ([]float64, error) {
	return DepunctureInto(nil, llr, dataBits, rate)
}

// DepunctureInto is Depuncture writing into dst, which is grown only when
// its capacity is short and returned resliced to 2·dataBits. Punctured
// positions are explicitly zeroed, so dst may hold stale values. llr and
// dst must not overlap.
func DepunctureInto(dst, llr []float64, dataBits int, rate Rate) ([]float64, error) {
	pa, pb := rate.puncturePattern()
	period := len(pa)
	want := codedLen(dataBits, rate)
	if len(llr) != want {
		return nil, fmt.Errorf("fec: depuncture got %d values, want %d for %d data bits at rate %v",
			len(llr), want, dataBits, rate)
	}
	if cap(dst) < 2*dataBits {
		dst = make([]float64, 2*dataBits)
	}
	dst = dst[:2*dataBits]
	src := 0
	for i := 0; i < dataBits; i++ {
		p := i % period
		if pa[p] {
			dst[2*i] = llr[src]
			src++
		} else {
			dst[2*i] = 0
		}
		if pb[p] {
			dst[2*i+1] = llr[src]
			src++
		} else {
			dst[2*i+1] = 0
		}
	}
	return dst, nil
}

// DecodeSoft runs Viterbi decoding over a depunctured mother-code LLR stream
// (length must be even; 2 values per trellis step) and returns the decoded
// data bits, one per trellis step. If terminated is true the trellis is
// assumed driven back to the all-zero state by tail bits and traceback
// starts from state 0; otherwise traceback starts from the best-metric end
// state. It allocates the output; hot paths should hold a buffer and use
// DecodeSoftInto.
func (v *Viterbi) DecodeSoft(llr []float64, terminated bool) ([]byte, error) {
	return v.DecodeSoftInto(nil, llr, terminated)
}

// DecodeSoftInto is DecodeSoft writing the decoded bits into dst, which is
// grown only when its capacity is short and returned resliced to one byte
// per trellis step.
//
// The add-compare-select step runs over 32 radix-2 butterflies rather than
// 128 state×input edges. Both generators (133, 171 octal) include the top
// and bottom taps of the shift register, so flipping either the input bit
// or the oldest state bit complements both coded bits: the four edges of
// butterfly j (states 2j, 2j+1 → j, j+32) carry only two distinct output
// pairs, o and o^3, and share one ±la/±lb addend pattern. The per-edge
// arithmetic — (m ± la) ± lb with strictly-greater updates in ascending
// predecessor order — is identical to the straightforward 128-edge sweep,
// so decoded outputs are bit-identical; only the schedule changed.
//
//mimonet:hot
func (v *Viterbi) DecodeSoftInto(dst []byte, llr []float64, terminated bool) ([]byte, error) {
	if len(llr)%2 != 0 {
		return nil, fmt.Errorf("fec: soft input length %d is odd", len(llr))
	}
	steps := len(llr) / 2
	if steps == 0 {
		return nil, nil
	}
	v.ensureTraceback(steps)

	const unreachable = math.MaxFloat64 / 4
	for s := range v.metric {
		v.metric[s] = -unreachable
	}
	v.metric[0] = 0 // encoder starts in state 0

	// Fixed-size array views let the compiler drop bounds checks in the ACS
	// loop; both slices are always exactly numStates long.
	cur := (*[numStates]float64)(v.metric)
	nxt := (*[numStates]float64)(v.nextMetric)
	for t := 0; t < steps; t++ {
		la, lb := llr[2*t], llr[2*t+1]
		// Correlation addends indexed by expected coded bit: +llr for an
		// expected 0, −llr for an expected 1. Erasures (llr 0) contribute
		// nothing either way.
		selA := [2]float64{la, -la}
		selB := [2]float64{lb, -lb}
		var surv uint64
		for j := 0; j < numStates/2; j++ {
			m0, m1 := cur[2*j], cur[2*j+1]
			o := butterflyOut[j]
			oa, ob := o&1, o>>1
			aa, na := selA[oa], selA[oa^1]
			ab, nb := selB[ob], selB[ob^1]
			// Edge outputs: 2j→j carries o, 2j+1→j and 2j→j+32 carry o^3,
			// 2j+1→j+32 carries o again.
			a := (m0 + aa) + ab
			c := (m1 + na) + nb
			d := (m0 + na) + nb
			e := (m1 + aa) + ab
			// Branchless compare-select: the survivor branches are decided
			// by channel noise, so a conditional here mispredicts roughly
			// half the time. max picks the winning metric without new
			// arithmetic, and the survivor bit is the sign of the exact
			// difference — 1 iff the odd predecessor strictly wins, the same
			// strictly-greater tie-break as the branching form (metrics are
			// sums that can never be −0, so a−c = +0 on ties).
			nxt[j] = max(a, c)
			nxt[j+numStates/2] = max(d, e)
			surv |= (math.Float64bits(a-c)>>63)<<j |
				(math.Float64bits(d-e)>>63)<<(j+numStates/2)
		}
		v.survivors[t] = surv
		cur, nxt = nxt, cur
	}
	v.metric, v.nextMetric = cur[:], nxt[:]

	state := 0
	if !terminated {
		best := math.Inf(-1)
		for s, m := range v.metric {
			if m > best {
				best, state = m, s
			}
		}
	}
	bits := dst
	if cap(bits) < steps {
		bits = make([]byte, steps)
	}
	bits = bits[:steps]
	for t := steps - 1; t >= 0; t-- {
		bits[t] = uint8(state >> (ConstraintLength - 2)) // input bit sits at the register top
		state = ((state << 1) & (numStates - 1)) | int((v.survivors[t]>>state)&1)
	}
	return bits, nil
}

// DecodeHard decodes hard-decision coded bits (0/1, one per byte) by mapping
// them to unit-confidence LLRs. The scratch LLR buffer is reused across
// calls.
func (v *Viterbi) DecodeHard(coded []byte, terminated bool) ([]byte, error) {
	v.hardLLR = HardToLLR(v.hardLLR, coded)
	return v.DecodeSoft(v.hardLLR, terminated)
}

// Reserve pre-sizes the decoder's metric and traceback storage for a decode
// of the given number of trellis steps, so the subsequent DecodeSoftInto
// performs no allocation. The PHY calls this with the SIG-declared packet
// length as soon as the header is decoded, before the data symbols stream in.
func (v *Viterbi) Reserve(steps int) {
	if steps > 0 {
		v.ensureTraceback(steps)
	}
}

func (v *Viterbi) ensureTraceback(steps int) {
	if cap(v.survivors) < steps {
		v.survivors = make([]uint64, steps)
	}
	v.survivors = v.survivors[:steps]
}

// HardToLLR converts hard bits to ±1 LLRs into dst (allocating if dst is
// short), exposed for the PHY's hard-decision receive path.
func HardToLLR(dst []float64, bits []byte) []float64 {
	if cap(dst) < len(bits) {
		dst = make([]float64, len(bits))
	}
	dst = dst[:len(bits)]
	for i, b := range bits {
		if b&1 == 0 {
			dst[i] = 1
		} else {
			dst[i] = -1
		}
	}
	return dst
}
