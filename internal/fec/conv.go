// Package fec implements the forward-error-correction pipeline the paper
// concatenates into its packet construction: the 802.11 rate-1/2
// constraint-length-7 convolutional code (generators 133/171 octal),
// puncturing to rates 2/3, 3/4 and 5/6, hard- and soft-decision Viterbi
// decoding, and the per-spatial-stream BCC interleaver of 802.11n.
package fec

import "fmt"

const (
	// ConstraintLength is K for the 802.11 BCC.
	ConstraintLength = 7
	numStates        = 1 << (ConstraintLength - 1) // 64
	// Generator polynomials, octal 133 and 171 (IEEE 802.11-2012 §18.3.5.6).
	genA = 0o133
	genB = 0o171
)

// Rate identifies a coding rate of the punctured BCC.
type Rate int

// Supported coding rates.
const (
	Rate1_2 Rate = iota
	Rate2_3
	Rate3_4
	Rate5_6
)

func (r Rate) String() string {
	switch r {
	case Rate1_2:
		return "1/2"
	case Rate2_3:
		return "2/3"
	case Rate3_4:
		return "3/4"
	case Rate5_6:
		return "5/6"
	}
	return fmt.Sprintf("Rate(%d)", int(r))
}

// Fraction returns the numerator and denominator of the rate.
func (r Rate) Fraction() (num, den int) {
	switch r {
	case Rate1_2:
		return 1, 2
	case Rate2_3:
		return 2, 3
	case Rate3_4:
		return 3, 4
	case Rate5_6:
		return 5, 6
	default:
		panic(fmt.Sprintf("fec: unknown rate %d", int(r)))
	}
}

// puncturePattern returns the keep-mask over the mother-code output, as
// (A-branch mask, B-branch mask) per input-bit period (IEEE 802.11-2012
// §18.3.5.6 figures; the 5/6 pattern is from §20.3.11.6).
func (r Rate) puncturePattern() (a, b []bool) {
	switch r {
	case Rate1_2:
		return []bool{true}, []bool{true}
	case Rate2_3:
		return []bool{true, true}, []bool{true, false}
	case Rate3_4:
		return []bool{true, true, false}, []bool{true, false, true}
	case Rate5_6:
		return []bool{true, true, false, true, false}, []bool{true, false, true, false, true}
	default:
		panic(fmt.Sprintf("fec: unknown rate %d", int(r)))
	}
}

// parity64 returns the parity of the set bits of x.
func parity64(x uint32) byte {
	x ^= x >> 16
	x ^= x >> 8
	x ^= x >> 4
	x ^= x >> 2
	x ^= x >> 1
	return byte(x & 1)
}

// outputs[state][input] packs the two coded bits (A in bit 0, B in bit 1)
// produced when `input` is shifted into `state`.
var outputs [numStates][2]byte

// nextState[state][input] is the successor register state.
var nextState [numStates][2]int

// butterflyOut[j] is the coded-bit pair emitted on the state-2j, input-0
// edge of trellis butterfly j (states 2j, 2j+1 → j, j+32). Because both
// generators tap the newest and oldest register bits, the other three edges
// of the butterfly emit either the same pair or its complement o^3, which
// is what lets the Viterbi ACS loop process four edges per table load.
var butterflyOut [numStates / 2]byte

func init() {
	for s := 0; s < numStates; s++ {
		for in := 0; in < 2; in++ {
			// Register holds the K-1 previous bits; the full window is the
			// input bit followed by the state (input = most recent).
			window := uint32(in)<<(ConstraintLength-1) | uint32(s)
			a := parity64(window & genA)
			b := parity64(window & genB)
			outputs[s][in] = a | b<<1
			nextState[s][in] = int(window >> 1)
		}
	}
	for j := range butterflyOut {
		butterflyOut[j] = outputs[2*j][0]
	}
}

// Encode convolutionally encodes data bits (one bit per byte) with the
// rate-1/2 mother code and punctures to the requested rate. The encoder
// starts in the all-zero state; callers append 6 tail zero bits to the data
// if they need the trellis terminated (the PHY's SERVICE+tail framing does
// this).
//
// The returned slice contains the surviving coded bits in transmission
// order (A then B within each period, punctured positions skipped).
func Encode(data []byte, rate Rate) []byte {
	pa, pb := rate.puncturePattern()
	period := len(pa)
	out := make([]byte, 0, codedLen(len(data), rate))
	state := 0
	for i, bit := range data {
		in := int(bit & 1)
		o := outputs[state][in]
		p := i % period
		if pa[p] {
			out = append(out, o&1)
		}
		if pb[p] {
			out = append(out, (o>>1)&1)
		}
		state = nextState[state][in]
	}
	return out
}

// codedLen returns the number of coded bits produced by encoding n data bits
// at the given rate. n must be a multiple of the puncture period for the
// count to be exact at punctured rates; the PHY padding guarantees this.
func codedLen(n int, rate Rate) int {
	pa, pb := rate.puncturePattern()
	period := len(pa)
	full := n / period
	kept := 0
	for i := 0; i < period; i++ {
		if pa[i] {
			kept++
		}
		if pb[i] {
			kept++
		}
	}
	total := full * kept
	for i := 0; i < n%period; i++ {
		if pa[i] {
			total++
		}
		if pb[i] {
			total++
		}
	}
	return total
}

// CodedLen is the exported form of codedLen for the PHY's symbol budgeting.
func CodedLen(dataBits int, rate Rate) int { return codedLen(dataBits, rate) }

// DataLen returns the number of data bits that produce codedBits coded bits
// at the given rate, or an error if codedBits does not correspond to a whole
// number of periods.
func DataLen(codedBits int, rate Rate) (int, error) {
	num, den := rate.Fraction()
	// codedBits : dataBits = den : num·? — for the mother code 2 coded per
	// data bit; at rate num/den, den coded bits carry num·? ... simplest:
	// dataBits = codedBits * num / den.
	if codedBits*num%den != 0 {
		return 0, fmt.Errorf("fec: %d coded bits is not a whole block at rate %v", codedBits, rate)
	}
	return codedBits * num / den, nil
}
