package radio

import (
	"fmt"
	"net"
	"time"

	"repro/internal/clock"
	"repro/internal/obs"
)

// UDPSender streams bursts as UDP datagrams, one frame per datagram. UDP
// mirrors the lossy sample path between an SDR front end and the host: the
// receiver detects gaps via sequence numbers and zero-fills them, which the
// PHY experiences as erasure noise — exactly how dropped Ethernet sample
// packets manifest on a real USRP link.
type UDPSender struct {
	conn    *net.UDPConn
	streams int
	seq     uint64
	buf     []byte
	// SamplesPerDatagram bounds the frame size; the default keeps 1-stream
	// datagrams under a 1500-byte MTU.
	SamplesPerDatagram int
	// Intercept, when set, sees every encoded frame before transmission and
	// returns the datagrams to actually send: none (loss), the input
	// (possibly mutated), or several (delayed frames released out of order).
	// The slice passed in is a private copy the hook may keep or mutate.
	// Used by the faults package to inject link-level impairments.
	Intercept func(datagram []byte) [][]byte
}

// NewUDPSender dials the receiver address.
func NewUDPSender(addr string, streams int) (*UDPSender, error) {
	if streams < 1 || streams > 4 {
		return nil, fmt.Errorf("radio: stream count %d out of range [1,4]", streams)
	}
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("radio: resolve %q: %w", addr, err)
	}
	conn, err := net.DialUDP("udp", nil, ua)
	if err != nil {
		return nil, fmt.Errorf("radio: dial %q: %w", addr, err)
	}
	return &UDPSender{conn: conn, streams: streams, SamplesPerDatagram: 180 / streams * streams}, nil
}

// Close releases the socket.
func (s *UDPSender) Close() error { return s.conn.Close() }

// LocalAddr returns the sender's local address.
func (s *UDPSender) LocalAddr() net.Addr { return s.conn.LocalAddr() }

// WriteBurst sends one burst as a train of datagrams, the last flagged
// end-of-burst. The frames carry packet ID 0 (unknown); transmitters that
// track MAC packets use WriteBurstID.
func (s *UDPSender) WriteBurst(samples [][]complex128) error {
	return s.WriteBurstID(0, samples)
}

// WriteBurstID sends one burst with every datagram's frame stamped with the
// TX-assigned packet ID, so the receiver can correlate the burst with the
// sender's record even across datagram loss.
func (s *UDPSender) WriteBurstID(packetID uint64, samples [][]complex128) error {
	if len(samples) != s.streams {
		return fmt.Errorf("radio: %d streams, sender configured for %d", len(samples), s.streams)
	}
	per := s.SamplesPerDatagram
	if per < 1 {
		per = 1
	}
	if per > MaxSamplesPerFrame {
		per = MaxSamplesPerFrame
	}
	total := len(samples[0])
	if total == 0 {
		return fmt.Errorf("radio: empty burst")
	}
	for off := 0; off < total; off += per {
		end := off + per
		if end > total {
			end = total
		}
		var flags uint16
		if end == total {
			flags = FlagEndOfBurst
		}
		chunk := make([][]complex128, s.streams)
		for st := range samples {
			chunk[st] = samples[st][off:end]
		}
		s.buf = s.buf[:0]
		var err error
		s.buf, err = EncodeFrame(s.buf, Header{Streams: s.streams, Flags: flags, Seq: s.seq, Count: end - off, PacketID: packetID}, chunk)
		if err != nil {
			return err
		}
		s.seq++
		if s.Intercept != nil {
			for _, d := range s.Intercept(append([]byte(nil), s.buf...)) {
				if _, err := s.conn.Write(d); err != nil {
					return fmt.Errorf("radio: udp write: %w", err)
				}
			}
			continue
		}
		if _, err := s.conn.Write(s.buf); err != nil {
			return fmt.Errorf("radio: udp write: %w", err)
		}
	}
	return nil
}

// UDPReceiver receives bursts and accounts for datagram loss.
type UDPReceiver struct {
	conn *net.UDPConn
	buf  []byte
	// Lost counts datagrams missing from the sequence so far.
	Lost uint64
	// Corrupt counts datagrams with unparseable headers or truncated
	// payloads.
	Corrupt uint64
	// Late counts datagrams that arrived after their gap was already
	// zero-filled (reordered or duplicated frames); they are discarded.
	Late uint64
	// nextSeq is the expected next sequence number (0 before first frame).
	nextSeq uint64
	started bool
	// lastPacketID is the packet ID carried by the most recently assembled
	// burst's frames.
	lastPacketID uint64
	// clk computes read deadlines; injectable (SetClock) so deadline logic
	// is testable without wall-clock dependence.
	clk clock.Clock
	// Exposition counters mirroring the tallies above (nil until Instrument).
	cDatagrams *obs.Counter
	cLost      *obs.Counter
	cCorrupt   *obs.Counter
	cLate      *obs.Counter
}

// maxGapFill caps the zero-fill for one sequence gap (in samples per
// stream) so a corrupted sequence number cannot force an absurd allocation.
const maxGapFill = 1 << 20

// NewUDPReceiver listens on addr (e.g. "127.0.0.1:0").
func NewUDPReceiver(addr string) (*UDPReceiver, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("radio: resolve %q: %w", addr, err)
	}
	conn, err := net.ListenUDP("udp", ua)
	if err != nil {
		return nil, fmt.Errorf("radio: listen %q: %w", addr, err)
	}
	return &UDPReceiver{conn: conn, buf: make([]byte, 65536), clk: clock.System}, nil
}

// SetClock replaces the receiver's time source for deadline computation.
// Nil restores the system clock.
func (r *UDPReceiver) SetClock(c clock.Clock) { r.clk = clock.Or(c) }

// Instrument registers the receiver's link counters in reg: datagrams seen
// plus the loss/corruption/reorder tallies the exported fields track. A nil
// registry leaves the receiver un-instrumented (counters stay no-ops).
func (r *UDPReceiver) Instrument(reg *obs.Registry) {
	r.cDatagrams = reg.Counter("mimonet_udp_datagrams_total",
		"UDP sample datagrams received (including discarded ones)")
	r.cLost = reg.Counter("mimonet_udp_lost_total",
		"datagrams missing from the sequence, zero-filled as erasures")
	r.cCorrupt = reg.Counter("mimonet_udp_corrupt_total",
		"datagrams with unparseable headers or truncated payloads")
	r.cLate = reg.Counter("mimonet_udp_late_total",
		"reordered or duplicated datagrams discarded after their gap was filled")
}

// Close releases the socket.
func (r *UDPReceiver) Close() error { return r.conn.Close() }

// Addr returns the bound address (useful with port 0).
func (r *UDPReceiver) Addr() net.Addr { return r.conn.LocalAddr() }

// LastPacketID returns the TX-assigned packet ID of the last burst ReadBurst
// returned (0 before the first burst or on legacy frames).
func (r *UDPReceiver) LastPacketID() uint64 { return r.lastPacketID }

// ReadBurst assembles one burst. Missing datagrams are zero-filled with the
// frame size inferred from neighbours, and counted in Lost. timeout bounds
// the wait for each datagram; zero means no deadline.
func (r *UDPReceiver) ReadBurst(timeout time.Duration) ([][]complex128, error) {
	var out [][]complex128
	lastCount := 0
	for {
		if timeout > 0 {
			if err := r.conn.SetReadDeadline(r.clk.Now().Add(timeout)); err != nil {
				return nil, err
			}
		}
		n, _, err := r.conn.ReadFromUDP(r.buf)
		if err != nil {
			return nil, fmt.Errorf("radio: udp read: %w", err)
		}
		r.cDatagrams.Inc()
		h, err := DecodeHeader(r.buf[:n])
		if err != nil {
			// Foreign, truncated, or corrupted beyond recognition.
			r.Corrupt++
			r.cCorrupt.Inc()
			continue
		}
		if r.started && h.Seq < r.nextSeq {
			// Reordered or duplicated: its position was already zero-filled
			// (or consumed); splicing it in now would misalign the stream.
			r.Late++
			r.cLate.Inc()
			continue
		}
		if r.started && h.Seq > r.nextSeq {
			gap := h.Seq - r.nextSeq
			r.Lost += gap
			r.cLost.Add(int64(gap))
			// Zero-fill the missing samples so the stream stays aligned,
			// bounded so a corrupted sequence number cannot force an absurd
			// allocation.
			if out != nil && lastCount > 0 {
				fill := int(gap) * lastCount
				if gap > maxGapFill/uint64(lastCount) {
					fill = maxGapFill
				}
				for s := range out {
					out[s] = append(out[s], make([]complex128, fill)...)
				}
			}
		}
		r.started = true
		r.nextSeq = h.Seq + 1
		if out == nil {
			out = make([][]complex128, h.Streams)
			r.lastPacketID = h.PacketID
		}
		if len(out) != h.Streams {
			return nil, fmt.Errorf("radio: stream count changed mid-burst")
		}
		if dec, derr := DecodePayload(out, h, r.buf[h.HeaderLen():n]); derr != nil {
			// Truncated payload: keep the stream aligned by zero-filling the
			// samples this frame claimed to carry. The end-of-burst flag is
			// still honoured so the burst terminates.
			r.Corrupt++
			r.cCorrupt.Inc()
			for s := range out {
				out[s] = append(out[s], make([]complex128, h.Count)...)
			}
		} else {
			out = dec
		}
		lastCount = h.Count
		if h.Flags&FlagEndOfBurst != 0 {
			return out, nil
		}
	}
}
