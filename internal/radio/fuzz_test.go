package radio

import (
	"bytes"
	"testing"
)

func fuzzSeedFrames(tb testing.TB) [][]byte {
	tb.Helper()
	var seeds [][]byte
	mk := func(streams, count int, flags uint16, seq uint64) []byte {
		samples := make([][]complex128, streams)
		for s := range samples {
			samples[s] = make([]complex128, count)
			for i := range samples[s] {
				samples[s][i] = complex(float64(i), -float64(i))
			}
		}
		b, err := EncodeFrame(nil, Header{Streams: streams, Flags: flags, Seq: seq, Count: count}, samples)
		if err != nil {
			tb.Fatal(err)
		}
		return b
	}
	seeds = append(seeds, mk(1, 1, 0, 0))
	seeds = append(seeds, mk(2, 50, FlagEndOfBurst, 7))
	seeds = append(seeds, mk(4, 180, 0, 1<<40))
	// Session-extended (v3) forms: a sample frame carrying a session ID and
	// data frames carrying opaque session-layer bytes.
	mkSession := func(streams, count int, flags uint16, session uint64) []byte {
		samples := make([][]complex128, streams)
		for s := range samples {
			samples[s] = make([]complex128, count)
		}
		b, err := EncodeFrame(nil, Header{Streams: streams, Flags: flags, Count: count, SessionID: session}, samples)
		if err != nil {
			tb.Fatal(err)
		}
		return b
	}
	mkData := func(n int, flags uint16, session uint64) []byte {
		b, err := EncodeDataFrame(nil, Header{Flags: flags, SessionID: session}, bytes.Repeat([]byte{0xA5}, n))
		if err != nil {
			tb.Fatal(err)
		}
		return b
	}
	seeds = append(seeds, mkSession(2, 30, 0, 12345))
	seeds = append(seeds, mkData(1, 0, 1))
	seeds = append(seeds, mkData(MaxDataPayload, FlagEndOfBurst, 1<<63))
	// Multi-user (v4) forms: precoded downlink samples with a group bitmap
	// and station-keyed uplink data frames.
	mkMU := func(streams, count int, station uint16, group uint64) []byte {
		samples := make([][]complex128, streams)
		for s := range samples {
			samples[s] = make([]complex128, count)
		}
		b, err := EncodeFrame(nil, Header{Streams: streams, Flags: FlagEndOfBurst, Count: count, StationID: station, GroupBitmap: group}, samples)
		if err != nil {
			tb.Fatal(err)
		}
		return b
	}
	mkMUData := func(n int, station uint16) []byte {
		b, err := EncodeDataFrame(nil, Header{StationID: station}, bytes.Repeat([]byte{0x3C}, n))
		if err != nil {
			tb.Fatal(err)
		}
		return b
	}
	seeds = append(seeds, mkMU(2, 40, 0, 0b1010))
	seeds = append(seeds, mkMU(4, 16, 63, 1<<63))
	seeds = append(seeds, mkMUData(17, 1))
	return seeds
}

// FuzzDecodeHeader: arbitrary bytes must never panic the header parser, and
// every accepted header must satisfy its documented bounds — including the
// session-extended v3 form, whose truncated or corrupt session fields must
// fail as typed errors.
func FuzzDecodeHeader(f *testing.F) {
	for _, s := range fuzzSeedFrames(f) {
		f.Add(s)
	}
	f.Add([]byte{})
	f.Add([]byte("MNIQ"))
	f.Fuzz(func(t *testing.T, data []byte) {
		h, err := DecodeHeader(data)
		if err != nil {
			return
		}
		if h.Streams < 1 || h.Streams > 4 {
			t.Errorf("accepted stream count %d", h.Streams)
		}
		if h.IsData() {
			if h.SessionID == 0 && h.StationID == 0 {
				t.Error("accepted data frame with no demux key")
			}
			if h.Streams != 1 {
				t.Errorf("accepted data frame with %d streams", h.Streams)
			}
			if h.Count < 1 || h.Count > MaxDataPayload {
				t.Errorf("accepted data payload %d", h.Count)
			}
			if len(data) < h.HeaderLen() {
				t.Errorf("accepted header longer than input: %d > %d", h.HeaderLen(), len(data))
			}
			return
		}
		if h.Count < 1 || h.Count > MaxSamplesPerFrame {
			t.Errorf("accepted sample count %d", h.Count)
		}
	})
}

// FuzzDecodeDataPayload: any accepted data header must yield exactly Count
// bytes or a clean error, never a panic or out-of-bounds slice.
func FuzzDecodeDataPayload(f *testing.F) {
	for _, s := range fuzzSeedFrames(f) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		h, err := DecodeHeader(data)
		if err != nil || !h.IsData() {
			return
		}
		body, err := DecodeDataPayload(h, data[h.HeaderLen():])
		if err != nil {
			return
		}
		if len(body) != h.Count {
			t.Errorf("decoded %d bytes, header says %d", len(body), h.Count)
		}
	})
}

// FuzzDecodePayload: a payload that passes header validation must decode or
// fail cleanly — no panics, no bogus output shapes.
func FuzzDecodePayload(f *testing.F) {
	for _, s := range fuzzSeedFrames(f) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		h, err := DecodeHeader(data)
		if err != nil {
			return
		}
		dst := make([][]complex128, h.Streams)
		out, err := DecodePayload(dst, h, data[h.HeaderLen():])
		if err != nil {
			return
		}
		for s := range out {
			if len(out[s]) != h.Count {
				t.Errorf("stream %d decoded %d samples, header says %d", s, len(out[s]), h.Count)
			}
		}
	})
}

// FuzzStreamReadBurst: arbitrary byte streams through the framed reader must
// terminate with data or an error, never panic or run away.
func FuzzStreamReadBurst(f *testing.F) {
	for _, s := range fuzzSeedFrames(f) {
		f.Add(s)
	}
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewStreamReader(bytes.NewReader(data))
		for i := 0; i < 64; i++ { // bounded: reader consumes input each burst
			burst, err := r.ReadBurst()
			if err != nil {
				return
			}
			if len(burst) == 0 {
				t.Error("nil error with empty burst")
				return
			}
		}
	})
}
