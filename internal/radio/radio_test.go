package radio

import (
	"bytes"
	"io"
	"math/cmplx"
	"math/rand"
	"net"
	"testing"
	"time"
)

func randBurst(r *rand.Rand, streams, n int) [][]complex128 {
	out := make([][]complex128, streams)
	for s := range out {
		out[s] = make([]complex128, n)
		for i := range out[s] {
			out[s][i] = complex(r.NormFloat64(), r.NormFloat64())
		}
	}
	return out
}

func burstsAlmostEqual(a, b [][]complex128, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for s := range a {
		if len(a[s]) != len(b[s]) {
			return false
		}
		for i := range a[s] {
			if cmplx.Abs(a[s][i]-b[s][i]) > tol {
				return false
			}
		}
	}
	return true
}

func TestFrameEncodeDecode(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	burst := randBurst(r, 2, 100)
	h := Header{Streams: 2, Flags: FlagEndOfBurst, Seq: 42, Count: 100}
	enc, err := EncodeFrame(nil, h, burst)
	if err != nil {
		t.Fatal(err)
	}
	if len(enc) != FrameSize(2, 100) {
		t.Fatalf("frame size %d, want %d", len(enc), FrameSize(2, 100))
	}
	got, err := DecodeHeader(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Errorf("header = %+v, want %+v", got, h)
	}
	dst := make([][]complex128, 2)
	dst, err = DecodePayload(dst, got, enc[headerSize:])
	if err != nil {
		t.Fatal(err)
	}
	// float32 quantization tolerance.
	if !burstsAlmostEqual(dst, burst, 1e-6) {
		t.Error("payload round trip failed")
	}
}

func TestFrameValidation(t *testing.T) {
	if _, err := EncodeFrame(nil, Header{Streams: 5}, nil); err == nil {
		t.Error("5 streams should fail")
	}
	if _, err := EncodeFrame(nil, Header{Streams: 1}, [][]complex128{{}}); err == nil {
		t.Error("empty frame should fail")
	}
	if _, err := EncodeFrame(nil, Header{Streams: 2}, [][]complex128{{1}, {1, 2}}); err == nil {
		t.Error("ragged streams should fail")
	}
	big := make([]complex128, MaxSamplesPerFrame+1)
	if _, err := EncodeFrame(nil, Header{Streams: 1}, [][]complex128{big}); err == nil {
		t.Error("oversize frame should fail")
	}
	if _, err := DecodeHeader([]byte{1, 2, 3}); err == nil {
		t.Error("short header should fail")
	}
	bad := make([]byte, 24)
	if _, err := DecodeHeader(bad); err == nil {
		t.Error("bad magic should fail")
	}
}

func TestStreamWriterReaderRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	var buf bytes.Buffer
	w, err := NewStreamWriter(&buf, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Two bursts, one larger than a frame.
	b1 := randBurst(r, 2, MaxSamplesPerFrame+1000)
	b2 := randBurst(r, 2, 37)
	if err := w.WriteBurst(b1); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteBurst(b2); err != nil {
		t.Fatal(err)
	}
	rd := NewStreamReader(&buf)
	got1, err := rd.ReadBurst()
	if err != nil {
		t.Fatal(err)
	}
	if !burstsAlmostEqual(got1, b1, 1e-6) {
		t.Error("burst 1 mismatch")
	}
	got2, err := rd.ReadBurst()
	if err != nil {
		t.Fatal(err)
	}
	if !burstsAlmostEqual(got2, b2, 1e-6) {
		t.Error("burst 2 mismatch")
	}
	if _, err := rd.ReadBurst(); err != io.EOF {
		t.Errorf("want io.EOF at end, got %v", err)
	}
}

func TestStreamWriterValidation(t *testing.T) {
	var buf bytes.Buffer
	if _, err := NewStreamWriter(&buf, 0); err == nil {
		t.Error("0 streams should fail")
	}
	w, _ := NewStreamWriter(&buf, 2)
	if err := w.WriteBurst([][]complex128{{1}}); err == nil {
		t.Error("wrong stream count should fail")
	}
	if err := w.WriteBurst([][]complex128{{}, {}}); err == nil {
		t.Error("empty burst should fail")
	}
	if err := w.WriteBurst([][]complex128{{1, 2}, {1}}); err == nil {
		t.Error("ragged burst should fail")
	}
}

func TestTCPTransport(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	burst := randBurst(r, 2, 5000)
	errCh := make(chan error, 1)
	go func() {
		conn, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			errCh <- err
			return
		}
		defer conn.Close()
		w, err := NewStreamWriter(conn, 2)
		if err != nil {
			errCh <- err
			return
		}
		errCh <- w.WriteBurst(burst)
	}()
	conn, err := ln.Accept()
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	got, err := NewStreamReader(conn).ReadBurst()
	if err != nil {
		t.Fatal(err)
	}
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
	if !burstsAlmostEqual(got, burst, 1e-6) {
		t.Error("TCP burst mismatch")
	}
}

func TestUDPTransport(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	rx, err := NewUDPReceiver("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer rx.Close()
	tx, err := NewUDPSender(rx.Addr().String(), 2)
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Close()
	burst := randBurst(r, 2, 3000)
	go func() {
		// Give the reader a moment, then send.
		time.Sleep(20 * time.Millisecond)
		tx.WriteBurst(burst)
	}()
	got, err := rx.ReadBurst(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !burstsAlmostEqual(got, burst, 1e-6) {
		t.Error("UDP burst mismatch")
	}
	if rx.Lost != 0 {
		t.Errorf("loopback lost %d datagrams", rx.Lost)
	}
}

func TestUDPSenderValidation(t *testing.T) {
	if _, err := NewUDPSender("127.0.0.1:9", 9); err == nil {
		t.Error("9 streams should fail")
	}
	if _, err := NewUDPSender("bogus::address::", 1); err == nil {
		t.Error("bad address should fail")
	}
}

func TestUDPLossDetection(t *testing.T) {
	// Simulate loss by encoding frames manually and skipping one sequence.
	rx, err := NewUDPReceiver("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer rx.Close()
	conn, err := net.Dial("udp", rx.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	chunk := [][]complex128{make([]complex128, 50)}
	for i := range chunk[0] {
		chunk[0][i] = complex(1, 1)
	}
	send := func(seq uint64, flags uint16) {
		f, err := EncodeFrame(nil, Header{Streams: 1, Flags: flags, Seq: seq, Count: 50}, chunk)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := conn.Write(f); err != nil {
			t.Fatal(err)
		}
	}
	go func() {
		time.Sleep(20 * time.Millisecond)
		send(0, 0)
		send(1, 0)
		// seq 2 lost
		send(3, FlagEndOfBurst)
	}()
	got, err := rx.ReadBurst(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if rx.Lost != 1 {
		t.Errorf("Lost = %d, want 1", rx.Lost)
	}
	// 4 frames worth of samples: 3 received + 1 zero-filled.
	if len(got[0]) != 200 {
		t.Errorf("burst length %d, want 200 (with zero-fill)", len(got[0]))
	}
	for i := 100; i < 150; i++ {
		if got[0][i] != 0 {
			t.Fatalf("zero-filled region sample %d = %v", i, got[0][i])
		}
	}
}

func BenchmarkEncodeFrame2x4096(b *testing.B) {
	r := rand.New(rand.NewSource(5))
	burst := randBurst(r, 2, 4096)
	h := Header{Streams: 2, Seq: 0, Count: 4096}
	buf := make([]byte, 0, FrameSize(2, 4096))
	b.SetBytes(int64(2 * 4096 * 16))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = EncodeFrame(buf[:0], h, burst)
		if err != nil {
			b.Fatal(err)
		}
	}
}

func TestDecodePayloadValidation(t *testing.T) {
	h := Header{Streams: 2, Count: 10}
	if _, err := DecodePayload(make([][]complex128, 2), h, make([]byte, 10)); err == nil {
		t.Error("short payload should fail")
	}
	if _, err := DecodePayload(make([][]complex128, 1), h, make([]byte, 2*10*8)); err == nil {
		t.Error("wrong dst stream count should fail")
	}
}

func TestStreamReaderRejectsMidBurstChange(t *testing.T) {
	var buf bytes.Buffer
	chunk1 := [][]complex128{make([]complex128, 10)}
	chunk2 := [][]complex128{make([]complex128, 10), make([]complex128, 10)}
	f1, err := EncodeFrame(nil, Header{Streams: 1, Seq: 0, Count: 10}, chunk1)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := EncodeFrame(nil, Header{Streams: 2, Seq: 1, Count: 10, Flags: FlagEndOfBurst}, chunk2)
	if err != nil {
		t.Fatal(err)
	}
	buf.Write(f1)
	buf.Write(f2)
	if _, err := NewStreamReader(&buf).ReadBurst(); err == nil {
		t.Error("stream-count change mid-burst should fail")
	}
}

func TestStreamReaderTruncatedPayload(t *testing.T) {
	chunk := [][]complex128{make([]complex128, 10)}
	f, err := EncodeFrame(nil, Header{Streams: 1, Count: 10, Flags: FlagEndOfBurst}, chunk)
	if err != nil {
		t.Fatal(err)
	}
	r := NewStreamReader(bytes.NewReader(f[:len(f)-5]))
	if _, err := r.ReadBurst(); err == nil {
		t.Error("truncated payload should fail")
	}
}

func TestUDPReceiverBadAddress(t *testing.T) {
	if _, err := NewUDPReceiver("not::a::valid::addr::::"); err == nil {
		t.Error("bad listen address should fail")
	}
}

func TestUDPSenderLocalAddr(t *testing.T) {
	rx, err := NewUDPReceiver("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer rx.Close()
	tx, err := NewUDPSender(rx.Addr().String(), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Close()
	if tx.LocalAddr() == nil {
		t.Error("LocalAddr returned nil")
	}
	if err := tx.WriteBurst([][]complex128{{}}); err == nil {
		t.Error("empty burst should fail")
	}
	if err := tx.WriteBurst([][]complex128{{1}, {1}}); err == nil {
		t.Error("wrong stream count should fail")
	}
}

// encodeV1Frame hand-builds a legacy (version 1, 20-byte header) frame so
// compatibility stays pinned even though the writer now emits version 2.
func encodeV1Frame(h Header, samples [][]complex128) []byte {
	v2, err := EncodeFrame(nil, h, samples)
	if err != nil {
		panic(err)
	}
	out := append([]byte(nil), v2[:headerSizeV1]...)
	out[4] = 1
	return append(out, v2[headerSize:]...)
}

func TestDecodeHeaderV1Compat(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	burst := randBurst(r, 2, 10)
	raw := encodeV1Frame(Header{Streams: 2, Flags: FlagEndOfBurst, Seq: 3, Count: 10, PacketID: 77}, burst)
	h, err := DecodeHeader(raw)
	if err != nil {
		t.Fatal(err)
	}
	if h.PacketID != 0 {
		t.Fatalf("v1 packet id = %d, want 0 (field absent on the wire)", h.PacketID)
	}
	if h.HeaderLen() != headerSizeV1 {
		t.Fatalf("v1 header len = %d, want %d", h.HeaderLen(), headerSizeV1)
	}
	dst := make([][]complex128, 2)
	dst, err = DecodePayload(dst, h, raw[h.HeaderLen():])
	if err != nil {
		t.Fatal(err)
	}
	if !burstsAlmostEqual(dst, burst, 1e-6) {
		t.Error("v1 payload round trip failed")
	}
	// A v2-length claim on a v1-length buffer must error, not read past.
	raw[4] = frameVersion
	if _, err := DecodeHeader(raw[:headerSizeV1]); err == nil {
		t.Error("truncated v2 header should fail")
	}
}

func TestPacketIDRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	burst := randBurst(r, 1, 5)
	enc, err := EncodeFrame(nil, Header{Streams: 1, Flags: FlagEndOfBurst, Seq: 0, Count: 5, PacketID: 1 << 40}, burst)
	if err != nil {
		t.Fatal(err)
	}
	h, err := DecodeHeader(enc)
	if err != nil {
		t.Fatal(err)
	}
	if h.PacketID != 1<<40 || h.HeaderLen() != headerSize {
		t.Fatalf("decoded %+v", h)
	}
}

func TestStreamBurstPacketID(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	var buf bytes.Buffer
	w, err := NewStreamWriter(&buf, 2)
	if err != nil {
		t.Fatal(err)
	}
	// A multi-frame burst with an ID, then a plain WriteBurst (ID 0), then a
	// legacy v1 burst: LastPacketID must track each.
	b1 := randBurst(r, 2, MaxSamplesPerFrame+10)
	b2 := randBurst(r, 2, 8)
	if err := w.WriteBurstID(42, b1); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteBurst(b2); err != nil {
		t.Fatal(err)
	}
	buf.Write(encodeV1Frame(Header{Streams: 2, Flags: FlagEndOfBurst, Seq: 9, Count: 8}, b2))

	rd := NewStreamReader(&buf)
	if rd.LastPacketID() != 0 {
		t.Fatal("packet id before first burst should be 0")
	}
	got, err := rd.ReadBurst()
	if err != nil {
		t.Fatal(err)
	}
	if !burstsAlmostEqual(got, b1, 1e-6) || rd.LastPacketID() != 42 {
		t.Fatalf("burst 1 id = %d, want 42", rd.LastPacketID())
	}
	if _, err := rd.ReadBurst(); err != nil || rd.LastPacketID() != 0 {
		t.Fatalf("burst 2 id = %d (err %v), want 0", rd.LastPacketID(), err)
	}
	got, err = rd.ReadBurst()
	if err != nil || rd.LastPacketID() != 0 {
		t.Fatalf("legacy burst id = %d (err %v), want 0", rd.LastPacketID(), err)
	}
	if !burstsAlmostEqual(got, b2, 1e-6) {
		t.Error("legacy burst payload mismatch")
	}
}

func TestUDPBurstPacketID(t *testing.T) {
	recv, err := NewUDPReceiver("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()
	send, err := NewUDPSender(recv.Addr().String(), 2)
	if err != nil {
		t.Fatal(err)
	}
	defer send.Close()

	r := rand.New(rand.NewSource(12))
	burst := randBurst(r, 2, 500) // several datagrams
	done := make(chan error, 1)
	go func() { done <- send.WriteBurstID(7, burst) }()
	got, err := recv.ReadBurst(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if !burstsAlmostEqual(got, burst, 1e-6) {
		t.Error("udp burst payload mismatch")
	}
	if recv.LastPacketID() != 7 {
		t.Fatalf("udp packet id = %d, want 7", recv.LastPacketID())
	}
}
