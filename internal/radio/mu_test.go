package radio

import (
	"bytes"
	"testing"
)

// TestMUSampleFrameRoundTrip: a sample frame carrying station/group fields
// selects the v4 wire form and preserves every field through decode.
func TestMUSampleFrameRoundTrip(t *testing.T) {
	samples := [][]complex128{
		{1 + 2i, 3 - 4i, -5 + 0.5i},
		{0, -1i, 2},
	}
	h := Header{
		Streams:     2,
		Flags:       FlagEndOfBurst,
		Seq:         42,
		Count:       3,
		PacketID:    7,
		SessionID:   99,
		StationID:   12,
		GroupBitmap: 1<<12 | 1<<3,
	}
	if got := h.HeaderLen(); got != headerSizeV4 {
		t.Fatalf("caller-built MU header len %d, want %d", got, headerSizeV4)
	}
	b, err := EncodeFrame(nil, h, samples)
	if err != nil {
		t.Fatal(err)
	}
	if b[4] != frameVersionMU {
		t.Fatalf("wire version %d, want %d", b[4], frameVersionMU)
	}
	dec, err := DecodeHeader(b)
	if err != nil {
		t.Fatal(err)
	}
	if dec.HeaderLen() != headerSizeV4 {
		t.Errorf("decoded header len %d, want %d", dec.HeaderLen(), headerSizeV4)
	}
	if dec.StationID != h.StationID || dec.GroupBitmap != h.GroupBitmap {
		t.Errorf("station/group = %d/%#x, want %d/%#x", dec.StationID, dec.GroupBitmap, h.StationID, h.GroupBitmap)
	}
	if dec.SessionID != h.SessionID || dec.PacketID != h.PacketID || dec.Seq != h.Seq {
		t.Errorf("session/packet/seq = %d/%d/%d, want %d/%d/%d",
			dec.SessionID, dec.PacketID, dec.Seq, h.SessionID, h.PacketID, h.Seq)
	}
	out, err := DecodePayload(make([][]complex128, dec.Streams), dec, b[dec.HeaderLen():])
	if err != nil {
		t.Fatal(err)
	}
	for s := range samples {
		for i := range samples[s] {
			if d := out[s][i] - samples[s][i]; real(d)*real(d)+imag(d)*imag(d) > 1e-10 {
				t.Fatalf("stream %d sample %d: %v != %v", s, i, out[s][i], samples[s][i])
			}
		}
	}
}

// TestMUGroupBitmapAloneSelectsV4: a downlink group announcement with no
// station ID (broadcast of the MU group) still needs the v4 form.
func TestMUGroupBitmapAloneSelectsV4(t *testing.T) {
	h := Header{Streams: 1, Count: 1, GroupBitmap: 0b1011}
	b, err := EncodeFrame(nil, h, [][]complex128{{1}})
	if err != nil {
		t.Fatal(err)
	}
	if b[4] != frameVersionMU {
		t.Fatalf("wire version %d, want %d", b[4], frameVersionMU)
	}
	dec, err := DecodeHeader(b)
	if err != nil {
		t.Fatal(err)
	}
	if dec.GroupBitmap != 0b1011 || dec.StationID != 0 {
		t.Errorf("group/station = %#x/%d, want 0xb/0", dec.GroupBitmap, dec.StationID)
	}
}

// TestMUDataFrameRoundTrip: a station ID alone is a valid demux key for data
// frames — stations talk to the AP MAC before any session exists.
func TestMUDataFrameRoundTrip(t *testing.T) {
	payload := bytes.Repeat([]byte{0x5A}, 33)
	b, err := EncodeDataFrame(nil, Header{Seq: 5, StationID: 7}, payload)
	if err != nil {
		t.Fatal(err)
	}
	if b[4] != frameVersionMU {
		t.Fatalf("wire version %d, want %d", b[4], frameVersionMU)
	}
	h, err := DecodeHeader(b)
	if err != nil {
		t.Fatal(err)
	}
	if !h.IsData() || h.StationID != 7 || h.SessionID != 0 {
		t.Fatalf("decoded header %+v, want data frame for station 7", h)
	}
	body, err := DecodeDataPayload(h, b[h.HeaderLen():])
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, payload) {
		t.Error("payload corrupted over the round trip")
	}
}

// TestMUDataFrameRequiresDemuxKey: with neither session nor station ID there
// is nothing to route by, so encode and decode both reject the frame.
func TestMUDataFrameRequiresDemuxKey(t *testing.T) {
	if _, err := EncodeDataFrame(nil, Header{}, []byte{1}); err == nil {
		t.Error("data frame with no demux key must not encode")
	}
	// Hand-build a v4 data header with both keys zero: decode must reject it.
	b, err := EncodeDataFrame(nil, Header{StationID: 1}, []byte{1})
	if err != nil {
		t.Fatal(err)
	}
	b[36], b[37] = 0, 0 // zero the station field in place
	if _, err := DecodeHeader(b); err == nil {
		t.Error("v4 data frame with zero session and station must not decode")
	}
}

// TestMULegacyFormsStayZero: v1–v3 frames still decode, with zero MU fields.
func TestMULegacyFormsStayZero(t *testing.T) {
	for _, tc := range []struct {
		name string
		h    Header
		want int
	}{
		{"v2", Header{Streams: 1, Count: 2}, headerSizeV2},
		{"v3", Header{Streams: 1, Count: 2, SessionID: 9}, headerSizeV3},
	} {
		b, err := EncodeFrame(nil, tc.h, [][]complex128{{1, 2}})
		if err != nil {
			t.Fatal(err)
		}
		h, err := DecodeHeader(b)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if h.HeaderLen() != tc.want {
			t.Errorf("%s: header len %d, want %d", tc.name, h.HeaderLen(), tc.want)
		}
		if h.StationID != 0 || h.GroupBitmap != 0 {
			t.Errorf("%s: legacy frame decoded MU fields %d/%#x", tc.name, h.StationID, h.GroupBitmap)
		}
	}
}

// TestMUTruncatedHeader: a v4 version byte over a too-short buffer is a typed
// error, not a panic or a misparse.
func TestMUTruncatedHeader(t *testing.T) {
	b, err := EncodeFrame(nil, Header{Streams: 1, Count: 1, StationID: 3}, [][]complex128{{1}})
	if err != nil {
		t.Fatal(err)
	}
	for n := headerSizeV1; n < headerSizeV4; n++ {
		if _, err := DecodeHeader(b[:n]); err == nil {
			t.Errorf("truncated v4 header (%d bytes) must not decode", n)
		}
	}
}

// TestMUStreamReader: the framed stream reader handles v4 frames — including
// mid-burst continuation frames — alongside the earlier forms.
func TestMUStreamReader(t *testing.T) {
	var buf bytes.Buffer
	mk := func(h Header, samples [][]complex128) {
		b, err := EncodeFrame(nil, h, samples)
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(b)
	}
	// Burst 1: two v4 frames (continuation + end of burst).
	mk(Header{Streams: 1, Count: 2, PacketID: 3, StationID: 9, GroupBitmap: 1 << 9},
		[][]complex128{{1, 2}})
	mk(Header{Streams: 1, Count: 1, Flags: FlagEndOfBurst, PacketID: 3, StationID: 9, GroupBitmap: 1 << 9},
		[][]complex128{{3}})
	// Burst 2: a plain v2 frame — versions interleave on one stream.
	mk(Header{Streams: 1, Count: 1, Flags: FlagEndOfBurst, Seq: 1}, [][]complex128{{4}})

	r := NewStreamReader(&buf)
	first, err := r.ReadBurst()
	if err != nil {
		t.Fatal(err)
	}
	if len(first) != 1 || len(first[0]) != 3 {
		t.Fatalf("burst 1 shape %d×%d, want 1×3", len(first), len(first[0]))
	}
	if r.LastPacketID() != 3 {
		t.Errorf("burst 1 packet ID %d, want 3", r.LastPacketID())
	}
	second, err := r.ReadBurst()
	if err != nil {
		t.Fatal(err)
	}
	if len(second[0]) != 1 || second[0][0] != 4 {
		t.Fatalf("burst 2 = %v, want [4]", second[0])
	}
}
