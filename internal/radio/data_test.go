package radio

import (
	"bytes"
	"strings"
	"testing"
)

func TestDataFrameRoundTrip(t *testing.T) {
	payload := []byte("session-layer message body")
	h := Header{Seq: 9, PacketID: 77, SessionID: 0xDEADBEEF, Flags: FlagEndOfBurst}
	enc, err := EncodeDataFrame(nil, h, payload)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeHeader(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !got.IsData() {
		t.Fatal("decoded header lost FlagData")
	}
	if got.Flags&FlagEndOfBurst == 0 {
		t.Error("decoded header lost end-of-burst flag")
	}
	if got.SessionID != h.SessionID || got.PacketID != h.PacketID || got.Seq != h.Seq {
		t.Errorf("decoded header = %+v, want session=%d packet=%d seq=%d", got, h.SessionID, h.PacketID, h.Seq)
	}
	if got.Streams != 1 || got.Count != len(payload) {
		t.Errorf("decoded shape streams=%d count=%d, want 1, %d", got.Streams, got.Count, len(payload))
	}
	if got.HeaderLen() != headerSizeV3 {
		t.Errorf("HeaderLen = %d, want %d", got.HeaderLen(), headerSizeV3)
	}
	body, err := DecodeDataPayload(got, enc[got.HeaderLen():])
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, payload) {
		t.Errorf("payload round trip: got %q", body)
	}
}

func TestDataFrameValidation(t *testing.T) {
	payload := []byte("x")
	if _, err := EncodeDataFrame(nil, Header{SessionID: 0}, payload); err == nil {
		t.Error("zero session ID accepted")
	}
	if _, err := EncodeDataFrame(nil, Header{SessionID: 1}, nil); err == nil {
		t.Error("empty payload accepted")
	}
	if _, err := EncodeDataFrame(nil, Header{SessionID: 1}, make([]byte, MaxDataPayload+1)); err == nil {
		t.Error("oversized payload accepted")
	}
	if _, err := EncodeFrame(nil, Header{Streams: 1, Flags: FlagData, SessionID: 1}, [][]complex128{{1}}); err == nil {
		t.Error("EncodeFrame accepted a data flag")
	}

	enc, err := EncodeDataFrame(nil, Header{SessionID: 5}, payload)
	if err != nil {
		t.Fatal(err)
	}
	// Truncating the session field must fail cleanly, not panic.
	for cut := headerSizeV2; cut < headerSizeV3; cut++ {
		if _, err := DecodeHeader(enc[:cut]); err == nil {
			t.Errorf("truncated v3 header (%d bytes) accepted", cut)
		}
	}
	// A v2 header claiming a data payload has no session field to carry it.
	v2 := append([]byte(nil), enc[:headerSizeV2]...)
	v2[4] = frameVersion
	if _, err := DecodeHeader(v2); err == nil {
		t.Error("v2 data frame accepted")
	}
	// Zeroing the session field of a data frame must be rejected.
	zeroed := append([]byte(nil), enc...)
	for i := 28; i < 36; i++ {
		zeroed[i] = 0
	}
	if _, err := DecodeHeader(zeroed); err == nil {
		t.Error("data frame with zeroed session field accepted")
	}
	// Sample decode paths must refuse data frames with typed errors.
	h, err := DecodeHeader(enc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodePayload(make([][]complex128, 1), h, enc[h.HeaderLen():]); err == nil {
		t.Error("DecodePayload accepted a data frame")
	}
	if _, err := DecodeDataPayload(h, nil); err == nil {
		t.Error("DecodeDataPayload accepted a truncated payload")
	}
}

func TestSessionSampleFrameRoundTrip(t *testing.T) {
	// Sample frames can also carry a session ID (v3 form) — the gateway's
	// future IQ path — and stay byte-compatible with sessionless v2 frames.
	burst := [][]complex128{{1 + 2i, 3 - 4i}}
	h := Header{Streams: 1, Count: 2, Seq: 3, SessionID: 42, Flags: FlagEndOfBurst}
	enc, err := EncodeFrame(nil, h, burst)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeHeader(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got.SessionID != 42 || got.HeaderLen() != headerSizeV3 {
		t.Errorf("session sample frame: got session=%d len=%d", got.SessionID, got.HeaderLen())
	}
	dst, err := DecodePayload(make([][]complex128, 1), got, enc[got.HeaderLen():])
	if err != nil {
		t.Fatal(err)
	}
	if len(dst[0]) != 2 {
		t.Errorf("decoded %d samples, want 2", len(dst[0]))
	}
}

func TestStreamReaderRejectsDataFrames(t *testing.T) {
	enc, err := EncodeDataFrame(nil, Header{SessionID: 7, Flags: FlagEndOfBurst}, []byte("hi"))
	if err != nil {
		t.Fatal(err)
	}
	_, err = NewStreamReader(bytes.NewReader(enc)).ReadBurst()
	if err == nil || !strings.Contains(err.Error(), "data frame") {
		t.Errorf("ReadBurst on a data frame: err = %v, want data-frame rejection", err)
	}
}
