// Package radio provides the IQ sample transport that stands in for the
// host↔USRP2 link of the paper's testbed: a compact framed format carrying
// synchronized multi-antenna complex baseband over any io.Reader/io.Writer
// (TCP), over UDP datagrams with loss detection, or in-process. Samples are
// serialized as interleaved float32 I/Q, the format SDR front-ends commonly
// emit.
package radio

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Frame format (big-endian):
//
//	magic   uint32  "MNIQ" (0x4D4E4951)
//	version uint8   4 (1 = legacy, no packet field; 2 = no session field;
//	                3 = no station fields)
//	streams uint8   number of antenna streams (1-4)
//	flags   uint16  bit 0: end-of-burst; bit 1: data payload (version ≥ 3)
//	seq     uint64  frame sequence number
//	count   uint32  samples per stream — or payload bytes for a data frame
//	packet  uint64  TX-assigned packet ID (version ≥ 2; 0 = unknown)
//	session uint64  session ID (version ≥ 3; 0 = sessionless)
//	station uint16  AP-assigned station ID (version ≥ 4; 0 = unassociated)
//	group   uint64  MU group bitmap (version ≥ 4; bit i = station slot i
//	                addressed by this transmission; 0 = single-user)
//	payload streams × count × (float32 I, float32 Q), stream-major —
//	        or count opaque bytes for a data frame
//
// The packet ID is the cross-process correlation key: the transmitter stamps
// every frame of a burst with the MAC packet it carries, so receive-side
// traces and flight-recorder dumps can be joined to the TX record without
// decoding the payload. Version 1 frames (pre-ID) still decode, with ID 0.
//
// The session ID is the demultiplexing key of the session gateway
// (internal/session): a long-running process serves many independent links
// over one socket, routing each frame to its session by this field. Data
// frames (FlagData) carry opaque session-layer bytes instead of IQ samples
// and use the version-3 or version-4 form; sample paths reject them with
// typed errors. Version 1 and 2 frames still decode, with session ID 0.
//
// The station ID and group bitmap are the multi-user extension
// (internal/apmac, internal/mumimo): an access point serves many stations
// over one socket, routing uplink frames to per-station MAC state by the
// station field and announcing which station slots a precoded downlink
// burst addresses through the group bitmap. EncodeFrame/EncodeDataFrame
// select the version-4 form automatically when either field is present;
// versions 1-3 still decode, with station 0 and an empty bitmap.
const (
	frameMagic   = 0x4D4E4951
	frameVersion = 2
	// frameVersionSession is the extended form carrying the session field;
	// EncodeFrame selects it automatically when a session ID is present.
	frameVersionSession = 3
	// frameVersionMU is the multi-user form carrying the station ID and
	// group bitmap; selected automatically when either field is present.
	frameVersionMU = 4
	headerSizeV1   = 4 + 1 + 1 + 2 + 8 + 4
	headerSizeV2   = headerSizeV1 + 8
	headerSize     = headerSizeV2
	headerSizeV3   = headerSizeV2 + 8
	headerSizeV4   = headerSizeV3 + 2 + 8

	// MaxSamplesPerFrame bounds a frame to fit a UDP datagram under the
	// common 1500-byte MTU minus headers when streaming one antenna; the
	// writer splits larger bursts automatically.
	MaxSamplesPerFrame = 4096

	// MaxDataPayload bounds a data frame's byte payload so one session
	// message always fits a single UDP datagram under the common MTU.
	MaxDataPayload = 1400
)

// FlagEndOfBurst marks the final frame of a burst (packet).
const FlagEndOfBurst = 1 << 0

// FlagData marks a frame whose payload is Count opaque bytes (session-layer
// messages) rather than IQ samples. Requires the version-3 header form.
const FlagData = 1 << 1

// Header describes one frame.
type Header struct {
	Streams int
	Flags   uint16
	Seq     uint64
	Count   int
	// PacketID is the TX-assigned MAC packet this frame's samples belong to
	// (0 = unknown / legacy frame).
	PacketID uint64
	// SessionID identifies the gateway session this frame belongs to
	// (0 = sessionless; carried by the version-3/4 wire forms).
	SessionID uint64
	// StationID identifies the associated station this frame belongs to at
	// a multi-user access point (0 = unassociated; carried only by the
	// version-4 wire form).
	StationID uint16
	// GroupBitmap announces the MU group of a precoded downlink burst:
	// bit i set means station slot i is addressed by this transmission
	// (0 = single-user; carried only by the version-4 wire form).
	GroupBitmap uint64
	// wireVersion records a decoded non-default wire form (1, 3, or 4);
	// zero for the default version-2 form and on caller-built headers,
	// whose form EncodeFrame derives from the fields present.
	wireVersion byte
}

// isMU reports whether the header carries multi-user fields that force the
// version-4 wire form.
func (h Header) isMU() bool { return h.StationID != 0 || h.GroupBitmap != 0 }

// IsData reports whether the frame carries opaque bytes rather than samples.
func (h Header) IsData() bool { return h.Flags&FlagData != 0 }

// HeaderLen returns the wire size of this header — the payload offset within
// its frame. Decoded headers report their wire form; caller-built headers
// report the form EncodeFrame would choose.
func (h Header) HeaderLen() int {
	switch h.wireVersion {
	case 1:
		return headerSizeV1
	case frameVersion:
		return headerSizeV2
	case frameVersionSession:
		return headerSizeV3
	case frameVersionMU:
		return headerSizeV4
	}
	if h.isMU() {
		return headerSizeV4
	}
	if h.SessionID != 0 || h.IsData() {
		return headerSizeV3
	}
	return headerSizeV2
}

// EncodeFrame appends one frame carrying samples[stream][i] to dst and
// returns the extended buffer. All streams must have equal length ≤
// MaxSamplesPerFrame. A non-zero SessionID selects the version-3 wire form;
// data frames are encoded by EncodeDataFrame, not here.
func EncodeFrame(dst []byte, h Header, samples [][]complex128) ([]byte, error) {
	if h.IsData() {
		return nil, fmt.Errorf("radio: EncodeFrame carries samples; use EncodeDataFrame for data frames")
	}
	if h.Streams < 1 || h.Streams > 4 || len(samples) != h.Streams {
		return nil, fmt.Errorf("radio: %d streams invalid or mismatched with %d slices", h.Streams, len(samples))
	}
	n := len(samples[0])
	for i, s := range samples {
		if len(s) != n {
			return nil, fmt.Errorf("radio: stream %d has %d samples, stream 0 has %d", i, len(s), n)
		}
	}
	if n == 0 || n > MaxSamplesPerFrame {
		return nil, fmt.Errorf("radio: frame sample count %d outside [1, %d]", n, MaxSamplesPerFrame)
	}
	dst = appendHeader(dst, h, n)
	var scratch [8]byte
	for _, s := range samples {
		for _, v := range s {
			binary.BigEndian.PutUint32(scratch[0:], math.Float32bits(float32(real(v))))
			binary.BigEndian.PutUint32(scratch[4:], math.Float32bits(float32(imag(v))))
			dst = append(dst, scratch[:]...)
		}
	}
	return dst, nil
}

// appendHeader serializes h with the given count field, choosing the
// version-2 form for sessionless sample frames, version 4 when multi-user
// fields are present, and version 3 otherwise.
func appendHeader(dst []byte, h Header, count int) []byte {
	var hdr [headerSizeV4]byte
	binary.BigEndian.PutUint32(hdr[0:], frameMagic)
	hdr[5] = byte(h.Streams)
	binary.BigEndian.PutUint16(hdr[6:], h.Flags)
	binary.BigEndian.PutUint64(hdr[8:], h.Seq)
	binary.BigEndian.PutUint32(hdr[16:], uint32(count))
	binary.BigEndian.PutUint64(hdr[20:], h.PacketID)
	if h.isMU() {
		hdr[4] = frameVersionMU
		binary.BigEndian.PutUint64(hdr[28:], h.SessionID)
		binary.BigEndian.PutUint16(hdr[36:], h.StationID)
		binary.BigEndian.PutUint64(hdr[38:], h.GroupBitmap)
		return append(dst, hdr[:headerSizeV4]...)
	}
	if h.SessionID == 0 && !h.IsData() {
		hdr[4] = frameVersion
		return append(dst, hdr[:headerSizeV2]...)
	}
	hdr[4] = frameVersionSession
	binary.BigEndian.PutUint64(hdr[28:], h.SessionID)
	return append(dst, hdr[:headerSizeV3]...)
}

// EncodeDataFrame appends one version-3 (or version-4, when multi-user
// fields are present) data frame carrying payload to dst and returns the
// extended buffer. The header's Streams and Count are implied
// (1, len(payload)); FlagData is set automatically and the end-of-burst
// flag is preserved. Data frames are the transport of the session gateway
// and the AP MAC, so a demultiplexing key — a non-zero SessionID or
// StationID — is required.
func EncodeDataFrame(dst []byte, h Header, payload []byte) ([]byte, error) {
	if h.SessionID == 0 && h.StationID == 0 {
		return nil, fmt.Errorf("radio: data frames require a non-zero session or station ID")
	}
	if len(payload) == 0 || len(payload) > MaxDataPayload {
		return nil, fmt.Errorf("radio: data payload %d outside [1, %d]", len(payload), MaxDataPayload)
	}
	h.Flags |= FlagData
	h.Streams = 1
	dst = appendHeader(dst, h, len(payload))
	return append(dst, payload...), nil
}

// DecodeDataPayload returns the opaque byte payload following a decoded data
// frame header. The result aliases b; callers that keep it across reads of a
// shared buffer must copy.
func DecodeDataPayload(h Header, b []byte) ([]byte, error) {
	if !h.IsData() {
		return nil, fmt.Errorf("radio: frame is not a data frame")
	}
	if len(b) < h.Count {
		return nil, fmt.Errorf("radio: data payload needs %d bytes, got %d", h.Count, len(b))
	}
	return b[:h.Count], nil
}

// FrameSize returns the encoded size of a sessionless sample frame with the
// given shape.
func FrameSize(streams, count int) int { return headerSize + streams*count*8 }

// DecodeHeader parses a frame header. The current version-4 form, the
// version-3 form (no station fields), the version-2 form (no session ID),
// and the legacy version-1 form (no packet ID) are all accepted; use
// HeaderLen on the result for the payload offset.
func DecodeHeader(b []byte) (Header, error) {
	if len(b) < headerSizeV1 {
		return Header{}, fmt.Errorf("radio: header needs %d bytes, got %d", headerSizeV1, len(b))
	}
	if binary.BigEndian.Uint32(b[0:]) != frameMagic {
		return Header{}, fmt.Errorf("radio: bad magic %#08x", binary.BigEndian.Uint32(b[0:]))
	}
	if b[4] != 1 && b[4] != frameVersion && b[4] != frameVersionSession && b[4] != frameVersionMU {
		return Header{}, fmt.Errorf("radio: unsupported version %d", b[4])
	}
	version := b[4]
	h := Header{
		Streams: int(b[5]),
		Flags:   binary.BigEndian.Uint16(b[6:]),
		Seq:     binary.BigEndian.Uint64(b[8:]),
		Count:   int(binary.BigEndian.Uint32(b[16:])),
	}
	if version != frameVersion {
		h.wireVersion = version
	}
	if version >= frameVersion {
		if len(b) < headerSizeV2 {
			return Header{}, fmt.Errorf("radio: v2 header needs %d bytes, got %d", headerSizeV2, len(b))
		}
		h.PacketID = binary.BigEndian.Uint64(b[20:])
	}
	if version >= frameVersionSession {
		if len(b) < headerSizeV3 {
			return Header{}, fmt.Errorf("radio: v3 header needs %d bytes, got %d", headerSizeV3, len(b))
		}
		h.SessionID = binary.BigEndian.Uint64(b[28:])
	}
	if version >= frameVersionMU {
		if len(b) < headerSizeV4 {
			return Header{}, fmt.Errorf("radio: v4 header needs %d bytes, got %d", headerSizeV4, len(b))
		}
		h.StationID = binary.BigEndian.Uint16(b[36:])
		h.GroupBitmap = binary.BigEndian.Uint64(b[38:])
	}
	if h.IsData() {
		// Data frames: opaque byte payload, single logical stream, only the
		// session- or MU-extended forms. Truncated or corrupt demux fields
		// land here as typed errors, never panics.
		if version != frameVersionSession && version != frameVersionMU {
			return Header{}, fmt.Errorf("radio: data frame requires the v%d or v%d header form, got v%d",
				frameVersionSession, frameVersionMU, version)
		}
		if h.SessionID == 0 && h.StationID == 0 {
			return Header{}, fmt.Errorf("radio: data frame with no session or station ID")
		}
		if h.Streams != 1 {
			return Header{}, fmt.Errorf("radio: data frame stream count %d (want 1)", h.Streams)
		}
		if h.Count < 1 || h.Count > MaxDataPayload {
			return Header{}, fmt.Errorf("radio: data payload %d out of range", h.Count)
		}
		return h, nil
	}
	if h.Streams < 1 || h.Streams > 4 {
		return Header{}, fmt.Errorf("radio: stream count %d out of range", h.Streams)
	}
	if h.Count < 1 || h.Count > MaxSamplesPerFrame {
		return Header{}, fmt.Errorf("radio: sample count %d out of range", h.Count)
	}
	return h, nil
}

// DecodePayload parses the sample payload following a decoded header,
// appending to per-stream slices in dst (growing as needed). dst must have
// h.Streams entries.
func DecodePayload(dst [][]complex128, h Header, b []byte) ([][]complex128, error) {
	if h.IsData() {
		return nil, fmt.Errorf("radio: data frame carries bytes, not samples; use DecodeDataPayload")
	}
	want := h.Streams * h.Count * 8
	if len(b) < want {
		return nil, fmt.Errorf("radio: payload needs %d bytes, got %d", want, len(b))
	}
	if len(dst) != h.Streams {
		return nil, fmt.Errorf("radio: dst has %d streams, frame has %d", len(dst), h.Streams)
	}
	off := 0
	for s := 0; s < h.Streams; s++ {
		for i := 0; i < h.Count; i++ {
			re := math.Float32frombits(binary.BigEndian.Uint32(b[off:]))
			im := math.Float32frombits(binary.BigEndian.Uint32(b[off+4:]))
			dst[s] = append(dst[s], complex(float64(re), float64(im)))
			off += 8
		}
	}
	return dst, nil
}

// StreamWriter writes bursts as a sequence of frames over a stream
// transport (TCP or anything io.Writer). Not safe for concurrent use.
type StreamWriter struct {
	w       io.Writer
	streams int
	seq     uint64
	buf     []byte
}

// NewStreamWriter returns a writer for the given antenna count.
func NewStreamWriter(w io.Writer, streams int) (*StreamWriter, error) {
	if streams < 1 || streams > 4 {
		return nil, fmt.Errorf("radio: stream count %d out of range [1,4]", streams)
	}
	return &StreamWriter{w: w, streams: streams}, nil
}

// WriteBurst sends one complete burst (e.g. one PPDU), split into frames;
// the last frame carries the end-of-burst flag. The frames carry packet ID 0
// (unknown); transmitters that track MAC packets use WriteBurstID.
func (w *StreamWriter) WriteBurst(samples [][]complex128) error {
	return w.WriteBurstID(0, samples)
}

// WriteBurstID sends one burst with every frame stamped with the
// TX-assigned packet ID, the cross-process correlation key.
func (w *StreamWriter) WriteBurstID(packetID uint64, samples [][]complex128) error {
	if len(samples) != w.streams {
		return fmt.Errorf("radio: %d streams, writer configured for %d", len(samples), w.streams)
	}
	total := len(samples[0])
	if total == 0 {
		return fmt.Errorf("radio: empty burst")
	}
	for off := 0; off < total; off += MaxSamplesPerFrame {
		end := off + MaxSamplesPerFrame
		if end > total {
			end = total
		}
		var flags uint16
		if end == total {
			flags = FlagEndOfBurst
		}
		chunk := make([][]complex128, w.streams)
		for s := range samples {
			if len(samples[s]) != total {
				return fmt.Errorf("radio: ragged burst")
			}
			chunk[s] = samples[s][off:end]
		}
		w.buf = w.buf[:0]
		var err error
		w.buf, err = EncodeFrame(w.buf, Header{Streams: w.streams, Flags: flags, Seq: w.seq, Count: end - off, PacketID: packetID}, chunk)
		if err != nil {
			return err
		}
		w.seq++
		if _, err := w.w.Write(w.buf); err != nil {
			return fmt.Errorf("radio: write: %w", err)
		}
	}
	return nil
}

// StreamReader reads bursts from a stream transport.
type StreamReader struct {
	r   io.Reader
	hdr [headerSizeV4]byte
	buf []byte
	// lastPacketID is the packet ID carried by the most recently assembled
	// burst's frames.
	lastPacketID uint64
}

// NewStreamReader returns a reader.
func NewStreamReader(r io.Reader) *StreamReader {
	return &StreamReader{r: r}
}

// LastPacketID returns the TX-assigned packet ID of the last burst ReadBurst
// returned (0 before the first burst or on legacy frames).
func (r *StreamReader) LastPacketID() uint64 { return r.lastPacketID }

// ReadBurst reassembles frames until an end-of-burst flag and returns the
// per-stream samples. io.EOF is returned (possibly wrapping partial data
// loss) when the transport closes cleanly between bursts.
func (r *StreamReader) ReadBurst() ([][]complex128, error) {
	var out [][]complex128
	for {
		// Read the short (v1) prefix first; the version byte decides whether
		// the packet-ID extension follows.
		if _, err := io.ReadFull(r.r, r.hdr[:headerSizeV1]); err != nil {
			if err == io.EOF && out == nil {
				return nil, io.EOF
			}
			return nil, fmt.Errorf("radio: read header: %w", err)
		}
		hl := headerSizeV1
		switch r.hdr[4] {
		case 1:
		case frameVersionSession:
			hl = headerSizeV3
		case frameVersionMU:
			hl = headerSizeV4
		default:
			hl = headerSizeV2
		}
		if hl > headerSizeV1 {
			if _, err := io.ReadFull(r.r, r.hdr[headerSizeV1:hl]); err != nil {
				return nil, fmt.Errorf("radio: read header: %w", err)
			}
		}
		h, err := DecodeHeader(r.hdr[:hl])
		if err != nil {
			return nil, err
		}
		if h.IsData() {
			return nil, fmt.Errorf("radio: data frame on a sample stream")
		}
		need := h.Streams * h.Count * 8
		if cap(r.buf) < need {
			r.buf = make([]byte, need)
		}
		r.buf = r.buf[:need]
		if _, err := io.ReadFull(r.r, r.buf); err != nil {
			return nil, fmt.Errorf("radio: read payload: %w", err)
		}
		if out == nil {
			out = make([][]complex128, h.Streams)
			r.lastPacketID = h.PacketID
		}
		if len(out) != h.Streams {
			return nil, fmt.Errorf("radio: stream count changed mid-burst")
		}
		out, err = DecodePayload(out, h, r.buf)
		if err != nil {
			return nil, err
		}
		if h.Flags&FlagEndOfBurst != 0 {
			return out, nil
		}
	}
}
