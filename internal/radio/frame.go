// Package radio provides the IQ sample transport that stands in for the
// host↔USRP2 link of the paper's testbed: a compact framed format carrying
// synchronized multi-antenna complex baseband over any io.Reader/io.Writer
// (TCP), over UDP datagrams with loss detection, or in-process. Samples are
// serialized as interleaved float32 I/Q, the format SDR front-ends commonly
// emit.
package radio

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Frame format (big-endian):
//
//	magic   uint32  "MNIQ" (0x4D4E4951)
//	version uint8   2 (1 = legacy, without the packet field)
//	streams uint8   number of antenna streams (1-4)
//	flags   uint16  bit 0: end-of-burst
//	seq     uint64  frame sequence number
//	count   uint32  samples per stream in this frame
//	packet  uint64  TX-assigned packet ID (version ≥ 2; 0 = unknown)
//	payload streams × count × (float32 I, float32 Q), stream-major
//
// The packet ID is the cross-process correlation key: the transmitter stamps
// every frame of a burst with the MAC packet it carries, so receive-side
// traces and flight-recorder dumps can be joined to the TX record without
// decoding the payload. Version 1 frames (pre-ID) still decode, with ID 0.
const (
	frameMagic   = 0x4D4E4951
	frameVersion = 2
	headerSizeV1 = 4 + 1 + 1 + 2 + 8 + 4
	headerSize   = headerSizeV1 + 8

	// MaxSamplesPerFrame bounds a frame to fit a UDP datagram under the
	// common 1500-byte MTU minus headers when streaming one antenna; the
	// writer splits larger bursts automatically.
	MaxSamplesPerFrame = 4096
)

// FlagEndOfBurst marks the final frame of a burst (packet).
const FlagEndOfBurst = 1 << 0

// Header describes one frame.
type Header struct {
	Streams int
	Flags   uint16
	Seq     uint64
	Count   int
	// PacketID is the TX-assigned MAC packet this frame's samples belong to
	// (0 = unknown / legacy frame).
	PacketID uint64
	// legacy marks a decoded version-1 header, whose wire form has no
	// packet field.
	legacy bool
}

// HeaderLen returns the wire size of this header — the payload offset within
// its frame. Decoded legacy (version 1) headers report the short form.
func (h Header) HeaderLen() int {
	if h.legacy {
		return headerSizeV1
	}
	return headerSize
}

// EncodeFrame appends one frame carrying samples[stream][i] to dst and
// returns the extended buffer. All streams must have equal length ≤
// MaxSamplesPerFrame.
func EncodeFrame(dst []byte, h Header, samples [][]complex128) ([]byte, error) {
	if h.Streams < 1 || h.Streams > 4 || len(samples) != h.Streams {
		return nil, fmt.Errorf("radio: %d streams invalid or mismatched with %d slices", h.Streams, len(samples))
	}
	n := len(samples[0])
	for i, s := range samples {
		if len(s) != n {
			return nil, fmt.Errorf("radio: stream %d has %d samples, stream 0 has %d", i, len(s), n)
		}
	}
	if n == 0 || n > MaxSamplesPerFrame {
		return nil, fmt.Errorf("radio: frame sample count %d outside [1, %d]", n, MaxSamplesPerFrame)
	}
	var hdr [headerSize]byte
	binary.BigEndian.PutUint32(hdr[0:], frameMagic)
	hdr[4] = frameVersion
	hdr[5] = byte(h.Streams)
	binary.BigEndian.PutUint16(hdr[6:], h.Flags)
	binary.BigEndian.PutUint64(hdr[8:], h.Seq)
	binary.BigEndian.PutUint32(hdr[16:], uint32(n))
	binary.BigEndian.PutUint64(hdr[20:], h.PacketID)
	dst = append(dst, hdr[:]...)
	var scratch [8]byte
	for _, s := range samples {
		for _, v := range s {
			binary.BigEndian.PutUint32(scratch[0:], math.Float32bits(float32(real(v))))
			binary.BigEndian.PutUint32(scratch[4:], math.Float32bits(float32(imag(v))))
			dst = append(dst, scratch[:]...)
		}
	}
	return dst, nil
}

// FrameSize returns the encoded size of a frame with the given shape.
func FrameSize(streams, count int) int { return headerSize + streams*count*8 }

// DecodeHeader parses a frame header. Both the current version-2 form and
// the legacy version-1 form (no packet ID) are accepted; use HeaderLen on
// the result for the payload offset.
func DecodeHeader(b []byte) (Header, error) {
	if len(b) < headerSizeV1 {
		return Header{}, fmt.Errorf("radio: header needs %d bytes, got %d", headerSizeV1, len(b))
	}
	if binary.BigEndian.Uint32(b[0:]) != frameMagic {
		return Header{}, fmt.Errorf("radio: bad magic %#08x", binary.BigEndian.Uint32(b[0:]))
	}
	if b[4] != 1 && b[4] != frameVersion {
		return Header{}, fmt.Errorf("radio: unsupported version %d", b[4])
	}
	h := Header{
		Streams: int(b[5]),
		Flags:   binary.BigEndian.Uint16(b[6:]),
		Seq:     binary.BigEndian.Uint64(b[8:]),
		Count:   int(binary.BigEndian.Uint32(b[16:])),
		legacy:  b[4] == 1,
	}
	if !h.legacy {
		if len(b) < headerSize {
			return Header{}, fmt.Errorf("radio: v2 header needs %d bytes, got %d", headerSize, len(b))
		}
		h.PacketID = binary.BigEndian.Uint64(b[20:])
	}
	if h.Streams < 1 || h.Streams > 4 {
		return Header{}, fmt.Errorf("radio: stream count %d out of range", h.Streams)
	}
	if h.Count < 1 || h.Count > MaxSamplesPerFrame {
		return Header{}, fmt.Errorf("radio: sample count %d out of range", h.Count)
	}
	return h, nil
}

// DecodePayload parses the sample payload following a decoded header,
// appending to per-stream slices in dst (growing as needed). dst must have
// h.Streams entries.
func DecodePayload(dst [][]complex128, h Header, b []byte) ([][]complex128, error) {
	want := h.Streams * h.Count * 8
	if len(b) < want {
		return nil, fmt.Errorf("radio: payload needs %d bytes, got %d", want, len(b))
	}
	if len(dst) != h.Streams {
		return nil, fmt.Errorf("radio: dst has %d streams, frame has %d", len(dst), h.Streams)
	}
	off := 0
	for s := 0; s < h.Streams; s++ {
		for i := 0; i < h.Count; i++ {
			re := math.Float32frombits(binary.BigEndian.Uint32(b[off:]))
			im := math.Float32frombits(binary.BigEndian.Uint32(b[off+4:]))
			dst[s] = append(dst[s], complex(float64(re), float64(im)))
			off += 8
		}
	}
	return dst, nil
}

// StreamWriter writes bursts as a sequence of frames over a stream
// transport (TCP or anything io.Writer). Not safe for concurrent use.
type StreamWriter struct {
	w       io.Writer
	streams int
	seq     uint64
	buf     []byte
}

// NewStreamWriter returns a writer for the given antenna count.
func NewStreamWriter(w io.Writer, streams int) (*StreamWriter, error) {
	if streams < 1 || streams > 4 {
		return nil, fmt.Errorf("radio: stream count %d out of range [1,4]", streams)
	}
	return &StreamWriter{w: w, streams: streams}, nil
}

// WriteBurst sends one complete burst (e.g. one PPDU), split into frames;
// the last frame carries the end-of-burst flag. The frames carry packet ID 0
// (unknown); transmitters that track MAC packets use WriteBurstID.
func (w *StreamWriter) WriteBurst(samples [][]complex128) error {
	return w.WriteBurstID(0, samples)
}

// WriteBurstID sends one burst with every frame stamped with the
// TX-assigned packet ID, the cross-process correlation key.
func (w *StreamWriter) WriteBurstID(packetID uint64, samples [][]complex128) error {
	if len(samples) != w.streams {
		return fmt.Errorf("radio: %d streams, writer configured for %d", len(samples), w.streams)
	}
	total := len(samples[0])
	if total == 0 {
		return fmt.Errorf("radio: empty burst")
	}
	for off := 0; off < total; off += MaxSamplesPerFrame {
		end := off + MaxSamplesPerFrame
		if end > total {
			end = total
		}
		var flags uint16
		if end == total {
			flags = FlagEndOfBurst
		}
		chunk := make([][]complex128, w.streams)
		for s := range samples {
			if len(samples[s]) != total {
				return fmt.Errorf("radio: ragged burst")
			}
			chunk[s] = samples[s][off:end]
		}
		w.buf = w.buf[:0]
		var err error
		w.buf, err = EncodeFrame(w.buf, Header{Streams: w.streams, Flags: flags, Seq: w.seq, Count: end - off, PacketID: packetID}, chunk)
		if err != nil {
			return err
		}
		w.seq++
		if _, err := w.w.Write(w.buf); err != nil {
			return fmt.Errorf("radio: write: %w", err)
		}
	}
	return nil
}

// StreamReader reads bursts from a stream transport.
type StreamReader struct {
	r   io.Reader
	hdr [headerSize]byte
	buf []byte
	// lastPacketID is the packet ID carried by the most recently assembled
	// burst's frames.
	lastPacketID uint64
}

// NewStreamReader returns a reader.
func NewStreamReader(r io.Reader) *StreamReader {
	return &StreamReader{r: r}
}

// LastPacketID returns the TX-assigned packet ID of the last burst ReadBurst
// returned (0 before the first burst or on legacy frames).
func (r *StreamReader) LastPacketID() uint64 { return r.lastPacketID }

// ReadBurst reassembles frames until an end-of-burst flag and returns the
// per-stream samples. io.EOF is returned (possibly wrapping partial data
// loss) when the transport closes cleanly between bursts.
func (r *StreamReader) ReadBurst() ([][]complex128, error) {
	var out [][]complex128
	for {
		// Read the short (v1) prefix first; the version byte decides whether
		// the packet-ID extension follows.
		if _, err := io.ReadFull(r.r, r.hdr[:headerSizeV1]); err != nil {
			if err == io.EOF && out == nil {
				return nil, io.EOF
			}
			return nil, fmt.Errorf("radio: read header: %w", err)
		}
		hl := headerSizeV1
		if r.hdr[4] != 1 {
			if _, err := io.ReadFull(r.r, r.hdr[headerSizeV1:headerSize]); err != nil {
				return nil, fmt.Errorf("radio: read header: %w", err)
			}
			hl = headerSize
		}
		h, err := DecodeHeader(r.hdr[:hl])
		if err != nil {
			return nil, err
		}
		need := h.Streams * h.Count * 8
		if cap(r.buf) < need {
			r.buf = make([]byte, need)
		}
		r.buf = r.buf[:need]
		if _, err := io.ReadFull(r.r, r.buf); err != nil {
			return nil, fmt.Errorf("radio: read payload: %w", err)
		}
		if out == nil {
			out = make([][]complex128, h.Streams)
			r.lastPacketID = h.PacketID
		}
		if len(out) != h.Streams {
			return nil, fmt.Errorf("radio: stream count changed mid-burst")
		}
		out, err = DecodePayload(out, h, r.buf)
		if err != nil {
			return nil, err
		}
		if h.Flags&FlagEndOfBurst != 0 {
			return out, nil
		}
	}
}
