package radio

import (
	"net"
	"testing"
	"time"
)

// rawUDP returns a raw conn to rx plus a frame sender with explicit seq and
// an optional mangle step.
func rawUDP(t *testing.T, rx *UDPReceiver) (*net.UDPConn, func(seq uint64, flags uint16, mangle func([]byte) []byte)) {
	t.Helper()
	conn, err := net.DialUDP("udp", nil, rx.Addr().(*net.UDPAddr))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	chunk := [][]complex128{make([]complex128, 50)}
	for i := range chunk[0] {
		chunk[0][i] = complex(1, 1)
	}
	send := func(seq uint64, flags uint16, mangle func([]byte) []byte) {
		f, err := EncodeFrame(nil, Header{Streams: 1, Flags: flags, Seq: seq, Count: 50}, chunk)
		if err != nil {
			t.Error(err)
			return
		}
		if mangle != nil {
			f = mangle(f)
		}
		if _, err := conn.Write(f); err != nil {
			t.Error(err)
		}
	}
	return conn, send
}

// A datagram truncated mid-payload must not abort the burst: the claimed
// samples are zero-filled, Corrupt is counted, and end-of-burst still
// terminates the read.
func TestUDPTruncatedDatagramSurvives(t *testing.T) {
	rx, err := NewUDPReceiver("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer rx.Close()
	_, send := rawUDP(t, rx)
	go func() {
		time.Sleep(20 * time.Millisecond)
		send(0, 0, nil)
		send(1, 0, func(f []byte) []byte { return f[:len(f)/2] }) // truncated
		send(2, FlagEndOfBurst, nil)
	}()
	got, err := rx.ReadBurst(5 * time.Second)
	if err != nil {
		t.Fatalf("ReadBurst: %v", err)
	}
	if rx.Corrupt != 1 {
		t.Errorf("Corrupt = %d, want 1", rx.Corrupt)
	}
	if len(got[0]) != 150 {
		t.Errorf("burst length %d, want 150 (truncated frame zero-filled)", len(got[0]))
	}
	for i := 50; i < 100; i++ {
		if got[0][i] != 0 {
			t.Fatalf("zero-filled region sample %d = %v", i, got[0][i])
		}
	}
}

// A truncated end-of-burst datagram must still terminate the burst.
func TestUDPTruncatedEOBStillTerminates(t *testing.T) {
	rx, err := NewUDPReceiver("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer rx.Close()
	_, send := rawUDP(t, rx)
	go func() {
		time.Sleep(20 * time.Millisecond)
		send(0, 0, nil)
		send(1, FlagEndOfBurst, func(f []byte) []byte { return f[:headerSize+8] })
	}()
	got, err := rx.ReadBurst(5 * time.Second)
	if err != nil {
		t.Fatalf("ReadBurst: %v", err)
	}
	if len(got[0]) != 100 || rx.Corrupt != 1 {
		t.Errorf("length %d corrupt %d, want 100 and 1", len(got[0]), rx.Corrupt)
	}
}

// Unparseable datagrams (garbage, bad magic) are counted and skipped.
func TestUDPGarbageDatagramCounted(t *testing.T) {
	rx, err := NewUDPReceiver("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer rx.Close()
	conn, send := rawUDP(t, rx)
	go func() {
		time.Sleep(20 * time.Millisecond)
		conn.Write([]byte("not a frame at all"))
		send(0, FlagEndOfBurst, nil)
	}()
	if _, err := rx.ReadBurst(5 * time.Second); err != nil {
		t.Fatalf("ReadBurst: %v", err)
	}
	if rx.Corrupt != 1 {
		t.Errorf("Corrupt = %d, want 1", rx.Corrupt)
	}
}

// A frame arriving after its gap was zero-filled is discarded as Late, not
// spliced in out of place.
func TestUDPLateDatagramSkipped(t *testing.T) {
	rx, err := NewUDPReceiver("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer rx.Close()
	_, send := rawUDP(t, rx)
	go func() {
		time.Sleep(20 * time.Millisecond)
		send(0, 0, nil)
		send(2, 0, nil) // seq 1 skipped: zero-filled as lost
		send(1, 0, nil) // …then arrives late
		send(3, FlagEndOfBurst, nil)
	}()
	got, err := rx.ReadBurst(5 * time.Second)
	if err != nil {
		t.Fatalf("ReadBurst: %v", err)
	}
	if rx.Late != 1 || rx.Lost != 1 {
		t.Errorf("Late = %d Lost = %d, want 1 and 1", rx.Late, rx.Lost)
	}
	if len(got[0]) != 200 {
		t.Errorf("burst length %d, want 200", len(got[0]))
	}
}

// The Intercept hook sees every frame and its verdict is honoured: dropped
// frames manifest as receiver-side loss, multi-datagram results all go out.
func TestUDPSenderIntercept(t *testing.T) {
	rx, err := NewUDPReceiver("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer rx.Close()
	tx, err := NewUDPSender(rx.Addr().String(), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Close()
	tx.SamplesPerDatagram = 50
	intercepted := 0
	tx.Intercept = func(d []byte) [][]byte {
		intercepted++
		h, err := DecodeHeader(d)
		if err != nil {
			t.Errorf("intercept got undecodable frame: %v", err)
			return nil
		}
		if h.Seq == 1 {
			return nil // drop the second frame
		}
		return [][]byte{d}
	}
	burst := [][]complex128{make([]complex128, 200)} // 4 datagrams
	for i := range burst[0] {
		burst[0][i] = complex(1, -1)
	}
	sent := make(chan struct{})
	go func() {
		defer close(sent)
		time.Sleep(20 * time.Millisecond)
		if err := tx.WriteBurst(burst); err != nil {
			t.Error(err)
		}
	}()
	got, err := rx.ReadBurst(5 * time.Second)
	if err != nil {
		t.Fatalf("ReadBurst: %v", err)
	}
	<-sent
	if intercepted != 4 {
		t.Errorf("intercept saw %d frames, want 4", intercepted)
	}
	if rx.Lost != 1 {
		t.Errorf("Lost = %d, want 1", rx.Lost)
	}
	if len(got[0]) != 200 {
		t.Errorf("burst length %d, want 200 (dropped frame zero-filled)", len(got[0]))
	}
}
