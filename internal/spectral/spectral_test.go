package spectral

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"repro/internal/phy"
)

func TestPSDValidation(t *testing.T) {
	if _, err := PSD(make([]complex128, 100), 63); err == nil {
		t.Error("non-power-of-two nfft should fail")
	}
	if _, err := PSD(make([]complex128, 10), 64); err == nil {
		t.Error("too-short signal should fail")
	}
}

func TestPSDToneLocation(t *testing.T) {
	// A pure tone at bin 12 must concentrate its power there.
	n := 4096
	x := make([]complex128, n)
	const k = 12.0
	for i := range x {
		x[i] = cmplx.Exp(complex(0, 2*math.Pi*k*float64(i)/256))
	}
	psd, err := PSD(x, 256)
	if err != nil {
		t.Fatal(err)
	}
	best, bestV := 0, 0.0
	var total float64
	for i, v := range psd {
		total += v
		if v > bestV {
			best, bestV = i, v
		}
	}
	if best != int(k) {
		t.Errorf("peak at bin %d, want %d", best, int(k))
	}
	// Power conservation: Σ psd ≈ mean power = 1.
	if math.Abs(total-1) > 0.05 {
		t.Errorf("total PSD %g, want ≈ 1", total)
	}
	// Concentration: the peak region holds nearly all power.
	var local float64
	for d := -2; d <= 2; d++ {
		local += psd[(best+d+256)%256]
	}
	if local/total < 0.95 {
		t.Errorf("tone power spread out: %g in ±2 bins", local/total)
	}
}

func TestPSDWhiteNoiseFlat(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	x := make([]complex128, 1<<16)
	for i := range x {
		x[i] = complex(r.NormFloat64(), r.NormFloat64())
	}
	psd, err := PSD(x, 64)
	if err != nil {
		t.Fatal(err)
	}
	mean := 0.0
	for _, v := range psd {
		mean += v
	}
	mean /= 64
	for k, v := range psd {
		if v < mean*0.7 || v > mean*1.3 {
			t.Errorf("bin %d = %g, mean %g: white-noise PSD not flat", k, v, mean)
		}
	}
}

func TestOccupiedBandwidthOfHTBurst(t *testing.T) {
	// An HT transmission occupies ±28 of 64 subcarriers: ~(57/64) of the
	// band holds essentially all the power, the outer bins almost none.
	tx, err := phy.NewTransmitter(phy.TxConfig{MCS: 0})
	if err != nil {
		t.Fatal(err)
	}
	burst, err := tx.Transmit(make([]byte, 1000))
	if err != nil {
		t.Fatal(err)
	}
	psd, err := PSD(burst[0], 64)
	if err != nil {
		t.Fatal(err)
	}
	inBand, err := OccupiedBandwidth(psd, 58)
	if err != nil {
		t.Fatal(err)
	}
	if inBand < 0.98 {
		t.Errorf("only %g of power inside ±29 bins", inBand)
	}
	narrow, err := OccupiedBandwidth(psd, 40)
	if err != nil {
		t.Fatal(err)
	}
	if narrow >= inBand {
		t.Error("narrower band cannot hold more power")
	}
	if _, err := OccupiedBandwidth(psd, 0); err == nil {
		t.Error("zero bins should fail")
	}
	if _, err := OccupiedBandwidth(make([]float64, 4), 2); err == nil {
		t.Error("zero power should fail")
	}
}

func TestPAPR(t *testing.T) {
	// Constant-envelope signal: PAPR = 0 dB.
	x := make([]complex128, 100)
	for i := range x {
		x[i] = cmplx.Exp(complex(0, float64(i)))
	}
	papr, err := PAPR(x)
	if err != nil || math.Abs(papr) > 1e-9 {
		t.Errorf("constant envelope PAPR = %g dB, err %v", papr, err)
	}
	// A single 2x-amplitude peak among unit samples: PAPR ≈ 10·log10(4/µ).
	x[50] = 2
	papr, err = PAPR(x)
	if err != nil || papr < 5.5 || papr > 6.2 {
		t.Errorf("peaky PAPR = %g dB", papr)
	}
	if _, err := PAPR(nil); err == nil {
		t.Error("empty should fail")
	}
	if _, err := PAPR(make([]complex128, 4)); err == nil {
		t.Error("zero power should fail")
	}
}

func TestOFDMPAPRIsHigh(t *testing.T) {
	// OFDM's defining cost: PAPR well above single-carrier.
	tx, err := phy.NewTransmitter(phy.TxConfig{MCS: 7})
	if err != nil {
		t.Fatal(err)
	}
	burst, err := tx.Transmit(make([]byte, 2000))
	if err != nil {
		t.Fatal(err)
	}
	papr, err := PAPR(burst[0])
	if err != nil {
		t.Fatal(err)
	}
	if papr < 7 || papr > 14 {
		t.Errorf("OFDM burst PAPR %g dB outside the plausible 7-14 dB", papr)
	}
}

func TestCCDFMonotone(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	x := make([]complex128, 20000)
	for i := range x {
		x[i] = complex(r.NormFloat64(), r.NormFloat64())
	}
	th := []float64{0, 2, 4, 6, 8, 10}
	ccdf, err := CCDF(x, th)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(ccdf); i++ {
		if ccdf[i] > ccdf[i-1] {
			t.Errorf("CCDF rose between %g and %g dB", th[i-1], th[i])
		}
	}
	// Complex Gaussian: P(power > mean) = e^{-1} ≈ 0.368.
	if math.Abs(ccdf[0]-math.Exp(-1)) > 0.02 {
		t.Errorf("CCDF(0 dB) = %g, want ≈ %g", ccdf[0], math.Exp(-1))
	}
	if _, err := CCDF(nil, th); err == nil {
		t.Error("empty should fail")
	}
}
