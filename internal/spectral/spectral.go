// Package spectral provides the signal-quality analyses an SDR
// implementation paper validates its transmitter with: Welch power spectral
// density estimation (for spectrum/occupied-bandwidth figures and the
// 802.11 transmit spectral mask), and peak-to-average power ratio CCDFs
// (the OFDM PA-backoff figure).
package spectral

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/dsp"
)

// PSD estimates the power spectral density of x by Welch's method:
// segments of nfft samples with 50% overlap, Hann windowed, periodograms
// averaged. The result has nfft bins in FFT order (bin 0 = DC); values are
// linear power per bin normalized so that Σ bins ≈ mean signal power.
func PSD(x []complex128, nfft int) ([]float64, error) {
	if nfft < 2 || nfft&(nfft-1) != 0 {
		return nil, fmt.Errorf("spectral: nfft %d is not a power of two ≥ 2", nfft)
	}
	if len(x) < nfft {
		return nil, fmt.Errorf("spectral: need at least %d samples, got %d", nfft, len(x))
	}
	fft := dsp.MustFFT(nfft)
	win := dsp.Hann(nfft)
	var winPow float64
	for _, w := range win {
		winPow += w * w
	}
	hop := nfft / 2
	psd := make([]float64, nfft)
	seg := make([]complex128, nfft)
	spec := make([]complex128, nfft)
	count := 0
	for off := 0; off+nfft <= len(x); off += hop {
		copy(seg, x[off:off+nfft])
		dsp.ApplyWindow(seg, win)
		fft.Forward(spec, seg)
		for k, v := range spec {
			psd[k] += real(v)*real(v) + imag(v)*imag(v)
		}
		count++
	}
	// Normalize by segment count, window power and FFT length so that
	// Σ_k psd[k] equals the mean sample power (Parseval with the window's
	// energy compensated).
	norm := 1 / (float64(count) * winPow * float64(nfft))
	for k := range psd {
		psd[k] *= norm
	}
	return psd, nil
}

// OccupiedBandwidth returns the fraction of total power falling inside the
// centered band of `bins` spectral bins (FFT-order psd input). For a 64-bin
// PSD of a 20 MHz 802.11 signal, bins=56 covers ±28 subcarriers.
func OccupiedBandwidth(psd []float64, bins int) (float64, error) {
	n := len(psd)
	if bins < 1 || bins > n {
		return 0, fmt.Errorf("spectral: bins %d outside [1, %d]", bins, n)
	}
	var total, inBand float64
	for _, p := range psd {
		total += p
	}
	if total == 0 {
		return 0, fmt.Errorf("spectral: zero total power")
	}
	half := bins / 2
	for k := 0; k < n; k++ {
		// Signed frequency index in [-n/2, n/2).
		f := k
		if f >= n/2 {
			f -= n
		}
		if f >= -half && f <= half-1+bins%2 {
			inBand += psd[k]
		}
	}
	return inBand / total, nil
}

// PAPR returns the peak-to-average power ratio of x in dB.
func PAPR(x []complex128) (float64, error) {
	if len(x) == 0 {
		return 0, fmt.Errorf("spectral: empty signal")
	}
	var peak, mean float64
	for _, v := range x {
		p := real(v)*real(v) + imag(v)*imag(v)
		mean += p
		if p > peak {
			peak = p
		}
	}
	mean /= float64(len(x))
	if mean == 0 {
		return 0, fmt.Errorf("spectral: zero-power signal")
	}
	return 10 * math.Log10(peak/mean), nil
}

// CCDF computes the complementary cumulative distribution of the
// instantaneous-to-average power ratio at the given dB thresholds:
// out[i] = P(power > mean·10^(th[i]/10)).
func CCDF(x []complex128, thresholdsDB []float64) ([]float64, error) {
	if len(x) == 0 {
		return nil, fmt.Errorf("spectral: empty signal")
	}
	powers := make([]float64, len(x))
	var mean float64
	for i, v := range x {
		powers[i] = real(v)*real(v) + imag(v)*imag(v)
		mean += powers[i]
	}
	mean /= float64(len(x))
	if mean == 0 {
		return nil, fmt.Errorf("spectral: zero-power signal")
	}
	sort.Float64s(powers)
	out := make([]float64, len(thresholdsDB))
	for i, th := range thresholdsDB {
		lim := mean * math.Pow(10, th/10)
		// Count of samples strictly above lim via binary search.
		idx := sort.SearchFloat64s(powers, lim)
		for idx < len(powers) && powers[idx] <= lim {
			idx++
		}
		out[i] = float64(len(powers)-idx) / float64(len(powers))
	}
	return out, nil
}
