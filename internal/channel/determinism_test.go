package channel

import "testing"

// TestApplyDeterministicForSeed is the regression the detrand analyzer
// backs statically: two channels built from identical configs (same seed)
// must produce bit-identical output through every stochastic path — fading
// draw, Doppler evolution, phase noise, AWGN.
func TestApplyDeterministicForSeed(t *testing.T) {
	cfg := Config{
		NumTX: 2, NumRX: 2, Model: TGnC, SNRdB: 18, Seed: 424242,
		DopplerHz: 120, SampleRate: 20e6, PhaseNoiseHz: 50,
		CFOHz: 3000, TimingOffset: 17, TrailingSilence: 9,
	}
	burst := make([][]complex128, 2)
	for tx := range burst {
		burst[tx] = make([]complex128, 400)
		for i := range burst[tx] {
			burst[tx][i] = complex(float64(i%7)/7, float64((i+tx)%5)/5)
		}
	}
	run := func() [][]complex128 {
		ch, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		// Two Applies: the second draw consumes RNG state, so it too must
		// replay identically.
		if _, err := ch.Apply(burst); err != nil {
			t.Fatal(err)
		}
		out, err := ch.Apply(burst)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := run(), run()
	for rx := range a {
		if len(a[rx]) != len(b[rx]) {
			t.Fatalf("rx %d: length %d vs %d", rx, len(a[rx]), len(b[rx]))
		}
		for i := range a[rx] {
			if a[rx][i] != b[rx][i] {
				t.Fatalf("rx %d sample %d differs: %v vs %v", rx, i, a[rx][i], b[rx][i])
			}
		}
	}
}
