// Package channel simulates the radio path the paper's testbed provided
// with USRP2 front-ends and indoor antennas: MIMO fading (flat Rayleigh and
// TGn-style frequency-selective multipath), AWGN, and the front-end
// impairments a real SDR chain introduces — carrier frequency offset,
// sampling clock offset, IQ imbalance, oscillator phase noise and DC offset.
// Every impairment is independently switchable so experiments can isolate
// the receiver algorithm designed for it.
package channel

import (
	"fmt"
	"math"
	"math/rand"
)

// Model selects the propagation model.
type Model int

// Propagation models. The TGn letters follow IEEE 802.11 TGn channel model
// RMS delay spreads (A: flat/0 ns, B: 15 ns, C: 30 ns, D: 50 ns, E: 100 ns,
// F: 150 ns); taps are drawn from an exponential power-delay profile sampled
// at the 50 ns sample period. This is a simplification of the full TGn
// cluster model documented in DESIGN.md: it preserves the frequency
// selectivity and Rayleigh statistics the receiver algorithms are sensitive
// to, without the angular-spectrum machinery an antenna-array study needs.
const (
	// Identity passes the signal through unchanged (plus impairments and
	// noise): back-to-back cable test.
	Identity Model = iota
	// FlatRayleigh draws one CN(0,1) coefficient per TX-RX pair per packet.
	FlatRayleigh
	TGnA
	TGnB
	TGnC
	TGnD
	TGnE
	TGnF
)

func (m Model) String() string {
	switch m {
	case Identity:
		return "identity"
	case FlatRayleigh:
		return "rayleigh"
	case TGnA:
		return "tgn-a"
	case TGnB:
		return "tgn-b"
	case TGnC:
		return "tgn-c"
	case TGnD:
		return "tgn-d"
	case TGnE:
		return "tgn-e"
	case TGnF:
		return "tgn-f"
	}
	return fmt.Sprintf("Model(%d)", int(m))
}

// ParseModel converts a name (as printed by String) back to a Model.
func ParseModel(s string) (Model, error) {
	for m := Identity; m <= TGnF; m++ {
		if m.String() == s {
			return m, nil
		}
	}
	return 0, fmt.Errorf("channel: unknown model %q", s)
}

// rmsDelayNs returns the RMS delay spread of the model in nanoseconds.
func (m Model) rmsDelayNs() float64 {
	switch m {
	case TGnB:
		return 15
	case TGnC:
		return 30
	case TGnD:
		return 50
	case TGnE:
		return 100
	case TGnF:
		return 150
	default:
		return 0
	}
}

// Config assembles a channel.
type Config struct {
	NumTX, NumRX int
	Model        Model
	// SNRdB sets the AWGN level per receive antenna assuming unit total
	// transmit power and unit-energy fading (the transmitter's 1/√N_TX
	// power split keeps this calibration for any antenna count).
	SNRdB float64
	// NoNoise disables AWGN entirely (overrides SNRdB).
	NoNoise bool
	// Seed makes the channel reproducible. Required (zero is a valid seed).
	Seed int64
	// Redraw controls whether fading taps are redrawn on every Apply
	// (block fading, the default behaviour when true) or frozen after the
	// first draw.
	Freeze bool
	// TXCorrelation ρ ∈ [0, 1) correlates the fading seen from different
	// transmit antennas (Kronecker model, H ← H·R_tx^{1/2} with
	// R_tx[i][j] = ρ^|i−j|). High correlation collapses the channel rank
	// and starves spatial multiplexing — the regime experiment E20 probes.
	TXCorrelation float64

	// DopplerHz makes the fading taps time-varying inside a burst: each
	// tap evolves as an AR(1) (Gauss-Markov) process, updated every
	// DopplerBlock samples with correlation matched to the given maximum
	// Doppler frequency. Requires SampleRate. Zero keeps taps static.
	DopplerHz float64
	// DopplerBlock is the tap-update granularity in samples (default 80,
	// one OFDM symbol).
	DopplerBlock int

	// Front-end impairments, all zero by default.
	CFOHz           float64    // carrier frequency offset
	SampleRate      float64    // needed when CFOHz or ClockPPM set; e.g. 20e6
	ClockPPM        float64    // sampling clock offset in parts per million
	IQGainDB        float64    // IQ amplitude imbalance
	IQPhaseDeg      float64    // IQ phase imbalance
	PhaseNoiseHz    float64    // oscillator linewidth (Wiener phase noise)
	DCOffset        complex128 // additive DC
	TimingOffset    int        // extra lead samples of pure noise before the burst
	TrailingSilence int        // noise samples appended after the burst
}

// Channel applies a Config to transmit bursts. Not safe for concurrent use
// (it owns an RNG); create one per goroutine.
type Channel struct {
	cfg  Config
	rng  *rand.Rand
	taps [][][]complex128 // [rx][tx][tap]
	// lastH is kept for tests/diagnostics: the taps used in the last Apply.
	lastH [][][]complex128
}

// New validates the configuration and returns a channel.
func New(cfg Config) (*Channel, error) {
	if cfg.NumTX < 1 || cfg.NumTX > 4 || cfg.NumRX < 1 || cfg.NumRX > 4 {
		return nil, fmt.Errorf("channel: antenna counts must be in [1,4], got %dx%d", cfg.NumTX, cfg.NumRX)
	}
	if (cfg.CFOHz != 0 || cfg.ClockPPM != 0 || cfg.PhaseNoiseHz != 0 || cfg.DopplerHz != 0) && cfg.SampleRate <= 0 {
		return nil, fmt.Errorf("channel: SampleRate required for CFO/clock/phase-noise/Doppler impairments")
	}
	if cfg.DopplerHz < 0 {
		return nil, fmt.Errorf("channel: negative Doppler")
	}
	if cfg.DopplerBlock == 0 {
		cfg.DopplerBlock = 80
	}
	if cfg.DopplerBlock < 1 {
		return nil, fmt.Errorf("channel: DopplerBlock must be positive")
	}
	if cfg.DopplerHz > 0 && cfg.Model == Identity {
		return nil, fmt.Errorf("channel: Doppler requires a fading model")
	}
	if cfg.PhaseNoiseHz < 0 || cfg.TimingOffset < 0 || cfg.TrailingSilence < 0 {
		return nil, fmt.Errorf("channel: negative impairment parameter")
	}
	if cfg.TXCorrelation < 0 || cfg.TXCorrelation >= 1 {
		if cfg.TXCorrelation != 0 {
			return nil, fmt.Errorf("channel: TX correlation %g outside [0, 1)", cfg.TXCorrelation)
		}
	}
	return &Channel{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}, nil
}

// Config returns the channel's configuration.
func (c *Channel) Config() Config { return c.cfg }

// numTaps returns the FIR length for the configured model at 20 MHz.
func (c *Channel) numTaps() int {
	rms := c.cfg.Model.rmsDelayNs()
	if rms == 0 {
		return 1
	}
	// Cover ~4 RMS delay spreads at 50 ns per tap, minimum 2 taps.
	n := int(math.Ceil(4*rms/50)) + 1
	if n < 2 {
		n = 2
	}
	return n
}

// drawTaps draws a fresh fading realization with unit total energy per
// TX-RX pair.
func (c *Channel) drawTaps() {
	if c.cfg.Model == Identity {
		c.taps = nil
		return
	}
	n := c.numTaps()
	rms := c.cfg.Model.rmsDelayNs()
	// Exponential PDP p_l ∝ exp(−l·Ts/rms), normalized to Σp = 1.
	pdp := make([]float64, n)
	var total float64
	for l := range pdp {
		if rms == 0 {
			if l == 0 {
				pdp[l] = 1
			}
		} else {
			pdp[l] = math.Exp(-float64(l) * 50 / rms)
		}
		total += pdp[l]
	}
	for l := range pdp {
		pdp[l] /= total
	}
	c.taps = make([][][]complex128, c.cfg.NumRX)
	for rx := range c.taps {
		c.taps[rx] = make([][]complex128, c.cfg.NumTX)
		for tx := range c.taps[rx] {
			t := make([]complex128, n)
			for l := range t {
				std := math.Sqrt(pdp[l] / 2)
				t[l] = complex(c.rng.NormFloat64()*std, c.rng.NormFloat64()*std)
			}
			c.taps[rx][tx] = t
		}
	}
	if rho := c.cfg.TXCorrelation; rho > 0 && c.cfg.NumTX > 1 {
		c.correlateTX(rho, n)
	}
}

// correlateTX imposes the Kronecker TX-side correlation H ← H·R^{1/2},
// applied per tap across the transmit dimension. R^{1/2} is obtained by
// Cholesky factorization of R[i][j] = ρ^|i−j| (real symmetric positive
// definite for ρ < 1).
func (c *Channel) correlateTX(rho float64, nTaps int) {
	nt := c.cfg.NumTX
	// Cholesky of the exponential correlation matrix.
	lchol := make([][]float64, nt)
	for i := range lchol {
		lchol[i] = make([]float64, nt)
	}
	for j := 0; j < nt; j++ {
		for i := j; i < nt; i++ {
			sum := math.Pow(rho, math.Abs(float64(i-j)))
			for k := 0; k < j; k++ {
				sum -= lchol[i][k] * lchol[j][k]
			}
			if i == j {
				lchol[i][j] = math.Sqrt(sum)
			} else {
				lchol[i][j] = sum / lchol[j][j]
			}
		}
	}
	// H_row ← H_row · Lᵀ per RX antenna per tap: h'_t = Σ_s h_s · L[t][s].
	for rx := range c.taps {
		for l := 0; l < nTaps; l++ {
			orig := make([]complex128, nt)
			for t := 0; t < nt; t++ {
				orig[t] = c.taps[rx][t][l]
			}
			for t := 0; t < nt; t++ {
				var acc complex128
				for s := 0; s <= t; s++ {
					acc += orig[s] * complex(lchol[t][s], 0)
				}
				c.taps[rx][t][l] = acc
			}
		}
	}
}

// Taps returns the fading taps used by the most recent Apply, indexed
// [rx][tx][tap], or nil for the Identity model. The returned slices alias
// internal state; treat them as read-only.
func (c *Channel) Taps() [][][]complex128 { return c.lastH }

// Apply transmits one burst: tx[t] is the waveform of transmit chain t (all
// equal length). The returned rx[r] streams have length
// TimingOffset + ceil(len·(1+ppm)) + TrailingSilence.
func (c *Channel) Apply(tx [][]complex128) ([][]complex128, error) {
	if len(tx) != c.cfg.NumTX {
		return nil, fmt.Errorf("channel: %d tx streams, want %d", len(tx), c.cfg.NumTX)
	}
	n := len(tx[0])
	for i, s := range tx {
		if len(s) != n {
			return nil, fmt.Errorf("channel: tx stream %d has %d samples, stream 0 has %d", i, len(s), n)
		}
	}
	if n == 0 {
		return nil, fmt.Errorf("channel: empty burst")
	}
	if c.taps == nil && c.cfg.Model != Identity || !c.cfg.Freeze {
		c.drawTaps()
	}
	c.lastH = c.taps

	// 1. Fading/multipath per RX antenna.
	faded := make([][]complex128, c.cfg.NumRX)
	tapLen := 1
	if c.cfg.Model != Identity {
		tapLen = c.numTaps()
	}
	// Doppler evolution: precompute per-block tap trajectories shared by
	// every (rx, tx) pair's own AR(1) walk.
	var rho, innov float64
	numBlocks := 1
	if c.cfg.DopplerHz > 0 {
		// Gauss-Markov correlation over one block, from the Gaussian
		// Doppler spectrum approximation exp(−(2π f_D τ)²/2).
		tau := float64(c.cfg.DopplerBlock) / c.cfg.SampleRate
		x := 2 * math.Pi * c.cfg.DopplerHz * tau
		rho = math.Exp(-x * x / 2)
		innov = math.Sqrt(1 - rho*rho)
		numBlocks = (n + c.cfg.DopplerBlock - 1) / c.cfg.DopplerBlock
	}
	for rx := 0; rx < c.cfg.NumRX; rx++ {
		out := make([]complex128, n+tapLen-1)
		if c.cfg.Model == Identity {
			// Identity requires square mapping; route chain i to antenna i,
			// extra RX antennas receive silence.
			if rx < c.cfg.NumTX {
				copy(out, tx[rx])
			}
		} else if c.cfg.DopplerHz == 0 {
			for t := 0; t < c.cfg.NumTX; t++ {
				taps := c.taps[rx][t]
				for l, g := range taps {
					if g == 0 {
						continue
					}
					src := tx[t]
					for i := range src {
						out[i+l] += g * src[i]
					}
				}
			}
		} else {
			for t := 0; t < c.cfg.NumTX; t++ {
				// Evolve a copy of the drawn taps block by block. The AR(1)
				// innovation preserves each tap's PDP variance because the
				// stationary distribution of g ← ρg + √(1−ρ²)w matches the
				// initial draw.
				taps := append([]complex128(nil), c.taps[rx][t]...)
				vars := tapStds(taps, c.cfg.Model, c.numTaps())
				for b := 0; b < numBlocks; b++ {
					lo := b * c.cfg.DopplerBlock
					hi := lo + c.cfg.DopplerBlock
					if hi > n {
						hi = n
					}
					src := tx[t]
					for l, g := range taps {
						if g == 0 {
							continue
						}
						for i := lo; i < hi; i++ {
							out[i+l] += g * src[i]
						}
					}
					for l := range taps {
						w := complex(c.rng.NormFloat64()*vars[l], c.rng.NormFloat64()*vars[l])
						taps[l] = complex(rho, 0)*taps[l] + complex(innov, 0)*w
					}
				}
			}
		}
		faded[rx] = out
	}

	// 2. Front-end impairments (common oscillator across chains, as in the
	// paper's synchronized USRP2 setup).
	for rx := range faded {
		c.applyImpairments(faded[rx])
	}

	// 3. Timing offset, trailing silence, AWGN.
	noiseStd := 0.0
	if !c.cfg.NoNoise {
		noiseStd = math.Sqrt(math.Pow(10, -c.cfg.SNRdB/10) / 2)
	}
	out := make([][]complex128, c.cfg.NumRX)
	for rx := range faded {
		total := c.cfg.TimingOffset + len(faded[rx]) + c.cfg.TrailingSilence
		s := make([]complex128, total)
		copy(s[c.cfg.TimingOffset:], faded[rx])
		if noiseStd > 0 {
			for i := range s {
				s[i] += complex(c.rng.NormFloat64()*noiseStd, c.rng.NormFloat64()*noiseStd)
			}
		}
		// DC offset is a receiver-front-end artifact: present on every
		// sample the ADC produces, including lead/trailing noise.
		if c.cfg.DCOffset != 0 {
			for i := range s {
				s[i] += c.cfg.DCOffset
			}
		}
		out[rx] = s
	}
	return out, nil
}

// tapStds returns the per-tap innovation standard deviations (per real
// dimension) matching the model's exponential PDP, so the AR(1) Doppler walk
// keeps each tap at its profile power.
func tapStds(taps []complex128, m Model, n int) []float64 {
	rms := m.rmsDelayNs()
	pdp := make([]float64, len(taps))
	var total float64
	for l := range pdp {
		if rms == 0 {
			if l == 0 {
				pdp[l] = 1
			}
		} else {
			pdp[l] = math.Exp(-float64(l) * 50 / rms)
		}
		total += pdp[l]
	}
	out := make([]float64, len(taps))
	for l := range out {
		out[l] = math.Sqrt(pdp[l] / total / 2)
	}
	return out
}

// applyImpairments mutates one stream in place: IQ imbalance, CFO, phase
// noise, clock offset (resampling).
func (c *Channel) applyImpairments(s []complex128) {
	// IQ imbalance: y = α·x + β·conj(x) with α, β from gain g and phase φ.
	if c.cfg.IQGainDB != 0 || c.cfg.IQPhaseDeg != 0 {
		g := math.Pow(10, c.cfg.IQGainDB/20)
		phi := c.cfg.IQPhaseDeg * math.Pi / 180
		alpha := complex((1+g*math.Cos(phi))/2, g*math.Sin(phi)/2)
		beta := complex((1-g*math.Cos(phi))/2, -g*math.Sin(phi)/2)
		for i, v := range s {
			s[i] = alpha*v + beta*complex(real(v), -imag(v))
		}
	}
	// CFO + phase noise in one rotation pass.
	if c.cfg.CFOHz != 0 || c.cfg.PhaseNoiseHz > 0 {
		step := 2 * math.Pi * c.cfg.CFOHz / c.cfg.SampleRate
		pnStd := 0.0
		if c.cfg.PhaseNoiseHz > 0 {
			// Wiener phase noise: increment variance 2π·linewidth/Fs.
			pnStd = math.Sqrt(2 * math.Pi * c.cfg.PhaseNoiseHz / c.cfg.SampleRate)
		}
		phase := 0.0
		for i, v := range s {
			if pnStd > 0 {
				phase += c.rng.NormFloat64() * pnStd
			}
			rot := complex(math.Cos(phase), math.Sin(phase))
			s[i] = v * rot
			phase += step
		}
	}
	// Sampling clock offset: linear-interpolation resampling in place
	// (output shortened/stretched is approximated at equal length; the
	// packet-scale drift is what the receiver sees).
	if c.cfg.ClockPPM != 0 {
		ratio := 1 + c.cfg.ClockPPM*1e-6
		src := make([]complex128, len(s))
		copy(src, s)
		for i := range s {
			pos := float64(i) * ratio
			i0 := int(pos)
			frac := pos - float64(i0)
			if i0+1 >= len(src) {
				s[i] = src[len(src)-1]
				continue
			}
			s[i] = src[i0]*complex(1-frac, 0) + src[i0+1]*complex(frac, 0)
		}
	}
}
