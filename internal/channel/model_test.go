package channel

import (
	"math"
	"math/cmplx"
	"testing"

	"repro/internal/dsp"
)

func constBurst(ntx, n int) [][]complex128 {
	tx := make([][]complex128, ntx)
	for t := range tx {
		s := make([]complex128, n)
		for i := range s {
			s[i] = complex(1/math.Sqrt(float64(ntx)), 0)
		}
		tx[t] = s
	}
	return tx
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{NumTX: 0, NumRX: 1}); err == nil {
		t.Error("0 TX should fail")
	}
	if _, err := New(Config{NumTX: 1, NumRX: 5}); err == nil {
		t.Error("5 RX should fail")
	}
	if _, err := New(Config{NumTX: 1, NumRX: 1, CFOHz: 100}); err == nil {
		t.Error("CFO without SampleRate should fail")
	}
	if _, err := New(Config{NumTX: 1, NumRX: 1, TimingOffset: -1}); err == nil {
		t.Error("negative timing offset should fail")
	}
}

func TestModelNames(t *testing.T) {
	for m := Identity; m <= TGnF; m++ {
		got, err := ParseModel(m.String())
		if err != nil || got != m {
			t.Errorf("ParseModel(%q) = %v, %v", m.String(), got, err)
		}
	}
	if _, err := ParseModel("nope"); err == nil {
		t.Error("unknown name should fail")
	}
}

func TestIdentityNoNoisePassesThrough(t *testing.T) {
	c, err := New(Config{NumTX: 2, NumRX: 2, Model: Identity, NoNoise: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	tx := constBurst(2, 100)
	rx, err := c.Apply(tx)
	if err != nil {
		t.Fatal(err)
	}
	for a := range rx {
		for i := 0; i < 100; i++ {
			if cmplx.Abs(rx[a][i]-tx[a][i]) > 1e-15 {
				t.Fatalf("antenna %d sample %d modified", a, i)
			}
		}
	}
}

func TestApplyValidation(t *testing.T) {
	c, _ := New(Config{NumTX: 2, NumRX: 2, Seed: 1})
	if _, err := c.Apply(constBurst(1, 10)); err == nil {
		t.Error("wrong stream count should fail")
	}
	if _, err := c.Apply([][]complex128{make([]complex128, 5), make([]complex128, 6)}); err == nil {
		t.Error("ragged streams should fail")
	}
	if _, err := c.Apply([][]complex128{{}, {}}); err == nil {
		t.Error("empty burst should fail")
	}
}

func TestSNRCalibration(t *testing.T) {
	// With identity channel and unit-power TX, measured SNR must match the
	// configured value.
	for _, snrDB := range []float64{0, 10, 20} {
		c, err := New(Config{NumTX: 1, NumRX: 1, Model: Identity, SNRdB: snrDB, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		n := 50000
		tx := constBurst(1, n)
		rx, err := c.Apply(tx)
		if err != nil {
			t.Fatal(err)
		}
		var noisePow float64
		for i := range rx[0] {
			d := rx[0][i] - tx[0][i]
			noisePow += real(d)*real(d) + imag(d)*imag(d)
		}
		noisePow /= float64(n)
		gotSNR := 10 * math.Log10(1/noisePow)
		if math.Abs(gotSNR-snrDB) > 0.3 {
			t.Errorf("configured %g dB, measured %g dB", snrDB, gotSNR)
		}
	}
}

func TestRayleighUnitAveragePower(t *testing.T) {
	c, err := New(Config{NumTX: 2, NumRX: 2, Model: FlatRayleigh, NoNoise: true, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var acc float64
	const trials = 400
	for i := 0; i < trials; i++ {
		rx, err := c.Apply(constBurst(2, 4))
		if err != nil {
			t.Fatal(err)
		}
		taps := c.Taps()
		if len(taps) != 2 || len(taps[0]) != 2 || len(taps[0][0]) != 1 {
			t.Fatalf("taps shape wrong: %d RX", len(taps))
		}
		_ = rx
		for rxA := range taps {
			for txA := range taps[rxA] {
				acc += sq(taps[rxA][txA][0])
			}
		}
	}
	mean := acc / (trials * 4)
	if math.Abs(mean-1) > 0.1 {
		t.Errorf("mean tap power %g, want 1", mean)
	}
}

func sq(v complex128) float64 { return real(v)*real(v) + imag(v)*imag(v) }

func TestTGnTapsEnergyAndSpread(t *testing.T) {
	for _, m := range []Model{TGnB, TGnD, TGnF} {
		c, err := New(Config{NumTX: 1, NumRX: 1, Model: m, NoNoise: true, Seed: 4})
		if err != nil {
			t.Fatal(err)
		}
		var energy float64
		var nTaps int
		const trials = 500
		for i := 0; i < trials; i++ {
			if _, err := c.Apply(constBurst(1, 4)); err != nil {
				t.Fatal(err)
			}
			taps := c.Taps()[0][0]
			nTaps = len(taps)
			for _, g := range taps {
				energy += sq(g)
			}
		}
		energy /= trials
		if math.Abs(energy-1) > 0.1 {
			t.Errorf("%v: mean tap energy %g, want 1", m, energy)
		}
		wantTaps := int(math.Ceil(4*m.rmsDelayNs()/50)) + 1
		if nTaps != wantTaps {
			t.Errorf("%v: %d taps, want %d", m, nTaps, wantTaps)
		}
	}
}

func TestFreezeKeepsTaps(t *testing.T) {
	c, _ := New(Config{NumTX: 1, NumRX: 1, Model: FlatRayleigh, NoNoise: true, Freeze: true, Seed: 5})
	if _, err := c.Apply(constBurst(1, 4)); err != nil {
		t.Fatal(err)
	}
	first := c.Taps()[0][0][0]
	if _, err := c.Apply(constBurst(1, 4)); err != nil {
		t.Fatal(err)
	}
	if c.Taps()[0][0][0] != first {
		t.Error("frozen channel redrew taps")
	}
	c2, _ := New(Config{NumTX: 1, NumRX: 1, Model: FlatRayleigh, NoNoise: true, Seed: 5})
	c2.Apply(constBurst(1, 4))
	h1 := c2.Taps()[0][0][0]
	c2.Apply(constBurst(1, 4))
	if c2.Taps()[0][0][0] == h1 {
		t.Error("unfrozen channel did not redraw taps")
	}
}

func TestCFOImpartsExpectedRotation(t *testing.T) {
	const cfoHz = 10e3
	c, err := New(Config{NumTX: 1, NumRX: 1, Model: Identity, NoNoise: true,
		CFOHz: cfoHz, SampleRate: 20e6, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	rx, err := c.Apply(constBurst(1, 1000))
	if err != nil {
		t.Fatal(err)
	}
	// Phase advance per sample must be 2π·cfo/fs.
	want := 2 * math.Pi * cfoHz / 20e6
	for i := 10; i < 20; i++ {
		got := cmplx.Phase(rx[0][i+1] * cmplx.Conj(rx[0][i]))
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("phase step %g, want %g", got, want)
		}
	}
}

func TestIQImbalanceCreatesImage(t *testing.T) {
	// A pure tone through IQ imbalance grows an image at −f.
	c, err := New(Config{NumTX: 1, NumRX: 1, Model: Identity, NoNoise: true,
		IQGainDB: 1, IQPhaseDeg: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	n := 256
	tx := make([][]complex128, 1)
	tx[0] = make([]complex128, n)
	const k = 10.0
	for i := range tx[0] {
		tx[0][i] = cmplx.Exp(complex(0, 2*math.Pi*k*float64(i)/float64(n)))
	}
	rx, err := c.Apply(tx)
	if err != nil {
		t.Fatal(err)
	}
	fft := dsp.MustFFT(n)
	spec := make([]complex128, n)
	fft.Forward(spec, rx[0][:n])
	tone := cmplx.Abs(spec[int(k)])
	image := cmplx.Abs(spec[n-int(k)])
	if image < 1e-6 {
		t.Error("no IQ image generated")
	}
	if image >= tone {
		t.Error("image should be weaker than the tone")
	}
	// Image rejection for 1 dB / 3° should be roughly 20-35 dB down.
	irr := 20 * math.Log10(tone/image)
	if irr < 15 || irr > 40 {
		t.Errorf("image rejection %g dB outside plausible range", irr)
	}
}

func TestPhaseNoiseDecorrelates(t *testing.T) {
	c, err := New(Config{NumTX: 1, NumRX: 1, Model: Identity, NoNoise: true,
		PhaseNoiseHz: 5000, SampleRate: 20e6, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	n := 100000
	rx, err := c.Apply(constBurst(1, n))
	if err != nil {
		t.Fatal(err)
	}
	// Phase variance grows with lag for a Wiener process.
	varAtLag := func(lag int) float64 {
		var acc float64
		count := 0
		for i := 0; i+lag < n; i += lag {
			d := cmplx.Phase(rx[0][i+lag] * cmplx.Conj(rx[0][i]))
			acc += d * d
			count++
		}
		return acc / float64(count)
	}
	v100, v1000 := varAtLag(100), varAtLag(1000)
	if v1000 <= v100 {
		t.Errorf("phase variance did not grow with lag: %g vs %g", v100, v1000)
	}
}

func TestClockOffsetShiftsSamples(t *testing.T) {
	c, err := New(Config{NumTX: 1, NumRX: 1, Model: Identity, NoNoise: true,
		ClockPPM: 100, SampleRate: 20e6, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	// A ramp input reveals resampling: output[i] ≈ input(i·(1+1e-4)).
	n := 20000
	tx := [][]complex128{make([]complex128, n)}
	for i := range tx[0] {
		tx[0][i] = complex(float64(i), 0)
	}
	rx, err := c.Apply(tx)
	if err != nil {
		t.Fatal(err)
	}
	i := 10000
	want := float64(i) * (1 + 100e-6)
	if math.Abs(real(rx[0][i])-want) > 0.51 {
		t.Errorf("resampled ramp at %d = %g, want ≈ %g", i, real(rx[0][i]), want)
	}
}

func TestDCOffsetAndTimingOffset(t *testing.T) {
	c, err := New(Config{NumTX: 1, NumRX: 1, Model: Identity, NoNoise: true,
		DCOffset: complex(0.1, -0.05), TimingOffset: 37, TrailingSilence: 11, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	rx, err := c.Apply(constBurst(1, 100))
	if err != nil {
		t.Fatal(err)
	}
	if len(rx[0]) != 37+100+11 {
		t.Fatalf("output length %d", len(rx[0]))
	}
	if cmplx.Abs(rx[0][0]-complex(0.1, -0.05)) > 1e-12 {
		t.Errorf("lead sample %v, want pure DC", rx[0][0])
	}
	if cmplx.Abs(rx[0][50]-(1+complex(0.1, -0.05))) > 1e-12 {
		t.Errorf("burst sample %v", rx[0][50])
	}
}

func TestExtraRXAntennasSilentOnIdentity(t *testing.T) {
	c, _ := New(Config{NumTX: 1, NumRX: 2, Model: Identity, NoNoise: true, Seed: 11})
	rx, err := c.Apply(constBurst(1, 10))
	if err != nil {
		t.Fatal(err)
	}
	if dsp.Power(rx[1]) != 0 {
		t.Error("second antenna should be silent for identity 1x2")
	}
}

func BenchmarkApplyTGnD2x2(b *testing.B) {
	c, _ := New(Config{NumTX: 2, NumRX: 2, Model: TGnD, SNRdB: 20, Seed: 12})
	tx := constBurst(2, 4000)
	b.ReportAllocs()
	b.SetBytes(int64(len(tx[0]) * 16))
	for i := 0; i < b.N; i++ {
		if _, err := c.Apply(tx); err != nil {
			b.Fatal(err)
		}
	}
}

func TestDopplerValidation(t *testing.T) {
	if _, err := New(Config{NumTX: 1, NumRX: 1, Model: FlatRayleigh, DopplerHz: 100}); err == nil {
		t.Error("Doppler without SampleRate should fail")
	}
	if _, err := New(Config{NumTX: 1, NumRX: 1, Model: Identity, DopplerHz: 100, SampleRate: 20e6}); err == nil {
		t.Error("Doppler on identity model should fail")
	}
	if _, err := New(Config{NumTX: 1, NumRX: 1, Model: FlatRayleigh, DopplerHz: -1, SampleRate: 20e6}); err == nil {
		t.Error("negative Doppler should fail")
	}
	if _, err := New(Config{NumTX: 1, NumRX: 1, Model: FlatRayleigh, DopplerHz: 10, SampleRate: 20e6, DopplerBlock: -2}); err == nil {
		t.Error("negative DopplerBlock should fail")
	}
}

func TestDopplerDecorrelatesWithinBurst(t *testing.T) {
	// A constant input through a Doppler channel shows an output whose
	// early and late segments decorrelate; without Doppler they are equal.
	mk := func(dopplerHz float64) []complex128 {
		c, err := New(Config{NumTX: 1, NumRX: 1, Model: FlatRayleigh, NoNoise: true,
			DopplerHz: dopplerHz, SampleRate: 20e6, Seed: 33})
		if err != nil {
			t.Fatal(err)
		}
		rx, err := c.Apply(constBurst(1, 8000))
		if err != nil {
			t.Fatal(err)
		}
		return rx[0]
	}
	static := mk(0)
	if static[10] != static[7000] {
		t.Error("static channel varied within the burst")
	}
	moving := mk(2000)
	d := moving[10] - moving[7000]
	if math.Hypot(real(d), imag(d)) < 1e-3 {
		t.Error("2 kHz Doppler left the channel constant over 8000 samples")
	}
}

func TestDopplerPreservesMeanPower(t *testing.T) {
	c, err := New(Config{NumTX: 1, NumRX: 1, Model: FlatRayleigh, NoNoise: true,
		DopplerHz: 1000, SampleRate: 20e6, Seed: 34})
	if err != nil {
		t.Fatal(err)
	}
	var acc float64
	const trials = 200
	for i := 0; i < trials; i++ {
		rx, err := c.Apply(constBurst(1, 4000))
		if err != nil {
			t.Fatal(err)
		}
		acc += dsp.Power(rx[0][:4000])
	}
	acc /= trials
	if math.Abs(acc-1) > 0.15 {
		t.Errorf("mean faded power %g, want ≈ 1 under Doppler", acc)
	}
}
