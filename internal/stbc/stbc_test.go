package stbc

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/modem"
)

func randSymbols(r *rand.Rand, n int) []complex128 {
	m := modem.NewMapper(modem.QPSK)
	out := make([]complex128, n)
	for i := range out {
		out[i] = m.MapOne([]byte{byte(r.Intn(2)), byte(r.Intn(2))})
	}
	return out
}

func randH(r *rand.Rand, nrx int) [][2]complex128 {
	h := make([][2]complex128, nrx)
	for a := range h {
		h[a][0] = complex(r.NormFloat64(), r.NormFloat64()) * complex(math.Sqrt(0.5), 0)
		h[a][1] = complex(r.NormFloat64(), r.NormFloat64()) * complex(math.Sqrt(0.5), 0)
	}
	return h
}

// transmit applies the flat channel to the encoded streams and adds noise.
func transmit(r *rand.Rand, tx0, tx1 []complex128, h [][2]complex128, sigma float64) [][]complex128 {
	rx := make([][]complex128, len(h))
	for a := range h {
		s := make([]complex128, len(tx0))
		for i := range s {
			s[i] = h[a][0]*tx0[i] + h[a][1]*tx1[i] +
				complex(r.NormFloat64()*sigma, r.NormFloat64()*sigma)
		}
		rx[a] = s
	}
	return rx
}

func TestEncodeStructure(t *testing.T) {
	s := []complex128{1 + 1i, 2 - 1i}
	tx0, tx1, err := Encode(s)
	if err != nil {
		t.Fatal(err)
	}
	if tx0[0] != s[0] || tx1[0] != s[1] {
		t.Error("slot 1 wrong")
	}
	if tx0[1] != -cmplx.Conj(s[1]) || tx1[1] != cmplx.Conj(s[0]) {
		t.Error("slot 2 wrong")
	}
	if _, _, err := Encode(make([]complex128, 3)); err == nil {
		t.Error("odd length should fail")
	}
}

func TestEncodePreservesPower(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	s := randSymbols(r, 100)
	tx0, tx1, err := Encode(s)
	if err != nil {
		t.Fatal(err)
	}
	var p float64
	for i := range tx0 {
		p += sq(tx0[i]) + sq(tx1[i])
	}
	p /= float64(len(tx0))
	if math.Abs(p-2) > 1e-9 {
		t.Errorf("combined TX power per use %g, want 2 (unit per antenna)", p)
	}
}

func TestDecodeNoiselessExact(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	prop := func(seed int64) bool {
		_ = seed
		s := randSymbols(r, 20)
		tx0, tx1, err := Encode(s)
		if err != nil {
			return false
		}
		h := randH(r, 2)
		rx := transmit(r, tx0, tx1, h, 0)
		got, csi, err := Decode(rx, h)
		if err != nil {
			return false
		}
		for i := range s {
			if cmplx.Abs(got[i]-s[i]) > 1e-9 {
				return false
			}
			if csi[i] <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestDecodeValidation(t *testing.T) {
	if _, _, err := Decode(nil, nil); err == nil {
		t.Error("no streams should fail")
	}
	if _, _, err := Decode([][]complex128{{1, 2}}, nil); err == nil {
		t.Error("missing channel should fail")
	}
	if _, _, err := Decode([][]complex128{{1, 2, 3}}, make([][2]complex128, 1)); err == nil {
		t.Error("odd stream should fail")
	}
	if _, _, err := Decode([][]complex128{{1, 2}, {1}}, make([][2]complex128, 2)); err == nil {
		t.Error("ragged streams should fail")
	}
	if _, _, err := Decode([][]complex128{{1, 2}}, make([][2]complex128, 1)); err == nil {
		t.Error("zero channel gain should fail")
	}
}

// TestDiversityGain is the defining property: at equal total TX power,
// Alamouti 2x1 has a steeper BER slope than SISO 1x1 over Rayleigh fading.
func TestDiversityGain(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	mapper := modem.NewMapper(modem.QPSK)
	demapper := modem.NewDemapper(modem.QPSK)
	const snrDB = 15.0
	sigma := math.Sqrt(math.Pow(10, -snrDB/10) / 2)
	const trials = 4000
	errAlamouti, errSISO, total := 0, 0, 0
	for trial := 0; trial < trials; trial++ {
		bits := []byte{byte(r.Intn(2)), byte(r.Intn(2)), byte(r.Intn(2)), byte(r.Intn(2))}
		s := []complex128{mapper.MapOne(bits[:2]), mapper.MapOne(bits[2:])}
		// Alamouti with 1/√2 per-antenna scaling (total power 1).
		tx0, tx1, err := Encode(s)
		if err != nil {
			t.Fatal(err)
		}
		for i := range tx0 {
			tx0[i] *= complex(math.Sqrt2/2, 0)
			tx1[i] *= complex(math.Sqrt2/2, 0)
		}
		h := randH(r, 1)
		rx := transmit(r, tx0, tx1, h, sigma)
		dec, _, err := Decode(rx, h)
		if err != nil {
			t.Fatal(err)
		}
		// Undo the 1/√2 amplitude before slicing.
		for i := range dec {
			dec[i] *= complex(math.Sqrt2, 0)
		}
		got := demapper.Hard(dec)
		for i := range bits {
			if got[i] != bits[i] {
				errAlamouti++
			}
		}
		// SISO reference: same symbols, single antenna, unit power.
		hs := complex(r.NormFloat64(), r.NormFloat64()) * complex(math.Sqrt(0.5), 0)
		for i, sym := range s {
			y := hs*sym + complex(r.NormFloat64()*sigma, r.NormFloat64()*sigma)
			eq := y / hs
			gotBits := demapper.HardOne(nil, eq)
			for b := 0; b < 2; b++ {
				if gotBits[b] != bits[2*i+b] {
					errSISO++
				}
			}
		}
		total += 4
	}
	berA := float64(errAlamouti) / float64(total)
	berS := float64(errSISO) / float64(total)
	if berA >= berS/2 {
		t.Errorf("Alamouti BER %g should be well below SISO %g at %g dB", berA, berS, snrDB)
	}
	t.Logf("BER at %g dB: Alamouti 2x1 %.4g, SISO %.4g", snrDB, berA, berS)
}
