// Package stbc implements Alamouti space-time block coding, the other MIMO
// mode of IEEE 802.11n (§20.3.11.9.2). The paper implements spatial
// multiplexing only; STBC is provided here as the natural extension point:
// it trades the throughput doubling of spatial multiplexing for transmit
// diversity — the comparison experiment E13 shows exactly that trade.
//
// Encoding operates per subcarrier on pairs of constellation symbols
// (s0, s1):
//
//	      time t      time t+1
//	TX0:    s0          −s1*
//	TX1:    s1           s0*
//
// With per-subcarrier channel gains h0, h1 to a receive antenna and
// received pair (y0, y1), the decoder combines
//
//	ŝ0 = h0*·y0 + h1·y1*
//	ŝ1 = h1*·y0 − h0·y1*
//
// summed over receive antennas and normalized by Σ(|h0|²+|h1|²), achieving
// full 2·N_RX diversity at rate 1.
package stbc

import (
	"fmt"
	"math/cmplx"
)

// Encode maps a symbol stream (even length) onto two transmit streams of
// the same length using the Alamouti code.
func Encode(symbols []complex128) (tx0, tx1 []complex128, err error) {
	if len(symbols)%2 != 0 {
		return nil, nil, fmt.Errorf("stbc: symbol count %d is odd", len(symbols))
	}
	tx0 = make([]complex128, len(symbols))
	tx1 = make([]complex128, len(symbols))
	for i := 0; i < len(symbols); i += 2 {
		s0, s1 := symbols[i], symbols[i+1]
		tx0[i], tx1[i] = s0, s1
		tx0[i+1], tx1[i+1] = -cmplx.Conj(s1), cmplx.Conj(s0)
	}
	return tx0, tx1, nil
}

// Decode combines received pairs back into symbol estimates with maximum
// ratio combining across receive antennas. rx[a] is antenna a's received
// stream; h[a][0], h[a][1] are its channel gains from TX0 and TX1 (assumed
// constant over each symbol pair). It also returns the per-pair effective
// channel gain Σ(|h0|²+|h1|²), the CSI weight for soft demapping.
func Decode(rx [][]complex128, h [][2]complex128) (symbols []complex128, csi []float64, err error) {
	if len(rx) == 0 {
		return nil, nil, fmt.Errorf("stbc: no receive streams")
	}
	if len(h) != len(rx) {
		return nil, nil, fmt.Errorf("stbc: %d channel entries for %d antennas", len(h), len(rx))
	}
	n := len(rx[0])
	if n%2 != 0 {
		return nil, nil, fmt.Errorf("stbc: stream length %d is odd", n)
	}
	for a, s := range rx {
		if len(s) != n {
			return nil, nil, fmt.Errorf("stbc: stream %d has %d samples, stream 0 has %d", a, len(s), n)
		}
	}
	var gain float64
	for a := range h {
		h0, h1 := h[a][0], h[a][1]
		gain += sq(h0) + sq(h1)
	}
	if gain == 0 {
		return nil, nil, fmt.Errorf("stbc: zero channel gain")
	}
	symbols = make([]complex128, n)
	csi = make([]float64, n)
	for i := 0; i < n; i += 2 {
		var e0, e1 complex128
		for a := range rx {
			h0, h1 := h[a][0], h[a][1]
			y0, y1 := rx[a][i], rx[a][i+1]
			e0 += cmplx.Conj(h0)*y0 + h1*cmplx.Conj(y1)
			e1 += cmplx.Conj(h1)*y0 - h0*cmplx.Conj(y1)
		}
		symbols[i] = e0 / complex(gain, 0)
		symbols[i+1] = e1 / complex(gain, 0)
		// Post-combining SNR scales with the total gain: noise on the
		// combined estimate has variance σ²/gain.
		csi[i] = gain
		csi[i+1] = gain
	}
	return symbols, csi, nil
}

func sq(v complex128) float64 { return real(v)*real(v) + imag(v)*imag(v) }
