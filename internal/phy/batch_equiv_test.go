package phy

import (
	"bytes"
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/channel"
)

// runChain runs one TX→channel→RX cycle with the given receiver config and
// returns the result, the receive error, and a copy of the receiver's
// depunctured LLR stream (the exact Viterbi input) for bit-level comparison.
func runChain(t *testing.T, rxs [][]complex128, cfg RxConfig) (*RxResult, error, []float64) {
	t.Helper()
	cp := make([][]complex128, len(rxs))
	for a := range rxs {
		cp[a] = append([]complex128(nil), rxs[a]...)
	}
	rx, err := NewReceiver(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, rerr := rx.Receive(cp)
	return res, rerr, append([]float64(nil), rx.depBuf...)
}

// makeBurst builds one faded received burst for the MCS with nss+1 antennas.
func makeBurst(t *testing.T, mcsIdx, psduLen int, seed int64) ([][]complex128, []byte, int) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	tx, err := NewTransmitter(TxConfig{MCS: mcsIdx, ScramblerSeed: byte(seed) | 1})
	if err != nil {
		t.Fatal(err)
	}
	psdu := randPSDU(r, psduLen)
	burst, err := tx.Transmit(psdu)
	if err != nil {
		t.Fatal(err)
	}
	nrx := min(tx.NumChains()+1, 4)
	c, err := channel.New(channel.Config{Model: channel.FlatRayleigh, SNRdB: 45,
		Seed: 900 + seed, NumTX: tx.NumChains(), NumRX: nrx,
		TimingOffset: 250, TrailingSilence: 80})
	if err != nil {
		t.Fatal(err)
	}
	rxs, err := c.Apply(burst)
	if err != nil {
		t.Fatal(err)
	}
	return rxs, psdu, nrx
}

// TestBatchMatchesScalarAllMCS is the batching correctness property: for
// every MCS and both detector families, the block-batched data path must
// produce the exact depunctured LLR stream — and therefore the exact decoded
// PSDU and CPE trace — of the symbol-at-a-time reference chain, at every
// worker count. Float comparison is ==, not a tolerance: the batch path
// reorders no arithmetic.
func TestBatchMatchesScalarAllMCS(t *testing.T) {
	workerCounts := []int{1, 4, runtime.NumCPU()}
	for mcsIdx := 0; mcsIdx <= 31; mcsIdx++ {
		dets := []string{"mmse", "sic"}
		if mcsIdx%8 <= 1 {
			// ML's hypothesis sweep is exponential in NSS·N_BPSCS; exercise
			// it where the sweep is small (BPSK/QPSK per stream).
			dets = append(dets, "ml")
		}
		rxs, psdu, nrx := makeBurst(t, mcsIdx, 120, int64(mcsIdx))
		for _, det := range dets {
			t.Run(fmt.Sprintf("mcs%d/%s", mcsIdx, det), func(t *testing.T) {
				base := RxConfig{NumAntennas: nrx, Detector: det}

				ref := base
				ref.ScalarChain = true
				refRes, refErr, refDep := runChain(t, rxs, ref)
				if refErr != nil {
					t.Fatalf("scalar chain: %v", refErr)
				}
				if !bytes.Equal(refRes.PSDU, psdu) {
					// A harsh square-channel draw can defeat the highest
					// rates; equivalence (batch == scalar) still applies.
					t.Logf("scalar chain decoded a wrong PSDU (channel-limited); comparing chains anyway")
				}

				for _, w := range workerCounts {
					cfg := base
					cfg.Workers = w
					res, err, dep := runChain(t, rxs, cfg)
					if err != nil {
						t.Fatalf("workers=%d: %v", w, err)
					}
					if !bytes.Equal(res.PSDU, refRes.PSDU) {
						t.Errorf("workers=%d: PSDU differs from scalar chain", w)
					}
					if len(dep) != len(refDep) {
						t.Fatalf("workers=%d: dep length %d, scalar %d", w, len(dep), len(refDep))
					}
					for i := range dep {
						if dep[i] != refDep[i] {
							t.Fatalf("workers=%d: LLR %d differs: batch %g scalar %g", w, i, dep[i], refDep[i])
						}
					}
					if len(res.CPETrace) != len(refRes.CPETrace) {
						t.Fatalf("workers=%d: CPE trace length %d, scalar %d", w, len(res.CPETrace), len(refRes.CPETrace))
					}
					for i := range res.CPETrace {
						if res.CPETrace[i] != refRes.CPETrace[i] {
							t.Fatalf("workers=%d: CPE[%d] differs", w, i)
						}
					}
				}
			})
		}
	}
}

// TestNarrowDetectEndToEnd is the precision-equivalence check for the opt-in
// float32 detection kernel: across MCS orders up to 64-QAM the narrowed
// receiver must decode the identical PSDU as the double-precision chain. LLR
// magnitudes may differ in low-order bits, so the contract is decode-level,
// backed by the kernel-level closeness test in internal/mimo.
func TestNarrowDetectEndToEnd(t *testing.T) {
	for _, mcsIdx := range []int{0, 5, 7, 12, 15} {
		rxs, psdu, nrx := makeBurst(t, mcsIdx, 200, int64(40+mcsIdx))
		for _, det := range []string{"zf", "mmse"} {
			wide, werr, _ := runChain(t, rxs, RxConfig{NumAntennas: nrx, Detector: det})
			if werr != nil {
				t.Fatalf("mcs%d/%s wide: %v", mcsIdx, det, werr)
			}
			narrow, nerr, _ := runChain(t, rxs, RxConfig{NumAntennas: nrx, Detector: det, NarrowDetect: true})
			if nerr != nil {
				t.Fatalf("mcs%d/%s narrow: %v", mcsIdx, det, nerr)
			}
			if !bytes.Equal(wide.PSDU, narrow.PSDU) || !bytes.Equal(narrow.PSDU, psdu) {
				t.Errorf("mcs%d/%s: narrow kernel changed the decode", mcsIdx, det)
			}
		}
	}
	if _, err := NewReceiver(RxConfig{NumAntennas: 2, Detector: "sic", NarrowDetect: true}); err == nil {
		t.Error("NarrowDetect with a non-linear detector should be rejected")
	}
}
