package phy

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"repro/internal/cmatrix"
	"repro/internal/mimo"
	"repro/internal/mumimo"
	"repro/internal/ofdm"
)

// applyFlat passes per-chain waveforms through a flat channel matrix h
// (rows = RX antennas, cols = TX chains) with AWGN of the given standard
// deviation, a timing offset and trailing silence.
func applyFlat(r *rand.Rand, h *cmatrix.Matrix, tx [][]complex128, noiseStd float64, offset, trailing int) [][]complex128 {
	n := len(tx[0])
	out := make([][]complex128, h.Rows)
	for rxi := range out {
		out[rxi] = make([]complex128, offset+n+trailing)
		for i := 0; i < n; i++ {
			var acc complex128
			for c := 0; c < h.Cols; c++ {
				acc += h.At(rxi, c) * tx[c][i]
			}
			out[rxi][offset+i] = acc
		}
		for i := range out[rxi] {
			out[rxi][i] += complex(r.NormFloat64(), r.NormFloat64()) * complex(noiseStd/math.Sqrt2, 0)
		}
	}
	return out
}

// TestSteeredLoopbackZF: a 2-stream PPDU steered through the zero-forcing
// precoder of a known flat 2×2 channel must decode at the receiver — the
// HT-LTFs pass through the same mapping, so the receiver estimates the
// (near-diagonal) effective channel H·W and the standard chain applies.
func TestSteeredLoopbackZF(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	h := cmatrix.FromRows([][]complex128{
		{1, 0.3 + 0.2i},
		{0.25 - 0.4i, 0.9 - 0.1i},
	})
	w, err := mumimo.ZFPrecode(h)
	if err != nil {
		t.Fatal(err)
	}
	steer, err := mimo.FlatSteering(w, ofdm.FFTSize)
	if err != nil {
		t.Fatal(err)
	}
	tx, err := NewTransmitter(TxConfig{MCS: 9, ScramblerSeed: 0x35})
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.SetSteering(steer); err != nil {
		t.Fatal(err)
	}
	if tx.NumChains() != 2 {
		t.Fatalf("steered chains = %d, want 2", tx.NumChains())
	}
	psdu := randPSDU(r, 180)
	burst, err := tx.Transmit(psdu)
	if err != nil {
		t.Fatal(err)
	}
	if len(burst) != 2 {
		t.Fatalf("burst has %d chains", len(burst))
	}
	rxs := applyFlat(r, h, burst, 2e-3, 260, 90)
	rx, err := NewReceiver(RxConfig{NumAntennas: 2, Detector: "zf"})
	if err != nil {
		t.Fatal(err)
	}
	res, err := rx.Receive(rxs)
	if err != nil {
		t.Fatalf("steered receive: %v", err)
	}
	if !bytes.Equal(res.PSDU, psdu) {
		t.Error("steered PSDU mismatch")
	}
}

// TestSteeredBeamformingExtraChain: one stream steered across two chains
// (maximum-ratio transmission toward a 1×2 channel) must decode on a
// single-antenna receiver — the N_TX > N_SS shape a multi-user AP uses.
func TestSteeredBeamformingExtraChain(t *testing.T) {
	r := rand.New(rand.NewSource(33))
	h := cmatrix.FromRows([][]complex128{{0.8, 0.5 - 0.5i}})
	// MRT weights: conjugate of the channel row, unit norm.
	norm := math.Sqrt(0.8*0.8 + 0.5*0.5 + 0.5*0.5)
	w := cmatrix.FromRows([][]complex128{
		{complex(0.8/norm, 0)},
		{(0.5 + 0.5i) / complex(norm, 0)},
	})
	steer, err := mimo.FlatSteering(w, ofdm.FFTSize)
	if err != nil {
		t.Fatal(err)
	}
	tx, err := NewTransmitter(TxConfig{MCS: 0, ScramblerSeed: 0x11})
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.SetSteering(steer); err != nil {
		t.Fatal(err)
	}
	psdu := randPSDU(r, 90)
	burst, err := tx.Transmit(psdu)
	if err != nil {
		t.Fatal(err)
	}
	if len(burst) != 2 {
		t.Fatalf("burst has %d chains, want 2", len(burst))
	}
	rxs := applyFlat(r, h, burst, 1e-3, 300, 80)
	rx, err := NewReceiver(RxConfig{NumAntennas: 1, Detector: "zf"})
	if err != nil {
		t.Fatal(err)
	}
	res, err := rx.Receive(rxs)
	if err != nil {
		t.Fatalf("beamformed receive: %v", err)
	}
	if !bytes.Equal(res.PSDU, psdu) {
		t.Error("beamformed PSDU mismatch")
	}
}

func TestSetSteeringValidation(t *testing.T) {
	tx, err := NewTransmitter(TxConfig{MCS: 9})
	if err != nil {
		t.Fatal(err)
	}
	// Wrong stream count.
	one, err := mimo.NewSteering(2, 1, ofdm.FFTSize)
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.SetSteering(one); err == nil {
		t.Error("1-stream steering on a 2-stream MCS must fail")
	}
	// Wrong bin count.
	short, err := mimo.NewSteering(2, 2, 32)
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.SetSteering(short); err == nil {
		t.Error("32-bin steering must fail")
	}
	// Short GI unsupported in steered mode.
	sgi, err := NewTransmitter(TxConfig{MCS: 9, ShortGI: true})
	if err != nil {
		t.Fatal(err)
	}
	full, err := mimo.NewSteering(2, 2, ofdm.FFTSize)
	if err != nil {
		t.Fatal(err)
	}
	if err := sgi.SetSteering(full); err == nil {
		t.Error("steering with short GI must fail")
	}
	// Install and clear.
	if err := tx.SetSteering(full); err != nil {
		t.Fatal(err)
	}
	if tx.NumChains() != 2 {
		t.Errorf("chains = %d", tx.NumChains())
	}
	if err := tx.SetSteering(nil); err != nil {
		t.Fatal(err)
	}
	if tx.NumChains() != 2 {
		t.Errorf("chains after clear = %d", tx.NumChains())
	}
}

func TestSteeringMixDirectFallback(t *testing.T) {
	s, err := mimo.NewSteering(3, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	chains := make([]complex128, 3)
	if err := s.Mix(0, []complex128{1 + 1i, 2}, chains); err != nil {
		t.Fatal(err)
	}
	if chains[0] != 1+1i || chains[1] != 2 || chains[2] != 0 {
		t.Errorf("direct fallback = %v", chains)
	}
	q := cmatrix.FromRows([][]complex128{{0, 1}, {1, 0}, {1i, 0}})
	if err := s.SetBin(1, q); err != nil {
		t.Fatal(err)
	}
	if err := s.Mix(1, []complex128{3, 5}, chains); err != nil {
		t.Fatal(err)
	}
	if chains[0] != 5 || chains[1] != 3 || chains[2] != 3i {
		t.Errorf("mixed = %v", chains)
	}
	if err := s.SetBin(2, cmatrix.Identity(2)); err == nil {
		t.Error("wrong-shape bin matrix must be rejected")
	}
	if err := s.Mix(9, []complex128{1, 2}, chains); err == nil {
		t.Error("out-of-range bin must fail")
	}
}
