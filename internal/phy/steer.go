package phy

import (
	"fmt"
	"math"

	"repro/internal/dsp"
	"repro/internal/fec"
	"repro/internal/mimo"
	"repro/internal/ofdm"
	"repro/internal/preamble"
)

// Transmit-side spatial steering: the multi-user downlink drives the
// transmitter through a per-subcarrier mapping Q (mimo.Steering) between
// the N_SS space-time streams and N_TX ≥ N_SS transmit chains, so a
// precoding access point points each stream at its station. Every HT field
// — HT-STF, HT-LTFs, data symbols and their pilots — passes through Q,
// which makes the receiver's HT-LTF channel estimate the effective channel
// H·Q and leaves the whole receive chain unchanged. The legacy preamble
// stays omnidirectional (same content on every chain with legacy CSD), as
// for any beamformed PPDU.
//
// Steered streams skip the per-stream HT cyclic shifts: CSD exists to
// decorrelate identical waveforms radiated from co-located antennas, and
// precoded chains are already distinct linear mixtures. Steering is
// long-GI only.

// SetSteering installs (or, with nil, removes) a transmit spatial mapping.
// The steering's stream count must match the MCS's N_SS and its bin count
// the OFDM FFT size.
func (t *Transmitter) SetSteering(q *mimo.Steering) error {
	if q == nil {
		t.steer = nil
		return nil
	}
	if q.NSS() != t.mcs.NSS {
		return fmt.Errorf("phy: steering carries %d streams, MCS%d has %d", q.NSS(), t.mcs.Index, t.mcs.NSS)
	}
	if q.Bins() != ofdm.FFTSize {
		return fmt.Errorf("phy: steering spans %d bins, want %d", q.Bins(), ofdm.FFTSize)
	}
	if t.cfg.ShortGI {
		return fmt.Errorf("phy: steering supports the long guard interval only")
	}
	t.steer = q
	return nil
}

// transmitSteered is the steered data path: per OFDM symbol, each stream's
// frequency-domain symbol (data tones + its pilots, 1/√N_SS power split) is
// mixed through Q into per-chain bins, and each chain is OFDM-modulated
// independently.
func (t *Transmitter) transmitSteered(burst [][]complex128, psdu []byte) error {
	nss := t.mcs.NSS
	ntx := t.steer.NTX()
	dataBits := t.assembleDataBits(psdu)
	coded := fec.Encode(dataBits, t.mcs.Rate)
	streams, err := t.parser.Parse(coded)
	if err != nil {
		return err
	}
	nSym := t.mcs.NumSymbols(len(psdu))
	ncbpss := t.mcs.NCBPSS()
	scale := complex(1/math.Sqrt(float64(nss)), 0)
	interleaved := make([]byte, ncbpss)
	freqS := newGrid(nss)
	chainBins := newGrid(ntx)
	sVec := make([]complex128, nss)
	cVec := make([]complex128, ntx)
	sym := make([]complex128, ofdm.SymbolLen)
	tmap := t.mod.Tones()
	for n := 0; n < nSym; n++ {
		for iss := 0; iss < nss; iss++ {
			t.ilv[iss].Interleave(interleaved, streams[iss][n*ncbpss:(n+1)*ncbpss])
			tones, err := t.mapper.Map(interleaved)
			if err != nil {
				return err
			}
			pilots, err := ofdm.HTPilots(nss, iss, n, 3)
			if err != nil {
				return err
			}
			zeroRow(freqS[iss])
			for i, b := range tmap.Data {
				freqS[iss][b] = tones[i] * scale
			}
			for i, b := range tmap.Pilot {
				freqS[iss][b] = pilots[i] * scale
			}
		}
		if err := t.mixGrid(freqS, chainBins, sVec, cVec); err != nil {
			return err
		}
		off := PreambleLen(nss) + n*ofdm.SymbolLen
		for c := 0; c < ntx; c++ {
			if err := t.mod.SymbolFromBins(sym, chainBins[c]); err != nil {
				return err
			}
			place(burst[c], off, sym, 1)
		}
	}
	return nil
}

// buildSteeredHTFields writes the HT-STF and HT-LTFs through the steering
// mapping. The HT-LTF count follows N_SS — the receiver estimates one
// effective column per stream — regardless of the chain count.
func (t *Transmitter) buildSteeredHTFields(burst [][]complex128) error {
	nss := t.mcs.NSS
	ntx := t.steer.NTX()
	scale := complex(1/math.Sqrt(float64(nss)), 0)
	freqS := newGrid(nss)
	chainBins := newGrid(ntx)
	sVec := make([]complex128, nss)
	cVec := make([]complex128, ntx)

	// HT-STF: every stream carries the same STF sequence; the mix makes
	// each chain's version distinct. 52-tone normalization and periodic
	// 80-sample structure, as in the unsteered field.
	for iss := 0; iss < nss; iss++ {
		for b, v := range preamble.LSTFFreq {
			freqS[iss][b] = v * scale
		}
	}
	if err := t.mixGrid(freqS, chainBins, sVec, cVec); err != nil {
		return err
	}
	fft := dsp.MustFFT(ofdm.FFTSize)
	base := make([]complex128, ofdm.FFTSize)
	for c := 0; c < ntx; c++ {
		fft.Inverse(base, chainBins[c])
		dsp.Scale(base, float64(ofdm.FFTSize)/math.Sqrt(52))
		for i := 0; i < preamble.HTSTFLen; i++ {
			burst[c][OffHTSTF+i] = base[i%ofdm.FFTSize]
		}
	}

	// HT-LTFs: stream iss transmits HTLTF·P[iss][n]; the 56-tone
	// normalization matches the HT data modulator, so SymbolFromBins
	// reproduces HTLTFSymbol's scaling.
	sym := make([]complex128, ofdm.SymbolLen)
	nltf := preamble.NumHTLTF(nss)
	for n := 0; n < nltf; n++ {
		for iss := 0; iss < nss; iss++ {
			p := complex(preamble.PMatrix[iss][n], 0) * scale
			zeroRow(freqS[iss])
			for b, v := range preamble.HTLTFFreq {
				freqS[iss][b] = v * p
			}
		}
		if err := t.mixGrid(freqS, chainBins, sVec, cVec); err != nil {
			return err
		}
		for c := 0; c < ntx; c++ {
			if err := t.mod.SymbolFromBins(sym, chainBins[c]); err != nil {
				return err
			}
			place(burst[c], OffHTLTF+n*preamble.HTLTFLen, sym, 1)
		}
	}
	return nil
}

// mixGrid applies the steering bin-by-bin: chainBins[c][b] = Σ_s
// Q[b][c][s]·freqS[s][b].
func (t *Transmitter) mixGrid(freqS, chainBins [][]complex128, sVec, cVec []complex128) error {
	for b := 0; b < ofdm.FFTSize; b++ {
		for iss := range freqS {
			sVec[iss] = freqS[iss][b]
		}
		if err := t.steer.Mix(b, sVec, cVec); err != nil {
			return err
		}
		for c := range chainBins {
			chainBins[c][b] = cVec[c]
		}
	}
	return nil
}

func newGrid(n int) [][]complex128 {
	g := make([][]complex128, n)
	for i := range g {
		g[i] = make([]complex128, ofdm.FFTSize)
	}
	return g
}

func zeroRow(r []complex128) {
	for i := range r {
		r[i] = 0
	}
}
