package phy

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/bitutil"
	"repro/internal/chanest"
	"repro/internal/cmatrix"
	"repro/internal/est"
	"repro/internal/fec"
	"repro/internal/metrics"
	"repro/internal/mimo"
	"repro/internal/modem"
	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/ofdm"
	"repro/internal/preamble"
	"repro/internal/sounding"
	"repro/internal/synchro"
	"repro/internal/vandebeek"
)

// ErrBadSIG marks a SIG field that parsed (parity/CRC passed) but carries a
// value that cannot be right for an HT-mixed PPDU — a corrupted or spoofed
// header. Callers should treat it as a rejected packet, not a fault.
var ErrBadSIG = errors.New("phy: SIG field failed validation")

// ErrSIGBounds marks a SIG-announced payload geometry that does not fit the
// captured streams: decoding would read outside the sample buffers. The
// receiver rejects such headers up front instead of failing mid-symbol.
var ErrSIGBounds = errors.New("phy: SIG-announced length out of bounds")

// ErrNoPacket marks a capture in which the detector never fired: there is
// nothing to synchronize to. Telemetry classifies it as a sync failure.
var ErrNoPacket = errors.New("phy: no packet detected")

// RxConfig configures a receiver.
type RxConfig struct {
	// NumAntennas is the receive antenna count (≥ the transmitter's N_SS
	// for the linear detectors).
	NumAntennas int
	// Detector selects the MIMO detector: "zf", "mmse", "sic" or "ml".
	Detector string
	// DisablePhaseTracking turns off pilot-based common-phase-error
	// correction (for the E7 ablation).
	DisablePhaseTracking bool
	// SmoothingWindow applies frequency smoothing to the HT channel
	// estimate when > 1 (odd).
	SmoothingWindow int
	// DetectorConfig tunes packet detection; zero value selects defaults.
	DetectorConfig synchro.DetectorConfig
	// TimingBackoff shifts every FFT window this many samples into the
	// cyclic prefix to tolerate residual timing error. Default 3.
	TimingBackoff int
	// TrackChannel enables decision-directed LMS tracking of the channel
	// estimate across data symbols, for time-varying (Doppler) channels.
	TrackChannel bool
	// CPMLSync replaces the preamble-autocorrelation CFO estimators with
	// the paper's MIMO-extended Van de Beek CP-ML estimator, run over the
	// cyclic prefixes of the OFDM symbols following packet detection. The
	// CP-ML estimator needs no training fields, so it keeps working on
	// arbitrary OFDM traffic; experiment E21 compares the two modes.
	CPMLSync bool
	// TrackStep is the LMS step size µ; default 0.25 when tracking.
	TrackStep float64
}

// RxResult reports one decoded packet.
type RxResult struct {
	// PSDU is the recovered payload (nil when decoding failed outright).
	PSDU []byte
	// LSIG and HTSIG are the parsed SIGNAL fields.
	LSIG  preamble.LSIG
	HTSIG preamble.HTSIG
	// MCS is the modulation and coding scheme announced by HT-SIG.
	MCS MCS
	// SNRdB is the data-aided SNR estimate from the L-LTF.
	SNRdB float64
	// NoiseVar is the estimated per-subcarrier complex noise variance.
	NoiseVar float64
	// CFO is the total corrected carrier frequency offset in rad/sample.
	CFO float64
	// Timing is the sample index of the detected L-STF start estimate.
	Timing int
	// CPETrace records the per-symbol common phase error the pilot tracker
	// measured (empty when tracking is disabled).
	CPETrace []float64
	// Sounding reports channel-state metrics (capacity, condition number,
	// recommended stream count) derived from the HT channel estimate.
	Sounding *sounding.Report
}

// Receiver decodes HT-mixed PPDUs from raw baseband streams. Not safe for
// concurrent use.
type Receiver struct {
	cfg    RxConfig
	sig    *sigCodec
	legDem *ofdm.Demodulator
	htDem  *ofdm.Demodulator
	vit    *fec.Viterbi
	// Per-packet scratch reused across Receive calls so steady-state
	// decoding stays off the allocator's hot path.
	depBuf []float64
	decBuf []byte
	// Cached MIMO detector, reused while consecutive packets announce the
	// same (scheme, streams); Prepare fully resets detector state per packet.
	det       mimo.Detector
	detScheme modem.Scheme
	detNSS    int
	// obs, when set, receives per-packet telemetry (SNR/BER/PER series and
	// stage traces). Nil keeps the decode path free of telemetry cost.
	obs *RxObs
	// packetID is the TX-assigned correlation key of the burst about to be
	// decoded (0 = unknown), stamped onto traces and flight evidence.
	packetID uint64
}

// SetObs attaches the receiver's telemetry surface. Nil detaches it.
func (r *Receiver) SetObs(o *RxObs) { r.obs = o }

// SetPacketID labels the next Receive call with the TX-assigned packet ID
// recovered from the transport (radio frame header), tying the packet's
// trace and flight evidence to the sender's record.
func (r *Receiver) SetPacketID(id uint64) { r.packetID = id }

// htDataSubcarriers maps data-tone position to the signed logical subcarrier
// index (−28..28), the labeling flight dumps use.
var htDataSubcarriers = func() []int {
	out := make([]int, len(ofdm.HTToneMap.Data))
	for i, b := range ofdm.HTToneMap.Data {
		if b >= ofdm.FFTSize/2 {
			b -= ofdm.FFTSize
		}
		out[i] = b
	}
	return out
}()

// NewReceiver validates the configuration and returns a receiver.
func NewReceiver(cfg RxConfig) (*Receiver, error) {
	if cfg.NumAntennas < 1 || cfg.NumAntennas > 4 {
		return nil, fmt.Errorf("phy: antenna count %d outside [1,4]", cfg.NumAntennas)
	}
	switch cfg.Detector {
	case "", "zf", "mmse", "sic", "ml":
	default:
		return nil, fmt.Errorf("phy: unknown detector %q", cfg.Detector)
	}
	if cfg.Detector == "" {
		cfg.Detector = "mmse"
	}
	if cfg.DetectorConfig == (synchro.DetectorConfig{}) {
		cfg.DetectorConfig = synchro.DefaultDetectorConfig()
	}
	if cfg.TimingBackoff == 0 {
		cfg.TimingBackoff = 3
	}
	if cfg.TimingBackoff < 0 || cfg.TimingBackoff >= ofdm.CPLen {
		return nil, fmt.Errorf("phy: timing backoff %d outside [0, %d)", cfg.TimingBackoff, ofdm.CPLen)
	}
	if cfg.TrackStep == 0 {
		cfg.TrackStep = 0.25
	}
	if cfg.TrackStep < 0 || cfg.TrackStep > 1 {
		return nil, fmt.Errorf("phy: LMS step %g outside (0, 1]", cfg.TrackStep)
	}
	return &Receiver{
		cfg:    cfg,
		sig:    newSigCodec(),
		legDem: ofdm.NewDemodulator(ofdm.LegacyToneMap),
		htDem:  ofdm.NewDemodulator(ofdm.HTToneMap),
		vit:    fec.NewViterbi(),
	}, nil
}

// Receive synchronizes to and decodes the first PPDU in the streams.
// rx[a] is the baseband of antenna a; all must be equal length. The samples
// are modified in place by CFO correction.
//
// With an attached RxObs the call additionally records a stage trace
// (sync → chanest → demod → detector → viterbi; the caller's FCS check adds
// crc via ActiveTrace/PacketResult) and updates the SNR/BER/PER series.
func (r *Receiver) Receive(rx [][]complex128) (*RxResult, error) {
	tr := r.obs.startTrace()
	tr.SetPacketID(r.packetID)
	res, err := r.receive(rx, tr)
	if err != nil {
		r.obs.recordFailure(err)
		tr.Finish(false)
		// A packet that dies inside the PHY never reaches the caller's FCS
		// check, so its evidence is finalized here with the classified error.
		r.obs.finishEvidence(verdictFor(err), tr)
		return res, err
	}
	r.obs.packetDecoded(res)
	// Close the viterbi span but leave the trace active: the caller owns
	// the crc stage and terminal verdict (PacketResult).
	tr.End()
	return res, nil
}

// receive is the synchronization and decode chain behind Receive, with
// stage span markers threaded through it.
func (r *Receiver) receive(rx [][]complex128, tr *obs.Trace) (*RxResult, error) {
	if len(rx) != r.cfg.NumAntennas {
		return nil, fmt.Errorf("phy: %d streams for %d antennas", len(rx), r.cfg.NumAntennas)
	}
	// --- 1. Packet detection on the STF periodicity ---------------------
	tr.Begin(obs.StageSync)
	det, err := r.detect(rx)
	if err != nil {
		return nil, err
	}
	// Evidence capture opens here, before CFO correction rewrites rx in
	// place: the dump keeps the sync-point IQ as the antenna actually saw it.
	r.obs.beginEvidence(r.packetID, rx, det.Index)
	// The detection index lies inside the STF. Estimate the STF region for
	// coarse CFO: use up to 96 samples ending at the detection index.
	stfEnd := det.Index
	stfStart := stfEnd - 96
	if stfStart < 0 {
		stfStart = 0
	}
	var coarse float64
	if r.cfg.CPMLSync {
		coarse, err = r.cpmlCFO(rx, det.Index)
		if err != nil {
			return nil, fmt.Errorf("phy: CP-ML sync: %w", err)
		}
	} else {
		region := subRange(rx, stfStart, stfEnd)
		coarse, err = synchro.CoarseCFO(region)
		if err != nil {
			return nil, fmt.Errorf("phy: coarse CFO: %w", err)
		}
	}
	synchro.CorrectCFO(rx, coarse)

	// --- 2. Fine timing on the L-LTF ------------------------------------
	// The LTF's first long symbol begins 192 samples after the STF start;
	// search a generous window around the detection point.
	from := det.Index - 40
	to := det.Index + 280
	ltfStart, err := synchro.FineTiming(rx, from, to)
	if err != nil {
		return nil, fmt.Errorf("phy: fine timing: %w", err)
	}
	stfStartEst := ltfStart - 192

	// --- 3. Fine CFO from the two long symbols (preamble mode only; the
	// CP-ML estimate already covers the fractional offset) ----------------
	fine := 0.0
	if !r.cfg.CPMLSync {
		ltfRegion := subRange(rx, ltfStart, ltfStart+128)
		fine, err = synchro.FineCFO(ltfRegion)
		if err != nil {
			return nil, fmt.Errorf("phy: fine CFO: %w", err)
		}
		synchro.CorrectCFO(rx, fine)
	}
	totalCFO := coarse + fine

	// --- 4. Legacy channel estimate + SNR from the L-LTF ----------------
	tr.Begin(obs.StageChanest)
	bo := r.cfg.TimingBackoff
	ltfSpectra := make([][][]complex128, len(rx))
	for a := range rx {
		s1, err := r.bins(r.legDem, rx[a], ltfStart-bo)
		if err != nil {
			return nil, fmt.Errorf("phy: L-LTF window: %w", err)
		}
		s2, err := r.bins(r.legDem, rx[a], ltfStart+64-bo)
		if err != nil {
			return nil, err
		}
		ltfSpectra[a] = [][]complex128{s1, s2}
	}
	leg, err := chanest.EstimateLegacy(ltfSpectra)
	if err != nil {
		return nil, err
	}
	result := &RxResult{
		SNRdB:    est.DB(leg.SNR()),
		NoiseVar: leg.NoiseVar,
		CFO:      totalCFO,
		Timing:   stfStartEst,
	}

	// --- 5. L-SIG ---------------------------------------------------------
	// Offsets relative to the located LTF start (which is OffLLTF+32 within
	// the PPDU).
	tr.Begin(obs.StageDemod)
	base := ltfStart - (OffLLTF + 32)
	lsigSym, lsigCSI, err := r.equalizeLegacySymbols(rx, leg, base+OffLSIG, 1)
	if err != nil {
		return nil, err
	}
	lsigBits, err := r.sig.decode(lsigSym, lsigCSI, leg.NoiseVar, false)
	if err != nil {
		return nil, fmt.Errorf("phy: L-SIG decode: %w", err)
	}
	lsig, err := preamble.ParseLSIG(lsigBits)
	if err != nil {
		return result, fmt.Errorf("phy: %w", err)
	}
	result.LSIG = lsig
	if lsig.Rate != preamble.Rate6Mbps {
		return result, fmt.Errorf("%w: L-SIG rate %#04b is not the HT-mixed 6 Mbit/s code", ErrBadSIG, lsig.Rate)
	}

	// --- 6. HT-SIG --------------------------------------------------------
	htsigSym, htsigCSI, err := r.equalizeLegacySymbols(rx, leg, base+OffHTSIG, 2)
	if err != nil {
		return nil, err
	}
	htsigBits, err := r.sig.decode(htsigSym, htsigCSI, leg.NoiseVar, true)
	if err != nil {
		return nil, fmt.Errorf("phy: HT-SIG decode: %w", err)
	}
	htsig, err := preamble.ParseHTSIG(htsigBits)
	if err != nil {
		return result, fmt.Errorf("phy: %w", err)
	}
	result.HTSIG = htsig
	mcs, err := Lookup(htsig.MCS)
	if err != nil {
		return result, fmt.Errorf("phy: HT-SIG announced unsupported %w", err)
	}
	result.MCS = mcs
	if mcs.NSS > r.cfg.NumAntennas && r.cfg.Detector != "ml" {
		return result, fmt.Errorf("phy: %d antennas cannot linearly separate %d streams", r.cfg.NumAntennas, mcs.NSS)
	}

	// Validate the announced payload geometry against the captured streams
	// before touching the HT-LTFs: a corrupted-but-CRC-lucky HT-SIG must be
	// rejected with a typed error, not discovered mid-symbol.
	nltf := preamble.NumHTLTF(mcs.NSS)
	if htsig.Length == 0 {
		return result, fmt.Errorf("%w: HT-SIG announces an empty PSDU", ErrSIGBounds)
	}
	nSym := mcs.NumSymbols(htsig.Length)
	dataCP := ofdm.CPLen
	if htsig.ShortGI {
		dataCP = ofdm.CPLenShort
	}
	dataBO := bo
	if dataBO >= dataCP {
		dataBO = dataCP - 1
	}
	// The last FFT window ends dataBO samples short of the nominal PPDU end.
	need := base + OffHTLTF + nltf*preamble.HTLTFLen + nSym*(ofdm.FFTSize+dataCP) - dataBO
	if need > len(rx[0]) {
		return result, fmt.Errorf("%w: HT-SIG length %d needs %d samples, stream has %d",
			ErrSIGBounds, htsig.Length, need, len(rx[0]))
	}

	// --- 7. HT channel estimation from the HT-LTFs ----------------------
	tr.Begin(obs.StageChanest)
	htSpectra := make([][][]complex128, len(rx))
	for a := range rx {
		htSpectra[a] = make([][]complex128, nltf)
		for n := 0; n < nltf; n++ {
			spec, err := r.bins(r.htDem, rx[a], base+OffHTLTF+n*preamble.HTLTFLen+ofdm.CPLen-bo)
			if err != nil {
				return result, fmt.Errorf("phy: HT-LTF window: %w", err)
			}
			htSpectra[a][n] = spec
		}
	}
	htEst, err := chanest.EstimateHT(htSpectra, mcs.NSS)
	if err != nil {
		return result, err
	}
	if (r.cfg.SmoothingWindow > 1) && htsig.Smoothing {
		if err := htEst.Smooth(r.cfg.SmoothingWindow); err != nil {
			return result, err
		}
	}
	if snr := leg.SNR(); snr > 0 {
		// Channel-state metrics for link adaptation; failure is not fatal.
		if rep, serr := sounding.Analyze(htEst.DataMatrices(), snr); serr == nil {
			result.Sounding = rep
		}
	}
	if ev := r.obs.evidence(); ev != nil {
		ev.ChanEst = flight.CaptureChanEst(htEst.DataMatrices(), htDataSubcarriers)
	}

	// --- 8. MIMO detection over the data symbols ------------------------
	tr.Begin(obs.StageDetector)
	if r.det == nil || r.detScheme != mcs.Scheme || r.detNSS != mcs.NSS {
		d, derr := mimo.NewDetector(r.cfg.Detector, mcs.Scheme, mcs.NSS)
		if derr != nil {
			return result, derr
		}
		r.det, r.detScheme, r.detNSS = d, mcs.Scheme, mcs.NSS
	}
	detector := r.det
	if err := detector.Prepare(htEst.DataMatrices(), leg.NoiseVar); err != nil {
		return result, err
	}
	var tracker *chanest.PhaseTracker
	if !r.cfg.DisablePhaseTracking {
		tracker = chanest.NewPhaseTracker(htEst)
	}

	dataStart := base + OffHTLTF + nltf*preamble.HTLTFLen
	dataSymLen := ofdm.FFTSize + dataCP
	ilv := make([]*fec.Interleaver, mcs.NSS)
	for iss := range ilv {
		il, err := fec.NewHTInterleaver(mcs.NBPSCS(), mcs.NSS, iss)
		if err != nil {
			return result, err
		}
		ilv[iss] = il
	}
	parser, err := mimo.NewStreamParser(mcs.NSS, mcs.NBPSCS())
	if err != nil {
		return result, err
	}

	streamLLR := make([][]float64, mcs.NSS)
	perSymbol := make([][]float64, mcs.NSS)
	deinterleaved := make([]float64, mcs.NCBPSS())
	nd := ofdm.HTToneMap.NumData()
	var trackMapper *modem.Mapper
	var dataH []*cmatrix.Matrix
	if r.cfg.TrackChannel {
		trackMapper = modem.NewMapper(mcs.Scheme)
		dataH = htEst.DataMatrices()
	}
	dataTones := make([][]complex128, len(rx))
	pilotTones := make([][]complex128, len(rx))
	y := make([]complex128, len(rx))
	// Per-subcarrier EVM accumulators, decision-directed: allocated only when
	// flight evidence is being captured for this packet.
	var evAcc []metrics.EVM
	var evMapper *modem.Mapper
	var evH []*cmatrix.Matrix
	var evBits []byte
	var evX []complex128
	if r.obs.evidence() != nil {
		evAcc = make([]metrics.EVM, nd)
		evMapper = modem.NewMapper(mcs.Scheme)
		evH = htEst.DataMatrices()
		evBits = make([]byte, mcs.NBPSCS())
		evX = make([]complex128, mcs.NSS)
	}
	for n := 0; n < nSym; n++ {
		// Demod (FFT + pilot CPE) and detection interleave per symbol; the
		// trace accumulates each stage's share across the whole data field.
		tr.Begin(obs.StageDemod)
		off := dataStart + n*dataSymLen + dataCP - dataBO
		for a := range rx {
			if off+ofdm.FFTSize > len(rx[a]) {
				return result, fmt.Errorf("phy: stream ends inside data symbol %d", n)
			}
			var derr error
			dataTones[a], pilotTones[a], derr = r.htDem.Symbol(rx[a][off:off+ofdm.FFTSize], dataTones[a][:0], pilotTones[a][:0])
			if derr != nil {
				return result, derr
			}
		}
		// Pilot-based common phase error correction.
		txPilots := make([][]complex128, mcs.NSS)
		for iss := 0; iss < mcs.NSS; iss++ {
			p, perr := ofdm.HTPilots(mcs.NSS, iss, n, 3)
			if perr != nil {
				return result, perr
			}
			txPilots[iss] = p
		}
		if tracker != nil {
			cpe, terr := tracker.Estimate(pilotTones, txPilots)
			if terr == nil {
				chanest.Correct(dataTones, cpe)
				result.CPETrace = append(result.CPETrace, cpe)
			}
		}
		// Per-subcarrier MIMO detection into per-stream LLRs.
		tr.Begin(obs.StageDetector)
		for iss := range perSymbol {
			perSymbol[iss] = perSymbol[iss][:0]
		}
		for k := 0; k < nd; k++ {
			for a := range rx {
				y[a] = dataTones[a][k]
			}
			var derr error
			perSymbol, derr = detector.Detect(perSymbol, k, y)
			if derr != nil {
				return result, derr
			}
		}
		if evAcc != nil {
			accumulateEVM(evAcc, perSymbol, dataTones, evH, evMapper, evBits, evX, mcs.NSS, mcs.NBPSCS())
		}
		// Decision-directed LMS channel tracking: slice each stream's
		// detected bits back to constellation points and nudge Ĥ(k)
		// toward the error direction, then refresh the detector weights.
		if r.cfg.TrackChannel {
			nbpsc := mcs.NBPSCS()
			bits := make([]byte, nbpsc)
			xhat := make([]complex128, mcs.NSS)
			mu := complex(r.cfg.TrackStep, 0)
			for k := 0; k < nd; k++ {
				var norm float64
				for iss := 0; iss < mcs.NSS; iss++ {
					for b := 0; b < nbpsc; b++ {
						bits[b] = 0
						if perSymbol[iss][k*nbpsc+b] < 0 {
							bits[b] = 1
						}
					}
					xhat[iss] = trackMapper.MapOne(bits)
					norm += real(xhat[iss])*real(xhat[iss]) + imag(xhat[iss])*imag(xhat[iss])
				}
				if norm == 0 {
					continue
				}
				h := dataH[k]
				for a := range rx {
					// e_a = y_a − Σ_s H[a][s]·x̂_s
					var est complex128
					for s := 0; s < mcs.NSS; s++ {
						est += h.At(a, s) * xhat[s]
					}
					e := dataTones[a][k] - est
					for s := 0; s < mcs.NSS; s++ {
						h.Set(a, s, h.At(a, s)+mu*e*conj(xhat[s])/complex(norm, 0))
					}
				}
			}
			if err := detector.Prepare(dataH, leg.NoiseVar); err != nil {
				return result, err
			}
		}
		// Deinterleave each stream's symbol worth of LLRs.
		for iss := 0; iss < mcs.NSS; iss++ {
			ilv[iss].DeinterleaveLLR(deinterleaved, perSymbol[iss])
			streamLLR[iss] = append(streamLLR[iss], deinterleaved...)
		}
	}

	// --- 9. Merge streams, depuncture, decode, descramble ---------------
	tr.Begin(obs.StageViterbi)
	merged, err := parser.MergeLLR(streamLLR)
	if err != nil {
		return result, err
	}
	if ev := r.obs.evidence(); ev != nil {
		ev.EVM = flight.EVMBins(evAcc, htDataSubcarriers)
		ev.SoftBits = flight.SoftStats(merged)
	}
	dataBits := nSym * mcs.NDBPS()
	dep, err := fec.DepunctureInto(r.depBuf, merged, dataBits, mcs.Rate)
	if err != nil {
		return result, err
	}
	r.depBuf = dep
	// The trellis is in the zero state right after the 6 tail bits; the pad
	// bits that fill the last symbol keep driving it afterwards, so decode
	// only SERVICE + PSDU + tail steps and anchor traceback at the tail.
	usefulSteps := 16 + 8*htsig.Length + 6
	if usefulSteps > dataBits {
		return result, fmt.Errorf("phy: HT-SIG length %d exceeds the %d-symbol data field", htsig.Length, nSym)
	}
	decoded, err := r.vit.DecodeSoftInto(r.decBuf, dep[:2*usefulSteps], true)
	if err != nil {
		return result, err
	}
	r.decBuf = decoded
	if r.obs != nil {
		errs, bits := preFECCompare(decoded, merged, mcs.Rate)
		r.obs.prefec(errs, bits)
	}
	// Descramble: recover the seed from the SERVICE field (the first 7
	// scrambled bits reveal the initial state).
	descrambled := descramble(decoded)
	psduBits := descrambled[16 : 16+8*htsig.Length]
	psdu, err := bitutil.BitsToBytes(psduBits)
	if err != nil {
		return result, err
	}
	result.PSDU = psdu
	return result, nil
}

// accumulateEVM folds one symbol's decision-directed error vectors into the
// per-subcarrier accumulators: each stream's LLR signs slice back to bits,
// map to the constellation point x̂, and every antenna's received tone is
// compared against the channel's prediction H·x̂ — the per-subcarrier EVM
// that localises MIMO impairments to individual tones.
func accumulateEVM(acc []metrics.EVM, perSymbol [][]float64, dataTones [][]complex128, h []*cmatrix.Matrix, mapper *modem.Mapper, bits []byte, xhat []complex128, nss, nbpsc int) {
	for k := range acc {
		for iss := 0; iss < nss; iss++ {
			for b := 0; b < nbpsc; b++ {
				bits[b] = 0
				if perSymbol[iss][k*nbpsc+b] < 0 {
					bits[b] = 1
				}
			}
			xhat[iss] = mapper.MapOne(bits)
		}
		hk := h[k]
		for a := range dataTones {
			var est complex128
			for s := 0; s < nss; s++ {
				est += hk.At(a, s) * xhat[s]
			}
			acc[k].Add(dataTones[a][k], est)
		}
	}
}

// descramble inverts the self-synchronizing scrambler given that the first
// 7 data bits (start of SERVICE) were zero before scrambling: the received
// first 7 bits ARE the scrambler sequence prefix, from which the seed is
// recovered (IEEE 802.11-2012 §18.3.5.7).
func descramble(bits []byte) []byte {
	if len(bits) < 7 {
		return bits
	}
	// Reconstruct the LFSR state from the first 7 output bits. Output bit
	// b_i = x7 ⊕ x4 of the state at step i and also becomes the new x1.
	// Running the recursion backwards from the observed prefix yields the
	// seed; equivalently, find the unique 7-bit seed whose sequence prefix
	// matches.
	out := make([]byte, len(bits))
	for seed := 1; seed <= 0x7F; seed++ {
		s := bitutil.NewScrambler(byte(seed))
		match := true
		for i := 0; i < 7; i++ {
			if s.NextBit() != bits[i]&1 {
				match = false
				break
			}
		}
		if !match {
			continue
		}
		d := bitutil.NewScrambler(byte(seed))
		for i := range bits {
			out[i] = (bits[i] & 1) ^ d.NextBit()
		}
		return out
	}
	// No seed matched (corrupted SERVICE); return as-is.
	copy(out, bits)
	return out
}

// detect runs the streaming packet detector over the buffers.
func (r *Receiver) detect(rx [][]complex128) (*synchro.Detection, error) {
	d, err := synchro.NewDetector(len(rx), r.cfg.DetectorConfig)
	if err != nil {
		return nil, err
	}
	samples := make([]complex128, len(rx))
	n := len(rx[0])
	for a := range rx {
		if len(rx[a]) != n {
			return nil, fmt.Errorf("phy: stream %d has %d samples, stream 0 has %d", a, len(rx[a]), n)
		}
	}
	for i := 0; i < n; i++ {
		for a := range rx {
			samples[a] = rx[a][i]
		}
		det, err := d.Push(samples)
		if err != nil {
			return nil, err
		}
		if det != nil {
			return det, nil
		}
	}
	return nil, fmt.Errorf("%w in %d samples", ErrNoPacket, n)
}

// bins demodulates a 64-sample window starting at off into a full spectrum.
func (r *Receiver) bins(dem *ofdm.Demodulator, stream []complex128, off int) ([]complex128, error) {
	if off < 0 || off+ofdm.FFTSize > len(stream) {
		return nil, fmt.Errorf("phy: FFT window [%d, %d) outside stream of %d", off, off+ofdm.FFTSize, len(stream))
	}
	spec := make([]complex128, ofdm.FFTSize)
	if err := dem.Bins(spec, stream[off:off+ofdm.FFTSize]); err != nil {
		return nil, err
	}
	return spec, nil
}

// equalizeLegacySymbols demodulates count legacy symbols starting at the
// PPDU offset and MRC-combines them across antennas using the L-LTF channel
// estimate. Returns per-symbol 48-tone vectors and CSI weights.
func (r *Receiver) equalizeLegacySymbols(rx [][]complex128, leg *chanest.LegacyEstimate, off, count int) ([][]complex128, [][]float64, error) {
	bo := r.cfg.TimingBackoff
	// Phase ramp difference: the legacy H was estimated with the same
	// backoff, so using identical windows keeps the ramp consistent.
	symbols := make([][]complex128, count)
	csi := make([][]float64, count)
	for s := 0; s < count; s++ {
		start := off + s*ofdm.SymbolLen + ofdm.CPLen - bo
		tones := make([]complex128, ofdm.LegacyToneMap.NumData())
		weights := make([]float64, ofdm.LegacyToneMap.NumData())
		specs := make([][]complex128, len(rx))
		for a := range rx {
			spec, err := r.bins(r.legDem, rx[a], start)
			if err != nil {
				return nil, nil, err
			}
			specs[a] = spec
		}
		for i, bin := range ofdm.LegacyToneMap.Data {
			var num complex128
			var den float64
			for a := range rx {
				h := leg.H[a][bin]
				num += conj(h) * specs[a][bin]
				den += real(h)*real(h) + imag(h)*imag(h)
			}
			if den < 1e-12 {
				den = 1e-12
			}
			tones[i] = num / complex(den, 0)
			weights[i] = den
		}
		symbols[s] = tones
		csi[s] = weights
	}
	return symbols, csi, nil
}

func conj(v complex128) complex128 { return complex(real(v), -imag(v)) }

// cpmlCFO runs the MIMO-extended Van de Beek estimator over the OFDM
// symbols following the detection point and returns the CFO in rad/sample.
// The L-LTF region onward is CP-structured (the LTF's two long symbols
// correlate at lag 64, as do every SIG and data symbol's prefix), so the
// window starts past the 16-periodic STF, where the lag-64 CP metric is
// informative.
func (r *Receiver) cpmlCFO(rx [][]complex128, detIdx int) (float64, error) {
	est, err := vandebeek.New(ofdm.FFTSize, ofdm.CPLen, 10 /* ≈10 dB design point */)
	if err != nil {
		return 0, err
	}
	// The detection index sits inside the STF; skip past it.
	from := detIdx + 120
	to := from + 10*ofdm.SymbolLen
	n := len(rx[0])
	if to > n {
		to = n
	}
	if to-from < 2*ofdm.SymbolLen {
		return 0, fmt.Errorf("only %d samples after detection", to-from)
	}
	window := subRange(rx, from, to)
	symbols := (to - from) / ofdm.SymbolLen
	e, err := est.EstimateAveraged(window, symbols-1)
	if err != nil {
		return 0, err
	}
	// ε is in subcarrier spacings: ω = 2πε/N rad/sample.
	return 2 * math.Pi * e.CFO / float64(ofdm.FFTSize), nil
}

// subRange returns views of every stream restricted to [from, to), clamped
// to the stream bounds.
func subRange(rx [][]complex128, from, to int) [][]complex128 {
	out := make([][]complex128, len(rx))
	for a := range rx {
		f, t := from, to
		if f < 0 {
			f = 0
		}
		if t > len(rx[a]) {
			t = len(rx[a])
		}
		if t < f {
			t = f
		}
		out[a] = rx[a][f:t]
	}
	return out
}
