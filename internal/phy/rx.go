package phy

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/bitutil"
	"repro/internal/chanest"
	"repro/internal/cmatrix"
	"repro/internal/est"
	"repro/internal/fec"
	"repro/internal/metrics"
	"repro/internal/mimo"
	"repro/internal/modem"
	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/ofdm"
	"repro/internal/preamble"
	"repro/internal/sounding"
	"repro/internal/synchro"
	"repro/internal/vandebeek"
)

// ErrBadSIG marks a SIG field that parsed (parity/CRC passed) but carries a
// value that cannot be right for an HT-mixed PPDU — a corrupted or spoofed
// header. Callers should treat it as a rejected packet, not a fault.
var ErrBadSIG = errors.New("phy: SIG field failed validation")

// ErrSIGBounds marks a SIG-announced payload geometry that does not fit the
// captured streams: decoding would read outside the sample buffers. The
// receiver rejects such headers up front instead of failing mid-symbol.
var ErrSIGBounds = errors.New("phy: SIG-announced length out of bounds")

// ErrNoPacket marks a capture in which the detector never fired: there is
// nothing to synchronize to. Telemetry classifies it as a sync failure.
var ErrNoPacket = errors.New("phy: no packet detected")

// RxConfig configures a receiver.
type RxConfig struct {
	// NumAntennas is the receive antenna count (≥ the transmitter's N_SS
	// for the linear detectors).
	NumAntennas int
	// Detector selects the MIMO detector: "zf", "mmse", "sic" or "ml".
	Detector string
	// DisablePhaseTracking turns off pilot-based common-phase-error
	// correction (for the E7 ablation).
	DisablePhaseTracking bool
	// SmoothingWindow applies frequency smoothing to the HT channel
	// estimate when > 1 (odd).
	SmoothingWindow int
	// DetectorConfig tunes packet detection; zero value selects defaults.
	DetectorConfig synchro.DetectorConfig
	// TimingBackoff shifts every FFT window this many samples into the
	// cyclic prefix to tolerate residual timing error. Default 3.
	TimingBackoff int
	// TrackChannel enables decision-directed LMS tracking of the channel
	// estimate across data symbols, for time-varying (Doppler) channels.
	TrackChannel bool
	// CPMLSync replaces the preamble-autocorrelation CFO estimators with
	// the paper's MIMO-extended Van de Beek CP-ML estimator, run over the
	// cyclic prefixes of the OFDM symbols following packet detection. The
	// CP-ML estimator needs no training fields, so it keeps working on
	// arbitrary OFDM traffic; experiment E21 compares the two modes.
	CPMLSync bool
	// TrackStep is the LMS step size µ; default 0.25 when tracking.
	TrackStep float64
	// Workers bounds the in-packet parallelism of the batched data phase:
	// 0 selects GOMAXPROCS, 1 forces the inline serial schedule. Decoded
	// output is bit-identical at every worker count (the batch passes use
	// fixed-size symbol shards writing disjoint regions).
	Workers int
	// ScalarChain forces the legacy symbol-at-a-time data phase instead of
	// the block-batched one, as an ablation/debug escape hatch and for the
	// batch-equivalence tests. The receiver also falls back to the scalar
	// chain automatically when a feature requires it (decision-directed
	// channel tracking, flight-evidence capture).
	ScalarChain bool
	// NarrowDetect opts in to the single-precision linear detection kernel
	// on the batched path (zf/mmse only): weights and demap run in
	// complex64/float32, LLRs widen only at the decoder boundary. The
	// scalar chain and every Prepare stay in double precision.
	NarrowDetect bool
}

// RxResult reports one decoded packet.
type RxResult struct {
	// PSDU is the recovered payload (nil when decoding failed outright).
	PSDU []byte
	// LSIG and HTSIG are the parsed SIGNAL fields.
	LSIG  preamble.LSIG
	HTSIG preamble.HTSIG
	// MCS is the modulation and coding scheme announced by HT-SIG.
	MCS MCS
	// SNRdB is the data-aided SNR estimate from the L-LTF.
	SNRdB float64
	// NoiseVar is the estimated per-subcarrier complex noise variance.
	NoiseVar float64
	// CFO is the total corrected carrier frequency offset in rad/sample.
	CFO float64
	// Timing is the sample index of the detected L-STF start estimate.
	Timing int
	// CPETrace records the per-symbol common phase error the pilot tracker
	// measured (empty when tracking is disabled).
	CPETrace []float64
	// Sounding reports channel-state metrics (capacity, condition number,
	// recommended stream count) derived from the HT channel estimate.
	Sounding *sounding.Report
}

// Receiver decodes HT-mixed PPDUs from raw baseband streams. Not safe for
// concurrent use.
type Receiver struct {
	cfg    RxConfig
	sig    *sigCodec
	legDem *ofdm.Demodulator
	htDem  *ofdm.Demodulator
	vit    *fec.Viterbi
	// Per-packet scratch reused across Receive calls so steady-state
	// decoding stays off the allocator's hot path.
	depBuf []float64
	decBuf []byte
	// Cached MIMO detector, reused while consecutive packets announce the
	// same (scheme, streams); Prepare fully resets detector state per packet.
	det       mimo.Detector
	detScheme modem.Scheme
	detNSS    int
	// obs, when set, receives per-packet telemetry (SNR/BER/PER series and
	// stage traces). Nil keeps the decode path free of telemetry cost.
	obs *RxObs
	// packetID is the TX-assigned correlation key of the burst about to be
	// decoded (0 = unknown), stamped onto traces and flight evidence.
	packetID uint64
	// Batched data-phase state (rxbatch.go): the size-classed scratch pool,
	// the persistent worker set, and the per-MCS fused scatter tables.
	pool         bufPool
	workers      []*rxWorker
	scatterCache map[int][][]int32
	// Per-MCS interleaver/stream-parser caches, shared by both data phases
	// (construction builds permutation tables, so it is per-packet cost
	// worth hoisting).
	ilvCache    map[int][]*fec.Interleaver
	parserCache map[int]*mimo.StreamParser
	// Packet-lifetime slice headers and pilot reference buffers, reused.
	tones      [][]complex128
	pilots     [][]complex128
	pilotViews [][]complex128
	toneViews  [][]complex128
	txPilots   [][]complex128
}

// dataCtx carries the data-field geometry and per-packet processing state
// from receive() into the scalar or batched data phase.
type dataCtx struct {
	rx         [][]complex128
	mcs        MCS
	htsig      preamble.HTSIG
	nSym       int
	dataStart  int
	dataSymLen int
	dataCP     int
	dataBO     int
	detector   mimo.Detector
	batchDet   mimo.BatchDetector
	tracker    *chanest.PhaseTracker
	htEst      *chanest.HTEstimate
	noiseVar   float64
	ilv        []*fec.Interleaver
	parser     *mimo.StreamParser
	result     *RxResult
}

// SetObs attaches the receiver's telemetry surface. Nil detaches it.
func (r *Receiver) SetObs(o *RxObs) { r.obs = o }

// SetPacketID labels the next Receive call with the TX-assigned packet ID
// recovered from the transport (radio frame header), tying the packet's
// trace and flight evidence to the sender's record.
func (r *Receiver) SetPacketID(id uint64) { r.packetID = id }

// htDataSubcarriers maps data-tone position to the signed logical subcarrier
// index (−28..28), the labeling flight dumps use.
var htDataSubcarriers = func() []int {
	out := make([]int, len(ofdm.HTToneMap.Data))
	for i, b := range ofdm.HTToneMap.Data {
		if b >= ofdm.FFTSize/2 {
			b -= ofdm.FFTSize
		}
		out[i] = b
	}
	return out
}()

// NewReceiver validates the configuration and returns a receiver.
func NewReceiver(cfg RxConfig) (*Receiver, error) {
	if cfg.NumAntennas < 1 || cfg.NumAntennas > 4 {
		return nil, fmt.Errorf("phy: antenna count %d outside [1,4]", cfg.NumAntennas)
	}
	switch cfg.Detector {
	case "", "zf", "mmse", "sic", "ml":
	default:
		return nil, fmt.Errorf("phy: unknown detector %q", cfg.Detector)
	}
	if cfg.Detector == "" {
		cfg.Detector = "mmse"
	}
	if cfg.DetectorConfig == (synchro.DetectorConfig{}) {
		cfg.DetectorConfig = synchro.DefaultDetectorConfig()
	}
	if cfg.TimingBackoff == 0 {
		cfg.TimingBackoff = 3
	}
	if cfg.TimingBackoff < 0 || cfg.TimingBackoff >= ofdm.CPLen {
		return nil, fmt.Errorf("phy: timing backoff %d outside [0, %d)", cfg.TimingBackoff, ofdm.CPLen)
	}
	if cfg.TrackStep == 0 {
		cfg.TrackStep = 0.25
	}
	if cfg.TrackStep < 0 || cfg.TrackStep > 1 {
		return nil, fmt.Errorf("phy: LMS step %g outside (0, 1]", cfg.TrackStep)
	}
	if cfg.Workers < 0 {
		return nil, fmt.Errorf("phy: worker count %d is negative", cfg.Workers)
	}
	if cfg.NarrowDetect && cfg.Detector != "zf" && cfg.Detector != "mmse" {
		return nil, fmt.Errorf("phy: narrow detection kernel requires a linear detector, not %q", cfg.Detector)
	}
	return &Receiver{
		cfg:    cfg,
		sig:    newSigCodec(),
		legDem: ofdm.NewDemodulator(ofdm.LegacyToneMap),
		htDem:  ofdm.NewDemodulator(ofdm.HTToneMap),
		vit:    fec.NewViterbi(),
	}, nil
}

// Receive synchronizes to and decodes the first PPDU in the streams.
// rx[a] is the baseband of antenna a; all must be equal length. The samples
// are modified in place by CFO correction.
//
// With an attached RxObs the call additionally records a stage trace
// (sync → chanest → demod → detector → viterbi; the caller's FCS check adds
// crc via ActiveTrace/PacketResult) and updates the SNR/BER/PER series.
func (r *Receiver) Receive(rx [][]complex128) (*RxResult, error) {
	tr := r.obs.startTrace()
	tr.SetPacketID(r.packetID)
	res, err := r.receive(rx, tr)
	if err != nil {
		r.obs.recordFailure(err)
		tr.Finish(false)
		// A packet that dies inside the PHY never reaches the caller's FCS
		// check, so its evidence is finalized here with the classified error.
		r.obs.finishEvidence(verdictFor(err), tr)
		return res, err
	}
	r.obs.packetDecoded(res)
	// Close the viterbi span but leave the trace active: the caller owns
	// the crc stage and terminal verdict (PacketResult).
	tr.End()
	return res, nil
}

// receive is the synchronization and decode chain behind Receive, with
// stage span markers threaded through it.
func (r *Receiver) receive(rx [][]complex128, tr *obs.Trace) (*RxResult, error) {
	if len(rx) != r.cfg.NumAntennas {
		return nil, fmt.Errorf("phy: %d streams for %d antennas", len(rx), r.cfg.NumAntennas)
	}
	// --- 1. Packet detection on the STF periodicity ---------------------
	tr.Begin(obs.StageSync)
	det, err := r.detect(rx)
	if err != nil {
		return nil, err
	}
	// Evidence capture opens here, before CFO correction rewrites rx in
	// place: the dump keeps the sync-point IQ as the antenna actually saw it.
	r.obs.beginEvidence(r.packetID, rx, det.Index)
	// The detection index lies inside the STF. Estimate the STF region for
	// coarse CFO: use up to 96 samples ending at the detection index.
	stfEnd := det.Index
	stfStart := stfEnd - 96
	if stfStart < 0 {
		stfStart = 0
	}
	var coarse float64
	if r.cfg.CPMLSync {
		coarse, err = r.cpmlCFO(rx, det.Index)
		if err != nil {
			return nil, fmt.Errorf("phy: CP-ML sync: %w", err)
		}
	} else {
		region := subRange(rx, stfStart, stfEnd)
		coarse, err = synchro.CoarseCFO(region)
		if err != nil {
			return nil, fmt.Errorf("phy: coarse CFO: %w", err)
		}
	}
	synchro.CorrectCFO(rx, coarse)

	// --- 2. Fine timing on the L-LTF ------------------------------------
	// The LTF's first long symbol begins 192 samples after the STF start;
	// search a generous window around the detection point.
	from := det.Index - 40
	to := det.Index + 280
	ltfStart, err := synchro.FineTiming(rx, from, to)
	if err != nil {
		return nil, fmt.Errorf("phy: fine timing: %w", err)
	}
	stfStartEst := ltfStart - 192

	// --- 3. Fine CFO from the two long symbols (preamble mode only; the
	// CP-ML estimate already covers the fractional offset) ----------------
	fine := 0.0
	if !r.cfg.CPMLSync {
		ltfRegion := subRange(rx, ltfStart, ltfStart+128)
		fine, err = synchro.FineCFO(ltfRegion)
		if err != nil {
			return nil, fmt.Errorf("phy: fine CFO: %w", err)
		}
		synchro.CorrectCFO(rx, fine)
	}
	totalCFO := coarse + fine

	// --- 4. Legacy channel estimate + SNR from the L-LTF ----------------
	tr.Begin(obs.StageChanest)
	bo := r.cfg.TimingBackoff
	ltfSpectra := make([][][]complex128, len(rx))
	for a := range rx {
		s1, err := r.bins(r.legDem, rx[a], ltfStart-bo)
		if err != nil {
			return nil, fmt.Errorf("phy: L-LTF window: %w", err)
		}
		s2, err := r.bins(r.legDem, rx[a], ltfStart+64-bo)
		if err != nil {
			return nil, err
		}
		ltfSpectra[a] = [][]complex128{s1, s2}
	}
	leg, err := chanest.EstimateLegacy(ltfSpectra)
	if err != nil {
		return nil, err
	}
	result := &RxResult{
		SNRdB:    est.DB(leg.SNR()),
		NoiseVar: leg.NoiseVar,
		CFO:      totalCFO,
		Timing:   stfStartEst,
	}

	// --- 5. L-SIG ---------------------------------------------------------
	// Offsets relative to the located LTF start (which is OffLLTF+32 within
	// the PPDU).
	tr.Begin(obs.StageDemod)
	base := ltfStart - (OffLLTF + 32)
	lsigSym, lsigCSI, err := r.equalizeLegacySymbols(rx, leg, base+OffLSIG, 1)
	if err != nil {
		return nil, err
	}
	lsigBits, err := r.sig.decode(lsigSym, lsigCSI, leg.NoiseVar, false)
	if err != nil {
		return nil, fmt.Errorf("phy: L-SIG decode: %w", err)
	}
	lsig, err := preamble.ParseLSIG(lsigBits)
	if err != nil {
		return result, fmt.Errorf("phy: %w", err)
	}
	result.LSIG = lsig
	if lsig.Rate != preamble.Rate6Mbps {
		return result, fmt.Errorf("%w: L-SIG rate %#04b is not the HT-mixed 6 Mbit/s code", ErrBadSIG, lsig.Rate)
	}

	// --- 6. HT-SIG --------------------------------------------------------
	htsigSym, htsigCSI, err := r.equalizeLegacySymbols(rx, leg, base+OffHTSIG, 2)
	if err != nil {
		return nil, err
	}
	htsigBits, err := r.sig.decode(htsigSym, htsigCSI, leg.NoiseVar, true)
	if err != nil {
		return nil, fmt.Errorf("phy: HT-SIG decode: %w", err)
	}
	htsig, err := preamble.ParseHTSIG(htsigBits)
	if err != nil {
		return result, fmt.Errorf("phy: %w", err)
	}
	result.HTSIG = htsig
	mcs, err := Lookup(htsig.MCS)
	if err != nil {
		return result, fmt.Errorf("phy: HT-SIG announced unsupported %w", err)
	}
	result.MCS = mcs
	if mcs.NSS > r.cfg.NumAntennas && r.cfg.Detector != "ml" {
		return result, fmt.Errorf("phy: %d antennas cannot linearly separate %d streams", r.cfg.NumAntennas, mcs.NSS)
	}

	// Validate the announced payload geometry against the captured streams
	// before touching the HT-LTFs: a corrupted-but-CRC-lucky HT-SIG must be
	// rejected with a typed error, not discovered mid-symbol.
	nltf := preamble.NumHTLTF(mcs.NSS)
	if htsig.Length == 0 {
		return result, fmt.Errorf("%w: HT-SIG announces an empty PSDU", ErrSIGBounds)
	}
	nSym := mcs.NumSymbols(htsig.Length)
	dataCP := ofdm.CPLen
	if htsig.ShortGI {
		dataCP = ofdm.CPLenShort
	}
	dataBO := bo
	if dataBO >= dataCP {
		dataBO = dataCP - 1
	}
	// The last FFT window ends dataBO samples short of the nominal PPDU end.
	need := base + OffHTLTF + nltf*preamble.HTLTFLen + nSym*(ofdm.FFTSize+dataCP) - dataBO
	if need > len(rx[0]) {
		return result, fmt.Errorf("%w: HT-SIG length %d needs %d samples, stream has %d",
			ErrSIGBounds, htsig.Length, need, len(rx[0]))
	}

	// --- 7. HT channel estimation from the HT-LTFs ----------------------
	tr.Begin(obs.StageChanest)
	htSpectra := make([][][]complex128, len(rx))
	for a := range rx {
		htSpectra[a] = make([][]complex128, nltf)
		for n := 0; n < nltf; n++ {
			spec, err := r.bins(r.htDem, rx[a], base+OffHTLTF+n*preamble.HTLTFLen+ofdm.CPLen-bo)
			if err != nil {
				return result, fmt.Errorf("phy: HT-LTF window: %w", err)
			}
			htSpectra[a][n] = spec
		}
	}
	htEst, err := chanest.EstimateHT(htSpectra, mcs.NSS)
	if err != nil {
		return result, err
	}
	if (r.cfg.SmoothingWindow > 1) && htsig.Smoothing {
		if err := htEst.Smooth(r.cfg.SmoothingWindow); err != nil {
			return result, err
		}
	}
	if snr := leg.SNR(); snr > 0 {
		// Channel-state metrics for link adaptation; failure is not fatal.
		if rep, serr := sounding.Analyze(htEst.DataMatrices(), snr); serr == nil {
			result.Sounding = rep
		}
	}
	if ev := r.obs.evidence(); ev != nil {
		ev.ChanEst = flight.CaptureChanEst(htEst.DataMatrices(), htDataSubcarriers)
	}

	// --- 8. MIMO detection over the data symbols ------------------------
	tr.Begin(obs.StageDetector)
	if r.det == nil || r.detScheme != mcs.Scheme || r.detNSS != mcs.NSS {
		d, derr := mimo.NewDetector(r.cfg.Detector, mcs.Scheme, mcs.NSS)
		if derr != nil {
			return result, derr
		}
		if r.cfg.NarrowDetect {
			nw, ok := d.(mimo.Narrowable)
			if !ok {
				return result, fmt.Errorf("phy: %s detector has no narrow kernel", r.cfg.Detector)
			}
			if nerr := nw.SetNarrow(true); nerr != nil {
				return result, nerr
			}
		}
		r.det, r.detScheme, r.detNSS = d, mcs.Scheme, mcs.NSS
	}
	detector := r.det
	if err := detector.Prepare(htEst.DataMatrices(), leg.NoiseVar); err != nil {
		return result, err
	}
	var tracker *chanest.PhaseTracker
	if !r.cfg.DisablePhaseTracking {
		tracker = chanest.NewPhaseTracker(htEst)
	}

	ilv, parser, err := r.streamCodecs(mcs)
	if err != nil {
		return result, err
	}
	ctx := &dataCtx{
		rx:         rx,
		mcs:        mcs,
		htsig:      htsig,
		nSym:       nSym,
		dataStart:  base + OffHTLTF + nltf*preamble.HTLTFLen,
		dataSymLen: ofdm.FFTSize + dataCP,
		dataCP:     dataCP,
		dataBO:     dataBO,
		detector:   detector,
		tracker:    tracker,
		htEst:      htEst,
		noiseVar:   leg.NoiseVar,
		ilv:        ilv,
		parser:     parser,
		result:     result,
	}
	// Pre-size the Viterbi decoder from the SIG-declared packet length so
	// the decode below starts with its traceback storage in place.
	usefulSteps := 16 + 8*htsig.Length + 6
	dataBits := nSym * mcs.NDBPS()
	if usefulSteps > dataBits {
		return result, fmt.Errorf("phy: HT-SIG length %d exceeds the %d-symbol data field", htsig.Length, nSym)
	}
	r.vit.Reserve(usefulSteps)

	// The block-batched data phase is the default; the symbol-at-a-time
	// chain remains for features with inherently sequential symbol coupling
	// (decision-directed channel tracking), for flight-evidence capture
	// (per-symbol EVM accumulation), and as an explicit ablation switch.
	// Both produce bit-identical depunctured LLR streams.
	bd, canBatch := detector.(mimo.BatchDetector)
	useScalar := r.cfg.ScalarChain || r.cfg.TrackChannel || r.obs.evidence() != nil || !canBatch
	var dep, merged []float64
	if useScalar {
		dep, merged, err = r.dataScalar(ctx, tr)
	} else {
		ctx.batchDet = bd
		dep, err = r.dataBatch(ctx, tr)
	}
	if err != nil {
		return result, err
	}

	// --- 9. Viterbi decode and descramble -------------------------------
	// The trellis is in the zero state right after the 6 tail bits; the pad
	// bits that fill the last symbol keep driving it afterwards, so decode
	// only SERVICE + PSDU + tail steps and anchor traceback at the tail.
	tr.Begin(obs.StageViterbi)
	decoded, err := r.vit.DecodeSoftInto(r.decBuf, dep[:2*usefulSteps], true)
	if err != nil {
		return result, err
	}
	r.decBuf = decoded
	if r.obs != nil {
		var errs, bits int
		if merged != nil {
			errs, bits = preFECCompare(decoded, merged, mcs.Rate)
		} else {
			errs, bits = preFECCompareMother(decoded, dep)
		}
		r.obs.prefec(errs, bits)
	}
	// Descramble: recover the seed from the SERVICE field (the first 7
	// scrambled bits reveal the initial state).
	descrambled := descramble(decoded)
	psduBits := descrambled[16 : 16+8*htsig.Length]
	psdu, err := bitutil.BitsToBytes(psduBits)
	if err != nil {
		return result, err
	}
	result.PSDU = psdu
	return result, nil
}

// accumulateEVM folds one symbol's decision-directed error vectors into the
// per-subcarrier accumulators: each stream's LLR signs slice back to bits,
// map to the constellation point x̂, and every antenna's received tone is
// compared against the channel's prediction H·x̂ — the per-subcarrier EVM
// that localises MIMO impairments to individual tones.
func accumulateEVM(acc []metrics.EVM, perSymbol [][]float64, dataTones [][]complex128, h []*cmatrix.Matrix, mapper *modem.Mapper, bits []byte, xhat []complex128, nss, nbpsc int) {
	for k := range acc {
		for iss := 0; iss < nss; iss++ {
			for b := 0; b < nbpsc; b++ {
				bits[b] = 0
				if perSymbol[iss][k*nbpsc+b] < 0 {
					bits[b] = 1
				}
			}
			xhat[iss] = mapper.MapOne(bits)
		}
		hk := h[k]
		for a := range dataTones {
			var est complex128
			for s := 0; s < nss; s++ {
				est += hk.At(a, s) * xhat[s]
			}
			acc[k].Add(dataTones[a][k], est)
		}
	}
}

// descramble inverts the self-synchronizing scrambler given that the first
// 7 data bits (start of SERVICE) were zero before scrambling: the received
// first 7 bits ARE the scrambler sequence prefix, from which the seed is
// recovered (IEEE 802.11-2012 §18.3.5.7).
func descramble(bits []byte) []byte {
	if len(bits) < 7 {
		return bits
	}
	// Reconstruct the LFSR state from the first 7 output bits. Output bit
	// b_i = x7 ⊕ x4 of the state at step i and also becomes the new x1.
	// Running the recursion backwards from the observed prefix yields the
	// seed; equivalently, find the unique 7-bit seed whose sequence prefix
	// matches.
	out := make([]byte, len(bits))
	for seed := 1; seed <= 0x7F; seed++ {
		s := bitutil.NewScrambler(byte(seed))
		match := true
		for i := 0; i < 7; i++ {
			if s.NextBit() != bits[i]&1 {
				match = false
				break
			}
		}
		if !match {
			continue
		}
		d := bitutil.NewScrambler(byte(seed))
		for i := range bits {
			out[i] = (bits[i] & 1) ^ d.NextBit()
		}
		return out
	}
	// No seed matched (corrupted SERVICE); return as-is.
	copy(out, bits)
	return out
}

// detect runs the streaming packet detector over the buffers.
func (r *Receiver) detect(rx [][]complex128) (*synchro.Detection, error) {
	d, err := synchro.NewDetector(len(rx), r.cfg.DetectorConfig)
	if err != nil {
		return nil, err
	}
	samples := make([]complex128, len(rx))
	n := len(rx[0])
	for a := range rx {
		if len(rx[a]) != n {
			return nil, fmt.Errorf("phy: stream %d has %d samples, stream 0 has %d", a, len(rx[a]), n)
		}
	}
	for i := 0; i < n; i++ {
		for a := range rx {
			samples[a] = rx[a][i]
		}
		det, err := d.Push(samples)
		if err != nil {
			return nil, err
		}
		if det != nil {
			return det, nil
		}
	}
	return nil, fmt.Errorf("%w in %d samples", ErrNoPacket, n)
}

// bins demodulates a 64-sample window starting at off into a full spectrum.
func (r *Receiver) bins(dem *ofdm.Demodulator, stream []complex128, off int) ([]complex128, error) {
	if off < 0 || off+ofdm.FFTSize > len(stream) {
		return nil, fmt.Errorf("phy: FFT window [%d, %d) outside stream of %d", off, off+ofdm.FFTSize, len(stream))
	}
	spec := make([]complex128, ofdm.FFTSize)
	if err := dem.Bins(spec, stream[off:off+ofdm.FFTSize]); err != nil {
		return nil, err
	}
	return spec, nil
}

// equalizeLegacySymbols demodulates count legacy symbols starting at the
// PPDU offset and MRC-combines them across antennas using the L-LTF channel
// estimate. Returns per-symbol 48-tone vectors and CSI weights.
func (r *Receiver) equalizeLegacySymbols(rx [][]complex128, leg *chanest.LegacyEstimate, off, count int) ([][]complex128, [][]float64, error) {
	bo := r.cfg.TimingBackoff
	// Phase ramp difference: the legacy H was estimated with the same
	// backoff, so using identical windows keeps the ramp consistent.
	symbols := make([][]complex128, count)
	csi := make([][]float64, count)
	for s := 0; s < count; s++ {
		start := off + s*ofdm.SymbolLen + ofdm.CPLen - bo
		tones := make([]complex128, ofdm.LegacyToneMap.NumData())
		weights := make([]float64, ofdm.LegacyToneMap.NumData())
		specs := make([][]complex128, len(rx))
		for a := range rx {
			spec, err := r.bins(r.legDem, rx[a], start)
			if err != nil {
				return nil, nil, err
			}
			specs[a] = spec
		}
		for i, bin := range ofdm.LegacyToneMap.Data {
			var num complex128
			var den float64
			for a := range rx {
				h := leg.H[a][bin]
				num += conj(h) * specs[a][bin]
				den += real(h)*real(h) + imag(h)*imag(h)
			}
			if den < 1e-12 {
				den = 1e-12
			}
			tones[i] = num / complex(den, 0)
			weights[i] = den
		}
		symbols[s] = tones
		csi[s] = weights
	}
	return symbols, csi, nil
}

func conj(v complex128) complex128 { return complex(real(v), -imag(v)) }

// cpmlCFO runs the MIMO-extended Van de Beek estimator over the OFDM
// symbols following the detection point and returns the CFO in rad/sample.
// The L-LTF region onward is CP-structured (the LTF's two long symbols
// correlate at lag 64, as do every SIG and data symbol's prefix), so the
// window starts past the 16-periodic STF, where the lag-64 CP metric is
// informative.
func (r *Receiver) cpmlCFO(rx [][]complex128, detIdx int) (float64, error) {
	est, err := vandebeek.New(ofdm.FFTSize, ofdm.CPLen, 10 /* ≈10 dB design point */)
	if err != nil {
		return 0, err
	}
	// The detection index sits inside the STF; skip past it.
	from := detIdx + 120
	to := from + 10*ofdm.SymbolLen
	n := len(rx[0])
	if to > n {
		to = n
	}
	if to-from < 2*ofdm.SymbolLen {
		return 0, fmt.Errorf("only %d samples after detection", to-from)
	}
	window := subRange(rx, from, to)
	symbols := (to - from) / ofdm.SymbolLen
	e, err := est.EstimateAveraged(window, symbols-1)
	if err != nil {
		return 0, err
	}
	// ε is in subcarrier spacings: ω = 2πε/N rad/sample.
	return 2 * math.Pi * e.CFO / float64(ofdm.FFTSize), nil
}

// subRange returns views of every stream restricted to [from, to), clamped
// to the stream bounds.
func subRange(rx [][]complex128, from, to int) [][]complex128 {
	out := make([][]complex128, len(rx))
	for a := range rx {
		f, t := from, to
		if f < 0 {
			f = 0
		}
		if t > len(rx[a]) {
			t = len(rx[a])
		}
		if t < f {
			t = f
		}
		out[a] = rx[a][f:t]
	}
	return out
}
