package phy

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"repro/internal/channel"
	"repro/internal/ofdm"
)

func TestShortGIRates(t *testing.T) {
	m, _ := Lookup(7)
	if math.Abs(m.DataRateMbpsGI(true)-72.2) > 0.05 {
		t.Errorf("MCS7 SGI rate %.2f, want 72.2", m.DataRateMbpsGI(true))
	}
	m15, _ := Lookup(15)
	if math.Abs(m15.DataRateMbpsGI(true)-144.4) > 0.05 {
		t.Errorf("MCS15 SGI rate %.2f, want 144.4", m15.DataRateMbpsGI(true))
	}
	if m15.DataRateMbpsGI(false) != m15.DataRateMbps() {
		t.Error("long-GI rate mismatch")
	}
	if DataSymbolLen(true) != 72 || DataSymbolLen(false) != 80 {
		t.Error("data symbol lengths wrong")
	}
}

func TestShortGIBurstShorter(t *testing.T) {
	m, _ := Lookup(9)
	long := BurstLenGI(m, 1000, false)
	short := BurstLenGI(m, 1000, true)
	nSym := m.NumSymbols(1000)
	if long-short != 8*nSym {
		t.Errorf("SGI saves %d samples, want %d", long-short, 8*nSym)
	}
}

// shortGILoop runs a full TX→channel→RX cycle with the short guard interval.
func shortGILoop(t *testing.T, mcsIdx int, cfg channel.Config, psduLen int, seed int64) bool {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	tx, err := NewTransmitter(TxConfig{MCS: mcsIdx, ScramblerSeed: byte(seed) | 1, ShortGI: true})
	if err != nil {
		t.Fatal(err)
	}
	psdu := randPSDU(r, psduLen)
	burst, err := tx.Transmit(psdu)
	if err != nil {
		t.Fatal(err)
	}
	m := tx.MCS()
	if len(burst[0]) != BurstLenGI(m, psduLen, true) {
		t.Fatalf("SGI burst length %d, want %d", len(burst[0]), BurstLenGI(m, psduLen, true))
	}
	cfg.NumTX = tx.NumChains()
	cfg.NumRX = tx.NumChains()
	c, err := channel.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rxs, err := c.Apply(burst)
	if err != nil {
		t.Fatal(err)
	}
	rx, err := NewReceiver(RxConfig{NumAntennas: tx.NumChains(), Detector: "mmse"})
	if err != nil {
		t.Fatal(err)
	}
	res, err := rx.Receive(rxs)
	if err != nil {
		t.Logf("receive: %v", err)
		return false
	}
	if !res.HTSIG.ShortGI {
		t.Error("HT-SIG short-GI bit lost")
	}
	return bytes.Equal(res.PSDU, psdu)
}

func TestShortGILoopbackIdentity(t *testing.T) {
	cfg := channel.Config{Model: channel.Identity, SNRdB: 30, Seed: 5,
		TimingOffset: 260, TrailingSilence: 90}
	for _, mcs := range []int{0, 9, 12} {
		if !shortGILoop(t, mcs, cfg, 500, int64(40+mcs)) {
			t.Errorf("MCS%d short-GI loopback failed", mcs)
		}
	}
}

func TestShortGILoopbackMultipath(t *testing.T) {
	// TGn-B delay spread (≈2 taps at 50 ns) still fits the 8-sample short
	// guard.
	cfg := channel.Config{Model: channel.TGnB, SNRdB: 32, Seed: 6,
		TimingOffset: 300, TrailingSilence: 100}
	if !shortGILoop(t, 9, cfg, 800, 51) {
		t.Error("short-GI loopback over TGn-B failed")
	}
}

func TestShortGISurvivesCFO(t *testing.T) {
	cfg := channel.Config{Model: channel.Identity, SNRdB: 28, Seed: 7,
		CFOHz: 12e3, SampleRate: ofdm.SampleRate,
		TimingOffset: 260, TrailingSilence: 90}
	if !shortGILoop(t, 10, cfg, 600, 52) {
		t.Error("short-GI loopback with CFO failed")
	}
}
