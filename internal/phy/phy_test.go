package phy

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"repro/internal/channel"
	"repro/internal/ofdm"
)

func randPSDU(r *rand.Rand, n int) []byte {
	b := make([]byte, n)
	r.Read(b)
	return b
}

func TestMCSTable(t *testing.T) {
	for _, c := range []struct {
		idx  int
		nss  int
		rate float64
	}{
		{0, 1, 6.5}, {7, 1, 65.0 * 4 / 4.0}, // MCS7: 64QAM 5/6 → 65 Mbps short GI is 72.2; long GI 65
		{8, 2, 13.0}, {15, 2, 130.0},
		{31, 4, 260.0},
	} {
		m, err := Lookup(c.idx)
		if err != nil {
			t.Fatal(err)
		}
		if m.NSS != c.nss {
			t.Errorf("MCS%d: NSS=%d, want %d", c.idx, m.NSS, c.nss)
		}
		if math.Abs(m.DataRateMbps()-c.rate) > 0.01 {
			t.Errorf("MCS%d: rate %.2f, want %.2f", c.idx, m.DataRateMbps(), c.rate)
		}
	}
	if _, err := Lookup(32); err == nil {
		t.Error("MCS 32 should be rejected")
	}
	if _, err := Lookup(-1); err == nil {
		t.Error("negative MCS should be rejected")
	}
}

func TestMCSSymbolBudget(t *testing.T) {
	m, _ := Lookup(0) // BPSK 1/2, NDBPS = 26
	if m.NDBPS() != 26 {
		t.Fatalf("MCS0 NDBPS = %d, want 26", m.NDBPS())
	}
	// 100-byte PSDU: bits = 16+800+6 = 822 → ceil(822/26) = 32 symbols.
	if got := m.NumSymbols(100); got != 32 {
		t.Errorf("NumSymbols(100) = %d, want 32", got)
	}
	if got := m.PadBits(100); got != 32*26-822 {
		t.Errorf("PadBits = %d", got)
	}
	m15, _ := Lookup(15) // 2ss 64QAM 5/6: NDBPS = 2*52*6*5/6 = 520
	if m15.NDBPS() != 520 {
		t.Errorf("MCS15 NDBPS = %d, want 520", m15.NDBPS())
	}
}

func TestTransmitterValidation(t *testing.T) {
	if _, err := NewTransmitter(TxConfig{MCS: 40}); err == nil {
		t.Error("bad MCS should fail")
	}
	tx, err := NewTransmitter(TxConfig{MCS: 8})
	if err != nil {
		t.Fatal(err)
	}
	if tx.NumChains() != 2 {
		t.Errorf("MCS8 chains = %d", tx.NumChains())
	}
	if _, err := tx.Transmit(nil); err == nil {
		t.Error("empty PSDU should fail")
	}
	if _, err := tx.Transmit(make([]byte, 70000)); err == nil {
		t.Error("oversized PSDU should fail")
	}
}

func TestBurstStructure(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	tx, err := NewTransmitter(TxConfig{MCS: 9}) // 2ss QPSK 1/2
	if err != nil {
		t.Fatal(err)
	}
	psdu := randPSDU(r, 200)
	burst, err := tx.Transmit(psdu)
	if err != nil {
		t.Fatal(err)
	}
	if len(burst) != 2 {
		t.Fatalf("%d chains", len(burst))
	}
	want := BurstLen(tx.MCS(), 200)
	for c := range burst {
		if len(burst[c]) != want {
			t.Fatalf("chain %d: %d samples, want %d", c, len(burst[c]), want)
		}
	}
	// The legacy preamble region must be 16-periodic (STF) on each chain.
	for c := range burst {
		for i := 0; i < 160-16; i++ {
			d := burst[c][i] - burst[c][i+16]
			if math.Hypot(real(d), imag(d)) > 1e-9 {
				t.Fatalf("chain %d: STF not periodic at %d", c, i)
			}
		}
	}
	// Total transmit power across chains ≈ 1 over the data region.
	var p float64
	start := PreambleLen(2)
	n := 0
	for c := range burst {
		for _, v := range burst[c][start:] {
			p += real(v)*real(v) + imag(v)*imag(v)
		}
	}
	n = (len(burst[0]) - start) // per-chain samples
	p /= float64(n)
	if math.Abs(p-1) > 0.1 {
		t.Errorf("total data-region power %g, want ≈ 1", p)
	}
}

// loop runs a full TX→channel→RX cycle and returns the result.
func loop(t *testing.T, mcsIdx, nrx int, det string, ch channel.Config, psduLen int, seed int64) (*RxResult, []byte) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	tx, err := NewTransmitter(TxConfig{MCS: mcsIdx, ScramblerSeed: byte(seed) | 1})
	if err != nil {
		t.Fatal(err)
	}
	psdu := randPSDU(r, psduLen)
	burst, err := tx.Transmit(psdu)
	if err != nil {
		t.Fatal(err)
	}
	ch.NumTX = tx.NumChains()
	ch.NumRX = nrx
	c, err := channel.New(ch)
	if err != nil {
		t.Fatal(err)
	}
	rxs, err := c.Apply(burst)
	if err != nil {
		t.Fatal(err)
	}
	rx, err := NewReceiver(RxConfig{NumAntennas: nrx, Detector: det})
	if err != nil {
		t.Fatal(err)
	}
	res, err := rx.Receive(rxs)
	if err != nil {
		t.Fatalf("receive: %v", err)
	}
	return res, psdu
}

func TestLoopbackIdentityHighSNRAllNSS(t *testing.T) {
	for _, mcsIdx := range []int{0, 9, 16, 27} { // 1, 2, 3, 4 streams
		cfg := channel.Config{Model: channel.Identity, SNRdB: 35, Seed: 42,
			TimingOffset: 300, TrailingSilence: 100}
		nss := mcsIdx/8 + 1
		res, psdu := loop(t, mcsIdx, nss, "zf", cfg, 120, int64(mcsIdx))
		if !bytes.Equal(res.PSDU, psdu) {
			t.Errorf("MCS%d: PSDU mismatch", mcsIdx)
		}
		if res.HTSIG.MCS != mcsIdx {
			t.Errorf("MCS%d: HT-SIG parsed MCS %d", mcsIdx, res.HTSIG.MCS)
		}
	}
}

func TestLoopbackAllMCSRayleigh(t *testing.T) {
	// Every MCS 0-15 through a flat Rayleigh channel at high SNR with one
	// extra receive antenna, MMSE detection.
	for mcsIdx := 0; mcsIdx <= 15; mcsIdx++ {
		nss := mcsIdx/8 + 1
		cfg := channel.Config{Model: channel.FlatRayleigh, SNRdB: 45,
			Seed: int64(900 + mcsIdx), TimingOffset: 250, TrailingSilence: 80}
		res, psdu := loop(t, mcsIdx, nss+1, "mmse", cfg, 100, int64(mcsIdx))
		if !bytes.Equal(res.PSDU, psdu) {
			t.Errorf("MCS%d over Rayleigh: PSDU mismatch", mcsIdx)
		}
	}
}

func TestLoopbackTGnMultipath(t *testing.T) {
	for _, model := range []channel.Model{channel.TGnB, channel.TGnC} {
		cfg := channel.Config{Model: model, SNRdB: 40, Seed: 7,
			TimingOffset: 400, TrailingSilence: 100}
		res, psdu := loop(t, 11, 2, "mmse", cfg, 300, 5)
		if !bytes.Equal(res.PSDU, psdu) {
			t.Errorf("%v: PSDU mismatch", model)
		}
	}
}

func TestLoopbackWithCFO(t *testing.T) {
	// ±40 kHz CFO (2 ppm at 2.4 GHz would be ~5 kHz; 40 kHz is a stress
	// test well inside the coarse estimator's ±625 kHz range).
	for _, cfo := range []float64{-40e3, 13e3, 40e3} {
		cfg := channel.Config{Model: channel.Identity, SNRdB: 30, Seed: 11,
			CFOHz: cfo, SampleRate: ofdm.SampleRate,
			TimingOffset: 300, TrailingSilence: 100}
		res, psdu := loop(t, 9, 2, "mmse", cfg, 150, 9)
		if !bytes.Equal(res.PSDU, psdu) {
			t.Errorf("CFO %g Hz: PSDU mismatch", cfo)
		}
		wantOmega := 2 * math.Pi * cfo / ofdm.SampleRate
		if math.Abs(res.CFO-wantOmega) > 2e-4 {
			t.Errorf("CFO %g Hz: estimated %g rad/sample, want %g", cfo, res.CFO, wantOmega)
		}
	}
}

func TestLoopbackSICDetector(t *testing.T) {
	cfg := channel.Config{Model: channel.FlatRayleigh, SNRdB: 35, Seed: 22,
		TimingOffset: 200, TrailingSilence: 60}
	res, psdu := loop(t, 12, 2, "sic", cfg, 200, 14)
	if !bytes.Equal(res.PSDU, psdu) {
		t.Error("SIC loopback failed")
	}
}

func TestLoopbackMLDetector(t *testing.T) {
	cfg := channel.Config{Model: channel.FlatRayleigh, SNRdB: 35, Seed: 21,
		TimingOffset: 200, TrailingSilence: 60}
	res, psdu := loop(t, 9, 2, "ml", cfg, 80, 13)
	if !bytes.Equal(res.PSDU, psdu) {
		t.Error("ML loopback failed")
	}
}

func TestSNREstimateTracksTruth(t *testing.T) {
	for _, snr := range []float64{10, 20, 30} {
		var acc float64
		const trials = 5
		for i := 0; i < trials; i++ {
			cfg := channel.Config{Model: channel.Identity, SNRdB: snr,
				Seed: int64(31 + i), TimingOffset: 280, TrailingSilence: 60}
			res, _ := loop(t, 8, 2, "zf", cfg, 100, int64(17+i))
			acc += res.SNRdB
		}
		got := acc / trials
		if math.Abs(got-snr) > 2.0 {
			t.Errorf("true SNR %g dB: estimated %g dB", snr, got)
		}
	}
}

func TestReceiverValidation(t *testing.T) {
	if _, err := NewReceiver(RxConfig{NumAntennas: 0}); err == nil {
		t.Error("0 antennas should fail")
	}
	if _, err := NewReceiver(RxConfig{NumAntennas: 2, Detector: "wat"}); err == nil {
		t.Error("bad detector should fail")
	}
	if _, err := NewReceiver(RxConfig{NumAntennas: 2, TimingBackoff: 16}); err == nil {
		t.Error("excessive backoff should fail")
	}
	rx, _ := NewReceiver(RxConfig{NumAntennas: 2})
	if _, err := rx.Receive([][]complex128{make([]complex128, 100)}); err == nil {
		t.Error("wrong stream count should fail")
	}
	// Pure noise: no packet.
	r := rand.New(rand.NewSource(3))
	noise := make([][]complex128, 2)
	for a := range noise {
		noise[a] = make([]complex128, 5000)
		for i := range noise[a] {
			noise[a][i] = complex(r.NormFloat64(), r.NormFloat64())
		}
	}
	if _, err := rx.Receive(noise); err == nil {
		t.Error("pure noise should not decode")
	}
}

func TestPhaseTrackingSurvivesResidualCFO(t *testing.T) {
	// A small CFO below the fine estimator's resolution leaves a residual
	// phase ramp that only pilot tracking can follow. Compare enabled vs
	// disabled tracking on a long packet.
	mkChan := func(seed int64) channel.Config {
		return channel.Config{Model: channel.Identity, SNRdB: 25, Seed: seed,
			CFOHz: 900, SampleRate: ofdm.SampleRate,
			TimingOffset: 300, TrailingSilence: 100}
	}
	r := rand.New(rand.NewSource(51))
	tx, _ := NewTransmitter(TxConfig{MCS: 11, ScramblerSeed: 0x35})
	psdu := randPSDU(r, 1200)
	burst, err := tx.Transmit(psdu)
	if err != nil {
		t.Fatal(err)
	}
	run := func(disable bool, seed int64) bool {
		cfg := mkChan(seed)
		cfg.NumTX, cfg.NumRX = 2, 2
		c, err := channel.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rxs, err := c.Apply(burst)
		if err != nil {
			t.Fatal(err)
		}
		rx, err := NewReceiver(RxConfig{NumAntennas: 2, Detector: "mmse", DisablePhaseTracking: disable})
		if err != nil {
			t.Fatal(err)
		}
		res, err := rx.Receive(rxs)
		if err != nil {
			return false
		}
		return bytes.Equal(res.PSDU, psdu)
	}
	okTracked, okUntracked := 0, 0
	const trials = 6
	for i := int64(0); i < trials; i++ {
		if run(false, 100+i) {
			okTracked++
		}
		if run(true, 100+i) {
			okUntracked++
		}
	}
	if okTracked < trials {
		t.Errorf("with tracking: only %d/%d packets decoded", okTracked, trials)
	}
	if okUntracked >= okTracked {
		t.Errorf("tracking disabled decoded %d ≥ enabled %d; ablation shows no benefit", okUntracked, okTracked)
	}
}

func TestCPETraceReflectsResidualCFO(t *testing.T) {
	cfg := channel.Config{Model: channel.Identity, SNRdB: 30, Seed: 61,
		CFOHz: 500, SampleRate: ofdm.SampleRate, TimingOffset: 300, TrailingSilence: 80}
	res, psdu := loop(t, 10, 2, "mmse", cfg, 800, 23)
	if !bytes.Equal(res.PSDU, psdu) {
		t.Fatal("decode failed")
	}
	if len(res.CPETrace) < 10 {
		t.Fatalf("CPE trace too short: %d", len(res.CPETrace))
	}
	// Residual CFO makes CPE drift monotonically; the last CPE should be
	// larger in magnitude than the first (some estimation noise allowed).
	first, last := res.CPETrace[0], res.CPETrace[len(res.CPETrace)-1]
	if math.Abs(last) <= math.Abs(first) {
		t.Logf("CPE trace: first %g last %g (drift expected, tolerated)", first, last)
	}
}

func TestDescrambleRecoversAnySeed(t *testing.T) {
	for seed := byte(1); seed != 0 && seed <= 0x7F; seed++ {
		tx, err := NewTransmitter(TxConfig{MCS: 0, ScramblerSeed: seed})
		if err != nil {
			t.Fatal(err)
		}
		bits := tx.assembleDataBits([]byte{0xAB, 0xCD})
		out := descramble(bits)
		for i := 0; i < 16; i++ {
			if out[i] != 0 {
				t.Fatalf("seed %#x: SERVICE bit %d = %d after descramble", seed, i, out[i])
			}
		}
	}
}

func BenchmarkTransmitMCS15(b *testing.B) {
	tx, err := NewTransmitter(TxConfig{MCS: 15})
	if err != nil {
		b.Fatal(err)
	}
	psdu := make([]byte, 1500)
	b.ReportAllocs()
	b.SetBytes(1500)
	for i := 0; i < b.N; i++ {
		if _, err := tx.Transmit(psdu); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReceiveMCS15(b *testing.B) {
	tx, _ := NewTransmitter(TxConfig{MCS: 15})
	psdu := make([]byte, 1500)
	burst, _ := tx.Transmit(psdu)
	c, _ := channel.New(channel.Config{NumTX: 2, NumRX: 2, Model: channel.Identity,
		SNRdB: 30, Seed: 1, TimingOffset: 100, TrailingSilence: 50})
	rxs, _ := c.Apply(burst)
	rx, _ := NewReceiver(RxConfig{NumAntennas: 2, Detector: "mmse"})
	b.ReportAllocs()
	b.SetBytes(1500)
	for i := 0; i < b.N; i++ {
		// Copy because Receive mutates (CFO correction).
		cp := make([][]complex128, len(rxs))
		for a := range rxs {
			cp[a] = append([]complex128(nil), rxs[a]...)
		}
		if _, err := rx.Receive(cp); err != nil {
			b.Fatal(err)
		}
	}
}
