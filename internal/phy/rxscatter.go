package phy

import (
	"fmt"

	"repro/internal/fec"
	"repro/internal/mimo"
)

// A scatter table fuses deinterleave → stream merge → depuncture into one
// indexed store: scat[iss][k·N_BPSCS+b] is the offset within a symbol's
// 2·N_DBPS-wide depunctured mother-code span where the LLR the detector
// produced for stream iss, data tone k, bit b must land. The batch data
// path writes each detected LLR straight to its Viterbi branch-metric slot;
// positions never written are exactly the punctured positions, which the
// caller pre-zeroes.
//
// Per-symbol decomposition is exact because every HT MCS satisfies two
// alignment properties: the stream merger's round-robin block size divides
// N_CBPSS (so symbol boundaries are merge-round boundaries), and the
// puncture period divides N_DBPS (so every symbol starts at puncture
// phase 0). buildScatter verifies both by construction — it traces real
// tagged values through the production transforms rather than re-deriving
// the index algebra, so the table cannot drift from the scalar path.
func buildScatter(mcs MCS, ilv []*fec.Interleaver, parser *mimo.StreamParser) ([][]int32, error) {
	nss := mcs.NSS
	ncbpss := mcs.NCBPSS()
	ndbps := mcs.NDBPS()

	// Tag every (stream, interleaved position) with a unique nonzero ID and
	// run one symbol through the scalar chain's exact transforms.
	streams := make([][]float64, nss)
	deint := make([][]float64, nss)
	for iss := 0; iss < nss; iss++ {
		streams[iss] = make([]float64, ncbpss)
		deint[iss] = make([]float64, ncbpss)
		for j := 0; j < ncbpss; j++ {
			streams[iss][j] = float64(iss*ncbpss + j + 1)
		}
		ilv[iss].DeinterleaveLLR(deint[iss], streams[iss])
	}
	merged, err := parser.MergeLLR(deint)
	if err != nil {
		return nil, err
	}
	dep, err := fec.Depuncture(merged, ndbps, mcs.Rate)
	if err != nil {
		return nil, err
	}

	scat := make([][]int32, nss)
	for iss := range scat {
		scat[iss] = make([]int32, ncbpss)
		for j := range scat[iss] {
			scat[iss][j] = -1
		}
	}
	seen := 0
	for pos, v := range dep {
		if v == 0 {
			continue // punctured slot
		}
		id := int(v) - 1
		scat[id/ncbpss][id%ncbpss] = int32(pos)
		seen++
	}
	// Every surviving coded bit must have landed exactly once; N_CBPS
	// surviving positions per symbol is the defining identity of the rate.
	if seen != mcs.NCBPS() {
		return nil, fmt.Errorf("phy: scatter trace for MCS %d placed %d of %d coded bits", mcs.Index, seen, mcs.NCBPS())
	}
	for iss := range scat {
		for j, p := range scat[iss] {
			if p < 0 {
				return nil, fmt.Errorf("phy: scatter trace for MCS %d lost stream %d position %d", mcs.Index, iss, j)
			}
		}
	}
	return scat, nil
}

// scatterTable returns the cached fused deinterleave/merge/depuncture table
// for the MCS, building it on first use. The cache is bounded by the MCS
// table size.
func (r *Receiver) scatterTable(mcs MCS, ilv []*fec.Interleaver, parser *mimo.StreamParser) ([][]int32, error) {
	if s, ok := r.scatterCache[mcs.Index]; ok {
		return s, nil
	}
	s, err := buildScatter(mcs, ilv, parser)
	if err != nil {
		return nil, err
	}
	if r.scatterCache == nil {
		r.scatterCache = make(map[int][][]int32)
	}
	r.scatterCache[mcs.Index] = s
	return s, nil
}
