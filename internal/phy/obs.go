package phy

import (
	"errors"

	"repro/internal/fec"
	"repro/internal/obs"
	"repro/internal/obs/flight"
)

// RxObs is the receiver's telemetry surface: the paper's headline
// measurements (per-packet SNR, BER, PER) as live series plus the
// per-packet stage trace. Constructed over an obs registry and tracer and
// attached with Receiver.SetObs; a nil *RxObs (the default) keeps every
// hook in the decode path an allocation-free no-op.
type RxObs struct {
	tracer *obs.Tracer

	// flight, when set, receives per-packet PHY evidence; pending is the
	// evidence under construction for the packet currently in the chain,
	// finalized when its terminal verdict arrives (PacketResult or a decode
	// error). Both stay nil on the disabled path, which keeps every capture
	// hook allocation-free.
	flight  *flight.Recorder
	pending *flight.Evidence

	snr     *obs.Gauge
	snrDist *obs.Histogram
	cfoHz   *obs.Gauge

	prefecBER   *obs.Gauge
	prefecErrs  *obs.Counter
	prefecBits  *obs.Counter
	postfecBER  *obs.Gauge
	postfecErrs *obs.Counter
	postfecBits *obs.Counter
	per         *obs.Gauge

	pktOK     *obs.Counter
	pktFCS    *obs.Counter
	pktSync   *obs.Counter
	pktSIG    *obs.Counter
	pktDecode *obs.Counter
}

// NewRxObs registers the receiver metric families in reg and binds the
// trace ring. Either argument may be nil: a nil registry yields standalone
// instruments (still counting, not exposed), a nil tracer disables spans.
func NewRxObs(reg *obs.Registry, tracer *obs.Tracer) *RxObs {
	pkt := func(result string) *obs.Counter {
		return reg.Counter("mimonet_rx_packets_total",
			"packets by terminal outcome", obs.Label{Key: "result", Value: result})
	}
	return &RxObs{
		tracer: tracer,
		snr: reg.Gauge("mimonet_rx_snr_db",
			"data-aided SNR estimate of the last decoded packet (dB)"),
		snrDist: reg.Histogram("mimonet_rx_snr_db_distribution",
			"distribution of per-packet SNR estimates (dB)",
			[]float64{0, 5, 10, 15, 20, 25, 30, 35, 40}),
		cfoHz: reg.Gauge("mimonet_rx_cfo_hz",
			"corrected carrier frequency offset of the last packet at 20 Msps (Hz)"),
		prefecBER: reg.Gauge("mimonet_rx_prefec_ber",
			"pre-FEC bit error rate of the last packet, measured against the re-encoded Viterbi decision"),
		prefecErrs: reg.Counter("mimonet_rx_prefec_bit_errors_total",
			"pre-FEC coded bit errors against the re-encoded Viterbi decision"),
		prefecBits: reg.Counter("mimonet_rx_prefec_bits_total",
			"pre-FEC coded bits compared"),
		postfecBER: reg.Gauge("mimonet_rx_postfec_ber",
			"running post-FEC residual BER bound: FCS-failed packets count every payload bit errored"),
		postfecErrs: reg.Counter("mimonet_rx_postfec_bit_errors_total",
			"post-FEC payload bit errors (pessimistic: all bits of FCS-failed packets)"),
		postfecBits: reg.Counter("mimonet_rx_postfec_bits_total",
			"post-FEC payload bits delivered to the FCS check"),
		per: reg.Gauge("mimonet_rx_per",
			"running packet error rate across all receive attempts"),
		pktOK:     pkt("ok"),
		pktFCS:    pkt("fcs_bad"),
		pktSync:   pkt("sync_fail"),
		pktSIG:    pkt("sig_fail"),
		pktDecode: pkt("decode_fail"),
	}
}

// SetFlight attaches a flight recorder for per-packet evidence capture. Nil
// (the default) disables capture without touching the decode path.
func (o *RxObs) SetFlight(rec *flight.Recorder) {
	if o == nil {
		return
	}
	o.flight = rec
}

// flightOn reports whether evidence capture should run for this packet.
func (o *RxObs) flightOn() bool { return o != nil && o.flight.Enabled() }

// beginEvidence opens the pending evidence record at the sync point,
// capturing the raw IQ window around it before CFO correction mutates the
// buffers. syncHalf bounds the window to ±syncHalf samples per chain.
func (o *RxObs) beginEvidence(packetID uint64, rx [][]complex128, syncIdx int) {
	if !o.flightOn() {
		return
	}
	o.pending = &flight.Evidence{
		PacketID:  packetID,
		SyncIndex: syncIdx,
		SyncIQ:    flight.CaptureIQ(rx, syncIdx, syncHalfWindow),
	}
}

// evidence returns the pending record, nil when capture is off — callers
// nil-check rather than re-testing flightOn.
func (o *RxObs) evidence() *flight.Evidence {
	if o == nil {
		return nil
	}
	return o.pending
}

// finishEvidence stamps the terminal verdict and trace onto the pending
// evidence and hands it to the recorder, which may fire a trigger dump.
func (o *RxObs) finishEvidence(verdict string, tr *obs.Trace) {
	if o == nil || o.pending == nil {
		return
	}
	ev := o.pending
	o.pending = nil
	ev.Verdict = verdict
	ev.Trace = tr.Snapshot()
	o.flight.Record(*ev)
}

// verdictFor maps a Receive error onto the flight-recorder verdict scheme.
func verdictFor(err error) string {
	switch {
	case errors.Is(err, ErrNoPacket):
		return flight.VerdictNoPacket
	case errors.Is(err, ErrBadSIG) || errors.Is(err, ErrSIGBounds):
		return flight.VerdictBadSIG
	default:
		return flight.VerdictDecode
	}
}

// syncHalfWindow is the evidence IQ half-window around the sync point: wide
// enough to cover the detection transient and the STF tail on both sides.
const syncHalfWindow = 64

// ActiveTrace returns the trace of the packet most recently entered into
// the chain, so the caller layer (MAC CRC check) can append its span.
func (o *RxObs) ActiveTrace() *obs.Trace {
	if o == nil {
		return nil
	}
	return o.tracer.Active()
}

// startTrace opens a new packet trace (nil when tracing is off).
func (o *RxObs) startTrace() *obs.Trace {
	if o == nil {
		return nil
	}
	return o.tracer.Start()
}

// recordFailure classifies a Receive error into the outcome counters and
// refreshes the PER series.
func (o *RxObs) recordFailure(err error) {
	if o == nil {
		return
	}
	switch {
	case errors.Is(err, ErrNoPacket):
		o.pktSync.Inc()
	case errors.Is(err, ErrBadSIG) || errors.Is(err, ErrSIGBounds):
		o.pktSIG.Inc()
	default:
		o.pktDecode.Inc()
	}
	o.updatePER()
}

// packetDecoded records the per-packet signal-quality series after a
// successful PHY decode (the FCS verdict arrives later via PacketResult).
func (o *RxObs) packetDecoded(res *RxResult) {
	if o == nil {
		return
	}
	o.snr.Set(res.SNRdB)
	o.snrDist.Observe(res.SNRdB)
	o.cfoHz.Set(res.CFO * sampleRateHz / (2 * pi))
	if ev := o.pending; ev != nil {
		ev.SNRdB = res.SNRdB
		ev.CFOHz = res.CFO * sampleRateHz / (2 * pi)
		ev.MCS = int(res.HTSIG.MCS)
	}
}

// prefec folds one packet's re-encode comparison into the pre-FEC BER
// series.
func (o *RxObs) prefec(errs, bits int) {
	if o == nil || bits == 0 {
		return
	}
	o.prefecErrs.Add(int64(errs))
	o.prefecBits.Add(int64(bits))
	o.prefecBER.Set(float64(errs) / float64(bits))
}

// PacketResult records the terminal outcome of a decoded packet: the MAC
// FCS verdict over a PSDU of psduBytes. It closes the packet's trace (the
// caller opens the crc span around its FCS check) and refreshes the PER and
// post-FEC BER series. The post-FEC accounting is the repo's pessimistic
// convention: a failed FCS counts every payload bit as errored, so the
// series is an upper bound that needs no transmit reference.
func (o *RxObs) PacketResult(ok bool, psduBytes int) {
	if o == nil {
		return
	}
	bits := int64(8 * psduBytes)
	o.postfecBits.Add(bits)
	if ok {
		o.pktOK.Inc()
	} else {
		o.pktFCS.Inc()
		o.postfecErrs.Add(bits)
	}
	if total := o.postfecBits.Value(); total > 0 {
		o.postfecBER.Set(float64(o.postfecErrs.Value()) / float64(total))
	}
	o.updatePER()
	tr := o.tracer.Active()
	tr.Finish(ok)
	verdict := flight.VerdictOK
	if !ok {
		verdict = flight.VerdictCRCFail
	}
	o.finishEvidence(verdict, tr)
}

func (o *RxObs) updatePER() {
	fails := o.pktFCS.Value() + o.pktSync.Value() + o.pktSIG.Value() + o.pktDecode.Value()
	total := fails + o.pktOK.Value()
	if total > 0 {
		o.per.Set(float64(fails) / float64(total))
	}
}

// preFECCompare re-encodes the Viterbi decision and counts disagreements
// with the hard decisions of the received coded LLR stream — the standard
// receiver-side channel-BER estimator, exact whenever the decoder converged
// to the transmitted sequence (FCS-verified packets). Zero LLRs (erasures)
// are skipped.
func preFECCompare(decoded []byte, merged []float64, rate fec.Rate) (errs, bits int) {
	coded := fec.Encode(decoded, rate)
	n := len(coded)
	if len(merged) < n {
		n = len(merged)
	}
	for i := 0; i < n; i++ {
		llr := merged[i]
		if llr == 0 {
			continue
		}
		hard := byte(0)
		if llr < 0 {
			hard = 1
		}
		bits++
		if hard != coded[i] {
			errs++
		}
	}
	return errs, bits
}

// preFECCompareMother is preFECCompare for the batch data path, which never
// materialises the merged (pre-depuncture) stream: it compares against the
// depunctured mother-code LLRs instead, re-encoding at rate 1/2. Punctured
// positions are zeros in dep — exactly the erasures preFECCompare skips in
// merged — so both variants count the same surviving coded bits.
func preFECCompareMother(decoded []byte, dep []float64) (errs, bits int) {
	coded := fec.Encode(decoded, fec.Rate1_2)
	n := len(coded)
	if len(dep) < n {
		n = len(dep)
	}
	for i := 0; i < n; i++ {
		llr := dep[i]
		if llr == 0 {
			continue
		}
		hard := byte(0)
		if llr < 0 {
			hard = 1
		}
		bits++
		if hard != coded[i] {
			errs++
		}
	}
	return errs, bits
}

// sampleRateHz is the nominal front-end rate the CFO gauge reports against.
const sampleRateHz = 20e6

const pi = 3.141592653589793
