package phy

import (
	"fmt"

	"repro/internal/chanest"
	"repro/internal/cmatrix"
	"repro/internal/fec"
	"repro/internal/metrics"
	"repro/internal/mimo"
	"repro/internal/modem"
	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/ofdm"
)

// streamCodecs returns the per-stream interleavers and the stream parser for
// the MCS, cached across packets (both are immutable after construction).
func (r *Receiver) streamCodecs(mcs MCS) ([]*fec.Interleaver, *mimo.StreamParser, error) {
	if ilv, ok := r.ilvCache[mcs.Index]; ok {
		return ilv, r.parserCache[mcs.Index], nil
	}
	ilv := make([]*fec.Interleaver, mcs.NSS)
	for iss := range ilv {
		il, err := fec.NewHTInterleaver(mcs.NBPSCS(), mcs.NSS, iss)
		if err != nil {
			return nil, nil, err
		}
		ilv[iss] = il
	}
	parser, err := mimo.NewStreamParser(mcs.NSS, mcs.NBPSCS())
	if err != nil {
		return nil, nil, err
	}
	if r.ilvCache == nil {
		r.ilvCache = make(map[int][]*fec.Interleaver)
		r.parserCache = make(map[int]*mimo.StreamParser)
	}
	r.ilvCache[mcs.Index] = ilv
	r.parserCache[mcs.Index] = parser
	return ilv, parser, nil
}

// dataScalar is the symbol-at-a-time data phase: demodulate, phase-correct,
// detect, deinterleave and merge one OFDM symbol at a time. It remains the
// reference chain — the batch path must match its depunctured LLR stream
// bit for bit — and the only chain supporting decision-directed channel
// tracking and flight-evidence EVM capture, both of which need per-symbol
// sequencing. Returns the depunctured LLRs (owned by r.depBuf) and the merged
// pre-depuncture stream for pre-FEC accounting.
func (r *Receiver) dataScalar(ctx *dataCtx, tr *obs.Trace) ([]float64, []float64, error) {
	rx := ctx.rx
	mcs := ctx.mcs
	nSym := ctx.nSym
	detector := ctx.detector
	tracker := ctx.tracker
	htEst := ctx.htEst
	ilv, parser := ctx.ilv, ctx.parser
	result := ctx.result

	streamLLR := make([][]float64, mcs.NSS)
	perSymbol := make([][]float64, mcs.NSS)
	deinterleaved := make([]float64, mcs.NCBPSS())
	nd := ofdm.HTToneMap.NumData()
	var trackMapper *modem.Mapper
	var dataH []*cmatrix.Matrix
	if r.cfg.TrackChannel {
		trackMapper = modem.NewMapper(mcs.Scheme)
		dataH = htEst.DataMatrices()
	}
	dataTones := make([][]complex128, len(rx))
	pilotTones := make([][]complex128, len(rx))
	y := make([]complex128, len(rx))
	// Per-subcarrier EVM accumulators, decision-directed: allocated only when
	// flight evidence is being captured for this packet.
	var evAcc []metrics.EVM
	var evMapper *modem.Mapper
	var evH []*cmatrix.Matrix
	var evBits []byte
	var evX []complex128
	if r.obs.evidence() != nil {
		evAcc = make([]metrics.EVM, nd)
		evMapper = modem.NewMapper(mcs.Scheme)
		evH = htEst.DataMatrices()
		evBits = make([]byte, mcs.NBPSCS())
		evX = make([]complex128, mcs.NSS)
	}
	for n := 0; n < nSym; n++ {
		// Demod (FFT + pilot CPE) and detection interleave per symbol; the
		// trace accumulates each stage's share across the whole data field.
		tr.Begin(obs.StageDemod)
		off := ctx.dataStart + n*ctx.dataSymLen + ctx.dataCP - ctx.dataBO
		for a := range rx {
			if off+ofdm.FFTSize > len(rx[a]) {
				return nil, nil, fmt.Errorf("phy: stream ends inside data symbol %d", n)
			}
			var derr error
			dataTones[a], pilotTones[a], derr = r.htDem.Symbol(rx[a][off:off+ofdm.FFTSize], dataTones[a][:0], pilotTones[a][:0])
			if derr != nil {
				return nil, nil, derr
			}
		}
		// Pilot-based common phase error correction.
		txPilots := make([][]complex128, mcs.NSS)
		for iss := 0; iss < mcs.NSS; iss++ {
			p, perr := ofdm.HTPilots(mcs.NSS, iss, n, 3)
			if perr != nil {
				return nil, nil, perr
			}
			txPilots[iss] = p
		}
		if tracker != nil {
			cpe, terr := tracker.Estimate(pilotTones, txPilots)
			if terr == nil {
				chanest.Correct(dataTones, cpe)
				result.CPETrace = append(result.CPETrace, cpe)
			}
		}
		// Per-subcarrier MIMO detection into per-stream LLRs.
		tr.Begin(obs.StageDetector)
		for iss := range perSymbol {
			perSymbol[iss] = perSymbol[iss][:0]
		}
		for k := 0; k < nd; k++ {
			for a := range rx {
				y[a] = dataTones[a][k]
			}
			var derr error
			perSymbol, derr = detector.Detect(perSymbol, k, y)
			if derr != nil {
				return nil, nil, derr
			}
		}
		if evAcc != nil {
			accumulateEVM(evAcc, perSymbol, dataTones, evH, evMapper, evBits, evX, mcs.NSS, mcs.NBPSCS())
		}
		// Decision-directed LMS channel tracking: slice each stream's
		// detected bits back to constellation points and nudge Ĥ(k)
		// toward the error direction, then refresh the detector weights.
		if r.cfg.TrackChannel {
			nbpsc := mcs.NBPSCS()
			bits := make([]byte, nbpsc)
			xhat := make([]complex128, mcs.NSS)
			mu := complex(r.cfg.TrackStep, 0)
			for k := 0; k < nd; k++ {
				var norm float64
				for iss := 0; iss < mcs.NSS; iss++ {
					for b := 0; b < nbpsc; b++ {
						bits[b] = 0
						if perSymbol[iss][k*nbpsc+b] < 0 {
							bits[b] = 1
						}
					}
					xhat[iss] = trackMapper.MapOne(bits)
					norm += real(xhat[iss])*real(xhat[iss]) + imag(xhat[iss])*imag(xhat[iss])
				}
				if norm == 0 {
					continue
				}
				h := dataH[k]
				for a := range rx {
					// e_a = y_a − Σ_s H[a][s]·x̂_s
					var est complex128
					for s := 0; s < mcs.NSS; s++ {
						est += h.At(a, s) * xhat[s]
					}
					e := dataTones[a][k] - est
					for s := 0; s < mcs.NSS; s++ {
						h.Set(a, s, h.At(a, s)+mu*e*conj(xhat[s])/complex(norm, 0))
					}
				}
			}
			if err := detector.Prepare(dataH, ctx.noiseVar); err != nil {
				return nil, nil, err
			}
		}
		// Deinterleave each stream's symbol worth of LLRs.
		for iss := 0; iss < mcs.NSS; iss++ {
			ilv[iss].DeinterleaveLLR(deinterleaved, perSymbol[iss])
			streamLLR[iss] = append(streamLLR[iss], deinterleaved...)
		}
	}

	// Merge streams and depuncture into the shared decode buffer.
	tr.Begin(obs.StageViterbi)
	merged, err := parser.MergeLLR(streamLLR)
	if err != nil {
		return nil, nil, err
	}
	if ev := r.obs.evidence(); ev != nil {
		ev.EVM = flight.EVMBins(evAcc, htDataSubcarriers)
		ev.SoftBits = flight.SoftStats(merged)
	}
	dataBits := nSym * mcs.NDBPS()
	dep, err := fec.DepunctureInto(r.depBuf, merged, dataBits, mcs.Rate)
	if err != nil {
		return nil, nil, err
	}
	r.depBuf = dep
	return dep, merged, nil
}
