package phy

import (
	"fmt"
	"math/bits"
	"sync/atomic"

	"repro/internal/chanest"
	"repro/internal/mimo"
	"repro/internal/montecarlo"
	"repro/internal/obs"
	"repro/internal/ofdm"
)

// batchShardSymbols is the fixed shard granularity of the in-packet
// parallel passes: shard boundaries depend only on the symbol count, never
// on the worker count, so the work decomposition — and with it every output
// write location — is identical at any parallelism level. This is the same
// deterministic-sharding discipline internal/montecarlo imposes on the
// experiment sweeps, applied inside a single packet.
const batchShardSymbols = 4

// bufPool hands out packet-lifetime scratch slices in power-of-two size
// classes. Buffers are taken at the start of the data phase and returned at
// the end, so after the first packet of a steady-state link every class is
// warm and the data phase performs no slice allocation at all. The pool
// belongs to a single receiver and inherits its no-concurrent-use contract.
type bufPool struct {
	c128 [33][][]complex128
	f64  [33][][]float64
}

// sizeClass returns the pool class for a request of n elements: the
// smallest power-of-two exponent with 1<<class ≥ n.
func sizeClass(n int) int { return bits.Len(uint(n - 1)) }

func (p *bufPool) getC128(n int) []complex128 {
	if n <= 0 {
		return nil
	}
	c := sizeClass(n)
	if l := p.c128[c]; len(l) > 0 {
		s := l[len(l)-1]
		p.c128[c] = l[:len(l)-1]
		return s[:n]
	}
	return make([]complex128, n, 1<<c)
}

func (p *bufPool) putC128(s []complex128) {
	if cap(s) == 0 {
		return
	}
	c := bits.Len(uint(cap(s))) - 1 // floor: slabs in class c always hold ≥ 1<<c
	p.c128[c] = append(p.c128[c], s[:0])
}

func (p *bufPool) getF64(n int) []float64 {
	if n <= 0 {
		return nil
	}
	c := sizeClass(n)
	if l := p.f64[c]; len(l) > 0 {
		s := l[len(l)-1]
		p.f64[c] = l[:len(l)-1]
		return s[:n]
	}
	return make([]float64, n, 1<<c)
}

func (p *bufPool) putF64(s []float64) {
	if cap(s) == 0 {
		return
	}
	c := bits.Len(uint(cap(s))) - 1
	p.f64[c] = append(p.f64[c], s[:0])
}

// rxWorker is the private state of one batch-pass worker: an OFDM
// demodulator (own FFT scratch, shared twiddle plan), the per-subcarrier
// received vector, the detector's per-goroutine scratch and the
// stream-major LLR output of one subcarrier. Workers persist on the
// receiver across packets.
type rxWorker struct {
	dem      *ofdm.Demodulator
	y        []complex128
	out      []float64
	det      *mimo.DetectScratch
	detOwner mimo.BatchDetector
}

// ensureWorkers sizes the receiver's persistent worker set for n workers
// serving the given detector and antenna/stream geometry.
func (r *Receiver) ensureWorkers(n, nRx, llrLen int, det mimo.BatchDetector) {
	for len(r.workers) < n {
		r.workers = append(r.workers, &rxWorker{dem: ofdm.NewDemodulator(ofdm.HTToneMap)})
	}
	for _, w := range r.workers[:n] {
		if cap(w.y) < nRx {
			w.y = make([]complex128, nRx)
		}
		w.y = w.y[:nRx]
		if cap(w.out) < llrLen {
			w.out = make([]float64, llrLen)
		}
		w.out = w.out[:llrLen]
		if w.detOwner != det {
			w.det = det.NewScratch()
			w.detOwner = det
		}
	}
}

// dataBatch is the block-batched data phase: pass A FFTs every
// (antenna × symbol) window into one packet-wide tone block, pass B runs
// the (inherently sequential, but cheap) pilot CPE correction symbol by
// symbol, and pass C shards MIMO detection across symbols, scattering each
// LLR straight into its depunctured mother-code slot for the Viterbi
// decoder. Passes A and C run on montecarlo.Run with fixed-size symbol
// shards writing disjoint output regions, so the result is bit-identical to
// the scalar chain at any worker count. The returned dep slice is owned by
// r.depBuf.
func (r *Receiver) dataBatch(ctx *dataCtx, tr *obs.Trace) ([]float64, error) {
	mcs := ctx.mcs
	nRx := len(ctx.rx)
	nd := ofdm.HTToneMap.NumData()
	np := ofdm.NumPilots
	nss, nbpsc := mcs.NSS, mcs.NBPSCS()
	ndbps := mcs.NDBPS()
	nSym := ctx.nSym
	detector := ctx.batchDet

	scat, err := r.scatterTable(mcs, ctx.ilv, ctx.parser)
	if err != nil {
		return nil, err
	}

	// Packet-wide tone and pilot blocks from the pool, one per antenna:
	// tones[a][n*nd+k] is symbol n's data tone k.
	if cap(r.tones) < nRx {
		r.tones = make([][]complex128, nRx)
		r.pilots = make([][]complex128, nRx)
	}
	tones := r.tones[:nRx]
	pilots := r.pilots[:nRx]
	for a := 0; a < nRx; a++ {
		tones[a] = r.pool.getC128(nSym * nd)
		pilots[a] = r.pool.getC128(nSym * np)
	}
	defer func() {
		for a := 0; a < nRx; a++ {
			r.pool.putC128(tones[a])
			r.pool.putC128(pilots[a])
			tones[a], pilots[a] = nil, nil
		}
	}()

	shards := (nSym + batchShardSymbols - 1) / batchShardSymbols
	nw := montecarlo.Workers(r.cfg.Workers)
	if nw > shards {
		nw = shards
	}
	r.ensureWorkers(nw, nRx, nss*nbpsc, detector)
	// Workers draw their persistent state by index; montecarlo calls
	// newWorker exactly once per worker goroutine.
	var widx atomic.Int32
	newW := func() (*rxWorker, error) { return r.workers[int(widx.Add(1))-1], nil }

	// --- Pass A: FFT whole symbol blocks -------------------------------
	tr.Begin(obs.StageDemod)
	rx, dataStart, dataSymLen, dataCP, dataBO := ctx.rx, ctx.dataStart, ctx.dataSymLen, ctx.dataCP, ctx.dataBO
	//mimonet:hot
	if _, err := montecarlo.Run(shards, nw, newW, func(w *rxWorker, shard int) (struct{}, error) {
		lo := shard * batchShardSymbols
		hi := min(lo+batchShardSymbols, nSym)
		for n := lo; n < hi; n++ {
			off := dataStart + n*dataSymLen + dataCP - dataBO
			for a := 0; a < nRx; a++ {
				if off < 0 || off+ofdm.FFTSize > len(rx[a]) {
					return struct{}{}, fmt.Errorf("phy: stream ends inside data symbol %d", n)
				}
				if derr := w.dem.SymbolTo(tones[a][n*nd:(n+1)*nd], pilots[a][n*np:(n+1)*np], rx[a][off:off+ofdm.FFTSize]); derr != nil {
					return struct{}{}, derr
				}
			}
		}
		return struct{}{}, nil
	}); err != nil {
		return nil, err
	}

	// --- Pass B: pilot common-phase-error correction, in symbol order ---
	// The polarity sequence and CPE trace are order-dependent, so this pass
	// stays serial; it is a 4-pilot estimate plus a 52-tone rotation per
	// symbol, a sliver of the data-phase cost.
	if ctx.tracker != nil {
		if cap(r.pilotViews) < nRx {
			r.pilotViews = make([][]complex128, nRx)
			r.toneViews = make([][]complex128, nRx)
		}
		pilotViews := r.pilotViews[:nRx]
		toneViews := r.toneViews[:nRx]
		r.ensureTxPilots(nss)
		for n := 0; n < nSym; n++ {
			for a := 0; a < nRx; a++ {
				pilotViews[a] = pilots[a][n*np : (n+1)*np]
			}
			for iss := 0; iss < nss; iss++ {
				if perr := ofdm.HTPilotsInto(r.txPilots[iss], nss, iss, n, 3); perr != nil {
					return nil, perr
				}
			}
			cpe, terr := ctx.tracker.Estimate(pilotViews, r.txPilots)
			if terr == nil {
				for a := 0; a < nRx; a++ {
					toneViews[a] = tones[a][n*nd : (n+1)*nd]
				}
				chanest.Correct(toneViews, cpe)
				ctx.result.CPETrace = append(ctx.result.CPETrace, cpe)
			}
		}
	}

	// --- Pass C: sharded per-subcarrier detection + fused scatter -------
	tr.Begin(obs.StageDetector)
	if cap(r.depBuf) < 2*ndbps*nSym {
		r.depBuf = make([]float64, 2*ndbps*nSym)
	}
	dep := r.depBuf[:2*ndbps*nSym]
	for i := range dep {
		dep[i] = 0 // punctured slots stay zero (erasures)
	}
	widx.Store(0)
	//mimonet:hot
	if _, err := montecarlo.Run(shards, nw, newW, func(w *rxWorker, shard int) (struct{}, error) {
		lo := shard * batchShardSymbols
		hi := min(lo+batchShardSymbols, nSym)
		for n := lo; n < hi; n++ {
			symBase := 2 * ndbps * n
			for k := 0; k < nd; k++ {
				for a := 0; a < nRx; a++ {
					w.y[a] = tones[a][n*nd+k]
				}
				if derr := detector.DetectTo(w.det, w.out, k, w.y); derr != nil {
					return struct{}{}, derr
				}
				kb := k * nbpsc
				for iss := 0; iss < nss; iss++ {
					row := scat[iss]
					ob := iss * nbpsc
					for b := 0; b < nbpsc; b++ {
						dep[symBase+int(row[kb+b])] = w.out[ob+b]
					}
				}
			}
		}
		return struct{}{}, nil
	}); err != nil {
		return nil, err
	}
	r.depBuf = dep
	return dep, nil
}

// ensureTxPilots sizes the reusable per-stream pilot reference slices.
func (r *Receiver) ensureTxPilots(nss int) {
	if len(r.txPilots) >= nss {
		r.txPilots = r.txPilots[:nss]
		return
	}
	r.txPilots = make([][]complex128, nss)
	back := make([]complex128, nss*ofdm.NumPilots)
	for iss := 0; iss < nss; iss++ {
		r.txPilots[iss] = back[iss*ofdm.NumPilots : (iss+1)*ofdm.NumPilots]
	}
}
