// Package phy assembles the complete IEEE 802.11n HT-mixed-format physical
// layer of the paper's MIMONet transceiver: the transmit chain (scrambling,
// BCC encoding, stream parsing, interleaving, constellation mapping, pilot
// insertion, OFDM modulation, cyclic shift diversity and the full preamble)
// and the receive chain (packet detection, synchronization, channel
// estimation, MIMO detection, phase tracking, soft-decision decoding and
// SIG-field parsing).
package phy

import (
	"fmt"

	"repro/internal/fec"
	"repro/internal/modem"
	"repro/internal/ofdm"
)

// MCS describes one 20 MHz, long-guard-interval, equal-modulation HT
// modulation and coding scheme (IEEE 802.11-2012 Tables 20-30..20-33).
type MCS struct {
	Index  int
	NSS    int
	Scheme modem.Scheme
	Rate   fec.Rate
}

// Lookup returns the MCS for index 0-31 (N_SS = index/8 + 1).
func Lookup(index int) (MCS, error) {
	if index < 0 || index > 31 {
		return MCS{}, fmt.Errorf("phy: MCS %d outside the supported 0-31 (equal modulation) range", index)
	}
	base := index % 8
	schemes := []modem.Scheme{
		modem.BPSK, modem.QPSK, modem.QPSK, modem.QAM16,
		modem.QAM16, modem.QAM64, modem.QAM64, modem.QAM64,
	}
	rates := []fec.Rate{
		fec.Rate1_2, fec.Rate1_2, fec.Rate3_4, fec.Rate1_2,
		fec.Rate3_4, fec.Rate2_3, fec.Rate3_4, fec.Rate5_6,
	}
	return MCS{
		Index:  index,
		NSS:    index/8 + 1,
		Scheme: schemes[base],
		Rate:   rates[base],
	}, nil
}

// NBPSCS returns the coded bits per subcarrier per spatial stream.
func (m MCS) NBPSCS() int { return m.Scheme.BitsPerSymbol() }

// NCBPSS returns the coded bits per OFDM symbol per spatial stream
// (52 data tones at 20 MHz).
func (m MCS) NCBPSS() int { return 52 * m.NBPSCS() }

// NCBPS returns the coded bits per OFDM symbol across all streams.
func (m MCS) NCBPS() int { return m.NCBPSS() * m.NSS }

// NDBPS returns the data bits per OFDM symbol.
func (m MCS) NDBPS() int {
	num, den := m.Rate.Fraction()
	return m.NCBPS() * num / den
}

// DataRateMbps returns the PHY data rate in Mbit/s (4 µs symbols, long GI).
func (m MCS) DataRateMbps() float64 {
	return float64(m.NDBPS()) / 4.0
}

// DataRateMbpsGI returns the PHY data rate with the chosen guard interval
// (3.6 µs symbols with the short GI).
func (m MCS) DataRateMbpsGI(shortGI bool) float64 {
	if shortGI {
		return float64(m.NDBPS()) / 3.6
	}
	return m.DataRateMbps()
}

// DataSymbolLen returns the data-portion OFDM symbol length in samples for
// the chosen guard interval.
func DataSymbolLen(shortGI bool) int {
	if shortGI {
		return ofdm.SymbolLenShort
	}
	return ofdm.SymbolLen
}

// NumSymbols returns the number of OFDM data symbols needed for a PSDU of
// the given length (SERVICE 16 bits + 8·octets + 6 tail bits, rounded up to
// whole symbols; IEEE 802.11-2012 eq. 20-32 with N_ES = 1, no STBC).
func (m MCS) NumSymbols(psduLen int) int {
	bits := 16 + 8*psduLen + 6
	nd := m.NDBPS()
	return (bits + nd - 1) / nd
}

// PadBits returns the number of zero pad bits appended after the tail.
func (m MCS) PadBits(psduLen int) int {
	return m.NumSymbols(psduLen)*m.NDBPS() - 16 - 8*psduLen - 6
}

func (m MCS) String() string {
	return fmt.Sprintf("MCS%d[%dss %v %v %.1fMbps]", m.Index, m.NSS, m.Scheme, m.Rate, m.DataRateMbps())
}

// PPDU timing constants (in samples at 20 MHz) for the HT-mixed format.
const (
	// Offsets are relative to the start of the L-STF.
	OffLSTF  = 0
	OffLLTF  = 160
	OffLSIG  = 320
	OffHTSIG = 400
	OffHTSTF = 560
	OffHTLTF = 640 // first HT-LTF; each is 80 samples
)

// PreambleLen returns the total preamble+SIG length in samples for nss
// spatial streams.
func PreambleLen(nss int) int {
	return OffHTLTF + 80*numLTF(nss)
}

func numLTF(nss int) int {
	switch nss {
	case 1:
		return 1
	case 2:
		return 2
	default:
		return 4
	}
}

// BurstLen returns the complete PPDU duration in samples (long GI).
func BurstLen(m MCS, psduLen int) int {
	return BurstLenGI(m, psduLen, false)
}

// BurstLenGI returns the complete PPDU duration in samples for the chosen
// guard interval (the preamble always uses the long GI).
func BurstLenGI(m MCS, psduLen int, shortGI bool) int {
	return PreambleLen(m.NSS) + m.NumSymbols(psduLen)*DataSymbolLen(shortGI)
}
