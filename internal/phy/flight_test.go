package phy

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/channel"
	"repro/internal/clock"
	"repro/internal/obs"
	"repro/internal/obs/flight"
)

// flightLoop runs one instrumented loopback packet with a flight recorder
// attached, returning the telemetry roots and the FCS verdict it reported.
func flightLoop(t *testing.T, rec *flight.Recorder, packetID uint64, fcsOK bool) *obs.Tracer {
	t.Helper()
	tracer := obs.NewTracer(8, clock.NewFake(time.Unix(3000, 0)))
	tracer.SetRole("rx")
	r := rand.New(rand.NewSource(21))
	tx, err := NewTransmitter(TxConfig{MCS: 9, ScramblerSeed: 7})
	if err != nil {
		t.Fatal(err)
	}
	burst, err := tx.Transmit(randPSDU(r, 400))
	if err != nil {
		t.Fatal(err)
	}
	c, err := channel.New(channel.Config{NumTX: 2, NumRX: 2, Model: channel.Identity,
		SNRdB: 30, Seed: 21, SampleRate: 20e6, TimingOffset: 280, TrailingSilence: 100})
	if err != nil {
		t.Fatal(err)
	}
	rxs, err := c.Apply(burst)
	if err != nil {
		t.Fatal(err)
	}
	rx, err := NewReceiver(RxConfig{NumAntennas: 2, Detector: "mmse"})
	if err != nil {
		t.Fatal(err)
	}
	ro := NewRxObs(nil, tracer)
	ro.SetFlight(rec)
	rx.SetObs(ro)
	rx.SetPacketID(packetID)
	res, err := rx.Receive(rxs)
	if err != nil {
		t.Fatal(err)
	}
	ro.ActiveTrace().Begin(obs.StageCRC)
	ro.PacketResult(fcsOK, len(res.PSDU))
	return tracer
}

func TestFlightEvidenceCaptured(t *testing.T) {
	rec := flight.New(flight.Config{Capacity: 4, Dir: t.TempDir(), Node: "rx",
		Clock: clock.NewFake(time.Unix(3000, 0))})
	tracer := flightLoop(t, rec, 55, true)

	if got := tracer.Snapshots()[0].PacketID; got != 55 {
		t.Fatalf("trace packet id = %d, want 55", got)
	}
	file, err := rec.Dump("manual")
	if err != nil {
		t.Fatal(err)
	}
	df, err := flight.Load(file)
	if err != nil {
		t.Fatal(err)
	}
	if len(df.Packets) != 1 {
		t.Fatalf("recorded %d packets, want 1", len(df.Packets))
	}
	ev := df.Packets[0]
	if ev.PacketID != 55 || ev.Verdict != flight.VerdictOK || ev.Node != "rx" {
		t.Fatalf("evidence header = %+v", ev)
	}
	if ev.SNRdB < 20 || ev.SNRdB > 45 {
		t.Errorf("evidence SNR = %g, want near 30", ev.SNRdB)
	}
	if ev.MCS != 9 {
		t.Errorf("evidence MCS = %d, want 9", ev.MCS)
	}
	if len(ev.SyncIQ) != 2 || len(ev.SyncIQ[0]) == 0 {
		t.Fatalf("sync IQ: %d chains", len(ev.SyncIQ))
	}
	if len(ev.ChanEst) != 52 {
		t.Fatalf("chanest tones = %d, want 52", len(ev.ChanEst))
	}
	for _, ce := range ev.ChanEst {
		if ce.CondDB < 0 || ce.CondDB > 150 {
			t.Fatalf("tone %d cond = %g dB", ce.Subcarrier, ce.CondDB)
		}
	}
	if len(ev.EVM) != 52 {
		t.Fatalf("EVM bins = %d, want 52", len(ev.EVM))
	}
	// On a 30 dB identity channel the decision-directed EVM should imply a
	// healthy per-tone SNR.
	for _, b := range ev.EVM {
		if b.Count == 0 || b.SNRdB < 10 {
			t.Fatalf("tone %d: %+v", b.Subcarrier, b)
		}
	}
	if ev.SoftBits.Count == 0 || ev.SoftBits.MeanAbs == 0 {
		t.Fatalf("soft bits = %+v", ev.SoftBits)
	}
	if len(ev.Trace.Spans) == 0 || !ev.Trace.Done || !ev.Trace.OK || ev.Trace.Role != "rx" {
		t.Fatalf("embedded trace = %+v", ev.Trace)
	}
}

func TestFlightCRCFailureTriggersDump(t *testing.T) {
	dir := t.TempDir()
	rec := flight.New(flight.Config{Capacity: 4, Dir: dir, Node: "rx", OnFailure: true,
		Clock: clock.NewFake(time.Unix(3000, 0))})
	flightLoop(t, rec, 9, false) // the MAC verdict is a failed FCS

	// The failure trigger must have fired during PacketResult: the artifact
	// exists without any explicit Dump call, holding the crc_fail evidence.
	file, err := rec.Dump("probe")
	if err != nil {
		t.Fatal(err)
	}
	df, err := flight.Load(file)
	if err != nil {
		t.Fatal(err)
	}
	if df.Seq != 1 {
		t.Fatalf("probe dump seq = %d, want 1 (a trigger dump preceded it)", df.Seq)
	}
	ev := df.Packets[0]
	if ev.Verdict != flight.VerdictCRCFail || ev.PacketID != 9 {
		t.Fatalf("evidence = verdict %q packet %d", ev.Verdict, ev.PacketID)
	}
	if !ev.Trace.Done || ev.Trace.OK {
		t.Fatalf("embedded trace = %+v", ev.Trace)
	}
}

func TestFlightDecodeErrorFinalizesEvidence(t *testing.T) {
	rec := flight.New(flight.Config{Capacity: 4, Dir: t.TempDir(), Node: "rx",
		Clock: clock.NewFake(time.Unix(3000, 0))})
	rx, err := NewReceiver(RxConfig{NumAntennas: 2, Detector: "mmse"})
	if err != nil {
		t.Fatal(err)
	}
	ro := NewRxObs(nil, obs.NewTracer(4, clock.NewFake(time.Unix(3000, 0))))
	ro.SetFlight(rec)
	rx.SetObs(ro)
	// Silence: the detector never fires, so no evidence record opens at all.
	silent := [][]complex128{make([]complex128, 2000), make([]complex128, 2000)}
	if _, err := rx.Receive(silent); err == nil {
		t.Fatal("decoded silence")
	}
	if ro.evidence() != nil {
		t.Fatal("pending evidence leaked across a sync failure")
	}
}

// TestFlightDisabledPathAllocFree pins the nil-safe instrument convention
// for the evidence hooks the decode path now carries: with a nil recorder
// every capture call must be an allocation-free no-op, on both an
// instrumented RxObs and a nil one.
func TestFlightDisabledPathAllocFree(t *testing.T) {
	ro := NewRxObs(nil, nil)
	ro.SetFlight(nil)
	var nilObs *RxObs
	rx := [][]complex128{make([]complex128, 256), make([]complex128, 256)}
	allocs := testing.AllocsPerRun(200, func() {
		ro.beginEvidence(7, rx, 128)
		_ = ro.evidence()
		ro.finishEvidence(flight.VerdictOK, nil)
		nilObs.beginEvidence(7, rx, 128)
		_ = nilObs.evidence()
		nilObs.finishEvidence(flight.VerdictOK, nil)
	})
	if allocs != 0 {
		t.Fatalf("disabled-path capture hooks allocated %v/op, want 0", allocs)
	}
	if ro.pending != nil {
		t.Fatal("nil recorder accumulated evidence")
	}
}

// TestFlightNilRecorderDecodeRecordsNothing runs the full instrumented
// decode with no recorder attached and verifies the capture path stayed
// dormant end to end.
func TestFlightNilRecorderDecodeRecordsNothing(t *testing.T) {
	tracer := flightLoop(t, nil, 3, true)
	if got := tracer.Snapshots()[0].PacketID; got != 3 {
		t.Fatalf("trace packet id = %d, want 3 (IDs work without a recorder)", got)
	}
}
