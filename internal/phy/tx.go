package phy

import (
	"fmt"
	"math"

	"repro/internal/bitutil"
	"repro/internal/fec"
	"repro/internal/mimo"
	"repro/internal/modem"
	"repro/internal/ofdm"
	"repro/internal/preamble"
)

// TxConfig configures a transmitter.
type TxConfig struct {
	// MCS index (0-31). N_SS and therefore the number of transmit chains
	// follows from it (direct spatial mapping, one chain per stream).
	MCS int
	// ScramblerSeed initializes the data scrambler (7 bits, nonzero;
	// 0 selects the all-ones test seed).
	ScramblerSeed byte
	// Smoothing sets the HT-SIG smoothing-recommended bit.
	Smoothing bool
	// ShortGI selects the 400 ns guard interval for the data symbols.
	ShortGI bool
}

// Transmitter builds complete HT-mixed-format PPDUs. Not safe for
// concurrent use; create one per goroutine.
type Transmitter struct {
	cfg    TxConfig
	mcs    MCS
	sig    *sigCodec
	mod    *ofdm.Modulator
	legMod *ofdm.Modulator
	parser *mimo.StreamParser
	ilv    []*fec.Interleaver
	mapper *modem.Mapper
	// steer, when non-nil, maps the N_SS streams onto N_TX ≥ N_SS chains
	// per subcarrier (see steer.go); nil is direct mapping.
	steer *mimo.Steering
}

// NewTransmitter validates the configuration and returns a transmitter.
func NewTransmitter(cfg TxConfig) (*Transmitter, error) {
	mcs, err := Lookup(cfg.MCS)
	if err != nil {
		return nil, err
	}
	parser, err := mimo.NewStreamParser(mcs.NSS, mcs.NBPSCS())
	if err != nil {
		return nil, err
	}
	t := &Transmitter{
		cfg:    cfg,
		mcs:    mcs,
		sig:    newSigCodec(),
		mod:    ofdm.NewModulator(ofdm.HTToneMap),
		legMod: ofdm.NewModulator(ofdm.LegacyToneMap),
		parser: parser,
		mapper: modem.NewMapper(mcs.Scheme),
	}
	for iss := 0; iss < mcs.NSS; iss++ {
		il, err := fec.NewHTInterleaver(mcs.NBPSCS(), mcs.NSS, iss)
		if err != nil {
			return nil, err
		}
		t.ilv = append(t.ilv, il)
	}
	return t, nil
}

// MCS returns the transmitter's modulation and coding scheme.
func (t *Transmitter) MCS() MCS { return t.mcs }

// NumChains returns the number of transmit chains: N_SS under direct
// mapping, the steering's N_TX when a spatial mapping is installed.
func (t *Transmitter) NumChains() int {
	if t.steer != nil {
		return t.steer.NTX()
	}
	return t.mcs.NSS
}

// Transmit converts a PSDU into per-chain baseband waveforms. Every chain's
// waveform has length BurstLen(mcs, len(psdu)).
func (t *Transmitter) Transmit(psdu []byte) ([][]complex128, error) {
	if len(psdu) < 1 || len(psdu) > 0xFFFF {
		return nil, fmt.Errorf("phy: PSDU length %d outside [1, 65535]", len(psdu))
	}
	nss := t.mcs.NSS
	burst := make([][]complex128, t.NumChains())
	total := BurstLenGI(t.mcs, len(psdu), t.cfg.ShortGI)
	for i := range burst {
		burst[i] = make([]complex128, total)
	}

	if err := t.buildPreamble(burst, len(psdu)); err != nil {
		return nil, err
	}

	if t.steer != nil {
		if err := t.transmitSteered(burst, psdu); err != nil {
			return nil, err
		}
		return burst, nil
	}

	// --- Data field -----------------------------------------------------
	dataBits := t.assembleDataBits(psdu)
	coded := fec.Encode(dataBits, t.mcs.Rate)
	streams, err := t.parser.Parse(coded)
	if err != nil {
		return nil, err
	}
	nSym := t.mcs.NumSymbols(len(psdu))
	ncbpss := t.mcs.NCBPSS()
	scale := complex(1/math.Sqrt(float64(nss)), 0)
	cpLen := ofdm.CPLen
	if t.cfg.ShortGI {
		cpLen = ofdm.CPLenShort
	}
	symLen := ofdm.FFTSize + cpLen
	interleaved := make([]byte, ncbpss)
	sym := make([]complex128, symLen)
	for n := 0; n < nSym; n++ {
		for iss := 0; iss < nss; iss++ {
			t.ilv[iss].Interleave(interleaved, streams[iss][n*ncbpss:(n+1)*ncbpss])
			tones, err := t.mapper.Map(interleaved)
			if err != nil {
				return nil, err
			}
			pilots, err := ofdm.HTPilots(nss, iss, n, 3)
			if err != nil {
				return nil, err
			}
			if err := t.mod.SymbolCP(sym, tones, pilots, cpLen); err != nil {
				return nil, err
			}
			shifted := preamble.CyclicShiftSymbolCP(sym, preamble.HTCSDSamples(iss, nss), cpLen)
			off := PreambleLen(nss) + n*symLen
			for i, v := range shifted {
				burst[iss][off+i] = v * scale
			}
		}
	}
	return burst, nil
}

// assembleDataBits builds SERVICE + PSDU + tail + pad, scrambled with the
// tail re-zeroed (IEEE 802.11-2012 §18.3.5.5-6).
func (t *Transmitter) assembleDataBits(psdu []byte) []byte {
	nSym := t.mcs.NumSymbols(len(psdu))
	totalBits := nSym * t.mcs.NDBPS()
	bits := make([]byte, 0, totalBits)
	bits = append(bits, make([]byte, 16)...) // SERVICE: 16 zero bits
	bits = append(bits, bitutil.BytesToBits(psdu)...)
	tailAt := len(bits)
	bits = append(bits, make([]byte, totalBits-len(bits))...) // tail + pad zeros
	scr := bitutil.NewScrambler(t.cfg.ScramblerSeed)
	scr.Scramble(bits)
	// Zero the 6 tail bits after scrambling so the BCC trellis terminates.
	for i := tailAt; i < tailAt+6; i++ {
		bits[i] = 0
	}
	return bits
}

// buildPreamble writes the legacy and HT preamble fields into each chain.
func (t *Transmitter) buildPreamble(burst [][]complex128, psduLen int) error {
	nss := t.mcs.NSS
	chains := t.NumChains()
	legacyScale := complex(1/math.Sqrt(float64(chains)), 0)

	// Legacy portion: same content on every chain, per-chain legacy CSD.
	lsig := preamble.LSIG{Rate: preamble.Rate6Mbps, Length: legacyLength(t.mcs, psduLen, t.cfg.ShortGI)}
	lsigBits, err := lsig.Bits()
	if err != nil {
		return err
	}
	lsigTones, err := t.sig.encode(lsigBits, false)
	if err != nil {
		return err
	}
	htsig := preamble.HTSIG{MCS: t.mcs.Index, Length: psduLen, Smoothing: t.cfg.Smoothing, ShortGI: t.cfg.ShortGI}
	htsigBits, err := htsig.Bits()
	if err != nil {
		return err
	}
	htsigTones, err := t.sig.encode(htsigBits, true)
	if err != nil {
		return err
	}

	stf := preamble.LSTF()
	ltf := preamble.LLTF()
	sym := make([]complex128, ofdm.SymbolLen)
	for chain := 0; chain < chains; chain++ {
		csd := preamble.LegacyCSDSamples(chain, chains)
		// L-STF and L-LTF are periodic / double-length fields: rotate their
		// 64-sample period. Both fields are built from 64-periodic bases,
		// so rotating the whole field by csd within each 64-block is
		// equivalent to rotating the base.
		place(burst[chain], OffLSTF, rotateField(stf, csd), legacyScale)
		place(burst[chain], OffLLTF, rotateLLTF(ltf, csd), legacyScale)
		// L-SIG (one symbol) and HT-SIG (two symbols, QBPSK).
		if err := t.legMod.Symbol(sym, lsigTones[0], ofdm.LegacyPilots(0)); err != nil {
			return err
		}
		place(burst[chain], OffLSIG, preamble.CyclicShiftSymbol(sym, csd), legacyScale)
		for s := 0; s < 2; s++ {
			if err := t.legMod.Symbol(sym, htsigTones[s], ofdm.LegacyPilots(1+s)); err != nil {
				return err
			}
			place(burst[chain], OffHTSIG+s*ofdm.SymbolLen, preamble.CyclicShiftSymbol(sym, csd), legacyScale)
		}
	}

	// HT portion. Steered PPDUs route every HT field through the spatial
	// mapping instead of the direct per-stream placement below.
	if t.steer != nil {
		return t.buildSteeredHTFields(burst)
	}
	// Direct mapping: per-stream HT CSD, 1/√N_SS power split.
	htScale := complex(1/math.Sqrt(float64(nss)), 0)
	nltf := preamble.NumHTLTF(nss)
	for iss := 0; iss < nss; iss++ {
		csd := preamble.HTCSDSamples(iss, nss)
		place(burst[iss], OffHTSTF, rotateField(preamble.HTSTF(), csd), htScale)
		for n := 0; n < nltf; n++ {
			ltfSym := preamble.HTLTFSymbol(complex(preamble.PMatrix[iss][n], 0))
			place(burst[iss], OffHTLTF+n*preamble.HTLTFLen, preamble.CyclicShiftSymbol(ltfSym, csd), htScale)
		}
	}
	return nil
}

// legacyLength computes the spoofed L-SIG LENGTH so legacy stations defer
// for the HT PPDU duration: length octets at 6 Mbit/s whose transmit time
// covers the remaining HT portion (IEEE 802.11-2012 eq. 20-11, simplified
// to the 20 MHz long-GI case).
func legacyLength(m MCS, psduLen int, shortGI bool) int {
	// Remaining duration after L-SIG, rounded up to 4 µs symbols (short-GI
	// data symbols are 3.6 µs).
	fixedUs := (2 /*HT-SIG*/ + 1 /*HT-STF*/ + numLTF(m.NSS)) * 4
	dataUs := m.NumSymbols(psduLen) * DataSymbolLen(shortGI) * 50 / 1000
	usec := fixedUs + dataUs
	if rem := usec % 4; rem != 0 {
		usec += 4 - rem
	}
	// A 6 Mbit/s legacy frame of L octets lasts 20 + 4·ceil((16+8L+6)/24) µs.
	n := (usec-20)/4*24 - 16 - 6
	length := n / 8
	if length < 1 {
		length = 1
	}
	if length > 0xFFF {
		length = 0xFFF
	}
	return length
}

// place copies src·scale into dst at offset.
func place(dst []complex128, off int, src []complex128, scale complex128) {
	for i, v := range src {
		dst[off+i] = v * scale
	}
}

// rotateField cyclically rotates a 64-periodic field (STF) by the CSD within
// each 64-sample period. Because the field is periodic, rotating the whole
// slice is equivalent.
func rotateField(f []complex128, csd int) []complex128 {
	if csd == 0 {
		return f
	}
	return preamble.CyclicShift(f, csd)
}

// rotateLLTF applies the CSD to the L-LTF by rotating its 64-sample base and
// rebuilding the 32-sample guard + two symbols structure.
func rotateLLTF(ltf []complex128, csd int) []complex128 {
	if csd == 0 {
		return ltf
	}
	base := preamble.CyclicShift(ltf[32:96], csd)
	out := make([]complex128, len(ltf))
	copy(out[:32], base[32:])
	copy(out[32:96], base)
	copy(out[96:], base)
	return out
}
