package phy

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/channel"
	"repro/internal/ofdm"
)

// runTracking sends one long packet over a Doppler channel and reports
// whether it decoded, with channel tracking on or off.
func runTracking(t *testing.T, dopplerHz float64, track bool, seed int64) bool {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	tx, err := NewTransmitter(TxConfig{MCS: 9, ScramblerSeed: byte(seed) | 1})
	if err != nil {
		t.Fatal(err)
	}
	psdu := randPSDU(r, 3000)
	burst, err := tx.Transmit(psdu)
	if err != nil {
		t.Fatal(err)
	}
	c, err := channel.New(channel.Config{NumTX: 2, NumRX: 2, Model: channel.FlatRayleigh,
		SNRdB: 28, Seed: seed, DopplerHz: dopplerHz, SampleRate: ofdm.SampleRate,
		TimingOffset: 250, TrailingSilence: 90})
	if err != nil {
		t.Fatal(err)
	}
	rxs, err := c.Apply(burst)
	if err != nil {
		t.Fatal(err)
	}
	rx, err := NewReceiver(RxConfig{NumAntennas: 2, Detector: "mmse", TrackChannel: track})
	if err != nil {
		t.Fatal(err)
	}
	res, err := rx.Receive(rxs)
	if err != nil {
		return false
	}
	return bytes.Equal(res.PSDU, psdu)
}

func TestTrackingHarmlessOnStaticChannel(t *testing.T) {
	ok := 0
	for seed := int64(0); seed < 6; seed++ {
		if runTracking(t, 0, true, 600+seed) {
			ok++
		}
	}
	if ok < 6 {
		t.Errorf("tracking on a static channel decoded only %d/6", ok)
	}
}

func TestTrackingHelpsUnderDoppler(t *testing.T) {
	// At a Doppler where the channel rotates substantially over the
	// ~120-symbol packet, tracking should decode packets the static
	// estimate loses.
	const doppler = 900.0 // Hz
	okTracked, okStatic := 0, 0
	const trials = 12
	for seed := int64(0); seed < trials; seed++ {
		if runTracking(t, doppler, true, 700+seed) {
			okTracked++
		}
		if runTracking(t, doppler, false, 700+seed) {
			okStatic++
		}
	}
	t.Logf("Doppler %g Hz: tracked %d/%d, static %d/%d", doppler, okTracked, trials, okStatic, trials)
	if okTracked <= okStatic {
		t.Errorf("tracking (%d) did not beat static estimation (%d)", okTracked, okStatic)
	}
}

func TestTrackStepValidation(t *testing.T) {
	if _, err := NewReceiver(RxConfig{NumAntennas: 2, TrackStep: 1.5}); err == nil {
		t.Error("step > 1 should fail")
	}
	if _, err := NewReceiver(RxConfig{NumAntennas: 2, TrackStep: -0.1}); err == nil {
		t.Error("negative step should fail")
	}
}
