package phy

import (
	"math/rand"
	"testing"

	"repro/internal/channel"
)

// mkCleanBurst returns a decodable 2x2 reception for corruption tests.
func mkCleanBurst(t *testing.T, seed int64) [][]complex128 {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	tx, err := NewTransmitter(TxConfig{MCS: 9, ScramblerSeed: 0x55})
	if err != nil {
		t.Fatal(err)
	}
	burst, err := tx.Transmit(randPSDU(r, 300))
	if err != nil {
		t.Fatal(err)
	}
	c, err := channel.New(channel.Config{NumTX: 2, NumRX: 2, Model: channel.Identity,
		SNRdB: 30, Seed: seed, TimingOffset: 250, TrailingSilence: 80})
	if err != nil {
		t.Fatal(err)
	}
	rxs, err := c.Apply(burst)
	if err != nil {
		t.Fatal(err)
	}
	return rxs
}

// receiveNoPanic runs Receive and fails the test on panic; errors are fine.
func receiveNoPanic(t *testing.T, label string, rxs [][]complex128) {
	t.Helper()
	defer func() {
		if p := recover(); p != nil {
			t.Fatalf("%s: receiver panicked: %v", label, p)
		}
	}()
	rx, err := NewReceiver(RxConfig{NumAntennas: len(rxs), Detector: "mmse"})
	if err != nil {
		t.Fatal(err)
	}
	_, _ = rx.Receive(rxs)
}

func TestReceiverSurvivesTruncation(t *testing.T) {
	// Cut the burst at every structural boundary: inside STF, LTF, SIG,
	// HT-LTFs and mid-data. The receiver must error, never panic.
	full := mkCleanBurst(t, 1)
	cuts := []int{
		100, 260, 360,
		250 + OffLSIG + 10, 250 + OffHTSIG + 40,
		250 + OffHTSTF + 5, 250 + OffHTLTF + 60,
		250 + PreambleLen(2) + 100,
		len(full[0]) - 40,
	}
	for _, cut := range cuts {
		if cut >= len(full[0]) {
			continue
		}
		trunc := make([][]complex128, 2)
		for a := range full {
			trunc[a] = append([]complex128(nil), full[a][:cut]...)
		}
		receiveNoPanic(t, "truncation", trunc)
	}
}

func TestReceiverSurvivesZeroedRegions(t *testing.T) {
	// Zero 80-sample windows sliding across the burst (datagram-loss
	// zero-fill shape). No panics; most positions still decode or error
	// cleanly.
	full := mkCleanBurst(t, 2)
	for start := 0; start+80 < len(full[0]); start += 400 {
		dam := make([][]complex128, 2)
		for a := range full {
			dam[a] = append([]complex128(nil), full[a]...)
			for i := start; i < start+80; i++ {
				dam[a][i] = 0
			}
		}
		receiveNoPanic(t, "zeroed region", dam)
	}
}

func TestReceiverSurvivesImpulses(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	full := mkCleanBurst(t, 3)
	for trial := 0; trial < 10; trial++ {
		dam := make([][]complex128, 2)
		for a := range full {
			dam[a] = append([]complex128(nil), full[a]...)
			for k := 0; k < 5; k++ {
				dam[a][r.Intn(len(dam[a]))] = complex(50*r.NormFloat64(), 50*r.NormFloat64())
			}
		}
		receiveNoPanic(t, "impulse noise", dam)
	}
}

func TestReceiverSurvivesGarbageHTSIG(t *testing.T) {
	// Replace the HT-SIG region with noise: the CRC must reject it and
	// Receive must return an error, not garbage PSDU.
	r := rand.New(rand.NewSource(4))
	full := mkCleanBurst(t, 4)
	for a := range full {
		for i := 250 + OffHTSIG; i < 250+OffHTSTF; i++ {
			full[a][i] = complex(r.NormFloat64(), r.NormFloat64())
		}
	}
	rx, err := NewReceiver(RxConfig{NumAntennas: 2, Detector: "mmse"})
	if err != nil {
		t.Fatal(err)
	}
	res, err := rx.Receive(full)
	if err == nil && res.PSDU != nil {
		t.Error("garbage HT-SIG produced a PSDU")
	}
}

func TestReceiverSurvivesWildMCSInHTSIG(t *testing.T) {
	// Forge a burst announcing an out-of-range MCS: build with MCS 9 but
	// flip HT-SIG via a transmitter hack — simplest path is transmitting a
	// legitimate MCS-16 (3-stream) burst to a 2-antenna receiver, which the
	// linear detector must refuse cleanly.
	r := rand.New(rand.NewSource(5))
	tx, err := NewTransmitter(TxConfig{MCS: 16})
	if err != nil {
		t.Fatal(err)
	}
	burst, err := tx.Transmit(randPSDU(r, 100))
	if err != nil {
		t.Fatal(err)
	}
	c, err := channel.New(channel.Config{NumTX: 3, NumRX: 2, Model: channel.FlatRayleigh,
		SNRdB: 35, Seed: 5, TimingOffset: 250, TrailingSilence: 80})
	if err != nil {
		t.Fatal(err)
	}
	rxs, err := c.Apply(burst)
	if err != nil {
		t.Fatal(err)
	}
	rx, err := NewReceiver(RxConfig{NumAntennas: 2, Detector: "mmse"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rx.Receive(rxs); err == nil {
		t.Error("2-antenna linear receiver accepted a 3-stream burst")
	}
}

func TestReceiverRandomInputsNeverPanic(t *testing.T) {
	// Pure fuzz: random streams of random lengths.
	r := rand.New(rand.NewSource(6))
	for trial := 0; trial < 15; trial++ {
		n := 600 + r.Intn(4000)
		rxs := make([][]complex128, 2)
		for a := range rxs {
			s := make([]complex128, n)
			for i := range s {
				s[i] = complex(r.NormFloat64()*3, r.NormFloat64()*3)
			}
			rxs[a] = s
		}
		receiveNoPanic(t, "fuzz", rxs)
	}
}
