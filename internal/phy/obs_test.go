package phy

import (
	"bytes"
	"math/rand"
	"testing"
	"time"

	"repro/internal/channel"
	"repro/internal/clock"
	"repro/internal/obs"
)

// obsLoop runs one instrumented loopback packet and returns the telemetry
// roots alongside the decode outcome.
func obsLoop(t *testing.T, snrDB float64, seed int64) (*obs.Registry, *obs.Tracer, *RxResult, []byte, error) {
	t.Helper()
	reg := obs.NewRegistry()
	tracer := obs.NewTracer(16, clock.NewFake(time.Unix(3000, 0)))
	r := rand.New(rand.NewSource(seed))
	tx, err := NewTransmitter(TxConfig{MCS: 9, ScramblerSeed: byte(seed) | 1})
	if err != nil {
		t.Fatal(err)
	}
	psdu := randPSDU(r, 400)
	burst, err := tx.Transmit(psdu)
	if err != nil {
		t.Fatal(err)
	}
	c, err := channel.New(channel.Config{NumTX: 2, NumRX: 2, Model: channel.Identity,
		SNRdB: snrDB, Seed: seed, SampleRate: 20e6,
		TimingOffset: 280, TrailingSilence: 100})
	if err != nil {
		t.Fatal(err)
	}
	rxs, err := c.Apply(burst)
	if err != nil {
		t.Fatal(err)
	}
	rx, err := NewReceiver(RxConfig{NumAntennas: 2, Detector: "mmse"})
	if err != nil {
		t.Fatal(err)
	}
	ro := NewRxObs(reg, tracer)
	rx.SetObs(ro)
	res, rxErr := rx.Receive(rxs)
	if rxErr == nil {
		// The caller layer closes the packet (normally blocks.RXBlock).
		ro.ActiveTrace().Begin(obs.StageCRC)
		ro.PacketResult(true, len(res.PSDU))
	}
	return reg, tracer, res, psdu, rxErr
}

func gaugeValue(t *testing.T, reg *obs.Registry, name string) float64 {
	t.Helper()
	for _, f := range reg.Gather() {
		if f.Name == name {
			if len(f.Points) != 1 {
				t.Fatalf("%s has %d points", name, len(f.Points))
			}
			return f.Points[0].Value
		}
	}
	t.Fatalf("family %s not registered", name)
	return 0
}

func counterValue(reg *obs.Registry, name, labelValue string) float64 {
	for _, f := range reg.Gather() {
		if f.Name != name {
			continue
		}
		for _, p := range f.Points {
			if len(p.Labels) == 0 && labelValue == "" {
				return p.Value
			}
			for _, l := range p.Labels {
				if l.Value == labelValue {
					return p.Value
				}
			}
		}
	}
	return 0
}

func TestRxObsCleanPacket(t *testing.T) {
	reg, tracer, res, psdu, err := obsLoop(t, 30, 91)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.PSDU, psdu) {
		t.Fatal("loopback failed")
	}
	if snr := gaugeValue(t, reg, "mimonet_rx_snr_db"); snr < 20 || snr > 45 {
		t.Errorf("SNR gauge = %g, want near 30", snr)
	}
	if ber := gaugeValue(t, reg, "mimonet_rx_prefec_ber"); ber < 0 || ber > 0.05 {
		t.Errorf("pre-FEC BER = %g on a 30dB channel", ber)
	}
	if bits := counterValue(reg, "mimonet_rx_prefec_bits_total", ""); bits == 0 {
		t.Error("pre-FEC comparison saw no bits")
	}
	if got := counterValue(reg, "mimonet_rx_packets_total", "ok"); got != 1 {
		t.Errorf("ok packets = %g, want 1", got)
	}
	if per := gaugeValue(t, reg, "mimonet_rx_per"); per != 0 {
		t.Errorf("PER = %g, want 0", per)
	}
	if ber := gaugeValue(t, reg, "mimonet_rx_postfec_ber"); ber != 0 {
		t.Errorf("post-FEC BER = %g, want 0", ber)
	}

	// The stage trace must carry the full chain in packet order.
	snaps := tracer.Snapshots()
	if len(snaps) != 1 || !snaps[0].Done || !snaps[0].OK {
		t.Fatalf("trace: %+v", snaps)
	}
	want := []string{obs.StageSync, obs.StageChanest, obs.StageDemod, obs.StageDetector, obs.StageViterbi, obs.StageCRC}
	if len(snaps[0].Spans) != len(want) {
		t.Fatalf("spans = %+v, want stages %v", snaps[0].Spans, want)
	}
	for i, stage := range want {
		if snaps[0].Spans[i].Stage != stage {
			t.Errorf("span %d = %s, want %s", i, snaps[0].Spans[i].Stage, stage)
		}
	}
	// The interleaved per-symbol stages must have accumulated multiple entries.
	for _, s := range snaps[0].Spans {
		if (s.Stage == obs.StageDemod || s.Stage == obs.StageDetector) && s.Count < 2 {
			t.Errorf("stage %s count = %d, want accumulation over symbols", s.Stage, s.Count)
		}
	}
}

func TestRxObsSyncFailure(t *testing.T) {
	reg := obs.NewRegistry()
	tracer := obs.NewTracer(4, clock.NewFake(time.Unix(3000, 0)))
	rx, err := NewReceiver(RxConfig{NumAntennas: 2, Detector: "mmse"})
	if err != nil {
		t.Fatal(err)
	}
	rx.SetObs(NewRxObs(reg, tracer))
	// Pure silence: the detector never fires.
	silent := [][]complex128{make([]complex128, 2000), make([]complex128, 2000)}
	if _, err := rx.Receive(silent); err == nil {
		t.Fatal("decoded silence")
	}
	if got := counterValue(reg, "mimonet_rx_packets_total", "sync_fail"); got != 1 {
		t.Errorf("sync_fail = %g, want 1", got)
	}
	if per := gaugeValue(t, reg, "mimonet_rx_per"); per != 1 {
		t.Errorf("PER = %g, want 1", per)
	}
	snaps := tracer.Snapshots()
	if len(snaps) != 1 || !snaps[0].Done || snaps[0].OK {
		t.Fatalf("failed packet trace: %+v", snaps)
	}
}

func TestReceiverWithoutObsUnchanged(t *testing.T) {
	// The un-instrumented path must still decode (nil-safety of every hook).
	r := rand.New(rand.NewSource(17))
	tx, err := NewTransmitter(TxConfig{MCS: 9, ScramblerSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	psdu := randPSDU(r, 300)
	burst, err := tx.Transmit(psdu)
	if err != nil {
		t.Fatal(err)
	}
	c, err := channel.New(channel.Config{NumTX: 2, NumRX: 2, Model: channel.Identity,
		SNRdB: 30, Seed: 17, SampleRate: 20e6, TimingOffset: 280, TrailingSilence: 100})
	if err != nil {
		t.Fatal(err)
	}
	rxs, err := c.Apply(burst)
	if err != nil {
		t.Fatal(err)
	}
	rx, err := NewReceiver(RxConfig{NumAntennas: 2, Detector: "mmse"})
	if err != nil {
		t.Fatal(err)
	}
	res, err := rx.Receive(rxs)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.PSDU, psdu) {
		t.Fatal("loopback failed without obs")
	}
}
