package phy

import (
	"math"
	"testing"

	"repro/internal/preamble"
)

// tonesFromBytes deterministically expands fuzz bytes into SIG symbols of 48
// tones each, with matching CSI weights.
func tonesFromBytes(data []byte, nSym int) ([][]complex128, [][]float64) {
	symbols := make([][]complex128, nSym)
	csi := make([][]float64, nSym)
	at := 0
	next := func() float64 {
		if len(data) == 0 {
			return 0
		}
		b := data[at%len(data)]
		at++
		return float64(int(b)-128) / 32
	}
	for s := 0; s < nSym; s++ {
		symbols[s] = make([]complex128, 48)
		csi[s] = make([]float64, 48)
		for i := 0; i < 48; i++ {
			symbols[s][i] = complex(next(), next())
			csi[s][i] = math.Abs(next()) + 1e-6
		}
	}
	return symbols, csi
}

// FuzzSIGDecode: arbitrary equalized symbols through the SIG decoder and
// both header parsers must yield bits, a clean error, or a parse rejection —
// never a panic. This is the corrupt-SIG path of the chaos campaign in
// miniature.
func FuzzSIGDecode(f *testing.F) {
	f.Add([]byte{}, false)
	f.Add([]byte{1, 2, 3, 4, 255, 0, 128, 64}, true)
	f.Add([]byte{0x55, 0xAA, 0x0F, 0xF0}, false)
	codec := newSigCodec()
	f.Fuzz(func(t *testing.T, data []byte, qbpsk bool) {
		nSym := 1
		if qbpsk {
			nSym = 2 // HT-SIG geometry
		}
		symbols, csi := tonesFromBytes(data, nSym)
		noiseVar := 0.1
		if len(data) > 0 {
			noiseVar = float64(data[0])/64 + 1e-3
		}
		bits, err := codec.decode(symbols, csi, noiseVar, qbpsk)
		if err != nil {
			return
		}
		if qbpsk {
			if _, err := preamble.ParseHTSIG(bits); err != nil {
				return // CRC rejected garbage, as it should
			}
		} else {
			if _, err := preamble.ParseLSIG(bits); err != nil {
				return // parity rejected garbage, as it should
			}
		}
	})
}

// FuzzParseLSIG: arbitrary bit slices must never panic the L-SIG parser,
// and accepted headers must be in field range.
func FuzzParseLSIG(f *testing.F) {
	valid, err := (preamble.LSIG{Rate: preamble.Rate6Mbps, Length: 100}).Bits()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte{})
	f.Add(make([]byte, 24))
	f.Fuzz(func(t *testing.T, bits []byte) {
		s, err := preamble.ParseLSIG(bits)
		if err != nil {
			return
		}
		if s.Length < 0 || s.Length > 0xFFF {
			t.Errorf("accepted out-of-range length %d", s.Length)
		}
	})
}

// FuzzParseHTSIG: arbitrary bit slices must never panic the HT-SIG parser,
// and accepted headers must be in field range.
func FuzzParseHTSIG(f *testing.F) {
	valid, err := (preamble.HTSIG{MCS: 8, Length: 1000}).Bits()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte{})
	f.Add(make([]byte, 48))
	f.Fuzz(func(t *testing.T, bits []byte) {
		s, err := preamble.ParseHTSIG(bits)
		if err != nil {
			return
		}
		if s.Length < 0 || s.Length > 0xFFFF {
			t.Errorf("accepted out-of-range length %d", s.Length)
		}
		if s.MCS < 0 || s.MCS > 127 {
			t.Errorf("accepted out-of-range MCS %d", s.MCS)
		}
	})
}
