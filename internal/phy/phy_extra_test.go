package phy

import (
	"bytes"
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/channel"
	"repro/internal/ofdm"
	"repro/internal/preamble"
)

// TestSigCodecRoundTrip exercises the SIG encode/decode path in isolation
// (no channel): both BPSK (L-SIG) and QBPSK (HT-SIG) constellations.
func TestSigCodecRoundTrip(t *testing.T) {
	codec := newSigCodec()
	r := rand.New(rand.NewSource(1))
	prop := func(qbpsk bool, nSym8 uint8) bool {
		nSym := 1 + int(nSym8)%3
		bits := make([]byte, 24*nSym)
		for i := range bits {
			bits[i] = byte(r.Intn(2))
		}
		// Terminate the trellis: force the last 6 bits to zero.
		for i := len(bits) - 6; i < len(bits); i++ {
			bits[i] = 0
		}
		symbols, err := codec.encode(bits, qbpsk)
		if err != nil || len(symbols) != nSym {
			return false
		}
		got, err := codec.decode(symbols, nil, 0.01, qbpsk)
		if err != nil {
			return false
		}
		return bytes.Equal(got, bits)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSigCodecQBPSKRotation(t *testing.T) {
	codec := newSigCodec()
	bits := make([]byte, 24)
	syms, err := codec.encode(bits, false)
	if err != nil {
		t.Fatal(err)
	}
	qsyms, err := codec.encode(bits, true)
	if err != nil {
		t.Fatal(err)
	}
	// QBPSK tones are the BPSK tones rotated by 90°.
	for i := range syms[0] {
		if cmplx.Abs(qsyms[0][i]-syms[0][i]*1i) > 1e-12 {
			t.Fatalf("tone %d: %v vs %v rotated", i, qsyms[0][i], syms[0][i])
		}
	}
	// All energy on the imaginary axis.
	for _, v := range qsyms[0] {
		if math.Abs(real(v)) > 1e-12 {
			t.Fatal("QBPSK tone has real component")
		}
	}
}

func TestSigCodecValidation(t *testing.T) {
	codec := newSigCodec()
	if _, err := codec.encode(make([]byte, 23), false); err == nil {
		t.Error("non-multiple of 24 should fail")
	}
	if _, err := codec.decode(nil, nil, 0.1, false); err == nil {
		t.Error("no symbols should fail")
	}
	if _, err := codec.decode([][]complex128{make([]complex128, 40)}, nil, 0.1, false); err == nil {
		t.Error("wrong tone count should fail")
	}
}

func TestLegacyLengthSpoofing(t *testing.T) {
	// The spoofed L-SIG length must always produce a legacy duration that
	// covers the HT portion and fit in 12 bits.
	for _, mcsIdx := range []int{0, 7, 15, 31} {
		m, err := Lookup(mcsIdx)
		if err != nil {
			t.Fatal(err)
		}
		for _, psdu := range []int{1, 100, 1500, 65535} {
			l := legacyLength(m, psdu, false)
			if l < 1 || l > 0xFFF {
				t.Errorf("MCS%d psdu=%d: legacy length %d out of range", mcsIdx, psdu, l)
			}
			// Duration implied by the legacy length (6 Mbit/s frame).
			legacyUs := 20 + 4*((16+8*l+6+23)/24)
			htUs := (phy_BurstLen(m, psdu) - OffLSIG - 80) * 50 / 1000
			if l < 0xFFF && legacyUs < htUs {
				t.Errorf("MCS%d psdu=%d: spoofed %dµs < HT portion %dµs", mcsIdx, psdu, legacyUs, htUs)
			}
		}
	}
}

func phy_BurstLen(m MCS, psdu int) int { return BurstLen(m, psdu) }

func TestTransmitDeterministic(t *testing.T) {
	// Two transmitters with identical config produce identical waveforms —
	// a regression guard on the whole TX chain.
	r := rand.New(rand.NewSource(2))
	psdu := randPSDU(r, 333)
	mk := func() [][]complex128 {
		tx, err := NewTransmitter(TxConfig{MCS: 13, ScramblerSeed: 0x11})
		if err != nil {
			t.Fatal(err)
		}
		b, err := tx.Transmit(psdu)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := mk(), mk()
	for c := range a {
		for i := range a[c] {
			if a[c][i] != b[c][i] {
				t.Fatalf("chain %d sample %d differs", c, i)
			}
		}
	}
}

func TestTransmitGoldenChecksum(t *testing.T) {
	// Golden-value regression: a quantized checksum of a fixed burst. If
	// this changes, the transmit waveform changed — update deliberately.
	tx, err := NewTransmitter(TxConfig{MCS: 9, ScramblerSeed: 0x7F})
	if err != nil {
		t.Fatal(err)
	}
	psdu := []byte("golden vector for the MIMONet transmit chain!!")
	burst, err := tx.Transmit(psdu)
	if err != nil {
		t.Fatal(err)
	}
	var acc uint64
	for _, chain := range burst {
		for _, v := range chain {
			acc = acc*1099511628211 + uint64(int64(math.Round(real(v)*1e6)))
			acc = acc*1099511628211 + uint64(int64(math.Round(imag(v)*1e6)))
		}
	}
	const want uint64 = 0x0ab3a638a2429d58 // recorded from the first verified build
	if acc != want {
		t.Errorf("golden checksum %#x, want %#x (TX waveform changed)", acc, want)
	}
}

func TestLoopbackUnderFrontEndImpairments(t *testing.T) {
	// All USRP-style impairments at realistic magnitudes simultaneously.
	cfg := channel.Config{
		Model: channel.TGnB, SNRdB: 30, Seed: 77,
		CFOHz: 8e3, SampleRate: ofdm.SampleRate,
		ClockPPM:     20,
		IQGainDB:     0.2,
		IQPhaseDeg:   1.0,
		PhaseNoiseHz: 50,
		DCOffset:     complex(0.02, -0.01),
		TimingOffset: 320, TrailingSilence: 120,
	}
	res, psdu := loop(t, 9, 2, "mmse", cfg, 400, 31)
	if !bytes.Equal(res.PSDU, psdu) {
		t.Error("decode failed under combined front-end impairments")
	}
}

func TestLoopbackSmoothingReceiver(t *testing.T) {
	// Receiver-side channel smoothing honoring the HT-SIG smoothing bit.
	r := rand.New(rand.NewSource(3))
	tx, err := NewTransmitter(TxConfig{MCS: 9, ScramblerSeed: 1, Smoothing: true})
	if err != nil {
		t.Fatal(err)
	}
	psdu := randPSDU(r, 200)
	burst, err := tx.Transmit(psdu)
	if err != nil {
		t.Fatal(err)
	}
	c, err := channel.New(channel.Config{NumTX: 2, NumRX: 2, Model: channel.TGnB,
		SNRdB: 20, Seed: 5, TimingOffset: 250, TrailingSilence: 80})
	if err != nil {
		t.Fatal(err)
	}
	rxs, err := c.Apply(burst)
	if err != nil {
		t.Fatal(err)
	}
	rx, err := NewReceiver(RxConfig{NumAntennas: 2, Detector: "mmse", SmoothingWindow: 5})
	if err != nil {
		t.Fatal(err)
	}
	res, err := rx.Receive(rxs)
	if err != nil {
		t.Fatal(err)
	}
	if !res.HTSIG.Smoothing {
		t.Error("smoothing bit not carried through HT-SIG")
	}
	if !bytes.Equal(res.PSDU, psdu) {
		t.Error("smoothed receive failed")
	}
}

func TestLoopbackLargePSDU(t *testing.T) {
	cfg := channel.Config{Model: channel.Identity, SNRdB: 30, Seed: 13,
		TimingOffset: 250, TrailingSilence: 80}
	res, psdu := loop(t, 15, 2, "mmse", cfg, 4000, 17)
	if !bytes.Equal(res.PSDU, psdu) {
		t.Error("4000-byte PSDU failed")
	}
}

func TestBurstLenFormula(t *testing.T) {
	prop := func(mcs8 uint8, psdu16 uint16) bool {
		mcs := int(mcs8) % 32
		psdu := 1 + int(psdu16)%4000
		m, err := Lookup(mcs)
		if err != nil {
			return false
		}
		tx, err := NewTransmitter(TxConfig{MCS: mcs})
		if err != nil {
			return false
		}
		burst, err := tx.Transmit(make([]byte, psdu))
		if err != nil {
			return false
		}
		return len(burst[0]) == BurstLen(m, psdu) &&
			len(burst[0]) == PreambleLen(m.NSS)+m.NumSymbols(psdu)*ofdm.SymbolLen
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestPreambleCSDAppliedPerChain(t *testing.T) {
	// With two chains, chain 1's legacy fields must be chain 0's cyclically
	// shifted by the legacy CSD (within each 64-sample period of the STF).
	tx, err := NewTransmitter(TxConfig{MCS: 8})
	if err != nil {
		t.Fatal(err)
	}
	burst, err := tx.Transmit(make([]byte, 50))
	if err != nil {
		t.Fatal(err)
	}
	csd := preamble.LegacyCSDSamples(1, 2)
	for i := 0; i < 64; i++ {
		want := burst[0][((i-csd)%64+64)%64]
		if cmplx.Abs(burst[1][i]-want) > 1e-12 {
			t.Fatalf("chain 1 STF sample %d is not the CSD-rotated chain 0", i)
		}
	}
}

func TestReceiveReportsSounding(t *testing.T) {
	cfg := channel.Config{Model: channel.FlatRayleigh, SNRdB: 30, Seed: 41,
		TimingOffset: 250, TrailingSilence: 80}
	res, _ := loop(t, 9, 2, "mmse", cfg, 200, 19)
	if res.Sounding == nil {
		t.Fatal("no sounding report")
	}
	if res.Sounding.CapacityBps <= 0 {
		t.Errorf("capacity %g", res.Sounding.CapacityBps)
	}
	if res.Sounding.RecommendedStreams < 1 || res.Sounding.RecommendedStreams > 2 {
		t.Errorf("recommended streams %d", res.Sounding.RecommendedStreams)
	}
}
