package phy

import (
	"fmt"

	"repro/internal/fec"
	"repro/internal/modem"
)

// sigCodec encodes and decodes the 24-bit-per-symbol SIGNAL fields: rate-1/2
// BCC, legacy BPSK interleaving, BPSK mapping (rotated onto the Q axis for
// HT-SIG). One codec is reusable across packets.
type sigCodec struct {
	il       *fec.Interleaver
	mapper   *modem.Mapper
	demapper *modem.Demapper
	viterbi  *fec.Viterbi
	// decode scratch, reused across packets.
	llrBuf []float64
	depBuf []float64
}

func newSigCodec() *sigCodec {
	il, err := fec.NewLegacyInterleaver(1)
	if err != nil {
		panic(err) // static parameters, cannot fail
	}
	return &sigCodec{
		il:       il,
		mapper:   modem.NewMapper(modem.BPSK),
		demapper: modem.NewDemapper(modem.BPSK),
		viterbi:  fec.NewViterbi(),
	}
}

// encode turns n×24 SIG bits into n OFDM symbols of 48 BPSK tones each.
// qbpsk rotates the constellation 90° (HT-SIG). The bits must already
// contain their tail so the trellis self-terminates.
func (c *sigCodec) encode(bits []byte, qbpsk bool) ([][]complex128, error) {
	if len(bits)%24 != 0 {
		return nil, fmt.Errorf("phy: SIG bits length %d not a multiple of 24", len(bits))
	}
	coded := fec.Encode(bits, fec.Rate1_2)
	nSym := len(coded) / 48
	out := make([][]complex128, nSym)
	buf := make([]byte, 48)
	for s := 0; s < nSym; s++ {
		c.il.Interleave(buf, coded[s*48:(s+1)*48])
		tones, err := c.mapper.Map(buf)
		if err != nil {
			return nil, err
		}
		if qbpsk {
			for i := range tones {
				tones[i] *= 1i
			}
		}
		out[s] = tones
	}
	return out, nil
}

// decode reverses encode: equalized 48-tone symbols (with per-tone CSI
// weights for soft decoding) back to SIG bits. The caller passes all the
// symbols of one field so the Viterbi runs over the whole terminated
// trellis.
func (c *sigCodec) decode(symbols [][]complex128, csi [][]float64, noiseVar float64, qbpsk bool) ([]byte, error) {
	if len(symbols) == 0 {
		return nil, fmt.Errorf("phy: no SIG symbols")
	}
	llr := c.llrBuf[:0]
	buf := make([]float64, 48)
	for s, tones := range symbols {
		if len(tones) != 48 {
			return nil, fmt.Errorf("phy: SIG symbol %d has %d tones, want 48", s, len(tones))
		}
		var soft []float64
		for i, tone := range tones {
			if qbpsk {
				tone *= -1i // rotate Q-axis constellation back to I
			}
			w := 1.0
			if csi != nil {
				w = csi[s][i]
			}
			soft = c.demapper.SoftOne(soft, tone, noiseVar, w)
		}
		c.il.DeinterleaveLLR(buf, soft)
		llr = append(llr, buf...)
	}
	c.llrBuf = llr
	dep, err := fec.DepunctureInto(c.depBuf, llr, len(llr)/2, fec.Rate1_2)
	if err != nil {
		return nil, err
	}
	c.depBuf = dep
	return c.viterbi.DecodeSoft(dep, true)
}
