package phy

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"repro/internal/channel"
	"repro/internal/ofdm"
)

// cpmlLoop runs a loopback with the Van de Beek CP-ML sync mode.
func cpmlLoop(t *testing.T, cfoHz, snrDB float64, seed int64) (*RxResult, []byte, error) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	tx, err := NewTransmitter(TxConfig{MCS: 9, ScramblerSeed: byte(seed) | 1})
	if err != nil {
		t.Fatal(err)
	}
	psdu := randPSDU(r, 800)
	burst, err := tx.Transmit(psdu)
	if err != nil {
		t.Fatal(err)
	}
	c, err := channel.New(channel.Config{NumTX: 2, NumRX: 2, Model: channel.Identity,
		SNRdB: snrDB, Seed: seed, CFOHz: cfoHz, SampleRate: ofdm.SampleRate,
		TimingOffset: 280, TrailingSilence: 100})
	if err != nil {
		t.Fatal(err)
	}
	rxs, err := c.Apply(burst)
	if err != nil {
		t.Fatal(err)
	}
	rx, err := NewReceiver(RxConfig{NumAntennas: 2, Detector: "mmse", CPMLSync: true})
	if err != nil {
		t.Fatal(err)
	}
	res, rxErr := rx.Receive(rxs)
	return res, psdu, rxErr
}

func TestCPMLSyncDecodesCleanChannel(t *testing.T) {
	res, psdu, err := cpmlLoop(t, 0, 30, 71)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.PSDU, psdu) {
		t.Error("CP-ML sync loopback failed")
	}
}

func TestCPMLSyncEstimatesCFO(t *testing.T) {
	for _, cfo := range []float64{-30e3, 10e3, 45e3} {
		res, psdu, err := cpmlLoop(t, cfo, 28, 72)
		if err != nil {
			t.Fatalf("cfo %g: %v", cfo, err)
		}
		if !bytes.Equal(res.PSDU, psdu) {
			t.Errorf("cfo %g: decode failed", cfo)
		}
		want := 2 * math.Pi * cfo / ofdm.SampleRate
		if math.Abs(res.CFO-want) > 5e-4 {
			t.Errorf("cfo %g: estimated %g rad/sample, want %g", cfo, res.CFO, want)
		}
	}
}

func TestCPMLSyncSurvivesMultipath(t *testing.T) {
	r := rand.New(rand.NewSource(73))
	tx, _ := NewTransmitter(TxConfig{MCS: 9, ScramblerSeed: 0x45})
	psdu := randPSDU(r, 500)
	burst, err := tx.Transmit(psdu)
	if err != nil {
		t.Fatal(err)
	}
	c, err := channel.New(channel.Config{NumTX: 2, NumRX: 2, Model: channel.TGnB,
		SNRdB: 30, Seed: 73, CFOHz: 5e3, SampleRate: ofdm.SampleRate,
		TimingOffset: 260, TrailingSilence: 100})
	if err != nil {
		t.Fatal(err)
	}
	rxs, err := c.Apply(burst)
	if err != nil {
		t.Fatal(err)
	}
	rx, err := NewReceiver(RxConfig{NumAntennas: 2, Detector: "mmse", CPMLSync: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := rx.Receive(rxs)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.PSDU, psdu) {
		t.Error("CP-ML sync over TGn-B failed")
	}
}

func TestCPMLSyncShortPacketRejected(t *testing.T) {
	// A PSDU so small the burst has fewer than two symbol periods after
	// detection cannot feed the estimator — verify graceful failure or
	// success, never panic. (MCS0 at minimum size still has a long
	// preamble, so this exercises the window-clamping path.)
	r := rand.New(rand.NewSource(74))
	tx, _ := NewTransmitter(TxConfig{MCS: 7, ScramblerSeed: 1})
	psdu := randPSDU(r, 1)
	burst, err := tx.Transmit(psdu)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := channel.New(channel.Config{NumTX: 1, NumRX: 1, Model: channel.Identity,
		SNRdB: 30, Seed: 74, TimingOffset: 250, TrailingSilence: 0})
	rxs, err := c.Apply(burst)
	if err != nil {
		t.Fatal(err)
	}
	rx, _ := NewReceiver(RxConfig{NumAntennas: 1, CPMLSync: true})
	if res, err := rx.Receive(rxs); err == nil && !bytes.Equal(res.PSDU, psdu) {
		t.Error("short-packet CP-ML decode returned wrong data without error")
	}
}
