package dsp

import (
	"fmt"
	"math"
)

// Resampler converts between sample rates by the rational factor L/M
// (upsample by L, polyphase low-pass filter, downsample by M) — the
// front-end utility that matches an SDR's ADC rate to the 20 MHz baseband
// this transceiver runs at. The anti-aliasing filter is a windowed sinc
// with cutoff at the narrower of the two Nyquist bands.
type Resampler struct {
	l, m  int
	taps  []float64
	phase [][]float64 // polyphase decomposition: phase[p][k] = taps[k*L + p]
	// hist holds the last len(taps)/L input samples.
	hist []complex128
	// t is the output-phase accumulator in input units scaled by L.
	t int
}

// NewResampler returns a resampler with interpolation l and decimation m
// (both ≥ 1, coprime factors recommended), using tapsPerPhase filter taps
// per polyphase branch (higher = sharper transition; 8-16 is typical).
func NewResampler(l, m, tapsPerPhase int) (*Resampler, error) {
	if l < 1 || m < 1 {
		return nil, fmt.Errorf("dsp: resampler factors %d/%d must be ≥ 1", l, m)
	}
	if tapsPerPhase < 2 {
		return nil, fmt.Errorf("dsp: need at least 2 taps per phase")
	}
	n := l * tapsPerPhase
	// Cutoff at min(1/(2L), 1/(2M)) of the upsampled rate.
	cutoff := 0.5 / float64(l)
	if c := 0.5 / float64(m); c < cutoff {
		cutoff = c
	}
	// Slightly inside the band to leave transition room.
	taps := lowPassTapsAt(n, cutoff*0.92)
	// Gain L compensates the zero-stuffing loss.
	for i := range taps {
		taps[i] *= float64(l)
	}
	r := &Resampler{l: l, m: m, taps: taps, hist: make([]complex128, tapsPerPhase)}
	r.phase = make([][]float64, l)
	for p := 0; p < l; p++ {
		br := make([]float64, tapsPerPhase)
		for k := 0; k < tapsPerPhase; k++ {
			br[k] = taps[k*l+p]
		}
		r.phase[p] = br
	}
	return r, nil
}

// lowPassTapsAt is LowPassTaps without the unity-DC normalization (the
// resampler normalizes by gain L instead) but with the same Hamming window.
func lowPassTapsAt(n int, cutoff float64) []float64 {
	taps := make([]float64, n)
	mid := float64(n-1) / 2
	var sum float64
	for i := range taps {
		t := float64(i) - mid
		var s float64
		if t == 0 {
			s = 2 * cutoff
		} else {
			s = math.Sin(2*math.Pi*cutoff*t) / (math.Pi * t)
		}
		w := 1.0
		if n > 1 {
			w = 0.54 - 0.46*math.Cos(2*math.Pi*float64(i)/float64(n-1))
		}
		taps[i] = s * w
		sum += taps[i]
	}
	for i := range taps {
		taps[i] /= sum
	}
	return taps
}

// Ratio returns the resampling factor L/M.
func (r *Resampler) Ratio() float64 { return float64(r.l) / float64(r.m) }

// Reset clears the filter history.
func (r *Resampler) Reset() {
	for i := range r.hist {
		r.hist[i] = 0
	}
	r.t = 0
}

// Process consumes input samples and appends the resampled output to dst,
// returning the extended slice. State carries across calls, so a long
// stream may be processed in chunks.
func (r *Resampler) Process(dst []complex128, src []complex128) []complex128 {
	for _, x := range src {
		// Shift the new input into the history (newest at index 0).
		copy(r.hist[1:], r.hist)
		r.hist[0] = x
		// Emit outputs whose (upsampled) time index falls within this
		// input sample: output j is at phase t = j*M; it belongs to input
		// i = t/L with polyphase branch p = t mod L.
		for r.t < r.l {
			br := r.phase[r.t]
			var acc complex128
			for k, h := range br {
				acc += r.hist[k] * complex(h, 0)
			}
			dst = append(dst, acc)
			r.t += r.m
		}
		r.t -= r.l
	}
	return dst
}
