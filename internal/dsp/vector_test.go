package dsp

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

func TestPowerEnergyRMS(t *testing.T) {
	x := []complex128{1, 1i, -1, -1i}
	if got := Energy(x); math.Abs(got-4) > eps {
		t.Errorf("Energy = %g, want 4", got)
	}
	if got := Power(x); math.Abs(got-1) > eps {
		t.Errorf("Power = %g, want 1", got)
	}
	if got := RMS(x); math.Abs(got-1) > eps {
		t.Errorf("RMS = %g, want 1", got)
	}
	if got := Power(nil); got != 0 {
		t.Errorf("Power(nil) = %g, want 0", got)
	}
}

func TestScaleAddMul(t *testing.T) {
	x := []complex128{1 + 1i, 2}
	Scale(x, 2)
	if x[0] != 2+2i || x[1] != 4 {
		t.Errorf("Scale: got %v", x)
	}
	ScaleC(x, 1i)
	if !approxEqualC(x[0], -2+2i, eps) || !approxEqualC(x[1], 4i, eps) {
		t.Errorf("ScaleC: got %v", x)
	}
	a := []complex128{1, 2}
	Add(a, []complex128{10, 20})
	if a[0] != 11 || a[1] != 22 {
		t.Errorf("Add: got %v", a)
	}
	dst := make([]complex128, 2)
	Mul(dst, []complex128{1i, 2}, []complex128{1i, 3})
	if dst[0] != -1 || dst[1] != 6 {
		t.Errorf("Mul: got %v", dst)
	}
	MulConj(dst, []complex128{1i, 2}, []complex128{1i, 3})
	if dst[0] != 1 || dst[1] != 6 {
		t.Errorf("MulConj: got %v", dst)
	}
}

func TestDotConj(t *testing.T) {
	a := []complex128{1 + 1i, 2}
	b := []complex128{1 - 1i, 1i}
	// (1+1i)*conj(1-1i) + 2*conj(1i) = (1+1i)(1+1i) + 2(-1i) = 2i - 2i = 0
	if got := DotConj(a, b); !approxEqualC(got, 0, eps) {
		t.Errorf("DotConj = %v, want 0", got)
	}
}

func TestMaxAbsIndex(t *testing.T) {
	idx, mag := MaxAbsIndex([]complex128{1, 3i, -2})
	if idx != 1 || math.Abs(mag-3) > eps {
		t.Errorf("MaxAbsIndex = (%d, %g), want (1, 3)", idx, mag)
	}
	idx, mag = MaxAbsIndex(nil)
	if idx != -1 || mag != 0 {
		t.Errorf("MaxAbsIndex(nil) = (%d, %g)", idx, mag)
	}
}

func TestMaxFloatIndex(t *testing.T) {
	if got := MaxFloatIndex([]float64{-1, 5, 2}); got != 1 {
		t.Errorf("MaxFloatIndex = %d, want 1", got)
	}
	if got := MaxFloatIndex(nil); got != -1 {
		t.Errorf("MaxFloatIndex(nil) = %d, want -1", got)
	}
}

func TestRotateImposesCFO(t *testing.T) {
	// A rotation with phaseStep ω turns a DC signal into a tone at ω.
	n := 128
	x := make([]complex128, n)
	for i := range x {
		x[i] = 1
	}
	const step = 0.1
	Rotate(x, 0.5, step)
	for i := range x {
		want := cmplx.Exp(complex(0, 0.5+step*float64(i)))
		if !approxEqualC(x[i], want, 1e-9) {
			t.Fatalf("Rotate sample %d = %v, want %v", i, x[i], want)
		}
	}
}

func TestDBConversions(t *testing.T) {
	if got := DB(100); math.Abs(got-20) > eps {
		t.Errorf("DB(100) = %g, want 20", got)
	}
	if got := FromDB(30); math.Abs(got-1000) > 1e-9 {
		t.Errorf("FromDB(30) = %g, want 1000", got)
	}
	if !math.IsInf(DB(0), -1) {
		t.Error("DB(0) should be -Inf")
	}
	for db := -20.0; db <= 40; db += 7 {
		if got := DB(FromDB(db)); math.Abs(got-db) > 1e-9 {
			t.Errorf("DB(FromDB(%g)) = %g", db, got)
		}
	}
}

func TestWrapPhase(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{0, 0},
		{math.Pi, math.Pi},
		{-math.Pi, math.Pi},
		{3 * math.Pi, math.Pi},
		{2 * math.Pi, 0},
		{-2.5 * math.Pi, -0.5 * math.Pi},
	}
	for _, c := range cases {
		if got := WrapPhase(c.in); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("WrapPhase(%g) = %g, want %g", c.in, got, c.want)
		}
	}
}

func TestAutoCorrelatorMatchesBruteForce(t *testing.T) {
	const lag, window = 16, 32
	r := rand.New(rand.NewSource(7))
	x := randVec(r, 200)
	ac := NewAutoCorrelator(lag, window)
	for n, v := range x {
		corr, power := ac.Push(v)
		if !ac.Primed() {
			continue
		}
		// Brute force over the last `window` pairs ending at n.
		var wantC complex128
		var wantP float64
		for i := n - window + 1; i <= n; i++ {
			wantC += x[i-lag] * cmplx.Conj(x[i])
			wantP += real(x[i])*real(x[i]) + imag(x[i])*imag(x[i])
		}
		if !approxEqualC(corr, wantC, 1e-9) {
			t.Fatalf("n=%d: corr = %v, want %v", n, corr, wantC)
		}
		if math.Abs(power-wantP) > 1e-9 {
			t.Fatalf("n=%d: power = %g, want %g", n, power, wantP)
		}
	}
}

func TestAutoCorrelatorDetectsPeriodicity(t *testing.T) {
	// A signal with period L has |corr| ≈ power once the window sees two
	// periods; white noise does not.
	const lag, window = 16, 64
	r := rand.New(rand.NewSource(8))
	period := randVec(r, lag)
	ac := NewAutoCorrelator(lag, window)
	var corr complex128
	var power float64
	for i := 0; i < 10*lag; i++ {
		corr, power = ac.Push(period[i%lag])
	}
	ratio := cmplx.Abs(corr) / power
	if ratio < 0.999 {
		t.Errorf("periodic signal metric = %g, want ≈ 1", ratio)
	}
	ac.Reset()
	noise := randVec(r, 4096)
	var sum float64
	count := 0
	for _, v := range noise {
		c, p := ac.Push(v)
		if ac.Primed() {
			sum += cmplx.Abs(c) / p
			count++
		}
	}
	if mean := sum / float64(count); mean > 0.5 {
		t.Errorf("noise metric mean = %g, want well below 1", mean)
	}
}

func TestCrossCorrelatePeaksAtOffset(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	ref := randVec(r, 32)
	x := make([]complex128, 128)
	for i := range x {
		x[i] = complex(0.01*r.NormFloat64(), 0.01*r.NormFloat64())
	}
	const offset = 40
	copy(x[offset:], ref)
	out := CrossCorrelate(x, ref)
	if len(out) != len(x)-len(ref)+1 {
		t.Fatalf("output length %d", len(out))
	}
	idx, _ := MaxAbsIndex(out)
	if idx != offset {
		t.Errorf("correlation peak at %d, want %d", idx, offset)
	}
}

func TestCrossCorrelateDegenerate(t *testing.T) {
	if out := CrossCorrelate(make([]complex128, 3), make([]complex128, 5)); out != nil {
		t.Error("ref longer than x should return nil")
	}
	if out := CrossCorrelate(make([]complex128, 3), nil); out != nil {
		t.Error("empty ref should return nil")
	}
}
