package dsp

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

const eps = 1e-9

func approxEqualC(a, b complex128, tol float64) bool {
	return cmplx.Abs(a-b) <= tol
}

func approxEqualVec(a, b []complex128, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !approxEqualC(a[i], b[i], tol) {
			return false
		}
	}
	return true
}

// naiveDFT is the O(n²) reference transform.
func naiveDFT(x []complex128, inverse bool) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for k := 0; k < n; k++ {
		var s complex128
		for t := 0; t < n; t++ {
			angle := sign * 2 * math.Pi * float64(k) * float64(t) / float64(n)
			s += x[t] * cmplx.Exp(complex(0, angle))
		}
		if inverse {
			s /= complex(float64(n), 0)
		}
		out[k] = s
	}
	return out
}

func randVec(r *rand.Rand, n int) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(r.NormFloat64(), r.NormFloat64())
	}
	return x
}

func TestNewFFTRejectsBadSizes(t *testing.T) {
	for _, n := range []int{-4, 0, 1, 3, 6, 100} {
		if _, err := NewFFT(n); err == nil {
			t.Errorf("NewFFT(%d): want error, got nil", n)
		}
	}
	for _, n := range []int{2, 4, 64, 1024} {
		if _, err := NewFFT(n); err != nil {
			t.Errorf("NewFFT(%d): unexpected error %v", n, err)
		}
	}
}

func TestFFTMatchesNaiveDFT(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, n := range []int{2, 4, 8, 16, 64, 128} {
		f := MustFFT(n)
		x := randVec(r, n)
		got := make([]complex128, n)
		f.Forward(got, x)
		want := naiveDFT(x, false)
		if !approxEqualVec(got, want, 1e-8) {
			t.Errorf("n=%d: forward FFT does not match naive DFT", n)
		}
		f.Inverse(got, x)
		want = naiveDFT(x, true)
		if !approxEqualVec(got, want, 1e-8) {
			t.Errorf("n=%d: inverse FFT does not match naive DFT", n)
		}
	}
}

func TestFFTRoundTripProperty(t *testing.T) {
	f := MustFFT(64)
	r := rand.New(rand.NewSource(2))
	prop := func(seed int64) bool {
		_ = seed
		x := randVec(r, 64)
		y := make([]complex128, 64)
		z := make([]complex128, 64)
		f.Forward(y, x)
		f.Inverse(z, y)
		return approxEqualVec(z, x, 1e-9)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestFFTInPlace(t *testing.T) {
	f := MustFFT(32)
	r := rand.New(rand.NewSource(3))
	x := randVec(r, 32)
	want := make([]complex128, 32)
	f.Forward(want, x)
	f.Forward(x, x) // aliased
	if !approxEqualVec(x, want, eps) {
		t.Error("in-place forward FFT differs from out-of-place")
	}
}

func TestFFTParseval(t *testing.T) {
	f := MustFFT(64)
	r := rand.New(rand.NewSource(4))
	x := randVec(r, 64)
	y := make([]complex128, 64)
	f.Forward(y, x)
	et, ef := Energy(x), Energy(y)/64
	if math.Abs(et-ef) > 1e-9*et {
		t.Errorf("Parseval violated: time %g freq %g", et, ef)
	}
}

func TestFFTImpulseAndTone(t *testing.T) {
	f := MustFFT(8)
	// Impulse -> flat spectrum.
	x := make([]complex128, 8)
	x[0] = 1
	y := make([]complex128, 8)
	f.Forward(y, x)
	for k, v := range y {
		if !approxEqualC(v, 1, eps) {
			t.Errorf("impulse bin %d = %v, want 1", k, v)
		}
	}
	// Single tone at bin 2 -> impulse at bin 2.
	for i := range x {
		x[i] = cmplx.Exp(complex(0, 2*math.Pi*2*float64(i)/8))
	}
	f.Forward(y, x)
	for k, v := range y {
		want := complex128(0)
		if k == 2 {
			want = 8
		}
		if !approxEqualC(v, want, 1e-9) {
			t.Errorf("tone bin %d = %v, want %v", k, v, want)
		}
	}
}

func TestFFTShift(t *testing.T) {
	x := []complex128{0, 1, 2, 3}
	y := make([]complex128, 4)
	FFTShift(y, x)
	want := []complex128{2, 3, 0, 1}
	if !approxEqualVec(y, want, 0) {
		t.Errorf("FFTShift = %v, want %v", y, want)
	}
	FFTShift(x, x) // in place
	if !approxEqualVec(x, want, 0) {
		t.Errorf("in-place FFTShift = %v, want %v", x, want)
	}
}

func TestFFTLengthMismatchPanics(t *testing.T) {
	f := MustFFT(8)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on length mismatch")
		}
	}()
	f.Forward(make([]complex128, 4), make([]complex128, 8))
}

func BenchmarkFFT64(b *testing.B) {
	f := MustFFT(64)
	x := randVec(rand.New(rand.NewSource(5)), 64)
	y := make([]complex128, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.Forward(y, x)
	}
}

func BenchmarkFFT1024(b *testing.B) {
	f := MustFFT(1024)
	x := randVec(rand.New(rand.NewSource(6)), 1024)
	y := make([]complex128, 1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.Forward(y, x)
	}
}
