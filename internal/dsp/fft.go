// Package dsp provides the signal-processing primitives used by the MIMONet
// transceiver: radix-2 FFTs, correlation, FIR filtering, window functions and
// complex vector utilities.
//
// All routines operate on []complex128. Hot-path types (FFT plans, filters)
// preallocate their working state so steady-state operation is allocation
// free, in the style of gopacket's reusable decoders.
package dsp

import (
	"fmt"
	"math"
	"math/cmplx"
)

// FFT is a reusable plan for forward and inverse transforms of a fixed
// power-of-two size. A plan is cheap to create but caches twiddle factors and
// the bit-reversal permutation, so callers that transform many blocks should
// create one plan and reuse it. A plan is safe for concurrent use: Forward
// and Inverse do not mutate plan state.
type FFT struct {
	n          int
	logN       uint
	rev        []int        // bit-reversal permutation
	twiddle    []complex128 // e^{-2πi k/n} for k in [0,n/2)
	twiddleInv []complex128 // conjugates, so Inverse skips the per-butterfly Conj
}

// NewFFT returns a plan for transforms of length n. n must be a power of two
// and at least 2.
func NewFFT(n int) (*FFT, error) {
	if n < 2 || n&(n-1) != 0 {
		return nil, fmt.Errorf("dsp: FFT size %d is not a power of two ≥ 2", n)
	}
	logN := uint(0)
	for 1<<logN < n {
		logN++
	}
	f := &FFT{
		n:          n,
		logN:       logN,
		rev:        make([]int, n),
		twiddle:    make([]complex128, n/2),
		twiddleInv: make([]complex128, n/2),
	}
	for i := 0; i < n; i++ {
		f.rev[i] = reverseBits(i, logN)
	}
	for k := 0; k < n/2; k++ {
		angle := -2 * math.Pi * float64(k) / float64(n)
		f.twiddle[k] = cmplx.Exp(complex(0, angle))
		f.twiddleInv[k] = cmplx.Conj(f.twiddle[k])
	}
	return f, nil
}

// MustFFT is like NewFFT but panics on error. It is intended for package-level
// plans of known-good sizes.
func MustFFT(n int) *FFT {
	f, err := NewFFT(n)
	if err != nil {
		panic(err)
	}
	return f
}

// Size returns the transform length of the plan.
func (f *FFT) Size() int { return f.n }

func reverseBits(x int, bits uint) int {
	r := 0
	for i := uint(0); i < bits; i++ {
		r = (r << 1) | (x & 1)
		x >>= 1
	}
	return r
}

// Forward computes the DFT of src into dst. dst and src must both have length
// Size(); they may be the same slice. No scaling is applied (the conventional
// unscaled forward transform).
func (f *FFT) Forward(dst, src []complex128) {
	f.transform(dst, src, false)
}

// Inverse computes the inverse DFT of src into dst, scaled by 1/n so that
// Inverse(Forward(x)) == x. dst and src may be the same slice.
func (f *FFT) Inverse(dst, src []complex128) {
	f.transform(dst, src, true)
	scale := complex(1/float64(f.n), 0)
	for i := range dst {
		dst[i] *= scale
	}
}

func (f *FFT) transform(dst, src []complex128, inverse bool) {
	n := f.n
	if len(dst) != n || len(src) != n {
		panic(fmt.Sprintf("dsp: FFT length mismatch: plan %d, dst %d, src %d", n, len(dst), len(src)))
	}
	// Bit-reversal copy. When dst and src alias we must permute in place.
	if &dst[0] == &src[0] {
		for i, j := range f.rev {
			if j > i {
				dst[i], dst[j] = dst[j], dst[i]
			}
		}
	} else {
		for i, j := range f.rev {
			dst[i] = src[j]
		}
	}
	// Iterative Cooley-Tukey butterflies. The direction only selects which
	// precomputed twiddle table to read; the innermost loop is branch-free.
	twiddle := f.twiddle
	if inverse {
		twiddle = f.twiddleInv
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := n / size
		for start := 0; start < n; start += size {
			k := 0
			for j := start; j < start+half; j++ {
				t := twiddle[k] * dst[j+half]
				dst[j+half] = dst[j] - t
				dst[j] = dst[j] + t
				k += step
			}
		}
	}
}

// FFTShift reorders a spectrum so that the zero-frequency bin sits in the
// middle: the first half and second half of src are swapped into dst.
// dst and src must have equal even length and must not partially overlap
// (identical slices are allowed).
func FFTShift(dst, src []complex128) {
	n := len(src)
	if len(dst) != n {
		panic("dsp: FFTShift length mismatch")
	}
	h := n / 2
	if &dst[0] == &src[0] {
		for i := 0; i < h; i++ {
			dst[i], dst[i+h] = dst[i+h], dst[i]
		}
		return
	}
	copy(dst[:h], src[h:])
	copy(dst[h:], src[:h])
}
