package dsp

import "math"

// FIR is a streaming finite-impulse-response filter over complex samples.
// The zero value is not usable; create one with NewFIR. A FIR is not safe
// for concurrent use.
type FIR struct {
	taps  []complex128
	delay []complex128
	pos   int
}

// NewFIR returns a filter with the given taps. The taps slice is copied.
func NewFIR(taps []complex128) *FIR {
	if len(taps) == 0 {
		panic("dsp: FIR requires at least one tap")
	}
	f := &FIR{
		taps:  make([]complex128, len(taps)),
		delay: make([]complex128, len(taps)),
	}
	copy(f.taps, taps)
	return f
}

// NewFIRReal returns a filter with real-valued taps.
func NewFIRReal(taps []float64) *FIR {
	c := make([]complex128, len(taps))
	for i, t := range taps {
		c[i] = complex(t, 0)
	}
	return NewFIR(c)
}

// Reset clears the delay line.
func (f *FIR) Reset() {
	for i := range f.delay {
		f.delay[i] = 0
	}
	f.pos = 0
}

// Push feeds one sample and returns one filtered output sample.
func (f *FIR) Push(x complex128) complex128 {
	f.delay[f.pos] = x
	var acc complex128
	idx := f.pos
	for _, t := range f.taps {
		acc += t * f.delay[idx]
		idx--
		if idx < 0 {
			idx = len(f.delay) - 1
		}
	}
	f.pos++
	if f.pos == len(f.delay) {
		f.pos = 0
	}
	return acc
}

// Filter runs the filter over src, writing len(src) output samples into dst.
// dst and src may be the same slice. The filter state carries across calls,
// so a long stream may be processed in chunks.
func (f *FIR) Filter(dst, src []complex128) {
	if len(dst) != len(src) {
		panic("dsp: FIR Filter length mismatch")
	}
	for i, x := range src {
		dst[i] = f.Push(x)
	}
}

// Len returns the number of taps.
func (f *FIR) Len() int { return len(f.taps) }

// LowPassTaps designs a windowed-sinc low-pass filter with the given number
// of taps and normalized cutoff frequency (cutoff = f_c / f_s, in (0, 0.5)),
// using a Hamming window. The taps are normalized for unity DC gain.
func LowPassTaps(n int, cutoff float64) []float64 {
	if n <= 0 {
		panic("dsp: LowPassTaps needs n > 0")
	}
	if cutoff <= 0 || cutoff >= 0.5 {
		panic("dsp: LowPassTaps cutoff must be in (0, 0.5)")
	}
	taps := make([]float64, n)
	mid := float64(n-1) / 2
	var sum float64
	for i := range taps {
		t := float64(i) - mid
		var s float64
		if t == 0 {
			s = 2 * cutoff
		} else {
			s = math.Sin(2*math.Pi*cutoff*t) / (math.Pi * t)
		}
		w := 0.54 - 0.46*math.Cos(2*math.Pi*float64(i)/float64(n-1))
		if n == 1 {
			w = 1
		}
		taps[i] = s * w
		sum += taps[i]
	}
	for i := range taps {
		taps[i] /= sum
	}
	return taps
}

// MovingAverage is a streaming boxcar filter over real values with O(1)
// updates, used for smoothing detector metrics.
type MovingAverage struct {
	buf    []float64
	pos    int
	filled int
	sum    float64
}

// NewMovingAverage returns an averager over windows of n samples.
func NewMovingAverage(n int) *MovingAverage {
	if n <= 0 {
		panic("dsp: MovingAverage needs n > 0")
	}
	return &MovingAverage{buf: make([]float64, n)}
}

// Push feeds one value and returns the mean of the last min(pushed, n)
// values.
func (m *MovingAverage) Push(x float64) float64 {
	if m.filled == len(m.buf) {
		m.sum -= m.buf[m.pos]
	} else {
		m.filled++
	}
	m.buf[m.pos] = x
	m.sum += x
	m.pos++
	if m.pos == len(m.buf) {
		m.pos = 0
	}
	return m.sum / float64(m.filled)
}

// Reset clears the averager.
func (m *MovingAverage) Reset() {
	for i := range m.buf {
		m.buf[i] = 0
	}
	m.pos, m.filled, m.sum = 0, 0, 0
}
