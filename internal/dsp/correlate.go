package dsp

import "math/cmplx"

// CrossCorrelate computes the sliding cross-correlation of x against the
// reference ref:
//
//	out[k] = Σ_{i} x[k+i] * conj(ref[i])
//
// for k in [0, len(x)-len(ref)]. It returns a freshly allocated slice of
// length len(x)-len(ref)+1, or nil if ref is longer than x or empty. The
// receiver uses this against the known LTF sequence for fine timing.
func CrossCorrelate(x, ref []complex128) []complex128 {
	n := len(x) - len(ref) + 1
	if n <= 0 || len(ref) == 0 {
		return nil
	}
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var s complex128
		win := x[k : k+len(ref)]
		for i, r := range ref {
			s += win[i] * cmplx.Conj(r)
		}
		out[k] = s
	}
	return out
}

// AutoCorrelator computes a running lag-L autocorrelation and power estimate
// over a window of W samples:
//
//	corr(n)  = Σ_{i=n-W+1}^{n} x[i] * conj(x[i+L])
//	power(n) = Σ_{i=n-W+1}^{n} |x[i+L]|²
//
// using O(1) sliding updates. This is the Schmidl & Cox style detector metric
// used for packet detection on the periodic STF, and the γ/Φ statistics of
// the Van de Beek estimator are computed the same way.
//
// The zero value is not usable; create one with NewAutoCorrelator.
type AutoCorrelator struct {
	lag    int
	window int
	buf    []complex128 // delay line of the last window+lag samples
	head   int
	filled int
	corr   complex128
	power  float64
}

// NewAutoCorrelator returns a correlator with the given lag L and averaging
// window W, both of which must be positive.
func NewAutoCorrelator(lag, window int) *AutoCorrelator {
	if lag <= 0 || window <= 0 {
		panic("dsp: AutoCorrelator lag and window must be positive")
	}
	return &AutoCorrelator{
		lag:    lag,
		window: window,
		buf:    make([]complex128, lag+window),
	}
}

// Reset clears the correlator state.
func (a *AutoCorrelator) Reset() {
	for i := range a.buf {
		a.buf[i] = 0
	}
	a.head, a.filled = 0, 0
	a.corr, a.power = 0, 0
}

// Push feeds one sample and returns the updated correlation and power sums.
// The sums are meaningful once Primed reports true.
func (a *AutoCorrelator) Push(x complex128) (corr complex128, power float64) {
	n := len(a.buf)
	// Oldest sample pair leaving the window: x[n-W-L] paired with x[n-W].
	if a.filled == n {
		oldA := a.buf[a.head]             // x[t-(W+L)]
		oldB := a.buf[(a.head+a.lag)%n]   // x[t-W]
		a.corr -= oldA * cmplx.Conj(oldB) // remove pair from corr sum
		re, im := real(oldB), imag(oldB)  //
		a.power -= re*re + im*im          // remove from power sum
	} else {
		a.filled++
	}
	a.buf[a.head] = x
	a.head = (a.head + 1) % n
	// Newest pair entering: x[t-L] with x[t].
	if a.filled >= a.lag+1 {
		prev := a.buf[(a.head-1-a.lag+2*n)%n]
		a.corr += prev * cmplx.Conj(x)
		re, im := real(x), imag(x)
		a.power += re*re + im*im
	}
	return a.corr, a.power
}

// Primed reports whether the delay line is full, i.e. the sums cover a
// complete window.
func (a *AutoCorrelator) Primed() bool { return a.filled == len(a.buf) }

// Lag returns the correlation lag L.
func (a *AutoCorrelator) Lag() int { return a.lag }

// Window returns the averaging window W.
func (a *AutoCorrelator) Window() int { return a.window }
