package dsp

import (
	"math"
	"math/cmplx"
)

// Power returns the mean squared magnitude of x, i.e. the average signal
// power. It returns 0 for an empty slice.
func Power(x []complex128) float64 {
	if len(x) == 0 {
		return 0
	}
	return Energy(x) / float64(len(x))
}

// Energy returns the summed squared magnitude of x.
func Energy(x []complex128) float64 {
	var e float64
	for _, v := range x {
		re, im := real(v), imag(v)
		e += re*re + im*im
	}
	return e
}

// RMS returns the root-mean-square magnitude of x.
func RMS(x []complex128) float64 { return math.Sqrt(Power(x)) }

// Scale multiplies every element of x by the real factor a, in place.
func Scale(x []complex128, a float64) {
	c := complex(a, 0)
	for i := range x {
		x[i] *= c
	}
}

// ScaleC multiplies every element of x by the complex factor a, in place.
func ScaleC(x []complex128, a complex128) {
	for i := range x {
		x[i] *= a
	}
}

// Add accumulates src into dst element-wise. The slices must have equal
// length.
func Add(dst, src []complex128) {
	if len(dst) != len(src) {
		panic("dsp: Add length mismatch")
	}
	for i := range dst {
		dst[i] += src[i]
	}
}

// Mul writes the element-wise product a*b into dst. All slices must have
// equal length; dst may alias a or b.
func Mul(dst, a, b []complex128) {
	if len(dst) != len(a) || len(a) != len(b) {
		panic("dsp: Mul length mismatch")
	}
	for i := range dst {
		dst[i] = a[i] * b[i]
	}
}

// MulConj writes a[i]*conj(b[i]) into dst. All slices must have equal length;
// dst may alias a or b. This is the kernel of every correlator in the
// receiver.
func MulConj(dst, a, b []complex128) {
	if len(dst) != len(a) || len(a) != len(b) {
		panic("dsp: MulConj length mismatch")
	}
	for i := range dst {
		dst[i] = a[i] * cmplx.Conj(b[i])
	}
}

// DotConj returns Σ a[i]*conj(b[i]), the complex inner product.
func DotConj(a, b []complex128) complex128 {
	if len(a) != len(b) {
		panic("dsp: DotConj length mismatch")
	}
	var s complex128
	for i := range a {
		s += a[i] * cmplx.Conj(b[i])
	}
	return s
}

// MaxAbsIndex returns the index and magnitude of the largest-magnitude
// element of x. It returns (-1, 0) for an empty slice.
func MaxAbsIndex(x []complex128) (int, float64) {
	best, bestMag := -1, 0.0
	for i, v := range x {
		m := real(v)*real(v) + imag(v)*imag(v)
		if best == -1 || m > bestMag {
			best, bestMag = i, m
		}
	}
	if best == -1 {
		return -1, 0
	}
	return best, math.Sqrt(bestMag)
}

// MaxFloatIndex returns the index of the largest element of x, or -1 if x is
// empty.
func MaxFloatIndex(x []float64) int {
	best := -1
	bestV := math.Inf(-1)
	for i, v := range x {
		if v > bestV {
			best, bestV = i, v
		}
	}
	return best
}

// Rotate applies a progressive phase rotation exp(j·(phase0 + i·phaseStep))
// to x in place. It is used to impose or correct a carrier frequency offset:
// phaseStep = 2π·f_off/f_sample.
func Rotate(x []complex128, phase0, phaseStep float64) {
	// Recurrence instead of per-sample cmplx.Exp: rot *= step.
	rot := cmplx.Exp(complex(0, phase0))
	step := cmplx.Exp(complex(0, phaseStep))
	for i := range x {
		x[i] *= rot
		rot *= step
	}
}

// DB converts a linear power ratio to decibels. Nonpositive input maps to
// -Inf.
func DB(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	return 10 * math.Log10(p)
}

// FromDB converts decibels to a linear power ratio.
func FromDB(db float64) float64 { return math.Pow(10, db/10) }

// WrapPhase wraps an angle into (-π, π].
func WrapPhase(p float64) float64 {
	for p > math.Pi {
		p -= 2 * math.Pi
	}
	for p <= -math.Pi {
		p += 2 * math.Pi
	}
	return p
}
