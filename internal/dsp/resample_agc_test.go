package dsp

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

func TestResamplerValidation(t *testing.T) {
	if _, err := NewResampler(0, 1, 8); err == nil {
		t.Error("L=0 should fail")
	}
	if _, err := NewResampler(1, 0, 8); err == nil {
		t.Error("M=0 should fail")
	}
	if _, err := NewResampler(2, 1, 1); err == nil {
		t.Error("1 tap per phase should fail")
	}
}

func TestResamplerOutputCount(t *testing.T) {
	for _, c := range []struct{ l, m int }{{1, 1}, {2, 1}, {1, 2}, {3, 2}, {5, 4}} {
		r, err := NewResampler(c.l, c.m, 8)
		if err != nil {
			t.Fatal(err)
		}
		in := make([]complex128, 1000)
		out := r.Process(nil, in)
		want := 1000 * c.l / c.m
		if d := len(out) - want; d < -1 || d > 1 {
			t.Errorf("L/M=%d/%d: %d outputs, want ≈ %d", c.l, c.m, len(out), want)
		}
	}
}

func TestResamplerIdentity(t *testing.T) {
	// L = M = 1 is a pure FIR delay: output equals input shifted by the
	// filter's group delay, which for the single-branch polyphase is
	// (tapsPerPhase-1)/2 samples. Check a DC signal reproduces exactly.
	r, err := NewResampler(1, 1, 9)
	if err != nil {
		t.Fatal(err)
	}
	in := make([]complex128, 100)
	for i := range in {
		in[i] = 1
	}
	out := r.Process(nil, in)
	for i := 20; i < len(out); i++ {
		if cmplx.Abs(out[i]-1) > 1e-6 {
			t.Fatalf("DC not preserved at %d: %v", i, out[i])
		}
	}
}

func TestResamplerPreservesTone(t *testing.T) {
	// A low-frequency tone must survive 2/1 upsampling at half the
	// original normalized frequency and unit amplitude.
	r, err := NewResampler(2, 1, 12)
	if err != nil {
		t.Fatal(err)
	}
	const f = 0.05 // cycles per input sample
	n := 2000
	in := make([]complex128, n)
	for i := range in {
		in[i] = cmplx.Exp(complex(0, 2*math.Pi*f*float64(i)))
	}
	out := r.Process(nil, in)
	if len(out) < 2*n-2 {
		t.Fatalf("only %d outputs", len(out))
	}
	// Steady-state region: measure amplitude and per-sample phase step.
	var amp float64
	var steps float64
	count := 0
	for i := 500; i < len(out)-500; i++ {
		amp += cmplx.Abs(out[i])
		steps += cmplx.Phase(out[i+1] * cmplx.Conj(out[i]))
		count++
	}
	amp /= float64(count)
	step := steps / float64(count)
	if math.Abs(amp-1) > 0.02 {
		t.Errorf("tone amplitude %g after 2x upsampling, want 1", amp)
	}
	want := 2 * math.Pi * f / 2
	if math.Abs(step-want) > 1e-3 {
		t.Errorf("phase step %g, want %g (tone frequency halved)", step, want)
	}
}

func TestResamplerAntiAliasing(t *testing.T) {
	// Decimation by 2 must suppress a tone above the output Nyquist.
	r, err := NewResampler(1, 2, 16)
	if err != nil {
		t.Fatal(err)
	}
	const f = 0.35 // above output Nyquist (0.25 of input rate)
	n := 4000
	in := make([]complex128, n)
	for i := range in {
		in[i] = cmplx.Exp(complex(0, 2*math.Pi*f*float64(i)))
	}
	out := r.Process(nil, in)
	var p float64
	for _, v := range out[200:] {
		p += real(v)*real(v) + imag(v)*imag(v)
	}
	p /= float64(len(out) - 200)
	if p > 0.01 {
		t.Errorf("aliasing tone leaked with power %g, want < 0.01", p)
	}
}

func TestResamplerChunkedEqualsWhole(t *testing.T) {
	r1, _ := NewResampler(3, 2, 8)
	r2, _ := NewResampler(3, 2, 8)
	rng := rand.New(rand.NewSource(1))
	in := randVec(rng, 500)
	whole := r1.Process(nil, in)
	var chunked []complex128
	for i := 0; i < len(in); i += 37 {
		end := i + 37
		if end > len(in) {
			end = len(in)
		}
		chunked = r2.Process(chunked, in[i:end])
	}
	if len(whole) != len(chunked) {
		t.Fatalf("whole %d vs chunked %d outputs", len(whole), len(chunked))
	}
	for i := range whole {
		if cmplx.Abs(whole[i]-chunked[i]) > 1e-12 {
			t.Fatalf("divergence at %d", i)
		}
	}
	r2.Reset()
	if r2.Ratio() != 1.5 {
		t.Errorf("Ratio = %g", r2.Ratio())
	}
}

func TestAGCValidation(t *testing.T) {
	if _, err := NewAGC(0, 0.01); err == nil {
		t.Error("zero target should fail")
	}
	if _, err := NewAGC(1, 0.9); err == nil {
		t.Error("huge mu should fail")
	}
}

func TestAGCConverges(t *testing.T) {
	a, err := NewAGC(1.0, 5e-3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	// Input at power 0.01 (−20 dB): AGC must pull it to ≈ 1.
	n := 20000
	in := make([]complex128, n)
	for i := range in {
		in[i] = complex(rng.NormFloat64(), rng.NormFloat64()) * complex(math.Sqrt(0.005), 0)
	}
	out := make([]complex128, n)
	a.Process(out, in)
	var p float64
	for _, v := range out[n-4000:] {
		p += real(v)*real(v) + imag(v)*imag(v)
	}
	p /= 4000
	if p < 0.7 || p > 1.4 {
		t.Errorf("steady-state power %g, want ≈ 1", p)
	}
	if a.Gain() < 5 {
		t.Errorf("gain %g should have grown toward 10", a.Gain())
	}
	a.Reset()
	if a.Gain() != 1 {
		t.Error("Reset did not restore unity gain")
	}
}

func TestNormalizeBurst(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	burst := randVec(rng, 1000)
	Scale(burst, 0.1)
	g, err := NormalizeBurst(burst, 100, 500, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if g <= 1 {
		t.Errorf("gain %g should exceed 1 for a quiet burst", g)
	}
	if p := Power(burst[100:500]); math.Abs(p-1) > 1e-9 {
		t.Errorf("window power %g after normalization", p)
	}
	if _, err := NormalizeBurst(burst, 500, 100, 1); err == nil {
		t.Error("inverted window should fail")
	}
	if _, err := NormalizeBurst(make([]complex128, 10), 0, 10, 1); err == nil {
		t.Error("zero-power window should fail")
	}
}
