package dsp

import (
	"fmt"
	"math"
)

// AGC is a feedback automatic gain control that drives the output power
// toward a target level — the front-end stage that hands the PHY a
// consistently-scaled signal when the channel gain is unknown. The loop is
// the standard log-domain integrator: g ← g·(target/|y|²)^µ per sample,
// implemented multiplicatively for stability.
type AGC struct {
	target float64
	mu     float64
	gain   float64
	// MaxGain bounds the gain so idle-channel noise is not amplified
	// without limit.
	MaxGain float64
}

// NewAGC returns a controller targeting the given output power with loop
// rate mu (typical 1e-3..1e-2; larger locks faster but gain-pumps on
// modulated signals).
func NewAGC(targetPower, mu float64) (*AGC, error) {
	if targetPower <= 0 {
		return nil, fmt.Errorf("dsp: AGC target power must be positive")
	}
	if mu <= 0 || mu > 0.5 {
		return nil, fmt.Errorf("dsp: AGC rate %g outside (0, 0.5]", mu)
	}
	return &AGC{target: targetPower, mu: mu, gain: 1, MaxGain: 1e6}, nil
}

// Gain returns the current linear gain.
func (a *AGC) Gain() float64 { return a.gain }

// Reset returns the gain to unity.
func (a *AGC) Reset() { a.gain = 1 }

// Process scales src into dst (may alias) while adapting the gain.
func (a *AGC) Process(dst, src []complex128) {
	if len(dst) != len(src) {
		panic("dsp: AGC length mismatch")
	}
	for i, x := range src {
		y := x * complex(a.gain, 0)
		dst[i] = y
		p := real(y)*real(y) + imag(y)*imag(y)
		// Multiplicative update; the +eps keeps silence from stalling it.
		err := a.target - p
		a.gain *= 1 + a.mu*err/a.target
		if a.gain > a.MaxGain {
			a.gain = a.MaxGain
		}
		if a.gain < 1/a.MaxGain {
			a.gain = 1 / a.MaxGain
		}
	}
}

// NormalizeBurst is the feed-forward alternative suited to packet
// processing: scale the whole burst so its average power over the
// measurement window [from, to) equals target. Returns the applied gain.
func NormalizeBurst(burst []complex128, from, to int, target float64) (float64, error) {
	if from < 0 || to > len(burst) || to <= from {
		return 0, fmt.Errorf("dsp: normalize window [%d, %d) invalid for %d samples", from, to, len(burst))
	}
	if target <= 0 {
		return 0, fmt.Errorf("dsp: target power must be positive")
	}
	p := Power(burst[from:to])
	if p == 0 {
		return 0, fmt.Errorf("dsp: zero power in measurement window")
	}
	g := complex(math.Sqrt(target/p), 0)
	for i := range burst {
		burst[i] *= g
	}
	return real(g), nil
}
