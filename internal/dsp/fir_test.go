package dsp

import (
	"math"
	"math/rand"
	"testing"
)

func TestFIRImpulseResponse(t *testing.T) {
	taps := []complex128{1, 2, 3}
	f := NewFIR(taps)
	in := []complex128{1, 0, 0, 0}
	out := make([]complex128, len(in))
	f.Filter(out, in)
	want := []complex128{1, 2, 3, 0}
	if !approxEqualVec(out, want, eps) {
		t.Errorf("impulse response = %v, want %v", out, want)
	}
}

func TestFIRStateAcrossChunks(t *testing.T) {
	taps := []complex128{0.5, 0.25, 0.125, 0.0625}
	r := rand.New(rand.NewSource(10))
	x := randVec(r, 64)

	whole := NewFIR(taps)
	wantOut := make([]complex128, len(x))
	whole.Filter(wantOut, x)

	chunked := NewFIR(taps)
	gotOut := make([]complex128, len(x))
	for i := 0; i < len(x); i += 7 {
		end := min(i+7, len(x))
		chunked.Filter(gotOut[i:end], x[i:end])
	}
	if !approxEqualVec(gotOut, wantOut, eps) {
		t.Error("chunked filtering differs from whole-stream filtering")
	}
}

func TestFIRReset(t *testing.T) {
	f := NewFIR([]complex128{1, 1})
	f.Push(5)
	f.Reset()
	if got := f.Push(1); got != 1 {
		t.Errorf("after Reset, Push(1) = %v, want 1 (no residue)", got)
	}
}

func TestLowPassTapsDCGainAndAttenuation(t *testing.T) {
	taps := LowPassTaps(63, 0.1)
	var dc float64
	for _, v := range taps {
		dc += v
	}
	if math.Abs(dc-1) > 1e-12 {
		t.Errorf("DC gain = %g, want 1", dc)
	}
	// Response at a stopband frequency (0.3) should be strongly attenuated.
	gPass := tapsGainAt(taps, 0.02)
	gStop := tapsGainAt(taps, 0.3)
	if gPass < 0.9 {
		t.Errorf("passband gain = %g, want near 1", gPass)
	}
	if gStop > 0.01 {
		t.Errorf("stopband gain = %g, want < 0.01", gStop)
	}
}

// tapsGainAt evaluates |H(e^{j2πf})| for real taps.
func tapsGainAt(taps []float64, f float64) float64 {
	var re, im float64
	for n, h := range taps {
		re += h * math.Cos(2*math.Pi*f*float64(n))
		im -= h * math.Sin(2*math.Pi*f*float64(n))
	}
	return math.Hypot(re, im)
}

func TestLowPassTapsPanics(t *testing.T) {
	for _, c := range []struct {
		n int
		f float64
	}{{0, 0.1}, {8, 0}, {8, 0.5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("LowPassTaps(%d, %g): want panic", c.n, c.f)
				}
			}()
			LowPassTaps(c.n, c.f)
		}()
	}
}

func TestMovingAverage(t *testing.T) {
	m := NewMovingAverage(3)
	steps := []struct{ in, want float64 }{
		{3, 3}, {6, 4.5}, {9, 6}, {12, 9}, {0, 7},
	}
	for i, s := range steps {
		if got := m.Push(s.in); math.Abs(got-s.want) > eps {
			t.Errorf("step %d: Push(%g) = %g, want %g", i, s.in, got, s.want)
		}
	}
	m.Reset()
	if got := m.Push(10); got != 10 {
		t.Errorf("after Reset: %g, want 10", got)
	}
}

func TestWindows(t *testing.T) {
	for _, tc := range []struct {
		name string
		fn   func(int) []float64
		ends float64
	}{
		{"Hamming", Hamming, 0.08},
		{"Hann", Hann, 0},
		{"Blackman", Blackman, 0},
	} {
		w := tc.fn(9)
		if len(w) != 9 {
			t.Errorf("%s: length %d", tc.name, len(w))
		}
		if math.Abs(w[0]-tc.ends) > 1e-12 || math.Abs(w[8]-tc.ends) > 1e-12 {
			t.Errorf("%s: endpoints %g, %g; want %g", tc.name, w[0], w[8], tc.ends)
		}
		if math.Abs(w[4]-1) > 0.01 {
			t.Errorf("%s: midpoint %g, want ≈ 1", tc.name, w[4])
		}
		// Symmetry.
		for i := 0; i < 4; i++ {
			if math.Abs(w[i]-w[8-i]) > 1e-12 {
				t.Errorf("%s: asymmetric at %d", tc.name, i)
			}
		}
		one := tc.fn(1)
		if len(one) != 1 || one[0] != 1 {
			t.Errorf("%s(1) = %v, want [1]", tc.name, one)
		}
	}
	r := Rectangular(4)
	for _, v := range r {
		if v != 1 {
			t.Errorf("Rectangular = %v", r)
		}
	}
}

func TestApplyWindow(t *testing.T) {
	x := []complex128{2, 2i}
	ApplyWindow(x, []float64{0.5, 2})
	if x[0] != 1 || x[1] != 4i {
		t.Errorf("ApplyWindow: got %v", x)
	}
}

func BenchmarkFIR64Taps(b *testing.B) {
	f := NewFIRReal(LowPassTaps(64, 0.25))
	x := randVec(rand.New(rand.NewSource(11)), 1024)
	y := make([]complex128, 1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.Filter(y, x)
	}
}
