package dsp

import "math"

// Hamming returns an n-point Hamming window.
func Hamming(n int) []float64 {
	return cosineWindow(n, 0.54, 0.46)
}

// Hann returns an n-point Hann window.
func Hann(n int) []float64 {
	return cosineWindow(n, 0.5, 0.5)
}

// Blackman returns an n-point Blackman window.
func Blackman(n int) []float64 {
	w := make([]float64, n)
	if n == 1 {
		w[0] = 1
		return w
	}
	for i := range w {
		x := 2 * math.Pi * float64(i) / float64(n-1)
		w[i] = 0.42 - 0.5*math.Cos(x) + 0.08*math.Cos(2*x)
	}
	return w
}

// Rectangular returns an n-point all-ones window.
func Rectangular(n int) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = 1
	}
	return w
}

func cosineWindow(n int, a, b float64) []float64 {
	w := make([]float64, n)
	if n == 1 {
		w[0] = 1
		return w
	}
	for i := range w {
		w[i] = a - b*math.Cos(2*math.Pi*float64(i)/float64(n-1))
	}
	return w
}

// ApplyWindow multiplies x element-wise by the real window w, in place.
func ApplyWindow(x []complex128, w []float64) {
	if len(x) != len(w) {
		panic("dsp: ApplyWindow length mismatch")
	}
	for i := range x {
		x[i] *= complex(w[i], 0)
	}
}
