package ratectl

import "testing"

func TestSelectorValidation(t *testing.T) {
	if _, err := NewSelector(nil, 1); err == nil {
		t.Error("empty ladder should fail")
	}
	if _, err := NewSelector(DefaultThresholds(), -1); err == nil {
		t.Error("negative hysteresis should fail")
	}
	bad := []Threshold{{MCS: 0, MinSNRdB: 5}, {MCS: 9, MinSNRdB: 5}}
	if _, err := NewSelector(bad, 1); err == nil {
		t.Error("non-ascending thresholds should fail")
	}
	badMCS := []Threshold{{MCS: 99, MinSNRdB: 5}}
	if _, err := NewSelector(badMCS, 1); err == nil {
		t.Error("invalid MCS should fail")
	}
	badRate := []Threshold{{MCS: 9, MinSNRdB: 5}, {MCS: 0, MinSNRdB: 10}}
	if _, err := NewSelector(badRate, 1); err == nil {
		t.Error("descending data rates should fail")
	}
}

func TestSelectorClimbsAndDescends(t *testing.T) {
	s, err := NewSelector(DefaultThresholds(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if s.Current() != 0 {
		t.Errorf("start at MCS %d, want 0", s.Current())
	}
	if got := s.Observe(40); got != 15 {
		t.Errorf("40 dB should reach the top rung, got MCS %d", got)
	}
	if got := s.Observe(20); got != 11 {
		t.Errorf("20 dB should select MCS 11, got %d", got)
	}
	if got := s.Observe(-5); got != 0 {
		t.Errorf("-5 dB should fall to MCS 0, got %d", got)
	}
}

func TestSelectorHysteresis(t *testing.T) {
	s, err := NewSelector(DefaultThresholds(), 3)
	if err != nil {
		t.Fatal(err)
	}
	s.Observe(20) // MCS 11 (threshold 19)
	// A dip to 17 dB is within the 3 dB hysteresis: hold the rate.
	if got := s.Observe(17); got != 11 {
		t.Errorf("dip within hysteresis dropped to MCS %d", got)
	}
	// A dip below 16 dB must step down.
	if got := s.Observe(15); got == 11 {
		t.Error("dip beyond hysteresis held the rate")
	}
	// Without hysteresis the same dip drops immediately.
	s0, _ := NewSelector(DefaultThresholds(), 0)
	s0.Observe(20)
	if got := s0.Observe(17); got == 11 {
		t.Error("zero hysteresis should step down at 17 dB")
	}
}

func TestOnLossStepsDown(t *testing.T) {
	s, _ := NewSelector(DefaultThresholds(), 2)
	s.Observe(40)
	top := s.Current()
	down := s.OnLoss()
	if down == top {
		t.Error("OnLoss did not step down")
	}
	s.Reset()
	if s.Current() != 0 {
		t.Error("Reset did not return to the bottom rung")
	}
	// OnLoss at the bottom stays at the bottom.
	if got := s.OnLoss(); got != 0 {
		t.Errorf("OnLoss at bottom = MCS %d", got)
	}
}
