// Package ratectl implements SNR-driven link adaptation on top of the
// transceiver's fine-grained SNR estimation — the network-level use the
// paper builds MIMONet for ("evaluate the channel conditions"). A Selector
// maps the receiver's per-packet SNR estimate to the fastest MCS expected
// to decode, with hysteresis so the rate does not flap on estimation noise.
package ratectl

import (
	"fmt"

	"repro/internal/phy"
)

// Threshold pairs an MCS with the minimum SNR (dB) at which it sustains a
// target PER. The default table is calibrated from experiment E5's 10% PER
// points over TGn-B plus the single-stream equivalents.
type Threshold struct {
	MCS      int
	MinSNRdB float64
}

// DefaultThresholds returns a conservative two-stream-capable ladder
// (interleaving 1- and 2-stream MCS by required SNR).
func DefaultThresholds() []Threshold {
	return []Threshold{
		{MCS: 0, MinSNRdB: 2},   // BPSK 1/2, 6.5 Mb/s
		{MCS: 8, MinSNRdB: 7},   // 2ss BPSK 1/2, 13 Mb/s
		{MCS: 9, MinSNRdB: 12},  // 2ss QPSK 1/2, 26 Mb/s
		{MCS: 10, MinSNRdB: 16}, // 2ss QPSK 3/4, 39 Mb/s
		{MCS: 11, MinSNRdB: 19}, // 2ss 16QAM 1/2, 52 Mb/s
		{MCS: 12, MinSNRdB: 24}, // 2ss 16QAM 3/4, 78 Mb/s
		{MCS: 13, MinSNRdB: 29}, // 2ss 64QAM 2/3, 104 Mb/s
		{MCS: 15, MinSNRdB: 34}, // 2ss 64QAM 5/6, 130 Mb/s
	}
}

// Selector picks an MCS from SNR reports with hysteresis.
// Not safe for concurrent use.
type Selector struct {
	ladder []Threshold
	// HysteresisDB is subtracted from the current rung's threshold when
	// deciding whether to step down, so a rate is only abandoned once the
	// SNR estimate falls clearly below what selected it.
	HysteresisDB float64
	current      int // index into ladder
}

// NewSelector validates the ladder (ascending thresholds, valid MCS) and
// returns a selector starting at the lowest rung.
func NewSelector(ladder []Threshold, hysteresisDB float64) (*Selector, error) {
	if len(ladder) == 0 {
		return nil, fmt.Errorf("ratectl: empty threshold ladder")
	}
	if hysteresisDB < 0 {
		return nil, fmt.Errorf("ratectl: negative hysteresis")
	}
	prev := ladder[0].MinSNRdB - 1
	prevRate := -1.0
	for i, th := range ladder {
		m, err := phy.Lookup(th.MCS)
		if err != nil {
			return nil, fmt.Errorf("ratectl: rung %d: %w", i, err)
		}
		if th.MinSNRdB <= prev && i > 0 {
			return nil, fmt.Errorf("ratectl: thresholds must strictly ascend (rung %d)", i)
		}
		if m.DataRateMbps() <= prevRate {
			return nil, fmt.Errorf("ratectl: data rates must strictly ascend (rung %d)", i)
		}
		prev = th.MinSNRdB
		prevRate = m.DataRateMbps()
	}
	return &Selector{ladder: append([]Threshold(nil), ladder...), HysteresisDB: hysteresisDB}, nil
}

// Current returns the currently selected MCS.
func (s *Selector) Current() int { return s.ladder[s.current].MCS }

// Observe feeds one SNR estimate (dB) and returns the MCS to use next.
// Rate-up requires the estimate to clear the higher rung's threshold;
// rate-down happens when it falls below the current rung's threshold minus
// the hysteresis margin.
func (s *Selector) Observe(snrDB float64) int {
	// Climb while the next rung's threshold is met.
	for s.current+1 < len(s.ladder) && snrDB >= s.ladder[s.current+1].MinSNRdB {
		s.current++
	}
	// Descend while below the current rung (with hysteresis).
	for s.current > 0 && snrDB < s.ladder[s.current].MinSNRdB-s.HysteresisDB {
		s.current--
	}
	return s.Current()
}

// OnLoss reports a failed packet; the selector steps down one rung
// immediately (loss is stronger evidence than a noisy SNR estimate).
func (s *Selector) OnLoss() int {
	if s.current > 0 {
		s.current--
	}
	return s.Current()
}

// Reset returns to the lowest rung.
func (s *Selector) Reset() { s.current = 0 }
