package mumimo

import (
	"fmt"
	"sort"
)

// StationState is the scheduler's view of one station in a scheduling
// round. The mimonet-lint switch-exhaustiveness check covers switches over
// this enum, so adding a state forces every consumer to decide how to
// handle it.
type StationState uint8

const (
	// StateIdle: associated, nothing queued — not a grouping candidate.
	StateIdle StationState = iota + 1
	// StateBacklogged: queued traffic and fresh CSI — eligible for the
	// next transmission group.
	StateBacklogged
	// StateStale: queued traffic but stale or absent CSI — needs sounding
	// before it can be precoded toward.
	StateStale
	// StateScheduled: member of the group chosen this round.
	StateScheduled
)

func (s StationState) String() string {
	switch s {
	case StateIdle:
		return "idle"
	case StateBacklogged:
		return "backlogged"
	case StateStale:
		return "stale"
	case StateScheduled:
		return "scheduled"
	}
	return fmt.Sprintf("state(%d)", uint8(s))
}

// Candidate is one station offered to a scheduling round.
type Candidate struct {
	// Station is the AP-assigned station ID (non-zero).
	Station uint16
	// Queue is the station's pending downlink frame count.
	Queue int
	// Entry is the station's fresh CSI; nil marks stale/absent feedback.
	Entry *Entry
}

// Assignment is one group member's share of a transmission.
type Assignment struct {
	// Station is the member's ID.
	Station uint16
	// Streams are the spatial stream indices (within the transmission's
	// stacked precoder columns) carrying this station's data. Disjoint
	// across members by construction.
	Streams []int
	// SNRdB is the station's mean per-stream post-detection SNR from its
	// sounding report, the rate hint link adaptation will consume.
	SNRdB float64
}

// Group is one scheduling decision: the stations sharing a precoded
// downlink transmission.
type Group struct {
	// Members lists the admitted stations in decision order.
	Members []Assignment
	// Bitmap is the radio-header announcement: bit (station slot) set for
	// every member, as assigned by SlotOf.
	Bitmap uint64
	// Streams is the total spatial stream count of the transmission.
	Streams int
}

// SlotOf maps a station ID to its group-bitmap bit. The bitmap has 64
// slots; an AP with more simultaneous associations wraps, and receivers
// disambiguate by the explicit station ID field in addressed frames.
func SlotOf(station uint16) uint { return uint(station) % 64 }

// Scheduler packs compatible stations into transmission groups. The
// decision is a pure function of the candidate set, so a fixed input
// yields bit-identical groups on any host or worker count.
type Scheduler struct {
	// NTX is the transmit antenna count — the spatial stream budget per
	// transmission.
	NTX int
	// MaxCorrelation is the admission bound on pairwise channel
	// correlation (Orthogonality metric): a candidate too parallel to an
	// admitted member is skipped this round. Zero selects
	// DefaultMaxCorrelation.
	MaxCorrelation float64
	// MaxGroup bounds the member count per transmission; zero means NTX.
	MaxGroup int
}

// DefaultMaxCorrelation admits station pairs whose channels point at most
// ~37° apart in Frobenius inner-product terms — loose enough to group
// i.i.d. Rayleigh draws, tight enough to reject near-parallel channels
// whose ZF inversion burns the array gain.
const DefaultMaxCorrelation = 0.8

// Pick chooses the next transmission group from the candidates and labels
// every candidate's state for the round. Stations are considered in
// deterministic priority order — deepest queue first, station ID breaking
// ties — and admitted greedily while spatial streams remain and the
// candidate stays under the correlation bound against every admitted
// member. The scheduler is work-conserving: whenever any candidate is
// backlogged with fresh CSI, the group is non-empty.
func (s *Scheduler) Pick(cands []Candidate) (Group, map[uint16]StationState) {
	ntx := s.NTX
	if ntx < 1 {
		ntx = 1
	}
	maxCorr := s.MaxCorrelation
	if maxCorr <= 0 {
		maxCorr = DefaultMaxCorrelation
	}
	maxGroup := s.MaxGroup
	if maxGroup <= 0 || maxGroup > ntx {
		maxGroup = ntx
	}

	states := make(map[uint16]StationState, len(cands))
	eligible := make([]Candidate, 0, len(cands))
	for _, c := range cands {
		switch {
		case c.Queue <= 0:
			states[c.Station] = StateIdle
		case c.Entry == nil || c.Entry.Mean() == nil:
			states[c.Station] = StateStale
		default:
			states[c.Station] = StateBacklogged
			eligible = append(eligible, c)
		}
	}
	sort.Slice(eligible, func(i, j int) bool {
		if eligible[i].Queue != eligible[j].Queue {
			return eligible[i].Queue > eligible[j].Queue
		}
		return eligible[i].Station < eligible[j].Station
	})

	var g Group
	admitted := make([]*Entry, 0, maxGroup)
	for _, c := range eligible {
		if len(g.Members) >= maxGroup || g.Streams >= ntx {
			break
		}
		want := stationStreams(c.Entry, ntx-g.Streams)
		if want < 1 {
			continue
		}
		ok := true
		for _, m := range admitted {
			if Orthogonality(c.Entry.Mean(), m.Mean()) > maxCorr {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		streams := make([]int, want)
		for i := range streams {
			streams[i] = g.Streams + i
		}
		g.Members = append(g.Members, Assignment{
			Station: c.Station,
			Streams: streams,
			SNRdB:   meanSNRdB(c.Entry.Report.PerStreamSNRdB),
		})
		g.Bitmap |= 1 << SlotOf(c.Station)
		g.Streams += want
		admitted = append(admitted, c.Entry)
		states[c.Station] = StateScheduled
	}
	return g, states
}

// stationStreams bounds a member's stream share: its sounding
// recommendation, its receive antenna count, and the transmission's
// remaining budget.
func stationStreams(e *Entry, remaining int) int {
	n := e.Report.RecommendedStreams
	if rx := e.Mean().Rows; rx < n {
		n = rx
	}
	if remaining < n {
		n = remaining
	}
	return n
}

func meanSNRdB(perStream []float64) float64 {
	if len(perStream) == 0 {
		return 0
	}
	var acc float64
	for _, v := range perStream {
		acc += v
	}
	return acc / float64(len(perStream))
}
