package mumimo

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/cmatrix"
	"repro/internal/sounding"
)

// flatChannel builds nsc identical copies of h — a frequency-flat estimate.
func flatChannel(h *cmatrix.Matrix, nsc int) []*cmatrix.Matrix {
	out := make([]*cmatrix.Matrix, nsc)
	for i := range out {
		out[i] = h.Clone()
	}
	return out
}

// rayleigh draws an i.i.d. CN(0,1) channel matrix.
func rayleigh(r *rand.Rand, rows, cols int) *cmatrix.Matrix {
	m := cmatrix.New(rows, cols)
	for i := range m.Data {
		m.Data[i] = complex(r.NormFloat64(), r.NormFloat64()) * complex(math.Sqrt(0.5), 0)
	}
	return m
}

func TestZFPrecodeDiagonalizes(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		h := rayleigh(r, 2, 2) // two single-antenna stations stacked
		w, err := ZFPrecode(h)
		if err != nil {
			t.Fatal(err)
		}
		e := cmatrix.Mul(h, w)
		for i := 0; i < 2; i++ {
			for j := 0; j < 2; j++ {
				mag := sqAbs(e.At(i, j))
				if i == j && mag < 1e-12 {
					t.Fatalf("trial %d: signal entry (%d,%d) collapsed", trial, i, j)
				}
				if i != j && mag > 1e-18 {
					t.Fatalf("trial %d: ZF leakage (%d,%d) = %g", trial, i, j, mag)
				}
			}
		}
		// Unit-norm columns: transmit power is explicit.
		for j := 0; j < w.Cols; j++ {
			var n float64
			for i := 0; i < w.Rows; i++ {
				n += sqAbs(w.At(i, j))
			}
			if math.Abs(n-1) > 1e-9 {
				t.Fatalf("trial %d: column %d norm² %g", trial, j, n)
			}
		}
	}
}

func TestZFPrecodeRejectsOverload(t *testing.T) {
	if _, err := ZFPrecode(rayleigh(rand.New(rand.NewSource(2)), 3, 2)); err == nil {
		t.Error("3 streams over 2 antennas must fail")
	}
	par := cmatrix.FromRows([][]complex128{{1, 1}, {1, 1}})
	if _, err := ZFPrecode(par); err == nil {
		t.Error("rank-1 stacked channel must fail, not divide by zero")
	}
}

func TestBDPrecodeNullsInterference(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		// Two 2-antenna stations under a 4-antenna AP.
		hs := []*cmatrix.Matrix{rayleigh(r, 2, 4), rayleigh(r, 2, 4)}
		ws, err := BDPrecode(hs)
		if err != nil {
			t.Fatal(err)
		}
		for i := range hs {
			for j := range ws {
				cross := cmatrix.Mul(hs[i], ws[j])
				if i == j {
					// Own link must carry signal on its diagonal.
					for s := 0; s < cross.Rows; s++ {
						if sqAbs(cross.At(s, s)) < 1e-12 {
							t.Fatalf("trial %d: station %d stream %d collapsed", trial, i, s)
						}
					}
					continue
				}
				for k := range cross.Data {
					if sqAbs(cross.Data[k]) > 1e-18 {
						t.Fatalf("trial %d: station %d hears station %d's precoder (|e|²=%g)",
							trial, i, j, sqAbs(cross.Data[k]))
					}
				}
			}
		}
	}
}

func TestPostPrecodingSINR(t *testing.T) {
	// Orthogonal stacked channel: ZF costs nothing, each stream's SINR is
	// snr/K exactly (equal power split, no leakage).
	h := cmatrix.Identity(2)
	w, err := ZFPrecode(h)
	if err != nil {
		t.Fatal(err)
	}
	sinr, err := PostPrecodingSINR(h, w, 100)
	if err != nil {
		t.Fatal(err)
	}
	for s, v := range sinr {
		if math.Abs(v-50) > 1e-6 {
			t.Errorf("stream %d SINR %g, want 50", s, v)
		}
	}
	// A correlated channel must pay: same SNR, strictly lower SINR through
	// the diagonal gain loss.
	corr := cmatrix.FromRows([][]complex128{{1, 0.9}, {0.9, 1}})
	wc, err := ZFPrecode(corr)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := PostPrecodingSINR(corr, wc, 100)
	if err != nil {
		t.Fatal(err)
	}
	if sc[0] >= 50 || sc[1] >= 50 {
		t.Errorf("correlated channel SINR %v, want < 50", sc)
	}
}

func TestOrthogonality(t *testing.T) {
	a := cmatrix.FromRows([][]complex128{{1, 0}})
	b := cmatrix.FromRows([][]complex128{{0, 1}})
	if o := Orthogonality(a, b); o > 1e-12 {
		t.Errorf("orthogonal rows scored %g", o)
	}
	if o := Orthogonality(a, a); math.Abs(o-1) > 1e-12 {
		t.Errorf("parallel rows scored %g", o)
	}
	if o := Orthogonality(a, nil); o != 1 {
		t.Errorf("nil channel scored %g, want 1 (inseparable)", o)
	}
}

func TestCacheStalenessEviction(t *testing.T) {
	fake := clock.NewFake(time.Unix(0, 0))
	c := NewCache(fake, 100*time.Millisecond)
	h := flatChannel(cmatrix.Identity(2), 8)
	if _, err := c.Update(7, h, 100); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(7); !ok {
		t.Fatal("fresh entry must be visible")
	}
	fake.Advance(99 * time.Millisecond)
	if _, ok := c.Get(7); !ok {
		t.Fatal("entry inside the age bound must stay visible")
	}
	fake.Advance(2 * time.Millisecond)
	if _, ok := c.Get(7); ok {
		t.Fatal("stale entry must not be served")
	}
	if age, ok := c.Age(7); !ok || age != 101*time.Millisecond {
		t.Errorf("Age = %v/%v, want 101ms/true", age, ok)
	}
	if n := c.Sweep(); n != 1 {
		t.Errorf("Sweep evicted %d, want 1", n)
	}
	if c.Len() != 0 {
		t.Errorf("Len = %d after sweep, want 0", c.Len())
	}
}

func TestCacheFeedbackRoundTrip(t *testing.T) {
	c := NewCache(clock.NewFake(time.Unix(0, 0)), time.Second)
	h := flatChannel(cmatrix.FromRows([][]complex128{{1, 0.1}, {0.1, 1}}), 16)
	fb, err := sounding.Quantize(h, 1)
	if err != nil {
		t.Fatal(err)
	}
	e, err := c.UpdateFeedback(3, fb, 100)
	if err != nil {
		t.Fatal(err)
	}
	if e.Report.RecommendedStreams != 2 {
		t.Errorf("quantized round trip recommended %d streams, want 2", e.Report.RecommendedStreams)
	}
	if e.Mean() == nil || e.Mean().Rows != 2 {
		t.Errorf("representative matrix missing: %v", e.Mean())
	}
	// An all-dead report must not displace the cached estimate.
	deadFb, err := sounding.Quantize(flatChannel(cmatrix.New(2, 2), 16), 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.UpdateFeedback(3, deadFb, 100); err == nil {
		t.Error("all-dead feedback must be rejected")
	}
	if _, ok := c.Get(3); !ok {
		t.Error("rejected feedback evicted the live entry")
	}
	if _, err := c.Update(0, h, 100); err == nil {
		t.Error("station 0 must be rejected")
	}
}

func TestCacheLiveSorted(t *testing.T) {
	c := NewCache(clock.NewFake(time.Unix(0, 0)), time.Second)
	h := flatChannel(cmatrix.Identity(2), 4)
	for _, id := range []uint16{9, 2, 40, 11} {
		if _, err := c.Update(id, h, 100); err != nil {
			t.Fatal(err)
		}
	}
	got := c.Live()
	want := []uint16{2, 9, 11, 40}
	if len(got) != len(want) {
		t.Fatalf("Live = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Live = %v, want %v", got, want)
		}
	}
}
