package mumimo

import (
	"fmt"
	"math"
	"math/cmplx"

	"repro/internal/cmatrix"
)

// Downlink precoding. The composite channel of a transmission group stacks
// each member's N_RX×N_TX channel matrix row-wise into H (K×N_TX, K ≤
// N_TX). Zero-forcing inverts it — W = Hᴴ(HHᴴ)⁻¹ with unit-norm columns —
// so station k's receive stream sees only its own column's signal;
// block diagonalization instead projects each station's channel onto the
// null space of the others', preserving the station's own array gain while
// still nulling inter-station interference.

// ZFPrecode returns the zero-forcing precoder for a stacked channel h
// (K rows of receive streams × N_TX transmit antennas, K ≤ N_TX): the
// N_TX×K matrix W = Hᴴ(HHᴴ)⁻¹ with each column scaled to unit norm, so
// H·W is diagonal and the per-stream transmit power is explicit.
func ZFPrecode(h *cmatrix.Matrix) (*cmatrix.Matrix, error) {
	if h == nil || h.Rows < 1 {
		return nil, fmt.Errorf("mumimo: empty channel")
	}
	if h.Rows > h.Cols {
		return nil, fmt.Errorf("mumimo: %d receive streams exceed %d transmit antennas", h.Rows, h.Cols)
	}
	gram := cmatrix.Mul(h, h.Hermitian()) // K×K
	inv, err := gram.Inverse()
	if err != nil {
		return nil, fmt.Errorf("mumimo: group channel is rank-deficient: %w", err)
	}
	w := cmatrix.Mul(h.Hermitian(), inv) // N_TX×K
	if err := normalizeColumns(w); err != nil {
		return nil, err
	}
	return w, nil
}

// BDPrecode returns per-station block-diagonalization precoders for a group
// of per-station channels (each N_RXᵢ×N_TX, ΣN_RXᵢ ≤ N_TX). Station i's
// weights are the ZF precoder of its channel projected onto the null space
// of every other station's rows: P = I − H̄ᴴ(H̄H̄ᴴ)⁻¹H̄. The returned
// W_i (N_TX×N_RXᵢ) have unit-norm columns and null inter-station
// interference by construction; a single-station group degenerates to
// plain ZF.
func BDPrecode(stations []*cmatrix.Matrix) ([]*cmatrix.Matrix, error) {
	if len(stations) == 0 {
		return nil, fmt.Errorf("mumimo: empty group")
	}
	ntx := stations[0].Cols
	total := 0
	for i, h := range stations {
		if h == nil || h.Rows < 1 {
			return nil, fmt.Errorf("mumimo: station %d has an empty channel", i)
		}
		if h.Cols != ntx {
			return nil, fmt.Errorf("mumimo: station %d has %d TX antennas, station 0 has %d", i, h.Cols, ntx)
		}
		total += h.Rows
	}
	if total > ntx {
		return nil, fmt.Errorf("mumimo: group needs %d streams, only %d antennas", total, ntx)
	}
	out := make([]*cmatrix.Matrix, len(stations))
	for i, h := range stations {
		proj := cmatrix.Identity(ntx)
		if len(stations) > 1 {
			other := stackOthers(stations, i)
			p, err := nullProjector(other)
			if err != nil {
				return nil, fmt.Errorf("mumimo: station %d interference space: %w", i, err)
			}
			proj = p
		}
		eff := cmatrix.Mul(h, proj) // N_RXᵢ×N_TX: channel seen through the null space
		wEff, err := ZFPrecode(eff)
		if err != nil {
			return nil, fmt.Errorf("mumimo: station %d projected channel: %w", i, err)
		}
		w := cmatrix.Mul(proj, wEff)
		if err := normalizeColumns(w); err != nil {
			return nil, fmt.Errorf("mumimo: station %d: %w", i, err)
		}
		out[i] = w
	}
	return out, nil
}

// nullProjector returns P = I − HᴴH⁺ᴴ… concretely I − Hᴴ(HHᴴ)⁻¹H, the
// orthogonal projector onto the null space of h's rows.
func nullProjector(h *cmatrix.Matrix) (*cmatrix.Matrix, error) {
	gram := cmatrix.Mul(h, h.Hermitian())
	inv, err := gram.Inverse()
	if err != nil {
		return nil, err
	}
	p := cmatrix.Mul(h.Hermitian(), cmatrix.Mul(inv, h))
	p.ScaleInPlace(-1)
	p.AddScaledIdentity(1)
	return p, nil
}

// stackOthers stacks every station's channel rows except index skip.
func stackOthers(stations []*cmatrix.Matrix, skip int) *cmatrix.Matrix {
	rows := 0
	for i, h := range stations {
		if i != skip {
			rows += h.Rows
		}
	}
	out := cmatrix.New(rows, stations[0].Cols)
	r := 0
	for i, h := range stations {
		if i == skip {
			continue
		}
		copy(out.Data[r*out.Cols:], h.Data)
		r += h.Rows
	}
	return out
}

// StackChannels stacks per-station channel matrices row-wise into the
// composite group channel ZFPrecode inverts.
func StackChannels(stations []*cmatrix.Matrix) *cmatrix.Matrix {
	if len(stations) == 0 {
		return nil
	}
	return stackOthers(stations, -1)
}

// PostPrecodingSINR returns each stream's SINR (linear) when the stacked
// group channel h is driven through precoder w at total transmit SNR snr:
// the effective channel E = H·W splits into the diagonal's signal and the
// off-diagonal leakage, with transmit power divided equally across the K
// streams and unit-SNR-normalized noise at each receive stream.
func PostPrecodingSINR(h, w *cmatrix.Matrix, snr float64) ([]float64, error) {
	if snr <= 0 {
		return nil, fmt.Errorf("mumimo: SNR must be positive")
	}
	if h.Cols != w.Rows || h.Rows != w.Cols {
		return nil, fmt.Errorf("mumimo: channel %dx%d incompatible with precoder %dx%d", h.Rows, h.Cols, w.Rows, w.Cols)
	}
	e := cmatrix.Mul(h, w) // K×K effective channel
	k := float64(e.Rows)
	out := make([]float64, e.Rows)
	for s := 0; s < e.Rows; s++ {
		var sig, leak float64
		for j := 0; j < e.Cols; j++ {
			p := sqAbs(e.At(s, j)) / k
			if j == s {
				sig = p
			} else {
				leak += p
			}
		}
		out[s] = sig / (leak + 1/snr)
	}
	return out, nil
}

// Orthogonality measures how separable two stations' channels are: the
// normalized Frobenius inner product |tr(A·Bᴴ)| / (‖A‖·‖B‖), 0 for
// orthogonal row spaces (ideal co-scheduling partners) up to 1 for parallel
// channels (precoding between them burns all the array gain).
func Orthogonality(a, b *cmatrix.Matrix) float64 {
	if a == nil || b == nil || len(a.Data) != len(b.Data) {
		return 1 // incomparable channels: treat as inseparable
	}
	var dot complex128
	for i := range a.Data {
		dot += a.Data[i] * cmplx.Conj(b.Data[i])
	}
	na, nb := a.FrobeniusNorm(), b.FrobeniusNorm()
	if na == 0 || nb == 0 {
		return 1
	}
	return cmplx.Abs(dot) / (na * nb)
}

// normalizeColumns scales each column of w to unit norm.
func normalizeColumns(w *cmatrix.Matrix) error {
	for j := 0; j < w.Cols; j++ {
		var n float64
		for i := 0; i < w.Rows; i++ {
			n += sqAbs(w.At(i, j))
		}
		n = math.Sqrt(n)
		if n < 1e-30 || math.IsNaN(n) || math.IsInf(n, 0) {
			return fmt.Errorf("mumimo: precoder column %d collapsed (norm %g)", j, n)
		}
		for i := 0; i < w.Rows; i++ {
			w.Set(i, j, w.At(i, j)/complex(n, 0))
		}
	}
	return nil
}

func sqAbs(v complex128) float64 { return real(v)*real(v) + imag(v)*imag(v) }
