package mumimo

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/cmatrix"
)

// randomCandidates fabricates a churned candidate population: a mix of
// idle, stale and backlogged stations over random Rayleigh channels.
func randomCandidates(t *testing.T, r *rand.Rand, n, ntx int) []Candidate {
	t.Helper()
	c := NewCache(clock.NewFake(time.Unix(0, 0)), time.Second)
	cands := make([]Candidate, 0, n)
	for i := 0; i < n; i++ {
		id := uint16(i + 1)
		cand := Candidate{Station: id, Queue: r.Intn(5)}
		if r.Float64() < 0.8 { // 20% of stations have stale/absent CSI
			rx := 1 + r.Intn(2)
			e, err := c.Update(id, flatChannel(rayleigh(r, rx, ntx), 4), 100)
			if err != nil {
				t.Fatal(err)
			}
			cand.Entry = e
		}
		cands = append(cands, cand)
	}
	return cands
}

// TestSchedulerNeverOverlapsStreams: the core safety property — across many
// random candidate populations, no two group members ever share a spatial
// stream index, and the group never exceeds the antenna budget.
func TestSchedulerNeverOverlapsStreams(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		ntx := 2 + r.Intn(3) // 2–4 antennas
		s := &Scheduler{NTX: ntx}
		cands := randomCandidates(t, r, 1+r.Intn(12), ntx)
		g, states := s.Pick(cands)
		if g.Streams > ntx {
			t.Fatalf("trial %d: %d streams over %d antennas", trial, g.Streams, ntx)
		}
		seen := map[int]uint16{}
		for _, m := range g.Members {
			if len(m.Streams) == 0 {
				t.Fatalf("trial %d: member %d admitted with no streams", trial, m.Station)
			}
			for _, st := range m.Streams {
				if st < 0 || st >= ntx {
					t.Fatalf("trial %d: stream index %d outside [0,%d)", trial, st, ntx)
				}
				if prev, dup := seen[st]; dup {
					t.Fatalf("trial %d: stream %d assigned to both %d and %d", trial, st, prev, m.Station)
				}
				seen[st] = m.Station
			}
			if states[m.Station] != StateScheduled {
				t.Fatalf("trial %d: member %d labeled %v", trial, m.Station, states[m.Station])
			}
			if g.Bitmap&(1<<SlotOf(m.Station)) == 0 {
				t.Fatalf("trial %d: member %d missing from bitmap %#x", trial, m.Station, g.Bitmap)
			}
		}
	}
}

// TestSchedulerWorkConserving: whenever any station is backlogged with
// fresh CSI, the round must schedule someone — under arbitrary churn of the
// candidate population.
func TestSchedulerWorkConserving(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	s := &Scheduler{NTX: 2}
	cands := randomCandidates(t, r, 10, 2)
	for round := 0; round < 300; round++ {
		// Churn: stations join, leave, drain and refill queues.
		switch r.Intn(4) {
		case 0:
			if len(cands) > 1 {
				cands = append(cands[:r.Intn(len(cands))], cands[r.Intn(len(cands))+1:]...)
			}
		case 1:
			fresh := randomCandidates(t, r, 1+r.Intn(3), 2)
			for i := range fresh {
				fresh[i].Station += uint16(round * 16)
			}
			cands = append(cands, fresh...)
		default:
			for i := range cands {
				cands[i].Queue = r.Intn(4)
			}
		}
		g, states := s.Pick(cands)
		eligible := false
		for _, c := range cands {
			if c.Queue > 0 && c.Entry != nil {
				eligible = true
				break
			}
		}
		if eligible && len(g.Members) == 0 {
			t.Fatalf("round %d: backlogged candidates but empty group (states %v)", round, states)
		}
		if !eligible && len(g.Members) != 0 {
			t.Fatalf("round %d: scheduled %v with no eligible candidate", round, g.Members)
		}
	}
}

// TestSchedulerDeterministic: the decision is a pure function of the
// candidate set — identical inputs in any presentation order yield
// identical groups.
func TestSchedulerDeterministic(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	s := &Scheduler{NTX: 4}
	for trial := 0; trial < 50; trial++ {
		cands := randomCandidates(t, r, 8, 4)
		g1, _ := s.Pick(cands)
		// Shuffled presentation of the same candidates.
		shuf := append([]Candidate(nil), cands...)
		r.Shuffle(len(shuf), func(i, j int) { shuf[i], shuf[j] = shuf[j], shuf[i] })
		g2, _ := s.Pick(shuf)
		if !reflect.DeepEqual(g1, g2) {
			t.Fatalf("trial %d: decision depends on presentation order:\n%+v\n%+v", trial, g1, g2)
		}
	}
}

// TestSchedulerPrefersOrthogonalPartners: two near-parallel stations must
// not share a transmission; an orthogonal pair must.
func TestSchedulerPrefersOrthogonalPartners(t *testing.T) {
	c := NewCache(clock.NewFake(time.Unix(0, 0)), time.Second)
	s := &Scheduler{NTX: 2}
	mk := func(id uint16, row []complex128) Candidate {
		t.Helper()
		e, err := c.Update(id, flatChannel(cmatrix.FromRows([][]complex128{row}), 4), 100)
		if err != nil {
			t.Fatal(err)
		}
		return Candidate{Station: id, Queue: 3, Entry: e}
	}
	ortho, _ := s.Pick([]Candidate{mk(1, []complex128{1, 0}), mk(2, []complex128{0, 1})})
	if len(ortho.Members) != 2 {
		t.Fatalf("orthogonal pair not grouped: %+v", ortho)
	}
	par, _ := s.Pick([]Candidate{mk(1, []complex128{1, 0.01}), mk(2, []complex128{1, 0})})
	if len(par.Members) != 1 {
		t.Fatalf("near-parallel pair grouped: %+v", par)
	}
}

// TestSchedulerQueuePriority: with compatible channels, deeper queues are
// admitted first.
func TestSchedulerQueuePriority(t *testing.T) {
	c := NewCache(clock.NewFake(time.Unix(0, 0)), time.Second)
	s := &Scheduler{NTX: 2, MaxGroup: 1}
	mk := func(id uint16, q int) Candidate {
		e, err := c.Update(id, flatChannel(cmatrix.Identity(2), 4), 100)
		if err != nil {
			t.Fatal(err)
		}
		return Candidate{Station: id, Queue: q, Entry: e}
	}
	g, _ := s.Pick([]Candidate{mk(1, 1), mk(2, 9), mk(3, 4)})
	if len(g.Members) != 1 || g.Members[0].Station != 2 {
		t.Fatalf("deepest queue not served first: %+v", g)
	}
}

func TestStationStateString(t *testing.T) {
	for _, tc := range []struct {
		s    StationState
		want string
	}{
		{StateIdle, "idle"}, {StateBacklogged, "backlogged"},
		{StateStale, "stale"}, {StateScheduled, "scheduled"},
		{StationState(77), "state(77)"},
	} {
		if got := tc.s.String(); got != tc.want {
			t.Errorf("%d.String() = %q, want %q", tc.s, got, tc.want)
		}
	}
	_ = fmt.Sprintf("%v", StateIdle)
}
