// Package mumimo is the multi-user downlink layer of the access point: it
// collects quantized sounding feedback from stations into a per-station CSI
// cache (staleness-evicted on the injectable clock seam), derives
// zero-forcing and block-diagonalization precoding weights over
// internal/cmatrix, and packs compatible stations into transmission groups
// by channel orthogonality and pending-queue depth. The paper's
// instrumentation "evaluates the channel conditions" for one link; this
// package is the layer that turns those per-link evaluations into
// multi-station scheduling decisions.
package mumimo

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/cmatrix"
	"repro/internal/sounding"
)

// DefaultMaxCSIAge is the staleness bound on cached feedback: channel
// estimates older than this are not trusted for precoding (the channel has
// decorrelated) and the station must be re-sounded.
const DefaultMaxCSIAge = 500 * time.Millisecond

// Entry is one station's cached channel state.
type Entry struct {
	// Station is the AP-assigned station ID the feedback came from.
	Station uint16
	// Tones holds the per-subcarrier downlink channel matrices (N_RX×N_TX),
	// as dequantized from the station's compressed feedback.
	Tones []*cmatrix.Matrix
	// Report is the sounding analysis of Tones at the feedback SNR: the
	// per-stream post-detection SNRs and stream recommendation the
	// scheduler ranks stations by.
	Report *sounding.Report
	// Updated is the cache clock's time the feedback arrived.
	Updated time.Time

	// mean caches the tone-averaged channel matrix, the representative the
	// scheduler's orthogonality metric uses.
	mean *cmatrix.Matrix
}

// Mean returns the tone-averaged channel matrix (nil entries and dead tones
// contribute zero). The result is shared; callers must not mutate it.
func (e *Entry) Mean() *cmatrix.Matrix { return e.mean }

// Cache holds the per-station CSI an access point precodes from. All
// methods are safe for concurrent use. Staleness is measured on the
// injectable clock seam, so tests drive eviction with a fake clock.
type Cache struct {
	clk    clock.Clock
	maxAge time.Duration

	mu      sync.Mutex
	entries map[uint16]*Entry
}

// NewCache returns a cache evicting entries older than maxAge (≤0 selects
// DefaultMaxCSIAge) against clk (nil selects the system clock).
func NewCache(clk clock.Clock, maxAge time.Duration) *Cache {
	if maxAge <= 0 {
		maxAge = DefaultMaxCSIAge
	}
	return &Cache{clk: clock.Or(clk), maxAge: maxAge, entries: make(map[uint16]*Entry)}
}

// MaxAge returns the staleness bound entries are evicted at.
func (c *Cache) MaxAge() time.Duration { return c.maxAge }

// UpdateFeedback decodes a station's quantized feedback (sounding.Quantize
// wire bytes) and caches the reconstruction, analyzed at the given linear
// SNR. Feedback whose every tone is dead is rejected: a zero channel cannot
// be precoded toward and must not displace an older usable estimate.
func (c *Cache) UpdateFeedback(station uint16, feedback []byte, snr float64) (*Entry, error) {
	tones, err := sounding.Dequantize(feedback)
	if err != nil {
		return nil, fmt.Errorf("mumimo: station %d feedback: %w", station, err)
	}
	return c.Update(station, tones, snr)
}

// Update caches per-subcarrier channel matrices for a station, analyzed at
// the given linear SNR.
func (c *Cache) Update(station uint16, tones []*cmatrix.Matrix, snr float64) (*Entry, error) {
	if station == 0 {
		return nil, fmt.Errorf("mumimo: station 0 is the unassociated sentinel")
	}
	rep, err := sounding.Analyze(tones, snr)
	if err != nil {
		return nil, fmt.Errorf("mumimo: station %d: %w", station, err)
	}
	if rep.DeadSubcarriers == len(tones) {
		return nil, fmt.Errorf("mumimo: station %d reported an all-dead channel", station)
	}
	e := &Entry{
		Station: station,
		Tones:   tones,
		Report:  rep,
		Updated: c.clk.Now(),
		mean:    meanMatrix(tones),
	}
	c.mu.Lock()
	c.entries[station] = e
	c.mu.Unlock()
	return e, nil
}

// Get returns the station's entry if it is fresh; a stale or absent entry
// reports ok=false (stale entries are left for Sweep to collect).
func (c *Cache) Get(station uint16) (*Entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[station]
	if !ok || c.clk.Since(e.Updated) > c.maxAge {
		return nil, false
	}
	return e, true
}

// Age returns how old the station's cached feedback is, fresh or not.
func (c *Cache) Age(station uint16) (time.Duration, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[station]
	if !ok {
		return 0, false
	}
	return c.clk.Since(e.Updated), true
}

// Remove drops a station's entry (association teardown).
func (c *Cache) Remove(station uint16) {
	c.mu.Lock()
	delete(c.entries, station)
	c.mu.Unlock()
}

// Sweep evicts every stale entry and returns how many were dropped.
func (c *Cache) Sweep() int { return len(c.SweepList()) }

// SweepList evicts every stale entry and returns the evicted station IDs,
// sorted — the AP keys its CSI-stale journal events off this list.
func (c *Cache) SweepList() []uint16 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []uint16
	for id, e := range c.entries {
		if c.clk.Since(e.Updated) > c.maxAge {
			delete(c.entries, id)
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Live returns the stations with fresh CSI, sorted by ID — the
// deterministic candidate order the scheduler iterates in.
func (c *Cache) Live() []uint16 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]uint16, 0, len(c.entries))
	for id, e := range c.entries {
		if c.clk.Since(e.Updated) <= c.maxAge {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Len returns the number of cached entries, fresh or stale.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// meanMatrix averages the live tones of a per-subcarrier channel estimate
// into one representative matrix.
func meanMatrix(tones []*cmatrix.Matrix) *cmatrix.Matrix {
	var acc *cmatrix.Matrix
	n := 0
	for _, t := range tones {
		if t == nil {
			continue
		}
		if acc == nil {
			acc = cmatrix.New(t.Rows, t.Cols)
		}
		for i := range t.Data {
			acc.Data[i] += t.Data[i]
		}
		n++
	}
	if acc == nil {
		return nil
	}
	acc.ScaleInPlace(complex(1/float64(n), 0))
	return acc
}
