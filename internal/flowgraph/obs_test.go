package flowgraph

import (
	"context"
	"sync/atomic"
	"testing"

	"repro/internal/metrics"
	"repro/internal/obs"
)

// gatherFamily returns the named family's snapshot, or nil.
func gatherFamily(reg *obs.Registry, name string) *obs.FamilySnapshot {
	for _, f := range reg.Gather() {
		if f.Name == name {
			return &f
		}
	}
	return nil
}

func TestPolicyMetricsExposesBlocksAndEdges(t *testing.T) {
	reg := obs.NewRegistry()
	g := New()
	src := mkSource("src", 7, 1)
	var got int64
	sink := &SinkFunc{BlockName: "sink", Consume: func(c Chunk) error {
		atomic.AddInt64(&got, int64(len(c)))
		return nil
	}}
	for _, b := range []Block{src, sink} {
		if err := g.Add(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.Connect(src, 0, sink, 0); err != nil {
		t.Fatal(err)
	}
	// Metrics alone must imply edge instrumentation — no TrackHealth needed.
	if err := g.SetPolicy(Policy{Metrics: reg}); err != nil {
		t.Fatal(err)
	}
	if err := g.Run(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Block health counters live in the registry, labelled by block, and
	// agree with Graph.Health().
	in := gatherFamily(reg, metrics.FamChunksIn)
	if in == nil {
		t.Fatalf("family %s not registered", metrics.FamChunksIn)
	}
	byBlock := map[string]float64{}
	for _, p := range in.Points {
		if len(p.Labels) != 1 || p.Labels[0].Key != "block" {
			t.Fatalf("chunks_in labels = %+v", p.Labels)
		}
		byBlock[p.Labels[0].Value] = p.Value
	}
	health := g.Health()
	for name, snap := range health {
		if int64(byBlock[name]) != snap.ChunksIn {
			t.Errorf("block %s: registry chunks_in %v, health %d", name, byBlock[name], snap.ChunksIn)
		}
	}
	if health["sink"].ChunksIn != 7 {
		t.Fatalf("sink chunks in = %d, want 7", health["sink"].ChunksIn)
	}

	// Edge instruments: one labelled point each, wait _count equal to the
	// chunks pumped across the edge.
	depth := gatherFamily(reg, "mimonet_edge_queue_depth")
	wait := gatherFamily(reg, "mimonet_edge_wait_seconds")
	if depth == nil || wait == nil {
		t.Fatal("edge families not registered")
	}
	if len(wait.Points) != 1 {
		t.Fatalf("edge wait points = %d, want 1", len(wait.Points))
	}
	p := wait.Points[0]
	if p.Labels[0].Key != "edge" || p.Labels[0].Value != "src:0->sink:0" {
		t.Fatalf("edge label = %+v", p.Labels)
	}
	if p.Count != 7 {
		t.Fatalf("edge wait count = %d, want 7 chunks", p.Count)
	}
	if wait.Kind != obs.KindHistogram || depth.Kind != obs.KindGauge {
		t.Fatalf("edge kinds = %s, %s", wait.Kind, depth.Kind)
	}
}

func TestNoMetricsKeepsRegistryOut(t *testing.T) {
	g := New()
	src := mkSource("src", 3, 1)
	sink := &SinkFunc{BlockName: "sink", Consume: func(Chunk) error { return nil }}
	for _, b := range []Block{src, sink} {
		if err := g.Add(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.Connect(src, 0, sink, 0); err != nil {
		t.Fatal(err)
	}
	if err := g.SetPolicy(Policy{TrackHealth: true}); err != nil {
		t.Fatal(err)
	}
	if err := g.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Health still counts through standalone obs counters.
	if g.Health()["sink"].ChunksIn != 3 {
		t.Fatalf("health = %+v", g.Health())
	}
}
