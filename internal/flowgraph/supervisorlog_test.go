package flowgraph

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/obs"
)

// restartRecord is what the OnRestart hook hands a flight recorder.
type restartRecord struct {
	block   string
	attempt int
	err     string
}

// TestSupervisorOnRestartHookAndLogging drives a scripted recoverable failure
// through the supervisor on a fake clock and verifies both observation
// channels: the OnRestart hook fires with the block identity, attempt number
// and triggering error, and the policy logger emits structured warn records
// carrying the canonical block attribute.
func TestSupervisorOnRestartHookAndLogging(t *testing.T) {
	fc := clock.NewFake(time.Unix(0, 0))
	var logBuf bytes.Buffer
	var mu sync.Mutex
	var restarts []restartRecord

	g := New()
	rt := &restartableTransform{name: "flaky", panicAt: -1, failAt: 0, stallAt: -1, restarting: true}
	fed := 0
	src := &SourceFunc{BlockName: "src", Next: func() (Chunk, error) {
		if fed >= 2 {
			return nil, io.EOF
		}
		fed++
		return Chunk{complex(float64(fed), 0)}, nil
	}}
	sink := &SinkFunc{BlockName: "sink", Consume: func(Chunk) error { return nil }}
	for _, b := range []Block{src, rt, sink} {
		if err := g.Add(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.Connect(src, 0, rt, 0); err != nil {
		t.Fatal(err)
	}
	if err := g.Connect(rt, 0, sink, 0); err != nil {
		t.Fatal(err)
	}
	err := g.SetPolicy(Policy{
		MaxRestarts: 1, BackoffBase: time.Hour, BackoffMax: time.Hour, Clock: fc,
		Logger: obs.NewLogger(&logBuf, slog.LevelDebug, true, "sim"),
		OnRestart: func(block string, attempt int, err error) {
			mu.Lock()
			restarts = append(restarts, restartRecord{block, attempt, err.Error()})
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- g.Run(context.Background()) }()
	deadline := time.After(10 * time.Second)
loop:
	for {
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("Run = %v, want clean completion after restart", err)
			}
			break loop
		case <-deadline:
			t.Fatal("restart never happened — backoff not driven by injected clock")
		default:
			fc.Advance(30 * time.Minute)
			time.Sleep(100 * time.Microsecond)
		}
	}

	mu.Lock()
	defer mu.Unlock()
	if len(restarts) != 1 {
		t.Fatalf("OnRestart fired %d times, want 1 (%v)", len(restarts), restarts)
	}
	r := restarts[0]
	if r.block != "flaky" || r.attempt != 1 {
		t.Errorf("hook saw block=%q attempt=%d, want flaky/1", r.block, r.attempt)
	}
	if !strings.Contains(r.err, "scripted failure") {
		t.Errorf("hook error = %q, want the triggering failure", r.err)
	}

	// The logger carries the same event as a structured warn record keyed by
	// the canonical block attribute.
	var rec struct {
		Level   string `json:"level"`
		Msg     string `json:"msg"`
		Block   string `json:"block"`
		Attempt int    `json:"attempt"`
		Kind    string `json:"kind"`
		Err     string `json:"err"`
		Node    string `json:"node"`
	}
	found := false
	for _, line := range strings.Split(strings.TrimSpace(logBuf.String()), "\n") {
		if line == "" || !strings.Contains(line, "block restarting") {
			continue
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("log line not JSON: %v\n%s", err, line)
		}
		found = true
	}
	if !found {
		t.Fatalf("no restart record in log output:\n%s", logBuf.String())
	}
	if rec.Level != "WARN" || rec.Block != "flaky" || rec.Kind != "recoverable" ||
		rec.Node != "sim" || !strings.Contains(rec.Err, "scripted failure") {
		t.Errorf("restart log record = %+v", rec)
	}
}

// TestSupervisorLogsTerminalFailure checks that a block failure the policy
// will not restart is logged at error level before it aborts the graph.
func TestSupervisorLogsTerminalFailure(t *testing.T) {
	var logBuf bytes.Buffer
	g := New()
	rt := &restartableTransform{name: "doomed", panicAt: -1, failAt: 0, stallAt: -1, restarting: false}
	fed := 0
	src := &SourceFunc{BlockName: "src", Next: func() (Chunk, error) {
		if fed >= 1 {
			return nil, io.EOF
		}
		fed++
		return Chunk{1}, nil
	}}
	sink := &SinkFunc{BlockName: "sink", Consume: func(Chunk) error { return nil }}
	for _, b := range []Block{src, rt, sink} {
		if err := g.Add(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.Connect(src, 0, rt, 0); err != nil {
		t.Fatal(err)
	}
	if err := g.Connect(rt, 0, sink, 0); err != nil {
		t.Fatal(err)
	}
	if err := g.SetPolicy(Policy{Logger: obs.NewLogger(&logBuf, slog.LevelInfo, true, "")}); err != nil {
		t.Fatal(err)
	}
	if err := g.Run(context.Background()); err == nil {
		t.Fatal("Run succeeded, want scripted failure to surface")
	}
	out := logBuf.String()
	if !strings.Contains(out, `"msg":"block failed"`) ||
		!strings.Contains(out, `"block":"doomed"`) ||
		!strings.Contains(out, `"level":"ERROR"`) {
		t.Fatalf("terminal failure not logged:\n%s", out)
	}
}
