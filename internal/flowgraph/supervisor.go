package flowgraph

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sync/atomic"
	"time"

	"repro/internal/clock"
	"repro/internal/metrics"
	"repro/internal/obs"
)

// Policy tunes block supervision. The zero value still contains panics
// (recovered into typed BlockErrors), always cascades channel closure, and
// joins every block failure — but performs no restarts, no stall detection,
// and no per-chunk health accounting.
type Policy struct {
	// MaxRestarts bounds supervisor restarts per Restartable block.
	MaxRestarts int
	// BackoffBase is the delay before the first restart; it doubles per
	// subsequent restart up to BackoffMax. Defaults: 10ms and 1s when
	// restarts are enabled.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// StallTimeout enables the per-block watchdog: a block that makes no
	// chunk progress for this long while input is pending (or, for a
	// source, while downstream has capacity) is declared stalled and its
	// attempt is cancelled. Zero disables the watchdog.
	StallTimeout time.Duration
	// StallGrace bounds the wait for a cancelled attempt to unwind before
	// its goroutine is abandoned. Default 250ms.
	StallGrace time.Duration
	// TrackHealth enables per-chunk health accounting (edge pumps) even
	// without a watchdog. Implied by StallTimeout > 0.
	TrackHealth bool
	// Metrics, when set, is the obs registry the graph exposes itself
	// through: per-block health counters register under the
	// mimonet_block_* families and every edge pump maintains a queue-depth
	// gauge and a delivery-wait histogram (whose _count is the chunk
	// throughput series). Setting it implies edge instrumentation. Nil
	// keeps the un-instrumented fast path allocation-free.
	Metrics *obs.Registry
	// Clock supplies the time source for the watchdog, backoff, and grace
	// waits. Nil means the system clock; tests inject clock.Fake to drive
	// stall detection without wall-clock sleeps.
	Clock clock.Clock
	// Logger, when set, receives structured supervision events — block
	// stalls, panics, restarts, and terminal failures — with the block name
	// and attempt attached. Nil keeps supervision silent.
	Logger *slog.Logger
	// OnRestart, when set, observes every supervisor restart just before
	// the block re-runs: the hook a flight recorder uses to dump the
	// evidence ring that preceded the crash. err is the failure that
	// triggered the restart.
	OnRestart func(block string, attempt int, err error)
}

func (p Policy) withDefaults() Policy {
	if p.MaxRestarts > 0 {
		if p.BackoffBase <= 0 {
			p.BackoffBase = 10 * time.Millisecond
		}
		if p.BackoffMax < p.BackoffBase {
			p.BackoffMax = time.Second
			if p.BackoffMax < p.BackoffBase {
				p.BackoffMax = p.BackoffBase
			}
		}
	}
	if p.StallTimeout > 0 && p.StallGrace <= 0 {
		p.StallGrace = 250 * time.Millisecond
	}
	p.Clock = clock.Or(p.Clock)
	return p
}

// instrumented reports whether edges need counting pumps.
func (p Policy) instrumented() bool {
	return p.TrackHealth || p.StallTimeout > 0 || p.Metrics != nil
}

// edgeObs holds one edge's exposition instruments. A nil *edgeObs (no
// Policy.Metrics) keeps the pump on its metric-free path with zero clock
// reads per chunk.
type edgeObs struct {
	// queue tracks the producer-side proxy buffer occupancy in chunks.
	queue *obs.Gauge
	// wait observes the seconds each chunk spends blocked between the
	// producer proxy and consumer acceptance — the backpressure-wait /
	// chunk-delivery latency distribution. Its _count doubles as the
	// per-edge chunk throughput counter (items/sec under rate()).
	wait *obs.Histogram
	clk  clock.Clock
}

// newEdgeObs registers the instruments for one edge, labelled
// edge="from:port->to:port". Returns nil when no registry is configured.
func newEdgeObs(reg *obs.Registry, clk clock.Clock, edge string) *edgeObs {
	if reg == nil {
		return nil
	}
	label := obs.Label{Key: "edge", Value: edge}
	return &edgeObs{
		queue: reg.Gauge("mimonet_edge_queue_depth",
			"chunks buffered in the edge's producer-side proxy", label),
		wait: reg.Histogram("mimonet_edge_wait_seconds",
			"seconds a chunk waits between production and consumer acceptance",
			obs.ExpBuckets(1e-6, 4, 10), label),
		clk: clk,
	}
}

// blockState is the supervisor's runtime accounting for one block.
type blockState struct {
	name   string
	health *metrics.Health
	// inWait counts edge pumps blocked delivering a chunk into this block —
	// pending input the block is not consuming.
	inWait atomic.Int64
	// outPressure counts this block's out-edge pumps blocked pushing a
	// chunk downstream — the block is backpressured, not stalled.
	outPressure atomic.Int64
}

// activity is the watchdog's progress measure.
func (st *blockState) activity() int64 { return st.health.ChunksIn() + st.health.ChunksOut() }

// pump forwards chunks from a producer-side proxy channel to a
// consumer-side one, counting per-block progress so the watchdog can tell a
// stalled block from a merely idle or backpressured one. When eo is set it
// additionally maintains the edge's exposition instruments (queue depth,
// delivery-wait histogram); when nil, no clock is read and nothing
// allocates per chunk. It closes the downstream channel on exit so shutdown
// cascades even under cancellation.
func pump(ctx context.Context, from <-chan Chunk, to chan<- Chunk, prod, cons *blockState, eo *edgeObs) {
	defer close(to)
	for {
		var c Chunk
		var ok bool
		select {
		case c, ok = <-from:
		case <-ctx.Done():
			return
		}
		if !ok {
			return
		}
		prod.health.AddOut(1)
		prod.outPressure.Add(1)
		cons.inWait.Add(1)
		var sendStart time.Time
		if eo != nil {
			eo.queue.Set(float64(len(from)))
			sendStart = eo.clk.Now()
		}
		select {
		case to <- c:
			prod.outPressure.Add(-1)
			cons.inWait.Add(-1)
			cons.health.AddIn(1)
			if eo != nil {
				eo.wait.Observe(eo.clk.Since(sendStart).Seconds())
			}
		case <-ctx.Done():
			prod.outPressure.Add(-1)
			cons.inWait.Add(-1)
			return
		}
	}
}

// supervisor drives every block through panic containment, the stall
// watchdog, and the restart policy.
type supervisor struct {
	policy Policy
	states map[Block]*blockState
}

// runBlock owns one block's lifecycle: attempts with backoff in between,
// and — always — closing the block's owned output channels on the way out
// so downstream shutdown cascades no matter how the block died.
func (s *supervisor) runBlock(ctx context.Context, b Block, ins []<-chan Chunk, outs []chan<- Chunk, owned []chan Chunk) error {
	st := s.states[b]
	defer func() {
		for _, ch := range owned {
			if ch != nil {
				close(ch)
			}
		}
	}()
	restartable := false
	if r, ok := b.(Restartable); ok {
		restartable = r.Restartable()
	}
	for attempt := 0; ; attempt++ {
		berr := s.attempt(ctx, b, st, attempt, ins, outs)
		if berr == nil {
			return nil
		}
		if berr.Kind == KindFatal || !restartable || attempt >= s.policy.MaxRestarts || ctx.Err() != nil {
			s.logEvent(slog.LevelError, "block failed", st.name, attempt, berr)
			return berr
		}
		delay := s.policy.BackoffBase
		for i := 0; i < attempt && delay < s.policy.BackoffMax; i++ {
			delay *= 2
		}
		if delay > s.policy.BackoffMax {
			delay = s.policy.BackoffMax
		}
		s.logEvent(slog.LevelWarn, "block restarting", st.name, attempt, berr)
		timer := s.policy.Clock.NewTimer(delay)
		select {
		case <-timer.C:
		case <-ctx.Done():
			timer.Stop()
			return berr
		}
		st.health.AddRestart()
		if s.policy.OnRestart != nil {
			s.policy.OnRestart(st.name, attempt+1, berr)
		}
	}
}

// logEvent emits one supervision record through the policy logger, carrying
// the canonical block attribute plus the attempt index and failure taxonomy.
func (s *supervisor) logEvent(level slog.Level, msg, block string, attempt int, berr *BlockError) {
	if s.policy.Logger == nil {
		return
	}
	s.policy.Logger.Log(context.Background(), level, msg,
		obs.LogBlock(block), slog.Int("attempt", attempt),
		slog.String("kind", berr.Kind.String()), slog.String("err", berr.Err.Error()))
}

// attempt runs Run once with panic containment and, when enabled, the stall
// watchdog. nil means clean completion (or cooperative cancellation).
func (s *supervisor) attempt(ctx context.Context, b Block, st *blockState, attempt int, ins []<-chan Chunk, outs []chan<- Chunk) *BlockError {
	attemptCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	res := make(chan *BlockError, 1)
	go func() {
		defer func() {
			if p := recover(); p != nil {
				st.health.AddPanic()
				res <- &BlockError{Block: st.name, Kind: KindPanic, Attempt: attempt, Err: fmt.Errorf("panic: %v", p)}
			}
		}()
		res <- classify(st.name, attempt, b.Run(attemptCtx, ins, outs))
	}()
	if s.policy.StallTimeout <= 0 {
		return <-res
	}
	poll := s.policy.StallTimeout / 4
	if poll < time.Millisecond {
		poll = time.Millisecond
	}
	clk := s.policy.Clock
	tick := clk.NewTicker(poll)
	defer tick.Stop()
	last := st.activity()
	lastChange := clk.Now()
	for {
		select {
		case be := <-res:
			return be
		case <-tick.C:
			if ctx.Err() != nil {
				// Graph is shutting down; give the block a bounded window
				// to unwind rather than hanging Run on a wedged goroutine.
				grace := s.policy.StallGrace
				if grace < s.policy.StallTimeout {
					grace = s.policy.StallTimeout
				}
				select {
				case be := <-res:
					return be
				case <-clk.After(grace):
					st.health.AddAbandoned()
					return &BlockError{Block: st.name, Kind: KindStall, Attempt: attempt,
						Err: fmt.Errorf("%w (goroutine abandoned during shutdown)", ErrStall)}
				}
			}
			if cur := st.activity(); cur != last {
				last, lastChange = cur, clk.Now()
				continue
			}
			// A block is stalled only when it demonstrably has work it is
			// not doing: an upstream pump waiting to deliver, or — for a
			// source — downstream capacity it is not filling.
			pending := st.inWait.Load() > 0 || (b.Inputs() == 0 && st.outPressure.Load() == 0)
			if !pending || clk.Since(lastChange) < s.policy.StallTimeout {
				continue
			}
			st.health.AddStall()
			cancel()
			serr := fmt.Errorf("%w (after %d chunks)", ErrStall, st.activity())
			select {
			case <-res:
				// The attempt unwound cooperatively; report the stall, not
				// the context error the cancelled Run returned.
				return &BlockError{Block: st.name, Kind: KindStall, Attempt: attempt, Err: serr}
			case <-clk.After(s.policy.StallGrace):
				st.health.AddAbandoned()
				return &BlockError{Block: st.name, Kind: KindStall, Attempt: attempt,
					Err: fmt.Errorf("%w (goroutine abandoned)", serr)}
			}
		}
	}
}

// classify maps a Run return value onto the error taxonomy. Cooperative
// cancellation is not a failure — the graph-level context error surfaces
// from Run itself.
func classify(name string, attempt int, err error) *BlockError {
	if err == nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return nil
	}
	var be *BlockError
	if errors.As(err, &be) {
		return be
	}
	kind := KindFatal
	if IsRecoverable(err) {
		kind = KindRecoverable
	}
	return &BlockError{Block: name, Kind: kind, Attempt: attempt, Err: err}
}
