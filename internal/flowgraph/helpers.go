package flowgraph

import (
	"context"
	"errors"
	"io"
)

// SourceFunc adapts a generator function into a 0-in/1-out block. The
// function returns chunks until it returns io.EOF (clean end of stream) or
// another error (aborts the graph).
type SourceFunc struct {
	BlockName string
	Next      func() (Chunk, error)
}

// Name implements Block.
func (s *SourceFunc) Name() string { return s.BlockName }

// Inputs implements Block.
func (s *SourceFunc) Inputs() int { return 0 }

// Outputs implements Block.
func (s *SourceFunc) Outputs() int { return 1 }

// Run implements Block.
func (s *SourceFunc) Run(ctx context.Context, _ []<-chan Chunk, out []chan<- Chunk) error {
	if s.Next == nil {
		return errors.New("flowgraph: SourceFunc.Next is nil")
	}
	for {
		c, err := s.Next()
		if errors.Is(err, io.EOF) {
			return nil
		}
		if err != nil {
			return err
		}
		if !Send(ctx, out[0], c) {
			return ctx.Err()
		}
	}
}

// SinkFunc adapts a consumer function into a 1-in/0-out block.
type SinkFunc struct {
	BlockName string
	Consume   func(Chunk) error
}

// Name implements Block.
func (s *SinkFunc) Name() string { return s.BlockName }

// Inputs implements Block.
func (s *SinkFunc) Inputs() int { return 1 }

// Outputs implements Block.
func (s *SinkFunc) Outputs() int { return 0 }

// Run implements Block.
func (s *SinkFunc) Run(ctx context.Context, in []<-chan Chunk, _ []chan<- Chunk) error {
	if s.Consume == nil {
		return errors.New("flowgraph: SinkFunc.Consume is nil")
	}
	for {
		c, ok := Recv(ctx, in[0])
		if !ok {
			return ctx.Err()
		}
		if err := s.Consume(c); err != nil {
			return err
		}
	}
}

// TransformFunc adapts a chunk transformer into a 1-in/1-out block. The
// function may return a nil chunk to drop input.
type TransformFunc struct {
	BlockName string
	Apply     func(Chunk) (Chunk, error)
}

// Name implements Block.
func (t *TransformFunc) Name() string { return t.BlockName }

// Inputs implements Block.
func (t *TransformFunc) Inputs() int { return 1 }

// Outputs implements Block.
func (t *TransformFunc) Outputs() int { return 1 }

// Run implements Block.
func (t *TransformFunc) Run(ctx context.Context, in []<-chan Chunk, out []chan<- Chunk) error {
	if t.Apply == nil {
		return errors.New("flowgraph: TransformFunc.Apply is nil")
	}
	for {
		c, ok := Recv(ctx, in[0])
		if !ok {
			return ctx.Err()
		}
		o, err := t.Apply(c)
		if err != nil {
			return err
		}
		if o == nil {
			continue
		}
		if !Send(ctx, out[0], o) {
			return ctx.Err()
		}
	}
}

// Fanout duplicates one input stream onto N outputs, copying each chunk so
// downstream blocks own independent data.
type Fanout struct {
	BlockName string
	N         int
}

// Name implements Block.
func (f *Fanout) Name() string { return f.BlockName }

// Inputs implements Block.
func (f *Fanout) Inputs() int { return 1 }

// Outputs implements Block.
func (f *Fanout) Outputs() int { return f.N }

// Run implements Block.
func (f *Fanout) Run(ctx context.Context, in []<-chan Chunk, out []chan<- Chunk) error {
	for {
		c, ok := Recv(ctx, in[0])
		if !ok {
			return ctx.Err()
		}
		for i, o := range out {
			cp := c
			if i > 0 {
				// The copy is the point: each downstream block must own
				// independent data (receiver-owns-chunk contract).
				cp = append(Chunk(nil), c...) //mimonet:alloc-ok
			}
			if !Send(ctx, o, cp) {
				return ctx.Err()
			}
		}
	}
}
