package flowgraph

import (
	"context"
	"errors"
	"io"
	"sync/atomic"
	"testing"
	"time"
)

// mkSource emits n chunks of the given value.
func mkSource(name string, n int, val complex128) *SourceFunc {
	count := 0
	return &SourceFunc{BlockName: name, Next: func() (Chunk, error) {
		if count >= n {
			return nil, io.EOF
		}
		count++
		return Chunk{val, val}, nil
	}}
}

func TestLinearPipeline(t *testing.T) {
	g := New()
	src := mkSource("src", 10, 1)
	doubler := &TransformFunc{BlockName: "x2", Apply: func(c Chunk) (Chunk, error) {
		for i := range c {
			c[i] *= 2
		}
		return c, nil
	}}
	var got int64
	sink := &SinkFunc{BlockName: "sink", Consume: func(c Chunk) error {
		for _, v := range c {
			if v != 2 {
				return errors.New("wrong value")
			}
			atomic.AddInt64(&got, 1)
		}
		return nil
	}}
	for _, b := range []Block{src, doubler, sink} {
		if err := g.Add(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.Connect(src, 0, doubler, 0); err != nil {
		t.Fatal(err)
	}
	if err := g.Connect(doubler, 0, sink, 0); err != nil {
		t.Fatal(err)
	}
	if err := g.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got != 20 {
		t.Errorf("sink saw %d samples, want 20", got)
	}
}

func TestFanout(t *testing.T) {
	g := New()
	src := mkSource("src", 5, 3)
	fan := &Fanout{BlockName: "fan", N: 2}
	var a, b int64
	sinkA := &SinkFunc{BlockName: "a", Consume: func(c Chunk) error { atomic.AddInt64(&a, int64(len(c))); return nil }}
	sinkB := &SinkFunc{BlockName: "b", Consume: func(c Chunk) error { atomic.AddInt64(&b, int64(len(c))); return nil }}
	for _, blk := range []Block{src, fan, sinkA, sinkB} {
		if err := g.Add(blk); err != nil {
			t.Fatal(err)
		}
	}
	g.Connect(src, 0, fan, 0)
	g.Connect(fan, 0, sinkA, 0)
	g.Connect(fan, 1, sinkB, 0)
	if err := g.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if a != 10 || b != 10 {
		t.Errorf("fanout delivered %d, %d; want 10 each", a, b)
	}
}

func TestErrorPropagatesAndCancels(t *testing.T) {
	g := New()
	src := &SourceFunc{BlockName: "src", Next: func() (Chunk, error) {
		return Chunk{1}, nil // infinite
	}}
	boom := errors.New("boom")
	n := 0
	sink := &SinkFunc{BlockName: "sink", Consume: func(c Chunk) error {
		n++
		if n > 3 {
			return boom
		}
		return nil
	}}
	g.Add(src)
	g.Add(sink)
	g.Connect(src, 0, sink, 0)
	done := make(chan error, 1)
	go func() { done <- g.Run(context.Background()) }()
	select {
	case err := <-done:
		if !errors.Is(err, boom) {
			t.Errorf("Run returned %v, want boom", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("graph did not shut down after block error")
	}
}

func TestExternalCancellation(t *testing.T) {
	g := New()
	src := &SourceFunc{BlockName: "src", Next: func() (Chunk, error) { return Chunk{1}, nil }}
	sink := &SinkFunc{BlockName: "sink", Consume: func(Chunk) error { return nil }}
	g.Add(src)
	g.Add(sink)
	g.Connect(src, 0, sink, 0)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- g.Run(ctx) }()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("Run returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("graph did not stop on cancellation")
	}
}

func TestValidation(t *testing.T) {
	g := New()
	src := mkSource("src", 1, 1)
	sink := &SinkFunc{BlockName: "sink", Consume: func(Chunk) error { return nil }}
	if err := g.Add(nil); err == nil {
		t.Error("nil block should fail")
	}
	g.Add(src)
	if err := g.Add(src); err == nil {
		t.Error("duplicate Add should fail")
	}
	if err := g.Connect(src, 0, sink, 0); err == nil {
		t.Error("connecting unadded block should fail")
	}
	g.Add(sink)
	if err := g.Connect(src, 1, sink, 0); err == nil {
		t.Error("bad output port should fail")
	}
	if err := g.Connect(src, 0, sink, 3); err == nil {
		t.Error("bad input port should fail")
	}
	if err := g.Connect(src, 0, sink, 0); err != nil {
		t.Fatal(err)
	}
	if err := g.Connect(src, 0, sink, 0); err == nil {
		t.Error("double connection should fail")
	}
	if err := g.SetBufferDepth(0); err == nil {
		t.Error("zero depth should fail")
	}
}

func TestUnconnectedPortRejected(t *testing.T) {
	g := New()
	src := mkSource("src", 1, 1)
	g.Add(src)
	if err := g.Run(context.Background()); err == nil {
		t.Error("unconnected output should fail Run")
	}
}

func TestRunTwiceRejected(t *testing.T) {
	g := New()
	src := mkSource("src", 1, 1)
	sink := &SinkFunc{BlockName: "s", Consume: func(Chunk) error { return nil }}
	g.Add(src)
	g.Add(sink)
	g.Connect(src, 0, sink, 0)
	if err := g.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := g.Run(context.Background()); err == nil {
		t.Error("second Run should fail")
	}
}

func TestNilCallbacksError(t *testing.T) {
	g := New()
	src := &SourceFunc{BlockName: "src"}
	sink := &SinkFunc{BlockName: "sink", Consume: func(Chunk) error { return nil }}
	g.Add(src)
	g.Add(sink)
	g.Connect(src, 0, sink, 0)
	if err := g.Run(context.Background()); err == nil {
		t.Error("nil Next should fail the graph")
	}
}

func TestTransformDrop(t *testing.T) {
	g := New()
	src := mkSource("src", 4, 1)
	i := 0
	filter := &TransformFunc{BlockName: "drop-odd", Apply: func(c Chunk) (Chunk, error) {
		i++
		if i%2 == 1 {
			return nil, nil
		}
		return c, nil
	}}
	var got int
	sink := &SinkFunc{BlockName: "sink", Consume: func(c Chunk) error { got++; return nil }}
	g.Add(src)
	g.Add(filter)
	g.Add(sink)
	g.Connect(src, 0, filter, 0)
	g.Connect(filter, 0, sink, 0)
	if err := g.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Errorf("sink saw %d chunks, want 2", got)
	}
}

func BenchmarkPipelineThroughput(b *testing.B) {
	g := New()
	n := b.N
	count := 0
	chunk := make(Chunk, 1024)
	src := &SourceFunc{BlockName: "src", Next: func() (Chunk, error) {
		if count >= n {
			return nil, io.EOF
		}
		count++
		return chunk, nil
	}}
	pass := &TransformFunc{BlockName: "pass", Apply: func(c Chunk) (Chunk, error) { return c, nil }}
	sink := &SinkFunc{BlockName: "sink", Consume: func(Chunk) error { return nil }}
	g.Add(src)
	g.Add(pass)
	g.Add(sink)
	g.Connect(src, 0, pass, 0)
	g.Connect(pass, 0, sink, 0)
	b.SetBytes(1024 * 16)
	b.ResetTimer()
	if err := g.Run(context.Background()); err != nil {
		b.Fatal(err)
	}
}

func TestSetBufferDepthApplies(t *testing.T) {
	g := New()
	if err := g.SetBufferDepth(2); err != nil {
		t.Fatal(err)
	}
	src := mkSource("src", 3, 1)
	sink := &SinkFunc{BlockName: "sink", Consume: func(Chunk) error { return nil }}
	g.Add(src)
	g.Add(sink)
	if err := g.Connect(src, 0, sink, 0); err != nil {
		t.Fatal(err)
	}
	if err := g.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestHelperNames(t *testing.T) {
	if (&SinkFunc{BlockName: "s"}).Name() != "s" {
		t.Error("SinkFunc name")
	}
	if (&TransformFunc{BlockName: "t"}).Name() != "t" {
		t.Error("TransformFunc name")
	}
	if (&Fanout{BlockName: "f", N: 2}).Name() != "f" {
		t.Error("Fanout name")
	}
	nilT := &TransformFunc{BlockName: "nil"}
	g := New()
	src := mkSource("src", 1, 1)
	sink := &SinkFunc{BlockName: "sink", Consume: func(Chunk) error { return nil }}
	g.Add(src)
	g.Add(nilT)
	g.Add(sink)
	g.Connect(src, 0, nilT, 0)
	g.Connect(nilT, 0, sink, 0)
	if err := g.Run(context.Background()); err == nil {
		t.Error("nil Apply should fail the graph")
	}
}
