package flowgraph

import (
	"errors"
	"fmt"
)

// ErrorKind classifies block failures for the supervisor. The taxonomy
// decides the response: fatal errors abort the graph, everything else is a
// restart candidate when the block opts in via Restartable.
type ErrorKind int

const (
	// KindFatal errors abort the graph; no restart is attempted.
	KindFatal ErrorKind = iota
	// KindRecoverable errors (marked via Recoverable) permit a restart when
	// the block is Restartable and restart budget remains.
	KindRecoverable
	// KindPanic marks a panic recovered from the block's Run goroutine.
	KindPanic
	// KindStall marks a watchdog detection: no chunk progress within the
	// policy's StallTimeout while input was pending.
	KindStall
)

func (k ErrorKind) String() string {
	switch k {
	case KindFatal:
		return "fatal"
	case KindRecoverable:
		return "recoverable"
	case KindPanic:
		return "panic"
	case KindStall:
		return "stall"
	}
	return fmt.Sprintf("ErrorKind(%d)", int(k))
}

// BlockError is the typed failure the supervisor reports for one block.
type BlockError struct {
	// Block is the failing block's (uniquified) name.
	Block string
	// Kind classifies the failure.
	Kind ErrorKind
	// Attempt is the zero-based attempt index at the time of failure.
	Attempt int
	// Err is the underlying cause.
	Err error
}

func (e *BlockError) Error() string {
	return fmt.Sprintf("flowgraph: block %q %s (attempt %d): %v", e.Block, e.Kind, e.Attempt, e.Err)
}

// Unwrap exposes the cause to errors.Is/As.
func (e *BlockError) Unwrap() error { return e.Err }

// AsBlockError extracts the first BlockError in err's chain. Run joins
// multiple block failures with errors.Join; use errors.As directly to walk
// all of them.
func AsBlockError(err error) (*BlockError, bool) {
	var be *BlockError
	if errors.As(err, &be) {
		return be, true
	}
	return nil, false
}

// ErrStall is wrapped by every KindStall BlockError.
var ErrStall = errors.New("no chunk progress within the stall deadline")

type recoverableError struct{ err error }

func (r *recoverableError) Error() string { return r.err.Error() }
func (r *recoverableError) Unwrap() error { return r.err }

// Recoverable marks err as recoverable: a Restartable block returning it is
// restarted (with backoff) instead of failing the graph, while the restart
// budget lasts. A nil err stays nil.
func Recoverable(err error) error {
	if err == nil {
		return nil
	}
	return &recoverableError{err}
}

// IsRecoverable reports whether err carries the Recoverable marker.
func IsRecoverable(err error) bool {
	var r *recoverableError
	return errors.As(err, &r)
}

// Restartable is an optional Block interface. A block returning true may be
// re-run by the supervisor after a recoverable error, panic, or stall.
// Restarted blocks must tolerate re-entry: chunks consumed by the failed
// attempt are lost (the stream experiences an erasure), and Run resumes on
// the same channels.
type Restartable interface {
	Restartable() bool
}
