// Package flowgraph is a small GNU-Radio-style stream-processing engine: a
// graph of blocks connected by typed sample streams, each block running in
// its own goroutine with backpressure provided by bounded channels. It is
// the substrate that stands in for the GNU Radio runtime the paper builds
// on — the paper's "modified and added blocks" map onto Block
// implementations (see package blocks).
//
// Design notes, following Effective Go: blocks share memory by
// communicating. A chunk ([]complex128) is owned by the receiver once sent;
// senders must not retain or reuse it.
package flowgraph

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/metrics"
)

// Chunk is the unit of streaming: a slice of baseband samples.
type Chunk []complex128

// Block is a node in the flowgraph. Run reads from its input streams and
// writes to its output streams until the inputs are exhausted (closed), the
// context is cancelled, or an error occurs. On return the scheduler closes
// the block's outputs, which cascades shutdown downstream.
//
// Inputs and Outputs declare the port counts; Connect validates against
// them.
type Block interface {
	Name() string
	Inputs() int
	Outputs() int
	Run(ctx context.Context, in []<-chan Chunk, out []chan<- Chunk) error
}

// DefaultBufferDepth is the per-edge channel buffer (in chunks).
const DefaultBufferDepth = 8

// Graph assembles blocks and edges and executes them under supervision:
// every block goroutine recovers panics into typed BlockErrors, outputs are
// always closed so shutdown cascades, and — when a Policy enables them — a
// watchdog detects stalls and Restartable blocks are re-run with backoff.
type Graph struct {
	mu      sync.Mutex
	blocks  []Block
	edges   map[edgeKey]chan Chunk
	inUsed  map[portKey]bool
	outUsed map[portKey]bool
	depth   int
	started bool
	policy  Policy
	health  map[string]*metrics.Health
}

type edgeKey struct {
	from    Block
	fromOut int
	to      Block
	toIn    int
}

type portKey struct {
	b    Block
	port int
}

// New returns an empty graph with the default buffer depth.
func New() *Graph {
	return &Graph{
		edges:   make(map[edgeKey]chan Chunk),
		inUsed:  make(map[portKey]bool),
		outUsed: make(map[portKey]bool),
		depth:   DefaultBufferDepth,
	}
}

// SetBufferDepth changes the per-edge channel capacity for subsequently
// added connections. Must be called before Run.
func (g *Graph) SetBufferDepth(depth int) error {
	if depth < 1 {
		return fmt.Errorf("flowgraph: buffer depth %d < 1", depth)
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	g.depth = depth
	return nil
}

// Add registers a block. Adding the same block twice is an error.
func (g *Graph) Add(b Block) error {
	if b == nil {
		return errors.New("flowgraph: nil block")
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.started {
		return errors.New("flowgraph: graph already started")
	}
	for _, have := range g.blocks {
		if have == b {
			return fmt.Errorf("flowgraph: block %q added twice", b.Name())
		}
	}
	g.blocks = append(g.blocks, b)
	return nil
}

// Connect wires output port fromOut of block from to input port toIn of
// block to. Every port may be connected at most once (use an explicit
// fan-out block to duplicate a stream).
func (g *Graph) Connect(from Block, fromOut int, to Block, toIn int) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.started {
		return errors.New("flowgraph: graph already started")
	}
	if !g.has(from) || !g.has(to) {
		return errors.New("flowgraph: connect blocks must be added first")
	}
	if fromOut < 0 || fromOut >= from.Outputs() {
		return fmt.Errorf("flowgraph: %q has no output %d", from.Name(), fromOut)
	}
	if toIn < 0 || toIn >= to.Inputs() {
		return fmt.Errorf("flowgraph: %q has no input %d", to.Name(), toIn)
	}
	ok := portKey{from, fromOut}
	ik := portKey{to, toIn}
	if g.outUsed[ok] {
		return fmt.Errorf("flowgraph: output %q:%d already connected", from.Name(), fromOut)
	}
	if g.inUsed[ik] {
		return fmt.Errorf("flowgraph: input %q:%d already connected", to.Name(), toIn)
	}
	g.outUsed[ok] = true
	g.inUsed[ik] = true
	g.edges[edgeKey{from, fromOut, to, toIn}] = make(chan Chunk, g.depth)
	return nil
}

func (g *Graph) has(b Block) bool {
	for _, have := range g.blocks {
		if have == b {
			return true
		}
	}
	return false
}

// SetPolicy installs the supervision policy. Must be called before Run.
func (g *Graph) SetPolicy(p Policy) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.started {
		return errors.New("flowgraph: graph already started")
	}
	g.policy = p
	return nil
}

// Health returns per-block health snapshots, keyed by block name (names
// colliding within one graph are uniquified with a "#index" suffix). Chunk
// counters are populated only when the policy enables instrumentation
// (TrackHealth or a stall watchdog); supervision counters always are.
// Safe to call during and after Run.
func (g *Graph) Health() map[string]metrics.HealthSnapshot {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make(map[string]metrics.HealthSnapshot, len(g.health))
	for name, h := range g.health {
		out[name] = h.Snapshot()
	}
	return out
}

// Run validates that every declared port is connected, starts one
// supervised goroutine per block, and waits for completion. Block panics
// are recovered into BlockErrors, stalled blocks are detected and cancelled
// (when the policy sets a StallTimeout), Restartable blocks are re-run with
// exponential backoff, and every block failure is reported — Run joins them
// with errors.Join. Cancelling ctx stops the graph and returns ctx.Err().
func (g *Graph) Run(ctx context.Context) error {
	g.mu.Lock()
	if g.started {
		g.mu.Unlock()
		return errors.New("flowgraph: graph already started")
	}
	for _, b := range g.blocks {
		for p := 0; p < b.Inputs(); p++ {
			if !g.inUsed[portKey{b, p}] {
				g.mu.Unlock()
				return fmt.Errorf("flowgraph: input %q:%d unconnected", b.Name(), p)
			}
		}
		for p := 0; p < b.Outputs(); p++ {
			if !g.outUsed[portKey{b, p}] {
				g.mu.Unlock()
				return fmt.Errorf("flowgraph: output %q:%d unconnected", b.Name(), p)
			}
		}
	}
	g.started = true
	policy := g.policy.withDefaults()
	blocks := append([]Block(nil), g.blocks...)
	states := make(map[Block]*blockState, len(blocks))
	g.health = make(map[string]*metrics.Health, len(blocks))
	for i, b := range blocks {
		name := b.Name()
		if _, dup := g.health[name]; dup {
			name = fmt.Sprintf("%s#%d", name, i)
		}
		h := metrics.NewHealthIn(policy.Metrics, name)
		g.health[name] = h
		states[b] = &blockState{name: name, health: h}
	}
	// Snapshot per-block port channels. Under instrumentation each edge is
	// split into a producer-side proxy and the original channel, joined by a
	// counting pump; otherwise blocks talk over the edges directly.
	ins := make(map[Block][]<-chan Chunk)
	outs := make(map[Block][]chan<- Chunk)
	outOwned := make(map[Block][]chan Chunk)
	for _, b := range blocks {
		ins[b] = make([]<-chan Chunk, b.Inputs())
		outs[b] = make([]chan<- Chunk, b.Outputs())
		outOwned[b] = make([]chan Chunk, b.Outputs())
	}
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	var pumps []func()
	for k, ch := range g.edges {
		if !policy.instrumented() {
			outs[k.from][k.fromOut] = ch
			outOwned[k.from][k.fromOut] = ch
			ins[k.to][k.toIn] = ch
			continue
		}
		// All buffering moves to the producer-side proxy; the consumer side
		// is unbuffered so a pump blocked in delivery is exactly "input
		// pending", the watchdog's stall predicate.
		pOut := make(chan Chunk, cap(ch))
		cIn := make(chan Chunk)
		outs[k.from][k.fromOut] = pOut
		outOwned[k.from][k.fromOut] = pOut
		ins[k.to][k.toIn] = cIn
		prod, cons := states[k.from], states[k.to]
		eo := newEdgeObs(policy.Metrics, policy.Clock,
			fmt.Sprintf("%s:%d->%s:%d", prod.name, k.fromOut, cons.name, k.toIn))
		pumps = append(pumps, func() { pump(runCtx, pOut, cIn, prod, cons, eo) })
	}
	g.mu.Unlock()

	var pumpWg sync.WaitGroup
	for _, p := range pumps {
		pumpWg.Add(1)
		go func(p func()) {
			defer pumpWg.Done()
			p()
		}(p)
	}
	sup := &supervisor{policy: policy, states: states}
	var wg sync.WaitGroup
	errCh := make(chan error, len(blocks))
	for _, b := range blocks {
		wg.Add(1)
		go func(b Block) {
			defer wg.Done()
			if err := sup.runBlock(runCtx, b, ins[b], outs[b], outOwned[b]); err != nil {
				errCh <- err
				cancel()
			}
		}(b)
	}
	wg.Wait()
	cancel()
	pumpWg.Wait()
	close(errCh)
	var errs []error
	for err := range errCh {
		errs = append(errs, err)
	}
	if len(errs) > 0 {
		return errors.Join(errs...)
	}
	return ctx.Err()
}

// Send delivers one chunk with cancellation, for use inside Block.Run.
// It returns false when the context ended before delivery.
func Send(ctx context.Context, out chan<- Chunk, c Chunk) bool {
	select {
	case out <- c:
		return true
	case <-ctx.Done():
		return false
	}
}

// Recv receives one chunk with cancellation. ok is false when the stream is
// closed or the context ended.
func Recv(ctx context.Context, in <-chan Chunk) (Chunk, bool) {
	select {
	case c, ok := <-in:
		return c, ok
	case <-ctx.Done():
		return nil, false
	}
}
