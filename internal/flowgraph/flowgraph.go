// Package flowgraph is a small GNU-Radio-style stream-processing engine: a
// graph of blocks connected by typed sample streams, each block running in
// its own goroutine with backpressure provided by bounded channels. It is
// the substrate that stands in for the GNU Radio runtime the paper builds
// on — the paper's "modified and added blocks" map onto Block
// implementations (see package blocks).
//
// Design notes, following Effective Go: blocks share memory by
// communicating. A chunk ([]complex128) is owned by the receiver once sent;
// senders must not retain or reuse it.
package flowgraph

import (
	"context"
	"errors"
	"fmt"
	"sync"
)

// Chunk is the unit of streaming: a slice of baseband samples.
type Chunk []complex128

// Block is a node in the flowgraph. Run reads from its input streams and
// writes to its output streams until the inputs are exhausted (closed), the
// context is cancelled, or an error occurs. On return the scheduler closes
// the block's outputs, which cascades shutdown downstream.
//
// Inputs and Outputs declare the port counts; Connect validates against
// them.
type Block interface {
	Name() string
	Inputs() int
	Outputs() int
	Run(ctx context.Context, in []<-chan Chunk, out []chan<- Chunk) error
}

// DefaultBufferDepth is the per-edge channel buffer (in chunks).
const DefaultBufferDepth = 8

// Graph assembles blocks and edges and executes them.
type Graph struct {
	mu      sync.Mutex
	blocks  []Block
	edges   map[edgeKey]chan Chunk
	inUsed  map[portKey]bool
	outUsed map[portKey]bool
	depth   int
	started bool
}

type edgeKey struct {
	from    Block
	fromOut int
	to      Block
	toIn    int
}

type portKey struct {
	b    Block
	port int
}

// New returns an empty graph with the default buffer depth.
func New() *Graph {
	return &Graph{
		edges:   make(map[edgeKey]chan Chunk),
		inUsed:  make(map[portKey]bool),
		outUsed: make(map[portKey]bool),
		depth:   DefaultBufferDepth,
	}
}

// SetBufferDepth changes the per-edge channel capacity for subsequently
// added connections. Must be called before Run.
func (g *Graph) SetBufferDepth(depth int) error {
	if depth < 1 {
		return fmt.Errorf("flowgraph: buffer depth %d < 1", depth)
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	g.depth = depth
	return nil
}

// Add registers a block. Adding the same block twice is an error.
func (g *Graph) Add(b Block) error {
	if b == nil {
		return errors.New("flowgraph: nil block")
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.started {
		return errors.New("flowgraph: graph already started")
	}
	for _, have := range g.blocks {
		if have == b {
			return fmt.Errorf("flowgraph: block %q added twice", b.Name())
		}
	}
	g.blocks = append(g.blocks, b)
	return nil
}

// Connect wires output port fromOut of block from to input port toIn of
// block to. Every port may be connected at most once (use an explicit
// fan-out block to duplicate a stream).
func (g *Graph) Connect(from Block, fromOut int, to Block, toIn int) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.started {
		return errors.New("flowgraph: graph already started")
	}
	if !g.has(from) || !g.has(to) {
		return errors.New("flowgraph: connect blocks must be added first")
	}
	if fromOut < 0 || fromOut >= from.Outputs() {
		return fmt.Errorf("flowgraph: %q has no output %d", from.Name(), fromOut)
	}
	if toIn < 0 || toIn >= to.Inputs() {
		return fmt.Errorf("flowgraph: %q has no input %d", to.Name(), toIn)
	}
	ok := portKey{from, fromOut}
	ik := portKey{to, toIn}
	if g.outUsed[ok] {
		return fmt.Errorf("flowgraph: output %q:%d already connected", from.Name(), fromOut)
	}
	if g.inUsed[ik] {
		return fmt.Errorf("flowgraph: input %q:%d already connected", to.Name(), toIn)
	}
	g.outUsed[ok] = true
	g.inUsed[ik] = true
	g.edges[edgeKey{from, fromOut, to, toIn}] = make(chan Chunk, g.depth)
	return nil
}

func (g *Graph) has(b Block) bool {
	for _, have := range g.blocks {
		if have == b {
			return true
		}
	}
	return false
}

// Run validates that every declared port is connected, starts one goroutine
// per block, and waits for completion. The first block error cancels the
// context seen by all blocks; Run returns that error (or the context's, if
// cancelled externally).
func (g *Graph) Run(ctx context.Context) error {
	g.mu.Lock()
	if g.started {
		g.mu.Unlock()
		return errors.New("flowgraph: graph already started")
	}
	for _, b := range g.blocks {
		for p := 0; p < b.Inputs(); p++ {
			if !g.inUsed[portKey{b, p}] {
				g.mu.Unlock()
				return fmt.Errorf("flowgraph: input %q:%d unconnected", b.Name(), p)
			}
		}
		for p := 0; p < b.Outputs(); p++ {
			if !g.outUsed[portKey{b, p}] {
				g.mu.Unlock()
				return fmt.Errorf("flowgraph: output %q:%d unconnected", b.Name(), p)
			}
		}
	}
	g.started = true
	blocks := append([]Block(nil), g.blocks...)
	// Snapshot per-block port channels.
	ins := make(map[Block][]<-chan Chunk)
	outs := make(map[Block][]chan<- Chunk)
	outOwned := make(map[Block][]chan Chunk)
	for _, b := range blocks {
		ins[b] = make([]<-chan Chunk, b.Inputs())
		outs[b] = make([]chan<- Chunk, b.Outputs())
		outOwned[b] = make([]chan Chunk, b.Outputs())
	}
	for k, ch := range g.edges {
		outs[k.from][k.fromOut] = ch
		outOwned[k.from][k.fromOut] = ch
		ins[k.to][k.toIn] = ch
	}
	g.mu.Unlock()

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	var wg sync.WaitGroup
	errCh := make(chan error, len(blocks))
	for _, b := range blocks {
		wg.Add(1)
		go func(b Block) {
			defer wg.Done()
			err := b.Run(runCtx, ins[b], outs[b])
			// Close outputs so downstream blocks drain and finish.
			for _, ch := range outOwned[b] {
				close(ch)
			}
			if err != nil && !errors.Is(err, context.Canceled) {
				errCh <- fmt.Errorf("flowgraph: block %q: %w", b.Name(), err)
				cancel()
			}
		}(b)
	}
	wg.Wait()
	close(errCh)
	if err, ok := <-errCh; ok {
		return err
	}
	return ctx.Err()
}

// Send delivers one chunk with cancellation, for use inside Block.Run.
// It returns false when the context ended before delivery.
func Send(ctx context.Context, out chan<- Chunk, c Chunk) bool {
	select {
	case out <- c:
		return true
	case <-ctx.Done():
		return false
	}
}

// Recv receives one chunk with cancellation. ok is false when the stream is
// closed or the context ended.
func Recv(ctx context.Context, in <-chan Chunk) (Chunk, bool) {
	select {
	case c, ok := <-in:
		return c, ok
	case <-ctx.Done():
		return nil, false
	}
}
