package flowgraph

import (
	"context"
	"errors"
	"io"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// restartableTransform is a 1-in/1-out pass-through that can be scripted to
// panic, fail, or stall once, and opts into supervisor restarts.
type restartableTransform struct {
	name       string
	panicAt    int // chunk index to panic on (-1 = never)
	failAt     int // chunk index to return a recoverable error on (-1 = never)
	stallAt    int // chunk index to stall on (-1 = never)
	fired      atomic.Bool
	seen       atomic.Int64
	restarting bool
}

func (r *restartableTransform) Name() string      { return r.name }
func (r *restartableTransform) Inputs() int       { return 1 }
func (r *restartableTransform) Outputs() int      { return 1 }
func (r *restartableTransform) Restartable() bool { return r.restarting }

func (r *restartableTransform) Run(ctx context.Context, in []<-chan Chunk, out []chan<- Chunk) error {
	for {
		c, ok := Recv(ctx, in[0])
		if !ok {
			return ctx.Err()
		}
		n := int(r.seen.Add(1)) - 1
		if n == r.panicAt && r.fired.CompareAndSwap(false, true) {
			panic("scripted panic")
		}
		if n == r.failAt && r.fired.CompareAndSwap(false, true) {
			return Recoverable(errors.New("scripted failure"))
		}
		if n == r.stallAt && r.fired.CompareAndSwap(false, true) {
			<-ctx.Done()
			return ctx.Err()
		}
		if !Send(ctx, out[0], c) {
			return ctx.Err()
		}
	}
}

func countingSink(got *atomic.Int64) *SinkFunc {
	return &SinkFunc{BlockName: "sink", Consume: func(Chunk) error {
		got.Add(1)
		return nil
	}}
}

func buildChain(t *testing.T, g *Graph, chain ...Block) {
	t.Helper()
	for _, b := range chain {
		if err := g.Add(b); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i+1 < len(chain); i++ {
		if err := g.Connect(chain[i], 0, chain[i+1], 0); err != nil {
			t.Fatal(err)
		}
	}
}

// A panicking block must not wedge the graph: its outputs close, downstream
// drains, and Run reports a typed KindPanic BlockError.
func TestPanicClosesOutputsAndCascades(t *testing.T) {
	g := New()
	tr := &restartableTransform{name: "boom", panicAt: 3, failAt: -1, stallAt: -1}
	var got atomic.Int64
	buildChain(t, g, mkSource("src", 10, 1), tr, countingSink(&got))
	done := make(chan error, 1)
	go func() { done <- g.Run(context.Background()) }()
	select {
	case err := <-done:
		be, ok := AsBlockError(err)
		if !ok {
			t.Fatalf("Run returned %v, want a BlockError", err)
		}
		if be.Kind != KindPanic || be.Block != "boom" {
			t.Errorf("got %v/%s, want KindPanic on boom", be.Kind, be.Block)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("graph deadlocked after block panic")
	}
}

// Multiple simultaneous block failures must all be reported, not just the
// first drained from the error channel.
func TestAllBlockErrorsJoined(t *testing.T) {
	g := New()
	failA := errors.New("fail-a")
	failB := errors.New("fail-b")
	srcA := &SourceFunc{BlockName: "srcA", Next: func() (Chunk, error) { return nil, failA }}
	srcB := &SourceFunc{BlockName: "srcB", Next: func() (Chunk, error) { return nil, failB }}
	sink := &SinkFunc{BlockName: "sink2", Consume: func(Chunk) error { return nil }}
	sink2in := &twoInSink{inner: sink}
	for _, b := range []Block{srcA, srcB, sink2in} {
		if err := g.Add(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.Connect(srcA, 0, sink2in, 0); err != nil {
		t.Fatal(err)
	}
	if err := g.Connect(srcB, 0, sink2in, 1); err != nil {
		t.Fatal(err)
	}
	err := g.Run(context.Background())
	if !errors.Is(err, failA) || !errors.Is(err, failB) {
		t.Errorf("joined error %v should contain both fail-a and fail-b", err)
	}
}

// twoInSink drains two input streams.
type twoInSink struct{ inner *SinkFunc }

func (s *twoInSink) Name() string { return "two-in" }
func (s *twoInSink) Inputs() int  { return 2 }
func (s *twoInSink) Outputs() int { return 0 }
func (s *twoInSink) Run(ctx context.Context, in []<-chan Chunk, _ []chan<- Chunk) error {
	for {
		done := 0
		for i := range in {
			if _, ok := Recv(ctx, in[i]); !ok {
				done++
			}
		}
		if done == len(in) {
			return ctx.Err()
		}
	}
}

// A restartable block that panics once is restarted with backoff and the
// stream completes; health counters record the panic and the restart.
func TestRestartAfterPanic(t *testing.T) {
	g := New()
	tr := &restartableTransform{name: "flaky", panicAt: 2, failAt: -1, stallAt: -1, restarting: true}
	var got atomic.Int64
	buildChain(t, g, mkSource("src", 8, 1), tr, countingSink(&got))
	if err := g.SetPolicy(Policy{MaxRestarts: 2, BackoffBase: time.Millisecond, TrackHealth: true}); err != nil {
		t.Fatal(err)
	}
	if err := g.Run(context.Background()); err != nil {
		t.Fatalf("Run failed despite restart budget: %v", err)
	}
	// The chunk consumed by the panicking attempt is lost; the rest arrive.
	if n := got.Load(); n != 7 {
		t.Errorf("sink saw %d chunks, want 7 (one lost to the panic)", n)
	}
	h := g.Health()["flaky"]
	if h.Panics != 1 || h.Restarts != 1 {
		t.Errorf("health = %+v, want 1 panic and 1 restart", h)
	}
}

// A recoverable error consumes restart budget; a fatal one would not retry.
func TestRestartAfterRecoverableError(t *testing.T) {
	g := New()
	tr := &restartableTransform{name: "flaky2", panicAt: -1, failAt: 1, stallAt: -1, restarting: true}
	var got atomic.Int64
	buildChain(t, g, mkSource("src", 5, 1), tr, countingSink(&got))
	if err := g.SetPolicy(Policy{MaxRestarts: 1, BackoffBase: time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	if err := g.Run(context.Background()); err != nil {
		t.Fatalf("Run failed: %v", err)
	}
	if n := got.Load(); n != 4 {
		t.Errorf("sink saw %d chunks, want 4", n)
	}
}

// Restart budget exhaustion surfaces the last typed error.
func TestRestartBudgetExhausted(t *testing.T) {
	g := New()
	always := &TransformFunc{BlockName: "dies", Apply: func(Chunk) (Chunk, error) {
		return nil, errors.New("permanent")
	}}
	var got atomic.Int64
	buildChain(t, g, mkSource("src", 5, 1), always, countingSink(&got))
	err := g.Run(context.Background())
	be, ok := AsBlockError(err)
	if !ok || be.Kind != KindFatal {
		t.Errorf("got %v, want fatal BlockError", err)
	}
}

// The watchdog detects a cancellable stall and reports KindStall.
func TestWatchdogDetectsStall(t *testing.T) {
	g := New()
	tr := &restartableTransform{name: "wedge", panicAt: -1, failAt: -1, stallAt: 1}
	var got atomic.Int64
	buildChain(t, g, mkSource("src", 6, 1), tr, countingSink(&got))
	if err := g.SetPolicy(Policy{StallTimeout: 50 * time.Millisecond, StallGrace: 200 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- g.Run(context.Background()) }()
	select {
	case err := <-done:
		be, ok := AsBlockError(err)
		if !ok || be.Kind != KindStall || !errors.Is(err, ErrStall) {
			t.Errorf("got %v, want KindStall wrapping ErrStall", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("watchdog never fired")
	}
	if h := g.Health()["wedge"]; h.Stalls != 1 {
		t.Errorf("health = %+v, want 1 stall", h)
	}
}

// A restartable stalled block is cancelled, restarted, and the stream
// completes minus the chunk lost to the stalled attempt.
func TestStallRestart(t *testing.T) {
	g := New()
	tr := &restartableTransform{name: "wedge2", panicAt: -1, failAt: -1, stallAt: 1, restarting: true}
	var got atomic.Int64
	buildChain(t, g, mkSource("src", 6, 1), tr, countingSink(&got))
	if err := g.SetPolicy(Policy{
		MaxRestarts: 1, BackoffBase: time.Millisecond,
		StallTimeout: 50 * time.Millisecond, StallGrace: 200 * time.Millisecond,
	}); err != nil {
		t.Fatal(err)
	}
	if err := g.Run(context.Background()); err != nil {
		t.Fatalf("Run failed despite stall restart: %v", err)
	}
	if n := got.Load(); n != 5 {
		t.Errorf("sink saw %d chunks, want 5 (one lost to the stall)", n)
	}
	h := g.Health()["wedge2"]
	if h.Stalls != 1 || h.Restarts != 1 {
		t.Errorf("health = %+v, want 1 stall and 1 restart", h)
	}
}

// Regression: a graph whose sink stops reading must unwind cleanly on
// context cancel with no leaked goroutines.
func TestCancellationLeaksNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	g := New()
	src := &SourceFunc{BlockName: "src", Next: func() (Chunk, error) { return Chunk{1}, nil }}
	// Wedge the sink after a few chunks on a gate only the test releases, so
	// the whole pipeline backs up before the external cancel arrives.
	n := 0
	gate := make(chan struct{})
	stuck := &SinkFunc{BlockName: "stuck", Consume: func(Chunk) error {
		n++
		if n > 2 {
			<-gate
		}
		return nil
	}}
	buildChain(t, g, src, stuck)
	if err := g.SetPolicy(Policy{TrackHealth: true}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- g.Run(ctx) }()
	time.Sleep(30 * time.Millisecond)
	cancel()
	close(gate) // the stalled Consume returns; blocks then see ctx.Done
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("Run returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("graph did not unwind on cancel")
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
}

// Health counters reflect chunk traffic when instrumentation is on.
func TestHealthCountersTrackChunks(t *testing.T) {
	g := New()
	pass := &TransformFunc{BlockName: "pass", Apply: func(c Chunk) (Chunk, error) { return c, nil }}
	var got atomic.Int64
	buildChain(t, g, mkSource("src", 10, 1), pass, countingSink(&got))
	if err := g.SetPolicy(Policy{TrackHealth: true}); err != nil {
		t.Fatal(err)
	}
	if err := g.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	h := g.Health()
	if h["src"].ChunksOut != 10 {
		t.Errorf("src out = %d, want 10", h["src"].ChunksOut)
	}
	if h["pass"].ChunksIn != 10 || h["pass"].ChunksOut != 10 {
		t.Errorf("pass = %+v, want 10 in / 10 out", h["pass"])
	}
	if h["sink"].ChunksIn != 10 {
		t.Errorf("sink in = %d, want 10", h["sink"].ChunksIn)
	}
	if got.Load() != 10 {
		t.Errorf("sink consumed %d chunks, want 10", got.Load())
	}
}

// SetPolicy after Run must fail; unknown helpers still behave.
func TestSetPolicyAfterStartRejected(t *testing.T) {
	g := New()
	var got atomic.Int64
	buildChain(t, g, mkSource("src", 1, 1), countingSink(&got))
	if err := g.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := g.SetPolicy(Policy{}); err == nil {
		t.Error("SetPolicy after Run should fail")
	}
}

// Recoverable / IsRecoverable round-trip and nil handling.
func TestRecoverableMarker(t *testing.T) {
	if Recoverable(nil) != nil {
		t.Error("Recoverable(nil) should be nil")
	}
	base := errors.New("x")
	r := Recoverable(base)
	if !IsRecoverable(r) || !errors.Is(r, base) {
		t.Error("marker should be detectable and transparent")
	}
	if IsRecoverable(base) {
		t.Error("unmarked error should not be recoverable")
	}
	if IsRecoverable(io.EOF) {
		t.Error("io.EOF should not be recoverable")
	}
}

// Kind strings are stable (they appear in operator-facing logs).
func TestErrorKindStrings(t *testing.T) {
	want := map[ErrorKind]string{KindFatal: "fatal", KindRecoverable: "recoverable", KindPanic: "panic", KindStall: "stall"}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), s)
		}
	}
	if (ErrorKind(99)).String() == "" {
		t.Error("unknown kind should still print")
	}
}
