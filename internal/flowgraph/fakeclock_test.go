package flowgraph

import (
	"context"
	"errors"
	"io"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/clock"
)

// TestWatchdogStallDetectionFakeClock proves the stall watchdog is driven
// entirely by the injected clock: with StallTimeout set to an hour, a parked
// sink is still detected in milliseconds of real time because the fake
// clock — not the wall clock — advances past the timeout.
func TestWatchdogStallDetectionFakeClock(t *testing.T) {
	fc := clock.NewFake(time.Unix(0, 0))
	g := New()
	// Infinite source: the stall predicate requires pending input, so chunks
	// must keep arriving behind the parked sink.
	src := &SourceFunc{BlockName: "src", Next: func() (Chunk, error) { return Chunk{1}, nil }}
	// The sink consumes one chunk, then parks until cancelled: pending input
	// with no progress, the watchdog's stall predicate.
	var consumed atomic.Int64
	park := make(chan struct{})
	sink := &SinkFunc{BlockName: "parked", Consume: func(Chunk) error {
		if consumed.Add(1) == 1 {
			return nil
		}
		<-park
		return nil
	}}
	for _, b := range []Block{src, sink} {
		if err := g.Add(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.Connect(src, 0, sink, 0); err != nil {
		t.Fatal(err)
	}
	if err := g.SetPolicy(Policy{StallTimeout: time.Hour, Clock: fc}); err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() { done <- g.Run(context.Background()) }()
	// Drive fake time from the test: each step crosses one watchdog poll
	// interval. Gosched lets the supervisor goroutines react between steps.
	deadline := time.After(10 * time.Second)
	var err error
loop:
	for {
		select {
		case err = <-done:
			break loop
		case <-deadline:
			t.Fatal("graph did not terminate under fake-clock advancement")
		default:
			fc.Advance(15 * time.Minute)
			time.Sleep(100 * time.Microsecond)
		}
	}
	close(park)
	var be *BlockError
	if !errors.As(err, &be) {
		t.Fatalf("Run error = %v, want BlockError", err)
	}
	if be.Kind != KindStall || be.Block != "parked" {
		t.Fatalf("got %v/%q, want stall on \"parked\"", be.Kind, be.Block)
	}
	h := g.Health()["parked"]
	if h.Stalls == 0 {
		t.Fatalf("health snapshot records no stall: %v", h)
	}
}

// TestRestartBackoffUsesInjectedClock verifies the supervisor's restart
// backoff timer comes from the policy clock: with a fake clock and a huge
// BackoffBase the restart only happens once fake time is advanced.
func TestRestartBackoffUsesInjectedClock(t *testing.T) {
	fc := clock.NewFake(time.Unix(0, 0))
	g := New()
	rt := &restartableTransform{name: "flaky", panicAt: -1, failAt: 0, stallAt: -1, restarting: true}
	fed := 0
	src := &SourceFunc{BlockName: "src", Next: func() (Chunk, error) {
		if fed >= 2 {
			return nil, io.EOF
		}
		fed++
		return Chunk{complex(float64(fed), 0)}, nil
	}}
	sink := &SinkFunc{BlockName: "sink", Consume: func(Chunk) error { return nil }}
	for _, b := range []Block{src, rt, sink} {
		if err := g.Add(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.Connect(src, 0, rt, 0); err != nil {
		t.Fatal(err)
	}
	if err := g.Connect(rt, 0, sink, 0); err != nil {
		t.Fatal(err)
	}
	if err := g.SetPolicy(Policy{MaxRestarts: 1, BackoffBase: time.Hour, BackoffMax: time.Hour, Clock: fc}); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- g.Run(context.Background()) }()
	deadline := time.After(10 * time.Second)
	for {
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("Run = %v, want clean completion after backoff restart", err)
			}
			if got := g.Health()["flaky"].Restarts; got != 1 {
				t.Fatalf("restarts = %d, want 1", got)
			}
			return
		case <-deadline:
			t.Fatal("restart never happened — backoff not driven by injected clock")
		default:
			fc.Advance(30 * time.Minute)
			time.Sleep(100 * time.Microsecond)
		}
	}
}
