// Package montecarlo is the work-sharded parallel sweep engine behind the
// experiment harness (internal/sim). A sweep is split into independent
// shards — typically one per SNR point × packet batch — and executed on a
// bounded worker pool. Three rules make a parallel run bit-identical to the
// serial run at any worker count:
//
//  1. Every shard derives its own random stream from the sweep seed and its
//     shard index (ShardSeed), never from a stream shared across shards.
//  2. Workers never share mutable simulation state: each worker builds its
//     own PHY/modem/Viterbi/channel instances once (the newWorker hook) and
//     reuses them across the shards it happens to pull — shard results must
//     not depend on which worker ran them, only on the shard index.
//  3. Results are merged in shard-index order after all shards complete, so
//     floating-point accumulation order is fixed.
//
// Together these preserve the seeded-determinism invariant that the detrand
// analyzer and internal/channel's determinism tests enforce: the same
// Options.Seed produces the same tables whether the sweep runs on one
// goroutine or sixty-four.
package montecarlo

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers normalizes a requested worker count: values ≤ 0 select
// runtime.GOMAXPROCS(0); anything else is returned unchanged.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// ShardSeed derives the independent stream seed of one shard from the
// sweep's base seed. The shard index is avalanche-mixed (SplitMix64
// finalizer) before the XOR so that neighbouring shard IDs do not yield
// correlated low bits — a raw base⊕shard would hand shard 0 the base stream
// and give shards 2k/2k+1 streams differing in one bit.
func ShardSeed(base int64, shard int) int64 {
	z := (uint64(shard) + 1) * 0x9E3779B97F4A7C15
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return base ^ int64(z)
}

// Run executes fn for every shard index in [0, shards) and returns the
// results indexed by shard, independent of worker count and scheduling.
//
// workers ≤ 0 selects GOMAXPROCS; workers == 1 is the legacy serial path —
// an inline loop with no goroutines, no channels and no synchronization.
// With workers > 1, each worker calls newWorker once to build its private
// state S (simulation objects are generally not concurrency-safe) and then
// pulls shard indices until the sweep is drained.
//
// fn must be a pure function of (state, shard): it may mutate state as
// scratch, but its result must depend only on the shard index. The first
// error (by shard order) aborts the sweep and is returned.
func Run[S, T any](shards, workers int, newWorker func() (S, error), fn func(state S, shard int) (T, error)) ([]T, error) {
	if shards < 0 {
		return nil, fmt.Errorf("montecarlo: negative shard count %d", shards)
	}
	results := make([]T, shards)
	workers = Workers(workers)
	if workers > shards {
		workers = shards
	}
	if shards == 0 {
		return results, nil
	}

	if workers <= 1 {
		state, err := newWorker()
		if err != nil {
			return nil, err
		}
		for i := 0; i < shards; i++ {
			r, err := fn(state, i)
			if err != nil {
				return nil, fmt.Errorf("montecarlo: shard %d: %w", i, err)
			}
			results[i] = r
		}
		return results, nil
	}

	var (
		next atomic.Int64 // next shard index to hand out
		stop atomic.Bool  // set on first error to drain the pool early
		wg   sync.WaitGroup
		mu   sync.Mutex
		errs = make(map[int]error)
	)
	fail := func(shard int, err error) {
		mu.Lock()
		errs[shard] = err
		mu.Unlock()
		stop.Store(true)
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			state, err := newWorker()
			if err != nil {
				fail(-1, err)
				return
			}
			for !stop.Load() {
				i := int(next.Add(1)) - 1
				if i >= shards {
					return
				}
				r, err := fn(state, i)
				if err != nil {
					fail(i, err)
					return
				}
				results[i] = r
			}
		}()
	}
	wg.Wait()
	if len(errs) > 0 {
		// Report the lowest-shard error so failures are deterministic too.
		best := -2
		for shard := range errs {
			if best == -2 || shard < best {
				best = shard
			}
		}
		if best == -1 {
			return nil, errs[-1]
		}
		return nil, fmt.Errorf("montecarlo: shard %d: %w", best, errs[best])
	}
	return results, nil
}

// Map is Run without per-worker state, for sweeps whose shards build all
// their objects internally (for example one full link simulation per shard).
func Map[T any](shards, workers int, fn func(shard int) (T, error)) ([]T, error) {
	return Run(shards, workers,
		func() (struct{}, error) { return struct{}{}, nil },
		func(_ struct{}, shard int) (T, error) { return fn(shard) })
}
