package montecarlo

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
)

// sweep simulates a sharded accumulation: each shard draws from its own
// seeded stream, so the result vector must not depend on the worker count.
func sweep(t *testing.T, shards, workers int, seed int64) []float64 {
	t.Helper()
	res, err := Map(shards, workers, func(shard int) (float64, error) {
		r := rand.New(rand.NewSource(ShardSeed(seed, shard)))
		acc := 0.0
		for i := 0; i < 1000; i++ {
			acc += r.NormFloat64()
		}
		return acc, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	ref := sweep(t, 37, 1, 42)
	for _, workers := range []int{2, 3, 4, 8, runtime.GOMAXPROCS(0), 64} {
		got := sweep(t, 37, workers, 42)
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d: shard %d = %g, serial %g", workers, i, got[i], ref[i])
			}
		}
	}
}

func TestRunPerWorkerState(t *testing.T) {
	var built atomic.Int64
	type scratch struct{ buf []int }
	res, err := Run(100, 4,
		func() (*scratch, error) {
			built.Add(1)
			return &scratch{buf: make([]int, 8)}, nil
		},
		func(s *scratch, shard int) (int, error) {
			s.buf[0] = shard // mutating private state is allowed
			return shard * shard, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range res {
		if v != i*i {
			t.Fatalf("res[%d] = %d, want %d", i, v, i*i)
		}
	}
	if n := built.Load(); n < 1 || n > 4 {
		t.Fatalf("newWorker ran %d times, want 1..4", n)
	}
}

func TestRunErrorIsLowestShard(t *testing.T) {
	sentinel := errors.New("boom")
	for _, workers := range []int{1, 4} {
		_, err := Map(50, workers, func(shard int) (int, error) {
			if shard%7 == 3 { // shards 3, 10, 17, ... fail
				return 0, fmt.Errorf("shard says: %w", sentinel)
			}
			return shard, nil
		})
		if !errors.Is(err, sentinel) {
			t.Fatalf("workers=%d: err = %v, want wrapped sentinel", workers, err)
		}
		if workers == 1 && !strings.Contains(err.Error(), "shard 3") {
			t.Fatalf("serial error %q does not name shard 3", err)
		}
	}
}

func TestRunNewWorkerError(t *testing.T) {
	sentinel := errors.New("no state")
	_, err := Run(10, 4,
		func() (int, error) { return 0, sentinel },
		func(int, int) (int, error) { return 0, nil })
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
}

func TestRunEdgeCases(t *testing.T) {
	res, err := Map(0, 8, func(int) (int, error) { t.Fatal("fn ran"); return 0, nil })
	if err != nil || len(res) != 0 {
		t.Fatalf("empty sweep: res %v err %v", res, err)
	}
	if _, err := Map(-1, 1, func(int) (int, error) { return 0, nil }); err == nil {
		t.Fatal("negative shard count should fail")
	}
	// More workers than shards must still complete every shard exactly once.
	res, err = Map(3, 64, func(shard int) (int, error) { return shard + 1, nil })
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != 1 || res[1] != 2 || res[2] != 3 {
		t.Fatalf("res = %v", res)
	}
}

func TestWorkersNormalization(t *testing.T) {
	if Workers(0) != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS", Workers(0))
	}
	if Workers(-3) != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-3) = %d, want GOMAXPROCS", Workers(-3))
	}
	if Workers(5) != 5 {
		t.Errorf("Workers(5) = %d", Workers(5))
	}
}

func TestShardSeedSpread(t *testing.T) {
	seen := map[int64]bool{}
	for shard := 0; shard < 4096; shard++ {
		s := ShardSeed(1, shard)
		if seen[s] {
			t.Fatalf("seed collision at shard %d", shard)
		}
		seen[s] = true
	}
	if ShardSeed(1, 0) == 1 {
		t.Error("shard 0 must not inherit the base seed verbatim")
	}
	if ShardSeed(1, 2)^ShardSeed(1, 3) == 1 {
		t.Error("adjacent shards differ by one bit: mixing is missing")
	}
}
