package apmac

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/mac"
	"repro/internal/obs"
)

// Metric names and label keys (constant, per obshygiene). Per-station
// series are labeled by the 64-value bitmap slot, not the unbounded station
// ID, so a churning population cannot fork unbounded metric families.
const (
	metricStations      = "mimonet_ap_stations"
	metricAssocTotal    = "mimonet_ap_assoc_total"
	metricTeardownTotal = "mimonet_ap_teardown_total"
	metricStationPER    = "mimonet_ap_station_per"
	metricStationBytes  = "mimonet_ap_station_tx_bytes_total"
	metricCSIAge        = "mimonet_ap_station_csi_age_seconds"
	labelSlot           = "slot"
)

// ARQWindow is the per-station selective-repeat window the table hands each
// association.
const ARQWindow = 64

// Station is one associated station's MAC state.
type Station struct {
	// ID is the AP-assigned, non-zero station ID — the radio v4 demux key.
	ID uint16
	// Slot is the group-bitmap bit granted at association.
	Slot uint8
	// RXAntennas is the station's receive antenna count from its request.
	RXAntennas int
	// Nonce is the association request's dedupe key.
	Nonce uint64
	// Associated and LastSeen are table-clock times.
	Associated time.Time
	LastSeen   time.Time
	// ARQ is the station's downlink selective-repeat sender.
	ARQ *mac.ARQSender
	// Queue counts MPDUs queued but not yet scheduled; the scheduler's
	// queue-depth input.
	Queue int
}

// Table is the association lifecycle: it grants station IDs and bitmap
// slots, holds per-station ARQ state, and expires stations that fall
// silent. Safe for concurrent use.
type Table struct {
	clk clock.Clock

	mu       sync.Mutex
	nextID   uint16
	stations map[uint16]*Station
	byNonce  map[uint64]uint16
	slots    uint64 // bitmap of granted slots

	stationsGauge *obs.Gauge
	assocTotal    *obs.Counter
	teardownTotal *obs.Counter
	reg           *obs.Registry
}

// NewTable returns an empty association table on clk (nil selects the
// system clock).
func NewTable(clk clock.Clock) *Table {
	return &Table{
		clk:      clock.Or(clk),
		stations: make(map[uint16]*Station),
		byNonce:  make(map[uint64]uint16),
	}
}

// Instrument registers the AP's station metrics on reg. Call before the
// first association; a nil registry is a no-op (nil-safe instruments).
func (t *Table) Instrument(reg *obs.Registry) {
	t.reg = reg
	t.stationsGauge = reg.Gauge(metricStations, "currently associated stations")
	t.assocTotal = reg.Counter(metricAssocTotal, "association grants")
	t.teardownTotal = reg.Counter(metricTeardownTotal, "association teardowns (explicit or idle-expired)")
}

// slotLabel returns the bounded per-station label set for a bitmap slot.
func slotLabel(slot uint8) obs.Label {
	return obs.Label{Key: labelSlot, Value: fmt.Sprintf("%02d", slot)}
}

// ReportPER publishes a station's delivery error rate on its slot's gauge.
func (t *Table) ReportPER(s *Station, per float64) {
	t.reg.Gauge(metricStationPER, "per-station downlink packet error rate", slotLabel(s.Slot)).Set(per)
}

// AddDownlinkBytes accumulates a station's delivered downlink bytes.
func (t *Table) AddDownlinkBytes(s *Station, n int) {
	t.reg.Counter(metricStationBytes, "per-station delivered downlink bytes", slotLabel(s.Slot)).Add(int64(n))
}

// ReportCSIAge publishes the age of a station's cached channel feedback.
func (t *Table) ReportCSIAge(s *Station, age time.Duration) {
	t.reg.Gauge(metricCSIAge, "per-station CSI age", slotLabel(s.Slot)).Set(age.Seconds())
}

// Associate grants (or re-grants, for a retried nonce) an association. The
// returned station carries a fresh ARQ window on first grant; a duplicate
// nonce returns the existing state so retransmitted requests are
// idempotent.
func (t *Table) Associate(nonce uint64, rxAntennas int) (*Station, error) {
	if rxAntennas < 1 || rxAntennas > 4 {
		return nil, fmt.Errorf("apmac: %d receive antennas outside [1,4]", rxAntennas)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if id, ok := t.byNonce[nonce]; ok {
		if s, live := t.stations[id]; live {
			s.LastSeen = t.clk.Now()
			return s, nil
		}
	}
	arq, err := mac.NewARQSender(ARQWindow)
	if err != nil {
		return nil, err
	}
	t.nextID++
	if t.nextID == 0 { // the zero ID is the unassociated sentinel
		t.nextID = 1
	}
	id := t.nextID
	now := t.clk.Now()
	s := &Station{
		ID:         id,
		Slot:       t.grantSlot(id),
		RXAntennas: rxAntennas,
		Nonce:      nonce,
		Associated: now,
		LastSeen:   now,
		ARQ:        arq,
	}
	t.stations[id] = s
	t.byNonce[nonce] = id
	t.assocTotal.Inc()
	t.stationsGauge.Set(float64(len(t.stations)))
	return s, nil
}

// grantSlot picks the station's group-bitmap bit: the first free slot, or —
// when more than 64 stations are associated — the ID's wrapped slot, shared
// and disambiguated by the explicit station ID in addressed frames.
func (t *Table) grantSlot(id uint16) uint8 {
	for s := uint8(0); s < 64; s++ {
		if t.slots&(1<<s) == 0 {
			t.slots |= 1 << s
			return s
		}
	}
	return uint8(id % 64)
}

// Get returns a station by ID.
func (t *Table) Get(id uint16) (*Station, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	s, ok := t.stations[id]
	return s, ok
}

// Touch records uplink liveness for a station.
func (t *Table) Touch(id uint16) {
	t.mu.Lock()
	if s, ok := t.stations[id]; ok {
		s.LastSeen = t.clk.Now()
	}
	t.mu.Unlock()
}

// Teardown removes a station (BYE or administrative), freeing its slot.
func (t *Table) Teardown(id uint16) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.teardownLocked(id)
}

func (t *Table) teardownLocked(id uint16) bool {
	s, ok := t.stations[id]
	if !ok {
		return false
	}
	delete(t.stations, id)
	delete(t.byNonce, s.Nonce)
	t.slots &^= 1 << s.Slot
	t.teardownTotal.Inc()
	t.stationsGauge.Set(float64(len(t.stations)))
	return true
}

// ExpireIdle tears down every station silent for longer than maxIdle and
// returns their IDs, sorted.
func (t *Table) ExpireIdle(maxIdle time.Duration) []uint16 {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []uint16
	for id, s := range t.stations {
		if t.clk.Since(s.LastSeen) > maxIdle {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	for _, id := range out {
		t.teardownLocked(id)
	}
	return out
}

// StationInfo is one association's control-API view — what GET
// /api/stations reports per station.
type StationInfo struct {
	ID          uint16  `json:"id"`
	Slot        uint8   `json:"slot"`
	RXAntennas  int     `json:"rx_antennas"`
	AgeSeconds  float64 `json:"age_seconds"`
	IdleSeconds float64 `json:"idle_seconds"`
}

// Infos snapshots every association, sorted by ID.
func (t *Table) Infos() []StationInfo {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]StationInfo, 0, len(t.stations))
	for _, s := range t.stations {
		out = append(out, StationInfo{
			ID:          s.ID,
			Slot:        s.Slot,
			RXAntennas:  s.RXAntennas,
			AgeSeconds:  t.clk.Since(s.Associated).Seconds(),
			IdleSeconds: t.clk.Since(s.LastSeen).Seconds(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Len returns the associated station count.
func (t *Table) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.stations)
}

// IDs returns the associated station IDs, sorted — the deterministic
// iteration order scheduling rounds use.
func (t *Table) IDs() []uint16 {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]uint16, 0, len(t.stations))
	for id := range t.stations {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
