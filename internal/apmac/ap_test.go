package apmac

import (
	"bytes"
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestAPLoopback runs a live AP with several station clients over loopback
// UDP: every station must associate, answer sounding, and receive precoded
// downlink MPDUs addressed to it, with the seeded loss model exercising the
// per-station ARQ.
func TestAPLoopback(t *testing.T) {
	if testing.Short() {
		t.Skip("live UDP soak")
	}
	reg := obs.NewRegistry()
	ap, err := NewAP(APConfig{
		Listen:       "127.0.0.1:0",
		TickInterval: 2 * time.Millisecond,
		SoundEvery:   5,
		DropProb:     0.2,
		Seed:         42,
		Registry:     reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	apDone := make(chan error, 1)
	go func() { apDone <- ap.Run(ctx) }()

	const n = 6
	clients := make([]*Client, n)
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		c, err := NewClient(ClientConfig{Addr: ap.Addr().String(), Index: i, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		clients[i] = c
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = c.Run(ctx)
		}(i)
	}

	deadline := time.After(8 * time.Second)
	for {
		served := 0
		for _, c := range clients {
			if func() bool { st := c.Snapshot(); return st.Associated && st.DataFrames > 2 && st.Soundings > 0 }() {
				served++
			}
		}
		if served == n {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("stations served: %d/%d after timeout", served, n)
		case <-time.After(50 * time.Millisecond):
		}
	}
	if got := ap.Stations(); got != n {
		t.Errorf("AP tracks %d stations, want %d", got, n)
	}
	cancel()
	wg.Wait()
	if err := <-apDone; err != nil {
		t.Fatalf("AP run: %v", err)
	}
	ids := map[uint16]bool{}
	for i, c := range clients {
		st := c.Snapshot()
		if errs[i] != nil {
			t.Errorf("station %d: %v", i, errs[i])
		}
		if st.PayloadFault > 0 {
			t.Errorf("station %d saw %d misrouted payloads", i, st.PayloadFault)
		}
		if st.AcksSent == 0 {
			t.Errorf("station %d never acknowledged", i)
		}
		if ids[st.ID] {
			t.Errorf("station ID %d assigned twice", st.ID)
		}
		ids[st.ID] = true
	}
	var buf bytes.Buffer
	if err := obs.WriteProm(&buf, reg); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{metricStations, metricAssocTotal, metricStationBytes} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Errorf("AP exposition missing %s", want)
		}
	}
}

// TestClientRecordSeq checks the sliding block-ack window against the
// sender-side Acked view.
func TestClientRecordSeq(t *testing.T) {
	c := &Client{}
	for _, seq := range []uint16{10, 11, 13, 12, 14} {
		c.recordSeq(seq)
	}
	if c.haveMax != 14 {
		t.Fatalf("haveMax = %d", c.haveMax)
	}
	start := (c.haveMax - 63) & 0x0FFF
	ackBits := c.haveBits
	acked := func(seq uint16) bool {
		off := int(seq-start) & 0x0FFF
		return off < 64 && ackBits&(1<<uint(off)) != 0
	}
	for _, seq := range []uint16{10, 11, 12, 13, 14} {
		if !acked(seq) {
			t.Errorf("seq %d not acked", seq)
		}
	}
	if acked(9) || acked(15) {
		t.Error("unreceived sequences acked")
	}
	// A jump far ahead clears the stale window.
	c.recordSeq(200)
	if c.haveMax != 200 || c.haveBits != 1<<63 {
		t.Errorf("window after jump: max %d bits %x", c.haveMax, c.haveBits)
	}
}
