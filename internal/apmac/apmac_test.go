package apmac

import (
	"bytes"
	"math/rand"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/mac"
	"repro/internal/obs"
)

func TestWireRoundTrip(t *testing.T) {
	msgs := []*Msg{
		{Kind: KindAssoc, Nonce: 0xDEADBEEF, RXAntennas: 2},
		{Kind: KindAssocAck, AssignedID: 17, Slot: 5, CWMinExp: 4, CWMaxExp: 10},
		{Kind: KindSound, Token: 99},
		{Kind: KindFeedback, Token: 100, Feedback: bytes.Repeat([]byte{0x7E}, 40)},
		{Kind: KindData, MPDU: []byte{1, 2, 3, 4, 5}},
		{Kind: KindBlockAck, Ack: mac.BlockAck{Start: 7, Bitmap: 0b1011}},
		{Kind: KindBye, Reason: "draining"},
		{Kind: KindBye},
	}
	for _, m := range msgs {
		b, err := AppendMessage(nil, m)
		if err != nil {
			t.Fatalf("%v: %v", m.Kind, err)
		}
		got, err := DecodeMessage(b)
		if err != nil {
			t.Fatalf("%v decode: %v", m.Kind, err)
		}
		if got.Kind != m.Kind || got.Nonce != m.Nonce || got.RXAntennas != m.RXAntennas ||
			got.AssignedID != m.AssignedID || got.Slot != m.Slot ||
			got.CWMinExp != m.CWMinExp || got.CWMaxExp != m.CWMaxExp ||
			got.Token != m.Token || got.Ack != m.Ack || got.Reason != m.Reason ||
			!bytes.Equal(got.Feedback, m.Feedback) || !bytes.Equal(got.MPDU, m.MPDU) {
			t.Errorf("%v round trip mismatch:\n got %+v\nwant %+v", m.Kind, got, m)
		}
	}
}

func TestWireRejectsCorruption(t *testing.T) {
	b, err := AppendMessage(nil, &Msg{Kind: KindAssocAck, AssignedID: 3, Slot: 1})
	if err != nil {
		t.Fatal(err)
	}
	flipped := append([]byte(nil), b...)
	flipped[2] ^= 0x40
	if _, err := DecodeMessage(flipped); err == nil {
		t.Error("bit flip must fail the FCS")
	}
	if _, err := DecodeMessage(b[:3]); err == nil {
		t.Error("truncated message must fail")
	}
	if _, err := DecodeMessage(nil); err == nil {
		t.Error("empty input must fail")
	}
	if _, err := AppendMessage(nil, &Msg{Kind: Kind(200)}); err == nil {
		t.Error("unknown kind must not encode")
	}
	if _, err := AppendMessage(nil, &Msg{Kind: KindFeedback, Token: 1}); err == nil {
		t.Error("feedback without CSI bytes must not encode")
	}
	if _, err := AppendMessage(nil, &Msg{Kind: KindData}); err == nil {
		t.Error("data without an MPDU must not encode")
	}
	// A truncated body behind a valid FCS (re-framed) must fail need().
	short, err := AppendMessage(nil, &Msg{Kind: KindSound, Token: 5})
	if err != nil {
		t.Fatal(err)
	}
	_ = short
}

func TestKindStringTotal(t *testing.T) {
	for k := KindAssoc; k <= KindBye; k++ {
		if s := k.String(); s == "" || s[0] == 'k' {
			t.Errorf("kind %d has placeholder string %q", k, s)
		}
	}
	if s := Kind(99).String(); s != "kind(99)" {
		t.Errorf("unknown kind string %q", s)
	}
}

func TestBackoffBEB(t *testing.T) {
	b, err := NewBackoff(rand.New(rand.NewSource(1)), 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if b.Window() != 4 {
		t.Fatalf("initial window %d, want 4", b.Window())
	}
	b.Collision()
	if b.Window() != 8 {
		t.Errorf("after one collision window %d, want 8", b.Window())
	}
	b.Collision()
	b.Collision() // saturates at 2^4 = 16
	if b.Window() != 16 {
		t.Errorf("saturated window %d, want 16", b.Window())
	}
	if b.Collisions() != 3 {
		t.Errorf("collision count %d, want 3", b.Collisions())
	}
	b.Success()
	if b.Window() != 4 || b.Collisions() != 0 {
		t.Errorf("after success window %d collisions %d, want 4/0", b.Window(), b.Collisions())
	}
	for i := 0; i < 100; i++ {
		if s := b.Draw(); s < 0 || s >= b.Window() {
			t.Fatalf("draw %d outside [0,%d)", s, b.Window())
		}
	}
	if _, err := NewBackoff(nil, 2, 4); err == nil {
		t.Error("nil rng must be rejected")
	}
	if _, err := NewBackoff(rand.New(rand.NewSource(1)), 5, 4); err == nil {
		t.Error("min > max must be rejected")
	}
}

func TestBackoffDeterministic(t *testing.T) {
	draw := func() []int {
		b, err := NewBackoff(rand.New(rand.NewSource(42)), 4, 10)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]int, 64)
		for i := range out {
			out[i] = b.Draw()
			if i%5 == 0 {
				b.Collision()
			}
		}
		return out
	}
	a, b := draw(), draw()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestArbitrate(t *testing.T) {
	winners, collided := Arbitrate(map[uint16]int{
		1: 3, 2: 7, 3: 3, 4: 9, 5: 3,
	})
	wantW := []uint16{2, 4}
	wantC := []uint16{1, 3, 5}
	if len(winners) != len(wantW) || len(collided) != len(wantC) {
		t.Fatalf("winners %v collided %v, want %v / %v", winners, collided, wantW, wantC)
	}
	for i := range wantW {
		if winners[i] != wantW[i] {
			t.Fatalf("winners %v, want %v", winners, wantW)
		}
	}
	for i := range wantC {
		if collided[i] != wantC[i] {
			t.Fatalf("collided %v, want %v", collided, wantC)
		}
	}
}

func TestTableLifecycle(t *testing.T) {
	fake := clock.NewFake(time.Unix(0, 0))
	reg := obs.NewRegistry()
	tab := NewTable(fake)
	tab.Instrument(reg)

	s1, err := tab.Associate(111, 2)
	if err != nil {
		t.Fatal(err)
	}
	if s1.ID == 0 {
		t.Fatal("granted the zero sentinel ID")
	}
	if s1.ARQ == nil {
		t.Fatal("association without ARQ state")
	}
	// Retried request (same nonce) is idempotent.
	again, err := tab.Associate(111, 2)
	if err != nil {
		t.Fatal(err)
	}
	if again.ID != s1.ID {
		t.Errorf("retried nonce granted new ID %d, had %d", again.ID, s1.ID)
	}
	s2, err := tab.Associate(222, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s2.ID == s1.ID || s2.Slot == s1.Slot {
		t.Errorf("station 2 shares ID/slot with station 1: %d/%d", s2.ID, s2.Slot)
	}
	if tab.Len() != 2 {
		t.Errorf("Len = %d, want 2", tab.Len())
	}
	ids := tab.IDs()
	if len(ids) != 2 || ids[0] >= ids[1] {
		t.Errorf("IDs = %v, want two sorted", ids)
	}

	// Teardown frees the slot for the next association.
	slot := s1.Slot
	if !tab.Teardown(s1.ID) {
		t.Fatal("teardown failed")
	}
	if tab.Teardown(s1.ID) {
		t.Error("double teardown reported success")
	}
	s3, err := tab.Associate(333, 4)
	if err != nil {
		t.Fatal(err)
	}
	if s3.Slot != slot {
		t.Errorf("freed slot %d not reused (got %d)", slot, s3.Slot)
	}

	// Idle expiry on the clock seam.
	fake.Advance(10 * time.Second)
	tab.Touch(s2.ID)
	expired := tab.ExpireIdle(5 * time.Second)
	if len(expired) != 1 || expired[0] != s3.ID {
		t.Errorf("expired %v, want [%d]", expired, s3.ID)
	}
	if _, ok := tab.Get(s2.ID); !ok {
		t.Error("touched station expired")
	}
	if _, err := tab.Associate(444, 9); err == nil {
		t.Error("9 antennas must be rejected")
	}
}

func TestTableSlotWrapPast64(t *testing.T) {
	tab := NewTable(clock.NewFake(time.Unix(0, 0)))
	seen := map[uint8]int{}
	for i := 0; i < 70; i++ {
		s, err := tab.Associate(uint64(i+1)<<8, 1)
		if err != nil {
			t.Fatal(err)
		}
		seen[s.Slot]++
	}
	if len(seen) != 64 {
		t.Errorf("70 stations spread over %d slots, want all 64", len(seen))
	}
}

func TestTableMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	tab := NewTable(clock.NewFake(time.Unix(0, 0)))
	tab.Instrument(reg)
	s, err := tab.Associate(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	tab.ReportPER(s, 0.25)
	tab.AddDownlinkBytes(s, 1024)
	tab.ReportCSIAge(s, 300*time.Millisecond)
	var buf bytes.Buffer
	if err := obs.WriteProm(&buf, reg); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{metricStations, metricStationPER, metricStationBytes, metricCSIAge} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Errorf("exposition missing %s:\n%s", want, buf.String())
		}
	}
	// A nil-instrumented table must not panic.
	bare := NewTable(clock.NewFake(time.Unix(0, 0)))
	s2, err := bare.Associate(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	bare.ReportPER(s2, 0)
	bare.Teardown(s2.ID)
}
