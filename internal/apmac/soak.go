package apmac

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"time"

	"repro/internal/clock"
	"repro/internal/cmatrix"
	"repro/internal/montecarlo"
	"repro/internal/mumimo"
	"repro/internal/obs"
	"repro/internal/sounding"
)

// Many-station MU-MIMO soak (experiment E25, tracked as SOAK_pr9.json).
//
// The soak stands up several independent cells — one access point each —
// and drives ≥100 stations through the full multi-user control loop at the
// abstracted link level: slotted-contention association (Backoff +
// Arbitrate), periodic sounding with quantized CSI feedback
// (sounding.Quantize → mumimo.Cache), orthogonality-aware group scheduling
// (mumimo.Scheduler), zero-forcing precoding from the *cached* feedback,
// and per-MPDU success draws from the post-precoding SINR evaluated against
// the *true* fading channel — so quantization error, CSI staleness, and
// churn degrade the link exactly the way they would on air.
//
// Determinism contract: every random stream derives from Config.Seed via
// montecarlo.ShardSeed (one shard per cell, one sub-stream per station), a
// cell is simulated serially, and cells merge in index order — so the
// scheduler-decision hash and every per-station counter are bit-identical
// at any worker count.

// slotDur is the simulated slot duration; CSI ages on this clock.
const slotDur = time.Millisecond

// soakTones is the per-report subcarrier count stations quantize. The link
// model is frequency-flat, so a handful of tones exercises the grouping
// path without bloating feedback.
const soakTones = 4

// SoakConfig sizes an E25 run. The zero value is invalid; use
// DefaultSoakConfig.
type SoakConfig struct {
	// Cells is the independent-AP count; each cell is one deterministic
	// shard. Scenarios rotate across cells (see soakScenarios).
	Cells int
	// StationsPerCell × Cells is the station population.
	StationsPerCell int
	// NTX is each AP's transmit antenna count (spatial stream budget).
	NTX int
	// Slots is the simulated slot count per cell.
	Slots int
	// SNRdB is the per-station average link SNR.
	SNRdB float64
	// SoundInterval is the sounding cadence in slots; cached CSI expires
	// after four intervals.
	SoundInterval int
	// CoherenceSlots is the fading redraw interval for fading scenarios.
	CoherenceSlots int
	// ChurnInterval: in churn scenarios, every this-many slots one station
	// tears down and later re-contends.
	ChurnInterval int
	// ArrivalProb is the per-slot, per-station MPDU arrival probability.
	ArrivalProb float64
	// MPDUBytes is the payload per MPDU.
	MPDUBytes int
	// Seed drives all randomness via montecarlo.ShardSeed.
	Seed int64
	// Workers bounds the cell worker pool (montecarlo semantics: ≤0 is
	// GOMAXPROCS, 1 serial). Results are identical at any value.
	Workers int
	// Registry, when non-nil, receives the per-station gauges of every
	// cell's association table.
	Registry *obs.Registry
}

// DefaultSoakConfig is the tracked-artifact configuration: 120 stations
// across 4 cells, every scenario exercised.
func DefaultSoakConfig() SoakConfig {
	return SoakConfig{
		Cells:           4,
		StationsPerCell: 30,
		NTX:             4,
		Slots:           1500,
		SNRdB:           25,
		SoundInterval:   20,
		CoherenceSlots:  100,
		ChurnInterval:   150,
		ArrivalProb:     0.9,
		MPDUBytes:       500,
		Seed:            1,
	}
}

func (c SoakConfig) withDefaults() SoakConfig {
	d := DefaultSoakConfig()
	if c.Cells <= 0 {
		c.Cells = d.Cells
	}
	if c.StationsPerCell <= 0 {
		c.StationsPerCell = d.StationsPerCell
	}
	if c.NTX <= 0 {
		c.NTX = d.NTX
	}
	if c.Slots <= 0 {
		c.Slots = d.Slots
	}
	if c.SNRdB == 0 {
		c.SNRdB = d.SNRdB
	}
	if c.SoundInterval <= 0 {
		c.SoundInterval = d.SoundInterval
	}
	if c.CoherenceSlots <= 0 {
		c.CoherenceSlots = d.CoherenceSlots
	}
	if c.ChurnInterval <= 0 {
		c.ChurnInterval = d.ChurnInterval
	}
	if c.ArrivalProb <= 0 {
		c.ArrivalProb = d.ArrivalProb
	}
	if c.MPDUBytes <= 0 {
		c.MPDUBytes = d.MPDUBytes
	}
	if c.Seed == 0 {
		c.Seed = d.Seed
	}
	return c
}

// soakScenarios rotates across cells: the control cell, fading only, churn
// only, and both.
var soakScenarios = []string{"static", "fading", "churn", "fading+churn"}

// StationStats is one station's slice of the soak result.
type StationStats struct {
	Cell     int    `json:"cell"`
	Station  int    `json:"station"`
	Scenario string `json:"scenario"`
	// Attempts and Errors count MPDU transmissions toward this station;
	// PER is their ratio (NaN-free: 0 when never scheduled).
	Attempts int     `json:"attempts"`
	Errors   int     `json:"errors"`
	PER      float64 `json:"per"`
	// DeliveredBits is the station's downlink payload volume.
	DeliveredBits int64 `json:"delivered_bits"`
	// Reassociations counts re-entries after churn teardown.
	Reassociations int `json:"reassociations"`
}

// SoakResult is the tracked E25 artifact.
type SoakResult struct {
	Cells           int      `json:"cells"`
	StationsPerCell int      `json:"stations_per_cell"`
	Stations        int      `json:"stations"`
	NTX             int      `json:"ntx"`
	Slots           int      `json:"slots"`
	SNRdB           float64  `json:"snr_db"`
	Seed            int64    `json:"seed"`
	Scenarios       []string `json:"scenarios"`

	// SchedHash is the FNV-64a digest of every cell's scheduling decisions
	// in slot order — the bit-identical-at-any-worker-count witness.
	SchedHash string `json:"sched_hash"`

	// MUThroughputMbps is the aggregate precoded downlink goodput;
	// SUBaselineMbps is the round-robin single-user TDMA baseline over the
	// same channels with full-array single-stream gain.
	MUThroughputMbps float64 `json:"mu_throughput_mbps"`
	SUBaselineMbps   float64 `json:"su_baseline_mbps"`

	// MU2x2SumRate / SU2x2BestRate are the deterministic well-conditioned
	// 2×2 spectral-efficiency comparison (bit/s/Hz): two near-orthogonal
	// single-antenna stations served simultaneously by ZF vs the better of
	// them served alone. MU must exceed SU here.
	MU2x2SumRate  float64 `json:"mu_2x2_sum_rate"`
	SU2x2BestRate float64 `json:"su_2x2_best_rate"`

	AssocAttempts   int `json:"assoc_attempts"`
	Collisions      int `json:"collisions"`
	Reassociations  int `json:"reassociations"`
	CSIEvictions    int `json:"csi_evictions"`
	PrecodeFailures int `json:"precode_failures"`
	ScheduledSlots  int `json:"scheduled_slots"`

	PerStation []StationStats `json:"per_station"`
}

// cellResult is one shard's output, merged in cell order.
type cellResult struct {
	stats           []StationStats
	schedHash       uint64
	muBits          int64
	suBits          int64
	assocAttempts   int
	collisions      int
	reassociations  int
	csiEvictions    int
	precodeFailures int
	scheduledSlots  int
}

// soakStation is one simulated station's ground truth.
type soakStation struct {
	idx     int // stable station number within the cell
	nrx     int
	rng     *rand.Rand
	backoff *Backoff
	h       *cmatrix.Matrix // true channel, nrx×ntx
	id      uint16          // AP-assigned; 0 when unassociated
	away    int             // slots until a churned-out station returns
	queue   int
	assocs  int
	stats   StationStats
}

// RunSoak executes the E25 many-station soak.
func RunSoak(cfg SoakConfig) (*SoakResult, error) {
	cfg = cfg.withDefaults()
	if cfg.Cells*cfg.StationsPerCell < 1 {
		return nil, fmt.Errorf("apmac: soak needs at least one station")
	}
	cells, err := montecarlo.Map(cfg.Cells, cfg.Workers, func(cell int) (*cellResult, error) {
		return runCell(cfg, cell)
	})
	if err != nil {
		return nil, err
	}
	res := &SoakResult{
		Cells:           cfg.Cells,
		StationsPerCell: cfg.StationsPerCell,
		Stations:        cfg.Cells * cfg.StationsPerCell,
		NTX:             cfg.NTX,
		Slots:           cfg.Slots,
		SNRdB:           cfg.SNRdB,
		Seed:            cfg.Seed,
	}
	digest := fnv.New64a()
	var scratch [8]byte
	for cell, c := range cells {
		res.Scenarios = append(res.Scenarios, cellScenario(cell))
		binary.BigEndian.PutUint64(scratch[:], c.schedHash)
		digest.Write(scratch[:])
		res.PerStation = append(res.PerStation, c.stats...)
		res.MUThroughputMbps += mbps(c.muBits, cfg.Slots)
		res.SUBaselineMbps += mbps(c.suBits, cfg.Slots)
		res.AssocAttempts += c.assocAttempts
		res.Collisions += c.collisions
		res.Reassociations += c.reassociations
		res.CSIEvictions += c.csiEvictions
		res.PrecodeFailures += c.precodeFailures
		res.ScheduledSlots += c.scheduledSlots
	}
	res.SchedHash = fmt.Sprintf("%016x", digest.Sum64())
	res.MU2x2SumRate, res.SU2x2BestRate = WellConditioned2x2(cfg.SNRdB)
	return res, nil
}

// mbps converts delivered bits over a slot count into Mbit/s.
func mbps(bits int64, slots int) float64 {
	seconds := float64(slots) * slotDur.Seconds()
	if seconds <= 0 {
		return 0
	}
	return float64(bits) / seconds / 1e6
}

func cellScenario(cell int) string {
	return soakScenarios[cell%len(soakScenarios)]
}

// runCell simulates one cell serially. All randomness derives from the
// cell's shard seed; nothing escapes but the returned counters.
func runCell(cfg SoakConfig, cell int) (*cellResult, error) {
	scenario := cellScenario(cell)
	fading := scenario == "fading" || scenario == "fading+churn"
	churn := scenario == "churn" || scenario == "fading+churn"
	cellSeed := montecarlo.ShardSeed(cfg.Seed, cell)
	snr := math.Pow(10, cfg.SNRdB/10)
	mpduBits := int64(cfg.MPDUBytes) * 8

	clk := clock.NewFake(time.Unix(0, 0))
	table := NewTable(clk)
	if cfg.Registry != nil {
		table.Instrument(cfg.Registry)
	}
	cache := mumimo.NewCache(clk, time.Duration(4*cfg.SoundInterval)*slotDur)
	sched := &mumimo.Scheduler{NTX: cfg.NTX}
	baseRng := rand.New(rand.NewSource(montecarlo.ShardSeed(cellSeed, 1<<20)))

	stations := make([]*soakStation, cfg.StationsPerCell)
	byID := map[uint16]*soakStation{}
	for i := range stations {
		rng := rand.New(rand.NewSource(montecarlo.ShardSeed(cellSeed, i)))
		bo, err := NewBackoff(rng, DefaultCWMinExp, DefaultCWMaxExp)
		if err != nil {
			return nil, err
		}
		st := &soakStation{
			idx:     i,
			nrx:     1 + i%2,
			rng:     rng,
			backoff: bo,
			stats:   StationStats{Cell: cell, Station: i, Scenario: scenario},
		}
		st.h = drawChannel(rng, st.nrx, cfg.NTX)
		stations[i] = st
	}

	out := &cellResult{}
	digest := fnv.New64a()
	var scratch [8]byte
	hash64 := func(v uint64) {
		binary.BigEndian.PutUint64(scratch[:], v)
		digest.Write(scratch[:])
	}

	for slot := 0; slot < cfg.Slots; slot++ {
		clk.Advance(slotDur)

		// Fading: redraw every station's true channel each coherence
		// interval. Cached CSI keeps pointing at the previous draw until
		// the next sounding round — precoding from stale feedback is the
		// point of the scenario.
		if fading && slot > 0 && slot%cfg.CoherenceSlots == 0 {
			for _, st := range stations {
				st.h = drawChannel(st.rng, st.nrx, cfg.NTX)
			}
		}

		// Churn: one station (cycling deterministically) tears down and
		// stays away for half an interval before re-contending.
		if churn && slot > 0 && slot%cfg.ChurnInterval == 0 {
			victim := stations[(slot/cfg.ChurnInterval-1)%len(stations)]
			if victim.id != 0 {
				table.Teardown(victim.id)
				cache.Remove(victim.id)
				delete(byID, victim.id)
				victim.id = 0
				victim.queue = 0
				victim.away = cfg.ChurnInterval / 2
			}
		}

		// Traffic arrivals, in station order.
		for _, st := range stations {
			if st.away > 0 {
				st.away--
				continue
			}
			if st.rng.Float64() < cfg.ArrivalProb {
				st.queue++
			}
		}

		// Slotted-contention association: every unassociated, present
		// station draws a subslot from its backoff window; unique draws
		// win, shared draws collide and double their windows.
		picks := map[uint16]*soakStation{}
		draws := map[uint16]int{}
		for _, st := range stations {
			if st.id != 0 || st.away > 0 {
				continue
			}
			key := uint16(st.idx + 1)
			picks[key] = st
			draws[key] = st.backoff.Draw()
			out.assocAttempts++
		}
		if len(draws) > 0 {
			winners, collided := Arbitrate(draws)
			for _, key := range winners {
				st := picks[key]
				nonce := uint64(cell+1)<<40 | uint64(st.idx+1)<<16 | uint64(st.assocs)
				s, err := table.Associate(nonce, st.nrx)
				if err != nil {
					return nil, err
				}
				st.id = s.ID
				byID[s.ID] = st
				st.backoff.Success()
				if st.assocs > 0 {
					st.stats.Reassociations++
					out.reassociations++
				}
				st.assocs++
			}
			for _, key := range collided {
				picks[key].backoff.Collision()
				out.collisions++
			}
		}

		// Sounding round: associated stations quantize their current true
		// channel; the AP caches the dequantized estimate.
		if slot%cfg.SoundInterval == 0 {
			for _, st := range stations {
				if st.id == 0 {
					continue
				}
				tones := make([]*cmatrix.Matrix, soakTones)
				for t := range tones {
					tones[t] = st.h
				}
				fb, err := sounding.Quantize(tones, 1)
				if err != nil {
					return nil, err
				}
				if _, err := cache.UpdateFeedback(st.id, fb, snr); err != nil {
					return nil, err
				}
				table.Touch(st.id)
				if s, ok := table.Get(st.id); ok {
					if age, live := cache.Age(st.id); live {
						table.ReportCSIAge(s, age)
					}
				}
			}
		}
		out.csiEvictions += cache.Sweep()

		// Schedule and transmit the precoded group.
		cands := make([]mumimo.Candidate, 0, len(byID))
		for _, id := range table.IDs() {
			st := byID[id]
			entry, _ := cache.Get(id)
			cands = append(cands, mumimo.Candidate{Station: id, Queue: st.queue, Entry: entry})
		}
		group, _ := sched.Pick(cands)

		hash64(uint64(slot))
		hash64(group.Bitmap)
		hash64(uint64(len(group.Members)))
		for _, m := range group.Members {
			hash64(uint64(m.Station)<<16 | uint64(len(m.Streams)))
		}

		if len(group.Members) > 0 {
			out.scheduledSlots++
			if err := transmitGroup(cfg, table, cache, byID, group, snr, mpduBits, out); err != nil {
				return nil, err
			}
		}

		// Single-user TDMA baseline over the same channel draws: serve the
		// associated stations round-robin, one full-array single stream per
		// slot, from an independent random stream so the two systems'
		// draws cannot entangle.
		ids := table.IDs()
		if len(ids) > 0 {
			st := byID[ids[slot%len(ids)]]
			suSNRdB := 10 * math.Log10(snr*frob2(st.h))
			if baseRng.Float64() > perFromSINR(suSNRdB) {
				out.suBits += mpduBits
			}
		}
	}

	for _, st := range stations {
		if st.stats.Attempts > 0 {
			st.stats.PER = float64(st.stats.Errors) / float64(st.stats.Attempts)
		}
		if s, ok := table.Get(st.id); ok {
			table.ReportPER(s, st.stats.PER)
		}
		out.stats = append(out.stats, st.stats)
	}
	out.schedHash = digest.Sum64()
	return out, nil
}

// transmitGroup precodes from the cached (quantized, possibly stale) CSI,
// evaluates the resulting SINR against the true channels, and draws
// per-MPDU successes. A failed MPDU stays queued — the retry is the ARQ
// abstraction at this model level.
func transmitGroup(cfg SoakConfig, table *Table, cache *mumimo.Cache, byID map[uint16]*soakStation,
	group mumimo.Group, snr float64, mpduBits int64, out *cellResult) error {
	cached := make([]*cmatrix.Matrix, 0, len(group.Members))
	truth := make([]*cmatrix.Matrix, 0, len(group.Members))
	for _, m := range group.Members {
		st := byID[m.Station]
		entry, ok := cache.Get(m.Station)
		if !ok {
			return fmt.Errorf("apmac: scheduled station %d without CSI", m.Station)
		}
		cached = append(cached, takeRows(entry.Mean(), len(m.Streams)))
		truth = append(truth, takeRows(st.h, len(m.Streams)))
	}
	w, err := mumimo.ZFPrecode(mumimo.StackChannels(cached))
	if err != nil {
		out.precodeFailures++
		return nil // rank-deficient feedback: skip the slot, not the soak
	}
	sinrs, err := mumimo.PostPrecodingSINR(mumimo.StackChannels(truth), w, snr)
	if err != nil {
		return err
	}
	for _, m := range group.Members {
		st := byID[m.Station]
		for _, stream := range m.Streams {
			if st.queue <= 0 {
				break
			}
			sinrdB := 10 * math.Log10(sinrs[stream])
			st.stats.Attempts++
			if st.rng.Float64() > perFromSINR(sinrdB) {
				st.queue--
				st.stats.DeliveredBits += mpduBits
				out.muBits += mpduBits
				if s, ok := table.Get(st.id); ok {
					table.AddDownlinkBytes(s, cfg.MPDUBytes)
				}
			} else {
				st.stats.Errors++
			}
		}
	}
	return nil
}

// perFromSINR is the abstracted rate-adapted link: a logistic packet-error
// waterfall centered at 12 dB post-detection SINR with a 1.5 dB slope —
// ~50% PER at the center, <1% above ~19 dB, saturating toward 1 in deep
// interference.
func perFromSINR(sinrdB float64) float64 {
	return 1 / (1 + math.Exp((sinrdB-12)/1.5))
}

// drawChannel draws an i.i.d. Rayleigh nrx×ntx channel with unit average
// entry power.
func drawChannel(rng *rand.Rand, nrx, ntx int) *cmatrix.Matrix {
	h := cmatrix.New(nrx, ntx)
	for i := range h.Data {
		h.Data[i] = complex(rng.NormFloat64(), rng.NormFloat64()) / complex(math.Sqrt2, 0)
	}
	return h
}

// takeRows returns the first n rows of m (n ≤ m.Rows).
func takeRows(m *cmatrix.Matrix, n int) *cmatrix.Matrix {
	if n >= m.Rows {
		return m
	}
	out := cmatrix.New(n, m.Cols)
	copy(out.Data, m.Data[:n*m.Cols])
	return out
}

// frob2 is the squared Frobenius norm — the full-array gain of a
// single-stream maximum-ratio transmission.
func frob2(m *cmatrix.Matrix) float64 {
	var acc float64
	for _, v := range m.Data {
		acc += real(v)*real(v) + imag(v)*imag(v)
	}
	return acc
}

// WellConditioned2x2 is the acceptance comparison on a fixed, nearly
// orthogonal 2×2 downlink: two single-antenna stations served
// simultaneously through ZF precoding versus the better of them served
// alone (full power, single stream). Returns Shannon spectral efficiencies
// in bit/s/Hz; multi-user must win on a channel this well conditioned.
func WellConditioned2x2(snrdB float64) (muSumRate, suBestRate float64) {
	snr := math.Pow(10, snrdB/10)
	h := cmatrix.FromRows([][]complex128{
		{1, 0.1},
		{0.1i, 1},
	})
	w, err := mumimo.ZFPrecode(h)
	if err != nil {
		return 0, 0
	}
	sinrs, err := mumimo.PostPrecodingSINR(h, w, snr)
	if err != nil {
		return 0, 0
	}
	for _, s := range sinrs {
		muSumRate += math.Log2(1 + s)
	}
	for r := 0; r < h.Rows; r++ {
		var gain float64
		for c := 0; c < h.Cols; c++ {
			v := h.At(r, c)
			gain += real(v)*real(v) + imag(v)*imag(v)
		}
		if rate := math.Log2(1 + snr*gain); rate > suBestRate {
			suBestRate = rate
		}
	}
	return muSumRate, suBestRate
}
