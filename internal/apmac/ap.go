package apmac

import (
	"context"
	"fmt"
	"log/slog"
	"math"
	"math/rand"
	"net"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/flowgraph"
	"repro/internal/mumimo"
	"repro/internal/obs"
	"repro/internal/obs/stream"
	"repro/internal/radio"
)

// AP is the multi-user access point service: it multiplexes many station
// processes over UDP radio framing v4, owning the association table, the
// CSI cache fed by quantized sounding feedback, and the orthogonality-aware
// group scheduler that drives the precoded downlink. The ingress and
// scheduling pumps run as supervised flowgraph blocks — panics are
// contained and restarted with backoff, exactly like the session gateway.
type AP struct {
	cfg   APConfig
	log   *slog.Logger
	clk   clock.Clock
	conn  *net.UDPConn
	table *Table
	cache *mumimo.Cache
	sched *mumimo.Scheduler
	hub   *stream.Hub

	mu     sync.Mutex
	closed bool
	inbox  []datagram
	addrs  map[uint16]*net.UDPAddr
	links  map[uint16]*linkStats
	seq    uint64
	token  uint32
	ticks  int

	// dropRng is the seeded air-interface loss model: each downlink data
	// frame is lost with cfg.DropProb, exercising the per-station ARQ.
	dropRng *rand.Rand
}

type datagram struct {
	data []byte
	addr *net.UDPAddr
}

// linkStats tracks one station's downlink outcome for the PER gauge and
// its scheduling deficit for fairness.
type linkStats struct {
	attempts  int
	delivered int
	// lastServed is the tick this station last made a group. The saturated
	// downlink keeps every ARQ window full, so raw queue depth ties across
	// the field; the deficit (ticks since served) breaks the tie and turns
	// the greedy scheduler into a deficit round-robin.
	lastServed int
}

// APConfig configures an access point.
type APConfig struct {
	// Listen is the UDP address stations join.
	Listen string
	// NTX is the transmit antenna count (spatial stream budget). Default 4.
	NTX int
	// SNRdB is the nominal link SNR handed to the sounding analyzer.
	// Default 25.
	SNRdB float64
	// MPDUBytes sizes each downlink payload. Default 500.
	MPDUBytes int
	// TickInterval paces the scheduling loop. Default 5ms.
	TickInterval time.Duration
	// SoundEvery is the sounding cadence in ticks. Default 20.
	SoundEvery int
	// IdleTimeout evicts stations silent this long. Default 3s.
	IdleTimeout time.Duration
	// DropProb is the seeded downlink loss probability (air model).
	DropProb float64
	// Seed drives the loss model.
	Seed int64
	// Logger observes AP events; nil is silent.
	Logger *slog.Logger
	// Registry receives the AP gauges and flowgraph health metrics.
	Registry *obs.Registry
	// Events, when set, receives the AP journal — station assoc / drop,
	// CSI staleness evictions, and supervisor restarts — on the live
	// telemetry stream. Nil publishes nothing (the hub is nil-safe).
	Events *stream.Hub
	// Clock injects time; nil is the system clock.
	Clock clock.Clock
}

func (c APConfig) withDefaults() APConfig {
	if c.NTX <= 0 {
		c.NTX = 4
	}
	if c.SNRdB == 0 {
		c.SNRdB = 25
	}
	if c.MPDUBytes <= 0 {
		c.MPDUBytes = 500
	}
	if c.MPDUBytes > MaxFeedbackBytes {
		c.MPDUBytes = MaxFeedbackBytes
	}
	if c.TickInterval <= 0 {
		c.TickInterval = 5 * time.Millisecond
	}
	if c.SoundEvery <= 0 {
		c.SoundEvery = 20
	}
	if c.IdleTimeout <= 0 {
		c.IdleTimeout = 3 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.DiscardHandler)
	}
	c.Clock = clock.Or(c.Clock)
	return c
}

// NewAP binds the listen socket and assembles the service.
func NewAP(cfg APConfig) (*AP, error) {
	cfg = cfg.withDefaults()
	laddr, err := net.ResolveUDPAddr("udp", cfg.Listen)
	if err != nil {
		return nil, fmt.Errorf("apmac: listen address: %w", err)
	}
	conn, err := net.ListenUDP("udp", laddr)
	if err != nil {
		return nil, fmt.Errorf("apmac: listen: %w", err)
	}
	a := &AP{
		cfg:     cfg,
		log:     cfg.Logger,
		clk:     cfg.Clock,
		conn:    conn,
		table:   NewTable(cfg.Clock),
		cache:   mumimo.NewCache(cfg.Clock, mumimo.DefaultMaxCSIAge),
		sched:   &mumimo.Scheduler{NTX: cfg.NTX},
		hub:     cfg.Events,
		addrs:   map[uint16]*net.UDPAddr{},
		links:   map[uint16]*linkStats{},
		dropRng: rand.New(rand.NewSource(cfg.Seed)),
	}
	if cfg.Registry != nil {
		a.table.Instrument(cfg.Registry)
	}
	return a, nil
}

// Addr returns the bound listen address.
func (a *AP) Addr() net.Addr { return a.conn.LocalAddr() }

// Stations returns the current association count.
func (a *AP) Stations() int { return a.table.Len() }

// StationList snapshots every association for the control API.
func (a *AP) StationList() []StationInfo { return a.table.Infos() }

// Run serves until ctx is cancelled. The ingress and scheduler pumps run
// under flowgraph supervision; a contained panic restarts the block with
// backoff rather than killing the AP.
func (a *AP) Run(ctx context.Context) error {
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	stopped := make(chan struct{})
	go func() {
		<-runCtx.Done()
		a.mu.Lock()
		a.closed = true
		a.mu.Unlock()
		a.conn.Close()
		close(stopped)
	}()

	graph := flowgraph.New()
	ing := &apIngressBlock{a: a}
	sch := &apSchedBlock{a: a}
	if err := graph.Add(ing); err != nil {
		return err
	}
	if err := graph.Add(sch); err != nil {
		return err
	}
	if err := graph.Connect(ing, 0, sch, 0); err != nil {
		return err
	}
	if err := graph.SetPolicy(flowgraph.Policy{
		MaxRestarts: 4,
		TrackHealth: true,
		Metrics:     a.cfg.Registry,
		Logger:      a.log,
		Clock:       a.clk,
		OnRestart: func(block string, attempt int, err error) {
			reason := ""
			if err != nil {
				reason = err.Error()
			}
			a.hub.Publish(stream.Event{
				Type:  stream.EventSupervisorRestart,
				Block: block, Attempt: attempt, Reason: reason,
			})
		},
	}); err != nil {
		return err
	}
	err := graph.Run(runCtx)
	cancel()
	<-stopped
	if ctx.Err() != nil {
		return nil
	}
	return err
}

// apIngressBlock parks on the socket and queues inbound datagrams, ringing
// the doorbell chunk toward the scheduler block.
type apIngressBlock struct{ a *AP }

func (b *apIngressBlock) Name() string { return "ap-ingress" }
func (b *apIngressBlock) Inputs() int  { return 0 }
func (b *apIngressBlock) Outputs() int { return 1 }

func (b *apIngressBlock) Run(ctx context.Context, _ []<-chan flowgraph.Chunk, out []chan<- flowgraph.Chunk) error {
	a := b.a
	buf := make([]byte, 64*1024)
	for {
		n, addr, err := a.conn.ReadFromUDP(buf)
		if err != nil {
			a.mu.Lock()
			closed := a.closed
			a.mu.Unlock()
			if closed || ctx.Err() != nil {
				return nil
			}
			return flowgraph.Recoverable(err)
		}
		d := datagram{data: append([]byte(nil), buf[:n]...), addr: addr} //mimonet:alloc-ok datagram escapes to the sched block
		a.mu.Lock()
		a.inbox = append(a.inbox, d) //mimonet:alloc-ok inbox batches datagrams between doorbells
		a.mu.Unlock()
		if !flowgraph.Send(ctx, out[0], nil) {
			return nil
		}
	}
}

// apSchedBlock is the single-threaded brain: it drains the ingress inbox on
// each doorbell and runs the downlink scheduling round on every tick, so
// the table, cache, and ARQ state need no further locking.
type apSchedBlock struct{ a *AP }

func (b *apSchedBlock) Name() string { return "ap-sched" }
func (b *apSchedBlock) Inputs() int  { return 1 }
func (b *apSchedBlock) Outputs() int { return 0 }

func (b *apSchedBlock) Run(ctx context.Context, in []<-chan flowgraph.Chunk, _ []chan<- flowgraph.Chunk) error {
	a := b.a
	ticker := a.clk.NewTicker(a.cfg.TickInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return nil
		case _, ok := <-in[0]:
			if !ok {
				return nil
			}
			for _, d := range a.drainInbox() {
				a.route(d)
			}
		case <-ticker.C:
			a.tick()
		}
	}
}

func (a *AP) drainInbox() []datagram {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := a.inbox
	a.inbox = nil
	return out
}

// route handles one inbound station datagram: v4/v3 radio framing around an
// apmac control message.
func (a *AP) route(d datagram) {
	h, err := radio.DecodeHeader(d.data)
	if err != nil || !h.IsData() {
		return
	}
	body, err := radio.DecodeDataPayload(h, d.data[h.HeaderLen():])
	if err != nil {
		return
	}
	m, err := DecodeMessage(body)
	if err != nil {
		return
	}
	switch m.Kind {
	case KindAssoc:
		s, err := a.table.Associate(m.Nonce, int(m.RXAntennas))
		if err != nil {
			a.log.Warn("association refused", slog.String("err", err.Error()))
			return
		}
		a.addrs[s.ID] = d.addr
		if _, ok := a.links[s.ID]; !ok {
			a.links[s.ID] = &linkStats{}
		}
		//mimonet:eob-ok control reply, not a forwarded burst segment
		a.send(d.addr, radio.Header{StationID: s.ID}, &Msg{
			Kind: KindAssocAck, AssignedID: s.ID, Slot: s.Slot,
			CWMinExp: DefaultCWMinExp, CWMaxExp: DefaultCWMaxExp,
		})
		a.hub.Publish(stream.Event{Type: stream.EventStationAssoc,
			Station: s.ID, Slot: s.Slot})
		a.log.Info("station associated", slog.Int("station", int(s.ID)),
			slog.Int("slot", int(s.Slot)), slog.Int("rx_antennas", int(s.RXAntennas)))
	case KindFeedback:
		if h.StationID == 0 {
			return
		}
		a.table.Touch(h.StationID)
		a.addrs[h.StationID] = d.addr
		snr := dbToLinear(a.cfg.SNRdB)
		if _, err := a.cache.UpdateFeedback(h.StationID, m.Feedback, snr); err != nil {
			a.log.Warn("feedback rejected", slog.Int("station", int(h.StationID)),
				slog.String("err", err.Error()))
		}
	case KindBlockAck:
		st, ok := a.table.Get(h.StationID)
		if !ok {
			return
		}
		a.table.Touch(st.ID)
		before := st.ARQ.Delivered
		st.ARQ.Apply(m.Ack)
		if delta := st.ARQ.Delivered - before; delta > 0 {
			a.links[st.ID].delivered += delta
			a.table.AddDownlinkBytes(st, delta*a.cfg.MPDUBytes)
		}
	case KindData:
		// Uplink data: acknowledge liveness only at this model level.
		a.table.Touch(h.StationID)
	case KindBye:
		if a.table.Teardown(h.StationID) {
			a.cache.Remove(h.StationID)
			delete(a.addrs, h.StationID)
			reason := m.Reason
			if reason == "" {
				reason = "bye"
			}
			a.hub.Publish(stream.Event{Type: stream.EventStationDrop,
				Station: h.StationID, Reason: reason})
			a.log.Info("station departed", slog.Int("station", int(h.StationID)),
				slog.String("reason", m.Reason))
		}
	case KindAssocAck, KindSound:
		// AP-originated kinds arriving at the AP are misrouted; drop them.
	}
}

// tick runs one downlink round: expire the idle, sweep stale CSI, sound the
// field, top up every station's ARQ window, and transmit the scheduled
// group's frames through the seeded loss model.
func (a *AP) tick() {
	a.ticks++
	for _, id := range a.table.ExpireIdle(a.cfg.IdleTimeout) {
		a.cache.Remove(id)
		delete(a.addrs, id)
		a.hub.Publish(stream.Event{Type: stream.EventStationDrop,
			Station: id, Reason: "idle-timeout"})
		a.log.Info("station expired", slog.Int("station", int(id)))
	}
	for _, id := range a.cache.SweepList() {
		a.hub.Publish(stream.Event{Type: stream.EventCSIStale, Station: id})
	}

	ids := a.table.IDs()
	if a.ticks%a.cfg.SoundEvery == 0 {
		a.token++
		for _, id := range ids {
			if addr, ok := a.addrs[id]; ok {
				a.send(addr, radio.Header{StationID: id}, &Msg{Kind: KindSound, Token: a.token})
			}
		}
	}

	cands := make([]mumimo.Candidate, 0, len(ids))
	for _, id := range ids {
		st, ok := a.table.Get(id)
		if !ok {
			continue
		}
		// Saturated downlink: keep the ARQ window full.
		for st.ARQ.Outstanding() < ARQWindow {
			st.ARQ.Queue(a.payloadFor(id))
		}
		ls, ok := a.links[id]
		if !ok {
			ls = &linkStats{lastServed: a.ticks}
			a.links[id] = ls
		}
		entry, _ := a.cache.Get(id)
		cands = append(cands, mumimo.Candidate{Station: id, Queue: a.ticks - ls.lastServed + 1, Entry: entry})
		if age, ok := a.cache.Age(id); ok {
			a.table.ReportCSIAge(st, age)
		}
	}
	group, _ := a.sched.Pick(cands)
	for _, member := range group.Members {
		st, ok := a.table.Get(member.Station)
		if !ok {
			continue
		}
		addr, ok := a.addrs[member.Station]
		if !ok {
			continue
		}
		frames := st.ARQ.Round()
		if len(frames) > len(member.Streams) {
			frames = frames[:len(member.Streams)]
		}
		ls := a.links[member.Station]
		ls.lastServed = a.ticks
		for _, f := range frames {
			ls.attempts++
			if a.cfg.DropProb > 0 && a.dropRng.Float64() < a.cfg.DropProb {
				continue // lost on air; the ARQ round retransmits
			}
			mpdu, err := f.Encode()
			if err != nil {
				continue
			}
			a.send(addr, radio.Header{StationID: member.Station, GroupBitmap: group.Bitmap},
				&Msg{Kind: KindData, MPDU: mpdu})
		}
		if ls.attempts > 0 {
			a.table.ReportPER(st, 1-float64(ls.delivered)/float64(ls.attempts))
		}
	}
}

// payloadFor builds one downlink MPDU payload: a deterministic filler
// stamped with the station ID so the receive side can sanity-check routing.
func (a *AP) payloadFor(id uint16) []byte {
	p := make([]byte, a.cfg.MPDUBytes)
	for i := range p {
		p[i] = byte(int(id) + i)
	}
	return p
}

// send encodes one control message into a radio data frame. Frames carrying
// a zero station ID (pre-association) ride the nonce in the session field.
func (a *AP) send(addr *net.UDPAddr, h radio.Header, m *Msg) {
	payload, err := AppendMessage(nil, m)
	if err != nil {
		return
	}
	a.seq++
	h.Seq = a.seq
	frame, err := radio.EncodeDataFrame(nil, h, payload)
	if err != nil {
		return
	}
	a.conn.WriteToUDP(frame, addr) //nolint:errcheck // lossy link: errors equal loss
}

func dbToLinear(db float64) float64 { return math.Pow(10, db/10) }
