package apmac

import (
	"fmt"
	"math/rand"
	"sort"
)

// Slotted contention. The uplink is divided into contention rounds of CW
// slots; each station with pending traffic draws one slot uniformly from
// its current window. A slot with exactly one contender carries its frame;
// a slot two or more stations picked is a collision, and every collider
// doubles its window (binary-exponential backoff) up to the AP-granted
// maximum. A successful station resets to the minimum window. The draw is
// seeded per station, so a fixed seed replays the exact contention history
// — the property the E25 soak's determinism check rides on.

// Contention-window bounds granted at association, as exponents of two.
const (
	// DefaultCWMinExp: the initial window is 2^4 = 16 slots.
	DefaultCWMinExp = 4
	// DefaultCWMaxExp: backoff saturates at 2^10 = 1024 slots.
	DefaultCWMaxExp = 10
)

// Backoff is one station's contention state. Not safe for concurrent use.
type Backoff struct {
	rng        *rand.Rand
	cwMin, cw  int
	cwMax      int
	collisions int
}

// NewBackoff returns contention state drawing from rng (required: the seam
// that keeps contention deterministic under test) with the given window
// exponents.
func NewBackoff(rng *rand.Rand, cwMinExp, cwMaxExp uint8) (*Backoff, error) {
	if rng == nil {
		return nil, fmt.Errorf("apmac: backoff requires a seeded rand source")
	}
	if cwMinExp > cwMaxExp || cwMaxExp > 16 {
		return nil, fmt.Errorf("apmac: contention window exponents [%d, %d] invalid", cwMinExp, cwMaxExp)
	}
	min := 1 << cwMinExp
	return &Backoff{rng: rng, cwMin: min, cw: min, cwMax: 1 << cwMaxExp}, nil
}

// Draw picks this round's slot: uniform over the current window.
func (b *Backoff) Draw() int { return b.rng.Intn(b.cw) }

// Window returns the current contention window size in slots.
func (b *Backoff) Window() int { return b.cw }

// Collisions returns how many consecutive collisions the station has
// suffered since its last success.
func (b *Backoff) Collisions() int { return b.collisions }

// Collision doubles the window (saturating at the granted maximum).
func (b *Backoff) Collision() {
	b.collisions++
	if b.cw*2 <= b.cwMax {
		b.cw *= 2
	}
}

// Success resets the window to the minimum.
func (b *Backoff) Success() {
	b.collisions = 0
	b.cw = b.cwMin
}

// Arbitrate resolves one contention round: picks maps station → drawn slot.
// Stations alone in their slot win; stations sharing a slot collide. Both
// result slices are sorted by station ID, so a fixed input yields a
// bit-identical outcome on any iteration order.
func Arbitrate(picks map[uint16]int) (winners, collided []uint16) {
	bySlot := make(map[int][]uint16, len(picks))
	for st, slot := range picks {
		bySlot[slot] = append(bySlot[slot], st)
	}
	for _, stations := range bySlot {
		if len(stations) == 1 {
			winners = append(winners, stations[0])
			continue
		}
		collided = append(collided, stations...)
	}
	sort.Slice(winners, func(i, j int) bool { return winners[i] < winners[j] })
	sort.Slice(collided, func(i, j int) bool { return collided[i] < collided[j] })
	return winners, collided
}
