package apmac

import (
	"context"
	"fmt"
	"log/slog"
	"math/rand"
	"net"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/cmatrix"
	"repro/internal/mac"
	"repro/internal/montecarlo"
	"repro/internal/radio"
	"repro/internal/sounding"
)

// Client is the station side of the AP MAC: it associates through the
// contention protocol (seeded binary-exponential backoff on every failed
// attempt), answers sounding requests with quantized CSI of its seeded
// channel, receives precoded downlink MPDUs, and block-acknowledges them so
// the AP's per-station ARQ advances. Lifecycle and reconnect structure
// mirror the session gateway's client.
type Client struct {
	cfg  ClientConfig
	log  *slog.Logger
	clk  clock.Clock
	conn *net.UDPConn
	rng  *rand.Rand
	h    *cmatrix.Matrix

	id    uint16
	seq   uint64
	nonce uint64

	// Received-window state for block acks.
	haveMax  uint16
	haveAny  bool
	haveBits uint64

	statsMu sync.Mutex
	stats   ClientStats
}

// Snapshot returns the station's current run statistics; safe to call while
// Run is live on another goroutine.
func (s *Client) Snapshot() ClientStats {
	s.statsMu.Lock()
	defer s.statsMu.Unlock()
	return s.stats
}

// bump mutates the stats under the snapshot lock.
func (s *Client) bump(f func(*ClientStats)) {
	s.statsMu.Lock()
	defer s.statsMu.Unlock()
	f(&s.stats)
}

// ClientStats summarizes one station run.
type ClientStats struct {
	Associated   bool
	ID           uint16
	Slot         uint8
	AssocTries   int
	Soundings    int
	DataFrames   int
	AcksSent     int
	PayloadFault int // MPDUs whose filler did not match the station ID stamp
}

// ClientConfig configures a station client.
type ClientConfig struct {
	// Addr is the AP's UDP address.
	Addr string
	// Index seeds the station's identity: its nonce, channel draw, and
	// backoff stream all derive from (Seed, Index) via montecarlo.ShardSeed.
	Index int
	// Seed is the campaign seed.
	Seed int64
	// NRX is the station's antenna count (1–4). Default 1 + Index%2.
	NRX int
	// NTX is the AP antenna count the channel draw spans. Default 4.
	NTX int
	// Tones is the sounding report's subcarrier count. Default 4.
	Tones int
	// AssocTimeout bounds one association attempt. Default 250ms.
	AssocTimeout time.Duration
	// Logger observes station events; nil is silent.
	Logger *slog.Logger
	// Clock injects time; nil is the system clock.
	Clock clock.Clock
}

func (c ClientConfig) withDefaults() ClientConfig {
	if c.NRX <= 0 {
		c.NRX = 1 + c.Index%2
	}
	if c.NTX <= 0 {
		c.NTX = 4
	}
	if c.Tones <= 0 {
		c.Tones = soakTones
	}
	if c.AssocTimeout <= 0 {
		c.AssocTimeout = 250 * time.Millisecond
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.DiscardHandler)
	}
	c.Clock = clock.Or(c.Clock)
	return c
}

// NewClient dials the AP and prepares the client.
func NewClient(cfg ClientConfig) (*Client, error) {
	cfg = cfg.withDefaults()
	raddr, err := net.ResolveUDPAddr("udp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("apmac: station address: %w", err)
	}
	conn, err := net.DialUDP("udp", nil, raddr)
	if err != nil {
		return nil, fmt.Errorf("apmac: station dial: %w", err)
	}
	rng := rand.New(rand.NewSource(montecarlo.ShardSeed(cfg.Seed, cfg.Index)))
	s := &Client{
		cfg:   cfg,
		log:   cfg.Logger,
		clk:   cfg.Clock,
		conn:  conn,
		rng:   rng,
		nonce: uint64(rng.Int63()) | 1, // non-zero: pre-association demux key
	}
	s.h = drawChannel(rng, cfg.NRX, cfg.NTX)
	return s, nil
}

// Run associates and serves the control loop until ctx is cancelled (a Bye
// is sent on the way out) or the AP evicts the station.
func (s *Client) Run(ctx context.Context) error {
	defer s.conn.Close()
	if err := s.associate(ctx); err != nil {
		return err
	}
	s.log.Info("associated", slog.Int("station", int(s.id)),
		slog.Int("tries", s.Snapshot().AssocTries))
	for {
		if ctx.Err() != nil {
			s.sendMsg(radio.Header{StationID: s.id}, &Msg{Kind: KindBye, Reason: "shutdown"})
			return nil
		}
		m, _, err := s.readMsg(s.clk.Now().Add(200 * time.Millisecond))
		if err != nil {
			continue // timeout or a corrupt frame: keep serving
		}
		switch m.Kind {
		case KindSound:
			s.bump(func(st *ClientStats) { st.Soundings++ })
			fb, err := s.quantizeCSI()
			if err != nil {
				return err
			}
			s.sendMsg(radio.Header{StationID: s.id}, &Msg{Kind: KindFeedback, Token: m.Token, Feedback: fb})
		case KindData:
			f, err := mac.Decode(m.MPDU)
			if err != nil {
				continue
			}
			s.bump(func(st *ClientStats) {
				st.DataFrames++
				if len(f.Payload) > 0 && f.Payload[0] != byte(s.id) {
					st.PayloadFault++
				}
			})
			s.recordSeq(f.Seq)
			s.sendAck()
		case KindBye:
			s.log.Info("evicted", slog.String("reason", m.Reason))
			return nil
		case KindAssoc, KindAssocAck, KindFeedback, KindBlockAck:
			// Not meaningful mid-session; ignore.
		}
	}
}

// associate runs the contention loop: transmit, await the ack for one
// timeout, and on failure back off a seeded number of attempt slots with a
// doubled window — the station-side half of the slotted contention MAC.
func (s *Client) associate(ctx context.Context) error {
	bo, err := NewBackoff(s.rng, DefaultCWMinExp, DefaultCWMaxExp)
	if err != nil {
		return err
	}
	for attempt := 0; ; attempt++ {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		s.bump(func(st *ClientStats) { st.AssocTries++ })
		s.sendMsg(radio.Header{SessionID: s.nonce}, &Msg{
			Kind: KindAssoc, Nonce: s.nonce, RXAntennas: uint8(s.cfg.NRX),
		})
		deadline := s.clk.Now().Add(s.cfg.AssocTimeout)
		for s.clk.Now().Before(deadline) {
			m, _, err := s.readMsg(deadline)
			if err != nil {
				break
			}
			if m.Kind == KindAssocAck {
				s.id = m.AssignedID
				s.bump(func(st *ClientStats) {
					st.Associated = true
					st.ID = m.AssignedID
					st.Slot = m.Slot
				})
				return nil
			}
		}
		if attempt >= 8 {
			return fmt.Errorf("apmac: association failed after %d attempts", s.Snapshot().AssocTries)
		}
		bo.Collision()
		wait := time.Duration(bo.Draw()+1) * s.cfg.AssocTimeout / 4
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-s.clk.After(wait):
		}
	}
}

// quantizeCSI encodes the station's current channel as compact feedback.
func (s *Client) quantizeCSI() ([]byte, error) {
	tones := make([]*cmatrix.Matrix, s.cfg.Tones)
	for i := range tones {
		tones[i] = s.h
	}
	return sounding.Quantize(tones, 1)
}

// recordSeq slides the 64-deep receive window over MPDU sequence numbers.
func (s *Client) recordSeq(seq uint16) {
	seq &= 0x0FFF
	if !s.haveAny {
		s.haveAny = true
		s.haveMax = seq
		s.haveBits = 1 << 63
		return
	}
	ahead := int(seq-s.haveMax) & 0x0FFF
	if ahead > 0 && ahead < 2048 {
		if ahead >= 64 {
			s.haveBits = 0
		} else {
			s.haveBits >>= uint(ahead)
		}
		s.haveMax = seq
		s.haveBits |= 1 << 63
		return
	}
	if back := int(s.haveMax-seq) & 0x0FFF; back < 64 {
		s.haveBits |= 1 << uint(63-back)
	}
}

// sendAck reports the receive window as a block ack anchored 63 sequences
// behind the newest MPDU.
func (s *Client) sendAck() {
	if !s.haveAny {
		return
	}
	// haveBits bit (63-back) covers sequence haveMax-back; anchored at
	// start = haveMax-63 that same sequence sits at ack offset 63-back, so
	// the bitmap transfers directly.
	start := (s.haveMax - 63) & 0x0FFF
	bitmap := s.haveBits
	s.bump(func(st *ClientStats) { st.AcksSent++ })
	s.sendMsg(radio.Header{StationID: s.id}, &Msg{
		Kind: KindBlockAck, Ack: mac.BlockAck{Start: start, Bitmap: bitmap},
	})
}

// sendMsg encodes one control message into a radio data frame.
func (s *Client) sendMsg(h radio.Header, m *Msg) {
	payload, err := AppendMessage(nil, m)
	if err != nil {
		return
	}
	s.seq++
	h.Seq = s.seq
	frame, err := radio.EncodeDataFrame(nil, h, payload)
	if err != nil {
		return
	}
	s.conn.Write(frame) //nolint:errcheck // lossy link: errors equal loss
}

// readMsg blocks for one decoded AP message until the absolute deadline.
func (s *Client) readMsg(deadline time.Time) (*Msg, radio.Header, error) {
	buf := make([]byte, 64*1024)
	if err := s.conn.SetReadDeadline(deadline); err != nil {
		return nil, radio.Header{}, err
	}
	n, err := s.conn.Read(buf)
	if err != nil {
		return nil, radio.Header{}, err
	}
	h, err := radio.DecodeHeader(buf[:n])
	if err != nil || !h.IsData() {
		return nil, radio.Header{}, fmt.Errorf("apmac: undecodable frame")
	}
	body, err := radio.DecodeDataPayload(h, buf[h.HeaderLen():n])
	if err != nil {
		return nil, h, err
	}
	m, err := DecodeMessage(body)
	if err != nil {
		return nil, h, err
	}
	return m, h, nil
}
