package apmac

import (
	"reflect"
	"testing"

	"repro/internal/obs"
)

func quickSoak() SoakConfig {
	return SoakConfig{
		Cells:           4,
		StationsPerCell: 6,
		Slots:           300,
		Seed:            7,
		Workers:         1,
	}
}

func TestSoakDeterministicAcrossWorkers(t *testing.T) {
	cfg := quickSoak()
	serial, err := RunSoak(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 8
	parallel, err := RunSoak(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if serial.SchedHash != parallel.SchedHash {
		t.Errorf("scheduler hash differs across worker counts: %s vs %s", serial.SchedHash, parallel.SchedHash)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Error("soak results differ across worker counts")
	}
}

func TestSoakOutcomes(t *testing.T) {
	res, err := RunSoak(quickSoak())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerStation) != res.Stations {
		t.Fatalf("per-station stats for %d of %d stations", len(res.PerStation), res.Stations)
	}
	delivered := 0
	for _, s := range res.PerStation {
		if s.PER < 0 || s.PER > 1 {
			t.Errorf("cell %d station %d PER %g out of range", s.Cell, s.Station, s.PER)
		}
		if s.DeliveredBits > 0 {
			delivered++
		}
	}
	if delivered < res.Stations/2 {
		t.Errorf("only %d/%d stations ever received data", delivered, res.Stations)
	}
	if res.ScheduledSlots == 0 || res.MUThroughputMbps <= 0 {
		t.Errorf("soak never transmitted: %d scheduled slots, %.3f Mbps", res.ScheduledSlots, res.MUThroughputMbps)
	}
	if res.AssocAttempts == 0 {
		t.Error("no association attempts recorded")
	}
	if res.MU2x2SumRate <= res.SU2x2BestRate {
		t.Errorf("MU sum rate %.2f not above SU baseline %.2f on a well-conditioned 2x2",
			res.MU2x2SumRate, res.SU2x2BestRate)
	}
	if res.MUThroughputMbps <= res.SUBaselineMbps {
		t.Errorf("MU aggregate %.3f Mbps not above SU TDMA baseline %.3f Mbps",
			res.MUThroughputMbps, res.SUBaselineMbps)
	}
	// Churn cells must have observed reassociations and the fading cells
	// should have evicted stale CSI at least once under churn.
	if res.Reassociations == 0 {
		t.Error("churn scenarios produced no reassociations")
	}
}

func TestSoakDefaultsTrackArtifact(t *testing.T) {
	cfg := SoakConfig{}.withDefaults()
	if got := cfg.Cells * cfg.StationsPerCell; got < 100 {
		t.Errorf("default soak drives %d stations, the tracked artifact needs >= 100", got)
	}
	if len(soakScenarios) != 4 {
		t.Errorf("scenario rotation has %d entries", len(soakScenarios))
	}
}

func TestSoakInstrumented(t *testing.T) {
	cfg := quickSoak()
	cfg.Cells = 1
	cfg.Registry = obs.NewRegistry()
	if _, err := RunSoak(cfg); err != nil {
		t.Fatal(err)
	}
}
