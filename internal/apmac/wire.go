// Package apmac is the uplink MAC of the multi-user access point: an
// association/teardown lifecycle handing out station IDs, slotted
// contention with seeded binary-exponential backoff for the shared uplink,
// and per-station ARQ state reusing internal/mac's Block Ack machinery.
// Control messages ride radio version-4 data frames keyed by station ID,
// with the same kind(1)+body+FCS(4) integrity envelope the session gateway
// uses.
package apmac

import (
	"encoding/binary"
	"fmt"

	"repro/internal/bitutil"
	"repro/internal/mac"
	"repro/internal/radio"
)

// ProtocolVersion is the AP MAC handshake version.
const ProtocolVersion = 1

// Kind discriminates AP MAC messages.
type Kind uint8

const (
	// KindAssoc requests association: station → AP, carrying a client
	// nonce so retransmitted requests are idempotent.
	KindAssoc Kind = iota + 1
	// KindAssocAck grants it: station ID, bitmap slot, contention window.
	KindAssocAck
	// KindSound polls a station for channel feedback (AP → station).
	KindSound
	// KindFeedback answers with quantized CSI (sounding.Quantize bytes).
	KindFeedback
	// KindData carries one mac-framed MPDU (either direction).
	KindData
	// KindBlockAck acknowledges MPDUs: ARQ Block Ack bitmap.
	KindBlockAck
	// KindBye tears the association down (either direction).
	KindBye
)

func (k Kind) String() string {
	switch k {
	case KindAssoc:
		return "assoc"
	case KindAssocAck:
		return "assoc-ack"
	case KindSound:
		return "sound"
	case KindFeedback:
		return "feedback"
	case KindData:
		return "data"
	case KindBlockAck:
		return "block-ack"
	case KindBye:
		return "bye"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// maxByeReason bounds the BYE reason string on the wire.
const maxByeReason = 120

// MaxFeedbackBytes bounds a feedback message's CSI payload so the whole
// message — kind(1) + token(4) + CSI + FCS(4) — fits one radio data frame.
const MaxFeedbackBytes = radio.MaxDataPayload - 9

// Msg is a decoded AP MAC message. Fields are populated per Kind; Station
// is copied from the radio header by the transport.
type Msg struct {
	Kind    Kind
	Station uint16

	// Nonce dedupes association retries (Assoc).
	Nonce uint64
	// RXAntennas is the station's receive antenna count (Assoc).
	RXAntennas uint8
	// AssignedID is the AP-granted station ID (AssocAck).
	AssignedID uint16
	// Slot is the granted group-bitmap slot (AssocAck).
	Slot uint8
	// CWMinExp/CWMaxExp are the granted contention-window bounds as
	// exponents: CW spans [2^min, 2^max] slots (AssocAck).
	CWMinExp uint8
	CWMaxExp uint8
	// Token correlates a sounding poll with its feedback
	// (Sound, Feedback).
	Token uint32
	// Feedback is the quantized CSI payload (Feedback). Aliases the
	// decode buffer.
	Feedback []byte
	// MPDU is the mac-framed chunk (Data). Aliases the decode buffer.
	MPDU []byte
	// Ack is the ARQ Block Ack bitmap (BlockAck).
	Ack mac.BlockAck
	// Reason documents a Bye.
	Reason string
}

// AppendMessage serializes m (without the radio framing) onto dst.
func AppendMessage(dst []byte, m *Msg) ([]byte, error) {
	start := len(dst)
	dst = append(dst, byte(m.Kind))
	var scratch [8]byte
	u64 := func(v uint64) {
		binary.BigEndian.PutUint64(scratch[:], v)
		dst = append(dst, scratch[:8]...)
	}
	u32 := func(v uint32) {
		binary.BigEndian.PutUint32(scratch[:4], v)
		dst = append(dst, scratch[:4]...)
	}
	u16 := func(v uint16) {
		binary.BigEndian.PutUint16(scratch[:2], v)
		dst = append(dst, scratch[:2]...)
	}
	switch m.Kind {
	case KindAssoc:
		dst = append(dst, ProtocolVersion)
		u64(m.Nonce)
		dst = append(dst, m.RXAntennas)
	case KindAssocAck:
		u16(m.AssignedID)
		dst = append(dst, m.Slot, m.CWMinExp, m.CWMaxExp)
	case KindSound:
		u32(m.Token)
	case KindFeedback:
		if len(m.Feedback) == 0 || len(m.Feedback) > MaxFeedbackBytes {
			return nil, fmt.Errorf("apmac: feedback payload %d outside [1, %d]", len(m.Feedback), MaxFeedbackBytes)
		}
		u32(m.Token)
		dst = append(dst, m.Feedback...)
	case KindData:
		if len(m.MPDU) == 0 {
			return nil, fmt.Errorf("apmac: data message without an MPDU")
		}
		dst = append(dst, m.MPDU...)
	case KindBlockAck:
		u16(m.Ack.Start)
		u64(m.Ack.Bitmap)
	case KindBye:
		r := m.Reason
		if len(r) > maxByeReason {
			r = r[:maxByeReason]
		}
		dst = append(dst, byte(len(r)))
		dst = append(dst, r...)
	default:
		return nil, fmt.Errorf("apmac: cannot encode message kind %v", m.Kind)
	}
	framed := bitutil.AppendFCS(dst[start:])
	return append(dst[:start], framed...), nil
}

// DecodeMessage parses one AP MAC message payload (the bytes of a radio
// data frame). The returned Msg's MPDU and Feedback alias b. Corrupt or
// truncated input yields typed errors, never panics.
func DecodeMessage(b []byte) (*Msg, error) {
	body, ok := bitutil.CheckFCS(b)
	if !ok {
		return nil, fmt.Errorf("apmac: message FCS check failed")
	}
	if len(body) < 1 {
		return nil, fmt.Errorf("apmac: empty message")
	}
	m := &Msg{Kind: Kind(body[0])}
	body = body[1:]
	need := func(n int) error {
		if len(body) < n {
			return fmt.Errorf("apmac: %v message body %d bytes, need %d", m.Kind, len(body), n)
		}
		return nil
	}
	switch m.Kind {
	case KindAssoc:
		if err := need(10); err != nil {
			return nil, err
		}
		if body[0] != ProtocolVersion {
			return nil, fmt.Errorf("apmac: protocol version %d, want %d", body[0], ProtocolVersion)
		}
		m.Nonce = binary.BigEndian.Uint64(body[1:])
		m.RXAntennas = body[9]
	case KindAssocAck:
		if err := need(5); err != nil {
			return nil, err
		}
		m.AssignedID = binary.BigEndian.Uint16(body[0:])
		m.Slot = body[2]
		m.CWMinExp = body[3]
		m.CWMaxExp = body[4]
	case KindSound:
		if err := need(4); err != nil {
			return nil, err
		}
		m.Token = binary.BigEndian.Uint32(body[0:])
	case KindFeedback:
		if err := need(4); err != nil {
			return nil, err
		}
		m.Token = binary.BigEndian.Uint32(body[0:])
		if len(body) == 4 {
			return nil, fmt.Errorf("apmac: feedback message without CSI bytes")
		}
		m.Feedback = body[4:]
	case KindData:
		if len(body) == 0 {
			return nil, fmt.Errorf("apmac: data message without an MPDU")
		}
		m.MPDU = body
	case KindBlockAck:
		if err := need(10); err != nil {
			return nil, err
		}
		m.Ack.Start = binary.BigEndian.Uint16(body[0:])
		m.Ack.Bitmap = binary.BigEndian.Uint64(body[2:])
	case KindBye:
		if err := need(1); err != nil {
			return nil, err
		}
		n := int(body[0])
		if len(body) < 1+n {
			return nil, fmt.Errorf("apmac: bye reason %d bytes, have %d", n, len(body)-1)
		}
		m.Reason = string(body[1 : 1+n])
	default:
		return nil, fmt.Errorf("apmac: unknown message kind %d", uint8(m.Kind))
	}
	return m, nil
}
