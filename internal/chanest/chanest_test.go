package chanest

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"repro/internal/cmatrix"
	"repro/internal/ofdm"
	"repro/internal/preamble"
)

// randH draws a random flat MIMO channel.
func randH(r *rand.Rand, nrx, nss int) *cmatrix.Matrix {
	h := cmatrix.New(nrx, nss)
	for i := range h.Data {
		h.Data[i] = complex(r.NormFloat64(), r.NormFloat64()) * complex(math.Sqrt(0.5), 0)
	}
	return h
}

// htltfSpectra simulates reception of the HT-LTFs through a flat channel H
// plus AWGN: y[rx][n][bin] = Σ_iss H[rx][iss]·P[iss][n]·L_bin + noise.
func htltfSpectra(r *rand.Rand, h *cmatrix.Matrix, nss int, noiseStd float64) [][][]complex128 {
	nltf := preamble.NumHTLTF(nss)
	nrx := h.Rows
	y := make([][][]complex128, nrx)
	for rx := 0; rx < nrx; rx++ {
		y[rx] = make([][]complex128, nltf)
		for n := 0; n < nltf; n++ {
			spec := make([]complex128, ofdm.FFTSize)
			for bin, ref := range preamble.HTLTFFreq {
				if ref == 0 {
					continue
				}
				var acc complex128
				for iss := 0; iss < nss; iss++ {
					acc += h.At(rx, iss) * complex(preamble.PMatrix[iss][n], 0) * ref
				}
				spec[bin] = acc + complex(r.NormFloat64()*noiseStd, r.NormFloat64()*noiseStd)
			}
			y[rx][n] = spec
		}
	}
	return y
}

func TestEstimateHTExactOnCleanChannel(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, cfg := range []struct{ nrx, nss int }{{1, 1}, {2, 2}, {3, 2}, {4, 3}, {4, 4}} {
		h := randH(r, cfg.nrx, cfg.nss)
		y := htltfSpectra(r, h, cfg.nss, 0)
		est, err := EstimateHT(y, cfg.nss)
		if err != nil {
			t.Fatal(err)
		}
		for _, bin := range ofdm.HTToneMap.Data {
			got := est.AtBin(bin)
			if got == nil {
				t.Fatalf("nrx=%d nss=%d: no estimate at bin %d", cfg.nrx, cfg.nss, bin)
			}
			if !cmatrix.ApproxEqual(got, h, 1e-9) {
				t.Fatalf("nrx=%d nss=%d: estimate at bin %d differs from truth", cfg.nrx, cfg.nss, bin)
			}
		}
		for _, bin := range ofdm.HTToneMap.Pilot {
			if est.AtBin(bin) == nil {
				t.Fatalf("no pilot-bin estimate at %d", bin)
			}
		}
	}
}

func TestEstimateHTNoiseAveraging(t *testing.T) {
	// With N_LTF = 4 (nss=3), the LS estimate averages 4 observations, so
	// its error variance must be ~4x below the per-observation noise.
	r := rand.New(rand.NewSource(2))
	h := randH(r, 4, 3)
	const noiseStd = 0.1
	var mse float64
	var count int
	for trial := 0; trial < 20; trial++ {
		y := htltfSpectra(r, h, 3, noiseStd)
		est, err := EstimateHT(y, 3)
		if err != nil {
			t.Fatal(err)
		}
		for _, bin := range ofdm.HTToneMap.Data {
			d := cmatrix.Sub(est.AtBin(bin), h)
			mse += d.FrobeniusNorm() * d.FrobeniusNorm()
			count += d.Rows * d.Cols
		}
	}
	mse /= float64(count)
	perObs := 2 * noiseStd * noiseStd // complex noise variance
	want := perObs / 4
	if mse > want*1.3 || mse < want*0.7 {
		t.Errorf("estimation MSE %g, want ≈ %g (σ²/N_LTF)", mse, want)
	}
}

func TestEstimateHTValidation(t *testing.T) {
	if _, err := EstimateHT(nil, 2); err == nil {
		t.Error("no antennas should fail")
	}
	if _, err := EstimateHT([][][]complex128{{make([]complex128, 64)}}, 5); err == nil {
		t.Error("nss=5 should fail")
	}
	if _, err := EstimateHT([][][]complex128{{make([]complex128, 64)}}, 2); err == nil {
		t.Error("wrong LTF count should fail")
	}
	bad := [][][]complex128{{make([]complex128, 64), make([]complex128, 32)}}
	if _, err := EstimateHT(bad, 2); err == nil {
		t.Error("short spectrum should fail")
	}
}

func TestEstimateLegacy(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	hTrue := complex(0.8, -0.6)
	const noiseStd = 0.05
	mk := func() []complex128 {
		spec := make([]complex128, ofdm.FFTSize)
		for bin, ref := range preamble.LLTFFreq {
			if ref == 0 {
				continue
			}
			spec[bin] = hTrue*ref + complex(r.NormFloat64()*noiseStd, r.NormFloat64()*noiseStd)
		}
		return spec
	}
	est, err := EstimateLegacy([][][]complex128{{mk(), mk()}})
	if err != nil {
		t.Fatal(err)
	}
	// Channel estimate near truth at an occupied bin.
	bin := ofdm.LegacyToneMap.Data[10]
	if cmplx.Abs(est.H[0][bin]-hTrue) > 0.1 {
		t.Errorf("H = %v, want %v", est.H[0][bin], hTrue)
	}
	// Noise variance near 2σ².
	wantNoise := 2 * noiseStd * noiseStd
	if est.NoiseVar < wantNoise*0.6 || est.NoiseVar > wantNoise*1.6 {
		t.Errorf("NoiseVar = %g, want ≈ %g", est.NoiseVar, wantNoise)
	}
	// SNR near |h|²/2σ² = 1/0.005 = 200 (23 dB).
	snr := est.SNR()
	if snr < 100 || snr > 400 {
		t.Errorf("SNR = %g, want ≈ 200", snr)
	}
}

func TestEstimateLegacyValidation(t *testing.T) {
	if _, err := EstimateLegacy(nil); err == nil {
		t.Error("no antennas should fail")
	}
	if _, err := EstimateLegacy([][][]complex128{{make([]complex128, 64)}}); err == nil {
		t.Error("single repetition should fail")
	}
}

func TestSmoothReducesNoiseOnFlatChannel(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	h := randH(r, 2, 2)
	y := htltfSpectra(r, h, 2, 0.2)
	rough, err := EstimateHT(y, 2)
	if err != nil {
		t.Fatal(err)
	}
	smooth, err := EstimateHT(y, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := smooth.Smooth(5); err != nil {
		t.Fatal(err)
	}
	mseOf := func(e *HTEstimate) float64 {
		var acc float64
		n := 0
		for _, bin := range ofdm.HTToneMap.Data {
			d := cmatrix.Sub(e.AtBin(bin), h)
			acc += d.FrobeniusNorm() * d.FrobeniusNorm()
			n++
		}
		return acc / float64(n)
	}
	if mseOf(smooth) >= mseOf(rough) {
		t.Errorf("smoothing made flat-channel MSE worse: %g vs %g", mseOf(smooth), mseOf(rough))
	}
}

func TestSmoothValidation(t *testing.T) {
	est := &HTEstimate{nss: 1, perBin: make([]*cmatrix.Matrix, ofdm.FFTSize)}
	if err := est.Smooth(2); err == nil {
		t.Error("even window should fail")
	}
	if err := est.Smooth(-1); err == nil {
		t.Error("negative window should fail")
	}
	if err := est.Smooth(1); err != nil {
		t.Errorf("window 1 is a no-op, got %v", err)
	}
}

func TestPhaseTrackerRecoversCPE(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	const nss, nrx = 2, 2
	h := randH(r, nrx, nss)
	y := htltfSpectra(r, h, nss, 0)
	estH, err := EstimateHT(y, nss)
	if err != nil {
		t.Fatal(err)
	}
	tracker := NewPhaseTracker(estH)
	for _, cpe := range []float64{-1.0, -0.2, 0, 0.4, 1.3} {
		// Build received pilots for symbol n=0 with the CPE applied.
		tx := make([][]complex128, nss)
		for iss := 0; iss < nss; iss++ {
			p, err := ofdm.HTPilots(nss, iss, 0, 3)
			if err != nil {
				t.Fatal(err)
			}
			tx[iss] = p
		}
		rot := cmplx.Exp(complex(0, cpe))
		rxp := make([][]complex128, nrx)
		for rx := 0; rx < nrx; rx++ {
			rxp[rx] = make([]complex128, ofdm.NumPilots)
			for i := 0; i < ofdm.NumPilots; i++ {
				var acc complex128
				for iss := 0; iss < nss; iss++ {
					acc += h.At(rx, iss) * tx[iss][i]
				}
				rxp[rx][i] = acc * rot
			}
		}
		got, err := tracker.Estimate(rxp, tx)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-cpe) > 1e-9 {
			t.Errorf("cpe=%g: estimated %g", cpe, got)
		}
		// Correct must undo the rotation.
		data := [][]complex128{{1 * rot, 2 * rot}}
		Correct(data, got)
		if cmplx.Abs(data[0][0]-1) > 1e-9 || cmplx.Abs(data[0][1]-2) > 1e-9 {
			t.Error("Correct did not remove the CPE")
		}
	}
}

func TestPhaseTrackerValidation(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	h := randH(r, 2, 2)
	y := htltfSpectra(r, h, 2, 0)
	estH, _ := EstimateHT(y, 2)
	tr := NewPhaseTracker(estH)
	if _, err := tr.Estimate([][]complex128{{1, 2, 3, 4}}, [][]complex128{{1, 1, 1, 1}}); err == nil {
		t.Error("wrong tx stream count should fail")
	}
	if _, err := tr.Estimate([][]complex128{{1, 2}}, [][]complex128{{1, 1, 1, 1}, {1, 1, 1, 1}}); err == nil {
		t.Error("short pilot vector should fail")
	}
}

func TestDataAndPilotMatrixOrder(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	h := randH(r, 2, 2)
	y := htltfSpectra(r, h, 2, 0)
	est, _ := EstimateHT(y, 2)
	dm := est.DataMatrices()
	if len(dm) != len(ofdm.HTToneMap.Data) {
		t.Fatalf("%d data matrices", len(dm))
	}
	for i, bin := range ofdm.HTToneMap.Data {
		if dm[i] != est.AtBin(bin) {
			t.Fatalf("data matrix %d not aligned with tone map", i)
		}
	}
	pm := est.PilotMatrices()
	if len(pm) != ofdm.NumPilots {
		t.Fatalf("%d pilot matrices", len(pm))
	}
}
