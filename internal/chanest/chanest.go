// Package chanest implements the receiver-side channel estimation of the
// paper's transceiver: least-squares estimation of the per-subcarrier MIMO
// channel matrix from the P-matrix-mapped HT-LTF symbols, optional frequency
// smoothing, legacy (L-LTF) single-stream estimation with noise-variance
// extraction, and pilot-driven common-phase-error tracking across the data
// symbols.
package chanest

import (
	"fmt"
	"math/cmplx"

	"repro/internal/cmatrix"
	"repro/internal/ofdm"
	"repro/internal/preamble"
)

// LegacyEstimate is the result of L-LTF processing for one receive antenna
// set: a scalar channel per occupied bin per antenna, plus the noise
// variance measured from the difference of the two identical long symbols.
type LegacyEstimate struct {
	// H[rx][bin] is the complex channel gain at each FFT bin occupied by
	// the L-LTF; unoccupied bins are zero.
	H [][]complex128
	// NoiseVar is the estimated complex noise variance per subcarrier.
	NoiseVar float64
	// SignalPower is the mean received power over occupied bins.
	SignalPower float64
}

// SNR returns the estimated linear signal-to-noise ratio.
func (e *LegacyEstimate) SNR() float64 {
	if e.NoiseVar <= 0 {
		return 0
	}
	return e.SignalPower / e.NoiseVar
}

// EstimateLegacy processes the two demodulated L-LTF symbol spectra of each
// receive antenna. ltf[rx][0] and ltf[rx][1] are 64-bin vectors (from
// ofdm.Demodulator.Bins). The two repetitions allow both an averaged LS
// channel estimate and an unbiased noise-variance estimate — this is the
// paper's "fine grained SNR estimation" anchor.
func EstimateLegacy(ltf [][][]complex128) (*LegacyEstimate, error) {
	if len(ltf) == 0 {
		return nil, fmt.Errorf("chanest: no receive antennas")
	}
	est := &LegacyEstimate{H: make([][]complex128, len(ltf))}
	var noiseAcc, sigAcc float64
	var nBins int
	for rx, pair := range ltf {
		if len(pair) != 2 || len(pair[0]) != ofdm.FFTSize || len(pair[1]) != ofdm.FFTSize {
			return nil, fmt.Errorf("chanest: antenna %d: want two 64-bin L-LTF spectra", rx)
		}
		h := make([]complex128, ofdm.FFTSize)
		for bin, ref := range preamble.LLTFFreq {
			if ref == 0 {
				continue
			}
			avg := (pair[0][bin] + pair[1][bin]) / 2
			diff := pair[0][bin] - pair[1][bin]
			h[bin] = avg / ref
			// Var(diff) = 2σ²; halve to recover σ².
			noiseAcc += (real(diff)*real(diff) + imag(diff)*imag(diff)) / 2
			sigAcc += real(avg)*real(avg) + imag(avg)*imag(avg)
			nBins++
		}
		est.H[rx] = h
	}
	if nBins == 0 {
		return nil, fmt.Errorf("chanest: no occupied bins")
	}
	est.NoiseVar = noiseAcc / float64(nBins)
	est.SignalPower = sigAcc / float64(nBins)
	return est, nil
}

// HTEstimate holds the MIMO channel estimate produced from the HT-LTFs:
// one N_RX × N_SS matrix per occupied FFT bin.
type HTEstimate struct {
	nss int
	// perBin[bin] is nil for unoccupied bins.
	perBin []*cmatrix.Matrix
}

// NSS returns the number of spatial streams the estimate resolves.
func (e *HTEstimate) NSS() int { return e.nss }

// AtBin returns the channel matrix at an FFT bin, or nil if the bin carries
// neither data nor pilots.
func (e *HTEstimate) AtBin(bin int) *cmatrix.Matrix { return e.perBin[bin] }

// DataMatrices returns the channel matrices for the HT data subcarriers in
// tone-map order, ready for mimo.Detector.Prepare.
func (e *HTEstimate) DataMatrices() []*cmatrix.Matrix {
	out := make([]*cmatrix.Matrix, len(ofdm.HTToneMap.Data))
	for i, bin := range ofdm.HTToneMap.Data {
		out[i] = e.perBin[bin]
	}
	return out
}

// PilotMatrices returns the channel matrices at the four pilot bins.
func (e *HTEstimate) PilotMatrices() []*cmatrix.Matrix {
	out := make([]*cmatrix.Matrix, len(ofdm.HTToneMap.Pilot))
	for i, bin := range ofdm.HTToneMap.Pilot {
		out[i] = e.perBin[bin]
	}
	return out
}

// EstimateHT computes the per-subcarrier LS MIMO channel estimate from the
// demodulated HT-LTF spectra. y[rx][n] is the 64-bin spectrum of HT-LTF
// symbol n at antenna rx (n ranges over preamble.NumHTLTF(nss) symbols).
//
// The transmitted HT-LTF of stream iss in symbol n is P[iss][n]·L_k (with
// the per-stream cyclic shift and 1/√N_SS power split folded into the
// effective channel, exactly as they are for the data symbols), so
//
//	Ĥ[rx][iss](k) = (1/N_LTF·L_k) Σ_n y[rx][n](k)·P[iss][n].
func EstimateHT(y [][][]complex128, nss int) (*HTEstimate, error) {
	if nss < 1 || nss > 4 {
		return nil, fmt.Errorf("chanest: N_SS %d out of range [1,4]", nss)
	}
	if len(y) == 0 {
		return nil, fmt.Errorf("chanest: no receive antennas")
	}
	nltf := preamble.NumHTLTF(nss)
	for rx := range y {
		if len(y[rx]) != nltf {
			return nil, fmt.Errorf("chanest: antenna %d has %d HT-LTF spectra, want %d", rx, len(y[rx]), nltf)
		}
		for n := range y[rx] {
			if len(y[rx][n]) != ofdm.FFTSize {
				return nil, fmt.Errorf("chanest: antenna %d LTF %d is not a 64-bin spectrum", rx, n)
			}
		}
	}
	est := &HTEstimate{nss: nss, perBin: make([]*cmatrix.Matrix, ofdm.FFTSize)}
	for bin, ref := range preamble.HTLTFFreq {
		if ref == 0 {
			continue
		}
		h := cmatrix.New(len(y), nss)
		for rx := range y {
			for iss := 0; iss < nss; iss++ {
				var acc complex128
				for n := 0; n < nltf; n++ {
					acc += y[rx][n][bin] * complex(preamble.PMatrix[iss][n], 0)
				}
				h.Set(rx, iss, acc/(complex(float64(nltf), 0)*ref))
			}
		}
		est.perBin[bin] = h
	}
	return est, nil
}

// Smooth applies a moving-average across adjacent occupied bins to every
// entry of the channel estimate, in place. window must be odd. Smoothing
// trades noise reduction against bias on frequency-selective channels —
// the HT-SIG smoothing bit advertises when it is safe.
func (e *HTEstimate) Smooth(window int) error {
	if window < 1 || window%2 == 0 {
		return fmt.Errorf("chanest: smoothing window must be odd and positive, got %d", window)
	}
	if window == 1 {
		return nil
	}
	// Collect occupied bins in spectral order (negative frequencies first).
	var bins []int
	for k := -ofdm.FFTSize / 2; k < ofdm.FFTSize/2; k++ {
		bin := (k + ofdm.FFTSize) % ofdm.FFTSize
		if e.perBin[bin] != nil {
			bins = append(bins, bin)
		}
	}
	if len(bins) == 0 {
		return nil
	}
	rows, cols := e.perBin[bins[0]].Rows, e.perBin[bins[0]].Cols
	half := window / 2
	smoothed := make([]*cmatrix.Matrix, len(bins))
	for i := range bins {
		m := cmatrix.New(rows, cols)
		count := 0
		for j := i - half; j <= i+half; j++ {
			if j < 0 || j >= len(bins) {
				continue
			}
			src := e.perBin[bins[j]]
			for idx := range m.Data {
				m.Data[idx] += src.Data[idx]
			}
			count++
		}
		m.ScaleInPlace(complex(1/float64(count), 0))
		smoothed[i] = m
	}
	for i, bin := range bins {
		e.perBin[bin] = smoothed[i]
	}
	return nil
}

// PhaseTracker estimates and removes the common phase error (CPE) that
// residual CFO and phase noise impose on every subcarrier of a data symbol,
// using the four pilot tones — the paper's second added feature. One
// tracker serves a whole packet; it remembers nothing between symbols
// (CPE is re-estimated per symbol).
type PhaseTracker struct {
	nss     int
	hPilots []*cmatrix.Matrix
}

// NewPhaseTracker builds a tracker from the channel estimate.
func NewPhaseTracker(est *HTEstimate) *PhaseTracker {
	return &PhaseTracker{nss: est.NSS(), hPilots: est.PilotMatrices()}
}

// Estimate computes the common phase error of one data symbol.
// rxPilots[rx][i] is the received value of pilot i at antenna rx;
// txPilots[iss][i] is the known transmitted pilot of stream iss
// (from ofdm.HTPilots). The returned angle is in radians.
func (p *PhaseTracker) Estimate(rxPilots [][]complex128, txPilots [][]complex128) (float64, error) {
	if len(txPilots) != p.nss {
		return 0, fmt.Errorf("chanest: %d pilot streams, want %d", len(txPilots), p.nss)
	}
	var acc complex128
	for rx := range rxPilots {
		if len(rxPilots[rx]) != ofdm.NumPilots {
			return 0, fmt.Errorf("chanest: antenna %d has %d pilots, want %d", rx, len(rxPilots[rx]), ofdm.NumPilots)
		}
		for i := 0; i < ofdm.NumPilots; i++ {
			h := p.hPilots[i]
			if h == nil || h.Rows <= rx {
				return 0, fmt.Errorf("chanest: missing pilot channel estimate")
			}
			var expect complex128
			for iss := 0; iss < p.nss; iss++ {
				expect += h.At(rx, iss) * txPilots[iss][i]
			}
			acc += rxPilots[rx][i] * cmplx.Conj(expect)
		}
	}
	if acc == 0 {
		return 0, fmt.Errorf("chanest: zero pilot correlation")
	}
	return cmplx.Phase(acc), nil
}

// Correct derotates a symbol's subcarrier values by the estimated CPE, in
// place across all antennas.
func Correct(data [][]complex128, cpe float64) {
	rot := cmplx.Exp(complex(0, -cpe))
	for _, d := range data {
		for i := range d {
			d[i] *= rot
		}
	}
}
