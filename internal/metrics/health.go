package metrics

import (
	"fmt"
	"sync/atomic"
)

// Health is the per-block runtime counter set the flowgraph supervisor
// maintains: chunk progress through the block's ports plus the supervision
// events (restarts, recovered panics, stall detections, abandoned
// goroutines). All methods are safe for concurrent use; the supervisor
// writes from scheduler goroutines while monitors read snapshots.
type Health struct {
	chunksIn  atomic.Int64
	chunksOut atomic.Int64
	restarts  atomic.Int64
	panics    atomic.Int64
	stalls    atomic.Int64
	abandoned atomic.Int64
}

// NewHealth returns a zeroed counter set.
func NewHealth() *Health { return &Health{} }

// AddIn records n chunks delivered into the block.
func (h *Health) AddIn(n int64) { h.chunksIn.Add(n) }

// AddOut records n chunks produced by the block.
func (h *Health) AddOut(n int64) { h.chunksOut.Add(n) }

// AddRestart records a supervisor restart of the block.
func (h *Health) AddRestart() { h.restarts.Add(1) }

// AddPanic records a panic recovered from the block's Run.
func (h *Health) AddPanic() { h.panics.Add(1) }

// AddStall records a watchdog stall detection.
func (h *Health) AddStall() { h.stalls.Add(1) }

// AddAbandoned records a block goroutine that did not unwind within the
// supervisor's grace period after cancellation.
func (h *Health) AddAbandoned() { h.abandoned.Add(1) }

// ChunksIn returns the chunks delivered into the block so far.
func (h *Health) ChunksIn() int64 { return h.chunksIn.Load() }

// ChunksOut returns the chunks produced by the block so far.
func (h *Health) ChunksOut() int64 { return h.chunksOut.Load() }

// Snapshot returns a point-in-time copy of the counters.
func (h *Health) Snapshot() HealthSnapshot {
	return HealthSnapshot{
		ChunksIn:  h.chunksIn.Load(),
		ChunksOut: h.chunksOut.Load(),
		Restarts:  h.restarts.Load(),
		Panics:    h.panics.Load(),
		Stalls:    h.stalls.Load(),
		Abandoned: h.abandoned.Load(),
	}
}

// HealthSnapshot is a plain-value copy of a Health counter set.
type HealthSnapshot struct {
	ChunksIn, ChunksOut                 int64
	Restarts, Panics, Stalls, Abandoned int64
}

func (s HealthSnapshot) String() string {
	return fmt.Sprintf("in=%d out=%d restarts=%d panics=%d stalls=%d abandoned=%d",
		s.ChunksIn, s.ChunksOut, s.Restarts, s.Panics, s.Stalls, s.Abandoned)
}
