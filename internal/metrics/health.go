package metrics

import (
	"fmt"

	"repro/internal/obs"
)

// Block health family names in the obs registry. One family per counter,
// labelled by block name, so flowgraph health and the /metrics exposition
// share a single metrics root.
const (
	FamChunksIn  = "mimonet_block_chunks_in_total"
	FamChunksOut = "mimonet_block_chunks_out_total"
	FamRestarts  = "mimonet_block_restarts_total"
	FamPanics    = "mimonet_block_panics_total"
	FamStalls    = "mimonet_block_stalls_total"
	FamAbandoned = "mimonet_block_abandoned_total"
)

// Health is the per-block runtime counter set the flowgraph supervisor
// maintains: chunk progress through the block's ports plus the supervision
// events (restarts, recovered panics, stall detections, abandoned
// goroutines). It is a thin wrapper over obs counters — constructed via
// NewHealthIn the counters live in an exposition registry; via NewHealth
// they are standalone — so there is one metrics root, not two. All methods
// are safe for concurrent use; the supervisor writes from scheduler
// goroutines while monitors read snapshots.
type Health struct {
	chunksIn  *obs.Counter
	chunksOut *obs.Counter
	restarts  *obs.Counter
	panics    *obs.Counter
	stalls    *obs.Counter
	abandoned *obs.Counter
}

// NewHealth returns a zeroed counter set backed by standalone obs counters.
func NewHealth() *Health { return NewHealthIn(nil, "") }

// NewHealthIn returns a counter set whose counters are registered in reg
// under the mimonet_block_* families, labelled block=<block>, so the same
// atomics feed both Graph.Health snapshots and the /metrics exposition. A
// nil registry yields standalone (unexposed but fully functional) counters.
func NewHealthIn(reg *obs.Registry, block string) *Health {
	counter := func(name, help string) *obs.Counter {
		if reg == nil {
			return obs.NewCounter()
		}
		//mimonet:obshygiene-ok name is constant at every call site (Fam* consts below)
		return reg.Counter(name, help, obs.Label{Key: obs.KeyBlock, Value: block})
	}
	return &Health{
		chunksIn:  counter(FamChunksIn, "chunks delivered into the block"),
		chunksOut: counter(FamChunksOut, "chunks produced by the block"),
		restarts:  counter(FamRestarts, "supervisor restarts of the block"),
		panics:    counter(FamPanics, "panics recovered from the block's Run"),
		stalls:    counter(FamStalls, "watchdog stall detections"),
		abandoned: counter(FamAbandoned, "block goroutines abandoned during shutdown"),
	}
}

// AddIn records n chunks delivered into the block.
func (h *Health) AddIn(n int64) { h.chunksIn.Add(n) }

// AddOut records n chunks produced by the block.
func (h *Health) AddOut(n int64) { h.chunksOut.Add(n) }

// AddRestart records a supervisor restart of the block.
func (h *Health) AddRestart() { h.restarts.Inc() }

// AddPanic records a panic recovered from the block's Run.
func (h *Health) AddPanic() { h.panics.Inc() }

// AddStall records a watchdog stall detection.
func (h *Health) AddStall() { h.stalls.Inc() }

// AddAbandoned records a block goroutine that did not unwind within the
// supervisor's grace period after cancellation.
func (h *Health) AddAbandoned() { h.abandoned.Inc() }

// ChunksIn returns the chunks delivered into the block so far.
func (h *Health) ChunksIn() int64 { return h.chunksIn.Value() }

// ChunksOut returns the chunks produced by the block so far.
func (h *Health) ChunksOut() int64 { return h.chunksOut.Value() }

// Snapshot returns a point-in-time copy of the counters.
func (h *Health) Snapshot() HealthSnapshot {
	return HealthSnapshot{
		ChunksIn:  h.chunksIn.Value(),
		ChunksOut: h.chunksOut.Value(),
		Restarts:  h.restarts.Value(),
		Panics:    h.panics.Value(),
		Stalls:    h.stalls.Value(),
		Abandoned: h.abandoned.Value(),
	}
}

// HealthSnapshot is a plain-value copy of a Health counter set.
type HealthSnapshot struct {
	ChunksIn, ChunksOut                 int64
	Restarts, Panics, Stalls, Abandoned int64
}

func (s HealthSnapshot) String() string {
	return fmt.Sprintf("in=%d out=%d restarts=%d panics=%d stalls=%d abandoned=%d",
		s.ChunksIn, s.ChunksOut, s.Restarts, s.Panics, s.Stalls, s.Abandoned)
}
