package metrics

import (
	"math"
	"testing"
)

func TestBERCounting(t *testing.T) {
	var b BER
	if err := b.AddBits([]byte{0, 1, 1, 0}, []byte{1, 1, 0, 0}); err != nil {
		t.Fatal(err)
	}
	if b.Errors != 2 || b.Total != 4 {
		t.Errorf("BER = %d/%d", b.Errors, b.Total)
	}
	if math.Abs(b.Rate()-0.5) > 1e-12 {
		t.Errorf("Rate = %g", b.Rate())
	}
	if err := b.AddBits([]byte{1}, []byte{1, 0}); err == nil {
		t.Error("mismatched length should error")
	}
}

func TestBERAddBytes(t *testing.T) {
	var b BER
	b.AddBytes([]byte{0xFF, 0x00}, []byte{0xFE, 0x00})
	if b.Errors != 1 || b.Total != 16 {
		t.Errorf("AddBytes: %d/%d", b.Errors, b.Total)
	}
	// Truncated RX counts missing bits as errors.
	var b2 BER
	b2.AddBytes([]byte{0xAA, 0xBB}, []byte{0xAA})
	if b2.Errors != 8 || b2.Total != 16 {
		t.Errorf("truncated: %d/%d", b2.Errors, b2.Total)
	}
}

func TestBERZeroRate(t *testing.T) {
	var b BER
	if b.Rate() != 0 {
		t.Error("empty BER should report 0")
	}
	lo, hi := b.Confidence(1.96)
	if lo != 0 || hi != 1 {
		t.Errorf("empty confidence = [%g, %g]", lo, hi)
	}
}

func TestPER(t *testing.T) {
	var p PER
	for i := 0; i < 90; i++ {
		p.Add(true)
	}
	for i := 0; i < 10; i++ {
		p.Add(false)
	}
	if math.Abs(p.Rate()-0.1) > 1e-12 {
		t.Errorf("PER = %g", p.Rate())
	}
	lo, hi := p.Confidence(1.96)
	if lo >= 0.1 || hi <= 0.1 {
		t.Errorf("interval [%g, %g] should straddle 0.1", lo, hi)
	}
	if lo < 0.04 || hi > 0.20 {
		t.Errorf("interval [%g, %g] implausibly wide for n=100", lo, hi)
	}
	if p.String() == "" {
		t.Error("empty String")
	}
}

func TestWilsonShrinksWithN(t *testing.T) {
	var small, large PER
	for i := 0; i < 10; i++ {
		small.Add(i != 0)
	}
	for i := 0; i < 1000; i++ {
		large.Add(i%10 != 0)
	}
	sl, sh := small.Confidence(1.96)
	ll, lh := large.Confidence(1.96)
	if lh-ll >= sh-sl {
		t.Error("interval did not shrink with sample size")
	}
}

func TestEVM(t *testing.T) {
	var e EVM
	e.Add(complex(1.1, 0), complex(1, 0))
	e.Add(complex(0, 1), complex(0, 1))
	want := math.Sqrt(0.01 / 2)
	if math.Abs(e.RMS()-want) > 1e-12 {
		t.Errorf("RMS = %g, want %g", e.RMS(), want)
	}
	if e.Count() != 2 {
		t.Errorf("Count = %d", e.Count())
	}
	snr := e.SNRdB()
	wantSNR := -20 * math.Log10(want)
	if math.Abs(snr-wantSNR) > 1e-9 {
		t.Errorf("SNRdB = %g, want %g", snr, wantSNR)
	}
	var clean EVM
	clean.Add(1, 1)
	if !math.IsInf(clean.SNRdB(), 1) {
		t.Error("zero EVM should give +Inf SNR")
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram(0, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	h.Add(-1)
	h.Add(100)
	if h.Count() != 12 {
		t.Errorf("Count = %d", h.Count())
	}
	u, o := h.OutOfRange()
	if u != 1 || o != 1 {
		t.Errorf("out of range = %d, %d", u, o)
	}
	for i, c := range h.Bins {
		if c != 1 {
			t.Errorf("bin %d = %d", i, c)
		}
	}
	med := h.Quantile(0.5)
	if med < 4 || med > 6.5 {
		t.Errorf("median = %g", med)
	}
	if _, err := NewHistogram(5, 5, 10); err == nil {
		t.Error("empty range should fail")
	}
	if _, err := NewHistogram(0, 1, 0); err == nil {
		t.Error("zero bins should fail")
	}
}

func TestHistogramQuantileEmpty(t *testing.T) {
	h, _ := NewHistogram(0, 1, 4)
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Error("empty histogram quantile should be NaN")
	}
}
