// Package metrics provides the measurement machinery the paper reports
// with: bit error rate and packet error rate counters with Wilson-score
// confidence intervals, error-vector-magnitude accumulation, and small
// histogram utilities for the experiment harness.
package metrics

import (
	"fmt"
	"math"

	"repro/internal/bitutil"
)

// BER counts bit errors.
type BER struct {
	Errors, Total int64
}

// AddBits compares transmitted and received bit slices (one bit per byte).
func (b *BER) AddBits(tx, rx []byte) error {
	n, err := bitutil.CountDiffer(tx, rx)
	if err != nil {
		return err
	}
	b.Errors += int64(n)
	b.Total += int64(len(tx))
	return nil
}

// AddBytes compares transmitted and received byte payloads bit-by-bit.
// Length mismatch counts every bit of the longer slice as errored, the
// pessimistic convention for lost/truncated frames.
func (b *BER) AddBytes(tx, rx []byte) {
	n := len(tx)
	if len(rx) < n {
		n = len(rx)
	}
	for i := 0; i < n; i++ {
		x := tx[i] ^ rx[i]
		for ; x != 0; x &= x - 1 {
			b.Errors++
		}
	}
	longer := len(tx)
	if len(rx) > longer {
		longer = len(rx)
	}
	b.Errors += int64(8 * (longer - n))
	b.Total += int64(8 * longer)
}

// Add counts errors directly.
func (b *BER) Add(errors, total int64) {
	b.Errors += errors
	b.Total += total
}

// Rate returns the measured error rate (0 when nothing was counted).
func (b *BER) Rate() float64 {
	if b.Total == 0 {
		return 0
	}
	return float64(b.Errors) / float64(b.Total)
}

// Confidence returns the Wilson-score interval at the given z (1.96 ≈ 95%).
func (b *BER) Confidence(z float64) (lo, hi float64) {
	return wilson(float64(b.Errors), float64(b.Total), z)
}

func (b *BER) String() string {
	return fmt.Sprintf("BER %.3g (%d/%d)", b.Rate(), b.Errors, b.Total)
}

// PER counts packet errors.
type PER struct {
	Errors, Total int64
}

// Add records one packet outcome.
func (p *PER) Add(ok bool) {
	p.Total++
	if !ok {
		p.Errors++
	}
}

// Rate returns the packet error rate.
func (p *PER) Rate() float64 {
	if p.Total == 0 {
		return 0
	}
	return float64(p.Errors) / float64(p.Total)
}

// Confidence returns the Wilson-score interval at the given z.
func (p *PER) Confidence(z float64) (lo, hi float64) {
	return wilson(float64(p.Errors), float64(p.Total), z)
}

func (p *PER) String() string {
	return fmt.Sprintf("PER %.3g (%d/%d)", p.Rate(), p.Errors, p.Total)
}

// wilson computes the Wilson score interval for k successes in n trials.
func wilson(k, n, z float64) (lo, hi float64) {
	if n == 0 {
		return 0, 1
	}
	p := k / n
	den := 1 + z*z/n
	center := (p + z*z/(2*n)) / den
	half := z / den * math.Sqrt(p*(1-p)/n+z*z/(4*n*n))
	lo, hi = center-half, center+half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// EVM accumulates error vector magnitude across symbols.
type EVM struct {
	errPow, refPow float64
	n              int64
}

// Add records one symbol against its reference.
func (e *EVM) Add(rx, ref complex128) {
	d := rx - ref
	e.errPow += real(d)*real(d) + imag(d)*imag(d)
	e.refPow += real(ref)*real(ref) + imag(ref)*imag(ref)
	e.n++
}

// RMS returns the accumulated RMS EVM (linear; ×100 for percent).
func (e *EVM) RMS() float64 {
	if e.refPow == 0 {
		return 0
	}
	return math.Sqrt(e.errPow / e.refPow)
}

// SNRdB returns the implied SNR in dB.
func (e *EVM) SNRdB() float64 {
	r := e.RMS()
	if r == 0 {
		return math.Inf(1)
	}
	return -20 * math.Log10(r)
}

// Count returns the number of symbols accumulated.
func (e *EVM) Count() int64 { return e.n }

// Histogram is a fixed-bin histogram for estimator-error distributions.
type Histogram struct {
	Min, Max float64
	Bins     []int64
	under    int64
	over     int64
	n        int64
}

// NewHistogram returns a histogram with nbins bins over [min, max).
func NewHistogram(min, max float64, nbins int) (*Histogram, error) {
	if nbins < 1 || max <= min {
		return nil, fmt.Errorf("metrics: invalid histogram [%g, %g) with %d bins", min, max, nbins)
	}
	return &Histogram{Min: min, Max: max, Bins: make([]int64, nbins)}, nil
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	h.n++
	if x < h.Min {
		h.under++
		return
	}
	if x >= h.Max {
		h.over++
		return
	}
	i := int((x - h.Min) / (h.Max - h.Min) * float64(len(h.Bins)))
	if i == len(h.Bins) {
		i--
	}
	h.Bins[i]++
}

// Count returns the total observations including out-of-range.
func (h *Histogram) Count() int64 { return h.n }

// OutOfRange returns the counts below Min and at/above Max.
func (h *Histogram) OutOfRange() (under, over int64) { return h.under, h.over }

// Quantile returns an approximate quantile (q in [0,1]) from the binned
// data, ignoring out-of-range mass.
func (h *Histogram) Quantile(q float64) float64 {
	inRange := h.n - h.under - h.over
	if inRange == 0 {
		return math.NaN()
	}
	target := int64(q * float64(inRange))
	var acc int64
	for i, c := range h.Bins {
		acc += c
		if acc > target {
			w := (h.Max - h.Min) / float64(len(h.Bins))
			return h.Min + (float64(i)+0.5)*w
		}
	}
	return h.Max
}
