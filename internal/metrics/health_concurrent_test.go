package metrics

import (
	"sync"
	"testing"
)

// TestHealthConcurrentCounters hammers every counter from concurrent
// goroutines — the shape of a graph whose blocks restart while pumps count
// chunks and monitors snapshot — and checks nothing is lost. Run under
// -race in CI.
func TestHealthConcurrentCounters(t *testing.T) {
	h := NewHealth()
	const workers = 8
	const perWorker = 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				h.AddIn(1)
				h.AddOut(2)
				h.AddRestart()
				h.AddPanic()
				h.AddStall()
				h.AddAbandoned()
			}
		}()
	}
	// Concurrent readers: snapshots must be internally safe while writers
	// run (values race forward, but must never corrupt).
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := h.Snapshot()
				if s.ChunksOut < 0 || s.ChunksIn < 0 {
					t.Error("negative counter in snapshot")
					return
				}
				_ = h.ChunksIn()
				_ = h.ChunksOut()
				_ = s.String()
			}
		}()
	}
	wg.Wait()
	close(stop)
	readers.Wait()

	s := h.Snapshot()
	total := int64(workers * perWorker)
	if s.ChunksIn != total || s.ChunksOut != 2*total {
		t.Fatalf("chunk counters in=%d out=%d, want %d/%d", s.ChunksIn, s.ChunksOut, total, 2*total)
	}
	for name, got := range map[string]int64{
		"restarts": s.Restarts, "panics": s.Panics,
		"stalls": s.Stalls, "abandoned": s.Abandoned,
	} {
		if got != total {
			t.Fatalf("%s = %d, want %d", name, got, total)
		}
	}
	if h.ChunksIn() != total || h.ChunksOut() != 2*total {
		t.Fatalf("accessor mismatch: in=%d out=%d", h.ChunksIn(), h.ChunksOut())
	}
}
