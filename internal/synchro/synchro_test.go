package synchro

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dsp"
	"repro/internal/preamble"
)

// burst builds [noise | L-STF | L-LTF | noise] per antenna with AWGN at
// snrDB and CFO omega (rad/sample). Returns streams and the STF start index.
func burst(r *rand.Rand, nrx, lead int, omega, snrDB float64) ([][]complex128, int) {
	stf := preamble.LSTF()
	ltf := preamble.LLTF()
	sig := append(append([]complex128{}, stf...), ltf...)
	dsp.Rotate(sig, 0.3, omega)
	total := lead + len(sig) + 200
	sigma := math.Sqrt(math.Pow(10, -snrDB/10) / 2)
	out := make([][]complex128, nrx)
	for a := range out {
		ang := r.Float64() * 2 * math.Pi
		ph := complex(math.Cos(ang), math.Sin(ang))
		s := make([]complex128, total)
		for i := range s {
			s[i] = complex(r.NormFloat64()*sigma, r.NormFloat64()*sigma)
		}
		for i, v := range sig {
			s[lead+i] += v * ph
		}
		out[a] = s
	}
	return out, lead
}

func feed(t *testing.T, d *Detector, rx [][]complex128) *Detection {
	t.Helper()
	samples := make([]complex128, len(rx))
	for i := 0; i < len(rx[0]); i++ {
		for a := range rx {
			samples[a] = rx[a][i]
		}
		det, err := d.Push(samples)
		if err != nil {
			t.Fatal(err)
		}
		if det != nil {
			return det
		}
	}
	return nil
}

func TestDetectorConfigValidation(t *testing.T) {
	if _, err := NewDetector(0, DefaultDetectorConfig()); err == nil {
		t.Error("nrx=0 should fail")
	}
	bad := DefaultDetectorConfig()
	bad.Threshold = 1.5
	if _, err := NewDetector(1, bad); err == nil {
		t.Error("threshold > 1 should fail")
	}
	bad = DefaultDetectorConfig()
	bad.Plateau = 0
	if _, err := NewDetector(1, bad); err == nil {
		t.Error("plateau 0 should fail")
	}
}

func TestDetectsPacketAtModerateSNR(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, nrx := range []int{1, 2} {
		for trial := 0; trial < 10; trial++ {
			d, err := NewDetector(nrx, DefaultDetectorConfig())
			if err != nil {
				t.Fatal(err)
			}
			rx, start := burst(r, nrx, 150+r.Intn(100), 0.01, 10)
			det := feed(t, d, rx)
			if det == nil {
				t.Fatalf("nrx=%d trial %d: no detection", nrx, trial)
			}
			// Detection should land inside the STF (within its 160
			// samples, after the plateau).
			if det.Index < start+24 || det.Index > start+200 {
				t.Errorf("nrx=%d: detection at %d, STF starts at %d", nrx, det.Index, start)
			}
		}
	}
}

func TestNoFalseAlarmOnNoise(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	d, err := NewDetector(2, DefaultDetectorConfig())
	if err != nil {
		t.Fatal(err)
	}
	rx := make([][]complex128, 2)
	for a := range rx {
		s := make([]complex128, 20000)
		for i := range s {
			s[i] = complex(r.NormFloat64(), r.NormFloat64())
		}
		rx[a] = s
	}
	if det := feed(t, d, rx); det != nil {
		t.Errorf("false alarm at %d on pure noise", det.Index)
	}
}

func TestDetectorDisarmsAndResets(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	d, _ := NewDetector(1, DefaultDetectorConfig())
	rx, _ := burst(r, 1, 100, 0, 20)
	if det := feed(t, d, rx); det == nil {
		t.Fatal("no first detection")
	}
	// Without Reset, the rest of the same burst must not re-fire.
	if det := feed(t, d, rx); det != nil {
		t.Error("detector fired while disarmed")
	}
	d.Reset()
	if det := feed(t, d, rx); det == nil {
		t.Error("detector did not fire after Reset")
	}
}

func TestDetectorPushValidation(t *testing.T) {
	d, _ := NewDetector(2, DefaultDetectorConfig())
	if _, err := d.Push(make([]complex128, 1)); err == nil {
		t.Error("wrong sample count should error")
	}
}

func TestCoarseCFOAccuracy(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for _, omega := range []float64{-0.15, -0.02, 0, 0.05, 0.18} {
		rx, start := burst(r, 2, 50, omega, 15)
		stf := [][]complex128{rx[0][start : start+160], rx[1][start : start+160]}
		got, err := CoarseCFO(stf)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-omega) > 0.01 {
			t.Errorf("omega=%g: estimate %g", omega, got)
		}
	}
}

func TestFineCFOMoreAccurateThanCoarse(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	const omega = 0.01
	var coarseErr, fineErr float64
	const trials = 30
	for i := 0; i < trials; i++ {
		rx, start := burst(r, 2, 50, omega, 5)
		stf := [][]complex128{rx[0][start : start+160], rx[1][start : start+160]}
		ltf := [][]complex128{rx[0][start+192 : start+320], rx[1][start+192 : start+320]}
		c, err := CoarseCFO(stf)
		if err != nil {
			t.Fatal(err)
		}
		f, err := FineCFO(ltf)
		if err != nil {
			t.Fatal(err)
		}
		coarseErr += (c - omega) * (c - omega)
		fineErr += (f - omega) * (f - omega)
	}
	if fineErr >= coarseErr {
		t.Errorf("fine CFO MSE %g not better than coarse %g", fineErr/trials, coarseErr/trials)
	}
	t.Logf("CFO MSE: coarse %.3g fine %.3g", coarseErr/trials, fineErr/trials)
}

func TestCFOValidation(t *testing.T) {
	if _, err := CoarseCFO(nil); err == nil {
		t.Error("no streams should fail")
	}
	if _, err := CoarseCFO([][]complex128{make([]complex128, 8)}); err == nil {
		t.Error("short stream should fail")
	}
	if _, err := FineCFO([][]complex128{make([]complex128, 100)}); err == nil {
		t.Error("short LTF should fail")
	}
	if _, err := CoarseCFO([][]complex128{make([]complex128, 64)}); err == nil {
		t.Error("all-zero stream should fail")
	}
}

func TestCorrectCFORemovesRotation(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	const omega = 0.07
	rx, start := burst(r, 1, 30, omega, 40)
	stf := [][]complex128{rx[0][start : start+160]}
	est, err := CoarseCFO(stf)
	if err != nil {
		t.Fatal(err)
	}
	CorrectCFO(rx, est)
	// Residual CFO after correction should be tiny.
	resid, err := CoarseCFO([][]complex128{rx[0][start : start+160]})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(resid) > 1e-3 {
		t.Errorf("residual CFO %g after correction", resid)
	}
}

func TestFineTimingLocatesLTF(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		lead := 100 + r.Intn(80)
		rx, start := burst(r, 2, lead, 0, 15)
		// True first long symbol begins at start+160 (STF) + 32 (guard).
		want := start + 192
		got, err := FineTiming(rx, start+100, start+260)
		if err != nil {
			t.Fatal(err)
		}
		if d := got - want; d < -1 || d > 1 {
			t.Errorf("trial %d: fine timing %d, want %d", trial, got, want)
		}
	}
}

func TestFineTimingValidation(t *testing.T) {
	if _, err := FineTiming(nil, 0, 10); err == nil {
		t.Error("no streams should fail")
	}
	rx := [][]complex128{make([]complex128, 100)}
	if _, err := FineTiming(rx, 0, 100); err == nil {
		t.Error("window beyond stream should fail")
	}
}

func BenchmarkDetectorPush2RX(b *testing.B) {
	d, _ := NewDetector(2, DefaultDetectorConfig())
	s := []complex128{complex(0.5, -0.2), complex(-0.1, 0.7)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := d.Push(s); err != nil {
			b.Fatal(err)
		}
	}
}
