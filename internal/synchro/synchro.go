// Package synchro implements the preamble-driven frame synchronization of
// the MIMONet receiver: Schmidl & Cox style packet detection on the periodic
// L-STF, coarse and fine carrier-frequency-offset estimation from the STF
// and LTF periodicities, and fine timing by cross-correlation against the
// known L-LTF symbol. All estimators accept multiple receive streams and
// combine them, consistent with the paper's MIMO extension of
// synchronization (see package vandebeek for the CP-based variant).
package synchro

import (
	"fmt"
	"math"
	"math/cmplx"

	"repro/internal/dsp"
	"repro/internal/ofdm"
	"repro/internal/preamble"
)

// DetectorConfig tunes the packet detector.
type DetectorConfig struct {
	// Threshold on the normalized metric |γ|/Φ ∈ [0, 1]. Typical 0.6-0.8.
	Threshold float64
	// Plateau is how many consecutive samples must exceed Threshold before
	// a detection fires; guards against impulsive noise. Typical 16-48.
	Plateau int
	// MinPower discards windows whose average sample power is below this,
	// preventing detections on idle-channel noise correlations. 0 disables.
	MinPower float64
}

// DefaultDetectorConfig returns the configuration used throughout the
// benchmarks: threshold 0.7, plateau 24 samples.
func DefaultDetectorConfig() DetectorConfig {
	return DetectorConfig{Threshold: 0.7, Plateau: 24, MinPower: 1e-6}
}

// Detection reports a packet detection.
type Detection struct {
	// Index is the sample index at which the plateau completed. The STF
	// start precedes it by roughly Plateau + window samples; fine timing
	// against the LTF refines this.
	Index int
	// Metric is the normalized autocorrelation at the detection point.
	Metric float64
}

// Detector is a streaming packet detector over one or more receive antennas.
// Feed samples with Push; it reports a Detection when the combined STF
// metric exceeds the threshold for Plateau consecutive samples. Not safe for
// concurrent use.
type Detector struct {
	cfg   DetectorConfig
	acs   []*dsp.AutoCorrelator
	run   int
	count int
	armed bool
}

// NewDetector returns a detector over nrx receive streams.
func NewDetector(nrx int, cfg DetectorConfig) (*Detector, error) {
	if nrx < 1 {
		return nil, fmt.Errorf("synchro: need at least one receive stream")
	}
	if cfg.Threshold <= 0 || cfg.Threshold >= 1 {
		return nil, fmt.Errorf("synchro: threshold %g outside (0, 1)", cfg.Threshold)
	}
	if cfg.Plateau < 1 {
		return nil, fmt.Errorf("synchro: plateau %d < 1", cfg.Plateau)
	}
	d := &Detector{cfg: cfg, armed: true}
	for i := 0; i < nrx; i++ {
		// Lag 16 = STF period; window 32 averages two periods.
		d.acs = append(d.acs, dsp.NewAutoCorrelator(16, 32))
	}
	return d, nil
}

// Reset re-arms the detector and clears all correlator state.
func (d *Detector) Reset() {
	for _, ac := range d.acs {
		ac.Reset()
	}
	d.run, d.count = 0, 0
	d.armed = true
}

// Push feeds one sample per antenna. It returns a non-nil Detection on the
// sample that completes the plateau; the detector then disarms until Reset.
func (d *Detector) Push(samples []complex128) (*Detection, error) {
	if len(samples) != len(d.acs) {
		return nil, fmt.Errorf("synchro: %d samples for %d antennas", len(samples), len(d.acs))
	}
	var corr complex128
	var power float64
	for i, ac := range d.acs {
		c, p := ac.Push(samples[i])
		corr += c
		power += p
	}
	d.count++
	if !d.armed || !d.acs[0].Primed() {
		return nil, nil
	}
	metric := 0.0
	if power > 0 {
		metric = cmplx.Abs(corr) / power
	}
	if metric >= d.cfg.Threshold && power/float64(len(d.acs)*32) >= d.cfg.MinPower {
		d.run++
		if d.run >= d.cfg.Plateau {
			d.armed = false
			return &Detection{Index: d.count - 1, Metric: metric}, nil
		}
	} else {
		d.run = 0
	}
	return nil, nil
}

// CoarseCFO estimates the carrier frequency offset from the 16-sample
// periodicity of the STF, combining all receive streams. rx must contain at
// least 32 STF samples per stream. The result is in radians per sample;
// multiply by SampleRate/2π for Hz. The unambiguous range is ±π/16 rad/sample
// (±625 kHz at 20 MHz).
func CoarseCFO(rx [][]complex128) (float64, error) {
	return lagCFO(rx, 16)
}

// FineCFO estimates the CFO from the 64-sample periodicity of the two L-LTF
// long symbols. rx must contain at least 128 samples per stream, aligned to
// the start of the first long symbol (after the LTF guard). Range
// ±π/64 rad/sample (±156 kHz at 20 MHz).
func FineCFO(rx [][]complex128) (float64, error) {
	return lagCFO(rx, 64)
}

func lagCFO(rx [][]complex128, lag int) (float64, error) {
	if len(rx) == 0 {
		return 0, fmt.Errorf("synchro: no receive streams")
	}
	var acc complex128
	for i, r := range rx {
		if len(r) < 2*lag {
			return 0, fmt.Errorf("synchro: stream %d has %d samples, need %d", i, len(r), 2*lag)
		}
		n := len(r) - lag
		for k := 0; k < n; k++ {
			acc += r[k] * cmplx.Conj(r[k+lag])
		}
	}
	if acc == 0 {
		return 0, fmt.Errorf("synchro: zero correlation, cannot estimate CFO")
	}
	// r[k]·r*[k+lag] carries phase −ω·lag for a rotation of ω rad/sample.
	return -cmplx.Phase(acc) / float64(lag), nil
}

// CorrectCFO derotates every stream in place by the given offset (radians
// per sample), starting from phase 0 at index 0.
func CorrectCFO(rx [][]complex128, omega float64) {
	for _, r := range rx {
		dsp.Rotate(r, 0, -omega)
	}
}

// FineTiming locates the start of the L-LTF by cross-correlating against the
// known 64-sample long-training symbol, combining magnitudes across receive
// streams, and returns the index in rx of the first sample of the first
// long symbol (i.e. LTF guard end). searchFrom/searchTo bound the window.
func FineTiming(rx [][]complex128, searchFrom, searchTo int) (int, error) {
	if len(rx) == 0 {
		return 0, fmt.Errorf("synchro: no receive streams")
	}
	ref := preamble.LLTF()[32:96] // one clean long symbol
	n := len(rx[0])
	if searchFrom < 0 {
		searchFrom = 0
	}
	if searchTo > n-len(ref)-ofdm.FFTSize {
		searchTo = n - len(ref) - ofdm.FFTSize
	}
	if searchTo <= searchFrom {
		return 0, fmt.Errorf("synchro: empty fine-timing window [%d, %d)", searchFrom, searchTo)
	}
	best, bestV := -1, math.Inf(-1)
	for pos := searchFrom; pos < searchTo; pos++ {
		var v float64
		for _, r := range rx {
			// The LTF has two consecutive long symbols: correlate at pos
			// and pos+64 and demand both, which sharpens the peak and
			// rejects single-symbol false alarms.
			c1 := dotConj(r[pos:pos+64], ref)
			c2 := dotConj(r[pos+64:pos+128], ref)
			v += cmplx.Abs(c1) + cmplx.Abs(c2)
		}
		if v > bestV {
			best, bestV = pos, v
		}
	}
	return best, nil
}

func dotConj(a, b []complex128) complex128 {
	var s complex128
	for i := range b {
		s += a[i] * cmplx.Conj(b[i])
	}
	return s
}
