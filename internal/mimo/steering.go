package mimo

import (
	"fmt"

	"repro/internal/cmatrix"
)

// Steering is the transmit spatial mapping between space-time streams and
// transmit chains: per FFT bin, an N_TX×N_SS matrix Q multiplying the
// stream-domain frequency symbols. Direct mapping (the identity embedding)
// is the nil *Steering; a precoding access point builds one from
// mumimo-derived weights so the receiver's HT-LTF estimate becomes the
// effective channel H·Q and detection proceeds unchanged.
type Steering struct {
	ntx, nss int
	q        []*cmatrix.Matrix // per FFT bin; nil bins fall back to direct mapping
}

// NewSteering returns an all-direct steering for ntx chains carrying nss
// streams over nbins FFT bins (nss ≤ ntx ≤ 4).
func NewSteering(ntx, nss, nbins int) (*Steering, error) {
	if nss < 1 || ntx < nss || ntx > 4 {
		return nil, fmt.Errorf("mimo: steering %d chains × %d streams invalid", ntx, nss)
	}
	if nbins < 1 {
		return nil, fmt.Errorf("mimo: steering needs ≥ 1 bin, got %d", nbins)
	}
	return &Steering{ntx: ntx, nss: nss, q: make([]*cmatrix.Matrix, nbins)}, nil
}

// FlatSteering returns a frequency-flat steering applying q (N_TX×N_SS) on
// every one of nbins bins.
func FlatSteering(q *cmatrix.Matrix, nbins int) (*Steering, error) {
	s, err := NewSteering(q.Rows, q.Cols, nbins)
	if err != nil {
		return nil, err
	}
	for b := range s.q {
		s.q[b] = q
	}
	return s, nil
}

// NTX returns the transmit chain count.
func (s *Steering) NTX() int { return s.ntx }

// NSS returns the spatial stream count.
func (s *Steering) NSS() int { return s.nss }

// Bins returns the FFT bin count the steering spans.
func (s *Steering) Bins() int { return len(s.q) }

// SetBin installs q (N_TX×N_SS) on one FFT bin.
func (s *Steering) SetBin(bin int, q *cmatrix.Matrix) error {
	if bin < 0 || bin >= len(s.q) {
		return fmt.Errorf("mimo: steering bin %d outside [0, %d)", bin, len(s.q))
	}
	if q != nil && (q.Rows != s.ntx || q.Cols != s.nss) {
		return fmt.Errorf("mimo: steering bin %d shape %dx%d, want %dx%d", bin, q.Rows, q.Cols, s.ntx, s.nss)
	}
	s.q[bin] = q
	return nil
}

// Mix maps one bin's stream-domain symbols into chain-domain symbols:
// chains[c] = Σ_s Q[c][s]·streams[s]. A bin with no installed matrix maps
// directly (stream s → chain s, upper chains silent).
func (s *Steering) Mix(bin int, streams, chains []complex128) error {
	if len(streams) != s.nss || len(chains) != s.ntx {
		return fmt.Errorf("mimo: mix %d streams into %d chains, steering is %dx%d",
			len(streams), len(chains), s.ntx, s.nss)
	}
	if bin < 0 || bin >= len(s.q) {
		return fmt.Errorf("mimo: steering bin %d outside [0, %d)", bin, len(s.q))
	}
	q := s.q[bin]
	if q == nil {
		for c := range chains {
			if c < len(streams) {
				chains[c] = streams[c]
			} else {
				chains[c] = 0
			}
		}
		return nil
	}
	for c := 0; c < s.ntx; c++ {
		var acc complex128
		for st := 0; st < s.nss; st++ {
			acc += q.At(c, st) * streams[st]
		}
		chains[c] = acc
	}
	return nil
}
