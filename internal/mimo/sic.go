package mimo

import (
	"fmt"
	"math"

	"repro/internal/cmatrix"
	"repro/internal/modem"
)

// sicDetector implements ordered successive interference cancellation
// (V-BLAST style): at each stage the stream with the best post-detection
// SINR under an MMSE front end is detected, sliced to the nearest
// constellation point, its contribution reconstructed and subtracted, and
// the channel column removed. SIC sits between the linear detectors and ML
// in both complexity and performance.
type sicDetector struct {
	nss      int
	mapper   *modem.Mapper
	demapper *modem.Demapper
	points   []complex128
	noiseVar float64
	// Per-subcarrier precomputed stage plans.
	plans []sicPlan
}

// sicPlan holds the detection order and per-stage weight rows for one
// subcarrier.
type sicPlan struct {
	h *cmatrix.Matrix
	// order[stage] is the stream index detected at that stage.
	order []int
	// w[stage] is the MMSE row used at that stage (length N_RX).
	w [][]complex128
	// csi[stage] is the effective CSI weight for the stage's LLRs.
	csi []float64
}

// NewSIC returns an MMSE-ordered successive-interference-cancellation
// detector for nss streams of the given constellation.
func NewSIC(scheme modem.Scheme, nss int) Detector {
	return &sicDetector{
		nss:      nss,
		mapper:   modem.NewMapper(scheme),
		demapper: modem.NewDemapper(scheme),
		points:   modem.NewMapper(scheme).Points(),
	}
}

func (d *sicDetector) Name() string { return "sic" }

func (d *sicDetector) Prepare(h []*cmatrix.Matrix, noiseVar float64) error {
	if noiseVar <= 0 {
		noiseVar = 1e-12
	}
	d.noiseVar = noiseVar
	d.plans = make([]sicPlan, len(h))
	for k, hk := range h {
		if hk.Cols != d.nss {
			return fmt.Errorf("mimo: channel at subcarrier %d has %d columns, want %d", k, hk.Cols, d.nss)
		}
		if hk.Rows < d.nss {
			return fmt.Errorf("mimo: %d receive antennas cannot SIC-separate %d streams", hk.Rows, d.nss)
		}
		plan, err := buildSICPlan(hk, noiseVar)
		if err != nil {
			return fmt.Errorf("mimo: subcarrier %d: %w", k, err)
		}
		d.plans[k] = plan
	}
	return nil
}

// buildSICPlan computes the MMSE detection order and stage weights.
func buildSICPlan(h *cmatrix.Matrix, noiseVar float64) (sicPlan, error) {
	nss := h.Cols
	plan := sicPlan{h: h}
	remaining := make([]int, nss) // remaining[i] = original stream index of column i
	for i := range remaining {
		remaining[i] = i
	}
	cur := h.Clone()
	for stage := 0; stage < nss; stage++ {
		// MMSE weight for the reduced system.
		hh := cur.Hermitian()
		gram := cmatrix.Mul(hh, cur)
		gram.AddScaledIdentity(complex(noiseVar, 0))
		gi, err := gram.Inverse()
		if err != nil {
			return plan, err
		}
		w := cmatrix.Mul(gi, hh)
		b := cmatrix.Mul(w, cur)
		// Pick the column with the smallest post-detection error variance.
		bestCol, bestVar := -1, math.Inf(1)
		vars := make([]float64, cur.Cols)
		for i := 0; i < cur.Cols; i++ {
			bii := b.At(i, i)
			if bii == 0 {
				return plan, fmt.Errorf("zero MMSE bias in SIC ordering")
			}
			var interf float64
			for j := 0; j < cur.Cols; j++ {
				if j == i {
					continue
				}
				r := b.At(i, j) / bii
				interf += real(r)*real(r) + imag(r)*imag(r)
			}
			var nrow float64
			for j := 0; j < cur.Rows; j++ {
				r := w.At(i, j) / bii
				nrow += real(r)*real(r) + imag(r)*imag(r)
			}
			vars[i] = noiseVar*nrow + interf
			if vars[i] < bestVar {
				bestCol, bestVar = i, vars[i]
			}
		}
		// Record the unbiased weight row for the chosen column.
		bii := b.At(bestCol, bestCol)
		row := make([]complex128, cur.Rows)
		for j := 0; j < cur.Rows; j++ {
			row[j] = w.At(bestCol, j) / bii
		}
		if bestVar <= 0 {
			bestVar = 1e-12
		}
		plan.order = append(plan.order, remaining[bestCol])
		plan.w = append(plan.w, row)
		plan.csi = append(plan.csi, noiseVar/bestVar)
		// Remove the detected column.
		remaining = append(remaining[:bestCol], remaining[bestCol+1:]...)
		cur = dropColumn(cur, bestCol)
	}
	return plan, nil
}

func dropColumn(m *cmatrix.Matrix, col int) *cmatrix.Matrix {
	if m.Cols == 1 {
		// Stage bookkeeping never dereferences the empty matrix.
		return cmatrix.New(m.Rows, 1)
	}
	out := cmatrix.New(m.Rows, m.Cols-1)
	for r := 0; r < m.Rows; r++ {
		j := 0
		for c := 0; c < m.Cols; c++ {
			if c == col {
				continue
			}
			out.Set(r, j, m.At(r, c))
			j++
		}
	}
	return out
}

func (d *sicDetector) Detect(llr [][]float64, k int, y []complex128) ([][]float64, error) {
	if d.plans == nil {
		return llr, fmt.Errorf("mimo: sic detector used before Prepare")
	}
	if k < 0 || k >= len(d.plans) {
		return llr, fmt.Errorf("mimo: subcarrier %d out of range", k)
	}
	if len(llr) != d.nss {
		return llr, fmt.Errorf("mimo: %d LLR streams, want %d", len(llr), d.nss)
	}
	plan := &d.plans[k]
	resid := append([]complex128(nil), y...)
	for stage, stream := range plan.order {
		// Linear estimate of this stage's stream from the residual.
		var s complex128
		for j, w := range plan.w[stage] {
			s += w * resid[j]
		}
		llr[stream] = d.demapper.SoftOne(llr[stream], s, d.noiseVar, plan.csi[stage])
		// Hard decision, reconstruct and cancel from the residual.
		hard := d.demapper.HardOne(nil, s)
		point := d.mapper.MapOne(hard)
		for r := 0; r < plan.h.Rows; r++ {
			resid[r] -= plan.h.At(r, stream) * point
		}
	}
	return llr, nil
}

func (d *sicDetector) Equalize(dst []complex128, k int, y []complex128) error {
	if d.plans == nil {
		return fmt.Errorf("mimo: sic detector used before Prepare")
	}
	if len(dst) != d.nss {
		return fmt.Errorf("mimo: Equalize dst length %d, want %d", len(dst), d.nss)
	}
	plan := &d.plans[k]
	resid := append([]complex128(nil), y...)
	for stage, stream := range plan.order {
		var s complex128
		for j, w := range plan.w[stage] {
			s += w * resid[j]
		}
		dst[stream] = s
		hard := d.demapper.HardOne(nil, s)
		point := d.mapper.MapOne(hard)
		for r := 0; r < plan.h.Rows; r++ {
			resid[r] -= plan.h.At(r, stream) * point
		}
	}
	return nil
}
