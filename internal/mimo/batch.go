package mimo

import (
	"fmt"
	"math"
)

// DetectScratch holds the mutable per-call state of a detector so that one
// Prepared detector — whose per-subcarrier weights are read-only after
// Prepare — can serve many goroutines at once. The batched receive path
// creates one scratch per worker; Detect/Equalize keep using the detector's
// own embedded scratch and remain single-goroutine.
type DetectScratch struct {
	s    []complex128 // linear filter output / SIC cancellation residual
	hard []byte       // SIC per-stage hard-decision bits
	best []int        // ML hypothesis decomposition
	y32  []complex64  // narrow kernel: single-precision received vector
}

// BatchDetector is implemented by every detector family. DetectTo is the
// scratch-explicit form of Detect used by the sharded batch pipeline: it
// writes the N_SS·N_BPSCS LLRs of subcarrier k stream-major into
// out[iss·N_BPSCS+b], producing values bit-identical to Detect's appends.
type BatchDetector interface {
	Detector
	// NewScratch returns scratch sized for this detector's configuration.
	NewScratch() *DetectScratch
	// BitsPerStream returns N_BPSCS, the per-stream LLR count of DetectTo.
	BitsPerStream() int
	DetectTo(sc *DetectScratch, out []float64, k int, y []complex128) error
}

func (d *linearDetector) NewScratch() *DetectScratch {
	return &DetectScratch{s: make([]complex128, d.nss), y32: make([]complex64, 8)}
}

func (d *linearDetector) BitsPerStream() int { return d.demapper.BitsPerSymbol() }

//mimonet:hot
func (d *linearDetector) DetectTo(sc *DetectScratch, out []float64, k int, y []complex128) error {
	if err := d.checkPrepared(k); err != nil {
		return err
	}
	nb := d.demapper.BitsPerSymbol()
	if len(out) < d.nss*nb {
		return fmt.Errorf("mimo: DetectTo out length %d, want %d", len(out), d.nss*nb)
	}
	if d.narrow {
		return d.detectToNarrow(sc, out, k, y)
	}
	d.w[k].MulVecInto(sc.s[:d.nss], y)
	for i := 0; i < d.nss; i++ {
		d.demapper.SoftTo(out[i*nb:(i+1)*nb], sc.s[i], d.noiseVar, d.csi[k][i])
	}
	return nil
}

func (d *mlDetector) NewScratch() *DetectScratch {
	return &DetectScratch{best: make([]int, d.nss)}
}

func (d *mlDetector) BitsPerStream() int { return d.nbpsc }

//mimonet:hot
func (d *mlDetector) DetectTo(sc *DetectScratch, out []float64, k int, y []complex128) error {
	if d.h == nil {
		return fmt.Errorf("mimo: ml detector used before Prepare")
	}
	if k < 0 || k >= len(d.h) {
		return fmt.Errorf("mimo: subcarrier %d out of range", k)
	}
	if len(out) < d.nss*d.nbpsc {
		return fmt.Errorf("mimo: DetectTo out length %d, want %d", len(out), d.nss*d.nbpsc)
	}
	h := d.h[k]
	m := len(d.points)
	totalBits := d.nss * d.nbpsc
	best := sc.best[:d.nss]
	var d0, d1 [16]float64
	for b := 0; b < totalBits; b++ {
		d0[b], d1[b] = math.Inf(1), math.Inf(1)
	}
	nHyp := 1
	for i := 0; i < d.nss; i++ {
		nHyp *= m
	}
	for hyp := 0; hyp < nHyp; hyp++ {
		rem := hyp
		for i := 0; i < d.nss; i++ {
			best[i] = rem % m
			rem /= m
		}
		var dist float64
		for r := 0; r < h.Rows; r++ {
			var acc complex128
			for c := 0; c < d.nss; c++ {
				acc += h.At(r, c) * d.points[best[c]]
			}
			diff := y[r] - acc
			dist += real(diff)*real(diff) + imag(diff)*imag(diff)
		}
		for i := 0; i < d.nss; i++ {
			pt := best[i]
			for b := 0; b < d.nbpsc; b++ {
				idx := i*d.nbpsc + b
				if (pt>>uint(b))&1 == 0 {
					if dist < d0[idx] {
						d0[idx] = dist
					}
				} else if dist < d1[idx] {
					d1[idx] = dist
				}
			}
		}
	}
	for idx := 0; idx < totalBits; idx++ {
		out[idx] = (d1[idx] - d0[idx]) / d.noiseVar
	}
	return nil
}

func (d *sicDetector) NewScratch() *DetectScratch {
	return &DetectScratch{
		s:    make([]complex128, 8),
		hard: make([]byte, 0, d.demapper.BitsPerSymbol()),
	}
}

func (d *sicDetector) BitsPerStream() int { return d.demapper.BitsPerSymbol() }

//mimonet:hot
func (d *sicDetector) DetectTo(sc *DetectScratch, out []float64, k int, y []complex128) error {
	if d.plans == nil {
		return fmt.Errorf("mimo: sic detector used before Prepare")
	}
	if k < 0 || k >= len(d.plans) {
		return fmt.Errorf("mimo: subcarrier %d out of range", k)
	}
	nb := d.demapper.BitsPerSymbol()
	if len(out) < d.nss*nb {
		return fmt.Errorf("mimo: DetectTo out length %d, want %d", len(out), d.nss*nb)
	}
	plan := &d.plans[k]
	if cap(sc.s) < len(y) {
		sc.s = make([]complex128, len(y))
	}
	resid := sc.s[:len(y)]
	copy(resid, y)
	for stage, stream := range plan.order {
		var s complex128
		for j, w := range plan.w[stage] {
			s += w * resid[j]
		}
		d.demapper.SoftTo(out[stream*nb:(stream+1)*nb], s, d.noiseVar, plan.csi[stage])
		// Hard decision, reconstruct and cancel from the residual, exactly
		// as in Detect.
		sc.hard = d.demapper.HardOne(sc.hard[:0], s)
		point := d.mapper.MapOne(sc.hard)
		for r := 0; r < plan.h.Rows; r++ {
			resid[r] -= plan.h.At(r, stream) * point
		}
	}
	return nil
}
