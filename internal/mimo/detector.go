package mimo

import (
	"fmt"
	"math"

	"repro/internal/cmatrix"
	"repro/internal/modem"
)

// Detector separates spatially multiplexed streams on one subcarrier.
//
// The lifecycle mirrors a real receiver: Prepare is called once per packet
// with the channel estimate for every data subcarrier (the channel is
// assumed static over a packet, as in the paper's indoor setting), then
// Detect runs per subcarrier per OFDM symbol. Implementations precompute
// per-subcarrier weights in Prepare so Detect stays cheap.
//
// Detect appends N_BPSCS log-likelihood ratios for each spatial stream to
// llr[iss] and returns the extended slices. Equalize writes the per-stream
// symbol estimates for EVM and SNR measurement.
type Detector interface {
	Name() string
	Prepare(h []*cmatrix.Matrix, noiseVar float64) error
	Detect(llr [][]float64, k int, y []complex128) ([][]float64, error)
	Equalize(dst []complex128, k int, y []complex128) error
}

// linearDetector implements ZF and MMSE, which differ only in the weight
// matrix computed during Prepare.
//
// Prepare runs once per packet (and once per symbol under decision-directed
// tracking), so all of its working matrices are held on the detector and
// reused: after the first packet of a steady-state link, Prepare allocates
// nothing.
type linearDetector struct {
	name     string
	mmse     bool
	nss      int
	demapper *modem.Demapper
	noiseVar float64
	// Per-subcarrier state.
	w    []*cmatrix.Matrix // weight matrix
	csi  [][]float64       // per-stream effective CSI weight (1/noise-enhancement)
	sbuf []complex128
	// Prepare scratch, reused across calls.
	hh, gram, gi, work, bias *cmatrix.Matrix
	// Opt-in single-precision DetectTo kernel (see narrow.go). w32 holds the
	// unbiased weights flattened [k][i][j] row-major; csi32 is [k][i].
	narrow     bool
	w32        []complex64
	csi32      []float32
	noiseVar32 float32
	nrx32      int
}

// NewZF returns a zero-forcing detector (W = (HᴴH)⁻¹Hᴴ) for nss streams of
// the given constellation.
func NewZF(scheme modem.Scheme, nss int) Detector {
	return &linearDetector{name: "zf", nss: nss, demapper: modem.NewDemapper(scheme), sbuf: make([]complex128, nss)}
}

// NewMMSE returns an MMSE detector (W = (HᴴH + σ²I)⁻¹Hᴴ with per-stream
// bias removal) for nss streams of the given constellation.
func NewMMSE(scheme modem.Scheme, nss int) Detector {
	return &linearDetector{name: "mmse", mmse: true, nss: nss, demapper: modem.NewDemapper(scheme), sbuf: make([]complex128, nss)}
}

func (d *linearDetector) Name() string { return d.name }

func (d *linearDetector) Prepare(h []*cmatrix.Matrix, noiseVar float64) error {
	if noiseVar <= 0 {
		noiseVar = 1e-12
	}
	d.noiseVar = noiseVar
	if cap(d.w) >= len(h) {
		d.w = d.w[:len(h)]
		d.csi = d.csi[:len(h)]
	} else {
		d.w = make([]*cmatrix.Matrix, len(h))
		d.csi = make([][]float64, len(h))
	}
	for k, hk := range h {
		if hk.Cols != d.nss {
			return fmt.Errorf("mimo: channel at subcarrier %d has %d columns, want %d", k, hk.Cols, d.nss)
		}
		if hk.Rows < d.nss {
			return fmt.Errorf("mimo: %d receive antennas cannot separate %d streams linearly", hk.Rows, d.nss)
		}
		d.hh = hk.HermitianInto(d.hh)
		hh := d.hh
		d.gram = cmatrix.MulInto(d.gram, hh, hk)
		if d.mmse {
			d.gram.AddScaledIdentity(complex(noiseVar, 0))
		}
		gi, work, err := d.gram.InverseInto(d.gi, d.work)
		d.gi, d.work = gi, work
		if err != nil {
			return fmt.Errorf("mimo: subcarrier %d: %w", k, err)
		}
		w := cmatrix.MulInto(d.w[k], gi, hh)
		csi := d.csi[k]
		if cap(csi) >= d.nss {
			csi = csi[:d.nss]
		} else {
			csi = make([]float64, d.nss)
		}
		if d.mmse {
			// Unbias: scale row i by 1/(WH)_{ii}; the post-detection SINR of
			// stream i is 1/(σ²·Gi_{ii}) − 1 · ... derive from the unbiased
			// residual: with B = WH, estimate ŝ_i = B_ii s_i + Σ_{j≠i} B_ij s_j + (Wn)_i.
			d.bias = cmatrix.MulInto(d.bias, w, hk)
			b := d.bias
			for i := 0; i < d.nss; i++ {
				bii := b.At(i, i)
				if bii == 0 {
					return fmt.Errorf("mimo: subcarrier %d stream %d: zero MMSE bias term", k, i)
				}
				// Residual interference power after unbiasing.
				var interf float64
				for j := 0; j < d.nss; j++ {
					if j == i {
						continue
					}
					r := b.At(i, j) / bii
					interf += real(r)*real(r) + imag(r)*imag(r)
				}
				// Noise power: σ²·‖row_i(W)/B_ii‖².
				var nrow float64
				for j := 0; j < hk.Rows; j++ {
					r := w.At(i, j) / bii
					nrow += real(r)*real(r) + imag(r)*imag(r)
				}
				v := noiseVar*nrow + interf
				if v <= 0 {
					v = 1e-12
				}
				csi[i] = noiseVar / v
				// Fold the unbiasing into the weight row.
				for j := 0; j < hk.Rows; j++ {
					w.Set(i, j, w.At(i, j)/bii)
				}
			}
		} else {
			// ZF: noise on stream i is σ²·‖row_i(W)‖² = σ²·[(HᴴH)⁻¹]_{ii}.
			for i := 0; i < d.nss; i++ {
				var nrow float64
				for j := 0; j < hk.Rows; j++ {
					r := w.At(i, j)
					nrow += real(r)*real(r) + imag(r)*imag(r)
				}
				if nrow <= 0 {
					nrow = 1e-12
				}
				csi[i] = 1 / nrow
			}
		}
		d.w[k] = w
		d.csi[k] = csi
	}
	if d.narrow {
		d.buildNarrow()
	}
	return nil
}

func (d *linearDetector) checkPrepared(k int) error {
	if d.w == nil {
		return fmt.Errorf("mimo: %s detector used before Prepare", d.name)
	}
	if k < 0 || k >= len(d.w) {
		return fmt.Errorf("mimo: subcarrier %d out of range [0,%d)", k, len(d.w))
	}
	return nil
}

func (d *linearDetector) Detect(llr [][]float64, k int, y []complex128) ([][]float64, error) {
	if err := d.checkPrepared(k); err != nil {
		return llr, err
	}
	if len(llr) != d.nss {
		return llr, fmt.Errorf("mimo: %d LLR streams, want %d", len(llr), d.nss)
	}
	d.w[k].MulVecInto(d.sbuf, y)
	for i := 0; i < d.nss; i++ {
		llr[i] = d.demapper.SoftOne(llr[i], d.sbuf[i], d.noiseVar, d.csi[k][i])
	}
	return llr, nil
}

func (d *linearDetector) Equalize(dst []complex128, k int, y []complex128) error {
	if err := d.checkPrepared(k); err != nil {
		return err
	}
	if len(dst) != d.nss {
		return fmt.Errorf("mimo: Equalize dst length %d, want %d", len(dst), d.nss)
	}
	d.w[k].MulVecInto(dst, y)
	return nil
}

// mlDetector performs exhaustive joint maximum-likelihood detection with
// per-bit max-log LLRs. Complexity is M^N_SS per subcarrier, so construction
// rejects configurations beyond 2^16 hypotheses.
type mlDetector struct {
	nss      int
	nbpsc    int
	points   []complex128
	h        []*cmatrix.Matrix
	noiseVar float64
	// scratch
	hyp  []complex128
	best []int
}

// NewML returns a maximum-likelihood joint detector, or an error when the
// joint constellation is too large to search.
func NewML(scheme modem.Scheme, nss int) (Detector, error) {
	nbpsc := scheme.BitsPerSymbol()
	total := nss * nbpsc
	if total > 16 {
		return nil, fmt.Errorf("mimo: ML with %d streams of %v needs 2^%d hypotheses; not supported", nss, scheme, total)
	}
	return &mlDetector{
		nss:    nss,
		nbpsc:  nbpsc,
		points: modem.NewMapper(scheme).Points(),
		hyp:    make([]complex128, nss),
		best:   make([]int, nss),
	}, nil
}

func (d *mlDetector) Name() string { return "ml" }

func (d *mlDetector) Prepare(h []*cmatrix.Matrix, noiseVar float64) error {
	for k, hk := range h {
		if hk.Cols != d.nss {
			return fmt.Errorf("mimo: channel at subcarrier %d has %d columns, want %d", k, hk.Cols, d.nss)
		}
	}
	if noiseVar <= 0 {
		noiseVar = 1e-12
	}
	d.h = h
	d.noiseVar = noiseVar
	return nil
}

func (d *mlDetector) Detect(llr [][]float64, k int, y []complex128) ([][]float64, error) {
	if d.h == nil {
		return llr, fmt.Errorf("mimo: ml detector used before Prepare")
	}
	if k < 0 || k >= len(d.h) {
		return llr, fmt.Errorf("mimo: subcarrier %d out of range", k)
	}
	if len(llr) != d.nss {
		return llr, fmt.Errorf("mimo: %d LLR streams, want %d", len(llr), d.nss)
	}
	h := d.h[k]
	m := len(d.points)
	totalBits := d.nss * d.nbpsc
	// d0[b], d1[b]: best squared distance with joint bit b = 0 / 1.
	var d0, d1 [16]float64
	for b := 0; b < totalBits; b++ {
		d0[b], d1[b] = math.Inf(1), math.Inf(1)
	}
	nHyp := 1
	for i := 0; i < d.nss; i++ {
		nHyp *= m
	}
	for hyp := 0; hyp < nHyp; hyp++ {
		// Decompose the hypothesis index into per-stream point indices.
		rem := hyp
		for i := 0; i < d.nss; i++ {
			d.best[i] = rem % m
			rem /= m
		}
		// Distance ‖y − H·s‖².
		var dist float64
		for r := 0; r < h.Rows; r++ {
			var acc complex128
			for c := 0; c < d.nss; c++ {
				acc += h.At(r, c) * d.points[d.best[c]]
			}
			diff := y[r] - acc
			dist += real(diff)*real(diff) + imag(diff)*imag(diff)
		}
		for i := 0; i < d.nss; i++ {
			pt := d.best[i]
			for b := 0; b < d.nbpsc; b++ {
				idx := i*d.nbpsc + b
				if (pt>>uint(b))&1 == 0 {
					if dist < d0[idx] {
						d0[idx] = dist
					}
				} else if dist < d1[idx] {
					d1[idx] = dist
				}
			}
		}
	}
	for i := 0; i < d.nss; i++ {
		for b := 0; b < d.nbpsc; b++ {
			idx := i*d.nbpsc + b
			llr[i] = append(llr[i], (d1[idx]-d0[idx])/d.noiseVar)
		}
	}
	return llr, nil
}

// Equalize returns the hard joint-ML decision points.
func (d *mlDetector) Equalize(dst []complex128, k int, y []complex128) error {
	if d.h == nil {
		return fmt.Errorf("mimo: ml detector used before Prepare")
	}
	if len(dst) != d.nss {
		return fmt.Errorf("mimo: Equalize dst length %d, want %d", len(dst), d.nss)
	}
	h := d.h[k]
	m := len(d.points)
	nHyp := 1
	for i := 0; i < d.nss; i++ {
		nHyp *= m
	}
	bestDist := math.Inf(1)
	bestHyp := 0
	for hyp := 0; hyp < nHyp; hyp++ {
		rem := hyp
		for i := 0; i < d.nss; i++ {
			d.best[i] = rem % m
			rem /= m
		}
		var dist float64
		for r := 0; r < h.Rows; r++ {
			var acc complex128
			for c := 0; c < d.nss; c++ {
				acc += h.At(r, c) * d.points[d.best[c]]
			}
			diff := y[r] - acc
			dist += real(diff)*real(diff) + imag(diff)*imag(diff)
		}
		if dist < bestDist {
			bestDist, bestHyp = dist, hyp
		}
	}
	rem := bestHyp
	for i := 0; i < d.nss; i++ {
		dst[i] = d.points[rem%m]
		rem /= m
	}
	return nil
}

// NewDetector constructs a detector by name: "zf", "mmse", "sic" or "ml".
func NewDetector(name string, scheme modem.Scheme, nss int) (Detector, error) {
	switch name {
	case "zf":
		return NewZF(scheme, nss), nil
	case "mmse":
		return NewMMSE(scheme, nss), nil
	case "sic":
		return NewSIC(scheme, nss), nil
	case "ml":
		return NewML(scheme, nss)
	default:
		return nil, fmt.Errorf("mimo: unknown detector %q (want zf, mmse, sic or ml)", name)
	}
}
