// Package mimo implements the spatial-multiplexing machinery of the paper's
// transceiver: the 802.11n stream parser that splits one coded bit stream
// across spatial streams, and the per-subcarrier MIMO detectors (zero
// forcing, MMSE and maximum likelihood) that separate the streams again at
// the receiver.
package mimo

import "fmt"

// StreamParser distributes coded bits round-robin across N_SS spatial
// streams in blocks of s = max(1, N_BPSCS/2) bits
// (IEEE 802.11-2012 §20.3.11.7), and reassembles them.
type StreamParser struct {
	nss   int
	block int
}

// NewStreamParser returns a parser for nss streams with nbpscs coded bits
// per subcarrier per stream.
func NewStreamParser(nss, nbpscs int) (*StreamParser, error) {
	if nss < 1 || nss > 4 {
		return nil, fmt.Errorf("mimo: N_SS %d out of range [1,4]", nss)
	}
	switch nbpscs {
	case 1, 2, 4, 6:
	default:
		return nil, fmt.Errorf("mimo: N_BPSCS %d not one of 1, 2, 4, 6", nbpscs)
	}
	block := nbpscs / 2
	if block < 1 {
		block = 1
	}
	return &StreamParser{nss: nss, block: block}, nil
}

// BlockBits returns s·N_SS, the number of input bits consumed per round.
func (p *StreamParser) BlockBits() int { return p.block * p.nss }

// Parse splits coded bits into per-stream slices. len(bits) must be a
// multiple of BlockBits so every stream receives the same count (the PHY's
// padding guarantees this).
func (p *StreamParser) Parse(bits []byte) ([][]byte, error) {
	if len(bits)%p.BlockBits() != 0 {
		return nil, fmt.Errorf("mimo: %d bits is not a multiple of %d", len(bits), p.BlockBits())
	}
	per := len(bits) / p.nss
	out := make([][]byte, p.nss)
	for i := range out {
		out[i] = make([]byte, 0, per)
	}
	for off := 0; off < len(bits); off += p.BlockBits() {
		for ss := 0; ss < p.nss; ss++ {
			start := off + ss*p.block
			out[ss] = append(out[ss], bits[start:start+p.block]...)
		}
	}
	return out, nil
}

// Merge reassembles per-stream bit slices into one stream, the inverse of
// Parse. All streams must have equal length, a multiple of the block size.
func (p *StreamParser) Merge(streams [][]byte) ([]byte, error) {
	if len(streams) != p.nss {
		return nil, fmt.Errorf("mimo: %d streams, want %d", len(streams), p.nss)
	}
	per := len(streams[0])
	for i, s := range streams {
		if len(s) != per {
			return nil, fmt.Errorf("mimo: stream %d has %d bits, stream 0 has %d", i, len(s), per)
		}
	}
	if per%p.block != 0 {
		return nil, fmt.Errorf("mimo: stream length %d not a multiple of block %d", per, p.block)
	}
	out := make([]byte, 0, per*p.nss)
	for off := 0; off < per; off += p.block {
		for ss := 0; ss < p.nss; ss++ {
			out = append(out, streams[ss][off:off+p.block]...)
		}
	}
	return out, nil
}

// MergeLLR reassembles per-stream soft values, for the soft-decision
// receive path.
func (p *StreamParser) MergeLLR(streams [][]float64) ([]float64, error) {
	if len(streams) != p.nss {
		return nil, fmt.Errorf("mimo: %d streams, want %d", len(streams), p.nss)
	}
	per := len(streams[0])
	for i, s := range streams {
		if len(s) != per {
			return nil, fmt.Errorf("mimo: stream %d has %d values, stream 0 has %d", i, len(s), per)
		}
	}
	if per%p.block != 0 {
		return nil, fmt.Errorf("mimo: stream length %d not a multiple of block %d", per, p.block)
	}
	out := make([]float64, 0, per*p.nss)
	for off := 0; off < per; off += p.block {
		for ss := 0; ss < p.nss; ss++ {
			out = append(out, streams[ss][off:off+p.block]...)
		}
	}
	return out, nil
}
