package mimo

import "fmt"

// Narrowable is implemented by detector families that offer an opt-in
// single-precision DetectTo kernel. SetNarrow returns an error for
// configurations without a narrow path; detectors default to the full
// double-precision chain.
type Narrowable interface {
	SetNarrow(on bool) error
}

// SetNarrow toggles the linear detector's single-precision DetectTo kernel.
// When enabled, Prepare additionally stores the unbiased weight rows and CSI
// weights as complex64/float32 and DetectTo runs the filter inner product
// and max-log demap in single precision (Detect and Equalize always stay in
// double precision — the narrow kernel exists for the batched data pass,
// where the weight tables' halved footprint and cheaper multiplies pay off).
func (d *linearDetector) SetNarrow(on bool) error {
	d.narrow = on
	if on && d.w != nil {
		d.buildNarrow()
	}
	return nil
}

// buildNarrow converts the Prepared weight tables to single precision. Each
// subcarrier's weight matrix is flattened row-major into one contiguous
// complex64 slab so the per-subcarrier DetectTo load is a single slice
// window.
func (d *linearDetector) buildNarrow() {
	nk := len(d.w)
	if nk == 0 {
		return
	}
	rows, cols := d.nss, d.w[0].Cols // weight matrix is nss×nrx
	if cap(d.w32) < nk*rows*cols {
		d.w32 = make([]complex64, nk*rows*cols)
	}
	d.w32 = d.w32[:nk*rows*cols]
	if cap(d.csi32) < nk*rows {
		d.csi32 = make([]float32, nk*rows)
	}
	d.csi32 = d.csi32[:nk*rows]
	d.nrx32 = cols
	for k := 0; k < nk; k++ {
		w := d.w[k]
		base := k * rows * cols
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				d.w32[base+i*cols+j] = complex64(w.At(i, j)) //mimonet:narrow-ok opt-in float32 detection kernel
			}
			d.csi32[k*rows+i] = float32(d.csi[k][i]) //mimonet:narrow-ok opt-in float32 detection kernel
		}
	}
	d.noiseVar32 = float32(d.noiseVar) //mimonet:narrow-ok opt-in float32 detection kernel
}

// detectToNarrow is the single-precision DetectTo kernel: convert y once,
// run the nss×nrx filter in complex64, demap in float32. LLRs widen to
// float64 only when written to the decoder stream.
//
//mimonet:hot
func (d *linearDetector) detectToNarrow(sc *DetectScratch, out []float64, k int, y []complex128) error {
	if len(d.w32) == 0 {
		return fmt.Errorf("mimo: narrow kernel enabled but not built; call Prepare first")
	}
	nrx := d.nrx32
	if len(y) != nrx {
		return fmt.Errorf("mimo: received vector length %d, want %d", len(y), nrx)
	}
	if cap(sc.y32) < nrx {
		sc.y32 = make([]complex64, nrx)
	}
	y32 := sc.y32[:nrx]
	for j := range y32 {
		y32[j] = complex64(y[j]) //mimonet:narrow-ok opt-in float32 detection kernel
	}
	nb := d.demapper.BitsPerSymbol()
	base := k * d.nss * nrx
	for i := 0; i < d.nss; i++ {
		row := d.w32[base+i*nrx : base+(i+1)*nrx]
		var acc complex64
		for j, v := range y32 {
			acc += row[j] * v
		}
		d.demapper.SoftTo32(out[i*nb:(i+1)*nb], acc, d.noiseVar32, d.csi32[k*d.nss+i])
	}
	return nil
}
