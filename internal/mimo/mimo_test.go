package mimo

import (
	"bytes"
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cmatrix"
	"repro/internal/modem"
)

func randBits(r *rand.Rand, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(r.Intn(2))
	}
	return b
}

func TestStreamParserRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, nbpscs := range []int{1, 2, 4, 6} {
		for nss := 1; nss <= 4; nss++ {
			p, err := NewStreamParser(nss, nbpscs)
			if err != nil {
				t.Fatal(err)
			}
			bits := randBits(r, p.BlockBits()*50)
			streams, err := p.Parse(bits)
			if err != nil {
				t.Fatal(err)
			}
			if len(streams) != nss {
				t.Fatalf("%d streams", len(streams))
			}
			for i := 1; i < nss; i++ {
				if len(streams[i]) != len(streams[0]) {
					t.Fatal("unequal stream lengths")
				}
			}
			merged, err := p.Merge(streams)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(merged, bits) {
				t.Fatalf("nss=%d nbpscs=%d: round trip failed", nss, nbpscs)
			}
		}
	}
}

func TestStreamParserKnownPattern(t *testing.T) {
	// N_SS=2, N_BPSCS=4 → s=2: bits 0,1 to stream 0; 2,3 to stream 1; ...
	p, _ := NewStreamParser(2, 4)
	bits := []byte{0, 1, 2, 3, 4, 5, 6, 7}
	streams, err := p.Parse(bits)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(streams[0], []byte{0, 1, 4, 5}) || !bytes.Equal(streams[1], []byte{2, 3, 6, 7}) {
		t.Errorf("parse = %v", streams)
	}
}

func TestStreamParserValidation(t *testing.T) {
	if _, err := NewStreamParser(0, 2); err == nil {
		t.Error("nss=0 should fail")
	}
	if _, err := NewStreamParser(2, 3); err == nil {
		t.Error("nbpscs=3 should fail")
	}
	p, _ := NewStreamParser(2, 2)
	if _, err := p.Parse(make([]byte, 3)); err == nil {
		t.Error("non-multiple parse should fail")
	}
	if _, err := p.Merge([][]byte{{0}}); err == nil {
		t.Error("wrong stream count should fail")
	}
	if _, err := p.Merge([][]byte{{0, 1}, {0}}); err == nil {
		t.Error("ragged merge should fail")
	}
	if _, err := p.MergeLLR([][]float64{{0, 1}, {0}}); err == nil {
		t.Error("ragged MergeLLR should fail")
	}
}

func TestMergeLLRMatchesMerge(t *testing.T) {
	p, _ := NewStreamParser(3, 6)
	r := rand.New(rand.NewSource(2))
	bits := randBits(r, p.BlockBits()*20)
	streams, _ := p.Parse(bits)
	llrStreams := make([][]float64, len(streams))
	for i, s := range streams {
		llrStreams[i] = make([]float64, len(s))
		for j, b := range s {
			llrStreams[i][j] = float64(b)
		}
	}
	merged, _ := p.Merge(streams)
	mergedLLR, err := p.MergeLLR(llrStreams)
	if err != nil {
		t.Fatal(err)
	}
	for i := range merged {
		if float64(merged[i]) != mergedLLR[i] {
			t.Fatal("MergeLLR ordering differs from Merge")
		}
	}
}

func randChannel(r *rand.Rand, nrx, nss int) *cmatrix.Matrix {
	h := cmatrix.New(nrx, nss)
	for i := range h.Data {
		h.Data[i] = complex(r.NormFloat64(), r.NormFloat64()) * complex(0.7071, 0)
	}
	return h
}

// runDetector pushes nSym random symbols per stream through H plus noise
// and counts LLR sign errors.
func runDetector(t *testing.T, d Detector, scheme modem.Scheme, nrx, nss int, snrDB float64, nSym int, seed int64) (bitErrs, totalBits int) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	mapper := modem.NewMapper(scheme)
	nbpsc := scheme.BitsPerSymbol()
	h := []*cmatrix.Matrix{randChannel(r, nrx, nss)}
	// Signal power per RX antenna ≈ nss (unit power per stream).
	noiseVar := float64(nss) / math.Pow(10, snrDB/10)
	if err := d.Prepare(h, noiseVar); err != nil {
		t.Fatal(err)
	}
	llr := make([][]float64, nss)
	for s := 0; s < nSym; s++ {
		bits := make([][]byte, nss)
		x := make([]complex128, nss)
		for i := 0; i < nss; i++ {
			bits[i] = randBits(r, nbpsc)
			x[i] = mapper.MapOne(bits[i])
		}
		y := h[0].MulVec(x)
		for i := range y {
			y[i] += complex(r.NormFloat64(), r.NormFloat64()) * complex(math.Sqrt(noiseVar/2), 0)
		}
		for i := range llr {
			llr[i] = llr[i][:0]
		}
		var err error
		llr, err = d.Detect(llr, 0, y)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < nss; i++ {
			for b := 0; b < nbpsc; b++ {
				hard := byte(0)
				if llr[i][b] < 0 {
					hard = 1
				}
				if hard != bits[i][b] {
					bitErrs++
				}
				totalBits++
			}
		}
	}
	return bitErrs, totalBits
}

func TestDetectorsNoiselessPerfect(t *testing.T) {
	for _, name := range []string{"zf", "mmse", "sic", "ml"} {
		for _, scheme := range []modem.Scheme{modem.QPSK, modem.QAM16} {
			d, err := NewDetector(name, scheme, 2)
			if err != nil {
				t.Fatal(err)
			}
			errs, total := runDetector(t, d, scheme, 2, 2, 60, 200, 3)
			if errs != 0 {
				t.Errorf("%s/%v: %d/%d errors at 60 dB", name, scheme, errs, total)
			}
		}
	}
}

func TestDetectorOrderingAtModerateSNR(t *testing.T) {
	// At moderate SNR over random channels: ML ≤ MMSE ≤ ZF error counts
	// (allowing small statistical slack).
	results := map[string]int{}
	for _, name := range []string{"zf", "mmse", "sic", "ml"} {
		d, err := NewDetector(name, modem.QPSK, 2)
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		errs := 0
		for trial := 0; trial < 60; trial++ {
			e, n := runDetector(t, d, modem.QPSK, 2, 2, 12, 50, int64(100+trial))
			errs += e
			total += n
		}
		results[name] = errs
		if errs == 0 {
			t.Logf("%s: zero errors (unexpectedly clean)", name)
		}
	}
	if !(results["ml"] <= results["mmse"]+results["mmse"]/5+5) {
		t.Errorf("ML (%d) should not be much worse than MMSE (%d)", results["ml"], results["mmse"])
	}
	if !(results["mmse"] <= results["zf"]+results["zf"]/5+5) {
		t.Errorf("MMSE (%d) should not be much worse than ZF (%d)", results["mmse"], results["zf"])
	}
	t.Logf("errors: zf=%d mmse=%d ml=%d", results["zf"], results["mmse"], results["ml"])
}

func TestMoreRXAntennasHelpZF(t *testing.T) {
	d := NewZF(modem.QPSK, 2)
	e2, n2 := 0, 0
	e4, n4 := 0, 0
	for trial := 0; trial < 40; trial++ {
		e, n := runDetector(t, d, modem.QPSK, 2, 2, 8, 50, int64(200+trial))
		e2 += e
		n2 += n
		e, n = runDetector(t, d, modem.QPSK, 4, 2, 8, 50, int64(200+trial))
		e4 += e
		n4 += n
	}
	if n2 == 0 || n4 == 0 {
		t.Fatal("no bits")
	}
	if float64(e4)/float64(n4) >= float64(e2)/float64(n2) {
		t.Errorf("4 RX (%d/%d) should beat 2 RX (%d/%d)", e4, n4, e2, n2)
	}
}

func TestEqualizeRecoverSymbols(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	mapper := modem.NewMapper(modem.QAM16)
	for _, name := range []string{"zf", "mmse", "sic", "ml"} {
		d, err := NewDetector(name, modem.QAM16, 2)
		if err != nil {
			t.Fatal(err)
		}
		h := []*cmatrix.Matrix{randChannel(r, 2, 2)}
		if err := d.Prepare(h, 1e-9); err != nil {
			t.Fatal(err)
		}
		x := []complex128{mapper.MapOne([]byte{1, 0, 1, 1}), mapper.MapOne([]byte{0, 0, 1, 0})}
		y := h[0].MulVec(x)
		got := make([]complex128, 2)
		if err := d.Equalize(got, 0, y); err != nil {
			t.Fatal(err)
		}
		for i := range x {
			if cmplx.Abs(got[i]-x[i]) > 1e-3 {
				t.Errorf("%s: stream %d: got %v want %v", name, i, got[i], x[i])
			}
		}
	}
}

func TestDetectorErrorsBeforePrepare(t *testing.T) {
	for _, name := range []string{"zf", "mmse", "sic", "ml"} {
		d, err := NewDetector(name, modem.QPSK, 2)
		if err != nil {
			t.Fatal(err)
		}
		llr := make([][]float64, 2)
		if _, err := d.Detect(llr, 0, make([]complex128, 2)); err == nil {
			t.Errorf("%s: Detect before Prepare should error", name)
		}
		if err := d.Equalize(make([]complex128, 2), 0, make([]complex128, 2)); err == nil {
			t.Errorf("%s: Equalize before Prepare should error", name)
		}
	}
}

func TestDetectorValidation(t *testing.T) {
	// Rank-deficient for ZF: more streams than RX antennas.
	d := NewZF(modem.QPSK, 2)
	h := []*cmatrix.Matrix{cmatrix.New(1, 2)}
	if err := d.Prepare(h, 0.1); err == nil {
		t.Error("1 RX / 2 SS should fail linear Prepare")
	}
	// Wrong column count.
	h2 := []*cmatrix.Matrix{cmatrix.New(2, 3)}
	if err := d.Prepare(h2, 0.1); err == nil {
		t.Error("3-column channel for 2 streams should fail")
	}
	// ML refuses giant joint constellations.
	if _, err := NewML(modem.QAM64, 3); err == nil {
		t.Error("ML 3x64QAM should be rejected")
	}
	if _, err := NewDetector("bogus", modem.QPSK, 2); err == nil {
		t.Error("unknown detector name should fail")
	}
}

func TestMLHandlesRankDeficiency(t *testing.T) {
	// ML works even with 1 RX antenna for 2 streams (no matrix inversion).
	d, err := NewML(modem.QPSK, 2)
	if err != nil {
		t.Fatal(err)
	}
	h := []*cmatrix.Matrix{cmatrix.FromRows([][]complex128{{1, 0.3}})}
	if err := d.Prepare(h, 0.01); err != nil {
		t.Fatal(err)
	}
	llr := make([][]float64, 2)
	if _, err := d.Detect(llr, 0, []complex128{0.5}); err != nil {
		t.Fatal(err)
	}
}

func TestParserPropertyMergeInverse(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	prop := func(nssSel, nbpscSel uint8, blocks uint8) bool {
		nss := 1 + int(nssSel)%4
		nbpscs := []int{1, 2, 4, 6}[nbpscSel%4]
		p, err := NewStreamParser(nss, nbpscs)
		if err != nil {
			return false
		}
		n := p.BlockBits() * (1 + int(blocks)%20)
		bits := randBits(r, n)
		streams, err := p.Parse(bits)
		if err != nil {
			return false
		}
		merged, err := p.Merge(streams)
		return err == nil && bytes.Equal(merged, bits)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkZFDetect2x2QAM64(b *testing.B) {
	r := rand.New(rand.NewSource(6))
	d := NewZF(modem.QAM64, 2)
	h := []*cmatrix.Matrix{randChannel(r, 2, 2)}
	if err := d.Prepare(h, 0.01); err != nil {
		b.Fatal(err)
	}
	y := []complex128{complex(r.NormFloat64(), r.NormFloat64()), complex(r.NormFloat64(), r.NormFloat64())}
	llr := make([][]float64, 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		llr[0], llr[1] = llr[0][:0], llr[1][:0]
		if _, err := d.Detect(llr, 0, y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMLDetect2x2QPSK(b *testing.B) {
	r := rand.New(rand.NewSource(7))
	d, err := NewML(modem.QPSK, 2)
	if err != nil {
		b.Fatal(err)
	}
	h := []*cmatrix.Matrix{randChannel(r, 2, 2)}
	if err := d.Prepare(h, 0.01); err != nil {
		b.Fatal(err)
	}
	y := []complex128{complex(r.NormFloat64(), r.NormFloat64()), complex(r.NormFloat64(), r.NormFloat64())}
	llr := make([][]float64, 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		llr[0], llr[1] = llr[0][:0], llr[1][:0]
		if _, err := d.Detect(llr, 0, y); err != nil {
			b.Fatal(err)
		}
	}
}

// randChannels builds nk random nrx×nss channel matrices.
func randChannels(r *rand.Rand, nk, nrx, nss int) []*cmatrix.Matrix {
	h := make([]*cmatrix.Matrix, nk)
	for k := range h {
		h[k] = randChannel(r, nrx, nss)
	}
	return h
}

// TestDetectToMatchesDetect pins the batch-path contract: for every detector
// family, DetectTo with per-worker scratch writes exactly the LLR values
// Detect appends, in stream-major order.
func TestDetectToMatchesDetect(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for _, name := range []string{"zf", "mmse", "sic", "ml"} {
		for _, scheme := range []modem.Scheme{modem.BPSK, modem.QPSK, modem.QAM16} {
			for nss := 1; nss <= 2; nss++ {
				det, err := NewDetector(name, scheme, nss)
				if err != nil {
					t.Fatal(err)
				}
				bd, ok := det.(BatchDetector)
				if !ok {
					t.Fatalf("%s detector does not implement BatchDetector", name)
				}
				nrx := nss + 1
				h := randChannels(r, 8, nrx, nss)
				if err := det.Prepare(h, 0.05); err != nil {
					t.Fatal(err)
				}
				nb := bd.BitsPerStream()
				sc := bd.NewScratch()
				out := make([]float64, nss*nb)
				llr := make([][]float64, nss)
				y := make([]complex128, nrx)
				for k := range h {
					for i := range y {
						y[i] = complex(r.NormFloat64(), r.NormFloat64())
					}
					for i := range llr {
						llr[i] = llr[i][:0]
					}
					if _, err := det.Detect(llr, k, y); err != nil {
						t.Fatal(err)
					}
					if err := bd.DetectTo(sc, out, k, y); err != nil {
						t.Fatal(err)
					}
					for i := 0; i < nss; i++ {
						for b := 0; b < nb; b++ {
							if got, want := out[i*nb+b], llr[i][b]; got != want {
								t.Fatalf("%s/%v nss=%d k=%d stream=%d bit=%d: DetectTo %v != Detect %v",
									name, scheme, nss, k, i, b, got, want)
							}
						}
					}
				}
			}
		}
	}
}

// TestNarrowKernelClose checks the float32 linear kernel stays within
// single-precision rounding of the double-precision LLRs.
func TestNarrowKernelClose(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	for _, name := range []string{"zf", "mmse"} {
		for _, scheme := range []modem.Scheme{modem.BPSK, modem.QAM64} {
			det, err := NewDetector(name, scheme, 2)
			if err != nil {
				t.Fatal(err)
			}
			bd := det.(BatchDetector)
			nw, ok := det.(Narrowable)
			if !ok {
				t.Fatalf("%s detector is not Narrowable", name)
			}
			h := randChannels(r, 8, 3, 2)
			if err := det.Prepare(h, 0.05); err != nil {
				t.Fatal(err)
			}
			nb := bd.BitsPerStream()
			wide := make([]float64, 2*nb)
			narrow := make([]float64, 2*nb)
			sc := bd.NewScratch()
			y := make([]complex128, 3)
			for k := range h {
				for i := range y {
					y[i] = complex(r.NormFloat64(), r.NormFloat64())
				}
				if err := bd.DetectTo(sc, wide, k, y); err != nil {
					t.Fatal(err)
				}
				if err := nw.SetNarrow(true); err != nil {
					t.Fatal(err)
				}
				if err := bd.DetectTo(sc, narrow, k, y); err != nil {
					t.Fatal(err)
				}
				if err := nw.SetNarrow(false); err != nil {
					t.Fatal(err)
				}
				for i := range wide {
					scale := math.Abs(wide[i])
					if scale < 1 {
						scale = 1
					}
					if diff := math.Abs(wide[i] - narrow[i]); diff/scale > 1e-3 {
						t.Fatalf("%s/%v k=%d llr[%d]: narrow %v vs wide %v (rel %v)",
							name, scheme, k, i, narrow[i], wide[i], diff/scale)
					}
				}
			}
		}
	}
}
