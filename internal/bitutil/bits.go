// Package bitutil provides the bit-level plumbing of the 802.11n PHY:
// byte↔bit conversion (LSB-first, as the standard transmits), CRC-32 frame
// check sequences, the CRC-8 used by HT-SIG, and the self-synchronizing
// 127-periodic scrambler.
package bitutil

import "fmt"

// BytesToBits unpacks bytes into bits, LSB first within each byte, per the
// 802.11 convention (clause 18/20 transmit order). Each output element is
// 0 or 1.
func BytesToBits(data []byte) []byte {
	bits := make([]byte, len(data)*8)
	for i, b := range data {
		for j := 0; j < 8; j++ {
			bits[i*8+j] = (b >> uint(j)) & 1
		}
	}
	return bits
}

// BitsToBytes packs bits (LSB first) into bytes. len(bits) must be a
// multiple of 8.
func BitsToBytes(bits []byte) ([]byte, error) {
	if len(bits)%8 != 0 {
		return nil, fmt.Errorf("bitutil: bit count %d not a multiple of 8", len(bits))
	}
	data := make([]byte, len(bits)/8)
	for i := range data {
		var b byte
		for j := 0; j < 8; j++ {
			b |= (bits[i*8+j] & 1) << uint(j)
		}
		data[i] = b
	}
	return data, nil
}

// Uint16ToBits writes the low n bits of v, LSB first, used to serialize SIG
// field subfields.
func Uint16ToBits(v uint16, n int) []byte {
	bits := make([]byte, n)
	for i := 0; i < n; i++ {
		bits[i] = byte((v >> uint(i)) & 1)
	}
	return bits
}

// BitsToUint reads up to 32 bits, LSB first.
func BitsToUint(bits []byte) uint32 {
	if len(bits) > 32 {
		panic("bitutil: BitsToUint supports at most 32 bits")
	}
	var v uint32
	for i, b := range bits {
		v |= uint32(b&1) << uint(i)
	}
	return v
}

// CountDiffer returns the number of positions where a and b differ, i.e. the
// raw bit-error count between two equal-length bit slices.
func CountDiffer(a, b []byte) (int, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("bitutil: CountDiffer length mismatch %d vs %d", len(a), len(b))
	}
	n := 0
	for i := range a {
		if a[i]&1 != b[i]&1 {
			n++
		}
	}
	return n, nil
}

// EvenParity returns 1 if the number of set bits is odd (so that appending
// the returned bit makes total parity even). L-SIG uses even parity.
func EvenParity(bits []byte) byte {
	var p byte
	for _, b := range bits {
		p ^= b & 1
	}
	return p
}
