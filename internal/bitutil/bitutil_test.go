package bitutil

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBytesToBitsLSBFirst(t *testing.T) {
	bits := BytesToBits([]byte{0x01, 0x80})
	want := []byte{1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1}
	if !bytes.Equal(bits, want) {
		t.Errorf("BytesToBits = %v, want %v", bits, want)
	}
}

func TestBitsBytesRoundTrip(t *testing.T) {
	prop := func(data []byte) bool {
		got, err := BitsToBytes(BytesToBits(data))
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestBitsToBytesRejectsPartial(t *testing.T) {
	if _, err := BitsToBytes(make([]byte, 7)); err == nil {
		t.Error("want error for non-multiple-of-8")
	}
}

func TestUintBitConversions(t *testing.T) {
	bits := Uint16ToBits(0xB5, 8) // 10110101
	want := []byte{1, 0, 1, 0, 1, 1, 0, 1}
	if !bytes.Equal(bits, want) {
		t.Errorf("Uint16ToBits = %v, want %v", bits, want)
	}
	if got := BitsToUint(bits); got != 0xB5 {
		t.Errorf("BitsToUint = %#x, want 0xB5", got)
	}
}

func TestCountDiffer(t *testing.T) {
	n, err := CountDiffer([]byte{0, 1, 1, 0}, []byte{1, 1, 0, 0})
	if err != nil || n != 2 {
		t.Errorf("CountDiffer = %d, %v; want 2, nil", n, err)
	}
	if _, err := CountDiffer([]byte{0}, []byte{0, 1}); err == nil {
		t.Error("length mismatch should error")
	}
}

func TestEvenParity(t *testing.T) {
	if got := EvenParity([]byte{1, 0, 1, 1}); got != 1 {
		t.Errorf("parity of 3 ones = %d, want 1", got)
	}
	if got := EvenParity([]byte{1, 1}); got != 0 {
		t.Errorf("parity of 2 ones = %d, want 0", got)
	}
}

func TestFCSRoundTrip(t *testing.T) {
	prop := func(data []byte) bool {
		framed := AppendFCS(data)
		body, ok := CheckFCS(framed)
		return ok && bytes.Equal(body, data)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestFCSDetectsCorruption(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	data := make([]byte, 100)
	r.Read(data)
	framed := AppendFCS(data)
	for trial := 0; trial < 50; trial++ {
		corrupted := append([]byte(nil), framed...)
		pos := r.Intn(len(corrupted))
		corrupted[pos] ^= 1 << uint(r.Intn(8))
		if _, ok := CheckFCS(corrupted); ok {
			t.Fatalf("single-bit corruption at byte %d not detected", pos)
		}
	}
	if _, ok := CheckFCS([]byte{1, 2, 3}); ok {
		t.Error("short frame should fail FCS")
	}
}

func TestCRC8KnownVector(t *testing.T) {
	// All-zero input: state stays 0xFF through... verify self-consistency
	// and the standard's linearity property instead of a table: the CRC of
	// a message with its (complemented) CRC appended, recomputed with the
	// complement undone, must be zero-residue. Simpler robust checks:
	// determinism and sensitivity.
	m1 := []byte{1, 0, 1, 1, 0, 0, 1, 0, 1, 0, 1, 1, 0, 0, 1, 0, 1, 0, 1, 1, 0, 0, 1, 0}
	c1 := CRC8(m1)
	if c1 != CRC8(m1) {
		t.Error("CRC8 not deterministic")
	}
	m2 := append([]byte(nil), m1...)
	m2[5] ^= 1
	if CRC8(m2) == c1 {
		t.Error("CRC8 insensitive to single-bit flip")
	}
}

func TestCRC8BitsOrdering(t *testing.T) {
	m := []byte{1, 1, 0, 1}
	c := CRC8(m)
	bits := CRC8Bits(m)
	if len(bits) != 8 {
		t.Fatalf("len = %d", len(bits))
	}
	var rebuilt byte
	for i, b := range bits {
		rebuilt |= (b & 1) << uint(7-i)
	}
	if rebuilt != c {
		t.Errorf("CRC8Bits reassembles to %#x, want %#x", rebuilt, c)
	}
}

func TestScramblerPeriod127(t *testing.T) {
	s := NewScrambler(0x7F)
	seq := s.Sequence(254)
	for i := 0; i < 127; i++ {
		if seq[i] != seq[i+127] {
			t.Fatalf("sequence not 127-periodic at %d", i)
		}
	}
	// The 127-bit sequence must be balanced: 64 ones, 63 zeros (maximal
	// length LFSR property).
	ones := 0
	for _, b := range seq[:127] {
		ones += int(b)
	}
	if ones != 64 {
		t.Errorf("ones in one period = %d, want 64", ones)
	}
}

func TestScramblerKnownPrefix(t *testing.T) {
	// IEEE 802.11-2012 §18.3.5.5: with all-ones seed the first bits of the
	// scrambling sequence are 0000 1110 1111 0010 ...
	s := NewScrambler(0x7F)
	got := s.Sequence(16)
	want := []byte{0, 0, 0, 0, 1, 1, 1, 0, 1, 1, 1, 1, 0, 0, 1, 0}
	if !bytes.Equal(got, want) {
		t.Errorf("scrambler prefix = %v, want %v", got, want)
	}
}

func TestScrambleDescrambleInvolution(t *testing.T) {
	prop := func(data []byte, seed byte) bool {
		bits := BytesToBits(data)
		orig := append([]byte(nil), bits...)
		NewScrambler(seed).Scramble(bits)
		NewScrambler(seed).Scramble(bits)
		return bytes.Equal(bits, orig)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestScramblerZeroSeedCoerced(t *testing.T) {
	s := NewScrambler(0)
	if s.State() == 0 {
		t.Error("zero seed must be coerced to nonzero")
	}
	seq := s.Sequence(127)
	allZero := true
	for _, b := range seq {
		if b != 0 {
			allZero = false
		}
	}
	if allZero {
		t.Error("scrambler output stuck at zero")
	}
}

func TestSequencePreservesState(t *testing.T) {
	s := NewScrambler(0x5A)
	before := s.State()
	s.Sequence(100)
	if s.State() != before {
		t.Error("Sequence must not consume state")
	}
}
