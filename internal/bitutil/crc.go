package bitutil

import "hash/crc32"

// FCS computes the 32-bit frame check sequence appended to every MPDU
// (IEEE 802.11-2012 §8.2.4.8): CRC-32/IEEE over the frame body, transmitted
// complement-first. hash/crc32's IEEE table implements exactly the required
// polynomial and reflection; the standard's complement and bit ordering are
// already folded into that definition.
func FCS(data []byte) uint32 {
	return crc32.ChecksumIEEE(data)
}

// AppendFCS returns data with its 4-byte FCS appended, little-endian, the
// order the PHY serializes it.
func AppendFCS(data []byte) []byte {
	f := FCS(data)
	out := make([]byte, len(data)+4)
	copy(out, data)
	out[len(data)] = byte(f)
	out[len(data)+1] = byte(f >> 8)
	out[len(data)+2] = byte(f >> 16)
	out[len(data)+3] = byte(f >> 24)
	return out
}

// CheckFCS verifies and strips a trailing FCS. It returns the payload and
// true when the checksum matches.
func CheckFCS(frame []byte) ([]byte, bool) {
	if len(frame) < 4 {
		return nil, false
	}
	body := frame[:len(frame)-4]
	tail := frame[len(frame)-4:]
	want := FCS(body)
	got := uint32(tail[0]) | uint32(tail[1])<<8 | uint32(tail[2])<<16 | uint32(tail[3])<<24
	if want != got {
		return nil, false
	}
	return body, true
}

// CRC8 computes the 8-bit CRC protecting the HT-SIG field
// (IEEE 802.11-2012 §20.3.9.4.4): generator x⁸+x²+x+1, initial state all
// ones, output complemented, computed over a bit sequence (b0 first).
func CRC8(bits []byte) byte {
	var state byte = 0xFF
	for _, b := range bits {
		// MSB of the shift register XOR input bit feeds back through the
		// generator taps.
		fb := ((state >> 7) & 1) ^ (b & 1)
		state <<= 1
		if fb == 1 {
			state ^= 0x07 // x²+x+1 taps (x⁸ is the implicit feedback)
		}
	}
	return ^state
}

// CRC8Bits returns the CRC8 of bits as 8 bits, MSB (c7) first, the order
// HT-SIG transmits the CRC subfield.
func CRC8Bits(bits []byte) []byte {
	c := CRC8(bits)
	out := make([]byte, 8)
	for i := 0; i < 8; i++ {
		out[i] = (c >> uint(7-i)) & 1
	}
	return out
}
