package bitutil

// Scrambler implements the 802.11 frame-synchronous data scrambler
// (IEEE 802.11-2012 §18.3.5.5): a 7-bit LFSR with generator x⁷+x⁴+1
// producing a length-127 sequence XORed onto the data bits. Descrambling is
// the identical operation, so the same type serves both directions.
//
// The paper's packet construction scrambles the PSDU before FEC encoding,
// exactly as the standard prescribes.
type Scrambler struct {
	state byte // 7 bits, nonzero
}

// NewScrambler returns a scrambler initialized to the given 7-bit seed.
// A zero seed would lock the LFSR, so it is replaced by the all-ones state
// the standard recommends for testing.
func NewScrambler(seed byte) *Scrambler {
	seed &= 0x7F
	if seed == 0 {
		seed = 0x7F
	}
	return &Scrambler{state: seed}
}

// NextBit advances the LFSR one step and returns the scrambling bit.
func (s *Scrambler) NextBit() byte {
	// Feedback = x7 xor x4 (bits 6 and 3 of the state register).
	fb := ((s.state >> 6) ^ (s.state >> 3)) & 1
	s.state = ((s.state << 1) | fb) & 0x7F
	return fb
}

// Scramble XORs the scrambling sequence onto bits in place and returns bits
// for convenience. Each element is treated as a single bit (only bit 0 is
// used).
func (s *Scrambler) Scramble(bits []byte) []byte {
	for i := range bits {
		bits[i] = (bits[i] & 1) ^ s.NextBit()
	}
	return bits
}

// Sequence returns the first n bits of the scrambling sequence without
// consuming scrambler state, for tests and for pilot-polarity generation
// (the pilot polarity PN in 802.11 is the same length-127 sequence seeded
// with all ones).
func (s *Scrambler) Sequence(n int) []byte {
	saved := s.state
	out := make([]byte, n)
	for i := range out {
		out[i] = s.NextBit()
	}
	s.state = saved
	return out
}

// State returns the current 7-bit LFSR state.
func (s *Scrambler) State() byte { return s.state }
