package vandebeek

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dsp"
	"repro/internal/ofdm"
)

// makeOFDMStream builds a stream of random OFDM symbols (64-FFT, 16-CP)
// with the symbol boundary at sample `offset`, applies CFO (in subcarrier
// spacings) and AWGN at the given SNR, over nrx antennas with independent
// flat channels and noise.
func makeOFDMStream(r *rand.Rand, nrx, numSymbols, offset int, cfo, snrDB float64) [][]complex128 {
	mod := ofdm.NewModulator(ofdm.HTToneMap)
	total := offset + numSymbols*ofdm.SymbolLen + 32
	clean := make([]complex128, total)
	// Leading random noise-level filler before the first symbol would make
	// the boundary ill-defined; instead precede with other OFDM symbols'
	// tails: fill everything with symbols, aligned so a boundary lands at
	// `offset`.
	sym := make([]complex128, ofdm.SymbolLen)
	pos := offset % ofdm.SymbolLen
	if pos > 0 {
		pos -= ofdm.SymbolLen // start mid-symbol before 0
	}
	for ; pos < total; pos += ofdm.SymbolLen {
		data := make([]complex128, 52)
		for i := range data {
			data[i] = complex(math.Sqrt2/2*float64(1-2*r.Intn(2)), math.Sqrt2/2*float64(1-2*r.Intn(2)))
		}
		if err := mod.Symbol(sym, data, []complex128{1, 1, 1, -1}); err != nil {
			panic(err)
		}
		for i, v := range sym {
			if pos+i >= 0 && pos+i < total {
				clean[pos+i] = v
			}
		}
	}
	// Apply CFO: phase step 2π·cfo/N per sample.
	dsp.Rotate(clean, 0, 2*math.Pi*cfo/float64(ofdm.FFTSize))
	snr := math.Pow(10, snrDB/10)
	out := make([][]complex128, nrx)
	for a := range out {
		// Independent flat unit-magnitude channel phase per antenna.
		ang := r.Float64() * 2 * math.Pi
		ph := complex(math.Cos(ang), math.Sin(ang))
		s := make([]complex128, total)
		sigma := math.Sqrt(1 / snr / 2)
		for i, v := range clean {
			s[i] = v*ph + complex(r.NormFloat64()*sigma, r.NormFloat64()*sigma)
		}
		out[a] = s
	}
	return out
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 16, 10); err == nil {
		t.Error("zero fft size should fail")
	}
	if _, err := New(64, 0, 10); err == nil {
		t.Error("zero CP should fail")
	}
	if _, err := New(64, 16, -1); err == nil {
		t.Error("negative SNR should fail")
	}
	e, err := New(64, 16, 10)
	if err != nil || e.SymbolSpan() != 80 {
		t.Errorf("SymbolSpan = %d, err %v", e.SymbolSpan(), err)
	}
}

func TestMetricValidation(t *testing.T) {
	e, _ := New(64, 16, 10)
	if _, _, err := e.Metric(nil); err == nil {
		t.Error("no streams should fail")
	}
	if _, _, err := e.Metric([][]complex128{make([]complex128, 10)}); err == nil {
		t.Error("short stream should fail")
	}
	if _, _, err := e.Metric([][]complex128{make([]complex128, 200), make([]complex128, 100)}); err == nil {
		t.Error("mismatched streams should fail")
	}
}

func TestTimingHighSNRSISO(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	e, _ := New(64, 16, 1000)
	for trial := 0; trial < 10; trial++ {
		offset := 10 + r.Intn(60)
		rx := makeOFDMStream(r, 1, 3, offset, 0, 30)
		// Search only a window that contains exactly one true boundary
		// at `offset` (candidates 0..79 modulo symbol length are
		// ambiguous across symbols; restrict to one period around it).
		est, err := e.Estimate([][]complex128{rx[0][:offset+ofdm.SymbolLen+e.SymbolSpan()-1]})
		if err != nil {
			t.Fatal(err)
		}
		got := est.Offset % ofdm.SymbolLen
		want := offset % ofdm.SymbolLen
		if d := symDist(got, want); d > 2 {
			t.Errorf("trial %d: offset %d (mod %d), want %d", trial, got, ofdm.SymbolLen, want)
		}
	}
}

func symDist(a, b int) int {
	d := a - b
	if d < 0 {
		d = -d
	}
	if alt := ofdm.SymbolLen - d; alt < d {
		d = alt
	}
	return d
}

func TestCFOEstimateUnbiased(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	e, _ := New(64, 16, 100)
	for _, cfo := range []float64{-0.3, -0.05, 0, 0.1, 0.45} {
		var sum float64
		const trials = 20
		for i := 0; i < trials; i++ {
			rx := makeOFDMStream(r, 1, 4, 40, cfo, 25)
			est, err := e.EstimateAveraged(rx, 3)
			if err != nil {
				t.Fatal(err)
			}
			sum += est.CFO
		}
		mean := sum / trials
		if math.Abs(mean-cfo) > 0.02 {
			t.Errorf("cfo=%g: mean estimate %g", cfo, mean)
		}
	}
}

func TestMIMOBeatsSISOAtLowSNR(t *testing.T) {
	// The paper's claim: summing the per-antenna log-likelihoods lowers the
	// timing error variance. Compare 1-RX vs 2-RX at low SNR.
	r := rand.New(rand.NewSource(3))
	e, _ := New(64, 16, math.Pow(10, 0.2))
	const trials = 150
	offset := 30
	errSISO, errMIMO := 0.0, 0.0
	for i := 0; i < trials; i++ {
		rx := makeOFDMStream(r, 2, 4, offset, 0.1, 2)
		limit := offset + ofdm.SymbolLen + e.SymbolSpan() - 1
		est1, err := e.Estimate([][]complex128{rx[0][:limit]})
		if err != nil {
			t.Fatal(err)
		}
		est2, err := e.Estimate([][]complex128{rx[0][:limit], rx[1][:limit]})
		if err != nil {
			t.Fatal(err)
		}
		d1 := symDist(est1.Offset%ofdm.SymbolLen, offset%ofdm.SymbolLen)
		d2 := symDist(est2.Offset%ofdm.SymbolLen, offset%ofdm.SymbolLen)
		errSISO += float64(d1 * d1)
		errMIMO += float64(d2 * d2)
	}
	if errMIMO >= errSISO {
		t.Errorf("MIMO timing MSE %g not better than SISO %g", errMIMO/trials, errSISO/trials)
	}
	t.Logf("timing MSE: SISO %.2f, MIMO %.2f", errSISO/trials, errMIMO/trials)
}

func TestEstimateAveragedReducesVariance(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	e, _ := New(64, 16, math.Pow(10, 0.3))
	const trials = 100
	offset := 25
	plain, avg := 0.0, 0.0
	for i := 0; i < trials; i++ {
		rx := makeOFDMStream(r, 1, 6, offset, 0, 3)
		limit := offset + ofdm.SymbolLen + e.SymbolSpan() - 1
		e1, err := e.Estimate([][]complex128{rx[0][:limit]})
		if err != nil {
			t.Fatal(err)
		}
		e2, err := e.EstimateAveraged(rx, 5)
		if err != nil {
			t.Fatal(err)
		}
		d1 := symDist(e1.Offset%ofdm.SymbolLen, offset%ofdm.SymbolLen)
		d2 := symDist(e2.Offset%ofdm.SymbolLen, offset%ofdm.SymbolLen)
		plain += float64(d1 * d1)
		avg += float64(d2 * d2)
	}
	if avg >= plain {
		t.Errorf("averaged MSE %g not better than single-shot %g", avg/trials, plain/trials)
	}
	t.Logf("timing MSE: single %.2f, averaged %.2f", plain/trials, avg/trials)
}

func TestMetricPeaksAtCPWindows(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	e, _ := New(64, 16, 1000)
	rx := makeOFDMStream(r, 1, 4, 0, 0, 40)
	lambda, _, err := e.Metric(rx)
	if err != nil {
		t.Fatal(err)
	}
	// λ must peak at multiples of the symbol length (boundary at 0).
	peak := dsp.MaxFloatIndex(lambda)
	if peak%ofdm.SymbolLen > 2 && ofdm.SymbolLen-peak%ofdm.SymbolLen > 2 {
		t.Errorf("metric peak at %d, not near a symbol boundary", peak)
	}
}

func TestEstimateAveragedValidation(t *testing.T) {
	e, _ := New(64, 16, 10)
	rx := [][]complex128{make([]complex128, 200)}
	if _, err := e.EstimateAveraged(rx, 0); err == nil {
		t.Error("numSymbols=0 should fail")
	}
}

func BenchmarkEstimate2RX(b *testing.B) {
	r := rand.New(rand.NewSource(6))
	e, _ := New(64, 16, 100)
	rx := makeOFDMStream(r, 2, 6, 40, 0.1, 10)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := e.Estimate(rx); err != nil {
			b.Fatal(err)
		}
	}
}
