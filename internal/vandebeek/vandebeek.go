// Package vandebeek implements the Van de Beek maximum-likelihood
// joint timing and carrier-frequency-offset estimator that exploits the
// cyclic prefix of OFDM symbols (J.-J. van de Beek, M. Sandell,
// P. O. Börjesson, "ML Estimation of Time and Frequency Offset in OFDM
// Systems", IEEE Trans. Signal Processing, 1997), and the paper's extension
// of the algorithm to the MIMO setting.
//
// For a single receive antenna the log-likelihood of a symbol start θ is
//
//	Λ(θ) = |γ(θ)| − ρ·Φ(θ)
//	γ(θ) = Σ_{k=θ}^{θ+L−1} r[k]·r*[k+N]
//	Φ(θ) = ½ Σ_{k=θ}^{θ+L−1} (|r[k]|² + |r[k+N]|²)
//	ρ    = SNR / (SNR + 1)
//
// with N the FFT size and L the cyclic-prefix length. The timing estimate
// is θ̂ = argmax Λ(θ) and the fractional CFO estimate is
// ε̂ = −∠γ(θ̂)/2π subcarrier spacings.
//
// MIMO extension (the paper's new synchronization algorithm): all transmit
// chains share one local oscillator and one symbol clock, so the timing and
// CFO are common across receive antennas while the noise is independent.
// The per-antenna log-likelihoods therefore add:
//
//	Λ_MIMO(θ) = Σ_rx Λ_rx(θ),  ε̂ = −∠(Σ_rx γ_rx(θ̂))/2π
//
// which is what Estimator computes when given multiple receive streams.
package vandebeek

import (
	"fmt"
	"math"
	"math/cmplx"
)

// Estimate is the result of a joint timing/CFO search.
type Estimate struct {
	// Offset is the estimated index of the first cyclic-prefix sample of
	// the located OFDM symbol within the searched window.
	Offset int
	// CFO is the fractional carrier frequency offset in subcarrier
	// spacings, in (−0.5, 0.5].
	CFO float64
	// Metric is the peak log-likelihood value (arbitrary units), usable as
	// a detection confidence.
	Metric float64
}

// Estimator performs the CP-ML search. It is stateless apart from its
// configuration and safe for concurrent use.
type Estimator struct {
	n   int // FFT size
	l   int // CP length
	rho float64
}

// New returns an estimator for symbols of fftSize samples with a cpLen
// cyclic prefix, tuned for the given linear SNR (ρ = SNR/(SNR+1); the
// estimator degrades gracefully if the true SNR differs).
func New(fftSize, cpLen int, snrLinear float64) (*Estimator, error) {
	if fftSize <= 0 || cpLen <= 0 {
		return nil, fmt.Errorf("vandebeek: fftSize and cpLen must be positive")
	}
	if snrLinear < 0 {
		return nil, fmt.Errorf("vandebeek: negative SNR %g", snrLinear)
	}
	return &Estimator{n: fftSize, l: cpLen, rho: snrLinear / (snrLinear + 1)}, nil
}

// SymbolSpan returns the number of samples one candidate position needs,
// N + L.
func (e *Estimator) SymbolSpan() int { return e.n + e.l }

// Metric computes the per-offset log-likelihood trace Λ(θ) and correlation
// γ(θ) for every candidate θ in [0, len(rx[0])−(N+L)]. All receive streams
// must have equal length. The returned slices have one entry per candidate.
func (e *Estimator) Metric(rx [][]complex128) (lambda []float64, gamma []complex128, err error) {
	if len(rx) == 0 {
		return nil, nil, fmt.Errorf("vandebeek: no receive streams")
	}
	length := len(rx[0])
	for i, r := range rx {
		if len(r) != length {
			return nil, nil, fmt.Errorf("vandebeek: stream %d has %d samples, stream 0 has %d", i, len(r), length)
		}
	}
	span := e.SymbolSpan()
	cand := length - span + 1
	if cand <= 0 {
		return nil, nil, fmt.Errorf("vandebeek: need at least %d samples, got %d", span, length)
	}
	lambda = make([]float64, cand)
	gamma = make([]complex128, cand)
	for _, r := range rx {
		// Sliding sums with O(1) updates per offset.
		var g complex128
		var phi float64
		for k := 0; k < e.l; k++ {
			g += r[k] * cmplx.Conj(r[k+e.n])
			phi += 0.5 * (sq(r[k]) + sq(r[k+e.n]))
		}
		for th := 0; ; th++ {
			gamma[th] += g
			lambda[th] += cmplx.Abs(g) - e.rho*phi
			if th+1 >= cand {
				break
			}
			// Advance the window: drop sample pair at th, add at th+L.
			g -= r[th] * cmplx.Conj(r[th+e.n])
			g += r[th+e.l] * cmplx.Conj(r[th+e.l+e.n])
			phi -= 0.5 * (sq(r[th]) + sq(r[th+e.n]))
			phi += 0.5 * (sq(r[th+e.l]) + sq(r[th+e.l+e.n]))
		}
	}
	return lambda, gamma, nil
}

// Estimate runs the full joint search over the provided receive streams
// (one per antenna; a single-element slice gives the classic SISO
// estimator).
func (e *Estimator) Estimate(rx [][]complex128) (Estimate, error) {
	lambda, gamma, err := e.Metric(rx)
	if err != nil {
		return Estimate{}, err
	}
	best := 0
	for i, v := range lambda {
		if v > lambda[best] {
			best = i
		}
	}
	return Estimate{
		Offset: best,
		CFO:    -cmplx.Phase(gamma[best]) / (2 * math.Pi),
		Metric: lambda[best],
	}, nil
}

// EstimateAveraged runs the search with the metric additionally averaged
// over consecutive symbol periods: the trace is folded modulo N+L so that
// energy from several OFDM symbols reinforces one timing hypothesis. This
// matches how a continuously running receiver uses the estimator and
// reduces variance at low SNR. numSymbols ≥ 1 periods must fit in rx.
func (e *Estimator) EstimateAveraged(rx [][]complex128, numSymbols int) (Estimate, error) {
	if numSymbols < 1 {
		return Estimate{}, fmt.Errorf("vandebeek: numSymbols %d < 1", numSymbols)
	}
	lambda, gamma, err := e.Metric(rx)
	if err != nil {
		return Estimate{}, err
	}
	span := e.SymbolSpan()
	if len(lambda) < span {
		// Not enough candidates to fold; fall back to the plain estimate.
		numSymbols = 1
	}
	folded := make([]float64, span)
	fgamma := make([]complex128, span)
	counts := make([]int, span)
	for i := range lambda {
		if i/span >= numSymbols {
			break
		}
		folded[i%span] += lambda[i]
		fgamma[i%span] += gamma[i]
		counts[i%span]++
	}
	best := 0
	for i := range folded {
		if counts[i] == 0 {
			continue
		}
		if folded[i]/float64(counts[i]) > folded[best]/float64(max(counts[best], 1)) {
			best = i
		}
	}
	return Estimate{
		Offset: best,
		CFO:    -cmplx.Phase(fgamma[best]) / (2 * math.Pi),
		Metric: folded[best] / float64(max(counts[best], 1)),
	}, nil
}

func sq(v complex128) float64 { return real(v)*real(v) + imag(v)*imag(v) }

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
