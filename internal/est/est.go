// Package est implements the fine-grained SNR estimation the paper adds to
// its transceiver: a data-aided estimator anchored on the repeated long
// training symbols, an EVM-based estimator over equalized data symbols, and
// a blind second/fourth-moment (M2M4) estimator that needs no reference.
package est

import (
	"fmt"
	"math"
)

// DataAided estimates the linear SNR from two received repetitions of the
// same reference block (e.g. the two L-LTF long symbols, in time or
// frequency domain). The half-sum estimates signal plus half the noise, the
// half-difference is pure noise — the classic split that makes the estimate
// unbiased at any modulation.
func DataAided(rep1, rep2 []complex128) (float64, error) {
	if len(rep1) != len(rep2) || len(rep1) == 0 {
		return 0, fmt.Errorf("est: repetitions must be equal nonzero length")
	}
	var sum, diff float64
	for i := range rep1 {
		s := (rep1[i] + rep2[i]) / 2
		d := (rep1[i] - rep2[i]) / 2
		sum += real(s)*real(s) + imag(s)*imag(s)
		diff += real(d)*real(d) + imag(d)*imag(d)
	}
	n := float64(len(rep1))
	noise := diff / n // E|d|² = σ²/2 per rep-average... see below
	// s = x + (n1+n2)/2 → E|s|² = P + σ²/2; d = (n1−n2)/2 → E|d|² = σ²/2.
	sig := sum/n - noise
	if noise <= 0 {
		return math.Inf(1), nil
	}
	if sig < 0 {
		sig = 0
	}
	// SNR = P / σ² with σ² = 2·E|d|².
	return sig / (2 * noise), nil
}

// EVM computes the error vector magnitude of equalized symbols against
// their decided (or known) reference points, returning the RMS EVM as a
// linear ratio (multiply by 100 for percent) and the implied SNR estimate
// 1/EVM².
func EVM(rx, ref []complex128) (evm, snr float64, err error) {
	if len(rx) != len(ref) || len(rx) == 0 {
		return 0, 0, fmt.Errorf("est: rx and ref must be equal nonzero length")
	}
	var errPow, refPow float64
	for i := range rx {
		d := rx[i] - ref[i]
		errPow += real(d)*real(d) + imag(d)*imag(d)
		refPow += real(ref[i])*real(ref[i]) + imag(ref[i])*imag(ref[i])
	}
	if refPow == 0 {
		return 0, 0, fmt.Errorf("est: zero reference power")
	}
	evm = math.Sqrt(errPow / refPow)
	if evm == 0 {
		return 0, math.Inf(1), nil
	}
	return evm, 1 / (evm * evm), nil
}

// M2M4 is the blind second/fourth-moment SNR estimator
// (Pauluzzi & Beaulieu, 1995) for constant-modulus constellations
// (BPSK/QPSK, kurtosis ka = 1) in complex Gaussian noise (kw = 2):
//
//	P̂_s = √(2·M2² − M4),  P̂_n = M2 − P̂_s,  SNR = P̂_s/P̂_n.
//
// For higher-order QAM the signal kurtosis deviates from 1 and the
// estimator becomes biased — the expected shape in experiment E9.
func M2M4(rx []complex128) (float64, error) {
	if len(rx) < 8 {
		return 0, fmt.Errorf("est: need at least 8 samples, got %d", len(rx))
	}
	var m2, m4 float64
	for _, v := range rx {
		p := real(v)*real(v) + imag(v)*imag(v)
		m2 += p
		m4 += p * p
	}
	n := float64(len(rx))
	m2 /= n
	m4 /= n
	disc := 2*m2*m2 - m4
	if disc <= 0 {
		return 0, nil // all noise, SNR ≈ 0
	}
	ps := math.Sqrt(disc)
	pn := m2 - ps
	if pn <= 0 {
		return math.Inf(1), nil
	}
	return ps / pn, nil
}

// PilotSNR estimates the SNR from received pilots and their expected values
// (channel-weighted), accumulating over symbols: signal power from the
// expectation, noise from the residual. Call Add per pilot observation and
// SNR when done.
type PilotSNR struct {
	sig, noise float64
	n          int
}

// Add accumulates one pilot observation against its expected value.
func (p *PilotSNR) Add(rx, expected complex128) {
	d := rx - expected
	p.sig += real(expected)*real(expected) + imag(expected)*imag(expected)
	p.noise += real(d)*real(d) + imag(d)*imag(d)
	p.n++
}

// Count returns the number of accumulated observations.
func (p *PilotSNR) Count() int { return p.n }

// SNR returns the accumulated linear SNR estimate.
func (p *PilotSNR) SNR() (float64, error) {
	if p.n == 0 {
		return 0, fmt.Errorf("est: no pilot observations")
	}
	if p.noise == 0 {
		return math.Inf(1), nil
	}
	return p.sig / p.noise, nil
}

// Reset clears the accumulator.
func (p *PilotSNR) Reset() { p.sig, p.noise, p.n = 0, 0, 0 }

// DB converts a linear SNR to decibels (−Inf for nonpositive input).
func DB(snr float64) float64 {
	if snr <= 0 {
		return math.Inf(-1)
	}
	return 10 * math.Log10(snr)
}

// NoiseVarFromSymbols measures the complex noise variance of equalized
// symbols against reference decisions, for feeding soft demappers.
func NoiseVarFromSymbols(rx, ref []complex128) (float64, error) {
	if len(rx) != len(ref) || len(rx) == 0 {
		return 0, fmt.Errorf("est: rx and ref must be equal nonzero length")
	}
	var acc float64
	for i := range rx {
		acc += sqAbs(rx[i] - ref[i])
	}
	return acc / float64(len(rx)), nil
}

func sqAbs(v complex128) float64 { return real(v)*real(v) + imag(v)*imag(v) }
