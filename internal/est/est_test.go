package est

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/modem"
)

func awgn(r *rand.Rand, x []complex128, snrDB float64) []complex128 {
	sigma := math.Sqrt(math.Pow(10, -snrDB/10) / 2)
	out := make([]complex128, len(x))
	for i, v := range x {
		out[i] = v + complex(r.NormFloat64()*sigma, r.NormFloat64()*sigma)
	}
	return out
}

func qpskBlock(r *rand.Rand, n int) []complex128 {
	m := modem.NewMapper(modem.QPSK)
	out := make([]complex128, n)
	for i := range out {
		out[i] = m.MapOne([]byte{byte(r.Intn(2)), byte(r.Intn(2))})
	}
	return out
}

func TestDataAidedUnbiasedAcrossSNR(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, snrDB := range []float64{0, 5, 10, 15, 20, 25, 30} {
		var acc float64
		const trials = 40
		for i := 0; i < trials; i++ {
			x := qpskBlock(r, 52)
			r1 := awgn(r, x, snrDB)
			r2 := awgn(r, x, snrDB)
			snr, err := DataAided(r1, r2)
			if err != nil {
				t.Fatal(err)
			}
			acc += snr
		}
		gotDB := DB(acc / trials)
		if math.Abs(gotDB-snrDB) > 1.0 {
			t.Errorf("true %g dB: estimated %g dB", snrDB, gotDB)
		}
	}
}

func TestDataAidedValidation(t *testing.T) {
	if _, err := DataAided(nil, nil); err == nil {
		t.Error("empty input should fail")
	}
	if _, err := DataAided(make([]complex128, 3), make([]complex128, 4)); err == nil {
		t.Error("mismatched lengths should fail")
	}
	// Identical repetitions → infinite SNR.
	x := []complex128{1, 2, 3}
	snr, err := DataAided(x, x)
	if err != nil || !math.IsInf(snr, 1) {
		t.Errorf("identical reps: snr=%g err=%v", snr, err)
	}
}

func TestEVM(t *testing.T) {
	ref := []complex128{1, 1i, -1, -1i}
	rx := []complex128{1.1, 1i, -1, -1i}
	evm, snr, err := EVM(rx, ref)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Sqrt(0.01 / 4)
	if math.Abs(evm-want) > 1e-12 {
		t.Errorf("EVM = %g, want %g", evm, want)
	}
	if math.Abs(snr-1/(want*want)) > 1e-6 {
		t.Errorf("SNR = %g", snr)
	}
	if _, _, err := EVM(nil, nil); err == nil {
		t.Error("empty should fail")
	}
	if _, _, err := EVM([]complex128{1}, []complex128{0}); err == nil {
		t.Error("zero reference power should fail")
	}
	_, snr, err = EVM(ref, ref)
	if err != nil || !math.IsInf(snr, 1) {
		t.Error("perfect EVM should give infinite SNR")
	}
}

func TestM2M4TracksQPSK(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for _, snrDB := range []float64{5, 10, 15, 20} {
		var acc float64
		const trials = 30
		for i := 0; i < trials; i++ {
			x := qpskBlock(r, 2000)
			rx := awgn(r, x, snrDB)
			snr, err := M2M4(rx)
			if err != nil {
				t.Fatal(err)
			}
			acc += snr
		}
		gotDB := DB(acc / trials)
		if math.Abs(gotDB-snrDB) > 1.5 {
			t.Errorf("QPSK true %g dB: M2M4 %g dB", snrDB, gotDB)
		}
	}
}

func TestM2M4BiasedFor64QAM(t *testing.T) {
	// The known limitation: non-constant-modulus constellations violate the
	// ka=1 assumption, so the estimate departs from truth at high SNR.
	r := rand.New(rand.NewSource(3))
	m := modem.NewMapper(modem.QAM64)
	x := make([]complex128, 20000)
	for i := range x {
		bits := make([]byte, 6)
		for j := range bits {
			bits[j] = byte(r.Intn(2))
		}
		x[i] = m.MapOne(bits)
	}
	rx := awgn(r, x, 30)
	snr, err := M2M4(rx)
	if err != nil {
		t.Fatal(err)
	}
	gotDB := DB(snr)
	if math.Abs(gotDB-30) < 2 {
		t.Errorf("M2M4 on 64-QAM at 30 dB returned %g dB; expected visible bias", gotDB)
	}
}

func TestM2M4Degenerate(t *testing.T) {
	if _, err := M2M4(make([]complex128, 4)); err == nil {
		t.Error("too few samples should fail")
	}
	r := rand.New(rand.NewSource(4))
	noise := make([]complex128, 1000)
	for i := range noise {
		noise[i] = complex(r.NormFloat64(), r.NormFloat64())
	}
	snr, err := M2M4(noise)
	if err != nil {
		t.Fatal(err)
	}
	if snr > 0.5 {
		t.Errorf("pure noise: M2M4 = %g, want ≈ 0", snr)
	}
}

func TestPilotSNR(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	var p PilotSNR
	if _, err := p.SNR(); err == nil {
		t.Error("empty accumulator should fail")
	}
	const snrDB = 12.0
	sigma := math.Sqrt(math.Pow(10, -snrDB/10) / 2)
	for i := 0; i < 5000; i++ {
		exp := complex(1, 0)
		rx := exp + complex(r.NormFloat64()*sigma, r.NormFloat64()*sigma)
		p.Add(rx, exp)
	}
	if p.Count() != 5000 {
		t.Errorf("Count = %d", p.Count())
	}
	snr, err := p.SNR()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(DB(snr)-snrDB) > 0.5 {
		t.Errorf("PilotSNR = %g dB, want %g", DB(snr), snrDB)
	}
	p.Reset()
	if p.Count() != 0 {
		t.Error("Reset did not clear")
	}
}

func TestNoiseVarFromSymbols(t *testing.T) {
	rx := []complex128{1.1, 2}
	ref := []complex128{1, 2}
	v, err := NoiseVarFromSymbols(rx, ref)
	if err != nil || math.Abs(v-0.005) > 1e-12 {
		t.Errorf("NoiseVar = %g, err %v", v, err)
	}
	if _, err := NoiseVarFromSymbols(nil, nil); err == nil {
		t.Error("empty should fail")
	}
}

func TestDB(t *testing.T) {
	if got := DB(100); math.Abs(got-20) > 1e-12 {
		t.Errorf("DB(100) = %g", got)
	}
	if !math.IsInf(DB(0), -1) {
		t.Error("DB(0) should be -Inf")
	}
}
