package blocks

import (
	"bytes"
	"context"
	"io"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/channel"
	"repro/internal/flowgraph"
	"repro/internal/phy"
)

func TestFlowgraphLinkEndToEnd(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	const numPackets = 5
	payloads := make([][]byte, numPackets)
	for i := range payloads {
		payloads[i] = make([]byte, 300)
		r.Read(payloads[i])
	}

	tx, err := phy.NewTransmitter(phy.TxConfig{MCS: 9})
	if err != nil {
		t.Fatal(err)
	}
	ch, err := channel.New(channel.Config{NumTX: 2, NumRX: 2, Model: channel.FlatRayleigh,
		SNRdB: 35, Seed: 2, TimingOffset: 250, TrailingSilence: 100})
	if err != nil {
		t.Fatal(err)
	}
	rx, err := phy.NewReceiver(phy.RxConfig{NumAntennas: 2, Detector: "mmse"})
	if err != nil {
		t.Fatal(err)
	}

	next := 0
	txBlock := &TXBlock{TX: tx, NextPayload: func() ([]byte, error) {
		if next >= numPackets {
			return nil, io.EOF
		}
		p := payloads[next]
		next++
		return p, nil
	}}
	chBlock := &ChannelBlock{Ch: ch}
	var mu sync.Mutex
	var reports []RXReport
	rxBlock := &RXBlock{RX: rx, Antennas: 2, OnReport: func(rep RXReport) {
		mu.Lock()
		reports = append(reports, rep)
		mu.Unlock()
	}}

	g := flowgraph.New()
	for _, b := range []flowgraph.Block{txBlock, chBlock, rxBlock} {
		if err := g.Add(b); err != nil {
			t.Fatal(err)
		}
	}
	for c := 0; c < 2; c++ {
		if err := g.Connect(txBlock, c, chBlock, c); err != nil {
			t.Fatal(err)
		}
		if err := g.Connect(chBlock, c, rxBlock, c); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.Run(context.Background()); err != nil {
		t.Fatal(err)
	}

	if len(reports) != numPackets {
		t.Fatalf("%d reports, want %d", len(reports), numPackets)
	}
	for i, rep := range reports {
		if rep.Err != nil {
			t.Errorf("packet %d: %v", i, rep.Err)
			continue
		}
		if !bytes.Equal(rep.Frame.Payload, payloads[i]) {
			t.Errorf("packet %d: payload mismatch", i)
		}
		if rep.Frame.Seq != uint16(i) {
			t.Errorf("packet %d: seq %d", i, rep.Frame.Seq)
		}
	}
}

func TestBlockValidation(t *testing.T) {
	tx, _ := phy.NewTransmitter(phy.TxConfig{MCS: 0})
	b := &TXBlock{TX: tx}
	if err := b.Run(context.Background(), nil, make([]chan<- flowgraph.Chunk, 1)); err == nil {
		t.Error("nil NextPayload should fail")
	}
	rx, _ := phy.NewReceiver(phy.RxConfig{NumAntennas: 1})
	rb := &RXBlock{RX: rx, Antennas: 1}
	if err := rb.Run(context.Background(), make([]<-chan flowgraph.Chunk, 1), nil); err == nil {
		t.Error("nil OnReport should fail")
	}
}
