// Package blocks adapts the MIMONet transceiver pieces into flowgraph
// blocks, mirroring how the paper packages its work as GNU Radio blocks:
// a packet source feeding the PHY transmitter, a MIMO channel block, and a
// receiver sink that emits decode reports. Multi-antenna signals travel as
// one port per antenna.
package blocks

import (
	"context"
	"errors"
	"fmt"
	"io"

	"repro/internal/channel"
	"repro/internal/flowgraph"
	"repro/internal/mac"
	"repro/internal/obs"
	"repro/internal/phy"
)

// TXBlock turns payloads into PPDU bursts: a 0-in, N_SS-out block. Payloads
// are pulled from NextPayload until it returns io.EOF.
type TXBlock struct {
	TX *phy.Transmitter
	// NextPayload supplies the next MAC payload; io.EOF ends the stream.
	NextPayload func() ([]byte, error)
	// OnBurst, when set, observes each burst's TX-assigned packet ID (a
	// 1-based monotone counter) and MAC sequence just before transmission —
	// the hook that lets a driver thread the correlation key to the receive
	// side and into its own flight record.
	OnBurst  func(packetID uint64, seq uint16)
	seq      uint16
	packetID uint64
}

// Name implements flowgraph.Block.
func (b *TXBlock) Name() string { return "mimonet-tx" }

// Inputs implements flowgraph.Block.
func (b *TXBlock) Inputs() int { return 0 }

// Outputs implements flowgraph.Block.
func (b *TXBlock) Outputs() int { return b.TX.NumChains() }

// Run implements flowgraph.Block.
func (b *TXBlock) Run(ctx context.Context, _ []<-chan flowgraph.Chunk, out []chan<- flowgraph.Chunk) error {
	if b.NextPayload == nil {
		return errors.New("blocks: TXBlock.NextPayload is nil")
	}
	for {
		payload, err := b.NextPayload()
		if errors.Is(err, io.EOF) {
			return nil
		}
		if err != nil {
			return err
		}
		frame := &mac.Frame{Seq: b.seq, Payload: payload}
		b.seq = (b.seq + 1) & 0x0FFF
		b.packetID++
		if b.OnBurst != nil {
			b.OnBurst(b.packetID, frame.Seq)
		}
		psdu, err := frame.Encode()
		if err != nil {
			return err
		}
		burst, err := b.TX.Transmit(psdu)
		if err != nil {
			return err
		}
		for c, stream := range burst {
			if !flowgraph.Send(ctx, out[c], stream) {
				return ctx.Err()
			}
		}
	}
}

// ChannelBlock applies the channel simulator: N_TX in, N_RX out. It consumes
// one chunk per input port (one burst per antenna) and emits the faded
// streams.
type ChannelBlock struct {
	Ch *channel.Channel
}

// Name implements flowgraph.Block.
func (b *ChannelBlock) Name() string { return "mimonet-channel" }

// Inputs implements flowgraph.Block.
func (b *ChannelBlock) Inputs() int { return b.Ch.Config().NumTX }

// Outputs implements flowgraph.Block.
func (b *ChannelBlock) Outputs() int { return b.Ch.Config().NumRX }

// Run implements flowgraph.Block.
func (b *ChannelBlock) Run(ctx context.Context, in []<-chan flowgraph.Chunk, out []chan<- flowgraph.Chunk) error {
	// Hoisted out of the burst loop (hotalloc): the slice header array is
	// reused across bursts; Apply does not retain it.
	tx := make([][]complex128, len(in))
	for {
		for c := range in {
			chunk, ok := flowgraph.Recv(ctx, in[c])
			if !ok {
				if c == 0 {
					return ctx.Err() // clean end of stream
				}
				return fmt.Errorf("blocks: channel input %d ended mid-burst", c)
			}
			tx[c] = chunk
		}
		rx, err := b.Ch.Apply(tx)
		if err != nil {
			return err
		}
		for a, stream := range rx {
			if !flowgraph.Send(ctx, out[a], stream) {
				return ctx.Err()
			}
		}
	}
}

// RXReport is what the receiver block emits per burst.
type RXReport struct {
	Frame *mac.Frame
	Res   *phy.RxResult
	Err   error
}

// RXBlock decodes bursts: N_RX in, 0 out, reports delivered via OnReport.
type RXBlock struct {
	RX *phy.Receiver
	// Antennas must match the receiver's configuration.
	Antennas int
	// OnReport is called for every burst (decode success or failure).
	OnReport func(RXReport)
	// Obs, when set, closes each packet's telemetry: the crc trace span
	// around the MAC FCS check and the terminal PER/post-FEC accounting.
	// Attach the same RxObs to RX so the trace spans share a chain.
	Obs *phy.RxObs
	// NextPacketID, when set, supplies the TX-assigned packet ID of the
	// burst about to be decoded (0 = unknown) — typically the transport's
	// LastPacketID threaded through the source block. Called once per burst,
	// after assembly and before decode.
	NextPacketID func() uint64
}

// Name implements flowgraph.Block.
func (b *RXBlock) Name() string { return "mimonet-rx" }

// Inputs implements flowgraph.Block.
func (b *RXBlock) Inputs() int { return b.Antennas }

// Outputs implements flowgraph.Block.
func (b *RXBlock) Outputs() int { return 0 }

// Restartable implements flowgraph.Restartable: the receiver is stateless
// across bursts, so a supervisor may re-run it after a failure — the stream
// loses at most the burst the failed attempt was decoding.
func (b *RXBlock) Restartable() bool { return true }

// safeReceive contains a receiver panic on malformed input: decoding a burst
// of hostile samples must cost one report, not the flowgraph.
func safeReceive(rx *phy.Receiver, burst [][]complex128) (res *phy.RxResult, err error) {
	defer func() {
		if p := recover(); p != nil {
			res, err = nil, fmt.Errorf("blocks: receiver panic: %v", p)
		}
	}()
	return rx.Receive(burst)
}

// Run implements flowgraph.Block.
func (b *RXBlock) Run(ctx context.Context, in []<-chan flowgraph.Chunk, _ []chan<- flowgraph.Chunk) error {
	if b.OnReport == nil {
		return errors.New("blocks: RXBlock.OnReport is nil")
	}
	// Hoisted out of the burst loop (hotalloc): refilled every burst, never
	// retained by the receiver.
	rx := make([][]complex128, len(in))
	for {
		for a := range in {
			chunk, ok := flowgraph.Recv(ctx, in[a])
			if !ok {
				if a == 0 {
					return ctx.Err()
				}
				return fmt.Errorf("blocks: rx input %d ended mid-burst", a)
			}
			rx[a] = chunk
		}
		if b.NextPacketID != nil {
			b.RX.SetPacketID(b.NextPacketID())
		}
		res, err := safeReceive(b.RX, rx)
		rep := RXReport{Res: res, Err: err}
		if err == nil {
			tr := b.Obs.ActiveTrace()
			tr.Begin(obs.StageCRC)
			frame, derr := mac.Decode(res.PSDU)
			if derr != nil {
				rep.Err = derr
			} else {
				rep.Frame = frame
			}
			b.Obs.PacketResult(derr == nil, len(res.PSDU))
		}
		b.OnReport(rep)
	}
}
