package modem

import "math"

// grayPAM32 mirrors grayPAM in single precision for the narrow demap kernel.
var grayPAM32 [4][]float32

func init() {
	for n, levels := range grayPAM {
		if levels == nil {
			continue
		}
		l32 := make([]float32, len(levels))
		for i, v := range levels {
			l32[i] = float32(v)
		}
		grayPAM32[n] = l32
	}
}

// BitsPerSymbol returns N_BPSC for the demapper's constellation.
func (d *Demapper) BitsPerSymbol() int { return d.nbpsc }

// Scheme returns the demapper's constellation.
func (d *Demapper) Scheme() Scheme { return d.scheme }

// SoftTo32 is SoftTo computed entirely in single precision: the symbol,
// noise variance and CSI weight arrive as float32 and every intermediate
// distance stays float32; only the final LLR is widened into the float64
// decoder stream. It backs the receiver's opt-in narrow detection kernel.
// The max-log decision structure is identical to SoftTo, so LLR signs can
// only differ where the double-precision LLR magnitude is within float32
// rounding of zero — the precision-equivalence test quantifies this.
//
//mimonet:hot
func (d *Demapper) SoftTo32(dst []float64, sym complex64, noiseVar, csi float32) {
	if noiseVar <= 0 {
		noiseVar = 1e-12
	}
	w := csi / noiseVar
	if d.scheme == BPSK {
		dst[0] = float64(-4 * real(sym) * w)
		return
	}
	norm := float32(d.norm)
	softAxis32(dst[:d.axis], real(sym)/norm, d.axis, w*norm*norm)
	softAxis32(dst[d.axis:2*d.axis], imag(sym)/norm, d.axis, w*norm*norm)
}

// softAxis32 is softAxis in single precision.
func softAxis32(dst []float64, v float32, axisBits int, w float32) {
	levels := grayPAM32[axisBits]
	for bit := 0; bit < axisBits; bit++ {
		d0 := float32(math.Inf(1))
		d1 := float32(math.Inf(1))
		for pattern, lvl := range levels {
			dist := (v - lvl) * (v - lvl)
			if (pattern>>uint(bit))&1 == 0 {
				if dist < d0 {
					d0 = dist
				}
			} else if dist < d1 {
				d1 = dist
			}
		}
		dst[bit] = float64((d1 - d0) * w)
	}
}
