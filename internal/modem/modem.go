// Package modem implements the 802.11 subcarrier modulation mappings
// (IEEE 802.11-2012 §18.3.5.8): Gray-coded BPSK, QPSK, 16-QAM and 64-QAM
// with the standard normalization factors, plus hard slicing and max-log-MAP
// LLR demapping for soft-decision Viterbi decoding.
package modem

import (
	"fmt"
	"math"
)

// Scheme identifies a constellation.
type Scheme int

// Supported constellations.
const (
	BPSK Scheme = iota
	QPSK
	QAM16
	QAM64
)

func (s Scheme) String() string {
	switch s {
	case BPSK:
		return "BPSK"
	case QPSK:
		return "QPSK"
	case QAM16:
		return "16-QAM"
	case QAM64:
		return "64-QAM"
	}
	return fmt.Sprintf("Scheme(%d)", int(s))
}

// BitsPerSymbol returns N_BPSC for the scheme.
func (s Scheme) BitsPerSymbol() int {
	switch s {
	case BPSK:
		return 1
	case QPSK:
		return 2
	case QAM16:
		return 4
	case QAM64:
		return 6
	default:
		panic(fmt.Sprintf("modem: unknown scheme %d", int(s)))
	}
}

// Norm returns the K_MOD amplitude normalization so that the average symbol
// energy is 1.
func (s Scheme) Norm() float64 {
	switch s {
	case BPSK:
		return 1
	case QPSK:
		return 1 / math.Sqrt2
	case QAM16:
		return 1 / math.Sqrt(10)
	case QAM64:
		return 1 / math.Sqrt(42)
	default:
		panic(fmt.Sprintf("modem: unknown scheme %d", int(s)))
	}
}

// pamLevel maps Gray-coded bits to the PAM level per the 802.11 tables.
// The per-axis bit groups (b0 b1 ... listed first-transmitted first) map:
//
//	1 bit:  0→−1, 1→+1
//	2 bits: 00→−3, 01→−1, 11→+1, 10→+3
//	3 bits: 000→−7, 001→−5, 011→−3, 010→−1, 110→+1, 111→+3, 101→+5, 100→+7
//
// Index is the little-endian packed bit pattern (b0 in bit 0), so e.g. for
// 2 bits the table rows 00→−3, 01→−1, 11→+1, 10→+3 land at indices 0, 2, 3, 1.
var grayPAM = [4][]float64{
	1: {-1, 1},
	2: {-3, 3, -1, 1},
	3: {-7, 7, -1, 1, -5, 5, -3, 3},
}

// pamBits is the inverse: pamBits[nbits][levelIndex] = Gray bits packed
// little-endian, where levelIndex = (level + max) / 2.
var pamBits [4][]int

func init() {
	for nbits := 1; nbits <= 3; nbits++ {
		levels := grayPAM[nbits]
		inv := make([]int, len(levels))
		for bits, lvl := range levels {
			idx := (int(lvl) + len(levels) - 1) / 2
			inv[idx] = bits
		}
		pamBits[nbits] = inv
	}
}

// Mapper modulates bits onto constellation points. It is stateless and safe
// for concurrent use.
type Mapper struct {
	scheme Scheme
	nbpsc  int
	norm   float64
	axis   int // bits per I (and Q) axis; 0 for BPSK's Q
}

// NewMapper returns a mapper for the scheme.
func NewMapper(s Scheme) *Mapper {
	m := &Mapper{scheme: s, nbpsc: s.BitsPerSymbol(), norm: s.Norm()}
	m.axis = m.nbpsc / 2
	return m
}

// Scheme returns the constellation.
func (m *Mapper) Scheme() Scheme { return m.scheme }

// Map converts bits (one per byte, length a multiple of BitsPerSymbol) to
// symbols. The first bit of each group modulates I, per the standard's
// table ordering.
func (m *Mapper) Map(bits []byte) ([]complex128, error) {
	return m.MapTo(nil, bits)
}

// MapTo is Map writing into dst, which is grown only when its capacity is
// short and returned resliced to the symbol count, for callers that map
// many blocks with a reused buffer.
func (m *Mapper) MapTo(dst []complex128, bits []byte) ([]complex128, error) {
	if len(bits)%m.nbpsc != 0 {
		return nil, fmt.Errorf("modem: %d bits is not a multiple of %d", len(bits), m.nbpsc)
	}
	n := len(bits) / m.nbpsc
	if cap(dst) < n {
		dst = make([]complex128, n)
	}
	dst = dst[:n]
	for i := range dst {
		dst[i] = m.MapOne(bits[i*m.nbpsc : (i+1)*m.nbpsc])
	}
	return dst, nil
}

// MapOne converts exactly BitsPerSymbol bits to one symbol.
func (m *Mapper) MapOne(bits []byte) complex128 {
	if m.scheme == BPSK {
		if bits[0]&1 == 0 {
			return complex(-1, 0)
		}
		return complex(1, 0)
	}
	iIdx, qIdx := 0, 0
	for k := 0; k < m.axis; k++ {
		iIdx |= int(bits[k]&1) << uint(k)
		qIdx |= int(bits[m.axis+k]&1) << uint(k)
	}
	lv := grayPAM[m.axis]
	return complex(lv[iIdx]*m.norm, lv[qIdx]*m.norm)
}

// Points returns every constellation point indexed by its bit pattern
// (little-endian packed), for ML detection.
func (m *Mapper) Points() []complex128 {
	n := 1 << uint(m.nbpsc)
	pts := make([]complex128, n)
	bits := make([]byte, m.nbpsc)
	for v := 0; v < n; v++ {
		for k := range bits {
			bits[k] = byte((v >> uint(k)) & 1)
		}
		pts[v] = m.MapOne(bits)
	}
	return pts
}

// Demapper recovers bits from noisy symbols. It is stateless and safe for
// concurrent use.
type Demapper struct {
	scheme Scheme
	nbpsc  int
	norm   float64
	axis   int
}

// NewDemapper returns a demapper for the scheme.
func NewDemapper(s Scheme) *Demapper {
	d := &Demapper{scheme: s, nbpsc: s.BitsPerSymbol(), norm: s.Norm()}
	d.axis = d.nbpsc / 2
	return d
}

// HardOne slices one symbol to the nearest constellation point's bits,
// appended to dst.
func (d *Demapper) HardOne(dst []byte, sym complex128) []byte {
	if d.scheme == BPSK {
		if real(sym) >= 0 {
			return append(dst, 1)
		}
		return append(dst, 0)
	}
	iBits := sliceAxis(real(sym)/d.norm, d.axis)
	qBits := sliceAxis(imag(sym)/d.norm, d.axis)
	for k := 0; k < d.axis; k++ {
		dst = append(dst, byte((iBits>>uint(k))&1))
	}
	for k := 0; k < d.axis; k++ {
		dst = append(dst, byte((qBits>>uint(k))&1))
	}
	return dst
}

// Hard slices symbols to bits.
func (d *Demapper) Hard(symbols []complex128) []byte {
	out := make([]byte, 0, len(symbols)*d.nbpsc)
	for _, s := range symbols {
		out = d.HardOne(out, s)
	}
	return out
}

func sliceAxis(v float64, axisBits int) int {
	// Clamp to nearest odd level in [−(2^axisBits−1), +...].
	maxLvl := float64(int(1)<<uint(axisBits)) - 1
	l := math.Round((v + maxLvl) / 2)
	if l < 0 {
		l = 0
	}
	if l > maxLvl {
		l = maxLvl
	}
	return pamBits[axisBits][int(l)]
}

// SoftOne appends max-log-MAP LLRs for one symbol to dst. noiseVar is the
// per-symbol complex noise variance; csi is an optional channel state
// weight (|h|² for a one-tap equalized carrier, or the post-detection SINR
// weight from a MIMO detector) that scales confidence. LLR > 0 means bit 0.
func (d *Demapper) SoftOne(dst []float64, sym complex128, noiseVar, csi float64) []float64 {
	n := len(dst)
	if cap(dst) < n+d.nbpsc {
		// Grow through append so the usual doubling amortizes; the zeroed
		// tail is immediately overwritten by SoftTo, and once capacity is
		// reached (steady state) this branch never runs again.
		dst = append(dst, make([]float64, d.nbpsc)...)
	} else {
		dst = dst[:n+d.nbpsc]
	}
	d.SoftTo(dst[n:], sym, noiseVar, csi)
	return dst
}

// SoftTo computes max-log-MAP LLRs for one symbol into dst[:BitsPerSymbol].
// It is the write-in-place core of SoftOne — both produce identical values —
// exposed so the batched receive path can land soft bits directly at their
// final positions without an append-and-copy round trip.
//
//mimonet:hot
func (d *Demapper) SoftTo(dst []float64, sym complex128, noiseVar, csi float64) {
	if noiseVar <= 0 {
		noiseVar = 1e-12
	}
	w := csi / noiseVar
	if d.scheme == BPSK {
		dst[0] = -4 * real(sym) * w
		return
	}
	softAxis(dst[:d.axis], real(sym)/d.norm, d.axis, w*d.norm*d.norm)
	softAxis(dst[d.axis:2*d.axis], imag(sym)/d.norm, d.axis, w*d.norm*d.norm)
}

// softAxis computes exact max-log LLRs for one PAM axis into dst[:axisBits]
// by searching the (at most 8) levels. v is the received level in
// unnormalized PAM units; w scales squared distances to LLR units.
func softAxis(dst []float64, v float64, axisBits int, w float64) {
	levels := grayPAM[axisBits]
	for bit := 0; bit < axisBits; bit++ {
		d0 := math.Inf(1) // best squared distance with this bit = 0
		d1 := math.Inf(1)
		for pattern, lvl := range levels {
			dist := (v - lvl) * (v - lvl)
			if (pattern>>uint(bit))&1 == 0 {
				if dist < d0 {
					d0 = dist
				}
			} else if dist < d1 {
				d1 = dist
			}
		}
		dst[bit] = (d1 - d0) * w
	}
}

// Soft computes LLRs for a block of symbols with per-symbol CSI weights.
// csi may be nil (unit weights).
func (d *Demapper) Soft(symbols []complex128, noiseVar float64, csi []float64) []float64 {
	out := make([]float64, 0, len(symbols)*d.nbpsc)
	for i, s := range symbols {
		w := 1.0
		if csi != nil {
			w = csi[i]
		}
		out = d.SoftOne(out, s, noiseVar, w)
	}
	return out
}
