package modem

import (
	"bytes"
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

var allSchemes = []Scheme{BPSK, QPSK, QAM16, QAM64}

func randBits(r *rand.Rand, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(r.Intn(2))
	}
	return b
}

func TestSchemeBasics(t *testing.T) {
	for _, c := range []struct {
		s     Scheme
		bits  int
		norm  float64
		label string
	}{
		{BPSK, 1, 1, "BPSK"},
		{QPSK, 2, 1 / math.Sqrt2, "QPSK"},
		{QAM16, 4, 1 / math.Sqrt(10), "16-QAM"},
		{QAM64, 6, 1 / math.Sqrt(42), "64-QAM"},
	} {
		if c.s.BitsPerSymbol() != c.bits || math.Abs(c.s.Norm()-c.norm) > 1e-15 || c.s.String() != c.label {
			t.Errorf("%v: bits=%d norm=%g", c.s, c.s.BitsPerSymbol(), c.s.Norm())
		}
	}
}

func TestUnitAveragePower(t *testing.T) {
	for _, s := range allSchemes {
		pts := NewMapper(s).Points()
		var p float64
		for _, v := range pts {
			p += real(v)*real(v) + imag(v)*imag(v)
		}
		p /= float64(len(pts))
		if math.Abs(p-1) > 1e-12 {
			t.Errorf("%v: average power %g, want 1", s, p)
		}
	}
}

func TestPointsDistinct(t *testing.T) {
	for _, s := range allSchemes {
		pts := NewMapper(s).Points()
		want := 1 << uint(s.BitsPerSymbol())
		if len(pts) != want {
			t.Fatalf("%v: %d points, want %d", s, len(pts), want)
		}
		for i := range pts {
			for j := i + 1; j < len(pts); j++ {
				if cmplx.Abs(pts[i]-pts[j]) < 1e-9 {
					t.Errorf("%v: points %d and %d coincide", s, i, j)
				}
			}
		}
	}
}

func TestGrayPropertyNeighbors(t *testing.T) {
	// In a Gray-mapped QAM, constellation points adjacent on one axis
	// differ in exactly one bit.
	for _, s := range []Scheme{QAM16, QAM64} {
		m := NewMapper(s)
		pts := m.Points()
		axisStep := 2 * s.Norm()
		for a := range pts {
			for b := range pts {
				d := pts[a] - pts[b]
				if math.Abs(cmplx.Abs(d)-axisStep) < 1e-9 &&
					(math.Abs(real(d)) < 1e-9 || math.Abs(imag(d)) < 1e-9) {
					if popcount(a^b) != 1 {
						t.Errorf("%v: axis neighbors %06b and %06b differ in %d bits",
							s, a, b, popcount(a^b))
					}
				}
			}
		}
	}
}

func popcount(x int) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}

func TestKnownMappings(t *testing.T) {
	// IEEE 802.11-2012 Table 18-9..18-12 spot checks.
	bpsk := NewMapper(BPSK)
	if got := bpsk.MapOne([]byte{0}); got != complex(-1, 0) {
		t.Errorf("BPSK(0) = %v", got)
	}
	qpsk := NewMapper(QPSK)
	k := 1 / math.Sqrt2
	if got := qpsk.MapOne([]byte{1, 1}); cmplx.Abs(got-complex(k, k)) > 1e-12 {
		t.Errorf("QPSK(11) = %v, want (%g,%g)", got, k, k)
	}
	if got := qpsk.MapOne([]byte{0, 1}); cmplx.Abs(got-complex(-k, k)) > 1e-12 {
		t.Errorf("QPSK(01) = %v", got)
	}
	q16 := NewMapper(QAM16)
	k16 := 1 / math.Sqrt(10)
	// b0b1 = 10 → I = +3 (per table: 00→−3, 01→−1, 11→+1, 10→+3)
	if got := q16.MapOne([]byte{1, 0, 0, 0}); cmplx.Abs(got-complex(3*k16, -3*k16)) > 1e-12 {
		t.Errorf("16QAM(1000) = %v", got)
	}
	q64 := NewMapper(QAM64)
	k64 := 1 / math.Sqrt(42)
	// b0b1b2 = 100 → I = +7 per the 3-bit table.
	if got := q64.MapOne([]byte{1, 0, 0, 0, 0, 0}); cmplx.Abs(got-complex(7*k64, -7*k64)) > 1e-12 {
		t.Errorf("64QAM(100000) = %v", got)
	}
}

func TestMapHardRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, s := range allSchemes {
		m := NewMapper(s)
		d := NewDemapper(s)
		bits := randBits(r, s.BitsPerSymbol()*100)
		syms, err := m.Map(bits)
		if err != nil {
			t.Fatal(err)
		}
		got := d.Hard(syms)
		if !bytes.Equal(got, bits) {
			t.Errorf("%v: noiseless hard round trip failed", s)
		}
	}
}

func TestMapRejectsPartialSymbol(t *testing.T) {
	m := NewMapper(QAM16)
	if _, err := m.Map(make([]byte, 5)); err == nil {
		t.Error("partial symbol should error")
	}
}

func TestHardSlicingWithNoise(t *testing.T) {
	// Noise below half the minimum distance must never cause errors.
	r := rand.New(rand.NewSource(2))
	for _, s := range allSchemes {
		m := NewMapper(s)
		d := NewDemapper(s)
		half := s.Norm() * 0.9 // just under half of min distance 2·norm
		bits := randBits(r, s.BitsPerSymbol()*200)
		syms, _ := m.Map(bits)
		for i := range syms {
			dx := (r.Float64()*2 - 1) * half / math.Sqrt2
			dy := (r.Float64()*2 - 1) * half / math.Sqrt2
			syms[i] += complex(dx, dy)
		}
		if got := d.Hard(syms); !bytes.Equal(got, bits) {
			t.Errorf("%v: sub-threshold noise caused bit errors", s)
		}
	}
}

func TestSoftSignsMatchHard(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for _, s := range allSchemes {
		m := NewMapper(s)
		d := NewDemapper(s)
		bits := randBits(r, s.BitsPerSymbol()*100)
		syms, _ := m.Map(bits)
		llr := d.Soft(syms, 0.1, nil)
		if len(llr) != len(bits) {
			t.Fatalf("%v: %d LLRs for %d bits", s, len(llr), len(bits))
		}
		for i, l := range llr {
			hard := byte(0)
			if l < 0 {
				hard = 1
			}
			if hard != bits[i] {
				t.Errorf("%v: LLR %d sign disagrees with transmitted bit", s, i)
			}
			if l == 0 {
				t.Errorf("%v: LLR %d is exactly zero on clean input", s, i)
			}
		}
	}
}

func TestSoftConfidenceScalesWithCSI(t *testing.T) {
	d := NewDemapper(QPSK)
	m := NewMapper(QPSK)
	sym := m.MapOne([]byte{1, 1})
	weak := d.SoftOne(nil, sym, 0.1, 0.1)
	strong := d.SoftOne(nil, sym, 0.1, 1.0)
	for i := range weak {
		if math.Abs(strong[i]) <= math.Abs(weak[i]) {
			t.Errorf("bit %d: CSI weighting did not increase confidence", i)
		}
	}
}

func TestSoftZeroNoiseGuard(t *testing.T) {
	d := NewDemapper(BPSK)
	llr := d.SoftOne(nil, complex(1, 0), 0, 1)
	if math.IsNaN(llr[0]) || math.IsInf(llr[0], 0) {
		t.Errorf("zero noise variance produced %g", llr[0])
	}
}

func TestSoftHardAgreementProperty(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for _, s := range allSchemes {
		d := NewDemapper(s)
		prop := func(seed int64) bool {
			_ = seed
			sym := complex(r.NormFloat64(), r.NormFloat64())
			hard := d.HardOne(nil, sym)
			soft := d.SoftOne(nil, sym, 0.5, 1)
			for i := range hard {
				h := byte(0)
				if soft[i] < 0 {
					h = 1
				}
				// Max-log LLR sign must agree with the nearest-point slice
				// (ties broken arbitrarily, so skip near-zero LLRs).
				if math.Abs(soft[i]) > 1e-9 && h != hard[i] {
					return false
				}
			}
			return true
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("%v: %v", s, err)
		}
	}
}

func BenchmarkMap64QAM(b *testing.B) {
	m := NewMapper(QAM64)
	bits := randBits(rand.New(rand.NewSource(5)), 6*52*10)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := m.Map(bits); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSoftDemap64QAM(b *testing.B) {
	m := NewMapper(QAM64)
	d := NewDemapper(QAM64)
	bits := randBits(rand.New(rand.NewSource(6)), 6*52*10)
	syms, _ := m.Map(bits)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.Soft(syms, 0.1, nil)
	}
}
