package sim

import (
	"math/rand"

	"repro/internal/channel"
	"repro/internal/mac"
	"repro/internal/metrics"
	"repro/internal/ofdm"
	"repro/internal/phy"
)

func init() {
	register("e18", E18Mobility)
}

// E18Mobility sweeps PER against the channel's Doppler rate with
// decision-directed channel tracking enabled and disabled. The preamble
// channel estimate ages over a long packet on a time-varying channel; the
// pilot tracker removes the common phase but not the per-tap evolution, so
// beyond a Doppler threshold only the LMS tracker keeps packets decodable.
func E18Mobility(opt Options) (*Table, error) {
	t := &Table{
		ID:      "E18",
		Title:   "Extension: PER vs Doppler with decision-directed channel tracking (flat Rayleigh 2x2, MCS9, 3000-octet MPDU, 28 dB)",
		Columns: []string{"doppler_hz", "per_static", "per_tracked"},
	}
	dopplers := []float64{0, 200, 400, 700, 1000, 1500}
	packets := opt.Packets / 8
	if packets < 5 {
		packets = 5
	}
	payload := 3000
	if opt.Quick {
		dopplers = []float64{0, 800}
		packets = 5
		payload = 1500
	}
	for _, fd := range dopplers {
		row := []float64{fd}
		for _, track := range []bool{false, true} {
			per, err := mobilityPER(fd, track, packets, payload, opt.Seed)
			if err != nil {
				return nil, err
			}
			row = append(row, per.Rate())
		}
		if err := t.AddRow(row...); err != nil {
			return nil, err
		}
	}
	t.Notes = append(t.Notes,
		"1000 Hz at 2.4 GHz corresponds to ≈ 450 km/h — exaggerated mobility that compresses the effect into one packet, standing in for longer packets at pedestrian speeds",
		"expected: both near 0 at low Doppler; per_static rises toward 1 first; per_tracked holds out several times longer")
	return t, nil
}

func mobilityPER(dopplerHz float64, track bool, packets, payloadLen int, seed int64) (*metrics.PER, error) {
	tx, err := phy.NewTransmitter(phy.TxConfig{MCS: 9, ScramblerSeed: 0x3D})
	if err != nil {
		return nil, err
	}
	ch, err := channel.New(channel.Config{NumTX: 2, NumRX: 2, Model: channel.FlatRayleigh,
		SNRdB: 28, Seed: seed + int64(dopplerHz)*3,
		DopplerHz: dopplerHz, SampleRate: ofdm.SampleRate,
		TimingOffset: 240, TrailingSilence: 90})
	if err != nil {
		return nil, err
	}
	rcv, err := phy.NewReceiver(phy.RxConfig{NumAntennas: 2, Detector: "mmse", TrackChannel: track})
	if err != nil {
		return nil, err
	}
	r := rand.New(rand.NewSource(seed ^ 0xE18))
	var per metrics.PER
	payload := make([]byte, payloadLen)
	for p := 0; p < packets; p++ {
		r.Read(payload)
		frame := &mac.Frame{Seq: uint16(p), Payload: payload}
		psdu, err := frame.Encode()
		if err != nil {
			return nil, err
		}
		burst, err := tx.Transmit(psdu)
		if err != nil {
			return nil, err
		}
		rxs, err := ch.Apply(burst)
		if err != nil {
			return nil, err
		}
		res, rxErr := rcv.Receive(rxs)
		ok := false
		if rxErr == nil {
			if got, derr := mac.Decode(res.PSDU); derr == nil && got.Seq == frame.Seq {
				ok = true
			}
		}
		per.Add(ok)
	}
	return &per, nil
}
