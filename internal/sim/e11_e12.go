package sim

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/channel"
	"repro/internal/mac"
	"repro/internal/metrics"
	"repro/internal/ofdm"
	"repro/internal/phy"
	"repro/internal/radio"
)

func init() {
	register("e11", E11NetworkedLink)
	register("e12", E12PipelineThroughput)
}

// E11NetworkedLink exercises the complete MIMONet platform path: the
// transmitter's burst crosses the simulated radio channel, the resulting IQ
// streams are shipped over a real UDP socket (the host↔front-end link), and
// the receiver decodes on the far side. Reported per configured SNR:
// decode PER, the receiver's SNR estimate, and datagram loss.
func E11NetworkedLink(opt Options) (*Table, error) {
	t := &Table{
		ID:      "E11",
		Title:   "End-to-end networked link: TX → TGn-B → UDP IQ transport → RX (MCS11)",
		Columns: []string{"snr_db", "per", "mean_est_snr_db", "datagrams_lost"},
	}
	snrs := []float64{10, 15, 20, 25, 30}
	packets := opt.Packets / 10
	if packets < 3 {
		packets = 3
	}
	if opt.Quick {
		snrs = []float64{15, 25}
		packets = 3
	}
	r := rand.New(rand.NewSource(opt.Seed + 11))
	for _, snrDB := range snrs {
		per, meanSNR, lost, err := runNetworkedPoint(r, snrDB, packets, opt.PayloadLen, opt.Seed)
		if err != nil {
			return nil, err
		}
		if err := t.AddRow(snrDB, per.Rate(), meanSNR, float64(lost)); err != nil {
			return nil, err
		}
	}
	t.Notes = append(t.Notes,
		"IQ samples cross a real loopback UDP socket in the radio framing (float32 I/Q, sequence numbered)",
		"expected: estimated SNR tracks configured SNR; PER falls with SNR as in E5")
	return t, nil
}

func runNetworkedPoint(r *rand.Rand, snrDB float64, packets, payloadLen int, seed int64) (*metrics.PER, float64, uint64, error) {
	rxSock, err := radio.NewUDPReceiver("127.0.0.1:0")
	if err != nil {
		return nil, 0, 0, err
	}
	defer rxSock.Close()
	txSock, err := radio.NewUDPSender(rxSock.Addr().String(), 2)
	if err != nil {
		return nil, 0, 0, err
	}
	defer txSock.Close()

	tx, err := phy.NewTransmitter(phy.TxConfig{MCS: 11, ScramblerSeed: 0x2B})
	if err != nil {
		return nil, 0, 0, err
	}
	ch, err := channel.New(channel.Config{NumTX: 2, NumRX: 2, Model: channel.TGnB,
		SNRdB: snrDB, Seed: seed + int64(snrDB), TimingOffset: 250, TrailingSilence: 100})
	if err != nil {
		return nil, 0, 0, err
	}
	var per metrics.PER
	var snrAcc float64
	snrCount := 0
	for p := 0; p < packets; p++ {
		payload := make([]byte, payloadLen)
		r.Read(payload)
		frame := &mac.Frame{Seq: uint16(p & 0xFFF), Payload: payload}
		psdu, err := frame.Encode()
		if err != nil {
			return nil, 0, 0, err
		}
		burst, err := tx.Transmit(psdu)
		if err != nil {
			return nil, 0, 0, err
		}
		faded, err := ch.Apply(burst)
		if err != nil {
			return nil, 0, 0, err
		}
		// Ship the IQ streams across the UDP socket, concurrently with the
		// read (datagram buffers are small).
		sendErr := make(chan error, 1)
		go func() { sendErr <- txSock.WriteBurst(faded) }()
		got, err := rxSock.ReadBurst(5 * time.Second)
		if err != nil {
			return nil, 0, 0, err
		}
		if err := <-sendErr; err != nil {
			return nil, 0, 0, err
		}
		rcv, err := phy.NewReceiver(phy.RxConfig{NumAntennas: 2, Detector: "mmse"})
		if err != nil {
			return nil, 0, 0, err
		}
		res, rxErr := rcv.Receive(got)
		ok := false
		if rxErr == nil {
			if decoded, derr := mac.Decode(res.PSDU); derr == nil {
				ok = decoded.Seq == frame.Seq && string(decoded.Payload) == string(payload)
			}
		}
		if res != nil {
			snrAcc += res.SNRdB
			snrCount++
		}
		per.Add(ok)
	}
	meanSNR := 0.0
	if snrCount > 0 {
		meanSNR = snrAcc / float64(snrCount)
	}
	return &per, meanSNR, rxSock.Lost, nil
}

// E12PipelineThroughput measures the software pipeline rates of the major
// stages in megasamples (or megabits) per second — the SDR-feasibility
// numbers the paper reports for its GNU Radio implementation.
func E12PipelineThroughput(opt Options) (*Table, error) {
	t := &Table{
		ID:      "E12",
		Title:   "Software pipeline throughput (single core)",
		Columns: []string{"stage_id", "msamples_per_s", "x_realtime_20mhz"},
	}
	iterations := 60
	if opt.Quick {
		iterations = 6
	}
	payload := 1500

	// Stage 1: full transmit chain, MCS15.
	tx, err := phy.NewTransmitter(phy.TxConfig{MCS: 15})
	if err != nil {
		return nil, err
	}
	psdu := make([]byte, payload)
	burstLen := phy.BurstLen(tx.MCS(), payload)
	start := wallClock.Now()
	for i := 0; i < iterations; i++ {
		if _, err := tx.Transmit(psdu); err != nil {
			return nil, err
		}
	}
	txRate := float64(iterations) * float64(burstLen) / wallClock.Since(start).Seconds() / 1e6

	// Stage 2: full receive chain, MCS15 over a clean channel.
	burst, err := tx.Transmit(psdu)
	if err != nil {
		return nil, err
	}
	ch, err := channel.New(channel.Config{NumTX: 2, NumRX: 2, Model: channel.Identity,
		SNRdB: 30, Seed: 12, TimingOffset: 100, TrailingSilence: 50})
	if err != nil {
		return nil, err
	}
	rxs, err := ch.Apply(burst)
	if err != nil {
		return nil, err
	}
	rcv, err := phy.NewReceiver(phy.RxConfig{NumAntennas: 2, Detector: "mmse"})
	if err != nil {
		return nil, err
	}
	start = wallClock.Now()
	for i := 0; i < iterations; i++ {
		cp := make([][]complex128, len(rxs))
		for a := range rxs {
			cp[a] = append([]complex128(nil), rxs[a]...)
		}
		if _, err := rcv.Receive(cp); err != nil {
			return nil, err
		}
	}
	rxRate := float64(iterations) * float64(len(rxs[0])) / wallClock.Since(start).Seconds() / 1e6

	// Stage 3: channel simulator.
	start = wallClock.Now()
	for i := 0; i < iterations; i++ {
		if _, err := ch.Apply(burst); err != nil {
			return nil, err
		}
	}
	chRate := float64(iterations) * float64(burstLen) / wallClock.Since(start).Seconds() / 1e6

	rows := []struct {
		id   float64
		rate float64
	}{
		{1, txRate}, {2, rxRate}, {3, chRate},
	}
	for _, row := range rows {
		if err := t.AddRow(row.id, row.rate, row.rate/(ofdm.SampleRate/1e6)); err != nil {
			return nil, err
		}
	}
	t.Notes = append(t.Notes,
		"stage 1 = TX chain (MCS15), stage 2 = RX chain incl. sync+MMSE+Viterbi, stage 3 = channel simulator",
		fmt.Sprintf("x_realtime > 1 means the stage outruns the %g MHz sample clock", ofdm.SampleRate/1e6),
		"expected: TX several times faster than RX (Viterbi+detection dominate); this heavy MCS15 2x2 per-stream configuration stays below 20 MHz real time single-core, matching the paper's non-real-time GNU Radio operation — see E24/BenchmarkRealtime for the configuration the batched chain sustains in real time")
	return t, nil
}
