package sim

import (
	"math"
	"math/cmplx"
	"math/rand"

	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/dsp"
	"repro/internal/ofdm"
	"repro/internal/vandebeek"
)

func init() {
	register("e6", E6Synchronization)
	register("e7", E7PhaseTracking)
}

// E6Synchronization compares the paper's MIMO-extended Van de Beek
// synchronizer against the SISO original and a Schmidl & Cox style
// autocorrelation baseline: timing MSE and CFO MSE vs SNR.
func E6Synchronization(opt Options) (*Table, error) {
	t := &Table{
		ID:    "E6",
		Title: "Van de Beek synchronization, SISO vs MIMO extension (AWGN+CFO)",
		Columns: []string{"snr_db",
			"timing_mse_vdb1rx", "timing_mse_vdb2rx", "timing_mse_sc2rx",
			"cfo_mse_vdb1rx", "cfo_mse_vdb2rx"},
	}
	snrs := []float64{-2, 0, 2, 4, 6, 8, 10, 14}
	trials := opt.Packets
	if opt.Quick {
		snrs = []float64{0, 6}
	}
	const trueCFO = 0.08 // subcarrier spacings
	mod := ofdm.NewModulator(ofdm.HTToneMap)
	r := rand.New(rand.NewSource(opt.Seed + 6))
	for _, snrDB := range snrs {
		var t1, t2, tsc, c1, c2 float64
		for trial := 0; trial < trials; trial++ {
			offset := 20 + r.Intn(40)
			rx := ofdmStream(r, mod, 2, 5, offset, trueCFO, snrDB)
			limit := offset + ofdm.SymbolLen + 80 - 1
			est, err := vandebeek.New(ofdm.FFTSize, ofdm.CPLen, math.Pow(10, snrDB/10))
			if err != nil {
				return nil, err
			}
			e1, err := est.Estimate([][]complex128{rx[0][:limit]})
			if err != nil {
				return nil, err
			}
			e2, err := est.Estimate([][]complex128{rx[0][:limit], rx[1][:limit]})
			if err != nil {
				return nil, err
			}
			scOff := scTiming(rx, limit)
			d1 := modDist(e1.Offset, offset, ofdm.SymbolLen)
			d2 := modDist(e2.Offset, offset, ofdm.SymbolLen)
			dsc := modDist(scOff, offset, ofdm.SymbolLen)
			t1 += float64(d1 * d1)
			t2 += float64(d2 * d2)
			tsc += float64(dsc * dsc)
			c1 += (e1.CFO - trueCFO) * (e1.CFO - trueCFO)
			c2 += (e2.CFO - trueCFO) * (e2.CFO - trueCFO)
		}
		n := float64(trials)
		if err := t.AddRow(snrDB, t1/n, t2/n, tsc/n, c1/n, c2/n); err != nil {
			return nil, err
		}
	}
	t.Notes = append(t.Notes,
		"timing MSE in samples², CFO MSE in subcarrier-spacings²",
		"S&C baseline runs a lag-16 autocorrelation peak on generic OFDM data (no STF present), so its plateau is wide",
		"expected: 2-RX Van de Beek below 1-RX; both below the autocorrelation baseline at low SNR")
	return t, nil
}

// ofdmStream builds nrx antenna streams of random OFDM symbols with a
// boundary at offset, CFO in subcarrier spacings, AWGN at snrDB.
func ofdmStream(r *rand.Rand, mod *ofdm.Modulator, nrx, numSymbols, offset int, cfo, snrDB float64) [][]complex128 {
	total := offset + numSymbols*ofdm.SymbolLen + 32
	clean := make([]complex128, total)
	sym := make([]complex128, ofdm.SymbolLen)
	pos := offset % ofdm.SymbolLen
	if pos > 0 {
		pos -= ofdm.SymbolLen
	}
	data := make([]complex128, 52)
	for ; pos < total; pos += ofdm.SymbolLen {
		for i := range data {
			data[i] = complex(math.Sqrt2/2*float64(1-2*r.Intn(2)), math.Sqrt2/2*float64(1-2*r.Intn(2)))
		}
		if err := mod.Symbol(sym, data, []complex128{1, 1, 1, -1}); err != nil {
			panic(err)
		}
		for i, v := range sym {
			if pos+i >= 0 && pos+i < total {
				clean[pos+i] = v
			}
		}
	}
	dsp.Rotate(clean, 0, 2*math.Pi*cfo/float64(ofdm.FFTSize))
	sigma := math.Sqrt(math.Pow(10, -snrDB/10) / 2)
	out := make([][]complex128, nrx)
	for a := range out {
		ang := r.Float64() * 2 * math.Pi
		ph := complex(math.Cos(ang), math.Sin(ang))
		s := make([]complex128, total)
		for i, v := range clean {
			s[i] = v*ph + complex(r.NormFloat64()*sigma, r.NormFloat64()*sigma)
		}
		out[a] = s
	}
	return out
}

// scTiming is the Schmidl & Cox style baseline: peak of the lag-16
// normalized autocorrelation combined across antennas. Against generic OFDM
// symbols (no short training field present) its metric has no sharp peak,
// which is exactly the weakness the CP-based estimator avoids.
func scTiming(rx [][]complex128, limit int) int {
	best, bestV := 0, math.Inf(-1)
	acs := make([]*dsp.AutoCorrelator, len(rx))
	for a := range acs {
		acs[a] = dsp.NewAutoCorrelator(16, 32)
	}
	for i := 0; i < limit; i++ {
		var corr complex128
		var pw float64
		for a := range rx {
			c, p := acs[a].Push(rx[a][i])
			corr += c
			pw += p
		}
		if !acs[0].Primed() || pw == 0 {
			continue
		}
		if v := cmplx.Abs(corr) / pw; v > bestV {
			best, bestV = i-47, v // window start
		}
	}
	if best < 0 {
		best = 0
	}
	return best
}

func modDist(a, b, period int) int {
	d := ((a-b)%period + period) % period
	if period-d < d {
		d = period - d
	}
	return d
}

// E7PhaseTracking measures the pilot phase tracker's value: PER vs residual
// CFO with tracking enabled and disabled, over the full link.
func E7PhaseTracking(opt Options) (*Table, error) {
	t := &Table{
		ID:      "E7",
		Title:   "Pilot phase tracking ablation: PER vs CFO (identity channel, 25 dB, MCS11, 1200-byte MPDU)",
		Columns: []string{"cfo_hz", "per_tracked", "per_untracked"},
	}
	cfos := []float64{0, 300, 600, 1000, 1500, 2500}
	packets := opt.Packets / 4
	if packets < 5 {
		packets = 5
	}
	payload := 1200
	if opt.Quick {
		cfos = []float64{0, 1000}
		packets = 5
		payload = 600
	}
	for _, cfo := range cfos {
		row := []float64{cfo}
		for _, disable := range []bool{false, true} {
			per, _, err := runPER(core.LinkConfig{
				MCS:                  11,
				Detector:             "mmse",
				DisablePhaseTracking: disable,
				Channel: channel.Config{Model: channel.Identity, SNRdB: 25,
					CFOHz: cfo, SampleRate: ofdm.SampleRate},
			}, packets, payload, opt.Seed+int64(cfo)+7)
			if err != nil {
				return nil, err
			}
			row = append(row, per.Rate())
		}
		if err := t.AddRow(row...); err != nil {
			return nil, err
		}
	}
	t.Notes = append(t.Notes,
		"the LTF fine CFO estimator leaves a residual; without pilot tracking the residual phase ramp rotates late symbols out of their decision regions",
		"expected: per_tracked ≈ 0 everywhere; per_untracked is substantial even at 0 Hz because LTF CFO-estimation noise alone leaves a residual ramp over a 47-symbol packet")
	return t, nil
}
