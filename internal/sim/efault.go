package sim

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"time"

	"repro/internal/blocks"
	"repro/internal/channel"
	"repro/internal/faults"
	"repro/internal/flowgraph"
	"repro/internal/mac"
	"repro/internal/phy"
	"repro/internal/radio"
)

func init() {
	register("e22", E22ChaosCampaign)
}

// chaosPolicy is the supervision policy the campaign runs under: health
// accounting on, a stall watchdog generous enough that a slow decode is
// never mistaken for a wedge, and a small restart budget with fast backoff.
var chaosPolicy = flowgraph.Policy{
	MaxRestarts:  2,
	BackoffBase:  2 * time.Millisecond,
	BackoffMax:   20 * time.Millisecond,
	StallTimeout: 500 * time.Millisecond,
	StallGrace:   300 * time.Millisecond,
	TrackHealth:  true,
}

// scenarioOutcome accumulates one scenario's results across the flowgraph
// and UDP campaigns.
type scenarioOutcome struct {
	bursts, decoded, typedErrs int
	restarts, panics, stalls   int64
	injected                   int64
}

// E22ChaosCampaign drives every registered fault scenario through the
// supervised transceiver and asserts the robustness contract: each injected
// fault ends in a decoded burst or a typed error — never a crash, deadlock,
// or unexplained silence. Sample and block faults run through a supervised
// flowgraph (TX → inject → panic/stall → channel → RX); datagram faults run
// through the UDP radio link with a mangling interceptor. Options.Scenario
// restricts the campaign to one named scenario.
func E22ChaosCampaign(opt Options) (*Table, error) {
	t := &Table{
		ID:    "E22",
		Title: "Robustness: chaos campaign over the fault-injection scenarios (supervised 2x2 MCS8 flowgraph + UDP link)",
		Columns: []string{"scenario",
			"bursts", "decoded", "typed_errors", "injected", "restarts", "panics", "stalls"},
	}
	names := faults.Names()
	if opt.Scenario != "" {
		sc, err := faults.Lookup(opt.Scenario)
		if err != nil {
			return nil, err
		}
		names = []string{sc.Name}
	}
	bursts := 6
	if opt.Quick {
		bursts = 4
	}
	for idx, name := range names {
		sc, err := faults.Lookup(name)
		if err != nil {
			return nil, err
		}
		var out scenarioOutcome
		if scenarioUsesFlowgraph(sc) {
			if err := runChaosFlowgraph(opt, sc, bursts, &out); err != nil {
				return nil, fmt.Errorf("sim: scenario %q flowgraph: %w", name, err)
			}
		}
		if scenarioUsesDatagrams(sc) {
			if err := runChaosUDP(opt, sc, bursts, &out); err != nil {
				return nil, fmt.Errorf("sim: scenario %q udp: %w", name, err)
			}
		}
		// Every burst must be accounted for: decoded, rejected with a typed
		// error, or erased by a supervised restart (a panicked or stalled
		// attempt consumes the burst it was holding).
		if out.decoded+out.typedErrs+int(out.restarts) < out.bursts {
			return nil, fmt.Errorf("sim: scenario %q lost bursts silently: %d decoded + %d typed + %d restart-erased of %d",
				name, out.decoded, out.typedErrs, out.restarts, out.bursts)
		}
		if err := t.AddRow(float64(idx), float64(out.bursts), float64(out.decoded),
			float64(out.typedErrs), float64(out.injected),
			float64(out.restarts), float64(out.panics), float64(out.stalls)); err != nil {
			return nil, err
		}
		t.Notes = append(t.Notes, fmt.Sprintf("scenario %d: %s — %s", idx, sc.Name, sc.Description))
	}
	t.Notes = append(t.Notes,
		"contract: decoded + typed_errors + restarts ≥ bursts for every scenario (no silent loss, no crash, no deadlock)",
		"run one scenario with mimonet-sim -exp e22 -scenario <name>")
	return t, nil
}

// scenarioUsesFlowgraph reports whether sc injects sample- or block-level
// faults (or is the clean baseline).
func scenarioUsesFlowgraph(sc faults.Scenario) bool {
	return sc.SampleDrop > 0 || sc.SampleDup > 0 || sc.BurstErasure > 0 ||
		sc.GainGlitch > 0 || sc.TimingJump > 0 || sc.CorruptSIG > 0 ||
		sc.PanicAfter >= 0 || sc.StallAfter >= 0 || !scenarioUsesDatagrams(sc)
}

// scenarioUsesDatagrams reports whether sc injects UDP link faults.
func scenarioUsesDatagrams(sc faults.Scenario) bool {
	return sc.DgramLoss > 0 || sc.DgramTrunc > 0 || sc.DgramCorrupt > 0 || sc.DgramReorder > 0
}

// runChaosFlowgraph pushes bursts through a supervised flowgraph with the
// scenario's injector and scripted misbehaviour in the middle.
func runChaosFlowgraph(opt Options, sc faults.Scenario, bursts int, out *scenarioOutcome) error {
	tx, err := phy.NewTransmitter(phy.TxConfig{MCS: 8, ScramblerSeed: 0x5D})
	if err != nil {
		return err
	}
	ch, err := channel.New(channel.Config{NumTX: 2, NumRX: 2, Model: channel.FlatRayleigh,
		SNRdB: 28, Seed: opt.Seed ^ 0xE22, TimingOffset: 240, TrailingSilence: 90})
	if err != nil {
		return err
	}
	rcv, err := phy.NewReceiver(phy.RxConfig{NumAntennas: 2, Detector: "mmse"})
	if err != nil {
		return err
	}
	inj := faults.NewInjector(sc, opt.Seed)
	r := rand.New(rand.NewSource(opt.Seed ^ 0x22))
	sent := 0
	// The packet-ID relay mirrors the cross-process wiring of the binaries:
	// the TX block publishes each burst's ID, the RX block consumes one per
	// decode. Under chaos a burst may vanish mid-graph, so the pop is
	// best-effort (0 = unknown) rather than assumed aligned.
	ids := make(chan uint64, 64)
	txb := &blocks.TXBlock{TX: tx, NextPayload: func() ([]byte, error) {
		if sent >= bursts {
			return nil, io.EOF
		}
		sent++
		p := make([]byte, opt.PayloadLen)
		r.Read(p)
		return p, nil
	}, OnBurst: func(packetID uint64, _ uint16) {
		select {
		case ids <- packetID:
		default:
		}
	}}
	ib := &faults.InjectBlock{BlockName: "inject", Ports: 2, Inj: inj}
	pb := &faults.PanicBlock{BlockName: "chaos-panic", Ports: 2, After: sc.PanicAfter}
	sb := &faults.StallBlock{BlockName: "chaos-stall", Ports: 2, After: sc.StallAfter}
	cb := &blocks.ChannelBlock{Ch: ch}
	rxb := &blocks.RXBlock{RX: rcv, Antennas: 2, OnReport: func(rep blocks.RXReport) {
		if rep.Err == nil {
			out.decoded++
		} else {
			out.typedErrs++
		}
	}, NextPacketID: func() uint64 {
		select {
		case id := <-ids:
			return id
		default:
			return 0
		}
	}}
	g := flowgraph.New()
	chain := []flowgraph.Block{txb, ib, pb, sb, cb, rxb}
	for _, b := range chain {
		if err := g.Add(b); err != nil {
			return err
		}
	}
	for i := 0; i+1 < len(chain); i++ {
		for p := 0; p < 2; p++ {
			if err := g.Connect(chain[i], p, chain[i+1], p); err != nil {
				return err
			}
		}
	}
	if err := g.SetPolicy(chaosPolicy); err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := g.Run(ctx); err != nil {
		// A typed failure (restart budget exhausted, unrecoverable block) is
		// an accepted outcome; a deadline means the graph wedged — the exact
		// crash/deadlock class the campaign exists to catch.
		if ctx.Err() != nil {
			return fmt.Errorf("graph wedged: %w", err)
		}
		if _, ok := flowgraph.AsBlockError(err); !ok {
			return fmt.Errorf("untyped graph failure: %w", err)
		}
		out.typedErrs++
	}
	for _, h := range g.Health() {
		out.restarts += h.Restarts
		out.panics += h.Panics
		out.stalls += h.Stalls
	}
	out.bursts += bursts
	out.injected += inj.Counts().Total()
	return nil
}

// runChaosUDP pushes bursts over the loopback UDP radio link with the
// scenario's datagram mangler installed in the sender.
func runChaosUDP(opt Options, sc faults.Scenario, bursts int, out *scenarioOutcome) error {
	tx, err := phy.NewTransmitter(phy.TxConfig{MCS: 8, ScramblerSeed: 0x5D})
	if err != nil {
		return err
	}
	ch, err := channel.New(channel.Config{NumTX: 2, NumRX: 2, Model: channel.FlatRayleigh,
		SNRdB: 28, Seed: opt.Seed ^ 0xDA7A, TimingOffset: 240, TrailingSilence: 90})
	if err != nil {
		return err
	}
	rcv, err := phy.NewReceiver(phy.RxConfig{NumAntennas: 2, Detector: "mmse"})
	if err != nil {
		return err
	}
	urx, err := radio.NewUDPReceiver("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer urx.Close()
	utx, err := radio.NewUDPSender(urx.Addr().String(), 2)
	if err != nil {
		return err
	}
	defer utx.Close()
	inj := faults.NewInjector(sc, opt.Seed)
	utx.Intercept = inj.MangleDatagram
	r := rand.New(rand.NewSource(opt.Seed ^ 0xDA7A))
	for i := 0; i < bursts; i++ {
		p := make([]byte, opt.PayloadLen)
		r.Read(p)
		frame := &mac.Frame{Seq: uint16(i), Payload: p}
		psdu, err := frame.Encode()
		if err != nil {
			return err
		}
		burst, err := tx.Transmit(psdu)
		if err != nil {
			return err
		}
		faded, err := ch.Apply(burst)
		if err != nil {
			return err
		}
		werr := make(chan error, 1)
		go func() { werr <- utx.WriteBurst(faded) }()
		rx, rerr := urx.ReadBurst(5 * time.Second)
		if err := <-werr; err != nil {
			return err
		}
		if rerr != nil {
			// Typed transport failure (timeout on a lost tail, mid-burst
			// shape change from corruption): an accepted outcome.
			out.typedErrs++
			continue
		}
		if res, derr := rcv.Receive(rx); derr == nil {
			if _, merr := mac.Decode(res.PSDU); merr == nil {
				out.decoded++
			} else {
				out.typedErrs++
			}
		} else {
			out.typedErrs++
		}
	}
	out.bursts += bursts
	out.injected += inj.Counts().Total()
	return nil
}
