package sim

import (
	"bytes"
	"math/rand"

	"repro/internal/channel"
	"repro/internal/mac"
	"repro/internal/phy"
)

func init() {
	register("e16", E16Aggregation)
}

// E16Aggregation measures the error-containment property of A-MPDU
// aggregation across the full PHY: the same 4000 octets of payload are sent
// either as one monolithic MPDU (any bit error kills everything) or as an
// A-MPDU of 8 × 500-octet subframes (errors cost only the hit subframes).
// Reported per SNR: goodput fraction (delivered payload / offered payload).
func E16Aggregation(opt Options) (*Table, error) {
	t := &Table{
		ID:      "E16",
		Title:   "Extension: A-MPDU error containment (TGn-B 2x2, MCS12, 4000-octet burst)",
		Columns: []string{"snr_db", "monolithic_goodput", "ampdu8_goodput", "ampdu_subframe_per"},
	}
	snrs := []float64{16, 19, 22, 25, 28, 31}
	bursts := opt.Packets / 4
	if bursts < 5 {
		bursts = 5
	}
	if opt.Quick {
		snrs = []float64{19, 27}
		bursts = 5
	}
	const (
		subframes   = 8
		subPayload  = 500
		totalOctets = subframes * subPayload
	)
	r := rand.New(rand.NewSource(opt.Seed + 16))
	for _, snrDB := range snrs {
		var monoDelivered, ampduDelivered, offered float64
		var subLost, subTotal int
		for b := 0; b < bursts; b++ {
			payload := make([]byte, totalOctets)
			r.Read(payload)
			offered += totalOctets

			// Monolithic: one MPDU carrying everything.
			mono := &mac.Frame{Seq: uint16(b), Payload: payload}
			monoPSDU, err := mono.Encode()
			if err != nil {
				return nil, err
			}
			rxPSDU, err := crossPHY(monoPSDU, snrDB, opt.Seed+int64(b)*101+int64(snrDB))
			if err == nil {
				if got, derr := mac.Decode(rxPSDU); derr == nil && bytes.Equal(got.Payload, payload) {
					monoDelivered += totalOctets
				}
			}

			// A-MPDU: 8 subframes with independent FCS.
			frames := make([]*mac.Frame, subframes)
			for i := range frames {
				frames[i] = &mac.Frame{
					Seq:     uint16(b*subframes + i),
					Payload: payload[i*subPayload : (i+1)*subPayload],
				}
			}
			ampdu, err := mac.Aggregate(frames)
			if err != nil {
				return nil, err
			}
			rxPSDU, err = crossPHY(ampdu, snrDB, opt.Seed+int64(b)*101+int64(snrDB))
			subTotal += subframes
			if err != nil {
				subLost += subframes
				continue
			}
			results := mac.Deaggregate(rxPSDU)
			recovered := map[uint16]bool{}
			for _, res := range results {
				if res.Err == nil {
					recovered[res.Frame.Seq] = true
				}
			}
			for i := range frames {
				if recovered[frames[i].Seq] {
					ampduDelivered += subPayload
				} else {
					subLost++
				}
			}
		}
		subPER := 0.0
		if subTotal > 0 {
			subPER = float64(subLost) / float64(subTotal)
		}
		if err := t.AddRow(snrDB, monoDelivered/offered, ampduDelivered/offered, subPER); err != nil {
			return nil, err
		}
	}
	t.Notes = append(t.Notes,
		"both columns carry the same 4000 payload octets per burst at the same MCS",
		"expected: in the waterfall region A-MPDU delivers a large fraction while the monolithic frame delivers ~0; the two converge at high SNR (A-MPDU pays slightly more overhead)")
	return t, nil
}

// crossPHY sends one PSDU across TX → TGn-B → RX and returns the received
// PSDU (whatever decoded, FCS unchecked) or an error on sync/PHY failure.
func crossPHY(psdu []byte, snrDB float64, seed int64) ([]byte, error) {
	tx, err := phy.NewTransmitter(phy.TxConfig{MCS: 12, ScramblerSeed: byte(seed)&0x7F | 1})
	if err != nil {
		return nil, err
	}
	burst, err := tx.Transmit(psdu)
	if err != nil {
		return nil, err
	}
	ch, err := channel.New(channel.Config{NumTX: 2, NumRX: 2, Model: channel.TGnB,
		SNRdB: snrDB, Seed: seed, TimingOffset: 220, TrailingSilence: 90})
	if err != nil {
		return nil, err
	}
	rxs, err := ch.Apply(burst)
	if err != nil {
		return nil, err
	}
	rcv, err := phy.NewReceiver(phy.RxConfig{NumAntennas: 2, Detector: "mmse"})
	if err != nil {
		return nil, err
	}
	res, err := rcv.Receive(rxs)
	if err != nil {
		return nil, err
	}
	return res.PSDU, nil
}
