package sim

import (
	"math"
	"math/rand"

	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/phy"
	"repro/internal/ratectl"
)

func init() {
	register("e14", E14LinkAdaptation)
}

// E14LinkAdaptation is the extension experiment that closes the paper's
// motivation loop: the fine-grained SNR estimation drives MCS selection.
// A station experiences a block-fading TGn-C channel whose mean SNR walks
// between sweeps; compare long-run goodput of fixed MCS choices against the
// SNR-adaptive selector.
func E14LinkAdaptation(opt Options) (*Table, error) {
	t := &Table{
		ID:    "E14",
		Title: "Extension: SNR-driven link adaptation vs fixed MCS (TGn-C 2x2, time-varying SNR)",
		Columns: []string{"mean_snr_db",
			"fixed_mcs9_mbps", "fixed_mcs12_mbps", "fixed_mcs15_mbps", "adaptive_mbps", "adaptive_mean_mcs"},
	}
	meanSNRs := []float64{12, 18, 24, 30}
	packets := opt.Packets
	if opt.Quick {
		meanSNRs = []float64{15, 27}
		packets = 20
	}
	for _, mean := range meanSNRs {
		row := []float64{mean}
		for _, mcs := range []int{9, 12, 15} {
			g, _, err := adaptRun(mean, packets, opt, &fixedPolicy{mcs: mcs})
			if err != nil {
				return nil, err
			}
			row = append(row, g)
		}
		sel, err := ratectl.NewSelector(ratectl.DefaultThresholds(), 2)
		if err != nil {
			return nil, err
		}
		g, meanMCS, err := adaptRun(mean, packets, opt, &adaptivePolicy{sel: sel})
		if err != nil {
			return nil, err
		}
		row = append(row, g, meanMCS)
		if err := t.AddRow(row...); err != nil {
			return nil, err
		}
	}
	t.Notes = append(t.Notes,
		"instantaneous SNR = mean + uniform ±6 dB per packet (slow shadowing walk)",
		"expected: each fixed MCS wins only near its own operating point; adaptation tracks the upper envelope")
	return t, nil
}

// policy picks the MCS for the next packet and learns from the outcome.
type policy interface {
	next() int
	learn(rep *core.TransferReport)
}

type fixedPolicy struct{ mcs int }

func (p *fixedPolicy) next() int                      { return p.mcs }
func (p *fixedPolicy) learn(rep *core.TransferReport) {}

type adaptivePolicy struct{ sel *ratectl.Selector }

func (p *adaptivePolicy) next() int { return p.sel.Current() }
func (p *adaptivePolicy) learn(rep *core.TransferReport) {
	if !rep.OK {
		p.sel.OnLoss()
		return
	}
	p.sel.Observe(rep.SNRdB)
}

// adaptRun sends packets while the channel SNR wanders, rebuilding the link
// whenever the policy switches MCS (a new link keeps PHY state consistent;
// the channel seed sequence is deterministic per packet index so every
// policy sees the same SNR trajectory). Returns goodput in Mbit/s and the
// mean MCS index used.
func adaptRun(meanSNR float64, packets int, opt Options, pol policy) (float64, float64, error) {
	r := rand.New(rand.NewSource(opt.Seed + int64(meanSNR)*31))
	payload := make([]byte, opt.PayloadLen)
	var deliveredBits, mcsSum float64
	var airtime float64 // µs spent transmitting
	for p := 0; p < packets; p++ {
		snr := meanSNR + (r.Float64()*12 - 6)
		mcs := pol.next()
		mcsSum += float64(mcs)
		link, err := core.NewLink(core.LinkConfig{
			MCS:      mcs,
			Detector: "mmse",
			Channel: channel.Config{Model: channel.TGnC, SNRdB: snr,
				Seed: opt.Seed + int64(p)*7919},
		})
		if err != nil {
			return 0, 0, err
		}
		r.Read(payload)
		rep, err := link.Send(payload)
		if err != nil {
			return 0, 0, err
		}
		pol.learn(rep)
		m, err := phy.Lookup(mcs)
		if err != nil {
			return 0, 0, err
		}
		airtime += float64(phy.BurstLen(m, opt.PayloadLen+28)) / 20.0 // µs at 20 MHz
		if rep.OK {
			deliveredBits += float64(8 * opt.PayloadLen)
		}
	}
	if airtime == 0 {
		return 0, 0, nil
	}
	goodput := deliveredBits / airtime // bits per µs == Mbit/s
	if math.IsNaN(goodput) {
		goodput = 0
	}
	return goodput, mcsSum / float64(packets), nil
}
