package sim

import (
	"math"
	"math/rand"

	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/montecarlo"
	"repro/internal/phy"
)

func init() {
	register("e4", E4Throughput)
	register("e5", E5PERvsSNR)
}

// runPER measures the packet error rate of one link configuration.
func runPER(cfg core.LinkConfig, packets, payloadLen int, seed int64) (*metrics.PER, float64, error) {
	cfg.Channel.Seed = seed
	link, err := core.NewLink(cfg)
	if err != nil {
		return nil, 0, err
	}
	r := rand.New(rand.NewSource(seed ^ 0x5555))
	payload := make([]byte, payloadLen)
	var per metrics.PER
	var snrAcc float64
	snrCount := 0
	for p := 0; p < packets; p++ {
		r.Read(payload)
		rep, err := link.Send(payload)
		if err != nil {
			return nil, 0, err
		}
		per.Add(rep.OK)
		if !rep.SyncError {
			snrAcc += rep.SNRdB
			snrCount++
		}
	}
	meanSNR := math.NaN()
	if snrCount > 0 {
		meanSNR = snrAcc / float64(snrCount)
	}
	return &per, meanSNR, nil
}

// E4Throughput sweeps effective throughput (PHY rate × (1−PER)) vs SNR for
// one- and two-stream MCS over the TGn-B channel — the paper's headline
// spatial-multiplexing claim: two streams roughly double throughput once
// SNR is sufficient.
func E4Throughput(opt Options) (*Table, error) {
	t := &Table{
		ID:    "E4",
		Title: "Effective throughput vs SNR, SISO vs 2x2 spatial multiplexing (TGn-B, MMSE)",
		Columns: []string{"snr_db",
			"mcs3_1ss_mbps", "mcs4_1ss_mbps", "mcs7_1ss_mbps",
			"mcs11_2ss_mbps", "mcs12_2ss_mbps", "mcs15_2ss_mbps",
			"best_1ss", "best_2ss"},
	}
	snrs := []float64{5, 10, 15, 20, 25, 30, 35}
	packets := opt.Packets
	if opt.Quick {
		snrs = []float64{10, 25}
		packets = 10
	}
	mcsSet := []int{3, 4, 7, 11, 12, 15}
	// One shard per (SNR, MCS) cell. Each cell already owns a full random
	// stream derived from (seed, MCS, SNR) — the same formula the legacy
	// serial loop used — so the sharded tables match it bit for bit.
	rates, err := montecarlo.Map(len(snrs)*len(mcsSet), opt.Workers,
		func(shard int) (float64, error) {
			snrDB := snrs[shard/len(mcsSet)]
			idx := mcsSet[shard%len(mcsSet)]
			per, _, err := runPER(core.LinkConfig{
				MCS:      idx,
				Detector: "mmse",
				Channel:  channel.Config{Model: channel.TGnB, SNRdB: snrDB},
			}, packets, opt.PayloadLen, opt.Seed+int64(idx)*1000+int64(snrDB))
			if err != nil {
				return 0, err
			}
			return per.Rate(), nil
		})
	if err != nil {
		return nil, err
	}
	for si, snrDB := range snrs {
		row := []float64{snrDB}
		best1, best2 := 0.0, 0.0
		for mi, idx := range mcsSet {
			m, err := phy.Lookup(idx)
			if err != nil {
				return nil, err
			}
			tput := m.DataRateMbps() * (1 - rates[si*len(mcsSet)+mi])
			row = append(row, tput)
			if m.NSS == 1 && tput > best1 {
				best1 = tput
			}
			if m.NSS == 2 && tput > best2 {
				best2 = tput
			}
		}
		row = append(row, best1, best2)
		if err := t.AddRow(row...); err != nil {
			return nil, err
		}
	}
	t.Notes = append(t.Notes,
		"expected shape: best_2ss ≈ 2×best_1ss at high SNR; crossover at low SNR where 2-stream PER dominates")
	return t, nil
}

// E5PERvsSNR sweeps the packet error rate of the two-stream MCS over TGn-B,
// the curve family the paper's validation plots.
func E5PERvsSNR(opt Options) (*Table, error) {
	t := &Table{
		ID:      "E5",
		Title:   "PER vs SNR per 2-stream MCS (TGn-B 2x2, MMSE, 1000-byte MPDU)",
		Columns: []string{"snr_db", "mcs8", "mcs9", "mcs11", "mcs13", "mcs15"},
	}
	snrs := []float64{2, 6, 10, 14, 18, 22, 26, 30, 34}
	packets := opt.Packets
	payload := 1000
	if opt.Quick {
		snrs = []float64{6, 18, 30}
		packets = 10
		payload = 200
	}
	mcsSet := []int{8, 9, 11, 13, 15}
	// One shard per (SNR, MCS) cell, preserving the legacy per-cell seed
	// formula so the table matches the serial run bit for bit.
	rates, err := montecarlo.Map(len(snrs)*len(mcsSet), opt.Workers,
		func(shard int) (float64, error) {
			snrDB := snrs[shard/len(mcsSet)]
			idx := mcsSet[shard%len(mcsSet)]
			per, _, err := runPER(core.LinkConfig{
				MCS:      idx,
				Detector: "mmse",
				Channel:  channel.Config{Model: channel.TGnB, SNRdB: snrDB},
			}, packets, payload, opt.Seed+int64(idx)*77+int64(snrDB))
			if err != nil {
				return 0, err
			}
			return per.Rate(), nil
		})
	if err != nil {
		return nil, err
	}
	for si, snrDB := range snrs {
		row := []float64{snrDB}
		for mi := range mcsSet {
			row = append(row, rates[si*len(mcsSet)+mi])
		}
		if err := t.AddRow(row...); err != nil {
			return nil, err
		}
	}
	t.Notes = append(t.Notes, "waterfalls ordered by MCS; 10% PER points spaced a few dB apart")
	return t, nil
}
