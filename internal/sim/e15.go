package sim

import (
	"math"

	"repro/internal/est"
	"repro/internal/ofdm"
	"repro/internal/phy"
	"repro/internal/spectral"
)

func init() {
	register("e15", E15TransmitSpectrum)
}

// E15TransmitSpectrum validates the transmitted waveform itself — the
// spectrum and PAPR figures every SDR implementation paper shows: the Welch
// PSD across the 64 subcarrier positions (flat over the occupied ±28 tones,
// nulled at DC and the band edges), the occupied-bandwidth fraction, and
// the PAPR CCDF of the OFDM burst.
func E15TransmitSpectrum(opt Options) (*Table, error) {
	t := &Table{
		ID:      "E15",
		Title:   "Transmit spectrum and PAPR (MCS9 burst, chain 0)",
		Columns: []string{"freq_mhz", "psd_db", "ccdf_threshold_db", "ccdf_prob"},
	}
	psduLen := 4000
	if opt.Quick {
		psduLen = 800
	}
	tx, err := phy.NewTransmitter(phy.TxConfig{MCS: 9, ScramblerSeed: 0x4C})
	if err != nil {
		return nil, err
	}
	burst, err := tx.Transmit(make([]byte, psduLen))
	if err != nil {
		return nil, err
	}
	sig := burst[0]
	psd, err := spectral.PSD(sig, ofdm.FFTSize)
	if err != nil {
		return nil, err
	}
	thresholds := []float64{0, 2, 4, 6, 8, 10, 12}
	ccdf, err := spectral.CCDF(sig, thresholds)
	if err != nil {
		return nil, err
	}
	// Rows: one per frequency bin (ordered −10..+10 MHz); the CCDF columns
	// fill the first len(thresholds) rows and are NaN elsewhere.
	rows := 0
	for k := -ofdm.FFTSize / 2; k < ofdm.FFTSize/2; k++ {
		bin := (k + ofdm.FFTSize) % ofdm.FFTSize
		freqMHz := float64(k) * ofdm.SampleRate / float64(ofdm.FFTSize) / 1e6
		thDB, prob := math.NaN(), math.NaN()
		if rows < len(thresholds) {
			thDB, prob = thresholds[rows], ccdf[rows]
		}
		if err := t.AddRow(freqMHz, est.DB(psd[bin]), thDB, prob); err != nil {
			return nil, err
		}
		rows++
	}
	occ, err := spectral.OccupiedBandwidth(psd, 58)
	if err != nil {
		return nil, err
	}
	papr, err := spectral.PAPR(sig)
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes,
		"psd_db per 312.5 kHz bin, relative to total power 0 dB",
		formatCell(occ*100)+"% of power inside ±29 bins (occupied band); burst PAPR "+formatCell(papr)+" dB",
		"expected: flat plateau over ±(0.3..8.8) MHz, DC null, >30 dB rolloff outside; PAPR 8-12 dB with a Gaussian-like CCDF")
	return t, nil
}
