package sim

import (
	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/ofdm"
)

func init() {
	register("e21", E21SyncModes)
}

// E21SyncModes compares the receiver's two synchronization modes at link
// level: the preamble-based chain (STF autocorrelation + LTF fine CFO) and
// the paper's MIMO-extended Van de Beek CP-ML estimator running on the
// cyclic prefixes. PER vs SNR under a 10 kHz CFO; both modes share
// detection and fine timing, so the column difference isolates the CFO
// estimator.
func E21SyncModes(opt Options) (*Table, error) {
	t := &Table{
		ID:      "E21",
		Title:   "Extension: preamble sync vs Van de Beek CP-ML sync (identity channel + 10 kHz CFO, MCS9, 800-octet MPDU)",
		Columns: []string{"snr_db", "per_preamble", "per_cpml"},
	}
	snrs := []float64{4, 6, 8, 10, 14, 18, 24}
	packets := opt.Packets / 4
	if packets < 10 {
		packets = 10
	}
	if opt.Quick {
		snrs = []float64{8, 18}
		packets = 10
	}
	for _, snrDB := range snrs {
		row := []float64{snrDB}
		for _, cpml := range []bool{false, true} {
			per, _, err := runPER(core.LinkConfig{
				MCS:      9,
				Detector: "mmse",
				CPMLSync: cpml,
				Channel: channel.Config{Model: channel.Identity, SNRdB: snrDB,
					CFOHz: 10e3, SampleRate: ofdm.SampleRate},
			}, packets, 800, opt.Seed+int64(snrDB)*11+21)
			if err != nil {
				return nil, err
			}
			row = append(row, per.Rate())
		}
		if err := t.AddRow(row...); err != nil {
			return nil, err
		}
	}
	t.Notes = append(t.Notes,
		"both modes share STF detection and LTF fine timing; only the CFO estimator differs",
		"expected: near-identical waterfalls — the CP-ML estimator matches the training-based one while needing no training fields, the paper's argument for it")
	return t, nil
}
