package sim

import (
	"math"
	"math/rand"

	"repro/internal/cmatrix"
	"repro/internal/metrics"
	"repro/internal/mimo"
	"repro/internal/modem"
	"repro/internal/stbc"
)

func init() {
	register("e13", E13STBCvsSM)
}

// E13STBCvsSM is the extension experiment: it contrasts the paper's spatial
// multiplexing with Alamouti STBC at equal spectral efficiency over flat
// Rayleigh fading with two transmit antennas.
//
// To transmit 4 bits per channel use with 2 TX antennas one can either
// spatially multiplex two QPSK streams (the paper's technique; rate 2,
// diversity limited) or send one 16-QAM stream through the Alamouti code
// (rate 1, full diversity). The crossover between the curves is the classic
// multiplexing-diversity trade.
func E13STBCvsSM(opt Options) (*Table, error) {
	t := &Table{
		ID:    "E13",
		Title: "Extension: spatial multiplexing vs Alamouti STBC at 4 bit/channel-use (flat Rayleigh, 2 TX)",
		Columns: []string{"snr_db",
			"sm_2xqpsk_mmse_2rx", "stbc_16qam_1rx", "stbc_16qam_2rx"},
	}
	snrs := []float64{0, 4, 8, 12, 16, 20, 24, 28}
	trials := opt.Packets * 10
	if opt.Quick {
		snrs = []float64{8, 20}
		trials = 400
	}
	r := rand.New(rand.NewSource(opt.Seed + 13))
	qpsk := modem.NewMapper(modem.QPSK)
	qam := modem.NewMapper(modem.QAM16)
	qamDem := modem.NewDemapper(modem.QAM16)
	scale := complex(math.Sqrt2/2, 0) // 1/√2 per-antenna power split
	for _, snrDB := range snrs {
		noiseVar := 1.0 / math.Pow(10, snrDB/10)
		sigma := math.Sqrt(noiseVar / 2)
		var smBER, stbc1BER, stbc2BER metrics.BER
		llr := make([][]float64, 2)
		for trial := 0; trial < trials; trial++ {
			// --- Spatial multiplexing: 2 QPSK streams, 2 RX, MMSE ------
			bits := make([]byte, 4)
			for i := range bits {
				bits[i] = byte(r.Intn(2))
			}
			x := []complex128{qpsk.MapOne(bits[:2]) * scale, qpsk.MapOne(bits[2:]) * scale}
			h := cmatrix.New(2, 2)
			for i := range h.Data {
				h.Data[i] = rayleigh(r)
			}
			y := h.MulVec(x)
			for a := range y {
				y[a] += complex(r.NormFloat64()*sigma, r.NormFloat64()*sigma)
			}
			// Fold the power split into the effective channel so the
			// detector slices unit-power QPSK.
			heff := h.Clone()
			heff.ScaleInPlace(scale)
			det := mimo.NewMMSE(modem.QPSK, 2)
			if err := det.Prepare([]*cmatrix.Matrix{heff}, noiseVar); err != nil {
				continue // singular draw
			}
			llr[0], llr[1] = llr[0][:0], llr[1][:0]
			var err error
			llr, err = det.Detect(llr, 0, y)
			if err != nil {
				return nil, err
			}
			for i := 0; i < 4; i++ {
				hard := byte(0)
				if llr[i/2][i%2] < 0 {
					hard = 1
				}
				smBER.Add(int64(boolToInt(hard != bits[i])), 1)
			}

			// --- Alamouti: one 16-QAM symbol pair, 1 and 2 RX ----------
			qbits := make([]byte, 8)
			for i := range qbits {
				qbits[i] = byte(r.Intn(2))
			}
			s := []complex128{qam.MapOne(qbits[:4]), qam.MapOne(qbits[4:])}
			tx0, tx1, err := stbc.Encode(s)
			if err != nil {
				return nil, err
			}
			for i := range tx0 {
				tx0[i] *= scale
				tx1[i] *= scale
			}
			hs := [][2]complex128{
				{rayleigh(r), rayleigh(r)},
				{rayleigh(r), rayleigh(r)},
			}
			rx := make([][]complex128, 2)
			for a := 0; a < 2; a++ {
				rx[a] = []complex128{
					hs[a][0]*tx0[0] + hs[a][1]*tx1[0] + complex(r.NormFloat64()*sigma, r.NormFloat64()*sigma),
					hs[a][0]*tx0[1] + hs[a][1]*tx1[1] + complex(r.NormFloat64()*sigma, r.NormFloat64()*sigma),
				}
			}
			for _, nrx := range []int{1, 2} {
				dec, _, err := stbc.Decode(rx[:nrx], hs[:nrx])
				if err != nil {
					return nil, err
				}
				for i := range dec {
					dec[i] *= complex(math.Sqrt2, 0) // undo the power split
				}
				got := qamDem.Hard(dec)
				ber := &stbc1BER
				if nrx == 2 {
					ber = &stbc2BER
				}
				for i := range qbits {
					ber.Add(int64(boolToInt(got[i] != qbits[i])), 1)
				}
			}
		}
		if err := t.AddRow(snrDB, smBER.Rate(), stbc1BER.Rate(), stbc2BER.Rate()); err != nil {
			return nil, err
		}
	}
	t.Notes = append(t.Notes,
		"all schemes: unit total TX power, 4 information bits per channel use",
		"expected: SM wins at low SNR (smaller constellation); STBC curves cross below it as the diversity slope takes over; 2-RX STBC steepest")
	return t, nil
}

func rayleigh(r *rand.Rand) complex128 {
	return complex(r.NormFloat64(), r.NormFloat64()) * complex(math.Sqrt(0.5), 0)
}
