package sim

import (
	"math"
	"math/rand"

	"repro/internal/cmatrix"
	"repro/internal/fec"
	"repro/internal/metrics"
	"repro/internal/mimo"
	"repro/internal/modem"
	"repro/internal/ofdm"
)

func init() {
	register("e1", E1UncodedBER)
	register("e2", E2FECGain)
	register("e3", E3DetectorComparison)
}

// qfunc is the Gaussian tail probability Q(x).
func qfunc(x float64) float64 { return 0.5 * math.Erfc(x/math.Sqrt2) }

// theoryBER returns the AWGN bit error probability of the scheme at the
// given per-symbol linear SNR (standard Gray-mapped approximations).
func theoryBER(s modem.Scheme, snr float64) float64 {
	switch s {
	case modem.BPSK:
		return qfunc(math.Sqrt(2 * snr))
	case modem.QPSK:
		return qfunc(math.Sqrt(snr))
	case modem.QAM16:
		return 0.75 * qfunc(math.Sqrt(snr/5))
	case modem.QAM64:
		return 7.0 / 12 * qfunc(math.Sqrt(snr/21))
	}
	return math.NaN()
}

// E1UncodedBER sweeps uncoded BER vs SNR for every constellation over SISO
// OFDM in AWGN, against theory. Validates the modulation, OFDM and noise
// calibration that every later experiment stands on.
func E1UncodedBER(opt Options) (*Table, error) {
	t := &Table{
		ID:    "E1",
		Title: "Uncoded SISO OFDM BER vs SNR (AWGN)",
		Columns: []string{"snr_db",
			"bpsk", "bpsk_theory", "qpsk", "qpsk_theory",
			"qam16", "qam16_theory", "qam64", "qam64_theory"},
	}
	snrs := []float64{0, 2, 4, 6, 8, 10, 12, 14, 16, 18, 20, 22, 24}
	symbolsPerPoint := 200
	if opt.Quick {
		snrs = []float64{4, 10, 16}
		symbolsPerPoint = 40
	}
	r := rand.New(rand.NewSource(opt.Seed))
	mod := ofdm.NewModulator(ofdm.HTToneMap)
	dem := ofdm.NewDemodulator(ofdm.HTToneMap)
	schemes := []modem.Scheme{modem.BPSK, modem.QPSK, modem.QAM16, modem.QAM64}
	for _, snrDB := range snrs {
		row := []float64{snrDB}
		snr := math.Pow(10, snrDB/10)
		sigma := math.Sqrt(1 / snr / 2)
		for _, scheme := range schemes {
			mapper := modem.NewMapper(scheme)
			demapper := modem.NewDemapper(scheme)
			var ber metrics.BER
			nbits := 52 * scheme.BitsPerSymbol()
			bits := make([]byte, nbits)
			sym := make([]complex128, ofdm.SymbolLen)
			for s := 0; s < symbolsPerPoint; s++ {
				for i := range bits {
					bits[i] = byte(r.Intn(2))
				}
				tones, err := mapper.Map(bits)
				if err != nil {
					return nil, err
				}
				if err := mod.Symbol(sym, tones, []complex128{1, 1, 1, -1}); err != nil {
					return nil, err
				}
				body := append([]complex128(nil), sym[ofdm.CPLen:]...)
				for i := range body {
					body[i] += complex(r.NormFloat64()*sigma, r.NormFloat64()*sigma)
				}
				data, _, err := dem.Symbol(body, nil, nil)
				if err != nil {
					return nil, err
				}
				got := demapper.Hard(data)
				if err := ber.AddBits(bits, got); err != nil {
					return nil, err
				}
			}
			row = append(row, ber.Rate(), theoryBER(scheme, snr))
		}
		if err := t.AddRow(row...); err != nil {
			return nil, err
		}
	}
	t.Notes = append(t.Notes, "theory: Gray-mapped AWGN approximations; per-symbol SNR equals per-sample SNR (unit-power tones)")
	return t, nil
}

// E2FECGain measures the coding gain of the concatenated FEC (the paper's
// packet-construction feature): coded vs uncoded BER for QPSK at rates 1/2
// and 3/4 over AWGN, soft-decision Viterbi.
func E2FECGain(opt Options) (*Table, error) {
	t := &Table{
		ID:      "E2",
		Title:   "FEC concatenation gain, QPSK (AWGN, soft Viterbi)",
		Columns: []string{"snr_db", "uncoded", "rate_1_2", "rate_3_4"},
	}
	snrs := []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	blockBits := 2400
	blocks := 30
	if opt.Quick {
		snrs = []float64{2, 5, 8}
		blocks = 6
	}
	r := rand.New(rand.NewSource(opt.Seed + 2))
	mapper := modem.NewMapper(modem.QPSK)
	demapper := modem.NewDemapper(modem.QPSK)
	vit := fec.NewViterbi()
	for _, snrDB := range snrs {
		snr := math.Pow(10, snrDB/10)
		sigma := math.Sqrt(1 / snr / 2)
		var uncoded metrics.BER
		coded := map[fec.Rate]*metrics.BER{fec.Rate1_2: {}, fec.Rate3_4: {}}
		for b := 0; b < blocks; b++ {
			data := make([]byte, blockBits)
			for i := range data {
				data[i] = byte(r.Intn(2))
			}
			// Uncoded reference.
			tones, err := mapper.Map(data)
			if err != nil {
				return nil, err
			}
			rxTones := addAWGN(r, tones, sigma)
			if err := uncoded.AddBits(data, demapper.Hard(rxTones)); err != nil {
				return nil, err
			}
			// Coded paths.
			for rate, ber := range coded {
				padded := append(append([]byte(nil), data...), make([]byte, 6)...)
				enc := fec.Encode(padded, rate)
				ct, err := mapper.Map(enc)
				if err != nil {
					return nil, err
				}
				rxCT := addAWGN(r, ct, sigma)
				llr := demapper.Soft(rxCT, 2*sigma*sigma, nil)
				dep, err := fec.Depuncture(llr, len(padded), rate)
				if err != nil {
					return nil, err
				}
				dec, err := vit.DecodeSoft(dep, true)
				if err != nil {
					return nil, err
				}
				if err := ber.AddBits(data, dec[:blockBits]); err != nil {
					return nil, err
				}
			}
		}
		if err := t.AddRow(snrDB, uncoded.Rate(), coded[fec.Rate1_2].Rate(), coded[fec.Rate3_4].Rate()); err != nil {
			return nil, err
		}
	}
	t.Notes = append(t.Notes, "same QPSK symbol energy for all columns; coded columns spend it on more (coded) bits")
	return t, nil
}

func addAWGN(r *rand.Rand, x []complex128, sigma float64) []complex128 {
	out := make([]complex128, len(x))
	for i, v := range x {
		out[i] = v + complex(r.NormFloat64()*sigma, r.NormFloat64()*sigma)
	}
	return out
}

// E3DetectorComparison sweeps 2x2 spatial-multiplexing BER for the ZF, MMSE
// and ML detectors over flat Rayleigh fading, QPSK uncoded.
func E3DetectorComparison(opt Options) (*Table, error) {
	t := &Table{
		ID:      "E3",
		Title:   "2x2 spatial multiplexing detector BER vs SNR (flat Rayleigh, QPSK)",
		Columns: []string{"snr_db", "zf", "mmse", "sic", "ml", "siso_ref"},
	}
	snrs := []float64{0, 4, 8, 12, 16, 20, 24, 28}
	chans := 300
	symsPerChan := 20
	if opt.Quick {
		snrs = []float64{8, 16}
		chans = 40
	}
	r := rand.New(rand.NewSource(opt.Seed + 3))
	mapper := modem.NewMapper(modem.QPSK)
	detNames := []string{"zf", "mmse", "sic", "ml"}
	for _, snrDB := range snrs {
		// Per-stream symbol power 1; per-RX signal power = nss = 2.
		noiseVar := 2.0 / math.Pow(10, snrDB/10)
		sigma := math.Sqrt(noiseVar / 2)
		bers := map[string]*metrics.BER{"zf": {}, "mmse": {}, "sic": {}, "ml": {}}
		var siso metrics.BER
		for c := 0; c < chans; c++ {
			h := cmatrix.New(2, 2)
			for i := range h.Data {
				h.Data[i] = complex(r.NormFloat64(), r.NormFloat64()) * complex(math.Sqrt(0.5), 0)
			}
			dets := map[string]mimo.Detector{}
			for _, n := range detNames {
				d, err := mimo.NewDetector(n, modem.QPSK, 2)
				if err != nil {
					return nil, err
				}
				if err := d.Prepare([]*cmatrix.Matrix{h}, noiseVar); err != nil {
					// Singular draw: skip this channel realization.
					dets = nil
					break
				}
				dets[n] = d
			}
			if dets == nil {
				continue
			}
			// SISO reference: same total TX power on one stream, one RX
			// antenna (h00), same noise.
			hSiso := h.At(0, 0)
			llr := make([][]float64, 2)
			for s := 0; s < symsPerChan; s++ {
				bits := [][]byte{{byte(r.Intn(2)), byte(r.Intn(2))}, {byte(r.Intn(2)), byte(r.Intn(2))}}
				x := []complex128{mapper.MapOne(bits[0]), mapper.MapOne(bits[1])}
				y := h.MulVec(x)
				for i := range y {
					y[i] += complex(r.NormFloat64()*sigma, r.NormFloat64()*sigma)
				}
				for name, d := range dets {
					llr[0], llr[1] = llr[0][:0], llr[1][:0]
					var err error
					llr, err = d.Detect(llr, 0, y)
					if err != nil {
						return nil, err
					}
					for i := 0; i < 2; i++ {
						for b := 0; b < 2; b++ {
							hard := byte(0)
							if llr[i][b] < 0 {
								hard = 1
							}
							bers[name].Add(int64(boolToInt(hard != bits[i][b])), 1)
						}
					}
				}
				// SISO: x0 scaled by √2 to use the same total power, noise
				// variance scaled to the same per-RX SNR.
				ySiso := hSiso*x[0]*complex(math.Sqrt2, 0) + complex(r.NormFloat64()*sigma, r.NormFloat64()*sigma)
				eq := ySiso / (hSiso * complex(math.Sqrt2, 0))
				hd := modem.NewDemapper(modem.QPSK).HardOne(nil, eq)
				for b := 0; b < 2; b++ {
					siso.Add(int64(boolToInt(hd[b] != bits[0][b])), 1)
				}
			}
		}
		if err := t.AddRow(snrDB, bers["zf"].Rate(), bers["mmse"].Rate(), bers["sic"].Rate(), bers["ml"].Rate(), siso.Rate()); err != nil {
			return nil, err
		}
	}
	t.Notes = append(t.Notes,
		"siso_ref carries half the bits per use at the same total TX power",
		"expected ordering: ml < sic < mmse < zf at moderate SNR; ml shows a steeper (diversity) slope")
	return t, nil
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}
