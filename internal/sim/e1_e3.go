package sim

import (
	"math"
	"math/rand"

	"repro/internal/cmatrix"
	"repro/internal/fec"
	"repro/internal/metrics"
	"repro/internal/mimo"
	"repro/internal/modem"
	"repro/internal/montecarlo"
	"repro/internal/ofdm"
)

func init() {
	register("e1", E1UncodedBER)
	register("e2", E2FECGain)
	register("e3", E3DetectorComparison)
}

// qfunc is the Gaussian tail probability Q(x).
func qfunc(x float64) float64 { return 0.5 * math.Erfc(x/math.Sqrt2) }

// theoryBER returns the AWGN bit error probability of the scheme at the
// given per-symbol linear SNR (standard Gray-mapped approximations).
func theoryBER(s modem.Scheme, snr float64) float64 {
	switch s {
	case modem.BPSK:
		return qfunc(math.Sqrt(2 * snr))
	case modem.QPSK:
		return qfunc(math.Sqrt(snr))
	case modem.QAM16:
		return 0.75 * qfunc(math.Sqrt(snr/5))
	case modem.QAM64:
		return 7.0 / 12 * qfunc(math.Sqrt(snr/21))
	}
	return math.NaN()
}

// e1State is one worker's private modulation chain and scratch: OFDM
// plans plus every buffer the shard loop touches, so steady-state sharded
// symbol decoding is allocation-free.
type e1State struct {
	mod    *ofdm.Modulator
	dem    *ofdm.Demodulator
	bits   []byte
	sym    []complex128
	body   []complex128
	tones  []complex128
	data   []complex128
	pilots []complex128
	hard   []byte
}

func newE1State() (*e1State, error) {
	return &e1State{
		mod:  ofdm.NewModulator(ofdm.HTToneMap),
		dem:  ofdm.NewDemodulator(ofdm.HTToneMap),
		bits: make([]byte, 52*6), // sized for the widest scheme (64-QAM)
		sym:  make([]complex128, ofdm.SymbolLen),
		body: make([]complex128, ofdm.FFTSize),
		hard: make([]byte, 0, 52*6),
	}, nil
}

// e1Shard measures uncoded BER for one (SNR point, scheme) cell on its own
// seeded random stream.
//
//mimonet:hot
func e1Shard(st *e1State, shard int, seed int64, snrDB float64, scheme modem.Scheme, symbolsPerPoint int) (metrics.BER, error) {
	r := rand.New(rand.NewSource(montecarlo.ShardSeed(seed, shard)))
	mapper := modem.NewMapper(scheme)
	demapper := modem.NewDemapper(scheme)
	snr := math.Pow(10, snrDB/10)
	sigma := math.Sqrt(1 / snr / 2)
	bits := st.bits[:52*scheme.BitsPerSymbol()]
	txPilots := []complex128{1, 1, 1, -1}
	var ber metrics.BER
	for s := 0; s < symbolsPerPoint; s++ {
		for i := range bits {
			bits[i] = byte(r.Intn(2))
		}
		tones, err := mapper.MapTo(st.tones, bits)
		if err != nil {
			return ber, err
		}
		st.tones = tones
		if err := st.mod.Symbol(st.sym, tones, txPilots); err != nil {
			return ber, err
		}
		copy(st.body, st.sym[ofdm.CPLen:])
		for i := range st.body {
			st.body[i] += complex(r.NormFloat64()*sigma, r.NormFloat64()*sigma)
		}
		data, pilots, err := st.dem.Symbol(st.body, st.data[:0], st.pilots[:0])
		if err != nil {
			return ber, err
		}
		st.data, st.pilots = data, pilots
		got := st.hard[:0]
		for _, sym := range data {
			got = demapper.HardOne(got, sym)
		}
		st.hard = got
		if err := ber.AddBits(bits, got); err != nil {
			return ber, err
		}
	}
	return ber, nil
}

// E1UncodedBER sweeps uncoded BER vs SNR for every constellation over SISO
// OFDM in AWGN, against theory. Validates the modulation, OFDM and noise
// calibration that every later experiment stands on. One shard per
// (SNR point, scheme) cell.
func E1UncodedBER(opt Options) (*Table, error) {
	t := &Table{
		ID:    "E1",
		Title: "Uncoded SISO OFDM BER vs SNR (AWGN)",
		Columns: []string{"snr_db",
			"bpsk", "bpsk_theory", "qpsk", "qpsk_theory",
			"qam16", "qam16_theory", "qam64", "qam64_theory"},
	}
	snrs := []float64{0, 2, 4, 6, 8, 10, 12, 14, 16, 18, 20, 22, 24}
	symbolsPerPoint := 200
	if opt.Quick {
		snrs = []float64{4, 10, 16}
		symbolsPerPoint = 40
	}
	schemes := []modem.Scheme{modem.BPSK, modem.QPSK, modem.QAM16, modem.QAM64}
	res, err := montecarlo.Run(len(snrs)*len(schemes), opt.Workers, newE1State,
		func(st *e1State, shard int) (metrics.BER, error) {
			snrDB := snrs[shard/len(schemes)]
			scheme := schemes[shard%len(schemes)]
			return e1Shard(st, shard, opt.Seed, snrDB, scheme, symbolsPerPoint)
		})
	if err != nil {
		return nil, err
	}
	for si, snrDB := range snrs {
		row := []float64{snrDB}
		snr := math.Pow(10, snrDB/10)
		for ci, scheme := range schemes {
			row = append(row, res[si*len(schemes)+ci].Rate(), theoryBER(scheme, snr))
		}
		if err := t.AddRow(row...); err != nil {
			return nil, err
		}
	}
	t.Notes = append(t.Notes, "theory: Gray-mapped AWGN approximations; per-symbol SNR equals per-sample SNR (unit-power tones)")
	return t, nil
}

// e2State is one worker's private coding chain and scratch for E2.
type e2State struct {
	mapper   *modem.Mapper
	demapper *modem.Demapper
	vit      *fec.Viterbi
	data     []byte
	padded   []byte
	tones    []complex128
	noisy    []complex128
	ct       []complex128
	noisyCT  []complex128
	hard     []byte
	llr      []float64
	dep      []float64
	dec      []byte
}

func newE2State() (*e2State, error) {
	return &e2State{
		mapper:   modem.NewMapper(modem.QPSK),
		demapper: modem.NewDemapper(modem.QPSK),
		vit:      fec.NewViterbi(),
	}, nil
}

// e2Result carries one SNR point's counters.
type e2Result struct {
	uncoded, rate12, rate34 metrics.BER
}

// e2Shard measures coded and uncoded QPSK BER for one SNR point on its own
// seeded random stream. The coded rates run in a fixed order (1/2 then 3/4)
// so the shared noise stream is consumed deterministically — the legacy
// loop iterated a map, which randomized the draw order between runs.
//
//mimonet:hot
func e2Shard(st *e2State, shard int, seed int64, snrDB float64, blockBits, blocks int) (e2Result, error) {
	var res e2Result
	r := rand.New(rand.NewSource(montecarlo.ShardSeed(seed+2, shard)))
	snr := math.Pow(10, snrDB/10)
	sigma := math.Sqrt(1 / snr / 2)
	if cap(st.data) < blockBits {
		st.data = make([]byte, blockBits)
		st.padded = make([]byte, blockBits+6)
	}
	data := st.data[:blockBits]
	padded := st.padded[:blockBits+6]
	rates := []struct {
		rate fec.Rate
		ber  *metrics.BER
	}{{fec.Rate1_2, &res.rate12}, {fec.Rate3_4, &res.rate34}}
	for b := 0; b < blocks; b++ {
		for i := range data {
			data[i] = byte(r.Intn(2))
		}
		// Uncoded reference.
		tones, err := st.mapper.MapTo(st.tones, data)
		if err != nil {
			return res, err
		}
		st.tones = tones
		st.noisy = addAWGNInto(st.noisy, r, tones, sigma)
		got := st.hard[:0]
		for _, sym := range st.noisy {
			got = st.demapper.HardOne(got, sym)
		}
		st.hard = got
		if err := res.uncoded.AddBits(data, got); err != nil {
			return res, err
		}
		// Coded paths.
		copy(padded, data)
		for i := blockBits; i < len(padded); i++ {
			padded[i] = 0
		}
		for _, rp := range rates {
			enc := fec.Encode(padded, rp.rate) //mimonet:alloc-ok encoder sizes its own output
			ct, err := st.mapper.MapTo(st.ct, enc)
			if err != nil {
				return res, err
			}
			st.ct = ct
			st.noisyCT = addAWGNInto(st.noisyCT, r, ct, sigma)
			llr := st.llr[:0]
			for _, sym := range st.noisyCT {
				llr = st.demapper.SoftOne(llr, sym, 2*sigma*sigma, 1)
			}
			st.llr = llr
			dep, err := fec.DepunctureInto(st.dep, llr, len(padded), rp.rate)
			if err != nil {
				return res, err
			}
			st.dep = dep
			dec, err := st.vit.DecodeSoftInto(st.dec, dep, true)
			if err != nil {
				return res, err
			}
			st.dec = dec
			if err := rp.ber.AddBits(data, dec[:blockBits]); err != nil {
				return res, err
			}
		}
	}
	return res, nil
}

// E2FECGain measures the coding gain of the concatenated FEC (the paper's
// packet-construction feature): coded vs uncoded BER for QPSK at rates 1/2
// and 3/4 over AWGN, soft-decision Viterbi. One shard per SNR point.
func E2FECGain(opt Options) (*Table, error) {
	t := &Table{
		ID:      "E2",
		Title:   "FEC concatenation gain, QPSK (AWGN, soft Viterbi)",
		Columns: []string{"snr_db", "uncoded", "rate_1_2", "rate_3_4"},
	}
	snrs := []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	blockBits := 2400
	blocks := 30
	if opt.Quick {
		snrs = []float64{2, 5, 8}
		blocks = 6
	}
	res, err := montecarlo.Run(len(snrs), opt.Workers, newE2State,
		func(st *e2State, shard int) (e2Result, error) {
			return e2Shard(st, shard, opt.Seed, snrs[shard], blockBits, blocks)
		})
	if err != nil {
		return nil, err
	}
	for si, snrDB := range snrs {
		if err := t.AddRow(snrDB, res[si].uncoded.Rate(), res[si].rate12.Rate(), res[si].rate34.Rate()); err != nil {
			return nil, err
		}
	}
	t.Notes = append(t.Notes, "same QPSK symbol energy for all columns; coded columns spend it on more (coded) bits")
	return t, nil
}

// addAWGNInto adds complex Gaussian noise of per-component deviation sigma
// to x, writing into dst (grown only when capacity is short).
func addAWGNInto(dst []complex128, r *rand.Rand, x []complex128, sigma float64) []complex128 {
	if cap(dst) < len(x) {
		dst = make([]complex128, len(x))
	}
	dst = dst[:len(x)]
	for i, v := range x {
		dst[i] = v + complex(r.NormFloat64()*sigma, r.NormFloat64()*sigma)
	}
	return dst
}

// e3BatchSize is the channel-realization count per E3 shard: small enough
// that a full-resolution sweep (300 realizations × 8 SNR points) spreads
// over ~100 shards, large enough that shard bookkeeping is noise.
const e3BatchSize = 25

var e3Detectors = []string{"zf", "mmse", "sic", "ml"}

// e3State is one worker's private detector bank and scratch for E3.
type e3State struct {
	mapper   *modem.Mapper
	demapper *modem.Demapper
	h        *cmatrix.Matrix
	hs       []*cmatrix.Matrix
	dets     []mimo.Detector
	llr      [][]float64
	x        []complex128
	y        []complex128
	bits     [2][2]byte
	hard     []byte
}

func newE3State() (*e3State, error) {
	st := &e3State{
		mapper:   modem.NewMapper(modem.QPSK),
		demapper: modem.NewDemapper(modem.QPSK),
		h:        cmatrix.New(2, 2),
		llr:      make([][]float64, 2),
		x:        make([]complex128, 2),
		y:        make([]complex128, 2),
		hard:     make([]byte, 0, 2),
	}
	st.hs = []*cmatrix.Matrix{st.h}
	for _, name := range e3Detectors {
		d, err := mimo.NewDetector(name, modem.QPSK, 2)
		if err != nil {
			return nil, err
		}
		st.dets = append(st.dets, d)
	}
	return st, nil
}

// e3Result accumulates one shard's per-detector bit-error counters in
// e3Detectors order, plus the SISO reference.
type e3Result struct {
	det  [4]metrics.BER
	siso metrics.BER
}

// merge folds other into r (shard counters are pure sums).
func (r *e3Result) merge(other *e3Result) {
	for i := range r.det {
		r.det[i].Add(other.det[i].Errors, other.det[i].Total)
	}
	r.siso.Add(other.siso.Errors, other.siso.Total)
}

// e3Shard runs one batch of channel realizations for one SNR point on its
// own seeded random stream.
//
//mimonet:hot
func e3Shard(st *e3State, shard int, seed int64, snrDB float64, chans, symsPerChan int) (e3Result, error) {
	var res e3Result
	r := rand.New(rand.NewSource(montecarlo.ShardSeed(seed+3, shard)))
	// Per-stream symbol power 1; per-RX signal power = nss = 2.
	noiseVar := 2.0 / math.Pow(10, snrDB/10)
	sigma := math.Sqrt(noiseVar / 2)
	for c := 0; c < chans; c++ {
		for i := range st.h.Data {
			st.h.Data[i] = complex(r.NormFloat64(), r.NormFloat64()) * complex(math.Sqrt(0.5), 0)
		}
		ok := true
		for _, d := range st.dets {
			if err := d.Prepare(st.hs, noiseVar); err != nil {
				// Singular draw: skip this channel realization.
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		// SISO reference: same total TX power on one stream, one RX
		// antenna (h00), same noise.
		hSiso := st.h.At(0, 0)
		for s := 0; s < symsPerChan; s++ {
			for i := 0; i < 2; i++ {
				st.bits[i][0], st.bits[i][1] = byte(r.Intn(2)), byte(r.Intn(2))
			}
			st.x[0] = st.mapper.MapOne(st.bits[0][:])
			st.x[1] = st.mapper.MapOne(st.bits[1][:])
			st.h.MulVecInto(st.y, st.x)
			for i := range st.y {
				st.y[i] += complex(r.NormFloat64()*sigma, r.NormFloat64()*sigma)
			}
			for di, d := range st.dets {
				st.llr[0], st.llr[1] = st.llr[0][:0], st.llr[1][:0]
				llr, err := d.Detect(st.llr, 0, st.y)
				if err != nil {
					return res, err
				}
				st.llr = llr
				for i := 0; i < 2; i++ {
					for b := 0; b < 2; b++ {
						hard := byte(0)
						if llr[i][b] < 0 {
							hard = 1
						}
						res.det[di].Add(int64(boolToInt(hard != st.bits[i][b])), 1)
					}
				}
			}
			// SISO: x0 scaled by √2 to use the same total power, noise
			// variance scaled to the same per-RX SNR.
			ySiso := hSiso*st.x[0]*complex(math.Sqrt2, 0) + complex(r.NormFloat64()*sigma, r.NormFloat64()*sigma)
			eq := ySiso / (hSiso * complex(math.Sqrt2, 0))
			st.hard = st.demapper.HardOne(st.hard[:0], eq)
			for b := 0; b < 2; b++ {
				res.siso.Add(int64(boolToInt(st.hard[b] != st.bits[0][b])), 1)
			}
		}
	}
	return res, nil
}

// E3DetectorComparison sweeps 2x2 spatial-multiplexing BER for the ZF, MMSE
// and ML detectors over flat Rayleigh fading, QPSK uncoded. One shard per
// (SNR point, channel batch); batch counters merge in shard order.
func E3DetectorComparison(opt Options) (*Table, error) {
	t := &Table{
		ID:      "E3",
		Title:   "2x2 spatial multiplexing detector BER vs SNR (flat Rayleigh, QPSK)",
		Columns: []string{"snr_db", "zf", "mmse", "sic", "ml", "siso_ref"},
	}
	snrs := []float64{0, 4, 8, 12, 16, 20, 24, 28}
	chans := 300
	symsPerChan := 20
	if opt.Quick {
		snrs = []float64{8, 16}
		chans = 40
	}
	batches := (chans + e3BatchSize - 1) / e3BatchSize
	res, err := montecarlo.Run(len(snrs)*batches, opt.Workers, newE3State,
		func(st *e3State, shard int) (e3Result, error) {
			snrDB := snrs[shard/batches]
			batch := shard % batches
			n := e3BatchSize
			if (batch+1)*e3BatchSize > chans {
				n = chans - batch*e3BatchSize
			}
			return e3Shard(st, shard, opt.Seed, snrDB, n, symsPerChan)
		})
	if err != nil {
		return nil, err
	}
	for si, snrDB := range snrs {
		var acc e3Result
		for b := 0; b < batches; b++ {
			r := res[si*batches+b]
			acc.merge(&r)
		}
		if err := t.AddRow(snrDB, acc.det[0].Rate(), acc.det[1].Rate(), acc.det[2].Rate(), acc.det[3].Rate(), acc.siso.Rate()); err != nil {
			return nil, err
		}
	}
	t.Notes = append(t.Notes,
		"siso_ref carries half the bits per use at the same total TX power",
		"expected ordering: ml < sic < mmse < zf at moderate SNR; ml shows a steeper (diversity) slope")
	return t, nil
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}
