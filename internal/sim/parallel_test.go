package sim

import (
	"bytes"
	"runtime"
	"testing"
)

// renderAt runs one experiment at the given worker count and returns the
// fully rendered table, notes included, so the comparison covers every
// digit the user would see.
func renderAt(t *testing.T, id string, workers int) string {
	t.Helper()
	r, err := Lookup(id)
	if err != nil {
		t.Fatal(err)
	}
	o := quickOpt()
	o.Workers = workers
	tbl, err := r(o)
	if err != nil {
		t.Fatalf("%s at %d workers: %v", id, workers, err)
	}
	var buf bytes.Buffer
	if err := tbl.Render(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestParallelSerialEquivalence is the engine's core invariant: the sharded
// experiments render byte-identical tables at every worker count because
// each shard owns its random stream and counters merge in shard order. E1
// exercises the stateful-worker path (per-worker modem/OFDM scratch) and E5
// the full-link path; run under -race this also shakes out data races in
// the pool.
func TestParallelSerialEquivalence(t *testing.T) {
	counts := []int{1, 4, runtime.GOMAXPROCS(0)}
	for _, id := range []string{"e1", "e5"} {
		id := id
		t.Run(id, func(t *testing.T) {
			ref := renderAt(t, id, counts[0])
			for _, workers := range counts[1:] {
				if got := renderAt(t, id, workers); got != ref {
					t.Errorf("table at %d workers differs from serial:\n--- serial ---\n%s--- %d workers ---\n%s",
						workers, ref, workers, got)
				}
			}
		})
	}
}

// TestShardedExperimentsCoverWorkerSweep smoke-runs every ported experiment
// at an adversarial worker count (more workers than shards for the small
// quick sweeps) to catch index-mapping mistakes in the shard → row merge.
func TestShardedExperimentsCoverWorkerSweep(t *testing.T) {
	for _, id := range []string{"e1", "e2", "e3", "e4", "e5", "e8", "e9", "e10"} {
		id := id
		t.Run(id, func(t *testing.T) {
			serial := renderAt(t, id, 1)
			wide := renderAt(t, id, 64)
			if serial != wide {
				t.Errorf("table at 64 workers differs from serial:\n--- serial ---\n%s--- 64 workers ---\n%s", serial, wide)
			}
		})
	}
}
