package sim

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/session"
)

func init() {
	register("e23", E23SessionSoak)
}

// E23SessionSoak is the session-gateway chaos soak: hundreds of concurrent
// client sessions transfer seeded payloads through one supervised gateway
// while per-session fault injectors mangle the radio seam (drop, corrupt,
// delay/reorder), the harness kills clients mid-transfer (reconnect-with-
// resume), and some links go permanently dark (fail-closed eviction). The
// robustness contract under test: every session ends in a defined terminal
// state, every completed payload verifies, recovery is bounded, and the
// process returns to its goroutine/FD baseline.
func E23SessionSoak(opt Options) (*Table, error) {
	cfg := session.SoakConfig{
		Sessions: 240,
		Bytes:    32 * 1024,
		Seed:     opt.Seed,
	}
	if opt.Quick {
		cfg.Sessions = 36
		cfg.Bytes = 8 * 1024
		cfg.Parallel = 12
	}
	res, err := session.RunSoak(context.Background(), cfg)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID: "E23",
		Title: fmt.Sprintf("Robustness: session-gateway chaos soak (%d sessions x %d KiB, seed %d)",
			res.Sessions, res.Bytes/1024, res.Seed),
		Columns: []string{"scenario", "sessions", "completed", "failed_clean", "failed_dirty", "reconnects"},
	}
	names := make([]string, 0, len(res.PerScenario))
	for name := range res.PerScenario {
		names = append(names, name)
	}
	sort.Strings(names)
	for i, name := range names {
		o := res.PerScenario[name]
		if err := t.AddRow(float64(i), float64(o.Sessions), float64(o.Completed),
			float64(o.FailedClean), float64(o.FailedDirty), float64(o.Reconnects)); err != nil {
			return nil, err
		}
		t.Notes = append(t.Notes, fmt.Sprintf("scenario %d = %s", i, name))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("totals: %d completed, %d failed clean, %d failed dirty, %d payload mismatches, %d reconnects",
			res.Completed, res.FailedClean, res.FailedDirty, res.Mismatches, res.Reconnects),
		fmt.Sprintf("recovery after reconnect: p50 %.1f ms, p99 %.1f ms, max %.1f ms",
			res.RecoveryP50Ms, res.RecoveryP99Ms, res.RecoveryMaxMs),
		fmt.Sprintf("resources: goroutines %d -> %d, fds %d -> %d, duration %.0f ms",
			res.GoroutinesBefore, res.GoroutinesAfter, res.FDsBefore, res.FDsAfter, res.DurationMs),
	)
	if !res.Clean() {
		t.Notes = append(t.Notes, "SOAK NOT CLEAN: see counts above")
	}
	return t, nil
}
