package sim

import (
	"math/rand"

	"repro/internal/channel"
	"repro/internal/mac"
	"repro/internal/metrics"
	"repro/internal/phy"
)

func init() {
	register("e17", E17GuardInterval)
}

// E17GuardInterval is the guard-interval ablation: the short GI buys 11%
// throughput but leaves only 8 samples (400 ns) of ISI protection, so on
// channels whose delay spread exceeds it the PER penalty eats the gain.
// Compared over low (TGn-B) and high (TGn-E) delay-spread channels.
func E17GuardInterval(opt Options) (*Table, error) {
	t := &Table{
		ID:    "E17",
		Title: "Extension: long vs short guard interval (MCS12 2x2, goodput in Mbit/s)",
		Columns: []string{"snr_db",
			"tgnb_long_gi", "tgnb_short_gi", "tgne_long_gi", "tgne_short_gi"},
	}
	snrs := []float64{20, 24, 28, 32, 36}
	packets := opt.Packets / 2
	if packets < 5 {
		packets = 5
	}
	if opt.Quick {
		snrs = []float64{22, 32}
		packets = 8
	}
	const payloadLen = 1000
	for _, snrDB := range snrs {
		row := []float64{snrDB}
		for _, model := range []channel.Model{channel.TGnB, channel.TGnE} {
			for _, shortGI := range []bool{false, true} {
				g, err := giGoodput(model, snrDB, shortGI, packets, payloadLen, opt.Seed)
				if err != nil {
					return nil, err
				}
				row = append(row, g)
			}
		}
		if err := t.AddRow(row...); err != nil {
			return nil, err
		}
	}
	t.Notes = append(t.Notes,
		"goodput = delivered payload bits / airtime (preamble included)",
		"expected: on TGn-B (15 ns rms) short GI delivers ~11% more at high SNR; on TGn-E (100 ns rms, exceeding the 400 ns guard minus filter spread) the short-GI ISI floor flattens or inverts the gain")
	return t, nil
}

// giGoodput measures delivered bits over airtime for one configuration,
// driving the PHY directly so the guard interval can be switched.
func giGoodput(model channel.Model, snrDB float64, shortGI bool, packets, payloadLen int, seed int64) (float64, error) {
	tx, err := phy.NewTransmitter(phy.TxConfig{MCS: 12, ScramblerSeed: 0x19, ShortGI: shortGI})
	if err != nil {
		return 0, err
	}
	ch, err := channel.New(channel.Config{NumTX: 2, NumRX: 2, Model: model,
		SNRdB: snrDB, Seed: seed + int64(snrDB)*17, TimingOffset: 240, TrailingSilence: 90})
	if err != nil {
		return 0, err
	}
	rcv, err := phy.NewReceiver(phy.RxConfig{NumAntennas: 2, Detector: "mmse"})
	if err != nil {
		return 0, err
	}
	r := rand.New(rand.NewSource(seed ^ 0xE17))
	var per metrics.PER
	var airtimeUs, delivered float64
	payload := make([]byte, payloadLen)
	for p := 0; p < packets; p++ {
		r.Read(payload)
		frame := &mac.Frame{Seq: uint16(p), Payload: payload}
		psdu, err := frame.Encode()
		if err != nil {
			return 0, err
		}
		burst, err := tx.Transmit(psdu)
		if err != nil {
			return 0, err
		}
		airtimeUs += float64(len(burst[0])) / 20.0
		rxs, err := ch.Apply(burst)
		if err != nil {
			return 0, err
		}
		res, rxErr := rcv.Receive(rxs)
		ok := false
		if rxErr == nil {
			if got, derr := mac.Decode(res.PSDU); derr == nil && got.Seq == frame.Seq {
				ok = true
			}
		}
		per.Add(ok)
		if ok {
			delivered += float64(8 * payloadLen)
		}
	}
	if airtimeUs == 0 {
		return 0, nil
	}
	return delivered / airtimeUs, nil // bits/µs = Mbit/s
}
