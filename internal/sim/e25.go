package sim

import (
	"fmt"
	"sort"

	"repro/internal/apmac"
)

func init() {
	register("e25", E25MUSoak)
}

// E25MUSoak is the multi-user access-point soak: ≥100 stations across four
// cells (static / fading / churn / fading+churn) run the full MU-MIMO
// control loop — contention association, quantized sounding feedback,
// orthogonality-aware group scheduling, ZF precoding from cached CSI — with
// per-MPDU successes drawn from the post-precoding SINR against the true
// channel. The table reports each scenario's PER distribution and the
// aggregate precoded throughput against the single-user TDMA baseline;
// the scheduler-decision hash is bit-identical at any worker count.
func E25MUSoak(opt Options) (*Table, error) {
	cfg := apmac.DefaultSoakConfig()
	cfg.Seed = opt.Seed
	cfg.Workers = opt.Workers
	if opt.Quick {
		cfg.Cells = 4
		cfg.StationsPerCell = 6
		cfg.Slots = 300
	}
	res, err := apmac.RunSoak(cfg)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID: "E25",
		Title: fmt.Sprintf("Multi-user AP soak (%d stations, %d TX antennas, %d slots, seed %d)",
			res.Stations, res.NTX, res.Slots, res.Seed),
		Columns: []string{"cell", "stations", "per_p50", "per_max", "delivered_mbit", "reassoc"},
	}
	type agg struct {
		pers     []float64
		bits     int64
		reassoc  int
		stations int
	}
	perCell := make([]agg, res.Cells)
	for _, s := range res.PerStation {
		a := &perCell[s.Cell]
		a.stations++
		a.bits += s.DeliveredBits
		a.reassoc += s.Reassociations
		if s.Attempts > 0 {
			a.pers = append(a.pers, s.PER)
		}
	}
	for cell, a := range perCell {
		sort.Float64s(a.pers)
		p50, pmax := 0.0, 0.0
		if n := len(a.pers); n > 0 {
			p50, pmax = a.pers[n/2], a.pers[n-1]
		}
		if err := t.AddRow(float64(cell), float64(a.stations), p50, pmax,
			float64(a.bits)/1e6, float64(a.reassoc)); err != nil {
			return nil, err
		}
		t.Notes = append(t.Notes, fmt.Sprintf("cell %d = %s", cell, res.Scenarios[cell]))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("aggregate downlink: MU %.2f Mbps vs SU-TDMA baseline %.2f Mbps", res.MUThroughputMbps, res.SUBaselineMbps),
		fmt.Sprintf("well-conditioned 2x2: MU sum rate %.2f vs SU best %.2f bit/s/Hz", res.MU2x2SumRate, res.SU2x2BestRate),
		fmt.Sprintf("contention: %d attempts, %d collisions, %d reassociations; %d CSI evictions, %d precode failures",
			res.AssocAttempts, res.Collisions, res.Reassociations, res.CSIEvictions, res.PrecodeFailures),
		fmt.Sprintf("scheduler decision hash %s (bit-identical at any -workers)", res.SchedHash),
	)
	return t, nil
}
