package sim

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func quickOpt() Options {
	o := DefaultOptions()
	o.Quick = true
	o.Packets = 20
	o.PayloadLen = 200
	return o
}

func TestRegistryComplete(t *testing.T) {
	ids := IDs()
	want := []string{"e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13", "e14", "e15", "e16", "e17", "e18", "e19", "e20", "e21", "e22", "e23", "e25"}
	if len(ids) != len(want) {
		t.Fatalf("registered %v, want %v", ids, want)
	}
	for i, id := range want {
		if ids[i] != id {
			t.Errorf("ids[%d] = %s, want %s", i, ids[i], id)
		}
	}
	if _, err := Lookup("E3"); err != nil {
		t.Error("Lookup should be case-insensitive")
	}
	if _, err := Lookup("e99"); err == nil {
		t.Error("unknown experiment should fail")
	}
}

func TestTableRenderAndValidation(t *testing.T) {
	tbl := &Table{ID: "T", Title: "test", Columns: []string{"a", "b"}}
	if err := tbl.AddRow(1); err == nil {
		t.Error("short row should fail")
	}
	if err := tbl.AddRow(1, math.NaN()); err != nil {
		t.Fatal(err)
	}
	if err := tbl.AddRow(0.00012345, math.Inf(1)); err != nil {
		t.Fatal(err)
	}
	tbl.Notes = append(tbl.Notes, "a note")
	var buf bytes.Buffer
	if err := tbl.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"== T: test ==", "a", "b", "-", "inf", "1.234e-04", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q in:\n%s", want, out)
		}
	}
}

// TestAllExperimentsQuick smoke-runs every experiment at quick settings and
// sanity-checks the output shape and key monotonic relationships.
func TestAllExperimentsQuick(t *testing.T) {
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			r, err := Lookup(id)
			if err != nil {
				t.Fatal(err)
			}
			tbl, err := r(quickOpt())
			if err != nil {
				t.Fatal(err)
			}
			if len(tbl.Rows) == 0 {
				t.Fatal("no rows")
			}
			for i, row := range tbl.Rows {
				if len(row) != len(tbl.Columns) {
					t.Fatalf("row %d has %d cells for %d columns", i, len(row), len(tbl.Columns))
				}
			}
			var buf bytes.Buffer
			if err := tbl.Render(&buf); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestE1ShapeBERDecreasesWithSNR(t *testing.T) {
	o := quickOpt()
	tbl, err := E1UncodedBER(o)
	if err != nil {
		t.Fatal(err)
	}
	// Column 1 is BPSK measured; it must be non-increasing across the
	// (sorted) SNR rows and near theory.
	first := tbl.Rows[0][1]
	last := tbl.Rows[len(tbl.Rows)-1][1]
	if last > first {
		t.Errorf("BPSK BER rose with SNR: %g → %g", first, last)
	}
	// 64-QAM must be worse than BPSK at the same SNR.
	if tbl.Rows[0][7] <= tbl.Rows[0][1] {
		t.Errorf("64-QAM (%g) not worse than BPSK (%g) at low SNR", tbl.Rows[0][7], tbl.Rows[0][1])
	}
}

func TestE2ShapeCodingGain(t *testing.T) {
	o := quickOpt()
	tbl, err := E2FECGain(o)
	if err != nil {
		t.Fatal(err)
	}
	// At the top SNR row, rate-1/2 coded BER must beat uncoded.
	top := tbl.Rows[len(tbl.Rows)-1]
	if top[2] > top[1] {
		t.Errorf("rate-1/2 BER %g worse than uncoded %g at %g dB", top[2], top[1], top[0])
	}
}

func TestE6ShapeMIMOSyncBeatsSISO(t *testing.T) {
	o := quickOpt()
	o.Packets = 800
	tbl, err := E6Synchronization(o)
	if err != nil {
		t.Fatal(err)
	}
	// Summed over the low-SNR rows, 2-RX timing MSE must be clearly below
	// 1-RX (allow 10% Monte-Carlo slack).
	var siso, mimoSum float64
	for _, row := range tbl.Rows {
		siso += row[1]
		mimoSum += row[2]
	}
	if mimoSum > 0.9*siso {
		t.Errorf("MIMO timing MSE %g not clearly below SISO %g", mimoSum, siso)
	}
}
