// Package sim is the Monte-Carlo experiment harness that regenerates the
// paper's evaluation: each experiment E1-E12 (see DESIGN.md for the mapping
// onto the paper's claims) is a function from Options to a Table of results
// that cmd/mimonet-sim renders and EXPERIMENTS.md records.
package sim

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Table is a rectangular numeric result with labelled columns.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]float64
	// Notes carries caveats (e.g. Monte-Carlo trial counts).
	Notes []string
}

// AddRow appends a row, which must match the column count.
func (t *Table) AddRow(vals ...float64) error {
	if len(vals) != len(t.Columns) {
		return fmt.Errorf("sim: row has %d values, table %q has %d columns", len(vals), t.ID, len(t.Columns))
	}
	t.Rows = append(t.Rows, vals)
	return nil
}

// Render writes an aligned plain-text table.
func (t *Table) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title); err != nil {
		return err
	}
	widths := make([]int, len(t.Columns))
	cells := make([][]string, len(t.Rows))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for r, row := range t.Rows {
		cells[r] = make([]string, len(row))
		for i, v := range row {
			cells[r][i] = formatCell(v)
			if len(cells[r][i]) > widths[i] {
				widths[i] = len(cells[r][i])
			}
		}
	}
	var b strings.Builder
	for i, c := range t.Columns {
		if i > 0 {
			b.WriteString("  ")
		}
		fmt.Fprintf(&b, "%*s", widths[i], c)
	}
	b.WriteByte('\n')
	for r := range cells {
		for i, c := range cells[r] {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func formatCell(v float64) string {
	switch {
	case math.IsNaN(v):
		return "-"
	case math.IsInf(v, 1):
		return "inf"
	case math.IsInf(v, -1):
		return "-inf"
	case v == math.Trunc(v) && math.Abs(v) < 1e6:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 0.01 && math.Abs(v) < 1e5:
		return fmt.Sprintf("%.4g", v)
	default:
		return fmt.Sprintf("%.3e", v)
	}
}

// Options tunes an experiment run. The zero value is invalid; use
// DefaultOptions.
type Options struct {
	// Seed drives all randomness.
	Seed int64
	// Packets is the Monte-Carlo packet (or trial) count per sweep point.
	Packets int
	// PayloadLen is the MAC payload size in octets.
	PayloadLen int
	// Quick shrinks sweeps for smoke tests and benchmarks.
	Quick bool
	// Scenario restricts fault-injection experiments (E22) to one named
	// faults.Scenario; empty runs the full registry.
	Scenario string
	// Workers bounds the montecarlo worker pool for the sharded experiments
	// (E1-E5, E8-E10): 0 (the default) selects GOMAXPROCS, 1 forces the
	// legacy serial path. Results are bit-identical at every worker count —
	// each shard owns its random stream and shard counters merge in index
	// order (see internal/montecarlo).
	Workers int
}

// DefaultOptions returns the settings used for EXPERIMENTS.md.
func DefaultOptions() Options {
	return Options{Seed: 1, Packets: 200, PayloadLen: 500}
}

// Runner is an experiment entry point.
type Runner func(Options) (*Table, error)

// registry of experiments, populated by the e*.go files.
var registry = map[string]Runner{}

func register(id string, r Runner) {
	registry[strings.ToLower(id)] = r
}

// Lookup returns the runner for an experiment ID (case-insensitive).
func Lookup(id string) (Runner, error) {
	r, ok := registry[strings.ToLower(id)]
	if !ok {
		return nil, fmt.Errorf("sim: unknown experiment %q (have %s)", id, strings.Join(IDs(), ", "))
	}
	return r, nil
}

// IDs lists the registered experiments in order.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool {
		// e1 < e2 < ... < e10 < e11: compare numeric suffix.
		return expNum(out[i]) < expNum(out[j])
	})
	return out
}

func expNum(id string) int {
	n := 0
	for _, c := range id {
		if c >= '0' && c <= '9' {
			n = n*10 + int(c-'0')
		}
	}
	return n
}
