package sim

import (
	"math"
	"math/rand"

	"repro/internal/chanest"
	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/ofdm"
	"repro/internal/preamble"
	"repro/internal/sounding"
)

func init() {
	register("e20", E20RankAdaptation)
}

// E20RankAdaptation probes the boundary of the paper's technique: spatial
// multiplexing needs a well-conditioned channel. As TX antenna correlation
// rises (Kronecker model), the 2x2 channel's rank collapses; a sounding-
// driven policy (capacity/condition-number analysis of the channel
// estimate) switches from two streams to one and preserves goodput. Also
// reports the sounding metrics themselves.
func E20RankAdaptation(opt Options) (*Table, error) {
	t := &Table{
		ID:    "E20",
		Title: "Extension: channel sounding and rank adaptation vs TX correlation (flat Rayleigh 2x2, 24 dB)",
		Columns: []string{"tx_correlation",
			"mean_cond_db", "mean_capacity_bps",
			"fixed_2ss_mbps", "fixed_1ss_mbps", "rank_adaptive_mbps"},
	}
	rhos := []float64{0, 0.5, 0.8, 0.95, 0.99}
	packets := opt.Packets / 4
	if packets < 10 {
		packets = 10
	}
	if opt.Quick {
		rhos = []float64{0, 0.95}
		packets = 10
	}
	const snrDB = 24.0
	for _, rho := range rhos {
		condDB, capBps, err := soundCorrelatedChannel(rho, snrDB, opt.Seed, packets)
		if err != nil {
			return nil, err
		}
		g2, err := correlatedGoodput(12, rho, snrDB, packets, opt)
		if err != nil {
			return nil, err
		}
		g1, err := correlatedGoodput(4, rho, snrDB, packets, opt)
		if err != nil {
			return nil, err
		}
		// Rank-adaptive policy: choose the MCS family by the sounding
		// recommendation (2 streams when well conditioned, else 1).
		adaptive := g2
		if recommendFromCond(condDB) == 1 {
			adaptive = g1
		}
		if err := t.AddRow(rho, condDB, capBps, g2, g1, adaptive); err != nil {
			return nil, err
		}
	}
	t.Notes = append(t.Notes,
		"fixed_2ss = MCS12 (2×16-QAM 3/4), fixed_1ss = MCS4 (16-QAM 3/4), same constellation per stream",
		"expected: condition number rises and capacity falls with ρ; 2-stream goodput collapses near ρ→1 while 1-stream holds; the adaptive column follows the max")
	return t, nil
}

func recommendFromCond(condDB float64) int {
	if condDB > 15 {
		return 1
	}
	return 2
}

// soundCorrelatedChannel draws correlated channels, forms HT-LTF-based
// estimates and averages the sounding metrics.
func soundCorrelatedChannel(rho, snrDB float64, seed int64, trials int) (condDB, capBps float64, err error) {
	ch, err := channel.New(channel.Config{NumTX: 2, NumRX: 2, Model: channel.FlatRayleigh,
		NoNoise: true, TXCorrelation: rho, Seed: seed + int64(rho*100)})
	if err != nil {
		return 0, 0, err
	}
	r := rand.New(rand.NewSource(seed + 77))
	snr := math.Pow(10, snrDB/10)
	var condAcc, capAcc float64
	for i := 0; i < trials; i++ {
		if _, err := ch.Apply([][]complex128{make([]complex128, 8), make([]complex128, 8)}); err != nil {
			return 0, 0, err
		}
		taps := ch.Taps()
		// Build noiseless HT-LTF spectra from the drawn flat taps.
		spectra := make([][][]complex128, 2)
		for a := 0; a < 2; a++ {
			spectra[a] = make([][]complex128, 2)
			for n := 0; n < 2; n++ {
				spec := make([]complex128, ofdm.FFTSize)
				for bin, ref := range preamble.HTLTFFreq {
					if ref == 0 {
						continue
					}
					var acc complex128
					for s := 0; s < 2; s++ {
						acc += taps[a][s][0] * complex(preamble.PMatrix[s][n], 0) * ref
					}
					spec[bin] = acc
				}
				spectra[a][n] = spec
			}
		}
		est, err := chanest.EstimateHT(spectra, 2)
		if err != nil {
			return 0, 0, err
		}
		rep, err := sounding.Analyze(est.DataMatrices(), snr)
		if err != nil {
			return 0, 0, err
		}
		condAcc += rep.MeanConditionDB
		capAcc += rep.CapacityBps
		_ = r
	}
	return condAcc / float64(trials), capAcc / float64(trials), nil
}

// correlatedGoodput measures delivered Mbit/s for an MCS over the
// correlated channel.
func correlatedGoodput(mcs int, rho, snrDB float64, packets int, opt Options) (float64, error) {
	link, err := core.NewLink(core.LinkConfig{
		MCS:      mcs,
		Detector: "mmse",
		Channel: channel.Config{Model: channel.FlatRayleigh, SNRdB: snrDB,
			TXCorrelation: rho, Seed: opt.Seed + int64(mcs)*13 + int64(rho*1000)},
	})
	if err != nil {
		return 0, err
	}
	r := rand.New(rand.NewSource(opt.Seed ^ 0xE20))
	payload := make([]byte, 800)
	ok := 0
	for p := 0; p < packets; p++ {
		r.Read(payload)
		rep, err := link.Send(payload)
		if err != nil {
			return 0, err
		}
		if rep.OK {
			ok++
		}
	}
	return link.MCS().DataRateMbps() * float64(ok) / float64(packets), nil
}
