package sim

import (
	"math"
	"math/cmplx"
	"math/rand"

	"repro/internal/chanest"
	"repro/internal/channel"
	"repro/internal/cmatrix"
	"repro/internal/core"
	"repro/internal/est"
	"repro/internal/modem"
	"repro/internal/montecarlo"
	"repro/internal/ofdm"
	"repro/internal/preamble"
	"repro/internal/synchro"
)

func init() {
	register("e8", E8ChannelEstimation)
	register("e9", E9SNREstimation)
	register("e10", E10PacketDetection)
}

// E8ChannelEstimation sweeps the per-subcarrier channel-estimation MSE of
// the LS estimator and its frequency-smoothed variant against the true
// frequency response, over a flat-like (TGn-B) and a dispersive (TGn-D)
// channel.
func E8ChannelEstimation(opt Options) (*Table, error) {
	t := &Table{
		ID:    "E8",
		Title: "HT-LTF channel estimation MSE vs SNR: LS vs smoothed LS (2x2)",
		Columns: []string{"snr_db",
			"tgnb_ls", "tgnb_smooth5", "tgnd_ls", "tgnd_smooth5"},
	}
	snrs := []float64{0, 5, 10, 15, 20, 25, 30}
	trials := opt.Packets / 4
	if trials < 5 {
		trials = 5
	}
	if opt.Quick {
		snrs = []float64{5, 20}
		trials = 5
	}
	models := []channel.Model{channel.TGnB, channel.TGnD}
	type e8Result struct {
		mseLS, mseSmooth float64
		count            int
	}
	// One shard per (SNR point, channel model) cell on its own streams.
	res, err := montecarlo.Map(len(snrs)*len(models), opt.Workers,
		func(shard int) (e8Result, error) {
			snrDB := snrs[shard/len(models)]
			model := models[shard%len(models)]
			shardSeed := montecarlo.ShardSeed(opt.Seed+8, shard)
			r := rand.New(rand.NewSource(shardSeed))
			var acc e8Result
			for trial := 0; trial < trials; trial++ {
				truth, spectra, err := drawHTLTFObservation(r, model, snrDB, shardSeed+int64(trial)*13)
				if err != nil {
					return acc, err
				}
				ls, err := chanest.EstimateHT(spectra, 2)
				if err != nil {
					return acc, err
				}
				smooth, err := chanest.EstimateHT(spectra, 2)
				if err != nil {
					return acc, err
				}
				if err := smooth.Smooth(5); err != nil {
					return acc, err
				}
				for _, bin := range ofdm.HTToneMap.Data {
					d1 := cmatrix.Sub(ls.AtBin(bin), truth[bin])
					d2 := cmatrix.Sub(smooth.AtBin(bin), truth[bin])
					acc.mseLS += d1.FrobeniusNorm() * d1.FrobeniusNorm()
					acc.mseSmooth += d2.FrobeniusNorm() * d2.FrobeniusNorm()
					acc.count += 4 // 2x2 entries
				}
			}
			return acc, nil
		})
	if err != nil {
		return nil, err
	}
	for si, snrDB := range snrs {
		row := []float64{snrDB}
		for mi := range models {
			cell := res[si*len(models)+mi]
			row = append(row, cell.mseLS/float64(cell.count), cell.mseSmooth/float64(cell.count))
		}
		if err := t.AddRow(row...); err != nil {
			return nil, err
		}
	}
	t.Notes = append(t.Notes,
		"MSE per channel-matrix entry; LS ∝ 1/SNR",
		"expected: smoothing wins on low-delay-spread TGn-B; on TGn-D its bias floor appears at high SNR")
	return t, nil
}

// drawHTLTFObservation draws a TGn channel realization and produces the true
// per-bin channel matrices plus noisy HT-LTF spectra, bypassing timing/CFO
// so only estimation error is measured.
func drawHTLTFObservation(r *rand.Rand, model channel.Model, snrDB float64, seed int64) ([]*cmatrix.Matrix, [][][]complex128, error) {
	const nss, nrx = 2, 2
	ch, err := channel.New(channel.Config{NumTX: nss, NumRX: nrx, Model: model, NoNoise: true, Seed: seed})
	if err != nil {
		return nil, nil, err
	}
	// Draw taps by pushing a dummy burst.
	if _, err := ch.Apply([][]complex128{make([]complex128, 8), make([]complex128, 8)}); err != nil {
		return nil, nil, err
	}
	taps := ch.Taps()
	// True frequency response per bin: H[rx][tx](k) = Σ_l g_l e^{-j2πkl/64}.
	truth := make([]*cmatrix.Matrix, ofdm.FFTSize)
	for bin := range truth {
		m := cmatrix.New(nrx, nss)
		for a := 0; a < nrx; a++ {
			for s := 0; s < nss; s++ {
				var acc complex128
				for l, g := range taps[a][s] {
					acc += g * cmplx.Exp(complex(0, -2*math.Pi*float64(bin)*float64(l)/64))
				}
				m.Set(a, s, acc)
			}
		}
		truth[bin] = m
	}
	// Noisy LTF spectra: y[rx][n](k) = Σ_ss H[rx][ss](k)·P[ss][n]·L_k + w.
	sigma := math.Sqrt(math.Pow(10, -snrDB/10) / 2)
	nltf := preamble.NumHTLTF(nss)
	spectra := make([][][]complex128, nrx)
	for a := 0; a < nrx; a++ {
		spectra[a] = make([][]complex128, nltf)
		for n := 0; n < nltf; n++ {
			spec := make([]complex128, ofdm.FFTSize)
			for bin, ref := range preamble.HTLTFFreq {
				if ref == 0 {
					continue
				}
				var acc complex128
				for s := 0; s < nss; s++ {
					acc += truth[bin].At(a, s) * complex(preamble.PMatrix[s][n], 0) * ref
				}
				spec[bin] = acc + complex(r.NormFloat64()*sigma, r.NormFloat64()*sigma)
			}
			spectra[a][n] = spec
		}
	}
	return truth, spectra, nil
}

// E9SNREstimation validates the paper's fine-grained SNR estimation: the
// receiver's data-aided L-LTF estimate (via the full link) and the blind
// M2M4 estimator on QPSK and 64-QAM symbol streams, against the true SNR.
func E9SNREstimation(opt Options) (*Table, error) {
	t := &Table{
		ID:    "E9",
		Title: "SNR estimation accuracy (dB estimated at each true SNR)",
		Columns: []string{"true_snr_db",
			"data_aided_lltf", "m2m4_qpsk", "m2m4_qam64"},
	}
	snrs := []float64{0, 5, 10, 15, 20, 25, 30}
	packets := opt.Packets / 10
	if packets < 3 {
		packets = 3
	}
	if opt.Quick {
		snrs = []float64{5, 20}
		packets = 3
	}
	type e9Result struct {
		dataAided, qpsk, qam64 float64
	}
	// One shard per SNR point: full-link data-aided estimate plus the two
	// blind M2M4 streams, all on shard-local randomness.
	res, err := montecarlo.Map(len(snrs), opt.Workers,
		func(shard int) (e9Result, error) {
			snrDB := snrs[shard]
			// Data-aided from the full receiver.
			// MCS0 keeps a single transmit chain so the per-antenna received
			// power equals the configured unit power (multi-chain legacy
			// preambles split power 1/N_TX per chain, which an identity channel
			// does not recombine).
			_, meanSNR, err := runPER(core.LinkConfig{
				MCS:      0,
				Detector: "mmse",
				Channel:  channel.Config{Model: channel.Identity, SNRdB: snrDB},
			}, packets, 300, opt.Seed+int64(snrDB)*3+9)
			if err != nil {
				return e9Result{}, err
			}
			// Blind M2M4 on raw symbol streams.
			r := rand.New(rand.NewSource(montecarlo.ShardSeed(opt.Seed+9, shard)))
			m2m4 := func(s modem.Scheme) float64 {
				mapper := modem.NewMapper(s)
				bits := make([]byte, s.BitsPerSymbol())
				x := make([]complex128, 8000)
				sigma := math.Sqrt(math.Pow(10, -snrDB/10) / 2)
				for i := range x {
					for j := range bits {
						bits[j] = byte(r.Intn(2))
					}
					x[i] = mapper.MapOne(bits) + complex(r.NormFloat64()*sigma, r.NormFloat64()*sigma)
				}
				v, err := est.M2M4(x)
				if err != nil {
					return math.NaN()
				}
				return est.DB(v)
			}
			return e9Result{dataAided: meanSNR, qpsk: m2m4(modem.QPSK), qam64: m2m4(modem.QAM64)}, nil
		})
	if err != nil {
		return nil, err
	}
	for si, snrDB := range snrs {
		if err := t.AddRow(snrDB, res[si].dataAided, res[si].qpsk, res[si].qam64); err != nil {
			return nil, err
		}
	}
	t.Notes = append(t.Notes,
		"data-aided column uses the receiver's own L-LTF split estimator through full sync; '-' marks SNRs where no packet synchronized",
		"expected: data-aided tracks truth 0-30 dB; M2M4 tracks QPSK but biases on 64-QAM (non-constant modulus)")
	return t, nil
}

// E10PacketDetection sweeps detection probability vs SNR and reports the
// noise-only false alarm rate of the STF detector.
func E10PacketDetection(opt Options) (*Table, error) {
	t := &Table{
		ID:      "E10",
		Title:   "Packet detection probability vs SNR (2 RX, threshold 0.7, plateau 24)",
		Columns: []string{"snr_db", "p_detect", "mean_latency_samples"},
	}
	snrs := []float64{-6, -4, -2, 0, 2, 4, 6, 10}
	trials := opt.Packets
	if opt.Quick {
		snrs = []float64{-2, 4}
		trials = 20
	}
	noiseSamples := 2_000_00
	if opt.Quick {
		noiseSamples = 20_000
	}
	type e10Result struct {
		detected    int
		latency     float64
		falseAlarms int
	}
	// One shard per SNR point, plus a final shard for the noise-only false
	// alarm campaign. Each shard owns its preamble copy, detector and
	// random stream; the detector is re-armed with Reset between trials.
	res, err := montecarlo.Map(len(snrs)+1, opt.Workers,
		func(shard int) (e10Result, error) {
			var acc e10Result
			r := rand.New(rand.NewSource(montecarlo.ShardSeed(opt.Seed+10, shard)))
			d, err := synchro.NewDetector(2, synchro.DefaultDetectorConfig())
			if err != nil {
				return acc, err
			}
			samples := make([]complex128, 2)
			if shard == len(snrs) {
				// False alarm rate on pure noise.
				for i := 0; i < noiseSamples; i++ {
					samples[0] = complex(r.NormFloat64(), r.NormFloat64())
					samples[1] = complex(r.NormFloat64(), r.NormFloat64())
					det, err := d.Push(samples)
					if err != nil {
						return acc, err
					}
					if det != nil {
						acc.falseAlarms++
						d.Reset()
					}
				}
				return acc, nil
			}
			snrDB := snrs[shard]
			sig := append(preamble.LSTF(), preamble.LLTF()...)
			sigma := math.Sqrt(math.Pow(10, -snrDB/10) / 2)
			rx := [][]complex128{
				make([]complex128, 0, 250+len(sig)+100),
				make([]complex128, 0, 250+len(sig)+100),
			}
			for trial := 0; trial < trials; trial++ {
				lead := 150 + r.Intn(100)
				for a := range rx {
					ang := r.Float64() * 2 * math.Pi
					ph := complex(math.Cos(ang), math.Sin(ang))
					s := rx[a][:lead+len(sig)+100]
					for i := range s {
						s[i] = complex(r.NormFloat64()*sigma, r.NormFloat64()*sigma)
					}
					for i, v := range sig {
						s[lead+i] += v * ph
					}
					rx[a] = s
				}
				d.Reset()
				for i := 0; i < len(rx[0]); i++ {
					samples[0], samples[1] = rx[0][i], rx[1][i]
					det, err := d.Push(samples)
					if err != nil {
						return acc, err
					}
					if det != nil {
						acc.detected++
						acc.latency += float64(det.Index - lead)
						break
					}
				}
			}
			return acc, nil
		})
	if err != nil {
		return nil, err
	}
	for si, snrDB := range snrs {
		meanLat := math.NaN()
		if res[si].detected > 0 {
			meanLat = res[si].latency / float64(res[si].detected)
		}
		if err := t.AddRow(snrDB, float64(res[si].detected)/float64(trials), meanLat); err != nil {
			return nil, err
		}
	}
	falseAlarms := res[len(snrs)].falseAlarms
	t.Notes = append(t.Notes,
		"latency: samples from STF start to plateau completion",
		"false alarms on pure noise: "+formatCell(float64(falseAlarms))+" in "+formatCell(float64(noiseSamples))+" samples",
		"expected: p_detect → 1 above ≈2-4 dB; zero/near-zero false alarms")
	return t, nil
}
