package sim

import (
	"math"
	"math/rand"

	"repro/internal/channel"
	"repro/internal/mac"
	"repro/internal/phy"
)

func init() {
	register("e19", E19ReliableDelivery)
}

// E19ReliableDelivery closes the stack: selective-repeat ARQ with Block Ack
// over A-MPDU aggregation over the full PHY. At each SNR the sender must
// deliver a fixed payload volume reliably; reported are the rounds needed,
// the retransmission overhead, and the effective reliable goodput —
// compared against the no-ARQ expectation 1−PER.
func E19ReliableDelivery(opt Options) (*Table, error) {
	t := &Table{
		ID:    "E19",
		Title: "Extension: reliable delivery via Block-Ack ARQ over A-MPDU (TGn-B 2x2, MCS11, 16×400-octet window)",
		Columns: []string{"snr_db",
			"rounds", "tx_subframes", "delivered_frac", "reliable_goodput_mbps"},
	}
	snrs := []float64{14, 17, 20, 23, 26, 30}
	volume := 48 // payloads per point
	if opt.Quick {
		snrs = []float64{17, 26}
		volume = 16
	}
	const (
		payloadLen = 400
		window     = 16
	)
	for _, snrDB := range snrs {
		tx, err := phy.NewTransmitter(phy.TxConfig{MCS: 11, ScramblerSeed: 0x63})
		if err != nil {
			return nil, err
		}
		ch, err := channel.New(channel.Config{NumTX: 2, NumRX: 2, Model: channel.TGnB,
			SNRdB: snrDB, Seed: opt.Seed + int64(snrDB)*7, TimingOffset: 230, TrailingSilence: 90})
		if err != nil {
			return nil, err
		}
		rcv, err := phy.NewReceiver(phy.RxConfig{NumAntennas: 2, Detector: "mmse"})
		if err != nil {
			return nil, err
		}
		sender, err := mac.NewARQSender(window)
		if err != nil {
			return nil, err
		}
		r := rand.New(rand.NewSource(opt.Seed ^ 0xE19))
		for i := 0; i < volume; i++ {
			p := make([]byte, payloadLen)
			r.Read(p)
			sender.Queue(p)
		}
		rounds, txSubframes := 0, 0
		var airtimeUs float64
		for sender.Outstanding() > 0 && rounds < 60 {
			rounds++
			frames := sender.Round()
			if len(frames) == 0 {
				break
			}
			txSubframes += len(frames)
			psdu, err := mac.Aggregate(frames)
			if err != nil {
				return nil, err
			}
			burst, err := tx.Transmit(psdu)
			if err != nil {
				return nil, err
			}
			airtimeUs += float64(len(burst[0])) / 20.0
			rxs, err := ch.Apply(burst)
			if err != nil {
				return nil, err
			}
			var results []mac.DeaggregateResult
			if res, rxErr := rcv.Receive(rxs); rxErr == nil {
				results = mac.Deaggregate(res.PSDU)
			}
			sender.Apply(mac.AckFrom(frames[0].Seq, results))
		}
		deliveredFrac := float64(sender.Delivered) / float64(volume)
		goodput := math.NaN()
		if airtimeUs > 0 {
			goodput = float64(sender.Delivered*payloadLen*8) / airtimeUs
		}
		if err := t.AddRow(snrDB, float64(rounds), float64(txSubframes), deliveredFrac, goodput); err != nil {
			return nil, err
		}
	}
	t.Notes = append(t.Notes,
		"each point must deliver 48 payloads of 400 octets; tx_subframes/48 is the retransmission overhead",
		"expected: delivered_frac = 1 at every SNR where sync succeeds; rounds and overhead fall toward the minimum (3 aggregates) as SNR rises")
	return t, nil
}
