package sim

import "repro/internal/clock"

// wallClock is the package's single wall-clock seam, used only by the
// throughput experiments (E12) that genuinely measure elapsed time. Every
// other source of nondeterminism in sim must flow from Options.Seed — the
// detrand analyzer enforces both halves of that contract. Tests may swap in
// a clock.Fake.
var wallClock clock.Clock = clock.System
