package cmatrix

import (
	"math"
	"math/cmplx"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func randMatrix(r *rand.Rand, rows, cols int) *Matrix {
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = complex(r.NormFloat64(), r.NormFloat64())
	}
	return m
}

func TestIdentityAndAccess(t *testing.T) {
	m := Identity(3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := complex128(0)
			if i == j {
				want = 1
			}
			if m.At(i, j) != want {
				t.Errorf("I[%d][%d] = %v", i, j, m.At(i, j))
			}
		}
	}
	m.Set(1, 2, 5i)
	if m.At(1, 2) != 5i {
		t.Error("Set/At mismatch")
	}
}

func TestFromRowsValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("ragged FromRows should panic")
		}
	}()
	FromRows([][]complex128{{1, 2}, {3}})
}

func TestMulKnown(t *testing.T) {
	a := FromRows([][]complex128{{1, 2}, {3, 4}})
	b := FromRows([][]complex128{{5, 6}, {7, 8}})
	got := Mul(a, b)
	want := FromRows([][]complex128{{19, 22}, {43, 50}})
	if !ApproxEqual(got, want, 1e-12) {
		t.Errorf("Mul:\n%v\nwant\n%v", got, want)
	}
}

func TestMulShapes(t *testing.T) {
	a := randMatrix(rand.New(rand.NewSource(1)), 2, 3)
	b := randMatrix(rand.New(rand.NewSource(2)), 3, 4)
	if got := Mul(a, b); got.Rows != 2 || got.Cols != 4 {
		t.Errorf("shape %dx%d", got.Rows, got.Cols)
	}
	defer func() {
		if recover() == nil {
			t.Error("mismatched Mul should panic")
		}
	}()
	Mul(a, a)
}

func TestMulVecAndInto(t *testing.T) {
	m := FromRows([][]complex128{{1, 1i}, {2, 0}})
	x := []complex128{1, 1}
	got := m.MulVec(x)
	if got[0] != 1+1i || got[1] != 2 {
		t.Errorf("MulVec = %v", got)
	}
	dst := make([]complex128, 2)
	m.MulVecInto(dst, x)
	if dst[0] != got[0] || dst[1] != got[1] {
		t.Errorf("MulVecInto = %v, want %v", dst, got)
	}
}

func TestHermitianTranspose(t *testing.T) {
	m := FromRows([][]complex128{{1 + 2i, 3}, {4i, 5}})
	h := m.Hermitian()
	if h.At(0, 0) != 1-2i || h.At(0, 1) != -4i || h.At(1, 0) != 3 || h.At(1, 1) != 5 {
		t.Errorf("Hermitian:\n%v", h)
	}
	tr := m.Transpose()
	if tr.At(0, 1) != 4i || tr.At(1, 0) != 3 {
		t.Errorf("Transpose:\n%v", tr)
	}
}

func TestAddSubScale(t *testing.T) {
	a := FromRows([][]complex128{{1, 2}})
	b := FromRows([][]complex128{{10, 20}})
	if got := Add(a, b); got.At(0, 1) != 22 {
		t.Errorf("Add = %v", got)
	}
	if got := Sub(b, a); got.At(0, 0) != 9 {
		t.Errorf("Sub = %v", got)
	}
	c := a.Clone()
	c.ScaleInPlace(2i)
	if c.At(0, 0) != 2i || a.At(0, 0) != 1 {
		t.Error("ScaleInPlace or Clone aliasing broken")
	}
}

func TestAddScaledIdentity(t *testing.T) {
	m := Identity(2)
	m.AddScaledIdentity(3)
	if m.At(0, 0) != 4 || m.At(1, 1) != 4 || m.At(0, 1) != 0 {
		t.Errorf("AddScaledIdentity:\n%v", m)
	}
}

func TestInverseKnown(t *testing.T) {
	m := FromRows([][]complex128{{4, 7}, {2, 6}})
	inv, err := m.Inverse()
	if err != nil {
		t.Fatal(err)
	}
	want := FromRows([][]complex128{{0.6, -0.7}, {-0.2, 0.4}})
	if !ApproxEqual(inv, want, 1e-12) {
		t.Errorf("Inverse:\n%v\nwant\n%v", inv, want)
	}
}

func TestInverseProperty(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	prop := func(n8 uint8) bool {
		n := 1 + int(n8)%4
		m := randMatrix(r, n, n)
		inv, err := m.Inverse()
		if err != nil {
			return true // singular random draws are legal, just skip
		}
		return ApproxEqual(Mul(m, inv), Identity(n), 1e-9) &&
			ApproxEqual(Mul(inv, m), Identity(n), 1e-9)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestInverseSingular(t *testing.T) {
	m := FromRows([][]complex128{{1, 2}, {2, 4}})
	if _, err := m.Inverse(); err == nil {
		t.Error("singular matrix should fail to invert")
	}
	rect := New(2, 3)
	if _, err := rect.Inverse(); err == nil {
		t.Error("non-square inverse should fail")
	}
}

func TestSolve(t *testing.T) {
	m := FromRows([][]complex128{{2, 1}, {1, 3}})
	x := []complex128{1 + 1i, -2}
	b := m.MulVec(x)
	got, err := m.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if cmplx.Abs(got[i]-x[i]) > 1e-10 {
			t.Errorf("Solve[%d] = %v, want %v", i, got[i], x[i])
		}
	}
}

func TestPseudoInverse(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	// Tall matrix: pinv(A)·A = I.
	a := randMatrix(r, 4, 2)
	p, err := a.PseudoInverse()
	if err != nil {
		t.Fatal(err)
	}
	if !ApproxEqual(Mul(p, a), Identity(2), 1e-9) {
		t.Error("pinv(A)·A != I for tall matrix")
	}
	// Square invertible: pinv == inv.
	s := randMatrix(r, 3, 3)
	ps, err := s.PseudoInverse()
	if err != nil {
		t.Fatal(err)
	}
	inv, err := s.Inverse()
	if err != nil {
		t.Fatal(err)
	}
	if !ApproxEqual(ps, inv, 1e-8) {
		t.Error("pseudo-inverse of square matrix differs from inverse")
	}
	// Wide matrix rejected.
	if _, err := New(2, 3).PseudoInverse(); err == nil {
		t.Error("wide pseudo-inverse should fail")
	}
}

func TestDet(t *testing.T) {
	m := FromRows([][]complex128{{1, 2}, {3, 4}})
	d, err := m.Det()
	if err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(d-(-2)) > 1e-12 {
		t.Errorf("Det = %v, want -2", d)
	}
	sing := FromRows([][]complex128{{1, 2}, {2, 4}})
	d, err = sing.Det()
	if err != nil || cmplx.Abs(d) > 1e-12 {
		t.Errorf("singular Det = %v, err %v", d, err)
	}
	// det(A·B) = det(A)·det(B)
	r := rand.New(rand.NewSource(5))
	a := randMatrix(r, 3, 3)
	b := randMatrix(r, 3, 3)
	da, _ := a.Det()
	db, _ := b.Det()
	dab, _ := Mul(a, b).Det()
	if cmplx.Abs(dab-da*db) > 1e-9*cmplx.Abs(dab) {
		t.Errorf("det(AB) = %v, det(A)det(B) = %v", dab, da*db)
	}
}

func TestFrobeniusNorm(t *testing.T) {
	m := FromRows([][]complex128{{3, 0}, {0, 4i}})
	if got := m.FrobeniusNorm(); math.Abs(got-5) > 1e-12 {
		t.Errorf("FrobeniusNorm = %g, want 5", got)
	}
}

func BenchmarkInverse2x2(b *testing.B) {
	m := randMatrix(rand.New(rand.NewSource(6)), 2, 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := m.Inverse(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPseudoInverse4x4(b *testing.B) {
	m := randMatrix(rand.New(rand.NewSource(7)), 4, 4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := m.PseudoInverse(); err != nil {
			b.Fatal(err)
		}
	}
}

func TestStringRendering(t *testing.T) {
	m := FromRows([][]complex128{{1 + 2i, -3}})
	s := m.String()
	if s == "" || !strings.Contains(s, "1") || !strings.Contains(s, "2") {
		t.Errorf("String() = %q", s)
	}
}

func TestShapePanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"New":               func() { New(0, 1) },
		"Add":               func() { Add(New(1, 2), New(2, 1)) },
		"Sub":               func() { Sub(New(1, 2), New(2, 1)) },
		"AddScaledIdentity": func() { New(2, 3).AddScaledIdentity(1) },
		"MulVec":            func() { New(2, 2).MulVec(make([]complex128, 3)) },
		"MulVecInto":        func() { New(2, 2).MulVecInto(make([]complex128, 1), make([]complex128, 2)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: want panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestSolveSingular(t *testing.T) {
	m := FromRows([][]complex128{{1, 2}, {2, 4}})
	if _, err := m.Solve([]complex128{1, 1}); err == nil {
		t.Error("singular Solve should fail")
	}
}

func TestApproxEqualShapes(t *testing.T) {
	if ApproxEqual(New(1, 2), New(2, 1), 1) {
		t.Error("different shapes cannot be equal")
	}
	a := FromRows([][]complex128{{1}})
	b := FromRows([][]complex128{{1.5}})
	if ApproxEqual(a, b, 0.1) {
		t.Error("0.5 apart with tol 0.1")
	}
	if !ApproxEqual(a, b, 1) {
		t.Error("0.5 apart with tol 1 should match")
	}
}

func TestDetNonSquare(t *testing.T) {
	if _, err := New(2, 3).Det(); err == nil {
		t.Error("non-square Det should fail")
	}
}

func TestMulIntoMatchesMul(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	var dst *Matrix
	for trial := 0; trial < 50; trial++ {
		rows, inner, cols := 1+r.Intn(4), 1+r.Intn(4), 1+r.Intn(4)
		a := randMatrix(r, rows, inner)
		b := randMatrix(r, inner, cols)
		dst = MulInto(dst, a, b) // reused across trials: shapes vary on purpose
		if want := Mul(a, b); !ApproxEqual(dst, want, 1e-12) {
			t.Fatalf("trial %d: MulInto:\n%v\nwant\n%v", trial, dst, want)
		}
	}
}

func TestMulIntoReusesStorage(t *testing.T) {
	a := FromRows([][]complex128{{1, 2}, {3, 4}})
	dst := New(2, 2)
	data := &dst.Data[0]
	dst = MulInto(dst, a, a)
	if &dst.Data[0] != data {
		t.Error("MulInto allocated although dst capacity sufficed")
	}
}

func TestHermitianIntoMatches(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	var dst *Matrix
	for trial := 0; trial < 20; trial++ {
		m := randMatrix(r, 1+r.Intn(4), 1+r.Intn(4))
		dst = m.HermitianInto(dst)
		if want := m.Hermitian(); !ApproxEqual(dst, want, 0) {
			t.Fatalf("HermitianInto:\n%v\nwant\n%v", dst, want)
		}
	}
}

func TestInverseIntoMatchesInverse(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	var dst, work *Matrix
	for trial := 0; trial < 50; trial++ {
		n := 1 + r.Intn(4)
		m := randMatrix(r, n, n)
		orig := m.Clone()
		want, err := m.Inverse()
		var got *Matrix
		var err2 error
		got, work, err2 = m.InverseInto(dst, work)
		if (err == nil) != (err2 == nil) {
			t.Fatalf("Inverse err %v vs InverseInto err %v", err, err2)
		}
		if err != nil {
			continue
		}
		dst = got
		if !ApproxEqual(got, want, 1e-12) {
			t.Fatalf("InverseInto:\n%v\nwant\n%v", got, want)
		}
		if !ApproxEqual(m, orig, 0) {
			t.Fatal("InverseInto mutated its receiver")
		}
	}
}

func TestInverseIntoErrors(t *testing.T) {
	if _, _, err := New(2, 3).InverseInto(nil, nil); err == nil {
		t.Error("non-square InverseInto should fail")
	}
	sing := FromRows([][]complex128{{1, 2}, {2, 4}})
	if _, _, err := sing.InverseInto(nil, nil); err == nil {
		t.Error("singular InverseInto should fail")
	}
}
