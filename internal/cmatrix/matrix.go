// Package cmatrix implements small dense complex-valued linear algebra: the
// matrix sizes in a MIMO receiver are N_RX × N_SS with N ≤ 4, so the package
// favours simplicity and numerical robustness (partial pivoting everywhere)
// over asymptotic tricks.
package cmatrix

import (
	"fmt"
	"math"
	"math/cmplx"
	"strings"
)

// Matrix is a dense row-major complex matrix.
type Matrix struct {
	Rows, Cols int
	Data       []complex128 // len == Rows*Cols, row-major
}

// New returns a zero matrix of the given shape.
func New(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("cmatrix: invalid shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]complex128, rows*cols)}
}

// FromRows builds a matrix from row slices, which must all have equal length.
func FromRows(rows [][]complex128) *Matrix {
	if len(rows) == 0 || len(rows[0]) == 0 {
		panic("cmatrix: FromRows needs at least one row and column")
	}
	m := New(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic("cmatrix: FromRows ragged input")
		}
		copy(m.Data[i*m.Cols:(i+1)*m.Cols], r)
	}
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) complex128 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v complex128) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := New(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var b strings.Builder
	for i := 0; i < m.Rows; i++ {
		b.WriteString("[")
		for j := 0; j < m.Cols; j++ {
			if j > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%.4g%+.4gi", real(m.At(i, j)), imag(m.At(i, j)))
		}
		b.WriteString("]\n")
	}
	return b.String()
}

// Mul returns the matrix product a·b. It panics if the inner dimensions do
// not agree.
func Mul(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("cmatrix: Mul shape mismatch %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for k := 0; k < a.Cols; k++ {
			av := a.At(i, k)
			if av == 0 {
				continue
			}
			row := out.Data[i*out.Cols : (i+1)*out.Cols]
			brow := b.Data[k*b.Cols : (k+1)*b.Cols]
			for j := range brow {
				row[j] += av * brow[j]
			}
		}
	}
	return out
}

// MulInto computes a·b into dst, reusing dst's storage when its capacity
// suffices (its shape is overwritten). dst must not alias a or b. Returns
// dst, or a fresh matrix when dst was nil or too small — callers keeping a
// scratch matrix should store the return value back.
func MulInto(dst, a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("cmatrix: MulInto shape mismatch %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	dst = reshape(dst, a.Rows, b.Cols)
	for i := range dst.Data {
		dst.Data[i] = 0
	}
	for i := 0; i < a.Rows; i++ {
		for k := 0; k < a.Cols; k++ {
			av := a.At(i, k)
			if av == 0 {
				continue
			}
			row := dst.Data[i*dst.Cols : (i+1)*dst.Cols]
			brow := b.Data[k*b.Cols : (k+1)*b.Cols]
			for j := range brow {
				row[j] += av * brow[j]
			}
		}
	}
	return dst
}

// reshape returns a rows×cols matrix backed by m's storage when it is large
// enough, allocating otherwise. Element values are unspecified: every
// Into-style operation fully overwrites its destination.
func reshape(m *Matrix, rows, cols int) *Matrix {
	if m == nil || cap(m.Data) < rows*cols {
		return New(rows, cols)
	}
	m.Rows, m.Cols = rows, cols
	m.Data = m.Data[:rows*cols]
	return m
}

// MulVec returns the matrix-vector product m·x.
func (m *Matrix) MulVec(x []complex128) []complex128 {
	if len(x) != m.Cols {
		panic("cmatrix: MulVec length mismatch")
	}
	out := make([]complex128, m.Rows)
	for i := 0; i < m.Rows; i++ {
		var s complex128
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out
}

// MulVecInto is MulVec writing into a caller-provided slice of length Rows,
// for allocation-free per-subcarrier equalization.
func (m *Matrix) MulVecInto(dst, x []complex128) {
	if len(x) != m.Cols || len(dst) != m.Rows {
		panic("cmatrix: MulVecInto length mismatch")
	}
	for i := 0; i < m.Rows; i++ {
		var s complex128
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, v := range row {
			s += v * x[j]
		}
		dst[i] = s
	}
}

// Hermitian returns the conjugate transpose mᴴ.
func (m *Matrix) Hermitian() *Matrix {
	out := New(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Set(j, i, cmplx.Conj(m.At(i, j)))
		}
	}
	return out
}

// HermitianInto computes mᴴ into dst under the same storage-reuse contract
// as MulInto. dst must not alias m.
func (m *Matrix) HermitianInto(dst *Matrix) *Matrix {
	dst = reshape(dst, m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			dst.Set(j, i, cmplx.Conj(m.At(i, j)))
		}
	}
	return dst
}

// Transpose returns mᵀ without conjugation.
func (m *Matrix) Transpose() *Matrix {
	out := New(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Set(j, i, m.At(i, j))
		}
	}
	return out
}

// Add returns a+b.
func Add(a, b *Matrix) *Matrix {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic("cmatrix: Add shape mismatch")
	}
	out := New(a.Rows, a.Cols)
	for i := range out.Data {
		out.Data[i] = a.Data[i] + b.Data[i]
	}
	return out
}

// Sub returns a−b.
func Sub(a, b *Matrix) *Matrix {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic("cmatrix: Sub shape mismatch")
	}
	out := New(a.Rows, a.Cols)
	for i := range out.Data {
		out.Data[i] = a.Data[i] - b.Data[i]
	}
	return out
}

// ScaleInPlace multiplies every element by s.
func (m *Matrix) ScaleInPlace(s complex128) {
	for i := range m.Data {
		m.Data[i] *= s
	}
}

// AddScaledIdentity adds s·I to the square matrix m in place. It panics if m
// is not square. Used to build the MMSE regularized Gram matrix HᴴH + σ²I.
func (m *Matrix) AddScaledIdentity(s complex128) {
	if m.Rows != m.Cols {
		panic("cmatrix: AddScaledIdentity on non-square matrix")
	}
	for i := 0; i < m.Rows; i++ {
		m.Data[i*m.Cols+i] += s
	}
}

// FrobeniusNorm returns the Frobenius norm of m.
func (m *Matrix) FrobeniusNorm() float64 {
	var s float64
	for _, v := range m.Data {
		re, im := real(v), imag(v)
		s += re*re + im*im
	}
	return math.Sqrt(s)
}

// Inverse returns m⁻¹ computed by Gauss-Jordan elimination with partial
// pivoting, or an error if m is singular (pivot below the numerical
// threshold) or non-square.
func (m *Matrix) Inverse() (*Matrix, error) {
	inv, _, err := m.InverseInto(nil, nil)
	return inv, err
}

// InverseInto computes m⁻¹ into dst, using work as the Gauss-Jordan
// elimination workspace; m itself is left untouched. dst and work follow the
// MulInto storage-reuse contract and must not alias m or each other. Returns
// (dst, work) so callers holding scratch matrices can store both back.
func (m *Matrix) InverseInto(dst, work *Matrix) (*Matrix, *Matrix, error) {
	if m.Rows != m.Cols {
		return nil, work, fmt.Errorf("cmatrix: inverse of non-square %dx%d matrix", m.Rows, m.Cols)
	}
	n := m.Rows
	a := reshape(work, n, n)
	copy(a.Data, m.Data)
	inv := reshape(dst, n, n)
	for i := range inv.Data {
		inv.Data[i] = 0
	}
	for i := 0; i < n; i++ {
		inv.Data[i*n+i] = 1
	}
	for col := 0; col < n; col++ {
		// Partial pivot: largest magnitude in column at/below diagonal.
		pivot := col
		pmax := cmplx.Abs(a.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := cmplx.Abs(a.At(r, col)); v > pmax {
				pivot, pmax = r, v
			}
		}
		if pmax < 1e-13 {
			return nil, a, fmt.Errorf("cmatrix: singular matrix (pivot %g at column %d)", pmax, col)
		}
		if pivot != col {
			a.swapRows(col, pivot)
			inv.swapRows(col, pivot)
		}
		// Normalize pivot row.
		p := a.At(col, col)
		for j := 0; j < n; j++ {
			a.Set(col, j, a.At(col, j)/p)
			inv.Set(col, j, inv.At(col, j)/p)
		}
		// Eliminate other rows.
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := a.At(r, col)
			if f == 0 {
				continue
			}
			for j := 0; j < n; j++ {
				a.Set(r, j, a.At(r, j)-f*a.At(col, j))
				inv.Set(r, j, inv.At(r, j)-f*inv.At(col, j))
			}
		}
	}
	return inv, a, nil
}

func (m *Matrix) swapRows(i, j int) {
	ri := m.Data[i*m.Cols : (i+1)*m.Cols]
	rj := m.Data[j*m.Cols : (j+1)*m.Cols]
	for k := range ri {
		ri[k], rj[k] = rj[k], ri[k]
	}
}

// Solve returns x such that m·x = b, via the inverse (matrices here are tiny).
func (m *Matrix) Solve(b []complex128) ([]complex128, error) {
	inv, err := m.Inverse()
	if err != nil {
		return nil, err
	}
	return inv.MulVec(b), nil
}

// PseudoInverse returns the left Moore-Penrose pseudo-inverse
// (AᴴA)⁻¹Aᴴ for a tall-or-square full-column-rank matrix. This is the
// zero-forcing detector matrix.
func (m *Matrix) PseudoInverse() (*Matrix, error) {
	if m.Rows < m.Cols {
		return nil, fmt.Errorf("cmatrix: pseudo-inverse needs rows ≥ cols, got %dx%d", m.Rows, m.Cols)
	}
	h := m.Hermitian()
	gram := Mul(h, m)
	gi, err := gram.Inverse()
	if err != nil {
		return nil, fmt.Errorf("cmatrix: rank-deficient matrix: %w", err)
	}
	return Mul(gi, h), nil
}

// Det returns the determinant via LU decomposition with partial pivoting.
func (m *Matrix) Det() (complex128, error) {
	if m.Rows != m.Cols {
		return 0, fmt.Errorf("cmatrix: determinant of non-square matrix")
	}
	n := m.Rows
	a := m.Clone()
	det := complex128(1)
	for col := 0; col < n; col++ {
		pivot := col
		pmax := cmplx.Abs(a.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := cmplx.Abs(a.At(r, col)); v > pmax {
				pivot, pmax = r, v
			}
		}
		if pmax == 0 {
			return 0, nil
		}
		if pivot != col {
			a.swapRows(col, pivot)
			det = -det
		}
		p := a.At(col, col)
		det *= p
		for r := col + 1; r < n; r++ {
			f := a.At(r, col) / p
			if f == 0 {
				continue
			}
			for j := col; j < n; j++ {
				a.Set(r, j, a.At(r, j)-f*a.At(col, j))
			}
		}
	}
	return det, nil
}

// ApproxEqual reports whether a and b agree element-wise within tol.
func ApproxEqual(a, b *Matrix, tol float64) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i := range a.Data {
		if cmplx.Abs(a.Data[i]-b.Data[i]) > tol {
			return false
		}
	}
	return true
}
