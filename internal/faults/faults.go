// Package faults is a deterministic, seed-driven fault-injection subsystem
// for chaos-testing the MIMO-OFDM pipeline. It provides sample-level
// interceptors (drop, duplication, burst erasures, gain glitches, timing
// jumps), datagram-level mangling for the UDP radio link (loss, truncation,
// corruption, reordering), SIG-field corruption at known PPDU offsets, and
// flowgraph wrapper blocks that inject scripted panics and stalls — all
// configured through named, reproducible Scenarios.
package faults

import (
	"math/rand"
	"sync"
	"sync/atomic"

	"repro/internal/phy"
	"repro/internal/radio"
)

// Counts tallies every fault the injector actually applied, so experiments
// can report injected-fault pressure next to decode outcomes. Safe for
// concurrent use.
type Counts struct {
	sampleDrops     atomic.Int64
	sampleDups      atomic.Int64
	erasures        atomic.Int64
	gainGlitches    atomic.Int64
	timingJumps     atomic.Int64
	sigCorruptions  atomic.Int64
	dgramsDropped   atomic.Int64
	dgramsTruncated atomic.Int64
	dgramsCorrupted atomic.Int64
	dgramsReordered atomic.Int64
}

// CountsSnapshot is a plain-value copy of a Counts.
type CountsSnapshot struct {
	SampleDrops, SampleDups, Erasures, GainGlitches, TimingJumps int64
	SIGCorruptions                                               int64
	DgramsDropped, DgramsTruncated, DgramsCorrupted              int64
	DgramsReordered                                              int64
}

// Total sums every injected fault.
func (s CountsSnapshot) Total() int64 {
	return s.SampleDrops + s.SampleDups + s.Erasures + s.GainGlitches +
		s.TimingJumps + s.SIGCorruptions + s.DgramsDropped +
		s.DgramsTruncated + s.DgramsCorrupted + s.DgramsReordered
}

// Snapshot returns a point-in-time copy.
func (c *Counts) Snapshot() CountsSnapshot {
	return CountsSnapshot{
		SampleDrops:     c.sampleDrops.Load(),
		SampleDups:      c.sampleDups.Load(),
		Erasures:        c.erasures.Load(),
		GainGlitches:    c.gainGlitches.Load(),
		TimingJumps:     c.timingJumps.Load(),
		SIGCorruptions:  c.sigCorruptions.Load(),
		DgramsDropped:   c.dgramsDropped.Load(),
		DgramsTruncated: c.dgramsTruncated.Load(),
		DgramsCorrupted: c.dgramsCorrupted.Load(),
		DgramsReordered: c.dgramsReordered.Load(),
	}
}

// Injector applies a Scenario's faults. All randomness comes from one seeded
// source, so a given (scenario, seed) pair injects the same fault sequence
// on every run. Methods are safe for concurrent use (one mutex guards the
// random source and the reorder buffer).
type Injector struct {
	mu     sync.Mutex
	rng    *rand.Rand
	sc     Scenario
	held   [][]byte // datagrams delayed by the reorder fault
	counts Counts
}

// NewInjector builds an injector for sc. A non-zero seed overrides the
// scenario's own; with both zero the seed defaults to 1.
func NewInjector(sc Scenario, seed int64) *Injector {
	if seed == 0 {
		seed = sc.Seed
	}
	if seed == 0 {
		seed = 1
	}
	sc = sc.withDefaults()
	return &Injector{rng: rand.New(rand.NewSource(seed)), sc: sc}
}

// Scenario returns the (defaulted) scenario this injector runs.
func (inj *Injector) Scenario() Scenario { return inj.sc }

// Counts returns a snapshot of the faults injected so far.
func (inj *Injector) Counts() CountsSnapshot { return inj.counts.Snapshot() }

// roll must be called with mu held.
func (inj *Injector) roll(prob float64) bool {
	return prob > 0 && inj.rng.Float64() < prob
}

// ApplyBurst mutates one multi-antenna burst in place according to the
// scenario and returns it. Structural faults (drop, dup, timing jump) are
// applied at the same offsets on every stream so the streams stay aligned
// and equal-length, as they would through a shared radio front-end clock.
func (inj *Injector) ApplyBurst(burst [][]complex128) [][]complex128 {
	if len(burst) == 0 || len(burst[0]) == 0 {
		return burst
	}
	inj.mu.Lock()
	defer inj.mu.Unlock()
	n := len(burst[0])

	if inj.roll(inj.sc.CorruptSIG) {
		inj.corruptSIG(burst)
	}
	if inj.roll(inj.sc.BurstErasure) {
		ln := inj.sc.FaultLen
		if ln > n {
			ln = n
		}
		at := inj.rng.Intn(n - ln + 1)
		for _, s := range burst {
			for i := at; i < at+ln; i++ {
				s[i] = 0
			}
		}
		inj.counts.erasures.Add(1)
	}
	if inj.roll(inj.sc.GainGlitch) {
		ln := inj.sc.FaultLen
		if ln > n {
			ln = n
		}
		at := inj.rng.Intn(n - ln + 1)
		g := complex(inj.sc.GlitchGain, 0)
		for _, s := range burst {
			for i := at; i < at+ln; i++ {
				s[i] *= g
			}
		}
		inj.counts.gainGlitches.Add(1)
	}
	if inj.roll(inj.sc.SampleDrop) {
		at := inj.rng.Intn(n)
		for si, s := range burst {
			burst[si] = append(s[:at], s[at+1:]...)
		}
		n--
		inj.counts.sampleDrops.Add(1)
	}
	if n > 0 && inj.roll(inj.sc.SampleDup) {
		at := inj.rng.Intn(n)
		for si, s := range burst {
			s = append(s, 0)
			copy(s[at+1:], s[at:])
			burst[si] = s
		}
		n++
		inj.counts.sampleDups.Add(1)
	}
	if inj.roll(inj.sc.TimingJump) {
		j := 1 + inj.rng.Intn(inj.sc.MaxJump)
		if inj.rng.Intn(2) == 0 {
			// Clock ran fast: drop j samples from the front.
			if j > n {
				j = n
			}
			for si, s := range burst {
				burst[si] = s[j:]
			}
		} else {
			// Clock ran slow: j zero samples of dead air up front.
			for si, s := range burst {
				padded := make([]complex128, j+len(s))
				copy(padded[j:], s)
				burst[si] = padded
			}
		}
		inj.counts.timingJumps.Add(1)
	}
	return burst
}

// ApplyChunk applies the scenario's sample-level faults to one
// single-stream chunk.
func (inj *Injector) ApplyChunk(c []complex128) []complex128 {
	out := inj.ApplyBurst([][]complex128{c})
	return out[0]
}

// corruptSIG negates random samples across the L-SIG and HT-SIG symbols so
// the receiver's parity/CRC checks reject the headers with typed errors.
// Called with mu held.
func (inj *Injector) corruptSIG(burst [][]complex128) {
	lo, hi := phy.OffLSIG, phy.OffHTSTF
	if hi > len(burst[0]) {
		hi = len(burst[0])
	}
	if lo >= hi {
		return
	}
	for _, s := range burst {
		for i := lo; i < hi; i++ {
			if inj.rng.Intn(2) == 0 {
				s[i] = -s[i]
			}
		}
	}
	inj.counts.sigCorruptions.Add(1)
}

// MangleDatagram is a radio.UDPSender Intercept hook: it receives one
// encoded frame and returns the datagrams to actually transmit — possibly
// none (loss, or held back for reordering) or several (a held frame being
// released out of order). End-of-burst frames are never dropped or held,
// and any held frames are flushed before them, so bursts always terminate.
// The datagram may be mutated (truncation, byte corruption).
func (inj *Injector) MangleDatagram(dgram []byte) [][]byte {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	eob := false
	if h, err := radio.DecodeHeader(dgram); err == nil && h.Flags&radio.FlagEndOfBurst != 0 {
		eob = true
	}
	if !eob {
		if inj.roll(inj.sc.DgramLoss) {
			inj.counts.dgramsDropped.Add(1)
			return nil
		}
		if inj.roll(inj.sc.DgramReorder) {
			inj.held = append(inj.held, dgram)
			inj.counts.dgramsReordered.Add(1)
			return nil
		}
	}
	if inj.roll(inj.sc.DgramTrunc) && len(dgram) > 1 {
		dgram = dgram[:1+inj.rng.Intn(len(dgram)-1)]
		inj.counts.dgramsTruncated.Add(1)
	} else if inj.roll(inj.sc.DgramCorrupt) {
		flips := 1 + inj.rng.Intn(8)
		for i := 0; i < flips; i++ {
			dgram[inj.rng.Intn(len(dgram))] ^= byte(1 + inj.rng.Intn(255))
		}
		inj.counts.dgramsCorrupted.Add(1)
	}
	var out [][]byte
	if eob {
		// Held frames go first so the burst still terminates on this frame.
		out = append(out, inj.held...)
		inj.held = nil
		return append(out, dgram)
	}
	// Release this frame, then any held (older) frames — they arrive after
	// newer sequence numbers, i.e. out of order.
	out = append(out, dgram)
	out = append(out, inj.held...)
	inj.held = nil
	return out
}
