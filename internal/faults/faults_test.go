package faults

import (
	"context"
	"io"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"time"

	"repro/internal/flowgraph"
	"repro/internal/radio"
)

func randBurst(rng *rand.Rand, streams, n int) [][]complex128 {
	b := make([][]complex128, streams)
	for s := range b {
		b[s] = make([]complex128, n)
		for i := range b[s] {
			b[s][i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
	}
	return b
}

// The same (scenario, seed) pair must inject the identical fault sequence.
func TestInjectorDeterministic(t *testing.T) {
	sc, err := Lookup("chaos-all")
	if err != nil {
		t.Fatal(err)
	}
	mk := func() [][][]complex128 {
		inj := NewInjector(sc, 42)
		rng := rand.New(rand.NewSource(7))
		var out [][][]complex128
		for i := 0; i < 20; i++ {
			out = append(out, inj.ApplyBurst(randBurst(rng, 2, 900)))
		}
		return out
	}
	a, b := mk(), mk()
	if !reflect.DeepEqual(a, b) {
		t.Error("two injectors with the same seed diverged")
	}
}

// Structural faults must keep all streams the same length.
func TestApplyBurstKeepsStreamsAligned(t *testing.T) {
	sc := Scenario{SampleDrop: 1, SampleDup: 1, TimingJump: 1, BurstErasure: 1, GainGlitch: 1, CorruptSIG: 1}
	inj := NewInjector(sc, 3)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 50; i++ {
		b := inj.ApplyBurst(randBurst(rng, 3, 700))
		for s := 1; s < len(b); s++ {
			if len(b[s]) != len(b[0]) {
				t.Fatalf("iteration %d: stream %d has %d samples, stream 0 has %d", i, s, len(b[s]), len(b[0]))
			}
		}
	}
}

// The zero scenario must be a no-op.
func TestCleanScenarioInjectsNothing(t *testing.T) {
	sc, err := Lookup("clean")
	if err != nil {
		t.Fatal(err)
	}
	inj := NewInjector(sc, 1)
	rng := rand.New(rand.NewSource(1))
	in := randBurst(rng, 2, 500)
	want := [][]complex128{append([]complex128(nil), in[0]...), append([]complex128(nil), in[1]...)}
	got := inj.ApplyBurst(in)
	if !reflect.DeepEqual(got, want) {
		t.Error("clean scenario mutated the burst")
	}
	if n := inj.Counts().Total(); n != 0 {
		t.Errorf("clean scenario counted %d faults", n)
	}
}

func encodeTestFrame(t *testing.T, seq uint64, flags uint16) []byte {
	t.Helper()
	samples := [][]complex128{make([]complex128, 32)}
	b, err := radio.EncodeFrame(nil, radio.Header{Streams: 1, Flags: flags, Seq: seq, Count: 32}, samples)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// End-of-burst datagrams are never dropped or held, and anything held is
// flushed before them — bursts must always terminate.
func TestMangleDatagramPreservesEndOfBurst(t *testing.T) {
	sc := Scenario{DgramLoss: 1} // drop everything droppable
	inj := NewInjector(sc, 5)
	if got := inj.MangleDatagram(encodeTestFrame(t, 0, 0)); len(got) != 0 {
		t.Errorf("mid-burst datagram survived a loss probability of 1")
	}
	out := inj.MangleDatagram(encodeTestFrame(t, 1, radio.FlagEndOfBurst))
	if len(out) != 1 {
		t.Fatalf("end-of-burst datagram did not survive: %d datagrams out", len(out))
	}
	if c := inj.Counts(); c.DgramsDropped != 1 {
		t.Errorf("counts = %+v, want 1 dropped", c)
	}
}

func TestMangleDatagramReorderFlushesBeforeEOB(t *testing.T) {
	sc := Scenario{DgramReorder: 1}
	inj := NewInjector(sc, 5)
	f0 := encodeTestFrame(t, 0, 0)
	if got := inj.MangleDatagram(f0); len(got) != 0 {
		t.Fatalf("frame 0 should have been held, got %d datagrams", len(got))
	}
	eob := encodeTestFrame(t, 1, radio.FlagEndOfBurst)
	out := inj.MangleDatagram(eob)
	if len(out) != 2 {
		t.Fatalf("want held frame + EOB, got %d datagrams", len(out))
	}
	h0, err := radio.DecodeHeader(out[0])
	if err != nil {
		t.Fatal(err)
	}
	h1, err := radio.DecodeHeader(out[1])
	if err != nil {
		t.Fatal(err)
	}
	if h0.Seq != 0 || h1.Flags&radio.FlagEndOfBurst == 0 {
		t.Errorf("flush order wrong: first seq %d, last flags %#x", h0.Seq, h1.Flags)
	}
}

func TestMangleDatagramTruncates(t *testing.T) {
	sc := Scenario{DgramTrunc: 1}
	inj := NewInjector(sc, 11)
	full := encodeTestFrame(t, 0, 0)
	out := inj.MangleDatagram(append([]byte(nil), full...))
	if len(out) != 1 || len(out[0]) >= len(full) || len(out[0]) < 1 {
		t.Errorf("truncation produced %d datagrams (len %d of %d)", len(out), len(out[0]), len(full))
	}
	if c := inj.Counts(); c.DgramsTruncated != 1 {
		t.Errorf("counts = %+v, want 1 truncated", c)
	}
}

// Short bursts (shorter than the SIG region) must not panic the corruptor.
func TestCorruptSIGShortBurst(t *testing.T) {
	sc := Scenario{CorruptSIG: 1}
	inj := NewInjector(sc, 2)
	inj.ApplyBurst([][]complex128{make([]complex128, 100)}) // < OffLSIG
	inj.ApplyBurst([][]complex128{make([]complex128, 400)}) // inside the SIG span
}

func TestScenarioRegistry(t *testing.T) {
	names := Names()
	if !sort.StringsAreSorted(names) {
		t.Error("Names() not sorted")
	}
	for _, want := range []string{"clean", "panic", "stall", "chaos-all", "dgram-reorder", "corrupt-sig"} {
		if _, err := Lookup(want); err != nil {
			t.Errorf("Lookup(%q): %v", want, err)
		}
	}
	if _, err := Lookup("CHAOS-ALL"); err != nil {
		t.Errorf("lookup should be case-insensitive: %v", err)
	}
	if _, err := Lookup("no-such-scenario"); err == nil {
		t.Error("unknown scenario should error")
	}
	for _, sc := range scenarios {
		got := sc.withDefaults()
		if got.FaultLen <= 0 || got.GlitchGain == 0 || got.MaxJump <= 0 {
			t.Errorf("scenario %q defaults incomplete: %+v", sc.Name, got)
		}
	}
}

// A PanicBlock inside a supervised graph panics once, is restarted, and the
// stream completes minus the burst lost to the panic.
func TestPanicBlockRestartsInGraph(t *testing.T) {
	g := flowgraph.New()
	n := 0
	src := &flowgraph.SourceFunc{BlockName: "src", Next: func() (flowgraph.Chunk, error) {
		if n >= 6 {
			return nil, io.EOF
		}
		n++
		return flowgraph.Chunk{complex(float64(n), 0)}, nil
	}}
	pb := &PanicBlock{BlockName: "panic", Ports: 1, After: 2}
	got := 0
	sink := &flowgraph.SinkFunc{BlockName: "sink", Consume: func(flowgraph.Chunk) error {
		got++
		return nil
	}}
	for _, b := range []flowgraph.Block{src, pb, sink} {
		if err := g.Add(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.Connect(src, 0, pb, 0); err != nil {
		t.Fatal(err)
	}
	if err := g.Connect(pb, 0, sink, 0); err != nil {
		t.Fatal(err)
	}
	if err := g.SetPolicy(flowgraph.Policy{MaxRestarts: 1, BackoffBase: time.Millisecond, TrackHealth: true}); err != nil {
		t.Fatal(err)
	}
	if err := g.Run(context.Background()); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got != 5 {
		t.Errorf("sink saw %d chunks, want 5 (one lost to the panic)", got)
	}
	if h := g.Health()["panic"]; h.Panics != 1 || h.Restarts != 1 {
		t.Errorf("health = %+v, want 1 panic and 1 restart", h)
	}
}
