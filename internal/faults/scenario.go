package faults

import (
	"fmt"
	"sort"
	"strings"
)

// Scenario is a named, reproducible fault configuration. Probabilities are
// per-application: sample faults roll once per burst (or chunk), datagram
// faults once per datagram. The zero Scenario injects nothing.
type Scenario struct {
	Name        string
	Description string
	// Seed drives the injector when the caller does not supply one.
	Seed int64

	// FaultLen is the length, in samples, of erasure and gain-glitch runs.
	// Defaults to 64.
	FaultLen int

	// Sample-level faults (per burst).
	SampleDrop   float64 // remove one sample at a random offset
	SampleDup    float64 // duplicate one sample at a random offset
	BurstErasure float64 // zero a FaultLen run
	GainGlitch   float64 // scale a FaultLen run by GlitchGain
	GlitchGain   float64 // default 0.05
	TimingJump   float64 // shift the burst by up to MaxJump samples
	MaxJump      int     // default 8
	CorruptSIG   float64 // negate random samples across the SIG symbols

	// Datagram-level faults (per UDP datagram).
	DgramLoss    float64
	DgramTrunc   float64
	DgramCorrupt float64
	DgramReorder float64

	// Scripted block faults, consumed by PanicBlock/StallBlock: the block
	// misbehaves once, after passing this many chunks. Negative disables.
	PanicAfter int
	StallAfter int
}

func (sc Scenario) withDefaults() Scenario {
	if sc.FaultLen <= 0 {
		sc.FaultLen = 64
	}
	if sc.GlitchGain == 0 {
		sc.GlitchGain = 0.05
	}
	if sc.MaxJump <= 0 {
		sc.MaxJump = 8
	}
	return sc
}

// scenarios is the built-in registry. Every entry must keep the chaos
// campaign's invariant: any fault it injects ends in a decoded burst or a
// typed error, never a crash or deadlock.
var scenarios = []Scenario{
	{
		Name:        "clean",
		Description: "no faults; baseline for the chaos campaign",
		PanicAfter:  -1, StallAfter: -1,
	},
	{
		Name:        "panic",
		Description: "a mid-graph block panics once after two chunks",
		PanicAfter:  2, StallAfter: -1,
	},
	{
		Name:        "stall",
		Description: "a mid-graph block stops consuming after two chunks",
		PanicAfter:  -1, StallAfter: 2,
	},
	{
		Name:        "sample-drop",
		Description: "random single-sample drops and duplications",
		SampleDrop:  0.35, SampleDup: 0.25,
		PanicAfter: -1, StallAfter: -1,
	},
	{
		Name:         "burst-erasure",
		Description:  "96-sample zeroed runs at random offsets",
		BurstErasure: 0.5, FaultLen: 96,
		PanicAfter: -1, StallAfter: -1,
	},
	{
		Name:        "gain-glitch",
		Description: "AGC glitch: a run scaled far below nominal gain",
		GainGlitch:  0.5, GlitchGain: 0.05,
		PanicAfter: -1, StallAfter: -1,
	},
	{
		Name:        "timing-jump",
		Description: "clock jumps: samples dropped or dead air inserted",
		TimingJump:  0.4, MaxJump: 8,
		PanicAfter: -1, StallAfter: -1,
	},
	{
		Name:        "corrupt-sig",
		Description: "L-SIG/HT-SIG symbols corrupted so header checks fail",
		CorruptSIG:  0.7,
		PanicAfter:  -1, StallAfter: -1,
	},
	{
		Name:        "dgram-loss",
		Description: "UDP datagrams silently dropped",
		DgramLoss:   0.2,
		PanicAfter:  -1, StallAfter: -1,
	},
	{
		Name:        "dgram-truncate",
		Description: "UDP datagrams cut short mid-payload",
		DgramTrunc:  0.3,
		PanicAfter:  -1, StallAfter: -1,
	},
	{
		Name:         "dgram-corrupt",
		Description:  "random byte flips inside UDP datagrams",
		DgramCorrupt: 0.3,
		PanicAfter:   -1, StallAfter: -1,
	},
	{
		Name:         "dgram-reorder",
		Description:  "UDP datagrams delayed and released out of order",
		DgramReorder: 0.3,
		PanicAfter:   -1, StallAfter: -1,
	},
	{
		Name:        "chaos-all",
		Description: "every fault class at once, plus a scripted panic",
		SampleDrop:  0.15, SampleDup: 0.1, BurstErasure: 0.2, GainGlitch: 0.2,
		TimingJump: 0.15, CorruptSIG: 0.15,
		DgramLoss: 0.1, DgramTrunc: 0.1, DgramCorrupt: 0.1, DgramReorder: 0.1,
		PanicAfter: 3, StallAfter: -1,
	},
}

// Names lists the registered scenarios in sorted order.
func Names() []string {
	out := make([]string, len(scenarios))
	for i, sc := range scenarios {
		out[i] = sc.Name
	}
	sort.Strings(out)
	return out
}

// Lookup finds a scenario by name, case-insensitively.
func Lookup(name string) (Scenario, error) {
	for _, sc := range scenarios {
		if strings.EqualFold(sc.Name, name) {
			return sc.withDefaults(), nil
		}
	}
	return Scenario{}, fmt.Errorf("faults: unknown scenario %q (have %s)", name, strings.Join(Names(), ", "))
}
