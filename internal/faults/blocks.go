package faults

import (
	"context"
	"sync/atomic"

	"repro/internal/flowgraph"
)

// recvAll receives one chunk from every input port, preserving the
// multi-antenna alignment the downstream blocks rely on. ok is false when
// any stream ended or the context was cancelled.
func recvAll(ctx context.Context, in []<-chan flowgraph.Chunk) ([][]complex128, bool) {
	burst := make([][]complex128, len(in))
	for i := range in {
		c, ok := flowgraph.Recv(ctx, in[i])
		if !ok {
			return nil, false
		}
		burst[i] = c
	}
	return burst, true
}

// sendAll forwards one chunk per output port.
func sendAll(ctx context.Context, out []chan<- flowgraph.Chunk, burst [][]complex128) bool {
	for i := range out {
		if !flowgraph.Send(ctx, out[i], burst[i]) {
			return false
		}
	}
	return true
}

// InjectBlock is an N-in/N-out flowgraph block that passes every aligned
// multi-stream burst through an Injector. Place it between the transmitter
// and the channel to model front-end impairments.
type InjectBlock struct {
	BlockName string
	Ports     int
	Inj       *Injector
}

// Name implements flowgraph.Block.
func (b *InjectBlock) Name() string { return b.BlockName }

// Inputs implements flowgraph.Block.
func (b *InjectBlock) Inputs() int { return b.Ports }

// Outputs implements flowgraph.Block.
func (b *InjectBlock) Outputs() int { return b.Ports }

// Run implements flowgraph.Block.
func (b *InjectBlock) Run(ctx context.Context, in []<-chan flowgraph.Chunk, out []chan<- flowgraph.Chunk) error {
	for {
		burst, ok := recvAll(ctx, in)
		if !ok {
			return ctx.Err()
		}
		burst = b.Inj.ApplyBurst(burst)
		if !sendAll(ctx, out, burst) {
			return ctx.Err()
		}
	}
}

// PanicBlock is an N-in/N-out pass-through that panics exactly once after
// forwarding After chunks per port (After < 0 disables). It receives a full
// aligned burst before panicking, so the failed attempt costs the stream one
// burst — an erasure — and a supervisor restart resumes alignment cleanly.
// It opts into restarts.
type PanicBlock struct {
	BlockName string
	Ports     int
	After     int
	seen      atomic.Int64
	fired     atomic.Bool
}

// Name implements flowgraph.Block.
func (b *PanicBlock) Name() string { return b.BlockName }

// Inputs implements flowgraph.Block.
func (b *PanicBlock) Inputs() int { return b.Ports }

// Outputs implements flowgraph.Block.
func (b *PanicBlock) Outputs() int { return b.Ports }

// Restartable implements flowgraph.Restartable.
func (b *PanicBlock) Restartable() bool { return true }

// Run implements flowgraph.Block.
func (b *PanicBlock) Run(ctx context.Context, in []<-chan flowgraph.Chunk, out []chan<- flowgraph.Chunk) error {
	for {
		burst, ok := recvAll(ctx, in)
		if !ok {
			return ctx.Err()
		}
		n := int(b.seen.Add(1)) - 1
		if b.After >= 0 && n >= b.After && b.fired.CompareAndSwap(false, true) {
			panic("faults: scripted panic")
		}
		if !sendAll(ctx, out, burst) {
			return ctx.Err()
		}
	}
}

// StallBlock is an N-in/N-out pass-through that stops making progress
// exactly once after forwarding After chunks per port (After < 0 disables):
// it parks until its context is cancelled — which is how the supervisor's
// watchdog unwedges it — then returns. It opts into restarts, so a policy
// with restart budget resumes the stream minus the stalled burst.
type StallBlock struct {
	BlockName string
	Ports     int
	After     int
	seen      atomic.Int64
	fired     atomic.Bool
}

// Name implements flowgraph.Block.
func (b *StallBlock) Name() string { return b.BlockName }

// Inputs implements flowgraph.Block.
func (b *StallBlock) Inputs() int { return b.Ports }

// Outputs implements flowgraph.Block.
func (b *StallBlock) Outputs() int { return b.Ports }

// Restartable implements flowgraph.Restartable.
func (b *StallBlock) Restartable() bool { return true }

// Run implements flowgraph.Block.
func (b *StallBlock) Run(ctx context.Context, in []<-chan flowgraph.Chunk, out []chan<- flowgraph.Chunk) error {
	for {
		burst, ok := recvAll(ctx, in)
		if !ok {
			return ctx.Err()
		}
		n := int(b.seen.Add(1)) - 1
		if b.After >= 0 && n >= b.After && b.fired.CompareAndSwap(false, true) {
			<-ctx.Done()
			return ctx.Err()
		}
		if !sendAll(ctx, out, burst) {
			return ctx.Err()
		}
	}
}
