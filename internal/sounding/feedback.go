package sounding

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/cmplx"

	"repro/internal/cmatrix"
)

// Quantized CSI feedback: the compact wire form a station reports to a
// precoding access point, in the spirit of 802.11's compressed beamforming
// report. Each kept subcarrier's channel matrix is encoded with one float32
// scale (the per-tone peak magnitude) and one byte of magnitude plus one
// byte of phase per complex entry — 8-bit polar quantization. A Group
// factor g keeps every g-th tone and lets Dequantize hold the value across
// the skipped neighbours (channels are smooth across adjacent tones), so a
// 4×4 report still fits one radio data frame.
//
// Layout (big-endian):
//
//	version(1)=1 rows(1) cols(1) group(1) nsc(2)
//	then per kept tone: scale float32(4), rows·cols × (mag(1), phase(1))
//
// A dead tone encodes scale 0 and dequantizes to the zero matrix, which
// Analyze degrades over gracefully.
const feedbackVersion = 1

const feedbackHeaderLen = 6

// FeedbackBytes returns the encoded size of a quantized report for the
// given channel shape and grouping factor.
func FeedbackBytes(rows, cols, nsc, group int) int {
	if group < 1 {
		group = 1
	}
	kept := (nsc + group - 1) / group
	return feedbackHeaderLen + kept*(4+2*rows*cols)
}

// Quantize encodes per-subcarrier channel matrices into the compact
// feedback form, keeping every group-th tone (group ≤ 1 keeps all). All
// non-nil matrices must share one shape with rows, cols ≤ 4; nil entries
// encode as dead tones.
func Quantize(h []*cmatrix.Matrix, group int) ([]byte, error) {
	if len(h) == 0 {
		return nil, fmt.Errorf("sounding: no channel matrices to quantize")
	}
	if len(h) > 0xFFFF {
		return nil, fmt.Errorf("sounding: %d subcarriers exceed the 16-bit count field", len(h))
	}
	if group < 1 {
		group = 1
	}
	rows, cols := 0, 0
	for _, hk := range h {
		if hk == nil {
			continue
		}
		if rows == 0 {
			rows, cols = hk.Rows, hk.Cols
		}
		if hk.Rows != rows || hk.Cols != cols {
			return nil, fmt.Errorf("sounding: ragged channel shapes %dx%d vs %dx%d", hk.Rows, hk.Cols, rows, cols)
		}
	}
	if rows == 0 {
		return nil, fmt.Errorf("sounding: all matrices nil")
	}
	if rows > 4 || cols > 4 {
		return nil, fmt.Errorf("sounding: shape %dx%d exceeds the 4x4 feedback bound", rows, cols)
	}
	out := make([]byte, 0, FeedbackBytes(rows, cols, len(h), group))
	out = append(out, feedbackVersion, byte(rows), byte(cols), byte(group))
	out = binary.BigEndian.AppendUint16(out, uint16(len(h)))
	for k := 0; k < len(h); k += group {
		hk := h[k]
		var scale float64
		if hk != nil {
			for _, v := range hk.Data {
				if a := cmplx.Abs(v); a > scale {
					scale = a
				}
			}
		}
		if hk == nil || scale < deadToneFrobenius {
			out = binary.BigEndian.AppendUint32(out, 0)
			out = append(out, make([]byte, 2*rows*cols)...)
			continue
		}
		out = binary.BigEndian.AppendUint32(out, math.Float32bits(float32(scale)))
		for _, v := range hk.Data {
			mag := math.Round(cmplx.Abs(v) / scale * 255)
			if mag > 255 {
				mag = 255
			}
			// Phase quantized to 1/256 turns; negative phases wrap.
			ph := cmplx.Phase(v) / (2 * math.Pi)
			ph -= math.Floor(ph)
			p := int(math.Round(ph*256)) & 0xFF
			out = append(out, byte(mag), byte(p))
		}
	}
	return out, nil
}

// Dequantize reverses Quantize, returning one matrix per original
// subcarrier: grouped tones are held across their skipped neighbours. The
// capacity and condition metrics of the reconstruction stay within the
// quantizer's bounded error of the original (see TestFeedbackRoundTrip).
func Dequantize(b []byte) ([]*cmatrix.Matrix, error) {
	if len(b) < feedbackHeaderLen {
		return nil, fmt.Errorf("sounding: feedback header needs %d bytes, got %d", feedbackHeaderLen, len(b))
	}
	if b[0] != feedbackVersion {
		return nil, fmt.Errorf("sounding: unsupported feedback version %d", b[0])
	}
	rows, cols, group := int(b[1]), int(b[2]), int(b[3])
	nsc := int(binary.BigEndian.Uint16(b[4:]))
	if rows < 1 || rows > 4 || cols < 1 || cols > 4 {
		return nil, fmt.Errorf("sounding: feedback shape %dx%d out of range", rows, cols)
	}
	if group < 1 || nsc < 1 {
		return nil, fmt.Errorf("sounding: feedback group %d / tone count %d invalid", group, nsc)
	}
	kept := (nsc + group - 1) / group
	want := feedbackHeaderLen + kept*(4+2*rows*cols)
	if len(b) < want {
		return nil, fmt.Errorf("sounding: feedback needs %d bytes, got %d", want, len(b))
	}
	out := make([]*cmatrix.Matrix, nsc)
	off := feedbackHeaderLen
	for t := 0; t < kept; t++ {
		scale := float64(math.Float32frombits(binary.BigEndian.Uint32(b[off:])))
		off += 4
		m := cmatrix.New(rows, cols)
		if scale > 0 {
			for i := range m.Data {
				mag := float64(b[off]) / 255 * scale
				ph := float64(b[off+1]) / 256 * 2 * math.Pi
				m.Data[i] = cmplx.Rect(mag, ph)
				off += 2
			}
		} else {
			off += 2 * rows * cols
		}
		for g := 0; g < group; g++ {
			k := t*group + g
			if k >= nsc {
				break
			}
			if g == 0 {
				out[k] = m
			} else {
				out[k] = m.Clone()
			}
		}
	}
	return out, nil
}
