package sounding

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/cmatrix"
)

// randomChannel draws nsc well-conditioned-ish Rayleigh channel matrices.
func randomChannel(r *rand.Rand, nsc, rows, cols int) []*cmatrix.Matrix {
	h := make([]*cmatrix.Matrix, nsc)
	for k := range h {
		m := cmatrix.New(rows, cols)
		for i := range m.Data {
			m.Data[i] = complex(r.NormFloat64(), r.NormFloat64()) * complex(math.Sqrt(0.5), 0)
		}
		h[k] = m
	}
	return h
}

func TestAnalyzeRankDeficientDegrades(t *testing.T) {
	// All-zero channel: a degraded single-stream report, not an error.
	dead := make([]*cmatrix.Matrix, 8)
	for i := range dead {
		dead[i] = cmatrix.New(2, 2)
	}
	rep, err := Analyze(dead, 100)
	if err != nil {
		t.Fatalf("all-zero channel must degrade, not error: %v", err)
	}
	if rep.RecommendedStreams != 1 {
		t.Errorf("all-zero channel recommended %d streams, want 1", rep.RecommendedStreams)
	}
	if rep.CapacityBps != 0 {
		t.Errorf("all-zero channel capacity %g, want 0", rep.CapacityBps)
	}
	if rep.DeadSubcarriers != 8 {
		t.Errorf("DeadSubcarriers = %d, want 8", rep.DeadSubcarriers)
	}

	// Regression: one dead tone among well-conditioned ones must not poison
	// the mean condition number (it used to contribute the 150 dB cap to the
	// average, collapsing the recommendation to one stream).
	good := cmatrix.FromRows([][]complex128{{1, 0.1}, {0.1, 1}})
	mixed := []*cmatrix.Matrix{good, cmatrix.New(2, 2), good, good}
	rep, err = Analyze(mixed, 100)
	if err != nil {
		t.Fatal(err)
	}
	if rep.DeadSubcarriers != 1 {
		t.Errorf("DeadSubcarriers = %d, want 1", rep.DeadSubcarriers)
	}
	if rep.MeanConditionDB > 20 {
		t.Errorf("one dead tone poisoned the condition mean: %g dB", rep.MeanConditionDB)
	}
	if rep.RecommendedStreams != 2 {
		t.Errorf("recommended %d streams with a healthy majority, want 2", rep.RecommendedStreams)
	}
}

func TestPerStreamSNR(t *testing.T) {
	// Identity channel, SNR 100: ZF noise gain 1 per stream, so each
	// stream's post-detection SNR is snr/nt = 50 → ~17 dB.
	rep, err := Analyze([]*cmatrix.Matrix{cmatrix.Identity(2)}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.PerStreamSNRdB) != 2 {
		t.Fatalf("PerStreamSNRdB = %v, want 2 entries", rep.PerStreamSNRdB)
	}
	want := 10 * math.Log10(50)
	for s, got := range rep.PerStreamSNRdB {
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("stream %d SNR %g dB, want %g", s, got, want)
		}
	}

	// A nearly rank-starved channel amplifies ZF noise: per-stream SNR must
	// fall well below the identity channel's.
	bad := cmatrix.FromRows([][]complex128{{1, 0.999}, {0.999, 1}})
	repBad, err := Analyze([]*cmatrix.Matrix{bad}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(repBad.PerStreamSNRdB) != 2 {
		t.Fatalf("PerStreamSNRdB = %v, want 2 entries", repBad.PerStreamSNRdB)
	}
	if repBad.PerStreamSNRdB[0] > want-10 {
		t.Errorf("correlated channel stream SNR %g dB, want ≪ %g", repBad.PerStreamSNRdB[0], want)
	}
}

func TestFeedbackRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for _, tc := range []struct {
		rows, cols, nsc, group int
	}{
		{2, 2, 52, 1},
		{2, 2, 52, 2},
		{4, 4, 52, 2},
		{1, 2, 56, 1},
	} {
		h := randomChannel(r, tc.nsc, tc.rows, tc.cols)
		b, err := Quantize(h, tc.group)
		if err != nil {
			t.Fatalf("%dx%d g%d: %v", tc.rows, tc.cols, tc.group, err)
		}
		if len(b) != FeedbackBytes(tc.rows, tc.cols, tc.nsc, tc.group) {
			t.Errorf("%dx%d g%d: encoded %d bytes, FeedbackBytes says %d",
				tc.rows, tc.cols, tc.group, len(b), FeedbackBytes(tc.rows, tc.cols, tc.nsc, tc.group))
		}
		got, err := Dequantize(b)
		if err != nil {
			t.Fatalf("%dx%d g%d dequantize: %v", tc.rows, tc.cols, tc.group, err)
		}
		if len(got) != tc.nsc {
			t.Fatalf("%dx%d g%d: %d tones back, want %d", tc.rows, tc.cols, tc.group, len(got), tc.nsc)
		}
		// The quantizer's bound under test: the capacity and condition
		// metrics of the reconstruction stay close to the original's, so
		// AP-side precoding decisions made on feedback match decisions made
		// on raw matrices.
		orig, err := Analyze(h, 100)
		if err != nil {
			t.Fatal(err)
		}
		rt, err := Analyze(got, 100)
		if err != nil {
			t.Fatal(err)
		}
		capErr := math.Abs(rt.CapacityBps - orig.CapacityBps)
		bound := 0.05*orig.CapacityBps + 0.1
		if tc.group > 1 {
			// Grouping holds tones flat; with i.i.d. per-tone draws this is
			// the worst case for interpolation, so allow a looser bound.
			bound = 0.35*orig.CapacityBps + 0.5
		}
		if capErr > bound {
			t.Errorf("%dx%d g%d: capacity error %.3f b/s/Hz exceeds %.3f (orig %.3f, rt %.3f)",
				tc.rows, tc.cols, tc.group, capErr, bound, orig.CapacityBps, rt.CapacityBps)
		}
		if tc.group == 1 && math.Abs(rt.MeanConditionDB-orig.MeanConditionDB) > 3 {
			t.Errorf("%dx%d: condition drifted %.2f dB over the round trip",
				tc.rows, tc.cols, rt.MeanConditionDB-orig.MeanConditionDB)
		}
	}
}

func TestFeedbackElementError(t *testing.T) {
	// Per-element reconstruction error is bounded by the quantizer design:
	// magnitude within scale/510 + phase arc scale·π/256.
	r := rand.New(rand.NewSource(9))
	h := randomChannel(r, 16, 2, 2)
	b, err := Quantize(h, 1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Dequantize(b)
	if err != nil {
		t.Fatal(err)
	}
	for k := range h {
		var scale float64
		for _, v := range h[k].Data {
			if a := cmplxAbs(v); a > scale {
				scale = a
			}
		}
		bound := scale * (1.0/510 + math.Pi/256 + 1e-9)
		for i := range h[k].Data {
			if e := cmplxAbs(h[k].Data[i] - got[k].Data[i]); e > bound {
				t.Fatalf("tone %d entry %d error %g exceeds bound %g", k, i, e, bound)
			}
		}
	}
}

func cmplxAbs(v complex128) float64 { return math.Hypot(real(v), imag(v)) }

func TestFeedbackDeadAndNilTones(t *testing.T) {
	good := cmatrix.FromRows([][]complex128{{1, 0}, {0, 1}})
	h := []*cmatrix.Matrix{good, nil, cmatrix.New(2, 2), good}
	b, err := Quantize(h, 1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Dequantize(b)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{1, 2} {
		if got[k].FrobeniusNorm() != 0 {
			t.Errorf("tone %d should dequantize dead, got %v", k, got[k])
		}
	}
	rep, err := Analyze(got, 100)
	if err != nil {
		t.Fatalf("Analyze over dequantized dead tones: %v", err)
	}
	if rep.DeadSubcarriers != 2 {
		t.Errorf("DeadSubcarriers = %d, want 2", rep.DeadSubcarriers)
	}
}

func TestFeedbackDecodeErrors(t *testing.T) {
	good := randomChannel(rand.New(rand.NewSource(3)), 8, 2, 2)
	b, err := Quantize(good, 1)
	if err != nil {
		t.Fatal(err)
	}
	for name, mut := range map[string][]byte{
		"empty":       {},
		"short":       b[:4],
		"bad-version": append([]byte{99}, b[1:]...),
		"truncated":   b[:len(b)-3],
		"bad-shape":   append([]byte{feedbackVersion, 9, 9}, b[3:]...),
	} {
		if _, err := Dequantize(mut); err == nil {
			t.Errorf("%s input should fail to decode", name)
		}
	}
	if _, err := Quantize(nil, 1); err == nil {
		t.Error("empty quantize input should fail")
	}
	if _, err := Quantize([]*cmatrix.Matrix{nil, nil}, 1); err == nil {
		t.Error("all-nil quantize input should fail")
	}
	ragged := []*cmatrix.Matrix{cmatrix.Identity(2), cmatrix.Identity(3)}
	if _, err := Quantize(ragged, 1); err == nil {
		t.Error("ragged shapes should fail")
	}
}
