package sounding

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/cmatrix"
)

func TestEigenvaluesKnown(t *testing.T) {
	// Diagonal matrix: eigenvalues are the diagonal.
	m := cmatrix.FromRows([][]complex128{{3, 0}, {0, 7}})
	eig, err := hermitianEigenvalues(m)
	if err != nil {
		t.Fatal(err)
	}
	sort.Float64s(eig)
	if math.Abs(eig[0]-3) > 1e-9 || math.Abs(eig[1]-7) > 1e-9 {
		t.Errorf("eig = %v, want [3 7]", eig)
	}
	// Hermitian with complex off-diagonal: [[2, i],[−i, 2]] has eigenvalues 1, 3.
	m2 := cmatrix.FromRows([][]complex128{{2, 1i}, {-1i, 2}})
	eig2, err := hermitianEigenvalues(m2)
	if err != nil {
		t.Fatal(err)
	}
	sort.Float64s(eig2)
	if math.Abs(eig2[0]-1) > 1e-9 || math.Abs(eig2[1]-3) > 1e-9 {
		t.Errorf("eig = %v, want [1 3]", eig2)
	}
}

func TestEigenvaluesMatchTraceAndDet(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 30; trial++ {
		n := 2 + trial%3
		h := cmatrix.New(n, n)
		for i := range h.Data {
			h.Data[i] = complex(r.NormFloat64(), r.NormFloat64())
		}
		gram := cmatrix.Mul(h.Hermitian(), h) // Hermitian PSD
		eig, err := hermitianEigenvalues(gram)
		if err != nil {
			t.Fatal(err)
		}
		var trace, prod float64 = 0, 1
		for _, l := range eig {
			trace += l
			prod *= l
		}
		var wantTrace float64
		for i := 0; i < n; i++ {
			wantTrace += real(gram.At(i, i))
		}
		det, _ := gram.Det()
		if math.Abs(trace-wantTrace) > 1e-8*math.Abs(wantTrace)+1e-10 {
			t.Fatalf("trial %d: Σλ = %g, trace = %g", trial, trace, wantTrace)
		}
		if math.Abs(prod-real(det)) > 1e-6*math.Abs(real(det))+1e-9 {
			t.Fatalf("trial %d: Πλ = %g, det = %g", trial, prod, real(det))
		}
	}
}

func TestAnalyzeValidation(t *testing.T) {
	if _, err := Analyze(nil, 10); err == nil {
		t.Error("no matrices should fail")
	}
	if _, err := Analyze([]*cmatrix.Matrix{cmatrix.Identity(2)}, 0); err == nil {
		t.Error("zero SNR should fail")
	}
	if _, err := Analyze([]*cmatrix.Matrix{nil, nil}, 10); err == nil {
		t.Error("all-nil matrices should fail")
	}
}

func TestAnalyzeIdentityChannel(t *testing.T) {
	// H = I (2x2): capacity = 2·log2(1+SNR/2), condition number 1,
	// recommend 2 streams.
	h := []*cmatrix.Matrix{cmatrix.Identity(2)}
	rep, err := Analyze(h, 100)
	if err != nil {
		t.Fatal(err)
	}
	want := 2 * math.Log2(1+50)
	if math.Abs(rep.CapacityBps-want) > 1e-9 {
		t.Errorf("capacity %g, want %g", rep.CapacityBps, want)
	}
	if math.Abs(rep.MeanConditionDB) > 1e-9 {
		t.Errorf("condition %g dB, want 0", rep.MeanConditionDB)
	}
	if rep.RecommendedStreams != 2 {
		t.Errorf("recommended %d streams, want 2", rep.RecommendedStreams)
	}
}

func TestAnalyzeRankOneChannel(t *testing.T) {
	// Rank-1 H (keyhole): enormous condition number, recommend 1 stream,
	// capacity ≈ single-stream.
	h := []*cmatrix.Matrix{cmatrix.FromRows([][]complex128{{1, 1}, {1, 1}})}
	rep, err := Analyze(h, 100)
	if err != nil {
		t.Fatal(err)
	}
	if rep.RecommendedStreams != 1 {
		t.Errorf("rank-1 channel recommended %d streams", rep.RecommendedStreams)
	}
	if rep.MeanConditionDB < 60 {
		t.Errorf("rank-1 condition only %g dB", rep.MeanConditionDB)
	}
	// Capacity = log2(1 + SNR/2·4) (single eigenvalue 4).
	want := math.Log2(1 + 200)
	if math.Abs(rep.CapacityBps-want) > 1e-6 {
		t.Errorf("capacity %g, want %g", rep.CapacityBps, want)
	}
}

func TestCapacityGrowsWithSNRAndRank(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	h := cmatrix.New(2, 2)
	for i := range h.Data {
		h.Data[i] = complex(r.NormFloat64(), r.NormFloat64()) * complex(math.Sqrt(0.5), 0)
	}
	hs := []*cmatrix.Matrix{h}
	lo, err := Analyze(hs, 10)
	if err != nil {
		t.Fatal(err)
	}
	hi, err := Analyze(hs, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if hi.CapacityBps <= lo.CapacityBps {
		t.Error("capacity did not grow with SNR")
	}
}
