// Package sounding derives channel-state metrics from the receiver's MIMO
// channel estimate — the "evaluate the channel conditions" purpose the
// paper builds its instrumentation for: per-subcarrier Shannon capacity,
// condition number, and an effective-rank indicator that a transmitter can
// use to choose between spatial multiplexing and single-stream operation.
package sounding

import (
	"fmt"
	"math"
	"math/cmplx"

	"repro/internal/cmatrix"
)

// Report summarizes one channel estimate.
type Report struct {
	// CapacityBps is the mean per-subcarrier Shannon capacity in
	// bit/s/Hz: log2 det(I + SNR/N_TX · HHᴴ).
	CapacityBps float64
	// MeanConditionDB is the mean condition number of H across live
	// subcarriers, in dB (singular-value spread; large = rank-starved).
	// Dead (all-zero) tones are excluded from the average and counted in
	// DeadSubcarriers instead, so one faded tone cannot poison the mean.
	MeanConditionDB float64
	// RecommendedStreams is the stream count that maximizes a rate
	// proxy: min(N_TX, N_RX) when the channel is well conditioned,
	// degrading toward 1 as the condition number grows.
	RecommendedStreams int
	// PerStreamSNRdB is the mean post-detection SNR each spatial stream
	// would see under linear ZF detection — snr / (N_TX·[(HᴴH)⁻¹]_ss),
	// averaged over the live subcarriers, in dB. len == RecommendedStreams'
	// upper bound min(N_RX, N_TX); empty when no tone was invertible. This
	// is the per-stream figure a precoding AP ranks stations by.
	PerStreamSNRdB []float64
	// DeadSubcarriers counts tones whose channel was effectively zero
	// (rank-deficient estimate, e.g. a deep notch or a broken estimate).
	DeadSubcarriers int
}

// deadToneFrobenius is the Frobenius-norm floor below which a subcarrier's
// channel is treated as dead rather than fed to the eigen/inversion path.
const deadToneFrobenius = 1e-9

// Analyze computes the report from per-subcarrier channel matrices (as
// produced by chanest.HTEstimate.DataMatrices) at the given linear SNR.
//
// Rank-deficient input degrades gracefully rather than erroring: all-zero
// subcarriers are skipped (counted in DeadSubcarriers), and a channel whose
// every tone is dead yields a report recommending a single stream with zero
// capacity — the conservative fallback a transmitter can always act on.
func Analyze(h []*cmatrix.Matrix, snr float64) (*Report, error) {
	if len(h) == 0 {
		return nil, fmt.Errorf("sounding: no channel matrices")
	}
	if snr <= 0 {
		return nil, fmt.Errorf("sounding: SNR must be positive")
	}
	var capAcc, condAcc float64
	var count int
	maxStreams := 0
	rep := &Report{}
	var snrAcc []float64
	var snrCount int
	allNil := true
	for k, hk := range h {
		if hk == nil {
			continue
		}
		allNil = false
		if maxStreams == 0 {
			maxStreams = hk.Rows
			if hk.Cols < maxStreams {
				maxStreams = hk.Cols
			}
			snrAcc = make([]float64, maxStreams)
		}
		if hk.FrobeniusNorm() < deadToneFrobenius {
			rep.DeadSubcarriers++
			continue
		}
		c, cond, err := subcarrierMetrics(hk, snr)
		if err != nil {
			return nil, fmt.Errorf("sounding: subcarrier %d: %w", k, err)
		}
		capAcc += c
		condAcc += cond
		count++
		if diag, ok := zfNoiseGains(hk); ok {
			nt := float64(hk.Cols)
			for s := 0; s < maxStreams && s < len(diag); s++ {
				snrAcc[s] += snr / (nt * diag[s])
			}
			snrCount++
		}
	}
	if allNil {
		return nil, fmt.Errorf("sounding: all matrices nil")
	}
	if count == 0 {
		// Every tone dead: degrade to the single-stream fallback instead of
		// failing — the caller still gets an actionable recommendation.
		rep.MeanConditionDB = 150
		rep.RecommendedStreams = 1
		return rep, nil
	}
	rep.CapacityBps = capAcc / float64(count)
	rep.MeanConditionDB = 10 * math.Log10(condAcc/float64(count))
	rep.RecommendedStreams = recommendStreams(maxStreams, rep.MeanConditionDB)
	if snrCount > 0 {
		rep.PerStreamSNRdB = make([]float64, maxStreams)
		for s := range rep.PerStreamSNRdB {
			rep.PerStreamSNRdB[s] = 10 * math.Log10(snrAcc[s]/float64(snrCount))
		}
	}
	return rep, nil
}

// zfNoiseGains returns the diagonal of (HᴴH)⁻¹ — the per-stream noise
// amplification of a ZF detector. A singular gram (rank-starved but not
// all-zero tone) reports ok=false and the tone is skipped from the
// per-stream average rather than failing the whole report.
func zfNoiseGains(h *cmatrix.Matrix) ([]float64, bool) {
	gram := cmatrix.Mul(h.Hermitian(), h)
	inv, err := gram.Inverse()
	if err != nil {
		return nil, false
	}
	diag := make([]float64, gram.Rows)
	for i := range diag {
		d := real(inv.At(i, i))
		if d <= 0 || math.IsNaN(d) || math.IsInf(d, 0) {
			return nil, false
		}
		diag[i] = d
	}
	return diag, true
}

// ConditionDB returns the condition number of one subcarrier's channel
// matrix in dB — the singular-value spread that localises rank starvation to
// individual tones. A numerically singular matrix reports the 150 dB cap.
func ConditionDB(h *cmatrix.Matrix) (float64, error) {
	// Condition is SNR-independent; any positive SNR works here.
	_, cond, err := subcarrierMetrics(h, 1)
	if err != nil {
		return 0, err
	}
	return 10 * math.Log10(cond), nil
}

// subcarrierMetrics returns capacity (bit/s/Hz) and the linear condition
// number (ratio of extreme eigenvalues of HᴴH) for one subcarrier.
func subcarrierMetrics(h *cmatrix.Matrix, snr float64) (capacity, condition float64, err error) {
	gram := cmatrix.Mul(h.Hermitian(), h)
	eig, err := hermitianEigenvalues(gram)
	if err != nil {
		return 0, 0, err
	}
	nt := float64(h.Cols)
	var c float64
	lmin, lmax := math.Inf(1), 0.0
	for _, l := range eig {
		if l < 0 {
			l = 0
		}
		c += math.Log2(1 + snr/nt*l)
		if l < lmin {
			lmin = l
		}
		if l > lmax {
			lmax = l
		}
	}
	if lmin <= 1e-15 {
		return c, 1e15, nil
	}
	return c, lmax / lmin, nil
}

// hermitianEigenvalues computes the eigenvalues of a small Hermitian PSD
// matrix by the cyclic Jacobi method (complex rotations), adequate for the
// ≤4×4 matrices of this receiver.
func hermitianEigenvalues(m *cmatrix.Matrix) ([]float64, error) {
	if m.Rows != m.Cols {
		return nil, fmt.Errorf("eigenvalues of non-square matrix")
	}
	n := m.Rows
	a := m.Clone()
	for sweep := 0; sweep < 50; sweep++ {
		var off float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += sqAbs(a.At(i, j))
			}
		}
		if off < 1e-24 {
			break
		}
		for p := 0; p < n; p++ {
			for q := p + 1; q < n; q++ {
				apq := a.At(p, q)
				if cmplx.Abs(apq) < 1e-15 {
					continue
				}
				app := real(a.At(p, p))
				aqq := real(a.At(q, q))
				// Complex Jacobi rotation A ← JᴴAJ zeroing a[p][q], with
				// J[p][p]=c, J[p][q]=s·e^{jφ}, J[q][p]=−s·e^{−jφ}, J[q][q]=c
				// and φ = arg(a[p][q]).
				ephi := cmplx.Exp(complex(0, cmplx.Phase(apq)))
				g := cmplx.Abs(apq)
				theta := 0.5 * math.Atan2(2*g, aqq-app)
				c := complex(math.Cos(theta), 0)
				s := complex(math.Sin(theta), 0)
				// B = A·J (columns p and q change).
				for k := 0; k < n; k++ {
					akp := a.At(k, p)
					akq := a.At(k, q)
					a.Set(k, p, akp*c-akq*s*cmplx.Conj(ephi))
					a.Set(k, q, akp*s*ephi+akq*c)
				}
				// A' = Jᴴ·B (rows p and q change).
				for k := 0; k < n; k++ {
					apk := a.At(p, k)
					aqk := a.At(q, k)
					a.Set(p, k, apk*c-aqk*s*ephi)
					a.Set(q, k, apk*s*cmplx.Conj(ephi)+aqk*c)
				}
			}
		}
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = real(a.At(i, i))
	}
	return out, nil
}

func sqAbs(v complex128) float64 { return real(v)*real(v) + imag(v)*imag(v) }

// recommendStreams maps the mean condition number to a stream count:
// a rank-starved channel (condition ≫ 10 dB per excess stream) should fall
// back to fewer streams.
func recommendStreams(maxStreams int, condDB float64) int {
	s := maxStreams
	for s > 1 && condDB > 15*float64(maxStreams-s+1) {
		s--
	}
	return s
}
