package clock

import (
	"testing"
	"time"
)

func TestSystemBasics(t *testing.T) {
	before := System.Now()
	if System.Since(before) < 0 {
		t.Fatalf("negative Since")
	}
	tm := System.NewTimer(time.Hour)
	if !tm.Stop() {
		t.Fatalf("Stop on unfired timer should report true")
	}
	tk := System.NewTicker(time.Hour)
	tk.Stop()
}

func TestFakeAfterFiresOnAdvance(t *testing.T) {
	f := NewFake(time.Unix(1000, 0))
	ch := f.After(5 * time.Second)
	select {
	case <-ch:
		t.Fatalf("fired before Advance")
	default:
	}
	f.Advance(4 * time.Second)
	select {
	case <-ch:
		t.Fatalf("fired early")
	default:
	}
	f.Advance(time.Second)
	got := <-ch
	if want := time.Unix(1005, 0); !got.Equal(want) {
		t.Fatalf("fired at %v, want %v", got, want)
	}
}

func TestFakeTimerStop(t *testing.T) {
	f := NewFake(time.Unix(0, 0))
	tm := f.NewTimer(time.Second)
	if !tm.Stop() {
		t.Fatalf("Stop before firing should report true")
	}
	f.Advance(2 * time.Second)
	select {
	case <-tm.C:
		t.Fatalf("stopped timer fired")
	default:
	}
	if tm.Stop() {
		t.Fatalf("second Stop should report false")
	}
}

func TestFakeTickerRepeats(t *testing.T) {
	f := NewFake(time.Unix(0, 0))
	tk := f.NewTicker(time.Second)
	defer tk.Stop()
	// One Advance crossing several periods delivers what the 1-buffered
	// channel can hold (stdlib ticker semantics: missed ticks are dropped).
	f.Advance(time.Second)
	<-tk.C
	f.Advance(time.Second)
	<-tk.C
	f.Advance(5 * time.Second)
	if n := len(tk.C); n != 1 {
		t.Fatalf("buffered ticks = %d, want 1 (drops under slow consumer)", n)
	}
}

func TestFakeSinceAndNowCalls(t *testing.T) {
	f := NewFake(time.Unix(100, 0))
	t0 := f.Now()
	f.Advance(3 * time.Second)
	if d := f.Since(t0); d != 3*time.Second {
		t.Fatalf("Since = %v, want 3s", d)
	}
	if f.NowCalls() < 2 {
		t.Fatalf("NowCalls = %d, want >= 2", f.NowCalls())
	}
}

func TestOr(t *testing.T) {
	if Or(nil) != System {
		t.Fatalf("Or(nil) != System")
	}
	f := NewFake(time.Unix(0, 0))
	if Or(f) != Clock(f) {
		t.Fatalf("Or(f) != f")
	}
}
