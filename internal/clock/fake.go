package clock

import (
	"runtime"
	"sync"
	"time"
)

// Fake is a manually-advanced Clock for tests. All waiters (After, Timer,
// Ticker) fire synchronously inside Advance when their deadline is reached,
// so time-driven code paths run deterministically with no real sleeping.
// The zero value is not usable; construct with NewFake.
type Fake struct {
	mu      sync.Mutex
	now     time.Time
	waiters []*fakeWaiter
	// nowCalls counts Now invocations, letting tests assert the injected
	// clock (not the wall clock) was consulted.
	nowCalls int
}

type fakeWaiter struct {
	at     time.Time
	period time.Duration // 0 for one-shot
	ch     chan time.Time
	dead   bool
}

// NewFake returns a Fake clock starting at start.
func NewFake(start time.Time) *Fake {
	return &Fake{now: start}
}

// Now implements Clock.
func (f *Fake) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.nowCalls++
	return f.now
}

// NowCalls reports how many times Now has been called.
func (f *Fake) NowCalls() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.nowCalls
}

// Since implements Clock.
func (f *Fake) Since(t time.Time) time.Duration { return f.Now().Sub(t) }

// After implements Clock.
func (f *Fake) After(d time.Duration) <-chan time.Time {
	return f.add(d, 0).ch
}

// NewTimer implements Clock.
func (f *Fake) NewTimer(d time.Duration) *Timer {
	w := f.add(d, 0)
	return &Timer{C: w.ch, stop: func() bool { return f.remove(w) }}
}

// NewTicker implements Clock.
func (f *Fake) NewTicker(d time.Duration) *Ticker {
	if d <= 0 {
		panic("clock: non-positive ticker period")
	}
	w := f.add(d, d)
	return &Ticker{C: w.ch, stop: func() { f.remove(w) }}
}

func (f *Fake) add(d, period time.Duration) *fakeWaiter {
	f.mu.Lock()
	defer f.mu.Unlock()
	w := &fakeWaiter{at: f.now.Add(d), period: period, ch: make(chan time.Time, 1)}
	f.waiters = append(f.waiters, w)
	return w
}

func (f *Fake) remove(w *fakeWaiter) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if w.dead {
		return false
	}
	w.dead = true
	return true
}

// Advance moves the fake time forward by d, firing every waiter whose
// deadline is crossed, in deadline order. Ticker deliveries that find their
// buffer full are dropped, matching time.Ticker semantics.
func (f *Fake) Advance(d time.Duration) {
	f.mu.Lock()
	target := f.now.Add(d)
	for {
		var next *fakeWaiter
		for _, w := range f.waiters {
			if w.dead || w.at.After(target) {
				continue
			}
			if next == nil || w.at.Before(next.at) {
				next = w
			}
		}
		if next == nil {
			break
		}
		if next.at.After(f.now) {
			f.now = next.at
		}
		select {
		case next.ch <- next.at:
		default:
		}
		if next.period > 0 {
			next.at = next.at.Add(next.period)
		} else {
			next.dead = true
		}
	}
	f.now = target
	live := f.waiters[:0]
	for _, w := range f.waiters {
		if !w.dead {
			live = append(live, w)
		}
	}
	f.waiters = live
	f.mu.Unlock()
}

// BlockUntilWaiters spins until at least n live waiters are registered —
// the test-side rendezvous for code that sets up timers asynchronously.
func (f *Fake) BlockUntilWaiters(n int) {
	for {
		f.mu.Lock()
		live := 0
		for _, w := range f.waiters {
			if !w.dead {
				live++
			}
		}
		f.mu.Unlock()
		if live >= n {
			return
		}
		runtime.Gosched()
	}
}

// Compile-time check.
var _ Clock = (*Fake)(nil)
