// Package clock abstracts wall-clock scheduling behind an injectable
// interface so time-driven logic — the flowgraph stall watchdog, restart
// backoff, UDP read deadlines, throughput measurement — is unit-testable
// without real sleeps, and so the detrand analyzer can forbid raw time.Now
// in deterministic packages while whitelisting this one seam.
//
// Production code takes a Clock (usually defaulting to System); tests
// substitute a Fake and drive it with Advance.
package clock

import "time"

// Clock is the wall-clock surface the repo's time-driven code is allowed to
// touch. It mirrors the stdlib time functions the flowgraph and radio
// packages need; anything not on this interface is a lint error in
// deterministic packages (see the detrand analyzer).
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// Since returns the elapsed time since t.
	Since(t time.Time) time.Duration
	// After returns a channel that delivers one tick after d.
	After(d time.Duration) <-chan time.Time
	// NewTimer returns a one-shot timer.
	NewTimer(d time.Duration) *Timer
	// NewTicker returns a repeating ticker.
	NewTicker(d time.Duration) *Ticker
}

// Timer is a stoppable one-shot timer, the subset of time.Timer the repo
// uses. C delivers at most one tick.
type Timer struct {
	C    <-chan time.Time
	stop func() bool
}

// Stop prevents the timer from firing. It reports whether the call stopped
// the timer before it fired.
func (t *Timer) Stop() bool {
	if t.stop == nil {
		return false
	}
	return t.stop()
}

// Ticker delivers ticks on C at a fixed period until stopped.
type Ticker struct {
	C    <-chan time.Time
	stop func()
}

// Stop turns off the ticker.
func (t *Ticker) Stop() {
	if t.stop != nil {
		t.stop()
	}
}

// System is the real wall clock.
var System Clock = systemClock{}

type systemClock struct{}

func (systemClock) Now() time.Time                         { return time.Now() }
func (systemClock) Since(t time.Time) time.Duration        { return time.Since(t) }
func (systemClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

func (systemClock) NewTimer(d time.Duration) *Timer {
	t := time.NewTimer(d)
	return &Timer{C: t.C, stop: t.Stop}
}

func (systemClock) NewTicker(d time.Duration) *Ticker {
	t := time.NewTicker(d)
	return &Ticker{C: t.C, stop: t.Stop}
}

// Or returns c when non-nil and System otherwise — the idiom for optional
// clock fields on config structs.
func Or(c Clock) Clock {
	if c != nil {
		return c
	}
	return System
}
