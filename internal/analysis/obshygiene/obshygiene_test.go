package obshygiene_test

import (
	"testing"

	"repro/internal/analysis/framework/atest"
	"repro/internal/analysis/obshygiene"
)

func TestObshygiene(t *testing.T) {
	atest.Run(t, "testdata", obshygiene.Analyzer, "metrics")
}
