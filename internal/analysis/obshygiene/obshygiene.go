// Package obshygiene keeps the observability surface greppable and
// Prometheus-exportable by construction. It enforces three invariants over
// the internal/obs registry and structured logging:
//
//  1. Metric names passed to Registry.Counter/Gauge/Histogram and label
//     keys in Label literals must be compile-time constant strings that
//     match the Prometheus charsets ([a-zA-Z_:][a-zA-Z0-9_:]* for names,
//     [a-zA-Z_][a-zA-Z0-9_]* for label keys) — a name computed at runtime
//     can silently fork a metric family per request.
//  2. Histograms must be registered with explicit buckets; nil buckets
//     export a histogram no dashboard can read.
//  3. The canonical correlation keys packet_id, trace_id, block, node and
//     burst must be spelled through the obs.Key* constants wherever they
//     appear as slog attribute keys or label keys. Raw literals that
//     normalize to a canonical key (packetID, packet-id, ...) are exactly
//     the drift that breaks cross-process trace joins.
//
// Matching is structural (types named Registry/Label, the log/slog attr
// constructors), so fixtures and the real repro/internal/obs package are
// analyzed identically. Audited exceptions annotate //mimonet:obshygiene-ok.
package obshygiene

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"
	"strings"

	"repro/internal/analysis/framework"
)

const exemptTag = "obshygiene-ok"

var (
	metricNameRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelKeyRE   = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)

	// registryMethods maps the Registry constructor methods to the index of
	// their buckets argument (-1 when the method has none).
	registryMethods = map[string]int{"Counter": -1, "Gauge": -1, "Histogram": 2}

	// slogAttrCtors are the log/slog attribute constructors whose first
	// argument is a key.
	slogAttrCtors = map[string]bool{
		"String": true, "Int": true, "Int64": true, "Uint64": true,
		"Float64": true, "Bool": true, "Duration": true, "Time": true,
		"Any": true, "Group": true,
	}

	// canonicalKeys maps normalized spellings to the canonical key and the
	// obs constant that carries it.
	canonicalKeys = map[string]struct{ key, constName string }{
		"packetid": {"packet_id", "KeyPacketID"},
		"traceid":  {"trace_id", "KeyTraceID"},
		"block":    {"block", "KeyBlock"},
		"node":     {"node", "KeyNode"},
		"burst":    {"burst", "KeyBurst"},
	}
)

// Analyzer is the obshygiene analyzer.
var Analyzer = &framework.Analyzer{
	Name: "obshygiene",
	Doc: "require constant Prometheus-charset metric names and label keys, explicit histogram buckets, " +
		"and canonical obs.Key* spellings for correlation keys",
	Run: run,
}

func run(pass *framework.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkRegistryCall(pass, n)
				checkSlogAttr(pass, n)
			case *ast.CompositeLit:
				checkLabelLit(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkRegistryCall validates metric names and histogram buckets at
// Registry.Counter/Gauge/Histogram call sites.
func checkRegistryCall(pass *framework.Pass, call *ast.CallExpr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	bucketsArg, ok := registryMethods[sel.Sel.Name]
	if !ok || !isRegistryExpr(pass.Info, sel.X) || len(call.Args) == 0 {
		return
	}
	name := call.Args[0]
	val, isConst := constString(pass.Info, name)
	switch {
	case !isConst:
		report(pass, name.Pos(), "metric name is not a compile-time constant string; declare it as a const so families cannot fork at runtime")
	case !metricNameRE.MatchString(val):
		report(pass, name.Pos(), fmt.Sprintf("metric name %q does not match the Prometheus charset [a-zA-Z_:][a-zA-Z0-9_:]*", val))
	}
	if bucketsArg >= 0 && bucketsArg < len(call.Args) && isNilExpr(pass.Info, call.Args[bucketsArg]) {
		report(pass, call.Args[bucketsArg].Pos(),
			fmt.Sprintf("histogram %s registered with nil buckets; pass explicit bounds (e.g. obs.ExpBuckets)", describeName(val, isConst)))
	}
}

// checkLabelLit validates the Key field of obs.Label composite literals.
func checkLabelLit(pass *framework.Pass, lit *ast.CompositeLit) {
	tv, ok := pass.Info.Types[lit]
	if !ok || !isNamed(tv.Type, "Label") {
		return
	}
	var key ast.Expr
	for _, elt := range lit.Elts {
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			if id, ok := kv.Key.(*ast.Ident); ok && id.Name == "Key" {
				key = kv.Value
			}
			continue
		}
		// Positional literal: Key is the first field.
		if key == nil {
			key = elt
		}
	}
	if key == nil {
		return
	}
	val, isConst := constString(pass.Info, key)
	switch {
	case !isConst:
		report(pass, key.Pos(), "label key is not a compile-time constant string; declare it as a const")
		return
	case !labelKeyRE.MatchString(val):
		report(pass, key.Pos(), fmt.Sprintf("label key %q does not match the Prometheus charset [a-zA-Z_][a-zA-Z0-9_]*", val))
		return
	}
	checkCanonicalSpelling(pass, key, val, "label key")
}

// checkSlogAttr validates the key argument of log/slog attribute
// constructors (slog.String, slog.Uint64, ...). The variadic
// logger.Info("msg", "key", v) form is out of scope — it has no statically
// distinguished key positions.
func checkSlogAttr(pass *framework.Pass, call *ast.CallExpr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !slogAttrCtors[sel.Sel.Name] || len(call.Args) == 0 {
		return
	}
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "log/slog" {
		return
	}
	key := call.Args[0]
	if val, isConst := constString(pass.Info, key); isConst {
		checkCanonicalSpelling(pass, key, val, "slog key")
	}
}

// checkCanonicalSpelling reports raw literals (and misspelled constants)
// that collide with a canonical correlation key after normalization.
func checkCanonicalSpelling(pass *framework.Pass, expr ast.Expr, val, what string) {
	norm := strings.ToLower(strings.NewReplacer("_", "", "-", "").Replace(val))
	canon, ok := canonicalKeys[norm]
	if !ok {
		return
	}
	if val == canon.key && !isRawStringLit(expr) {
		return // spelled through a constant with the canonical value
	}
	report(pass, expr.Pos(),
		fmt.Sprintf("%s %q shadows the canonical correlation key %q; spell it via obs.%s", what, val, canon.key, canon.constName))
}

// report applies the annotation escape before emitting a diagnostic.
func report(pass *framework.Pass, pos token.Pos, msg string) {
	if pass.Exempt(pos, exemptTag) {
		return
	}
	pass.Reportf(pos, "%s (or annotate //mimonet:obshygiene-ok)", msg)
}

// isRegistryExpr reports whether e has type *Registry or Registry for any
// named type called Registry.
func isRegistryExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok {
		return false
	}
	return isNamed(tv.Type, "Registry")
}

func isNamed(t types.Type, name string) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == name
}

// constString returns the compile-time string value of e, if it has one.
func constString(info *types.Info, e ast.Expr) (string, bool) {
	tv, ok := info.Types[ast.Unparen(e)]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

func isRawStringLit(e ast.Expr) bool {
	_, ok := ast.Unparen(e).(*ast.BasicLit)
	return ok
}

func isNilExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[ast.Unparen(e)]
	return ok && tv.IsNil()
}

func describeName(val string, isConst bool) string {
	if !isConst {
		return "(dynamic name)"
	}
	return val
}
