// Package metrics is the obshygiene fixture: a structural mirror of the
// internal/obs registry surface (types named Registry and Label) plus real
// log/slog attribute constructors, covering constant-name enforcement, the
// Prometheus charsets, nil histogram buckets, and canonical-key spelling.
package metrics

import "log/slog"

// Label mirrors obs.Label.
type Label struct{ Key, Value string }

// Registry mirrors the obs.Registry constructor surface.
type Registry struct{}

func (r *Registry) Counter(name, help string, labels ...Label) int { return 0 }
func (r *Registry) Gauge(name, help string, labels ...Label) int   { return 0 }
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) int {
	return 0
}

const (
	// KeyBlock carries the canonical spelling, like obs.KeyBlock.
	KeyBlock   = "block"
	goodName   = "mimonet_frames_total"
	namePrefix = "mimonet_"
)

func wire(r *Registry, suffix string, n int) {
	r.Counter(goodName, "frames seen")
	r.Counter(namePrefix+"tx_bytes_total", "constant-folded name is fine")
	r.Gauge("mimonet_queue_depth", "literal constant name is fine")

	r.Counter("mimonet_frames_"+suffix, "help") // want "metric name is not a compile-time constant string"
	r.Gauge("2mimonet.depth", "help")           // want `metric name "2mimonet.depth" does not match the Prometheus charset`

	r.Histogram("mimonet_decode_seconds", "help", nil) // want "histogram mimonet_decode_seconds registered with nil buckets"
	r.Histogram("mimonet_equalize_seconds", "help", []float64{0.001, 0.01, 0.1})

	_ = Label{Key: KeyBlock, Value: "fft"}
	_ = Label{"dir", "tx"}
	_ = Label{Key: "block", Value: "fft"}         // want `label key "block" shadows the canonical correlation key "block"; spell it via obs\.KeyBlock`
	_ = Label{Key: "packetID", Value: "p"}        // want `label key "packetID" shadows the canonical correlation key "packet_id"; spell it via obs\.KeyPacketID`
	_ = Label{Key: "bad-key", Value: "x"}         // want `label key "bad-key" does not match the Prometheus charset`
	_ = Label{Key: "radio_" + suffix, Value: "x"} // want "label key is not a compile-time constant string"

	_ = slog.String("addr", "127.0.0.1:4000")
	_ = slog.Uint64("trace_id", 7)  // want `slog key "trace_id" shadows the canonical correlation key "trace_id"; spell it via obs\.KeyTraceID`
	_ = slog.String("node", "rx-0") // want `slog key "node" shadows the canonical correlation key "node"; spell it via obs\.KeyNode`
	_ = slog.Int("burst", n)        // want `slog key "burst" shadows the canonical correlation key "burst"; spell it via obs\.KeyBurst`
	_ = slog.Uint64(KeyBlock+"", 9)

	//mimonet:obshygiene-ok exporter self-description metric, name audited
	r.Counter("mimonet_export_"+suffix, "help")
}
