package clockseam_test

import (
	"testing"

	"repro/internal/analysis/clockseam"
	"repro/internal/analysis/framework/atest"
)

func TestClockseam(t *testing.T) {
	atest.Run(t, "testdata", clockseam.Analyzer, "svc", "clock")
}
