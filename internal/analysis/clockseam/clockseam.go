// Package clockseam extends detrand's wall-clock rule from the six
// deterministic packages to the whole module: no package except
// repro/internal/clock may call the time functions that read or schedule on
// the wall clock (time.Now, time.Sleep, time.After, time.NewTimer, …).
// Everything else threads the injectable clock.Clock seam, which is what
// lets the E23 soak, the gateway idle eviction, and the flowgraph watchdog
// run under a fake clock — the determinism guarantee the repo's
// PER-vs-analytic-BER comparisons depend on.
//
// Process entry points (cmd/ main functions, examples) that genuinely pace
// real hardware or hold a server open annotate the call site
// //mimonet:wallclock; the legacy detrand tag //mimonet:wallclock-ok is
// honored too so existing annotations stay valid.
package clockseam

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis/framework"
)

// wallClockFuncs are the time package functions that touch the wall clock.
// Pure conversions (time.Unix, time.Date, time.ParseDuration) stay allowed.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "Tick": true, "NewTimer": true, "NewTicker": true,
	"AfterFunc": true,
}

// Analyzer is the clockseam analyzer.
var Analyzer = &framework.Analyzer{
	Name: "clockseam",
	Doc: "forbid wall-clock time calls outside the repro/internal/clock seam; " +
		"take a clock.Clock (annotate entry points //mimonet:wallclock)",
	Run: run,
}

func run(pass *framework.Pass) error {
	// The clock package is the seam itself: the one place the real time
	// functions are wrapped.
	if framework.PathApplies(pass.Pkg.Path(), "clock") {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Type().(*types.Signature).Recv() != nil {
				return true // methods (e.g. on clock.Clock or time.Time) are fine
			}
			if framework.PkgPathOf(fn) != "time" || !wallClockFuncs[fn.Name()] {
				return true
			}
			if pass.Exempt(call.Pos(), "wallclock") || pass.Exempt(call.Pos(), "wallclock-ok") {
				return true
			}
			pass.Reportf(call.Pos(),
				"time.%s escapes the clock seam; take a repro/internal/clock.Clock (or annotate an entry point //mimonet:wallclock)", fn.Name())
			return true
		})
	}
	return nil
}
