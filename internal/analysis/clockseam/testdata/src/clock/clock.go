// Package clock is the clockseam fixture for the seam package itself: the
// one place raw wall-clock calls are allowed, because this is where they
// get wrapped behind the injectable interface.
package clock

import "time"

// Now is the seam's own wrapper; no finding despite the raw call.
func Now() time.Time { return time.Now() }

// Sleep likewise.
func Sleep(d time.Duration) { time.Sleep(d) }
