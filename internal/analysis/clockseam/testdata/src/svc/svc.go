// Package svc is the clockseam fixture for an ordinary (non-clock)
// package: every wall-clock time call is a finding unless annotated, while
// pure time conversions and calls through an injected clock stay silent.
package svc

import "time"

// Clock mirrors the repro/internal/clock seam shape the analyzer expects
// production code to thread.
type Clock interface {
	Now() time.Time
	After(d time.Duration) <-chan time.Time
}

type Service struct {
	clk Clock
}

func (s *Service) Tick() {
	start := time.Now() // want `time\.Now escapes the clock seam`
	_ = start
	time.Sleep(time.Millisecond)    // want `time\.Sleep escapes the clock seam`
	<-time.After(time.Millisecond)  // want `time\.After escapes the clock seam`
	t := time.NewTimer(time.Second) // want `time\.NewTimer escapes the clock seam`
	t.Stop()
	_ = time.Since(start) // want `time\.Since escapes the clock seam`
}

func (s *Service) Seamed() {
	// Calls through the injected seam are methods, not time.* selectors.
	now := s.clk.Now()
	<-s.clk.After(time.Millisecond)
	// Pure conversions never touch the wall clock.
	_ = time.Unix(0, 0)
	_, _ = time.ParseDuration("1s")
	_ = now.Add(time.Second) // time.Time methods are fine
}

func entryPoint() {
	time.Sleep(time.Second) //mimonet:wallclock pacing a real transmitter
	//mimonet:wallclock-ok legacy detrand spelling stays honored
	_ = time.Now()
}
