// Package wirecompat guards the invariants that keep the radio framing and
// the session wire protocol compatible with themselves:
//
//  1. Header-buffer extents. A header encoder that serializes into a local
//     fixed-size array (var hdr [headerSizeV3]byte; binary.BigEndian.PutUint64
//     (hdr[20:], …); append(dst, hdr[:headerSizeV2]…)) must write exactly as
//     many bytes as the largest named header-length constant it slices the
//     buffer by — bumping headerSizeV3 without serializing the new field, or
//     writing a field past the declared size, is a finding.
//
//  2. Encode/decode symmetry. When a package contains one switch over a wire
//     enum whose cases append fixed-width bodies to a []byte (the encoder)
//     and one switch whose cases assert a required body length through a
//     local bounds helper (the decoder's need(n) convention), the per-kind
//     fixed widths must agree — adding a field to a message's encoder
//     without updating the decoder's length check is a finding.
//
//  3. Kind-switch exhaustiveness. Every switch over the session wire Kind
//     enum (type Kind in a package whose leaf name is "session") must carry
//     a default clause or cover all declared kinds, so adding a tenth wire
//     kind surfaces every dispatch site the new message must be threaded
//     through.
//
// Intentional violations annotate //mimonet:wirecompat-ok.
package wirecompat

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"

	"repro/internal/analysis/framework"
)

// Analyzer is the wirecompat analyzer.
var Analyzer = &framework.Analyzer{
	Name: "wirecompat",
	Doc: "check header-length constants against bytes actually written, encode/decode body-width symmetry, " +
		"and exhaustive handling of session wire kinds",
	Run: run,
}

const exemptTag = "wirecompat-ok"

func run(pass *framework.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkHeaderBuffers(pass, fd)
		}
	}
	checkEncodeDecodeSymmetry(pass)
	checkKindSwitches(pass)
	return nil
}

// putWidths maps the binary.BigEndian writers to the bytes they store.
var putWidths = map[string]int{
	"PutUint16": 2,
	"PutUint32": 4,
	"PutUint64": 8,
}

// bufferUse accumulates what one function does with one local array.
type bufferUse struct {
	arrayLen int64
	// maxWrite is the highest byte offset+width stored into the array via
	// BigEndian.PutUintN or single-byte index assignment.
	maxWrite int64
	wrote    bool
	// maxBound / boundName track the largest named constant the array is
	// sliced by (hdr[:headerSizeV3]).
	maxBound  int64
	boundName string
	pos       ast.Node
}

// checkHeaderBuffers applies the extent check to every local fixed-size
// byte array that is both written through binary.BigEndian and sliced by a
// named length constant — the structural shape of a wire-header encoder.
func checkHeaderBuffers(pass *framework.Pass, fd *ast.FuncDecl) {
	uses := make(map[types.Object]*bufferUse)
	use := func(id *ast.Ident) *bufferUse {
		obj := framework.ObjOf(pass.Info, id)
		v, ok := obj.(*types.Var)
		if !ok {
			return nil
		}
		arr, ok := v.Type().Underlying().(*types.Array)
		if !ok {
			return nil
		}
		basic, ok := arr.Elem().Underlying().(*types.Basic)
		if !ok || basic.Kind() != types.Uint8 {
			return nil
		}
		u, ok := uses[obj]
		if !ok {
			u = &bufferUse{arrayLen: arr.Len(), pos: id}
			uses[obj] = u
		}
		return u
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			// binary.BigEndian.PutUintN(arr[off:], v) → write [off, off+N).
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			width, ok := putWidths[sel.Sel.Name]
			if !ok || len(n.Args) != 2 {
				return true
			}
			sl, ok := ast.Unparen(n.Args[0]).(*ast.SliceExpr)
			if !ok {
				return true
			}
			id, ok := ast.Unparen(sl.X).(*ast.Ident)
			if !ok {
				return true
			}
			u := use(id)
			if u == nil {
				return true
			}
			off, ok := constIntValue(pass.Info, sl.Low)
			if !ok {
				return true
			}
			u.wrote = true
			if end := off + int64(width); end > u.maxWrite {
				u.maxWrite = end
			}
		case *ast.AssignStmt:
			// arr[i] = b → write [i, i+1).
			for _, lhs := range n.Lhs {
				ix, ok := ast.Unparen(lhs).(*ast.IndexExpr)
				if !ok {
					continue
				}
				id, ok := ast.Unparen(ix.X).(*ast.Ident)
				if !ok {
					continue
				}
				u := use(id)
				if u == nil {
					continue
				}
				i, ok := constIntValue(pass.Info, ix.Index)
				if !ok {
					continue
				}
				u.wrote = true
				if i+1 > u.maxWrite {
					u.maxWrite = i + 1
				}
			}
		case *ast.SliceExpr:
			// arr[:headerSizeVn] — a named length constant as the high bound.
			id, ok := ast.Unparen(n.X).(*ast.Ident)
			if !ok || n.High == nil {
				return true
			}
			c, ok := framework.ObjOf(pass.Info, n.High).(*types.Const)
			if !ok {
				return true
			}
			u := use(id)
			if u == nil {
				return true
			}
			bound, ok := constant.Int64Val(c.Val())
			if !ok {
				return true
			}
			if bound > u.maxBound {
				u.maxBound = bound
				u.boundName = c.Name()
			}
		}
		return true
	})

	for _, u := range uses {
		if !u.wrote || u.boundName == "" {
			continue
		}
		if pass.Exempt(u.pos.Pos(), exemptTag) {
			continue
		}
		switch {
		case u.maxWrite > u.arrayLen:
			pass.Reportf(u.pos.Pos(),
				"header encoder writes %d bytes into a [%d]byte buffer; grow the array and its length constant together",
				u.maxWrite, u.arrayLen)
		case u.maxWrite != u.maxBound:
			pass.Reportf(u.pos.Pos(),
				"header encoder writes %d bytes but header-length constant %s = %d; the constant must equal the bytes actually written",
				u.maxWrite, u.boundName, u.maxBound)
		}
	}
}

// constIntValue evaluates e (nil → 0, the elided slice low bound) as a
// compile-time int.
func constIntValue(info *types.Info, e ast.Expr) (int64, bool) {
	if e == nil {
		return 0, true
	}
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return 0, false
	}
	return constant.Int64Val(tv.Value)
}

// caseWidth is the fixed body width one enum member's case encodes or
// requires; variable-width cases (spread appends, data chunks) are skipped.
type caseWidth struct {
	width    int64
	variable bool
	pos      ast.Node
}

// enumSwitchProfile classifies one switch over an enum type.
type enumSwitchProfile struct {
	sw      *ast.SwitchStmt
	enum    *types.Named
	members []*types.Const
	// encode/decode widths per member constant value (ExactString key).
	widths     map[string]*caseWidth
	encodeLike int // cases containing []byte appends or width-closure calls
	decodeLike int // cases containing bounds-helper calls
}

// checkEncodeDecodeSymmetry pairs the package's encoder switch with its
// decoder switch per enum type and compares per-member fixed widths.
func checkEncodeDecodeSymmetry(pass *framework.Pass) {
	encoders := make(map[*types.Named][]*enumSwitchProfile)
	decoders := make(map[*types.Named][]*enumSwitchProfile)

	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			closures := appendClosureWidths(pass.Info, fd)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				sw, ok := n.(*ast.SwitchStmt)
				if !ok {
					return true
				}
				enum := framework.EnumTagType(pass.Info, sw)
				if enum == nil {
					return true
				}
				members := framework.EnumMembers(enum)
				if len(members) < 2 {
					return true
				}
				p := profileSwitch(pass.Info, sw, enum, members, closures)
				if p.encodeLike >= 2 && p.encodeLike > p.decodeLike {
					encoders[enum] = append(encoders[enum], p)
				} else if p.decodeLike >= 2 {
					decoders[enum] = append(decoders[enum], p)
				}
				return true
			})
		}
	}

	for enum, encs := range encoders {
		decs := decoders[enum]
		// Only an unambiguous pairing is comparable.
		if len(encs) != 1 || len(decs) != 1 {
			continue
		}
		enc, dec := encs[0], decs[0]
		for _, m := range members(enum) {
			key := m.Val().ExactString()
			ew, dw := enc.widths[key], dec.widths[key]
			if ew == nil || dw == nil || ew.variable || dw.variable {
				continue
			}
			if ew.width == dw.width {
				continue
			}
			if pass.Exempt(dw.pos.Pos(), exemptTag) || pass.Exempt(ew.pos.Pos(), exemptTag) {
				continue
			}
			pass.Reportf(dw.pos.Pos(),
				"wire kind %s: encoder writes a %d-byte body but decoder requires %d; keep AppendMessage and DecodeMessage symmetric",
				m.Name(), ew.width, dw.width)
		}
	}
}

func members(enum *types.Named) []*types.Const { return framework.EnumMembers(enum) }

// appendClosureWidths finds local closures of the scratch-append shape —
//
//	u64 := func(v uint64) { …; dst = append(dst, scratch[:8]...) }
//
// — and maps each closure variable to the fixed byte width it appends.
func appendClosureWidths(info *types.Info, fd *ast.FuncDecl) map[types.Object]int64 {
	widths := make(map[types.Object]int64)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
			return true
		}
		lit, ok := assign.Rhs[0].(*ast.FuncLit)
		if !ok {
			return true
		}
		id, ok := assign.Lhs[0].(*ast.Ident)
		if !ok {
			return true
		}
		obj := framework.ObjOf(info, id)
		if obj == nil {
			return true
		}
		var width int64 = -1
		ast.Inspect(lit.Body, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok || !isByteAppend(info, call) || call.Ellipsis == 0 {
				return true
			}
			sl, ok := ast.Unparen(call.Args[len(call.Args)-1]).(*ast.SliceExpr)
			if !ok {
				return true
			}
			low, okLow := constIntValue(info, sl.Low)
			high, okHigh := constIntValue(info, sl.High)
			if okLow && okHigh && sl.High != nil {
				width = high - low
			}
			return true
		})
		if width > 0 {
			widths[obj] = width
		}
		return true
	})
	return widths
}

// isByteAppend reports whether call is the append builtin applied to a
// []byte.
func isByteAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" || len(call.Args) < 2 {
		return false
	}
	if _, isBuiltin := info.Uses[id].(*types.Builtin); !isBuiltin {
		return false
	}
	tv, ok := info.Types[call.Args[0]]
	if !ok {
		return false
	}
	sl, ok := tv.Type.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	basic, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && basic.Kind() == types.Uint8
}

// profileSwitch computes per-member encode widths (bytes appended) and
// decode widths (bounds-helper requirements) for one enum switch.
func profileSwitch(info *types.Info, sw *ast.SwitchStmt, enum *types.Named, enumMembers []*types.Const, closures map[types.Object]int64) *enumSwitchProfile {
	p := &enumSwitchProfile{sw: sw, enum: enum, members: enumMembers, widths: make(map[string]*caseWidth)}
	for _, stmt := range sw.Body.List {
		clause, ok := stmt.(*ast.CaseClause)
		if !ok || clause.List == nil {
			continue
		}
		var encWidth, decWidth int64
		variable := false
		sawEncode, sawDecode := false, false
		for _, s := range clause.Body {
			ast.Inspect(s, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				// Width closure call: u64(x) appends its fixed width.
				if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
					if w, ok := closures[framework.ObjOf(info, id)]; ok {
						encWidth += w
						sawEncode = true
						return true
					}
					// Bounds helper: a call to a local func(int)-shaped
					// variable with one constant argument is the decoder's
					// need(n) convention.
					if w, ok := boundsHelperWidth(info, call, id); ok {
						decWidth = w
						sawDecode = true
						return true
					}
				}
				if isByteAppend(info, call) {
					sawEncode = true
					if call.Ellipsis != 0 {
						variable = true // spread append: variable-width body
					} else {
						encWidth += int64(len(call.Args) - 1)
					}
				}
				return true
			})
		}
		if len(clause.Body) == 0 {
			// A genuinely empty case (KindFinAck) is a fixed zero-width
			// body on both sides. Cases whose statements match neither
			// pattern contribute nothing — dispatch switches that neither
			// encode nor bounds-check must not sway the classification.
			sawEncode, sawDecode = true, true
		}
		if sawEncode {
			p.encodeLike++
		}
		if sawDecode {
			p.decodeLike++
		}
		if !sawEncode && !sawDecode {
			continue
		}
		width := encWidth
		if sawDecode && !sawEncode {
			width = decWidth
		}
		for _, e := range clause.List {
			tv, ok := info.Types[e]
			if !ok || tv.Value == nil {
				continue
			}
			p.widths[tv.Value.ExactString()] = &caseWidth{width: width, variable: variable, pos: clause}
		}
	}
	return p
}

// boundsHelperWidth recognizes need(13): a call through a local variable of
// function type taking one int-ish parameter, with a constant argument.
func boundsHelperWidth(info *types.Info, call *ast.CallExpr, id *ast.Ident) (int64, bool) {
	v, ok := framework.ObjOf(info, id).(*types.Var)
	if !ok || len(call.Args) != 1 {
		return 0, false
	}
	sig, ok := v.Type().Underlying().(*types.Signature)
	if !ok || sig.Params().Len() != 1 {
		return 0, false
	}
	basic, ok := sig.Params().At(0).Type().Underlying().(*types.Basic)
	if !ok || basic.Info()&types.IsInteger == 0 {
		return 0, false
	}
	return constIntValue(info, call.Args[0])
}

// checkKindSwitches enforces exhaustiveness over the tracked wire and
// state enums (see isWireEnum) at every switch site, in whatever package
// the switch appears.
func checkKindSwitches(pass *framework.Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok {
				return true
			}
			enum := framework.EnumTagType(pass.Info, sw)
			if enum == nil || !isWireEnum(enum) {
				return true
			}
			enumMembers := framework.EnumMembers(enum)
			if len(enumMembers) < 2 {
				return true
			}
			cov := framework.CoverEnumSwitch(pass.Info, sw, enumMembers)
			if cov.Exhaustive() || pass.Exempt(sw.Pos(), exemptTag) {
				return true
			}
			names := make([]string, 0, len(cov.Missing))
			for _, m := range cov.Missing {
				names = append(names, m.Name())
			}
			pass.Reportf(sw.Pos(),
				"switch over %s.%s handles %d of %d %s and has no default; missing %s",
				enum.Obj().Pkg().Name(), enum.Obj().Name(),
				len(enumMembers)-len(cov.Missing), len(enumMembers), wireEnumNoun(enum),
				strings.Join(names, ", "))
			return true
		})
	}
}

// isWireEnum matches the enums whose switch sites must stay exhaustive:
// the wire-kind discriminators of the session and AP MAC codecs (a type
// named Kind in a package whose leaf name is "session" or "apmac"), and
// the multi-user scheduler's per-station state machine
// (mumimo.StationState). Adding a member to any of them forces every
// subset switch to be revisited or explicitly exempted.
func isWireEnum(enum *types.Named) bool {
	obj := enum.Obj()
	if obj.Pkg() == nil {
		return false
	}
	path := obj.Pkg().Path()
	switch obj.Name() {
	case "Kind":
		return framework.PathApplies(path, "session") || framework.PathApplies(path, "apmac")
	case "StationState":
		return framework.PathApplies(path, "mumimo")
	}
	return false
}

// wireEnumNoun names the members in findings so the message reads
// naturally for both codec kinds and scheduler states.
func wireEnumNoun(enum *types.Named) string {
	if enum.Obj().Name() == "StationState" {
		return "scheduler states"
	}
	return "wire kinds"
}
