// Package session is the wirecompat fixture for encode/decode body-width
// symmetry and Kind-switch exhaustiveness, mirroring the shape of the real
// session wire codec: an encoder switch appending fixed-width bodies
// through scratch closures, a decoder switch asserting lengths through a
// local need(n) bounds helper, and dispatch switches over the same enum.
package session

import "encoding/binary"

// Kind discriminates wire messages.
type Kind uint8

const (
	KindHello Kind = iota + 1
	KindAck
	KindData
	KindFin
)

// AppendMessage is the encoder: per-kind fixed bodies.
func AppendMessage(dst []byte, k Kind, a uint64, b uint32, payload []byte) []byte {
	var scratch [8]byte
	u64 := func(v uint64) {
		binary.BigEndian.PutUint64(scratch[:], v)
		dst = append(dst, scratch[:8]...)
	}
	u32 := func(v uint32) {
		binary.BigEndian.PutUint32(scratch[:4], v)
		dst = append(dst, scratch[:4]...)
	}
	dst = append(dst, byte(k))
	switch k {
	case KindHello:
		u64(a)
		u32(b)
	case KindAck:
		// The ack body grew a second counter; the decoder below was never
		// taught about it.
		u64(a)
		u64(uint64(b))
	case KindData:
		dst = append(dst, payload...)
	case KindFin:
	default:
	}
	return dst
}

// DecodeMessage is the decoder: need(n) asserts each kind's body width.
func DecodeMessage(body []byte) (Kind, bool) {
	if len(body) < 1 {
		return 0, false
	}
	k := Kind(body[0])
	body = body[1:]
	need := func(n int) bool { return len(body) >= n }
	switch k {
	case KindHello:
		if !need(12) {
			return 0, false
		}
	case KindAck: // want `wire kind KindAck: encoder writes a 16-byte body but decoder requires 8`
		if !need(8) {
			return 0, false
		}
	case KindData:
		payload := body
		_ = payload
	case KindFin:
	default:
		return 0, false
	}
	return k, true
}

// dispatch misses two kinds with no default: every site like this must be
// revisited when a kind is added.
func dispatch(k Kind) int {
	switch k { // want `switch over session\.Kind handles 2 of 4 wire kinds and has no default; missing KindData, KindFin`
	case KindHello:
		return 1
	case KindAck:
		return 2
	}
	return 0
}

// dispatchExempt is an audited subset dispatch.
func dispatchExempt(k Kind) int {
	//mimonet:wirecompat-ok ack-only fast path, other kinds handled upstream
	switch k {
	case KindAck:
		return 1
	}
	return 0
}

// dispatchDefault handles the remainder explicitly — no finding.
func dispatchDefault(k Kind) int {
	switch k {
	case KindHello:
		return 1
	default:
		return 0
	}
}

// stringer covers every kind — no finding.
func (k Kind) String() string {
	switch k {
	case KindHello:
		return "hello"
	case KindAck:
		return "ack"
	case KindData:
		return "data"
	case KindFin:
		return "fin"
	}
	return "unknown"
}
