// Package mumimo is the wirecompat fixture for exhaustiveness over the
// multi-user scheduler's per-station state machine: adding a state must
// force every subset switch to be revisited.
package mumimo

// StationState is the scheduler's view of one station.
type StationState uint8

const (
	StateIdle StationState = iota + 1
	StateBacklogged
	StateStale
	StateScheduled
)

// serviceable misses two states with no default: a station parked in a
// new state would never be serviced.
func serviceable(s StationState) bool {
	switch s { // want `switch over mumimo\.StationState handles 2 of 4 scheduler states and has no default; missing StateStale, StateScheduled`
	case StateIdle:
		return false
	case StateBacklogged:
		return true
	}
	return false
}

// needsSounding handles the remainder explicitly — no finding.
func needsSounding(s StationState) bool {
	switch s {
	case StateStale:
		return true
	default:
		return false
	}
}

// stringer covers every state — no finding.
func (s StationState) String() string {
	switch s {
	case StateIdle:
		return "idle"
	case StateBacklogged:
		return "backlogged"
	case StateStale:
		return "stale"
	case StateScheduled:
		return "scheduled"
	}
	return "unknown"
}

var _ = serviceable
var _ = needsSounding
