// Package radio is the wirecompat fixture for the header-buffer extent
// check: encoders serialize into a fixed-size array and slice it by named
// header-length constants; the constants must equal the bytes written.
package radio

import "encoding/binary"

const (
	headerSizeV1 = 20
	headerSizeV2 = headerSizeV1 + 8
	headerSizeV3 = headerSizeV2 + 8
	// headerSizeV4 reserves an 8-byte route field no encoder serializes
	// yet — the drift badHeader demonstrates.
	headerSizeV4 = headerSizeV3 + 8
)

// goodHeader writes exactly headerSizeV3 bytes: constants and encoder agree.
func goodHeader(dst []byte, seq, packet, session uint64) []byte {
	var hdr [headerSizeV3]byte
	binary.BigEndian.PutUint32(hdr[0:], 0x4D4E4951)
	hdr[4] = 3
	hdr[5] = 1
	binary.BigEndian.PutUint16(hdr[6:], 0)
	binary.BigEndian.PutUint64(hdr[8:], seq)
	binary.BigEndian.PutUint32(hdr[16:], 0)
	binary.BigEndian.PutUint64(hdr[20:], packet)
	if session == 0 {
		return append(dst, hdr[:headerSizeV2]...)
	}
	binary.BigEndian.PutUint64(hdr[28:], session)
	return append(dst, hdr[:headerSizeV3]...)
}

// badHeader bumped the length constant without serializing the new field.
func badHeader(dst []byte, seq, packet, session uint64) []byte {
	var hdr [headerSizeV4]byte
	binary.BigEndian.PutUint32(hdr[0:], 0x4D4E4951) // want `header encoder writes 36 bytes but header-length constant headerSizeV4 = 44`
	hdr[4] = 4
	hdr[5] = 1
	binary.BigEndian.PutUint16(hdr[6:], 0)
	binary.BigEndian.PutUint64(hdr[8:], seq)
	binary.BigEndian.PutUint32(hdr[16:], 0)
	binary.BigEndian.PutUint64(hdr[20:], packet)
	binary.BigEndian.PutUint64(hdr[28:], session)
	return append(dst, hdr[:headerSizeV4]...)
}

// overflowHeader writes a field past the declared buffer size.
func overflowHeader(dst []byte, seq, extra uint64) []byte {
	var hdr [headerSizeV2]byte
	binary.BigEndian.PutUint64(hdr[8:], seq) // want `header encoder writes 36 bytes into a \[28\]byte buffer`
	binary.BigEndian.PutUint64(hdr[20:], extra)
	binary.BigEndian.PutUint64(hdr[28:], extra)
	return append(dst, hdr[:headerSizeV2]...)
}

// exemptHeader carries an audited annotation: the trailing pad bytes are
// deliberately unwritten.
func exemptHeader(dst []byte, seq uint64) []byte {
	var hdr [headerSizeV3]byte
	binary.BigEndian.PutUint64(hdr[8:], seq) //mimonet:wirecompat-ok audited: tail is zero padding
	return append(dst, hdr[:headerSizeV3]...)
}

// scratchReuse is the negative shape: literal slice bounds only, so the
// extent check does not apply to reused scratch buffers.
func scratchReuse(dst []byte, v uint64) []byte {
	var scratch [8]byte
	binary.BigEndian.PutUint32(scratch[:4], uint32(v))
	return append(dst, scratch[:4]...)
}
