// Package apmac is the wirecompat fixture for Kind-switch exhaustiveness
// over the AP MAC control codec: the same rule as the session wire enum,
// applied to the multi-user access point's message kinds.
package apmac

// Kind discriminates AP MAC control messages.
type Kind uint8

const (
	KindAssoc Kind = iota + 1
	KindAssocAck
	KindSound
	KindFeedback
	KindData
)

// route misses three kinds with no default: a new kind would be silently
// dropped here.
func route(k Kind) int {
	switch k { // want `switch over apmac\.Kind handles 2 of 5 wire kinds and has no default; missing KindSound, KindFeedback, KindData`
	case KindAssoc:
		return 1
	case KindAssocAck:
		return 2
	}
	return 0
}

// routeExempt is an audited subset dispatch.
func routeExempt(k Kind) int {
	//mimonet:wirecompat-ok association fast path, data kinds handled upstream
	switch k {
	case KindAssoc:
		return 1
	}
	return 0
}

// routeDefault handles the remainder explicitly — no finding.
func routeDefault(k Kind) int {
	switch k {
	case KindData:
		return 1
	default:
		return 0
	}
}

// stringer covers every kind — no finding.
func (k Kind) String() string {
	switch k {
	case KindAssoc:
		return "assoc"
	case KindAssocAck:
		return "assoc-ack"
	case KindSound:
		return "sound"
	case KindFeedback:
		return "feedback"
	case KindData:
		return "data"
	}
	return "unknown"
}

var _ = route
var _ = routeExempt
var _ = routeDefault
