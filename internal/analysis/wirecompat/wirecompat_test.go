package wirecompat_test

import (
	"testing"

	"repro/internal/analysis/framework/atest"
	"repro/internal/analysis/wirecompat"
)

func TestWirecompat(t *testing.T) {
	atest.Run(t, "testdata", wirecompat.Analyzer, "radio", "session", "apmac", "mumimo")
}
