// Package sim is a detrand fixture named after a guarded package leaf.
package sim

import (
	"math/rand"
	"time"
)

// GlobalDraw uses the unseeded global source: flagged.
func GlobalDraw() float64 {
	return rand.Float64() // want `global unseeded source`
}

// GlobalShuffle is also global-source: flagged.
func GlobalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `global unseeded source`
}

// SeededDraw threads an explicit source: no diagnostic (rand.New and
// rand.NewSource are constructors, and method calls on *rand.Rand are
// always fine).
func SeededDraw(seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	return r.Float64()
}

// WallClock reads the wall clock: flagged.
func WallClock() int64 {
	return time.Now().UnixNano() // want `reads the wall clock`
}

// WallSleep schedules on the wall clock: flagged.
func WallSleep() {
	time.Sleep(time.Millisecond) // want `reads the wall clock`
}

// AnnotatedMeasurement is an audited wall-clock use: exempt.
func AnnotatedMeasurement() time.Time {
	return time.Now() //mimonet:wallclock-ok throughput measurement
}

// PureTime uses non-wall-clock time functions: no diagnostic.
func PureTime() time.Time {
	return time.Unix(1000, 0)
}
