// Package viz is outside the deterministic set: wall clock and global rand
// are allowed (e.g. progress display).
package viz

import (
	"math/rand"
	"time"
)

// Jitter may be sloppy here: no diagnostics.
func Jitter() time.Duration {
	return time.Since(time.Now().Add(-time.Duration(rand.Intn(10)) * time.Millisecond))
}
