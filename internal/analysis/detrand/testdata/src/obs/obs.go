// Package obs is a detrand fixture named after the telemetry package leaf:
// trace timestamps must flow through the injectable clock seam, never
// time.Now, so traces recorded under a fake clock are deterministic.
package obs

import "time"

// Clock mirrors the repro/internal/clock seam. Method calls on an injected
// clock are not time.* selectors, so the analyzer lets them through.
type Clock interface {
	Now() time.Time
}

// stampDirect reads the wall clock: flagged.
func stampDirect() int64 {
	return time.Now().UnixNano() // want `reads the wall clock`
}

// stampViaSeam threads the injected clock: no diagnostic.
func stampViaSeam(clk Clock) int64 {
	return clk.Now().UnixNano()
}

// holdOpen schedules on the wall clock: flagged.
func holdOpen() {
	time.Sleep(time.Millisecond) // want `reads the wall clock`
}

// auditedScrape is an annotated wall-clock exception: exempt.
func auditedScrape() time.Time {
	return time.Now() //mimonet:wallclock-ok exposition timestamp
}
