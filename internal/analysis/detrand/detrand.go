// Package detrand keeps the simulation campaigns reproducible from their
// seeds: inside the deterministic packages (sim, faults, channel,
// flowgraph, radio, obs) it forbids
//
//   - math/rand (and math/rand/v2) top-level functions, which draw from the
//     global, unseeded source — randomness must flow through an explicitly
//     seeded *rand.Rand (constructors like rand.New/rand.NewSource are
//     allowed);
//   - wall-clock calls (time.Now, time.Since, time.Sleep, time.After,
//     time.NewTimer, time.NewTicker, …) — time-driven logic must go through
//     the injectable repro/internal/clock.Clock seam, which detrand
//     whitelists implicitly because its methods are not time.* selectors.
//
// Measurements that genuinely need the wall clock annotate the call site
// //mimonet:wallclock-ok; an audited global-rand exception (none exist
// today) would use //mimonet:globalrand-ok.
package detrand

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis/framework"
)

// DeterministicPackages is the set of guarded package leaf names.
var DeterministicPackages = []string{"sim", "faults", "channel", "flowgraph", "radio", "obs"}

// wallClockFuncs are the time package functions that read or schedule on
// the wall clock. Pure functions (time.Unix, time.Date, time.ParseDuration)
// stay allowed.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "Tick": true, "NewTimer": true, "NewTicker": true,
	"AfterFunc": true,
}

// Analyzer is the detrand analyzer.
var Analyzer = &framework.Analyzer{
	Name: "detrand",
	Doc: "forbid unseeded math/rand top-level functions and wall-clock time calls in deterministic packages; " +
		"thread a seeded *rand.Rand and the internal/clock seam instead",
	Run: run,
}

func run(pass *framework.Pass) error {
	if !framework.PathApplies(pass.Pkg.Path(), DeterministicPackages...) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Type().(*types.Signature).Recv() != nil {
				return true // methods (e.g. on *rand.Rand or clock.Clock) are fine
			}
			switch framework.PkgPathOf(fn) {
			case "math/rand", "math/rand/v2":
				if isConstructor(fn.Name()) {
					return true
				}
				if pass.Exempt(call.Pos(), "globalrand-ok") {
					return true
				}
				pass.Reportf(call.Pos(),
					"rand.%s draws from the global unseeded source; thread a seeded *rand.Rand so campaigns replay from their seed", fn.Name())
			case "time":
				if !wallClockFuncs[fn.Name()] {
					return true
				}
				if pass.Exempt(call.Pos(), "wallclock-ok") {
					return true
				}
				pass.Reportf(call.Pos(),
					"time.%s reads the wall clock in a deterministic package; inject repro/internal/clock.Clock (or annotate //mimonet:wallclock-ok)", fn.Name())
			}
			return true
		})
	}
	return nil
}

// isConstructor reports whether a rand package function builds an explicit
// source rather than drawing from the global one.
func isConstructor(name string) bool {
	return len(name) >= 3 && name[:3] == "New"
}
