package detrand_test

import (
	"testing"

	"repro/internal/analysis/detrand"
	"repro/internal/analysis/framework/atest"
)

func TestDetrand(t *testing.T) {
	atest.Run(t, "testdata", detrand.Analyzer, "sim", "viz", "obs")
}
