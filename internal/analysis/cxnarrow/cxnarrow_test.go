package cxnarrow_test

import (
	"testing"

	"repro/internal/analysis/cxnarrow"
	"repro/internal/analysis/framework/atest"
)

func TestCxnarrow(t *testing.T) {
	atest.Run(t, "testdata", cxnarrow.Analyzer, "ofdm", "other")
}
