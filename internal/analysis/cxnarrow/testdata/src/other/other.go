// Package other is outside the hot-path set: narrowing is allowed here
// (e.g. wire formats, display code).
package other

// PackSample narrows freely outside guarded packages: no diagnostic.
func PackSample(s complex128) complex64 {
	return complex64(s)
}
