// Package ofdm is a cxnarrow fixture named after a guarded hot-path
// package leaf.
package ofdm

// Equalize narrows a complex sample: flagged.
func Equalize(h complex128) complex64 {
	return complex64(h) // want `complex128→complex64`
}

// Scale narrows a float: flagged.
func Scale(g float64) float32 {
	return float32(g) // want `float64→float32`
}

// PackWire is a deliberate, annotated narrowing: exempt.
func PackWire(s complex128) complex64 {
	return complex64(s) //mimonet:narrow-ok float32 I/Q wire format
}

// Widen goes the safe direction: no diagnostic.
func Widen(s complex64) complex128 {
	return complex128(s)
}

// ConstNarrow converts a constant: compile-time exactness, no diagnostic.
func ConstNarrow() float32 {
	return float32(1.5)
}

// SameWidth keeps precision: no diagnostic.
func SameWidth(x float64) float64 {
	return float64(x)
}
