// Package cxnarrow flags implicit-precision-loss numeric conversions —
// complex128→complex64 and float64→float32 — inside the DSP hot-path
// packages (ofdm, mimo, chanest, dsp, stbc, synchro). The receiver chain is
// specified in complex128; a stray narrowing silently costs ~29 bits of
// mantissa and shows up as an SNR floor that is miserable to bisect.
// Constant operands are exempt (exactness is checked by the compiler), and
// deliberate narrowings — e.g. packing to a float32 wire format — are
// annotated //mimonet:narrow-ok.
package cxnarrow

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis/framework"
)

// HotPathPackages is the set of package leaf names the analyzer guards.
var HotPathPackages = []string{"ofdm", "mimo", "chanest", "dsp", "stbc", "synchro"}

// Analyzer is the cxnarrow analyzer.
var Analyzer = &framework.Analyzer{
	Name: "cxnarrow",
	Doc: "flag complex128→complex64 and float64→float32 conversions in DSP hot-path packages " +
		"(precision loss; annotate deliberate narrowing with //mimonet:narrow-ok)",
	Run: run,
}

func run(pass *framework.Pass) error {
	if !framework.PathApplies(pass.Pkg.Path(), HotPathPackages...) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return true
			}
			funTV, ok := pass.Info.Types[call.Fun]
			if !ok || !funTV.IsType() {
				return true
			}
			argTV, ok := pass.Info.Types[call.Args[0]]
			if !ok || argTV.Value != nil {
				// Constant conversions are compile-time checked for
				// exactness concerns the author already accepted.
				return true
			}
			dst, ok := funTV.Type.Underlying().(*types.Basic)
			if !ok {
				return true
			}
			src, ok := argTV.Type.Underlying().(*types.Basic)
			if !ok {
				return true
			}
			var loss string
			switch {
			case dst.Kind() == types.Complex64 && src.Kind() == types.Complex128:
				loss = "complex128→complex64"
			case dst.Kind() == types.Float32 && src.Kind() == types.Float64:
				loss = "float64→float32"
			default:
				return true
			}
			if pass.Exempt(call.Pos(), "narrow-ok") {
				return true
			}
			pass.Reportf(call.Pos(),
				"%s conversion narrows precision in a DSP hot path; keep the chain in double precision or annotate //mimonet:narrow-ok", loss)
			return true
		})
	}
	return nil
}
