package eobprop_test

import (
	"testing"

	"repro/internal/analysis/eobprop"
	"repro/internal/analysis/framework/atest"
)

func TestEobprop(t *testing.T) {
	atest.Run(t, "testdata", eobprop.Analyzer, "relay", "radio")
}
