// Package eobprop guards end-of-burst tag propagation across the radio
// framing layer. A burst terminates only when the receiver sees
// FlagEndOfBurst; any path that re-frames datagrams and loses the flag
// hangs ReadBurst forever. Two rules:
//
//  1. A function that both decodes headers (radio.DecodeHeader) and
//     re-encodes frames (radio.EncodeFrame) must consult the end-of-burst
//     tag — reference FlagEndOfBurst or the Flags field — somewhere on the
//     path.
//  2. In a function holding an incoming Header (parameter or DecodeHeader
//     result), a keyed radio.Header composite literal that omits the Flags
//     field silently drops the tag.
//
// Intentional drops (e.g. a tool that splits bursts) are annotated
// //mimonet:eob-ok.
package eobprop

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis/framework"
)

// Analyzer is the eobprop analyzer.
var Analyzer = &framework.Analyzer{
	Name: "eobprop",
	Doc: "blocks re-framing an EOB-tagged stream must propagate or explicitly drop the end-of-burst tag " +
		"(//mimonet:eob-ok to document an intentional drop)",
	Run: run,
}

func run(pass *framework.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

func checkFunc(pass *framework.Pass, fd *ast.FuncDecl) {
	var decodes, encodes, refsEOB bool
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.CallExpr:
			if fn := calledRadioFunc(pass.Info, e); fn != nil {
				switch fn.Name() {
				case "DecodeHeader":
					decodes = true
				case "EncodeFrame":
					encodes = true
				}
			}
		case *ast.SelectorExpr:
			if e.Sel.Name == "Flags" && isRadioHeader(pass.Info.Types[e.X].Type) {
				refsEOB = true
			}
		case *ast.Ident:
			if obj, ok := pass.Info.Uses[e].(*types.Const); ok &&
				obj.Name() == "FlagEndOfBurst" && framework.PathApplies(framework.PkgPathOf(obj), "radio") {
				refsEOB = true
			}
		}
		return true
	})
	if decodes && encodes && !refsEOB && !pass.Exempt(fd.Pos(), "eob-ok") {
		pass.Reportf(fd.Name.Pos(),
			"%s decodes and re-encodes radio frames without consulting the end-of-burst tag; a lost FlagEndOfBurst hangs ReadBurst (propagate it or annotate //mimonet:eob-ok)", fd.Name.Name)
	}

	// Rule 2 applies only when an incoming header is in scope.
	if !decodes && !hasHeaderParam(pass.Info, fd) {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		lit, ok := n.(*ast.CompositeLit)
		if !ok || len(lit.Elts) == 0 {
			return true
		}
		tv, ok := pass.Info.Types[lit]
		if !ok || !isRadioHeader(tv.Type) {
			return true
		}
		hasFlags := false
		for _, el := range lit.Elts {
			kv, ok := el.(*ast.KeyValueExpr)
			if !ok {
				return true // positional literal sets every field, Flags included
			}
			if id, ok := kv.Key.(*ast.Ident); ok && id.Name == "Flags" {
				hasFlags = true
			}
		}
		if !hasFlags && !pass.Exempt(lit.Pos(), "eob-ok") {
			pass.Reportf(lit.Pos(),
				"Header literal omits Flags while an incoming header is in scope: the end-of-burst tag is dropped (copy Flags through or annotate //mimonet:eob-ok)")
		}
		return true
	})
}

// calledRadioFunc resolves a call to a package-level function of a package
// whose leaf name is radio.
func calledRadioFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, ok := info.Uses[id].(*types.Func)
	if !ok || fn.Type().(*types.Signature).Recv() != nil {
		return nil
	}
	if !framework.PathApplies(framework.PkgPathOf(fn), "radio") {
		return nil
	}
	return fn
}

// isRadioHeader reports whether t is a named type Header from a radio
// package.
func isRadioHeader(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Header" && framework.PathApplies(framework.PkgPathOf(obj), "radio")
}

// hasHeaderParam reports whether any parameter is a radio.Header (or
// pointer to one).
func hasHeaderParam(info *types.Info, fd *ast.FuncDecl) bool {
	for _, field := range fd.Type.Params.List {
		if tv, ok := info.Types[field.Type]; ok && isRadioHeader(tv.Type) {
			return true
		}
	}
	return false
}
