// Package relay is the eobprop fixture's consumer side: datagram-rewriting
// paths that must keep the end-of-burst tag alive.
package relay

import "radio"

// BadRewrite re-frames without ever consulting the EOB tag: flagged.
func BadRewrite(dgram []byte) ([]byte, error) { // want `without consulting the end-of-burst tag`
	h, err := radio.DecodeHeader(dgram)
	if err != nil {
		return nil, err
	}
	_ = h.Seq
	return radio.EncodeFrame(nil, radio.Header{Streams: 1, Flags: 0, Seq: 9, Count: 0}, dgram)
}

// BadLiteral rebuilds a header from an incoming one and drops Flags:
// flagged at the literal.
func BadLiteral(h radio.Header) radio.Header {
	return radio.Header{Streams: h.Streams, Seq: h.Seq + 1, Count: h.Count} // want `end-of-burst tag is dropped`
}

// GoodPropagate copies the flag through: no diagnostic.
func GoodPropagate(dgram []byte) ([]byte, error) {
	h, err := radio.DecodeHeader(dgram)
	if err != nil {
		return nil, err
	}
	out := radio.Header{Streams: h.Streams, Flags: h.Flags, Seq: h.Seq + 1, Count: h.Count}
	return radio.EncodeFrame(nil, out, dgram)
}

// GoodGate branches on the constant: counts as consulting the tag.
func GoodGate(dgram []byte) ([]byte, error) {
	h, err := radio.DecodeHeader(dgram)
	if err != nil {
		return nil, err
	}
	flags := uint16(0)
	if h.Flags&radio.FlagEndOfBurst != 0 {
		flags = radio.FlagEndOfBurst
	}
	return radio.EncodeFrame(nil, radio.Header{Streams: 1, Flags: flags, Seq: h.Seq, Count: h.Count}, dgram)
}

//mimonet:eob-ok burst splitter intentionally strips the tag
func AnnotatedDrop(dgram []byte) ([]byte, error) {
	h, err := radio.DecodeHeader(dgram)
	if err != nil {
		return nil, err
	}
	return radio.EncodeFrame(nil, radio.Header{Streams: 1, Flags: 0, Seq: h.Seq, Count: h.Count}, dgram)
}

// ZeroValueOK returns empty headers (error paths): no diagnostic.
func ZeroValueOK(dgram []byte) (radio.Header, error) {
	if len(dgram) == 0 {
		return radio.Header{}, nil
	}
	return radio.DecodeHeader(dgram)
}

// PositionalOK sets every field positionally, Flags included: no
// diagnostic.
func PositionalOK(h radio.Header) radio.Header {
	return radio.Header{h.Streams, h.Flags, h.Seq, h.Count}
}
