// Package radio is the eobprop fixture's framing stand-in: the same shape
// as repro/internal/radio's header surface.
package radio

import "errors"

// FlagEndOfBurst marks the final frame of a burst.
const FlagEndOfBurst = 1 << 0

// Header describes one frame.
type Header struct {
	Streams int
	Flags   uint16
	Seq     uint64
	Count   int
}

// DecodeHeader parses a frame header.
func DecodeHeader(b []byte) (Header, error) {
	if len(b) < 4 {
		return Header{}, errors.New("short header")
	}
	return Header{Streams: 1, Flags: uint16(b[0]), Seq: uint64(b[1]), Count: int(b[2])}, nil
}

// EncodeFrame appends a frame to dst.
func EncodeFrame(dst []byte, h Header, payload []byte) ([]byte, error) {
	dst = append(dst, byte(h.Flags), byte(h.Seq), byte(h.Count))
	return append(dst, payload...), nil
}
