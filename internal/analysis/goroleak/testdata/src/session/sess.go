// Package session is the goroleak fixture for the guarded-package rule:
// every goroutine spawned here must be visibly tied to a context, done
// channel, or WaitGroup join, directly or through the functions it calls.
package session

import (
	"context"
	"sync"
)

type gateway struct {
	done chan struct{}
	out  chan int
	wg   sync.WaitGroup
}

// loop joins on its context — goroutines running it are supervised.
func (g *gateway) loop(ctx context.Context) {
	<-ctx.Done()
}

// drain blocks on the done channel.
func (g *gateway) drain() {
	<-g.done
}

// relay is tied two hops away: relay -> forward -> send on a channel.
func (g *gateway) relay() {
	g.forward(1)
}

func (g *gateway) forward(v int) {
	g.out <- v
}

// leak never observes any lifecycle signal.
func leak() {
	for i := 0; i < 1000; i++ {
		_ = i * i
	}
}

func (g *gateway) start(ctx context.Context) {
	go g.loop(ctx)
	go g.drain()
	go g.relay()
	go func() {
		defer g.wg.Done()
		leak()
	}()
	go func() {
		select {
		case <-ctx.Done():
		case v := <-g.out:
			_ = v
		}
	}()

	go leak()   // want "goroutine is not tied to a context, done channel, or sync.WaitGroup join"
	go func() { // want "goroutine is not tied to a context, done channel, or sync.WaitGroup join"
		leak()
	}()

	//mimonet:goroutine-ok bounded warm-up, exits after one pass
	go leak()
}

// spawnDynamic launches through a function value: the target is opaque, so
// the site must carry its own join or an audited annotation.
func spawnDynamic(fn func()) {
	go fn() // want "goroutine is not tied to a context, done channel, or sync.WaitGroup join"
}
