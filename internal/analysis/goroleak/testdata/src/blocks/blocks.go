// Package blocks is the goroleak fixture for Block.Run scoping: the
// package leaf name is not guarded, so only methods with the structural
// flowgraph Run signature are checked.
package blocks

import "context"

type mixer struct{}

func spin() {
	for i := 0; i < 10; i++ {
		_ = i
	}
}

// Run matches the Block.Run shape, so its goroutines are in scope.
func (m *mixer) Run(ctx context.Context, in []<-chan int, out []chan<- int) error {
	go spin() // want "goroutine is not tied to a context, done channel, or sync.WaitGroup join"
	go func() {
		<-ctx.Done()
	}()
	<-ctx.Done()
	return nil
}

// helper is an ordinary function in an unguarded package — out of scope
// even though its goroutine is untied.
func helper() {
	go spin()
}
