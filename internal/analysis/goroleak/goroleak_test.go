package goroleak_test

import (
	"testing"

	"repro/internal/analysis/framework/atest"
	"repro/internal/analysis/goroleak"
)

func TestGoroleak(t *testing.T) {
	atest.Run(t, "testdata", goroleak.Analyzer, "session", "blocks")
}
