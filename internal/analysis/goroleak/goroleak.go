// Package goroleak statically catches the goroutine-leak class the E23
// chaos soak only finds dynamically: inside the session gateway and the
// supervised flowgraph (packages session and flowgraph, plus Block.Run
// methods anywhere), every `go` statement must start a goroutine whose body
// is visibly tied to a lifecycle — it references a context.Context,
// operates on a channel (send, receive, close, select, range), or joins a
// sync.WaitGroup.
//
// The analysis is interprocedural: for every function in every analyzed
// package it computes whether the body (or anything it transitively calls
// within the package) carries such a join point, and exports the verdict as
// a fact keyed by the function object. `go s.run()` and cross-package
// targets like `go flowgraph.Pump(...)` then resolve through the call graph
// and the shared fact store rather than being rejected as opaque.
//
// Fire-and-forget goroutines that are genuinely fine (bounded, process-
// lifetime) annotate //mimonet:goroutine-ok.
package goroleak

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis/framework"
)

// GuardedPackages are the package leaf names whose every function is in
// scope; Block.Run methods are in scope in any package.
var GuardedPackages = []string{"session", "flowgraph"}

// tiedFact is the fact key under which per-function join verdicts export.
const tiedFact = "goroleak.tied"

// Analyzer is the goroleak analyzer.
var Analyzer = &framework.Analyzer{
	Name: "goroleak",
	Doc: "require goroutines in the session gateway and supervised flowgraph to be tied to a context, " +
		"done channel, or WaitGroup join",
	Run: run,
}

func run(pass *framework.Pass) error {
	cg := framework.NewCallGraph(pass.Info, pass.Files)

	// Pass 1: per-function join verdicts, propagated to a fixpoint through
	// same-package calls and seeded across packages from the fact store.
	tied := make(map[*types.Func]bool)
	fns := cg.Functions()
	for _, fn := range fns {
		tied[fn] = hasJoinPoint(pass.Info, cg.DeclOf(fn).Body)
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range fns {
			if tied[fn] {
				continue
			}
			for _, callee := range cg.Callees(fn) {
				if calleeTied(pass, tied, callee) {
					tied[fn] = true
					changed = true
					break
				}
			}
		}
	}
	for fn, v := range tied {
		pass.Facts.Export(fn, tiedFact, v)
	}

	// Pass 2: report unjoined `go` statements at the in-scope spawn sites.
	guardedPkg := framework.PathApplies(pass.Pkg.Path(), GuardedPackages...)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if !guardedPkg && !framework.IsBlockRun(pass.Info, fd) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				g, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				if goTargetTied(pass, tied, g.Call) || pass.Exempt(g.Pos(), "goroutine-ok") {
					return true
				}
				pass.Reportf(g.Pos(),
					"goroutine is not tied to a context, done channel, or sync.WaitGroup join; supervise it (or annotate //mimonet:goroutine-ok)")
				return true
			})
		}
	}
	return nil
}

// goTargetTied decides whether the goroutine started by call has a visible
// join: function literals are inspected directly (including one call hop
// into resolved callees), named targets resolve through the verdict map or
// the cross-package fact store.
func goTargetTied(pass *framework.Pass, tied map[*types.Func]bool, call *ast.CallExpr) bool {
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		if hasJoinPoint(pass.Info, lit.Body) {
			return true
		}
		joined := false
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			inner, ok := n.(*ast.CallExpr)
			if !ok || joined {
				return !joined
			}
			if callee := framework.CalleeOf(pass.Info, inner); callee != nil && calleeTied(pass, tied, callee) {
				joined = true
			}
			return true
		})
		return joined
	}
	callee := framework.CalleeOf(pass.Info, call)
	return callee != nil && calleeTied(pass, tied, callee)
}

// calleeTied resolves a callee's verdict: same-package map first, then the
// cross-package fact store.
func calleeTied(pass *framework.Pass, tied map[*types.Func]bool, fn *types.Func) bool {
	if v, ok := tied[fn]; ok {
		return v
	}
	v, _ := pass.Facts.GetBool(fn, tiedFact)
	return v
}

// hasJoinPoint reports whether a function body contains a lifecycle tie:
// a select statement, channel send/receive/close/range, a WaitGroup
// Done/Wait, or any reference to a context.Context.
func hasJoinPoint(info *types.Info, body *ast.BlockStmt) bool {
	if body == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SelectStmt, *ast.SendStmt:
			found = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
			}
		case *ast.RangeStmt:
			if isChanExpr(info, n.X) {
				found = true
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
				if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin && id.Name == "close" {
					found = true
				}
			}
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
				if (sel.Sel.Name == "Done" || sel.Sel.Name == "Wait") && isWaitGroupExpr(info, sel.X) {
					found = true
				}
			}
		case *ast.Ident:
			if obj := info.Uses[n]; obj != nil && isContextType(obj.Type()) {
				found = true
			}
		}
		return !found
	})
	return found
}

func isChanExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	_, isChan := tv.Type.Underlying().(*types.Chan)
	return isChan
}

func isWaitGroupExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "WaitGroup" && obj.Pkg() != nil && obj.Pkg().Path() == "sync"
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}
