package framework

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
)

// EnumMembers returns the package-level constants declared with exactly the
// named type, sorted by constant value then name — the member set a switch
// over that type is measured against. Types with fewer than two members are
// not usefully enums; callers typically skip them.
func EnumMembers(named *types.Named) []*types.Const {
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil {
		return nil
	}
	scope := obj.Pkg().Scope()
	var out []*types.Const
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok {
			continue
		}
		if types.Identical(c.Type(), named) {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		vi, vj := out[i].Val(), out[j].Val()
		if vi.Kind() == constant.Int && vj.Kind() == constant.Int {
			if constant.Compare(vi, token.LSS, vj) {
				return true
			}
			if constant.Compare(vj, token.LSS, vi) {
				return false
			}
		}
		return out[i].Name() < out[j].Name()
	})
	return out
}

// SwitchCoverage is the result of measuring one switch statement against an
// enum member set.
type SwitchCoverage struct {
	// HasDefault reports whether the switch carries a default clause —
	// which counts as handling every member.
	HasDefault bool
	// Missing lists members matched by no case clause (empty when
	// HasDefault).
	Missing []*types.Const
}

// Exhaustive reports whether every enum member is handled, explicitly or
// through a default clause.
func (c SwitchCoverage) Exhaustive() bool {
	return c.HasDefault || len(c.Missing) == 0
}

// CoverEnumSwitch measures which of the given enum members the switch's
// case clauses cover. Case expressions are matched by constant value, so
// both named constants and literals count.
func CoverEnumSwitch(info *types.Info, sw *ast.SwitchStmt, members []*types.Const) SwitchCoverage {
	var cov SwitchCoverage
	covered := make(map[string]bool)
	for _, stmt := range sw.Body.List {
		clause, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		if clause.List == nil {
			cov.HasDefault = true
			continue
		}
		for _, e := range clause.List {
			tv, ok := info.Types[e]
			if !ok || tv.Value == nil {
				continue
			}
			covered[tv.Value.ExactString()] = true
		}
	}
	if cov.HasDefault {
		return cov
	}
	for _, m := range members {
		if !covered[m.Val().ExactString()] {
			cov.Missing = append(cov.Missing, m)
		}
	}
	return cov
}

// EnumTagType returns the named type of a switch tag expression when the
// tag is a value switch over a named non-boolean basic type declared in
// some package — the shape enum switches take. Returns nil otherwise.
func EnumTagType(info *types.Info, sw *ast.SwitchStmt) *types.Named {
	if sw.Tag == nil {
		return nil
	}
	tv, ok := info.Types[sw.Tag]
	if !ok {
		return nil
	}
	named, ok := tv.Type.(*types.Named)
	if !ok || named.Obj() == nil || named.Obj().Pkg() == nil {
		return nil
	}
	basic, ok := named.Underlying().(*types.Basic)
	if !ok || basic.Info()&types.IsBoolean != 0 {
		return nil
	}
	return named
}
