// Package framework is a self-contained, stdlib-only re-creation of the
// golang.org/x/tools/go/analysis surface this repo needs: Analyzer, Pass,
// Diagnostic, a module-aware package loader, and //mimonet:<tag> annotation
// escape hatches. It exists because the build environment vendors nothing —
// the analyzers in internal/analysis/* and the cmd/mimonet-lint
// multichecker run on go/ast + go/types alone, so the lint gate works
// offline and adds no module dependencies.
//
// The API deliberately mirrors x/tools so the analyzers could be ported to
// a real go/analysis multichecker (and `go vet -vettool`) by swapping
// imports if the dependency ever becomes available.
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and -only selections.
	Name string
	// Doc is the one-paragraph description shown by mimonet-lint -list.
	Doc string
	// Run inspects one package and reports findings through the Pass.
	Run func(*Pass) error
}

// Diagnostic is one finding, positioned in the analyzed package.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Pos, d.Message, d.Analyzer)
}

// Pass carries one analyzer run over one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// Facts is the cross-package fact store shared by every pass of one
	// RunAnalyzers call. Packages are visited in import order, so facts
	// exported while analyzing a dependency are visible here. May be used
	// standalone (nil-safe methods) when a pass is constructed by hand.
	Facts *Facts

	diags *[]Diagnostic
	annot map[string]map[int][]string // filename -> line -> tags
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Exempt reports whether the line holding pos — or the line directly above
// it — carries a //mimonet:<tag> annotation, the analyzers' uniform escape
// hatch for intentional violations.
func (p *Pass) Exempt(pos token.Pos, tag string) bool {
	position := p.Fset.Position(pos)
	lines := p.annot[position.Filename]
	for _, l := range []int{position.Line, position.Line - 1} {
		for _, t := range lines[l] {
			if t == tag {
				return true
			}
		}
	}
	return false
}

// collectAnnotations indexes every //mimonet:<tag> comment by file and line.
func collectAnnotations(fset *token.FileSet, files []*ast.File) map[string]map[int][]string {
	out := make(map[string]map[int][]string)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				idx := strings.Index(text, "//mimonet:")
				if idx < 0 {
					continue
				}
				tag := strings.TrimPrefix(text[idx:], "//mimonet:")
				if cut := strings.IndexAny(tag, " \t"); cut >= 0 {
					tag = tag[:cut]
				}
				pos := fset.Position(c.Pos())
				if out[pos.Filename] == nil {
					out[pos.Filename] = make(map[int][]string)
				}
				out[pos.Filename][pos.Line] = append(out[pos.Filename][pos.Line], tag)
			}
		}
	}
	return out
}

// RunAnalyzers applies every analyzer to every package and returns the
// findings sorted by position. Packages are visited in import order
// (dependencies before dependents) so facts exported into the shared store
// while analyzing an imported package are visible when its importers run.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	facts := NewFacts()
	for _, pkg := range importOrder(pkgs) {
		annot := collectAnnotations(pkg.Fset, pkg.Files)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				Facts:    facts,
				diags:    &diags,
				annot:    annot,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}

// importOrder topologically sorts packages so every package follows the
// packages it imports (restricted to the given set). Ties keep the caller's
// order; import cycles cannot occur in type-checked Go, but the sort is
// defensive about them anyway.
func importOrder(pkgs []*Package) []*Package {
	byPath := make(map[string]*Package, len(pkgs))
	for _, p := range pkgs {
		byPath[p.Path] = p
	}
	state := make(map[string]int, len(pkgs)) // 0 unvisited, 1 visiting, 2 done
	out := make([]*Package, 0, len(pkgs))
	var visit func(p *Package)
	visit = func(p *Package) {
		switch state[p.Path] {
		case 1, 2:
			return
		}
		state[p.Path] = 1
		if p.Types != nil {
			for _, imp := range p.Types.Imports() {
				if dep, ok := byPath[imp.Path()]; ok {
					visit(dep)
				}
			}
		}
		state[p.Path] = 2
		out = append(out, p)
	}
	for _, p := range pkgs {
		visit(p)
	}
	return out
}

// PathApplies reports whether the final segment of an import path is one of
// the given package names — how analyzers scope themselves to e.g.
// internal/{sim,faults,channel} while remaining testable against fixture
// packages with the same leaf names.
func PathApplies(pkgPath string, leaves ...string) bool {
	leaf := pkgPath
	if i := strings.LastIndexByte(pkgPath, '/'); i >= 0 {
		leaf = pkgPath[i+1:]
	}
	for _, l := range leaves {
		if leaf == l {
			return true
		}
	}
	return false
}
