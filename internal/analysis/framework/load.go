package framework

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages without go/packages: module
// packages are type-checked from source recursively, the standard library
// is imported through the stdlib source importer, and (for fixture tests) a
// FixtureRoot directory resolves any remaining import paths, mirroring
// analysistest's GOPATH layout.
type Loader struct {
	// ModRoot is the filesystem root of the module being analyzed.
	ModRoot string
	// ModPath is the module's import path prefix (e.g. "repro").
	ModPath string
	// FixtureRoot, when set, resolves import paths that are neither module
	// nor stdlib: import "radio" loads <FixtureRoot>/radio.
	FixtureRoot string
	// IncludeTests parses _test.go files into the package (in-package test
	// files only; external _test packages are out of lint scope).
	IncludeTests bool

	fset  *token.FileSet
	std   types.Importer
	cache map[string]*loadEntry
}

type loadEntry struct {
	pkg *Package
	err error
}

func (l *Loader) init() {
	if l.fset == nil {
		l.fset = token.NewFileSet()
		l.std = importer.ForCompiler(l.fset, "source", nil)
		l.cache = make(map[string]*loadEntry)
	}
}

// Import implements types.Importer so module and fixture packages can
// depend on each other and on the standard library.
func (l *Loader) Import(path string) (*types.Package, error) {
	l.init()
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.ModPath || strings.HasPrefix(path, l.ModPath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModPath), "/")
		pkg, err := l.LoadDir(filepath.Join(l.ModRoot, filepath.FromSlash(rel)), path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	if l.FixtureRoot != "" {
		dir := filepath.Join(l.FixtureRoot, filepath.FromSlash(path))
		if st, err := os.Stat(dir); err == nil && st.IsDir() {
			pkg, err := l.LoadDir(dir, path)
			if err != nil {
				return nil, err
			}
			return pkg.Types, nil
		}
	}
	return l.std.Import(path)
}

// LoadDir parses and type-checks the single package in dir under the given
// import path. Results are memoized by import path.
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	l.init()
	if e, ok := l.cache[importPath]; ok {
		return e.pkg, e.err
	}
	// Reserve the slot to surface import cycles as errors rather than
	// infinite recursion.
	l.cache[importPath] = &loadEntry{err: fmt.Errorf("framework: import cycle through %q", importPath)}
	pkg, err := l.loadDirUncached(dir, importPath)
	l.cache[importPath] = &loadEntry{pkg: pkg, err: err}
	return pkg, err
}

func (l *Loader) loadDirUncached(dir, importPath string) (*Package, error) {
	names, err := goFilesIn(dir, l.IncludeTests)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("framework: no non-test Go files in %s", dir)
	}
	var files []*ast.File
	pkgName := ""
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		if pkgName == "" {
			pkgName = f.Name.Name
		}
		if f.Name.Name != pkgName {
			// In-package tests share the package name; external test
			// packages ("foo_test") are skipped rather than mixed in.
			if strings.TrimSuffix(f.Name.Name, "_test") == pkgName || strings.TrimSuffix(pkgName, "_test") == f.Name.Name {
				continue
			}
			return nil, fmt.Errorf("framework: %s: multiple packages %q and %q", dir, pkgName, f.Name.Name)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(importPath, l.fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("framework: type-checking %s: %w", importPath, typeErrs[0])
	}
	return &Package{
		Path:  importPath,
		Dir:   dir,
		Fset:  l.fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}

// goFilesIn lists buildable Go file names in dir, sorted, excluding tests
// unless includeTests.
func goFilesIn(dir string, includeTests bool) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		if !includeTests && strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// LoadPatterns loads packages matching go-tool-style patterns relative to
// the module root: "./..." (whole module), "dir/..." (subtree), or a plain
// directory. Directories named testdata, vendored trees, and hidden
// directories are skipped; so are directories with only test files.
func (l *Loader) LoadPatterns(patterns ...string) ([]*Package, error) {
	l.init()
	dirSet := make(map[string]bool)
	var dirs []string
	addDir := func(d string) {
		if !dirSet[d] {
			dirSet[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		pat = filepath.ToSlash(pat)
		switch {
		case pat == "./..." || pat == "...":
			if err := l.walkTree(l.ModRoot, addDir); err != nil {
				return nil, err
			}
		case strings.HasSuffix(pat, "/..."):
			root := filepath.Join(l.ModRoot, filepath.FromSlash(strings.TrimSuffix(pat, "/...")))
			if err := l.walkTree(root, addDir); err != nil {
				return nil, err
			}
		default:
			addDir(filepath.Join(l.ModRoot, filepath.FromSlash(strings.TrimPrefix(pat, "./"))))
		}
	}
	var pkgs []*Package
	for _, dir := range dirs {
		rel, err := filepath.Rel(l.ModRoot, dir)
		if err != nil {
			return nil, err
		}
		ip := l.ModPath
		if rel != "." {
			ip = l.ModPath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := l.LoadDir(dir, ip)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// walkTree calls addDir for every directory under root containing at least
// one non-test Go file.
func (l *Loader) walkTree(root string, addDir func(string)) error {
	return filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor" || name == "node_modules") {
			return filepath.SkipDir
		}
		names, err := goFilesIn(path, false)
		if err != nil {
			return err
		}
		if len(names) > 0 {
			addDir(path)
		}
		return nil
	})
}

// FindModule walks up from dir to the enclosing go.mod and returns the
// module root and module path.
func FindModule(dir string) (root, path string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module"); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("framework: %s/go.mod has no module directive", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("framework: no go.mod above %s", abs)
		}
		d = parent
	}
}
