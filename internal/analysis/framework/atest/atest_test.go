package atest_test

import (
	"go/ast"
	"testing"

	"repro/internal/analysis/framework"
	"repro/internal/analysis/framework/atest"
)

// multiDiag reports two diagnostics on every call to a function named
// "boom", deliberately emitting the longer message first so a greedy
// in-order pairing against the fixture's want comments would mismatch.
var multiDiag = &framework.Analyzer{
	Name: "multidiag",
	Doc:  "test analyzer emitting two diagnostics per line",
	Run: func(pass *framework.Pass) error {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "boom" {
					pass.Reportf(call.Pos(), "alpha and beta")
					pass.Reportf(call.Pos(), "alpha")
				}
				return true
			})
		}
		return nil
	},
}

func TestMultiDiagnosticLineMatchesOrderInsensitively(t *testing.T) {
	atest.Run(t, "testdata", multiDiag, "multi")
}
