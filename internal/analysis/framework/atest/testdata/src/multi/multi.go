// Package multi is the regression fixture for order-insensitive want
// matching: one line produces two diagnostics, and the want pattern listed
// first ("alpha") also matches the other line's diagnostic ("alpha and
// beta"). A greedy first-match pairing strands the second pattern; the
// runner must find the complete assignment.
package multi

func boom() {}

func use() {
	boom() // want "alpha" "alpha and beta"
}
