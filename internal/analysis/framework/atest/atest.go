// Package atest is a miniature analysistest: it loads fixture packages
// from an analyzer's testdata/src directory, runs the analyzer, and checks
// reported diagnostics against `// want "regexp"` comments — the same
// fixture convention as golang.org/x/tools/go/analysis/analysistest, so
// fixtures would port unchanged.
package atest

import (
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis/framework"
)

// Run loads testdata/src/<pkg> for each named fixture package, applies the
// analyzer, and reports mismatches between actual diagnostics and // want
// expectations on t.
func Run(t *testing.T, testdata string, a *framework.Analyzer, pkgNames ...string) {
	t.Helper()
	src := filepath.Join(testdata, "src")
	loader := &framework.Loader{
		ModRoot:     filepath.Join(src, "__none__"), // fixtures resolve via FixtureRoot
		ModPath:     "__fixture_module__",
		FixtureRoot: src,
	}
	for _, name := range pkgNames {
		pkg, err := loader.LoadDir(filepath.Join(src, filepath.FromSlash(name)), name)
		if err != nil {
			t.Fatalf("loading fixture %q: %v", name, err)
		}
		diags, err := framework.RunAnalyzers([]*framework.Package{pkg}, []*framework.Analyzer{a})
		if err != nil {
			t.Fatalf("running %s on fixture %q: %v", a.Name, name, err)
		}
		checkExpectations(t, pkg, diags)
	}
}

type expectation struct {
	file    string
	line    int
	rx      *regexp.Regexp
	raw     string
	matched bool
}

// checkExpectations compares diagnostics against // want comments.
func checkExpectations(t *testing.T, pkg *framework.Package, diags []framework.Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				idx := strings.Index(text, "// want ")
				if idx < 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, raw := range splitWantArgs(text[idx+len("// want "):]) {
					rx, err := regexp.Compile(raw)
					if err != nil {
						t.Errorf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, raw, err)
						continue
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, rx: rx, raw: raw})
				}
			}
		}
	}
	// A line can produce several diagnostics and carry several want
	// patterns, and one pattern may match more than one of the line's
	// messages. Pairing greedily in encounter order can strand a valid
	// assignment (pattern "alpha" grabs the "alpha and beta" diagnostic,
	// leaving pattern "alpha and beta" unmatched), so pair by maximum
	// bipartite matching instead — order-insensitive on both sides.
	matchedDiag := make([]bool, len(diags))
	diagToWant := make([]int, len(diags))
	for i := range diagToWant {
		diagToWant[i] = -1
	}
	var augment func(w int, visited []bool) bool
	augment = func(w int, visited []bool) bool {
		for d := range diags {
			if visited[d] || wants[w].file != diags[d].Pos.Filename || wants[w].line != diags[d].Pos.Line {
				continue
			}
			if !wants[w].rx.MatchString(diags[d].Message) {
				continue
			}
			visited[d] = true
			if diagToWant[d] == -1 || augment(diagToWant[d], visited) {
				diagToWant[d] = w
				wants[w].matched = true
				matchedDiag[d] = true
				return true
			}
		}
		return false
	}
	for w := range wants {
		augment(w, make([]bool, len(diags)))
	}
	for d, ok := range matchedDiag {
		if !ok {
			t.Errorf("unexpected diagnostic: %s", diags[d])
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.raw)
		}
	}
}

// splitWantArgs parses the arguments of a want comment: a sequence of
// double-quoted or backquoted strings.
func splitWantArgs(s string) []string {
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		switch s[0] {
		case '"':
			end := -1
			for i := 1; i < len(s); i++ {
				if s[i] == '\\' {
					i++
					continue
				}
				if s[i] == '"' {
					end = i
					break
				}
			}
			if end < 0 {
				return out
			}
			if unq, err := strconv.Unquote(s[:end+1]); err == nil {
				out = append(out, unq)
			}
			s = strings.TrimSpace(s[end+1:])
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				return out
			}
			out = append(out, s[1:end+1])
			s = strings.TrimSpace(s[end+2:])
		default:
			return out
		}
	}
	return out
}
