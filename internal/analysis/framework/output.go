package framework

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// Machine-readable finding output and the baseline/suppression mechanism.
//
// Findings serialize with module-root-relative file paths so JSON and SARIF
// payloads are byte-stable across checkouts and CI runners. The baseline
// file records known findings keyed by (analyzer, file, message) — line
// numbers are deliberately excluded so unrelated edits that shift a finding
// do not invalidate the baseline — with an occurrence count per key so a
// baseline cannot silently absorb new duplicates of an old violation.

// Finding is the serialized form of one Diagnostic.
type Finding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
}

// toFinding relativizes d's position against root (falling back to the
// absolute path when d lies outside it).
func toFinding(d Diagnostic, root string) Finding {
	file := d.Pos.Filename
	if root != "" {
		if rel, err := filepath.Rel(root, file); err == nil && !filepath.IsAbs(rel) && rel != ".." && !hasDotDotPrefix(rel) {
			file = filepath.ToSlash(rel)
		}
	}
	return Finding{
		Analyzer: d.Analyzer,
		File:     file,
		Line:     d.Pos.Line,
		Column:   d.Pos.Column,
		Message:  d.Message,
	}
}

func hasDotDotPrefix(rel string) bool {
	return rel == ".." || (len(rel) >= 3 && rel[:3] == ".."+string(filepath.Separator))
}

// Findings converts diagnostics to their serialized form, relative to root.
func Findings(diags []Diagnostic, root string) []Finding {
	out := make([]Finding, 0, len(diags))
	for _, d := range diags {
		out = append(out, toFinding(d, root))
	}
	return out
}

// jsonReport is the -json payload shape.
type jsonReport struct {
	Findings []Finding `json:"findings"`
	Count    int       `json:"count"`
}

// WriteJSON writes the findings as an indented JSON report.
func WriteJSON(w io.Writer, diags []Diagnostic, root string) error {
	report := jsonReport{Findings: Findings(diags, root), Count: len(diags)}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}

// Minimal SARIF 2.1.0 document model — only the fields consumers (GitHub
// code scanning, sarif-tools) require.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string    `json:"id"`
	ShortDescription sarifText `json:"shortDescription"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// WriteSARIF writes the findings as a SARIF 2.1.0 log. The analyzers slice
// populates the tool's rule metadata; analyzers with no findings still
// appear as rules so consumers can distinguish "clean" from "not run".
func WriteSARIF(w io.Writer, diags []Diagnostic, analyzers []*Analyzer, root string) error {
	rules := make([]sarifRule, 0, len(analyzers))
	sorted := append([]*Analyzer(nil), analyzers...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	for _, a := range sorted {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifText{Text: a.Doc}})
	}
	results := make([]sarifResult, 0, len(diags))
	for _, f := range Findings(diags, root) {
		results = append(results, sarifResult{
			RuleID:  f.Analyzer,
			Level:   "error",
			Message: sarifText{Text: f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: f.File},
					Region:           sarifRegion{StartLine: f.Line, StartColumn: f.Column},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "mimonet-lint", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}

// BaselineEntry suppresses up to Count findings with the given analyzer,
// file, and message.
type BaselineEntry struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Message  string `json:"message"`
	Count    int    `json:"count"`
}

// Baseline is the checked-in suppression file: known findings that do not
// fail the build. New findings — or extra occurrences of baselined ones —
// still fail.
type Baseline struct {
	Entries []BaselineEntry `json:"findings"`
}

func baselineKey(analyzer, file, message string) string {
	return analyzer + "\x00" + file + "\x00" + message
}

// LoadBaseline reads a baseline file. A missing file is an empty baseline,
// so fresh checkouts need no placeholder.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &Baseline{}, nil
	}
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("framework: baseline %s: %w", path, err)
	}
	return &b, nil
}

// NewBaseline builds a baseline absorbing every given diagnostic.
func NewBaseline(diags []Diagnostic, root string) *Baseline {
	counts := make(map[string]*BaselineEntry)
	var order []string
	for _, f := range Findings(diags, root) {
		key := baselineKey(f.Analyzer, f.File, f.Message)
		if e, ok := counts[key]; ok {
			e.Count++
			continue
		}
		counts[key] = &BaselineEntry{Analyzer: f.Analyzer, File: f.File, Message: f.Message, Count: 1}
		order = append(order, key)
	}
	sort.Strings(order)
	b := &Baseline{Entries: make([]BaselineEntry, 0, len(order))}
	for _, key := range order {
		b.Entries = append(b.Entries, *counts[key])
	}
	return b
}

// Write serializes the baseline to path.
func (b *Baseline) Write(path string) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Filter splits diagnostics into those not covered by the baseline (kept)
// and those it suppresses. Each entry suppresses at most Count matching
// findings; entries with Count ≤ 0 default to 1.
func (b *Baseline) Filter(diags []Diagnostic, root string) (kept, suppressed []Diagnostic) {
	budget := make(map[string]int, len(b.Entries))
	for _, e := range b.Entries {
		n := e.Count
		if n <= 0 {
			n = 1
		}
		budget[baselineKey(e.Analyzer, e.File, e.Message)] += n
	}
	for i, f := range Findings(diags, root) {
		key := baselineKey(f.Analyzer, f.File, f.Message)
		if budget[key] > 0 {
			budget[key]--
			suppressed = append(suppressed, diags[i])
		} else {
			kept = append(kept, diags[i])
		}
	}
	return kept, suppressed
}
