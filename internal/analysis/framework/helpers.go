package framework

import (
	"go/ast"
	"go/types"
)

// IsBlockRun reports whether decl is a flowgraph-block Work path: a method
// named Run with the structural signature
//
//	func (recv) Run(ctx context.Context, in []<-chan T, out []chan<- T) error
//
// for any stream element type T. Matching is structural, not nominal, so
// analyzers work on the real repro/internal/flowgraph.Block implementations
// and on self-contained fixture packages alike.
func IsBlockRun(info *types.Info, decl *ast.FuncDecl) bool {
	if decl.Recv == nil || decl.Name.Name != "Run" {
		return false
	}
	obj, ok := info.Defs[decl.Name].(*types.Func)
	if !ok {
		return false
	}
	sig := obj.Type().(*types.Signature)
	if sig.Params().Len() != 3 || sig.Results().Len() != 1 {
		return false
	}
	if !isContext(sig.Params().At(0).Type()) {
		return false
	}
	if !isChanSlice(sig.Params().At(1).Type(), types.RecvOnly) {
		return false
	}
	if !isChanSlice(sig.Params().At(2).Type(), types.SendOnly) {
		return false
	}
	named, ok := sig.Results().At(0).Type().(*types.Named)
	return ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil
}

func isContext(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

func isChanSlice(t types.Type, dir types.ChanDir) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	ch, ok := sl.Elem().Underlying().(*types.Chan)
	return ok && ch.Dir() == dir
}

// IsChunkChan reports whether t is a channel (any direction) of a stream
// chunk type: a named type called Chunk, or a []complex128 slice.
func IsChunkChan(t types.Type) bool {
	ch, ok := t.Underlying().(*types.Chan)
	if !ok {
		return false
	}
	return isChunkElem(ch.Elem())
}

func isChunkElem(t types.Type) bool {
	if named, ok := t.(*types.Named); ok && named.Obj().Name() == "Chunk" {
		return true
	}
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	basic, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && basic.Kind() == types.Complex128
}

// PkgPathOf returns the import path of the package defining obj, or "" for
// builtins and universe-scope objects.
func PkgPathOf(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path()
}

// ObjOf resolves an expression to the object of its identifier, looking
// through parentheses. Returns nil when the expression is not a plain
// (possibly parenthesized) identifier.
func ObjOf(info *types.Info, e ast.Expr) types.Object {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			break
		}
		e = p.X
	}
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}
