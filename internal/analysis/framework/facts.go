package framework

import (
	"go/ast"
	"go/types"
	"sync"
)

// Facts is a cross-package store of analyzer-computed facts keyed by the
// types.Object the fact describes — the interprocedural memory the
// first-generation analyzers lacked. RunAnalyzers visits packages in import
// order (imported packages first), so an analyzer inspecting package P can
// query facts it exported while visiting P's dependencies: goroleak, for
// example, records for every function whether its body joins on a context,
// channel, or WaitGroup, and resolves `go pkg.Fn()` sites against those
// facts even when Fn lives in another analyzed package.
//
// Keys are namespaced by convention as "<analyzer>.<fact>" so analyzers
// sharing one store cannot collide. The store is safe for concurrent use.
type Facts struct {
	mu sync.RWMutex
	m  map[types.Object]map[string]any
}

// NewFacts returns an empty fact store.
func NewFacts() *Facts {
	return &Facts{m: make(map[types.Object]map[string]any)}
}

// Export records a fact about obj. A nil store or nil obj is a no-op, so
// analyzers run outside RunAnalyzers (e.g. direct unit tests) need no
// guards.
func (f *Facts) Export(obj types.Object, key string, val any) {
	if f == nil || obj == nil {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	facts, ok := f.m[obj]
	if !ok {
		facts = make(map[string]any)
		f.m[obj] = facts
	}
	facts[key] = val
}

// Get returns the fact recorded for obj under key, if any.
func (f *Facts) Get(obj types.Object, key string) (any, bool) {
	if f == nil || obj == nil {
		return nil, false
	}
	f.mu.RLock()
	defer f.mu.RUnlock()
	v, ok := f.m[obj][key]
	return v, ok
}

// GetBool is Get for the common boolean-fact case; absent facts are false.
func (f *Facts) GetBool(obj types.Object, key string) (value, known bool) {
	v, ok := f.Get(obj, key)
	if !ok {
		return false, false
	}
	b, ok := v.(bool)
	return b, ok
}

// CallGraph records, per package, the declared functions and their
// statically resolved same-package callees, letting analyzers reason one
// hop (or a bounded number of hops) across function boundaries without a
// whole-program SSA build. Dynamic calls through interfaces or function
// values are not resolved — analyzers treat unresolved targets
// conservatively.
type CallGraph struct {
	decls   map[*types.Func]*ast.FuncDecl
	callees map[*types.Func][]*types.Func
}

// NewCallGraph builds the call graph of one type-checked package.
func NewCallGraph(info *types.Info, files []*ast.File) *CallGraph {
	g := &CallGraph{
		decls:   make(map[*types.Func]*ast.FuncDecl),
		callees: make(map[*types.Func][]*types.Func),
	}
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			g.decls[fn] = fd
			seen := make(map[*types.Func]bool)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := CalleeOf(info, call)
				if callee != nil && !seen[callee] {
					seen[callee] = true
					g.callees[fn] = append(g.callees[fn], callee)
				}
				return true
			})
		}
	}
	return g
}

// DeclOf returns the declaration of fn within the graph's package, or nil
// for functions declared elsewhere (or without bodies).
func (g *CallGraph) DeclOf(fn *types.Func) *ast.FuncDecl {
	if g == nil {
		return nil
	}
	return g.decls[fn]
}

// Callees returns the statically resolved functions fn calls.
func (g *CallGraph) Callees(fn *types.Func) []*types.Func {
	if g == nil {
		return nil
	}
	return g.callees[fn]
}

// Functions returns every function declared in the graph's package, in
// unspecified order.
func (g *CallGraph) Functions() []*types.Func {
	if g == nil {
		return nil
	}
	out := make([]*types.Func, 0, len(g.decls))
	for fn := range g.decls {
		out = append(out, fn)
	}
	return out
}

// Reaches reports whether pred holds for fn or any function transitively
// callable from it within maxDepth hops (maxDepth 0 checks fn alone).
func (g *CallGraph) Reaches(fn *types.Func, maxDepth int, pred func(*types.Func) bool) bool {
	if fn == nil {
		return false
	}
	if pred(fn) {
		return true
	}
	if g == nil || maxDepth <= 0 {
		return false
	}
	for _, callee := range g.callees[fn] {
		if g.Reaches(callee, maxDepth-1, pred) {
			return true
		}
	}
	return false
}

// CalleeOf resolves a call expression to the static *types.Func it invokes:
// plain calls, method calls, and calls through package selectors. Calls
// through function values, interface methods with no static target, and
// built-ins resolve to nil.
func CalleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}
